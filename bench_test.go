// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation. Each bench runs the corresponding experiment driver
// end-to-end (workload generation, functional simulation, timing simulation,
// aggregation), so `go test -bench=.` regenerates every artifact and reports
// how long each costs. Set -bench-insts / -bench-full via the environment
// knobs below for larger runs.
package main

import (
	"io"
	"testing"

	"constable/internal/experiments"
	"constable/internal/sim"
	"constable/internal/workload"
)

// benchInstructions keeps `go test -bench=.` affordable while exercising
// every code path; cmd/experiments is the tool for full-scale runs.
const benchInstructions = 20_000

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := experiments.NewRunner(experiments.Config{
		Instructions: benchInstructions,
		FullSuite:    false,
		Out:          io.Discard,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "tab3") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B)  { benchExperiment(b, "fig24") }

// Ablations the paper reports inline (§6.6 AMT indexing, §6.7.3 context
// switches).
func BenchmarkAblationAMTIndex(b *testing.B)      { benchExperiment(b, "abl1") }
func BenchmarkAblationContextSwitch(b *testing.B) { benchExperiment(b, "abl2") }

// BenchmarkInterplay runs the mechanism-zoo interplay sweep (Constable ×
// bpred/prefetch axis variants); CI tracks it as BENCH_interplay.json.
func BenchmarkInterplay(b *testing.B) { benchExperiment(b, "interplay") }

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall-clock second) of the baseline core on one workload —
// the cost model everything above is built on.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := workload.SmallSuite()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Options{Workload: spec, Instructions: 50_000}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(50_000*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkCoreLoop is the tracked metric for the simulator core itself:
// simulated cycles per wall-clock second on the baseline pipeline, with
// allocation counts reported so the zero-allocation property of the hot loop
// is regression-checked in every CI artifact (BENCH_core.json).
func BenchmarkCoreLoop(b *testing.B) {
	spec := workload.SmallSuite()[0]
	b.ReportAllocs()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Options{Workload: spec, Instructions: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkConstableOverhead measures the simulation-speed cost of modelling
// Constable's structures on top of the baseline.
func BenchmarkConstableOverhead(b *testing.B) {
	spec := workload.SmallSuite()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Options{Workload: spec, Instructions: 50_000,
			Mech: sim.Mechanism{Constable: true}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(50_000*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

#!/usr/bin/env bash
# Distributed-sweep smoke test: boot a dispatch-only constable-server plus
# two constable-workers, run a sweep sharded across both under batched
# dispatch (the default) AND under per-cell dispatch (-batch 1), and diff
# both per-cell artifact streams against the same sweep on a
# single-process server. Needs: go, curl, jq. Runs in CI and locally
# (./ci/distributed_smoke.sh).
set -euo pipefail

SERVER_PORT=${SERVER_PORT:-18080}
CELL_PORT=${CELL_PORT:-18085}
LOCAL_PORT=${LOCAL_PORT:-18090}
W1_PORT=${W1_PORT:-18081}
W2_PORT=${W2_PORT:-18082}
W3_PORT=${W3_PORT:-18083}
W4_PORT=${W4_PORT:-18084}
FED_PORT=${FED_PORT:-18091}
MIXED_PORT=${MIXED_PORT:-18092}
ADMIT_PORT=${ADMIT_PORT:-18093}

workdir=$(mktemp -d)
bindir="$workdir/bin"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "--- $*"; }

wait_http() { # url attempts
  for _ in $(seq 1 "${2:-100}"); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "timed out waiting for $1" >&2
  return 1
}

SWEEP_BODY='{
  "workloads":  ["server-kvstore-00", "client-browser-00", "ispec17-intbranchy-00"],
  "mechanisms": ["baseline", "eves", "constable"],
  "instructions": 20000
}'

# Normalize a sweep NDJSON event stream into a stable per-cell artifact:
# cells keyed and sorted by (row,col), carrying status + the full result
# document. job ids, seq numbers and cache_hit flags legitimately differ
# between runs and are dropped.
normalize() {
  jq -cS 'select(.cell != null) | {row: .cell.row, col: .cell.col, status: .cell.status, result: .cell.result}' "$1" \
    | sort
}

run_sweep() { # base-url outfile [sweep-body]
  local base=$1 out=$2 body=${3:-$SWEEP_BODY}
  local id
  id=$(curl -sf "$base/v1/sweeps" -d "$body" | jq -r .id)
  curl -sfN "$base/v1/sweeps/$id/events?results=1" > "$out"
  # Every cell must be done.
  local bad
  bad=$(jq -s '[.[] | select(.cell != null and .cell.status != "done")] | length' "$out")
  [ "$bad" -eq 0 ] || { echo "sweep $id at $base had $bad non-done cells" >&2; return 1; }
}

say "building binaries"
go build -o "$bindir/" ./cmd/constable-server ./cmd/constable-worker ./cmd/tracetool

# boot_cluster name server-port server-extra-args w1-port w2-port
boot_cluster() {
  local tag=$1 port=$2 extra=$3 w1=$4 w2=$5
  # shellcheck disable=SC2086
  "$bindir/constable-server" -addr "127.0.0.1:$port" -workers -1 $extra \
    -data-dir "$workdir/$tag-data" &
  pids+=($!)
  wait_http "http://127.0.0.1:$port/healthz"
  "$bindir/constable-worker" -server "http://127.0.0.1:$port" -addr "127.0.0.1:$w1" -name "$tag-w1" -capacity 2 &
  pids+=($!)
  "$bindir/constable-worker" -server "http://127.0.0.1:$port" -addr "127.0.0.1:$w2" -name "$tag-w2" -capacity 2 &
  pids+=($!)
  for _ in $(seq 1 100); do
    n=$(curl -sf "http://127.0.0.1:$port/v1/workers" | jq length)
    [ "$n" -eq 2 ] && break
    sleep 0.1
  done
  [ "$(curl -sf "http://127.0.0.1:$port/v1/workers" | jq length)" -eq 2 ] || {
    echo "$tag workers never registered" >&2; exit 1; }
}

check_sharding() { # base-url tag
  curl -sf "$1/v1/workers" | jq -e '
    (map(.completed) | add) == 9 and all(.completed > 0)' >/dev/null || {
    echo "$2 sharding check failed:" >&2
    curl -s "$1/v1/workers" | jq . >&2
    exit 1; }
}

say "starting batched dispatch-only server (:$SERVER_PORT) + 2 workers"
boot_cluster batched "$SERVER_PORT" "-hedge-after 2s" "$W1_PORT" "$W2_PORT"

say "running batched distributed sweep (9 cells across 2 workers)"
run_sweep "http://127.0.0.1:$SERVER_PORT" "$workdir/batched.ndjson"
check_sharding "http://127.0.0.1:$SERVER_PORT" batched

say "checking the batched server dispatched multi-cell chunks"
curl -sf "http://127.0.0.1:$SERVER_PORT/metrics" \
  | awk '$1 == "constable_batches_dispatched_total" && $2 > 0 {found=1} END {exit !found}' || {
  echo "constable_batches_dispatched_total is 0: batching never engaged" >&2
  curl -s "http://127.0.0.1:$SERVER_PORT/metrics" >&2
  exit 1; }

say "starting per-cell (-batch 1) dispatch-only server (:$CELL_PORT) + 2 workers"
boot_cluster percell "$CELL_PORT" "-batch 1" "$W3_PORT" "$W4_PORT"

say "running the same sweep per-cell"
run_sweep "http://127.0.0.1:$CELL_PORT" "$workdir/percell.ndjson"
check_sharding "http://127.0.0.1:$CELL_PORT" percell

say "running the same sweep on a single-process server (:$LOCAL_PORT)"
"$bindir/constable-server" -addr "127.0.0.1:$LOCAL_PORT" -workers 4 &
pids+=($!)
wait_http "http://127.0.0.1:$LOCAL_PORT/healthz"
run_sweep "http://127.0.0.1:$LOCAL_PORT" "$workdir/local.ndjson"

say "diffing batched and per-cell artifacts against the single-process golden output"
normalize "$workdir/batched.ndjson" > "$workdir/batched.norm"
normalize "$workdir/percell.ndjson" > "$workdir/percell.norm"
normalize "$workdir/local.ndjson"   > "$workdir/local.norm"
if ! diff -u "$workdir/local.norm" "$workdir/batched.norm"; then
  echo "batched sweep artifacts differ from single-process run" >&2
  exit 1
fi
if ! diff -u "$workdir/local.norm" "$workdir/percell.norm"; then
  echo "per-cell sweep artifacts differ from single-process run" >&2
  exit 1
fi

INTERPLAY_SWEEP_BODY='{
  "workloads":  ["server-kvstore-00", "ispec17-intbranchy-00"],
  "mechanisms": ["constable",
                 "constable,bpred=bimodal",
                 "constable,prefetch=none",
                 "constable,bpred=bimodal,prefetch=none"],
  "instructions": 20000
}'

say "running the mechanism-zoo interplay sweep (Constable x 2 bpred variants x prefetch on/off) across the 2-worker cluster"
run_sweep "http://127.0.0.1:$SERVER_PORT" "$workdir/interplay-dist.ndjson" "$INTERPLAY_SWEEP_BODY"

say "running the same interplay sweep on the single-process server"
run_sweep "http://127.0.0.1:$LOCAL_PORT" "$workdir/interplay-local.ndjson" "$INTERPLAY_SWEEP_BODY"

say "diffing interplay artifacts between distributed and single-process runs"
normalize "$workdir/interplay-dist.ndjson"  > "$workdir/interplay-dist.norm"
normalize "$workdir/interplay-local.ndjson" > "$workdir/interplay-local.norm"
if ! diff -u "$workdir/interplay-local.norm" "$workdir/interplay-dist.norm"; then
  echo "interplay sweep artifacts differ between distributed and single-process runs" >&2
  exit 1
fi
# Qualified names must round-trip into each cell's result identity.
jq -s -e 'map(select(.cell != null) | .cell.result.identity.mechanism)
    | sort | unique == ["constable",
                        "constable,bpred=bimodal",
                        "constable,bpred=bimodal,prefetch=none",
                        "constable,prefetch=none"]' \
  "$workdir/interplay-dist.ndjson" >/dev/null || {
  echo "interplay cells did not carry qualified mechanism identities:" >&2
  jq -c 'select(.cell != null) | .cell.result.identity' "$workdir/interplay-dist.ndjson" >&2
  exit 1; }

say "capturing a trace and uploading it to the batched server"
"$bindir/tracetool" -capture -workload server-kvstore-00 -n 20000 -o "$workdir/smoke.trace"
upload=$(curl -sf --data-binary "@$workdir/smoke.trace" "http://127.0.0.1:$SERVER_PORT/v1/traces")
hash=$(echo "$upload" | jq -r .hash)
[ -n "$hash" ] && [ "$hash" != "null" ] || { echo "upload returned no hash: $upload" >&2; exit 1; }
echo "$upload" | jq -e '.dedup != true and .instructions == 20000' >/dev/null || {
  echo "first upload unexpectedly deduped or miscounted: $upload" >&2; exit 1; }

say "re-uploading via tracetool to prove content-addressed dedup"
"$bindir/tracetool" -upload "$workdir/smoke.trace" -server "http://127.0.0.1:$SERVER_PORT" \
  | grep -q "dedup" || { echo "re-upload was not deduped" >&2; exit 1; }

TRACE_SWEEP_BODY=$(cat <<EOF
{
  "workloads":  ["trace:$hash", "server-kvstore-00"],
  "mechanisms": ["baseline", "constable"],
  "instructions": 20000
}
EOF
)

say "running a trace-referenced sweep across the 2-worker cluster (workers fetch the trace by hash)"
run_sweep "http://127.0.0.1:$SERVER_PORT" "$workdir/trace-dist.ndjson" "$TRACE_SWEEP_BODY"

say "running the same trace sweep on the single-process server"
curl -sf --data-binary "@$workdir/smoke.trace" "http://127.0.0.1:$LOCAL_PORT/v1/traces" >/dev/null
run_sweep "http://127.0.0.1:$LOCAL_PORT" "$workdir/trace-local.ndjson" "$TRACE_SWEEP_BODY"

say "diffing trace-sweep artifacts between distributed and single-process runs"
normalize "$workdir/trace-dist.ndjson"  > "$workdir/trace-dist.norm"
normalize "$workdir/trace-local.ndjson" > "$workdir/trace-local.norm"
if ! diff -u "$workdir/trace-local.norm" "$workdir/trace-dist.norm"; then
  echo "trace-referenced sweep artifacts differ between distributed and single-process runs" >&2
  exit 1
fi

say "checking trace-store metrics on the batched server"
curl -sf "http://127.0.0.1:$SERVER_PORT/metrics" | awk '
  $1 == "constable_traces_uploaded_total" && $2 > 0 {up=1}
  $1 == "constable_traces_deduped_total"  && $2 > 0 {de=1}
  $1 == "constable_traces_fetched_total"  && $2 > 0 {fe=1}
  END {exit !(up && de && fe)}' || {
  echo "trace metrics check failed (need uploaded/deduped/fetched all > 0):" >&2
  curl -s "http://127.0.0.1:$SERVER_PORT/metrics" | grep constable_trace >&2
  exit 1; }

say "waiting for worker write-backs to land on the batched server's store"
wb_check() {
  curl -sf "http://127.0.0.1:$SERVER_PORT/metrics" \
    | awk '$1 == "constable_store_remote_writebacks_total" && $2 > 0 {found=1} END {exit !found}'
}
for _ in $(seq 1 100); do wb_check && break; sleep 0.1; done
wb_check || {
  echo "constable_store_remote_writebacks_total is 0: workers never wrote results back" >&2
  curl -s "http://127.0.0.1:$SERVER_PORT/metrics" | grep constable_store >&2
  exit 1; }

say "starting a worker-less federated server (:$FED_PORT) sharing against the batched server's result store"
"$bindir/constable-server" -addr "127.0.0.1:$FED_PORT" -workers -1 \
  -results-server "http://127.0.0.1:$SERVER_PORT" &
pids+=($!)
wait_http "http://127.0.0.1:$FED_PORT/healthz"

say "re-running the original sweep on the federated server (every cell must come from the shared store)"
run_sweep "http://127.0.0.1:$FED_PORT" "$workdir/federated.ndjson"

say "diffing federated artifacts against the single-process golden output"
normalize "$workdir/federated.ndjson" > "$workdir/federated.norm"
if ! diff -u "$workdir/local.norm" "$workdir/federated.norm"; then
  echo "federated sweep artifacts differ from single-process run" >&2
  exit 1
fi

say "checking dedup metrics: federated server executed zero cells, batched server served the hits"
curl -sf "http://127.0.0.1:$FED_PORT/metrics" | awk '
  $1 == "constable_jobs_executed_total"               {ex=$2; seen=1}
  $1 == "constable_jobs_submitted_total" && $2 >= 9   {subm=1}
  $1 == "constable_store_remote_hits_total" && $2 >= 9 {hits=1}
  END {exit !(seen && ex == 0 && subm && hits)}' || {
  echo "federated dedup metrics check failed (need executed == 0, submitted >= 9, remote hits >= 9):" >&2
  curl -s "http://127.0.0.1:$FED_PORT/metrics" >&2
  exit 1; }
curl -sf "http://127.0.0.1:$SERVER_PORT/metrics" \
  | awk '$1 == "constable_store_remote_hits_total" && $2 > 0 {found=1} END {exit !found}' || {
  echo "constable_store_remote_hits_total is 0 on the batched server: federation never consulted it" >&2
  curl -s "http://127.0.0.1:$SERVER_PORT/metrics" | grep constable_store >&2
  exit 1; }

say "starting a mixed-load server (:$MIXED_PORT) with fair-share weights and per-cell dispatch"
"$bindir/constable-server" -addr "127.0.0.1:$MIXED_PORT" -workers 2 -batch 1 \
  -queue-max 4 -class-weights interactive=8,batch=1 &
pids+=($!)
wait_http "http://127.0.0.1:$MIXED_PORT/healthz"

say "flooding the batch class with a 100-cell sweep"
MIXED_SWEEP_BODY=$(jq -n '{specs: [[range(0; 100) |
  {workload: "server-kvstore-00", mechanism: "constable", instructions: (200000 + .)}]]}')
mixed_sweep_id=$(curl -sf "http://127.0.0.1:$MIXED_PORT/v1/sweeps" -d "$MIXED_SWEEP_BODY" | jq -r .id)
curl -sf "http://127.0.0.1:$MIXED_PORT/metrics" \
  | awk -v m='constable_class_queue_depth{class="batch"}' \
    '$1 == m && $2 > 0 {found=1} END {exit !found}' || {
  echo "batch class queue depth is 0 right after submitting a 100-cell sweep" >&2
  curl -s "http://127.0.0.1:$MIXED_PORT/metrics" | grep constable_class >&2
  exit 1; }

say "interactive ?wait=1 runs must overtake the sweep backlog with bounded latency"
for i in 1 2 3; do
  start_ms=$(date +%s%3N)
  view=$(curl -sf --max-time 10 "http://127.0.0.1:$MIXED_PORT/v1/runs?wait=1" \
    -d "{\"workload\":\"client-browser-00\",\"mechanism\":\"constable\",\"instructions\":$((300000 + i))}")
  elapsed_ms=$(( $(date +%s%3N) - start_ms ))
  echo "$view" | jq -e '.status == "done" and .class == "interactive"' >/dev/null || {
    echo "interactive run $i did not finish as class interactive: $view" >&2; exit 1; }
  [ "$elapsed_ms" -lt 5000 ] || {
    echo "interactive run $i took ${elapsed_ms}ms under sweep load, want <5000ms" >&2; exit 1; }
  echo "    interactive run $i: ${elapsed_ms}ms"
done

say "waiting for the mixed sweep to drain cleanly"
curl -sfN "http://127.0.0.1:$MIXED_PORT/v1/sweeps/$mixed_sweep_id/events" >/dev/null
curl -sf "http://127.0.0.1:$MIXED_PORT/v1/sweeps/$mixed_sweep_id" \
  | jq -e '.completed_cells == .total_cells and .failed_cells == 0' >/dev/null || {
  echo "mixed sweep did not complete cleanly" >&2
  curl -s "http://127.0.0.1:$MIXED_PORT/v1/sweeps/$mixed_sweep_id" | jq . >&2
  exit 1; }

say "admission-control leg: saturating a parked server (:$ADMIT_PORT) with -queue-max 2"
"$bindir/constable-server" -addr "127.0.0.1:$ADMIT_PORT" -workers -1 -queue-max 2 &
pids+=($!)
wait_http "http://127.0.0.1:$ADMIT_PORT/healthz"
codes=""
for i in $(seq 1 5); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$ADMIT_PORT/v1/runs" \
    -d "{\"workload\":\"server-kvstore-00\",\"instructions\":$((500000 + i))}")
  codes="$codes $code"
done
echo "    submit statuses:$codes"
echo "$codes" | grep -Eq '20[0-9]' || { echo "no submission was admitted: $codes" >&2; exit 1; }
echo "$codes" | grep -q 429 || { echo "no submission hit admission control: $codes" >&2; exit 1; }

say "a refused submission must carry a sane Retry-After header"
ra=$(curl -s -D - -o /dev/null "http://127.0.0.1:$ADMIT_PORT/v1/runs" \
  -d '{"workload":"server-kvstore-00","instructions":777777}' \
  | awk -F': ' 'tolower($1) == "retry-after" {print $2}' | tr -d '\r')
[ -n "$ra" ] && [ "$ra" -ge 1 ] && [ "$ra" -le 60 ] || {
  echo "Retry-After header = '$ra', want integer seconds in [1, 60]" >&2; exit 1; }

say "sweeps stay admitted on the saturated server (batch watermark is 64x)"
curl -sf "http://127.0.0.1:$ADMIT_PORT/v1/sweeps" -d "$SWEEP_BODY" | jq -e '.id' >/dev/null || {
  echo "sweep was refused on a server whose interactive class is full" >&2; exit 1; }

say "checking admission metrics on the parked server"
curl -sf "http://127.0.0.1:$ADMIT_PORT/metrics" \
  | awk '$1 == "constable_admission_rejected_total" && $2 > 0 {found=1} END {exit !found}' || {
  echo "constable_admission_rejected_total is 0 after forced 429s" >&2
  curl -s "http://127.0.0.1:$ADMIT_PORT/metrics" | grep -E 'admission|class' >&2
  exit 1; }

say "distributed smoke OK: 9/9 cells in both modes, all workers used, chunks dispatched, interplay sweep (qualified mechanisms) byte-identical, trace sweep byte-identical with fetch-by-hash, federated re-sweep executed zero cells, interactive latency bounded under a 100-cell sweep flood, admission control returned 429 + Retry-After, artifacts byte-identical"

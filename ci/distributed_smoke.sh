#!/usr/bin/env bash
# Distributed-sweep smoke test: boot a dispatch-only constable-server plus
# two constable-workers, run a sweep sharded across both, and diff the
# per-cell artifacts against the same sweep on a single-process server.
# Needs: go, curl, jq. Runs in CI and locally (./ci/distributed_smoke.sh).
set -euo pipefail

SERVER_PORT=${SERVER_PORT:-18080}
LOCAL_PORT=${LOCAL_PORT:-18090}
W1_PORT=${W1_PORT:-18081}
W2_PORT=${W2_PORT:-18082}

workdir=$(mktemp -d)
bindir="$workdir/bin"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "--- $*"; }

wait_http() { # url attempts
  for _ in $(seq 1 "${2:-100}"); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "timed out waiting for $1" >&2
  return 1
}

SWEEP_BODY='{
  "workloads":  ["server-kvstore-00", "client-browser-00", "ispec17-intbranchy-00"],
  "mechanisms": ["baseline", "eves", "constable"],
  "instructions": 20000
}'

# Normalize a sweep NDJSON event stream into a stable per-cell artifact:
# cells keyed and sorted by (row,col), carrying status + the full result
# document. job ids, seq numbers and cache_hit flags legitimately differ
# between runs and are dropped.
normalize() {
  jq -cS 'select(.cell != null) | {row: .cell.row, col: .cell.col, status: .cell.status, result: .cell.result}' "$1" \
    | sort
}

run_sweep() { # base-url outfile
  local base=$1 out=$2
  local id
  id=$(curl -sf "$base/v1/sweeps" -d "$SWEEP_BODY" | jq -r .id)
  curl -sfN "$base/v1/sweeps/$id/events?results=1" > "$out"
  # Every cell must be done.
  local bad
  bad=$(jq -s '[.[] | select(.cell != null and .cell.status != "done")] | length' "$out")
  [ "$bad" -eq 0 ] || { echo "sweep $id at $base had $bad non-done cells" >&2; return 1; }
}

say "building binaries"
go build -o "$bindir/" ./cmd/constable-server ./cmd/constable-worker

say "starting dispatch-only server (:$SERVER_PORT) + 2 workers (:$W1_PORT, :$W2_PORT)"
"$bindir/constable-server" -addr "127.0.0.1:$SERVER_PORT" -workers -1 -data-dir "$workdir/server-data" &
pids+=($!)
wait_http "http://127.0.0.1:$SERVER_PORT/healthz"
"$bindir/constable-worker" -server "http://127.0.0.1:$SERVER_PORT" -addr "127.0.0.1:$W1_PORT" -name w1 -capacity 2 &
pids+=($!)
"$bindir/constable-worker" -server "http://127.0.0.1:$SERVER_PORT" -addr "127.0.0.1:$W2_PORT" -name w2 -capacity 2 &
pids+=($!)
for _ in $(seq 1 100); do
  n=$(curl -sf "http://127.0.0.1:$SERVER_PORT/v1/workers" | jq length)
  [ "$n" -eq 2 ] && break
  sleep 0.1
done
[ "$(curl -sf "http://127.0.0.1:$SERVER_PORT/v1/workers" | jq length)" -eq 2 ] || {
  echo "workers never registered" >&2; exit 1; }

say "running distributed sweep (9 cells across 2 workers)"
run_sweep "http://127.0.0.1:$SERVER_PORT" "$workdir/distributed.ndjson"

say "checking both workers executed cells"
curl -sf "http://127.0.0.1:$SERVER_PORT/v1/workers" | jq -e '
  (map(.completed) | add) == 9 and all(.completed > 0)' >/dev/null || {
  echo "sharding check failed:" >&2
  curl -s "http://127.0.0.1:$SERVER_PORT/v1/workers" | jq . >&2
  exit 1; }

say "running the same sweep on a single-process server (:$LOCAL_PORT)"
"$bindir/constable-server" -addr "127.0.0.1:$LOCAL_PORT" -workers 4 &
pids+=($!)
wait_http "http://127.0.0.1:$LOCAL_PORT/healthz"
run_sweep "http://127.0.0.1:$LOCAL_PORT" "$workdir/local.ndjson"

say "diffing distributed artifacts against the single-process golden output"
normalize "$workdir/distributed.ndjson" > "$workdir/distributed.norm"
normalize "$workdir/local.ndjson"       > "$workdir/local.norm"
if ! diff -u "$workdir/local.norm" "$workdir/distributed.norm"; then
  echo "distributed sweep artifacts differ from single-process run" >&2
  exit 1
fi

say "distributed smoke OK: 9/9 cells, both workers used, artifacts byte-identical"

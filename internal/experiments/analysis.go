package experiments

import (
	"fmt"

	"constable/internal/constable"
	"constable/internal/inspector"
	"constable/internal/power"
	"constable/internal/sim"
	"constable/internal/workload"
)

// Fig3 reproduces Fig. 3: (a) the fraction of dynamic loads that are
// global-stable per category, (b) their addressing-mode distribution,
// (c) their inter-occurrence-distance distribution, and (d) the distance
// distribution per addressing mode.
func (r *Runner) Fig3() error {
	out := r.cfg.Out
	specs := r.cfg.suite()

	type agg struct {
		loads, stable uint64
		byMode        map[string]uint64
		byDist        map[string]uint64
		modeDist      map[string]map[string]uint64
	}
	total := agg{byMode: map[string]uint64{}, byDist: map[string]uint64{}, modeDist: map[string]map[string]uint64{}}
	perCat := map[workload.Category]*agg{}
	for _, c := range workload.Categories {
		perCat[c] = &agg{byMode: map[string]uint64{}, byDist: map[string]uint64{}}
	}

	for _, spec := range specs {
		ins, err := sim.StableAnalysis(spec, false, r.cfg.Instructions)
		if err != nil {
			return err
		}
		rep := ins.Report()
		a := perCat[spec.Category]
		a.loads += rep.DynLoads
		a.stable += rep.GlobalStableDynLoads
		total.loads += rep.DynLoads
		total.stable += rep.GlobalStableDynLoads
		for m, v := range rep.ByMode {
			a.byMode[m] += v
			total.byMode[m] += v
		}
		for d, v := range rep.ByDistance {
			a.byDist[d] += v
			total.byDist[d] += v
		}
		for m, dd := range rep.ByModeDistance {
			if total.modeDist[m] == nil {
				total.modeDist[m] = map[string]uint64{}
			}
			for d, v := range dd {
				total.modeDist[m][d] += v
			}
		}
	}

	fmt.Fprintln(out, "(a) fraction of dynamic loads that are global-stable:")
	for _, c := range workload.Categories {
		a := perCat[c]
		fmt.Fprintf(out, "  %-12s %5.1f%%\n", c, 100*frac(a.stable, a.loads))
	}
	fmt.Fprintf(out, "  %-12s %5.1f%%   (paper AVG: 34.2%%)\n", "AVG", 100*frac(total.stable, total.loads))

	fmt.Fprintln(out, "(b) global-stable loads by addressing mode (AVG):")
	for _, m := range []string{"pc-rel", "stack-rel", "reg-rel"} {
		fmt.Fprintf(out, "  %-10s %5.1f%%\n", m, 100*frac(total.byMode[m], total.stable))
	}
	fmt.Fprintln(out, "(c) global-stable loads by inter-occurrence distance (AVG):")
	var distTotal uint64
	for _, d := range inspector.DistanceBuckets {
		distTotal += total.byDist[d]
	}
	for _, d := range inspector.DistanceBuckets {
		fmt.Fprintf(out, "  %-10s %5.1f%%\n", d, 100*frac(total.byDist[d], distTotal))
	}
	fmt.Fprintln(out, "(d) inter-occurrence distance per addressing mode:")
	for _, m := range []string{"pc-rel", "stack-rel", "reg-rel"} {
		var mt uint64
		for _, d := range inspector.DistanceBuckets {
			mt += total.modeDist[m][d]
		}
		fmt.Fprintf(out, "  %-10s", m)
		for _, d := range inspector.DistanceBuckets {
			fmt.Fprintf(out, "  %s %5.1f%%", d, 100*frac(total.modeDist[m][d], mt))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// Table1 reproduces Table 1: the storage overhead of Constable's structures.
func (r *Runner) Table1() error {
	out := r.cfg.Out
	cfg := constable.DefaultConfig()
	sld, rmt, amt := cfg.StorageBits()
	kb := func(bits int) float64 { return float64(bits) / 8 / 1024 }
	fmt.Fprintf(out, "  SLD: %d entries (%d sets x %d ways)            %5.1f KB (paper: 7.9 KB)\n",
		cfg.SLDSets*cfg.SLDWays, cfg.SLDSets, cfg.SLDWays, kb(sld))
	fmt.Fprintf(out, "  RMT: 2x%d stack + 14x%d register load-PC slots %5.1f KB (paper: 0.4 KB)\n",
		cfg.RMTStackListLen, cfg.RMTListLen, kb(rmt))
	fmt.Fprintf(out, "  AMT: %d entries (%d sets x %d ways), %d PCs     %5.1f KB (paper: 4.0 KB)\n",
		cfg.AMTSets*cfg.AMTWays, cfg.AMTSets, cfg.AMTWays, cfg.AMTPCSlots, kb(amt))
	fmt.Fprintf(out, "  Total                                          %5.1f KB (paper: 12.4 KB)\n",
		kb(sld+rmt+amt))
	return nil
}

// Table3 reproduces Table 3: access energy, leakage power and area of
// Constable's structures (CACTI values scaled to 14 nm, as used by the
// power model).
func (r *Runner) Table3() error {
	out := r.cfg.Out
	fmt.Fprintf(out, "  %-22s %10s %10s %12s %10s\n", "structure", "read (pJ)", "write (pJ)", "leak (mW)", "area (mm2)")
	fmt.Fprintf(out, "  %-22s %10.2f %10.2f %12.2f %10.3f\n", "SLD (7.9KB, 3R/2W)",
		power.SLDReadPJ, power.SLDWritePJ, power.SLDLeakageMW, power.SLDAreaMM2)
	fmt.Fprintf(out, "  %-22s %10.2f %10.2f %12.2f %10.3f\n", "RMT (0.4KB, 2R/6W)",
		power.RMTAccessPJ*0.75, power.RMTAccessPJ, power.RMTLeakageMW, power.RMTAreaMM2)
	fmt.Fprintf(out, "  %-22s %10.2f %10.2f %12.2f %10.3f\n", "AMT (4.0KB, 1R/1W)",
		power.AMTReadPJ, power.AMTWritePJ, power.AMTLeakageMW, power.AMTAreaMM2)
	return nil
}

// Fig23 reproduces appendix B Fig. 23: the effect of doubling the
// architectural registers (APX) on dynamic loads and on the global-stable
// fraction.
func (r *Runner) Fig23() error {
	out := r.cfg.Out
	specs := r.cfg.suite()
	fmt.Fprintf(out, "  %-28s %12s %12s %12s\n", "workload", "gs w/o APX", "gs w/ APX", "load redux")
	var base, apx, baseLoads, apxLoads, baseInsts, apxInsts float64
	for _, spec := range specs {
		insB, err := sim.StableAnalysis(spec, false, r.cfg.Instructions)
		if err != nil {
			return err
		}
		insA, err := sim.StableAnalysis(spec, true, r.cfg.Instructions)
		if err != nil {
			return err
		}
		rb, ra := insB.Report(), insA.Report()
		// Load reduction at equal work: loads per instruction.
		densB := frac(rb.DynLoads, rb.DynInsts)
		densA := frac(ra.DynLoads, ra.DynInsts)
		redux := 1 - densA/densB
		fmt.Fprintf(out, "  %-28s %11.1f%% %11.1f%% %11.1f%%\n",
			spec.Name, 100*rb.GlobalStableFraction(), 100*ra.GlobalStableFraction(), 100*redux)
		base += rb.GlobalStableFraction()
		apx += ra.GlobalStableFraction()
		baseLoads += float64(rb.DynLoads)
		apxLoads += float64(ra.DynLoads)
		baseInsts += float64(rb.DynInsts)
		apxInsts += float64(ra.DynInsts)
	}
	n := float64(len(specs))
	fmt.Fprintf(out, "  AVG: global-stable %.1f%% -> %.1f%% (paper: 13.7%% -> 14.2%%), load reduction %.1f%% (paper: 11.7%%)\n",
		100*base/n, 100*apx/n, 100*(1-(apxLoads/apxInsts)/(baseLoads/baseInsts)))
	return nil
}

// Fig24 reproduces appendix B Fig. 24: global-stable addressing-mode
// distribution without and with APX.
func (r *Runner) Fig24() error {
	out := r.cfg.Out
	specs := r.cfg.suite()
	for _, apx := range []bool{false, true} {
		byMode := map[string]uint64{}
		var total uint64
		for _, spec := range specs {
			ins, err := sim.StableAnalysis(spec, apx, r.cfg.Instructions)
			if err != nil {
				return err
			}
			rep := ins.Report()
			for m, v := range rep.ByMode {
				byMode[m] += v
			}
			total += rep.GlobalStableDynLoads
		}
		label := "NOAPX"
		if apx {
			label = "APX"
		}
		fmt.Fprintf(out, "  %-6s pc-rel %5.1f%%  stack-rel %5.1f%%  reg-rel %5.1f%%\n", label,
			100*frac(byMode["pc-rel"], total),
			100*frac(byMode["stack-rel"], total),
			100*frac(byMode["reg-rel"], total))
	}
	fmt.Fprintln(out, "  (paper: stack-relative share drops 21.1%->16%, PC-relative stays ~38%)")
	return nil
}

func frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

package experiments

import (
	"fmt"

	"constable/internal/constable"
	"constable/internal/pipeline"
	"constable/internal/sim"
)

// Abl1 reproduces the §6.6 inline comparison: a full-address-indexed AMT
// versus the cacheline-indexed default. The paper measures 0.4% lower
// performance for the cacheline AMT due to false sharing — a store to
// another word of the same line needlessly resets can_eliminate — traded
// against snoop compatibility.
func (r *Runner) Abl1() error {
	fullAddr := constable.DefaultConfig()
	fullAddr.FullAddressAMT = true
	configs := []perfConfig{
		{name: "base"},
		{name: "CachelineAMT", mech: sim.Mechanism{Constable: true}},
		{name: "FullAddrAMT", mech: sim.Mechanism{Constable: true, ConstableConfig: &fullAddr}},
	}
	results, names, err := r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	tbl := categoryGeomeans(r.cfg.suite(), results, names)
	fmt.Fprint(out, tbl)
	for _, ci := range []int{1, 2} {
		var elim, loads uint64
		for wi := range r.cfg.suite() {
			elim += results[wi][ci].Pipeline.EliminatedLoads
			loads += results[wi][ci].Pipeline.RetiredLoads
		}
		fmt.Fprintf(out, "  %-14s coverage %5.1f%%\n", names[ci], 100*frac(elim, loads))
	}
	fmt.Fprintln(out, "(paper: cacheline-indexed AMT costs only 0.4% vs full-address, because the")
	fmt.Fprintln(out, " compiler groups likely-stable data within cachelines)")
	return nil
}

// Abl2 studies §6.7.3: the cost of conservatively resetting all of
// Constable's state on physical-mapping changes (context switches), swept
// over switch frequency.
func (r *Runner) Abl2() error {
	out := r.cfg.Out
	intervals := []uint64{0, 50_000, 20_000, 5_000}
	var configs []perfConfig
	for _, iv := range intervals {
		iv := iv
		name := "no-switch"
		if iv != 0 {
			name = fmt.Sprintf("every-%dk", iv/1000)
		}
		core := func() *pipeline.Config {
			cfg := pipeline.DefaultConfig()
			cfg.ContextSwitchInterval = iv
			return &cfg
		}
		configs = append(configs, perfConfig{name: name, core: core, mech: sim.Mechanism{Constable: true}})
	}
	// Column 0 (the comparison base) is Constable without switches.
	results, names, err := r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	specs := r.cfg.suite()
	fmt.Fprintln(out, "Constable performance and coverage vs context-switch frequency")
	fmt.Fprintln(out, "(relative to Constable with no switches):")
	for ci, name := range names {
		var sp []float64
		var elim, loads uint64
		for wi := range specs {
			sp = append(sp, sim.Speedup(results[wi][0], results[wi][ci]))
			elim += results[wi][ci].Pipeline.EliminatedLoads
			loads += results[wi][ci].Pipeline.RetiredLoads
		}
		fmt.Fprintf(out, "  %-12s speedup %7.4f  coverage %5.1f%%\n",
			name, geomean(sp), 100*frac(elim, loads))
	}
	fmt.Fprintln(out, "(expectation: coverage degrades gracefully as the confidence mechanism")
	fmt.Fprintln(out, " re-arms after each flush; §6.7.3 accepts this cost for correctness)")
	return nil
}

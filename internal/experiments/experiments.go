// Package experiments contains one driver per table and figure in the
// paper's evaluation (§4, §9, appendices A–B). Each driver sweeps the
// required simulations over the workload suite through the shared service
// scheduler, aggregates cells as they complete (per-category geomeans,
// box-and-whiskers summaries), and prints rows that correspond to the
// paper's bars/series. See docs/DESIGN.md for the experiment index and the
// paper-artifact mapping.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"constable/internal/sim"
	"constable/internal/stats"
	"constable/internal/workload"
)

// Config controls suite size and simulation length for all drivers.
type Config struct {
	// Instructions is the committed-path instruction budget per workload.
	Instructions uint64
	// FullSuite selects all 90 workloads; otherwise the 15-workload small
	// suite (one per archetype per category) runs.
	FullSuite bool
	// Out receives the printed artifact.
	Out io.Writer
}

// DefaultConfig is sized so the full experiment set finishes in minutes.
func DefaultConfig(out io.Writer) Config {
	return Config{Instructions: 80_000, FullSuite: false, Out: out}
}

func (c Config) suite() []*workload.Spec {
	if c.FullSuite {
		return workload.Suite()
	}
	return workload.SmallSuite()
}

// Runner executes experiments by id.
type Runner struct {
	cfg Config
}

// NewRunner returns a Runner over cfg.
func NewRunner(cfg Config) *Runner { return &Runner{cfg: cfg} }

// driver is one experiment entry point.
type driver struct {
	id    string
	title string
	run   func(*Runner) error
}

func (r *Runner) drivers() []driver {
	return []driver{
		{"fig3", "Global-stable loads: fraction, addressing modes, distances", (*Runner).Fig3},
		{"fig6", "Load-port utilization and resource dependence", (*Runner).Fig6},
		{"fig7", "Performance headroom of Ideal Constable", (*Runner).Fig7},
		{"fig9", "SLD update pressure and wrong-path sensitivity", (*Runner).Fig9},
		{"tab1", "Storage overhead of Constable", (*Runner).Table1},
		{"tab3", "Energy/leakage/area of Constable structures", (*Runner).Table3},
		{"fig11", "Speedup over baseline (noSMT)", (*Runner).Fig11},
		{"fig12", "Per-workload speedup (noSMT)", (*Runner).Fig12},
		{"fig13", "Speedup by addressing-mode-restricted elimination", (*Runner).Fig13},
		{"fig14", "Speedup over baseline (SMT2)", (*Runner).Fig14},
		{"fig15", "Comparison with ELAR and RFP", (*Runner).Fig15},
		{"fig16", "Load coverage of Constable versus EVES", (*Runner).Fig16},
		{"fig17", "Global-stable coverage breakdown", (*Runner).Fig17},
		{"fig18", "RS-allocation and L1-D-access reduction", (*Runner).Fig18},
		{"fig19", "Core dynamic power breakdown", (*Runner).Fig19},
		{"fig20", "Sensitivity to load width and pipeline depth", (*Runner).Fig20},
		{"fig21", "Memory-ordering violations and ROB-allocation increase", (*Runner).Fig21},
		{"fig22", "Constable-AMT-I versus CV-bit pinning", (*Runner).Fig22},
		{"fig23", "APX: dynamic-load reduction and global-stable fraction", (*Runner).Fig23},
		{"fig24", "APX: addressing-mode distribution", (*Runner).Fig24},
		{"abl1", "Ablation: cacheline- vs full-address-indexed AMT (§6.6)", (*Runner).Abl1},
		{"abl2", "Ablation: context-switch flush frequency (§6.7.3)", (*Runner).Abl2},
		{"interplay", "Mechanism interplay: Constable × bpred/prefetch variants", (*Runner).Interplay},
	}
}

// IDs returns the experiment identifiers in paper order.
func (r *Runner) IDs() []string {
	ds := r.drivers()
	ids := make([]string, len(ds))
	for i, d := range ds {
		ids[i] = d.id
	}
	return ids
}

// Run executes the experiment with the given id ("all" runs everything).
func (r *Runner) Run(id string) error {
	if id == "all" {
		for _, d := range r.drivers() {
			if err := r.Run(d.id); err != nil {
				return fmt.Errorf("%s: %w", d.id, err)
			}
		}
		return nil
	}
	for _, d := range r.drivers() {
		if d.id == id {
			fmt.Fprintf(r.cfg.Out, "==== %s: %s ====\n", d.id, d.title)
			return d.run(r)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, r.IDs())
}

// runMatrix streams every (workload, config) cell through runSweep and
// returns the assembled matrix indexed as [workloadIndex][configIndex] — for
// drivers that need per-cell counters. Drivers that only need the speedup
// table should sweep into a speedupAgg instead and never hold the matrix.
func (r *Runner) runMatrix(specs []*workload.Spec, makeOpts func(spec *workload.Spec, cfg int) sim.Options, numCfgs int) ([][]*sim.RunResult, error) {
	results := make([][]*sim.RunResult, len(specs))
	for wi := range specs {
		results[wi] = make([]*sim.RunResult, numCfgs)
	}
	if err := r.runSweep(specs, makeOpts, numCfgs, func(c cell) {
		results[c.wi][c.ci] = c.res
	}); err != nil {
		return nil, err
	}
	return results, nil
}

// categoryGeomeans aggregates per-workload speedups (configs vs column 0)
// into a per-category + GEOMEAN table by replaying the matrix through the
// streaming aggregator.
func categoryGeomeans(specs []*workload.Spec, results [][]*sim.RunResult, configNames []string) *stats.SpeedupTable {
	agg := newSpeedupAgg(specs, configNames)
	for wi := range results {
		for ci, res := range results[wi] {
			if res != nil {
				agg.observe(cell{wi: wi, ci: ci, res: res})
			}
		}
	}
	return agg.table()
}

// boxByCategory prints a per-category box-plot summary of per-workload values.
func boxByCategory(out io.Writer, specs []*workload.Spec, value func(wi int) float64) {
	perCat := make(map[string][]float64)
	var all []float64
	for wi, spec := range specs {
		v := value(wi)
		perCat[string(spec.Category)] = append(perCat[string(spec.Category)], v)
		all = append(all, v)
	}
	cats := make([]string, 0, len(perCat))
	for c := range perCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Fprintf(out, "  %-12s %s\n", c, stats.NewBoxPlot(perCat[c]))
	}
	fmt.Fprintf(out, "  %-12s %s\n", "ALL", stats.NewBoxPlot(all))
}

package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden fixtures from current output")

// goldenInstructions matches the budget the fixtures under testdata/ were
// generated with. Regenerate via:
//
//	go test ./internal/experiments -run TestGoldenArtifacts -update-golden
const goldenInstructions = 12_000

// TestGoldenArtifacts locks the printed experiment artifacts to the output
// of the pre-refactor seed: any byte-level drift in a driver's artifact —
// aggregation, formatting, or simulation behavior — fails this test. The
// fixtures cover the static tables (tab1, tab3), the analysis-only driver
// (fig3), a box-and-whiskers matrix driver (fig6), and a speedup-table
// driver (fig11), so every aggregation path is pinned.
func TestGoldenArtifacts(t *testing.T) {
	ids := []string{"tab1", "tab3", "fig3"}
	if !testing.Short() {
		ids = append(ids, "fig6", "fig11", "interplay")
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			r := NewRunner(Config{Instructions: goldenInstructions, FullSuite: false, Out: &buf})
			if err := r.Run(id); err != nil {
				t.Fatal(err)
			}
			path := "testdata/golden_" + id + ".txt"
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got := buf.Bytes(); !bytes.Equal(got, want) {
				t.Errorf("artifact drifted from %s:\n%s", path, diffLines(want, got))
			}
		})
	}
}

// diffLines renders the first divergence between two artifacts.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl, gl)
		}
	}
	return "lengths differ"
}

package experiments

import (
	"context"
	"fmt"

	"constable/internal/service"
	"constable/internal/sim"
	"constable/internal/stats"
	"constable/internal/workload"
)

// cell is one completed (workload, config) result of a suite sweep. Only
// successful cells reach aggregators; failures cancel the sweep and surface
// from runSweep as its error.
type cell struct {
	wi, ci int
	res    *sim.RunResult
}

// runSweep submits the whole (workload, config) matrix to the shared
// service sweep engine as one job group and streams each cell to onCell as
// it completes — there is no full-matrix barrier, so aggregation overlaps
// simulation. onCell is invoked serially from this goroutine. Cells whose
// canonical JobSpec matches an earlier submission — within this sweep or
// from any previous driver in the process — are served from the scheduler's
// result cache (or persistent store, when the process has one) instead of
// re-simulating. The sweep runs fail-fast under a real cancelable context:
// after the first cell failure the engine cancels the rest, queued cells
// are dropped from the scheduler queue, and the first error is returned
// once the sweep drains. This is the same engine behind POST /v1/sweeps, so
// CLI drivers and HTTP clients share one code path — and because the
// scheduler executes through its pluggable backend, a driver pointed at a
// scheduler with registered remote workers shards its cells across them
// with no change here and byte-identical printed artifacts.
func (r *Runner) runSweep(specs []*workload.Spec, makeOpts func(spec *workload.Spec, cfg int) sim.Options, numCfgs int, onCell func(cell)) error {
	matrix := make([][]service.JobSpec, len(specs))
	for wi := range specs {
		row := make([]service.JobSpec, numCfgs)
		for ci := 0; ci < numCfgs; ci++ {
			row[ci] = service.SpecFromOptions(makeOpts(specs[wi], ci))
		}
		matrix[wi] = row
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw, err := service.Default().StartSweep(ctx, matrix, service.SweepOptions{FailFast: true})
	if err != nil {
		return err
	}
	if err := sw.Stream(ctx, true, func(ev service.SweepEvent) error {
		if ev.Status != service.StatusDone {
			return nil
		}
		if ev.Result == nil {
			// Only possible when the cell was evicted from the LRU (with no
			// data dir) before this subscriber caught up — fail loudly
			// rather than feed a partial matrix to the aggregators.
			return fmt.Errorf("experiments: cell (%d,%d) result evicted before aggregation (raise the cache size or run with -data-dir)", ev.Row, ev.Col)
		}
		onCell(cell{wi: ev.Row, ci: ev.Col, res: ev.Result})
		return nil
	}); err != nil {
		return err
	}
	return sw.Err()
}

// speedupAgg incrementally aggregates per-category speedups from a sweep.
// Each cell's speedup against the baseline column (config 0) is computed the
// moment both cells of its workload are available; only cycle counts are
// retained, never the full results. The final table reduction runs in
// deterministic workload order, so the printed artifact is independent of
// cell completion order.
type speedupAgg struct {
	specs       []*workload.Spec
	configNames []string
	baseCycles  []uint64   // [wi]; 0 = baseline cell not yet seen
	pendCycles  [][]uint64 // [wi][ci] cycles waiting for their baseline
	speedups    [][]float64
}

func newSpeedupAgg(specs []*workload.Spec, configNames []string) *speedupAgg {
	a := &speedupAgg{
		specs:       specs,
		configNames: configNames,
		baseCycles:  make([]uint64, len(specs)),
		pendCycles:  make([][]uint64, len(specs)),
		speedups:    make([][]float64, len(configNames)),
	}
	for wi := range specs {
		a.pendCycles[wi] = make([]uint64, len(configNames))
	}
	for ci := range configNames {
		a.speedups[ci] = make([]float64, len(specs))
	}
	return a
}

// observe folds one completed cell into the aggregate.
func (a *speedupAgg) observe(c cell) {
	if c.ci == 0 {
		a.baseCycles[c.wi] = c.res.Cycles
		for ci, cycles := range a.pendCycles[c.wi] {
			if cycles != 0 {
				a.speedups[ci][c.wi] = float64(c.res.Cycles) / float64(cycles)
				a.pendCycles[c.wi][ci] = 0
			}
		}
		return
	}
	if base := a.baseCycles[c.wi]; base != 0 {
		a.speedups[c.ci][c.wi] = float64(base) / float64(c.res.Cycles)
		return
	}
	a.pendCycles[c.wi][c.ci] = c.res.Cycles
}

// table reduces the aggregate into the per-category + GEOMEAN speedup table,
// iterating workloads in suite order for deterministic output.
func (a *speedupAgg) table() *stats.SpeedupTable {
	rows := make([]string, 0, len(workload.Categories)+1)
	for _, c := range workload.Categories {
		rows = append(rows, string(c))
	}
	rows = append(rows, "GEOMEAN")
	tbl := stats.NewSpeedupTable(rows, a.configNames[1:])

	for ci := 1; ci < len(a.configNames); ci++ {
		perCat := make(map[string][]float64)
		var all []float64
		for wi, spec := range a.specs {
			sp := a.speedups[ci][wi]
			perCat[string(spec.Category)] = append(perCat[string(spec.Category)], sp)
			all = append(all, sp)
		}
		for cat, xs := range perCat {
			tbl.Set(cat, a.configNames[ci], stats.Geomean(xs))
		}
		tbl.Set("GEOMEAN", a.configNames[ci], stats.Geomean(all))
	}
	return tbl
}

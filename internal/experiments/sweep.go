package experiments

import (
	"context"
	"sync"

	"constable/internal/service"
	"constable/internal/sim"
	"constable/internal/stats"
	"constable/internal/workload"
)

// cell is one completed (workload, config) result of a suite sweep.
type cell struct {
	wi, ci int
	res    *sim.RunResult
	err    error
}

// runSweep submits every (workload, config) pair to the shared service
// scheduler and streams each cell to onCell as it completes — there is no
// full-matrix barrier, so aggregation overlaps simulation. The sweep is
// sharded by workload: one drainer per workload forwards its row's cells in
// config order while other shards are still simulating. onCell is invoked
// serially from a single goroutine. Cells whose canonical JobSpec matches an
// earlier submission — within this sweep or from any previous driver in the
// process — are served from the scheduler's result cache instead of
// re-simulating. The first submit or simulation error is returned after the
// sweep drains.
func (r *Runner) runSweep(specs []*workload.Spec, makeOpts func(spec *workload.Spec, cfg int) sim.Options, numCfgs int, onCell func(cell)) error {
	sched := service.Default()
	jobs := make([][]*service.Job, len(specs))
	var firstErr error
	for wi := range specs {
		jobs[wi] = make([]*service.Job, numCfgs)
		for ci := 0; ci < numCfgs; ci++ {
			j, err := sched.Submit(service.SpecFromOptions(makeOpts(specs[wi], ci)))
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			jobs[wi][ci] = j
		}
	}

	ch := make(chan cell)
	var wg sync.WaitGroup
	ctx := context.Background()
	for wi := range jobs {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for ci, j := range jobs[wi] {
				if j == nil {
					continue
				}
				res, err := j.Wait(ctx)
				ch <- cell{wi: wi, ci: ci, res: res, err: err}
			}
		}(wi)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	for c := range ch {
		if c.err != nil {
			if firstErr == nil {
				firstErr = c.err
			}
			continue
		}
		onCell(c)
	}
	return firstErr
}

// speedupAgg incrementally aggregates per-category speedups from a sweep.
// Each cell's speedup against the baseline column (config 0) is computed the
// moment both cells of its workload are available; only cycle counts are
// retained, never the full results. The final table reduction runs in
// deterministic workload order, so the printed artifact is independent of
// cell completion order.
type speedupAgg struct {
	specs       []*workload.Spec
	configNames []string
	baseCycles  []uint64   // [wi]; 0 = baseline cell not yet seen
	pendCycles  [][]uint64 // [wi][ci] cycles waiting for their baseline
	speedups    [][]float64
}

func newSpeedupAgg(specs []*workload.Spec, configNames []string) *speedupAgg {
	a := &speedupAgg{
		specs:       specs,
		configNames: configNames,
		baseCycles:  make([]uint64, len(specs)),
		pendCycles:  make([][]uint64, len(specs)),
		speedups:    make([][]float64, len(configNames)),
	}
	for wi := range specs {
		a.pendCycles[wi] = make([]uint64, len(configNames))
	}
	for ci := range configNames {
		a.speedups[ci] = make([]float64, len(specs))
	}
	return a
}

// observe folds one completed cell into the aggregate.
func (a *speedupAgg) observe(c cell) {
	if c.ci == 0 {
		a.baseCycles[c.wi] = c.res.Cycles
		for ci, cycles := range a.pendCycles[c.wi] {
			if cycles != 0 {
				a.speedups[ci][c.wi] = float64(c.res.Cycles) / float64(cycles)
				a.pendCycles[c.wi][ci] = 0
			}
		}
		return
	}
	if base := a.baseCycles[c.wi]; base != 0 {
		a.speedups[c.ci][c.wi] = float64(base) / float64(c.res.Cycles)
		return
	}
	a.pendCycles[c.wi][c.ci] = c.res.Cycles
}

// table reduces the aggregate into the per-category + GEOMEAN speedup table,
// iterating workloads in suite order for deterministic output.
func (a *speedupAgg) table() *stats.SpeedupTable {
	rows := make([]string, 0, len(workload.Categories)+1)
	for _, c := range workload.Categories {
		rows = append(rows, string(c))
	}
	rows = append(rows, "GEOMEAN")
	tbl := stats.NewSpeedupTable(rows, a.configNames[1:])

	for ci := 1; ci < len(a.configNames); ci++ {
		perCat := make(map[string][]float64)
		var all []float64
		for wi, spec := range a.specs {
			sp := a.speedups[ci][wi]
			perCat[string(spec.Category)] = append(perCat[string(spec.Category)], sp)
			all = append(all, sp)
		}
		for cat, xs := range perCat {
			tbl.Set(cat, a.configNames[ci], stats.Geomean(xs))
		}
		tbl.Set("GEOMEAN", a.configNames[ci], stats.Geomean(all))
	}
	return tbl
}

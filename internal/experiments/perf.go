package experiments

import (
	"fmt"
	"sort"

	"constable/internal/stats"

	"constable/internal/constable"
	"constable/internal/isa"
	"constable/internal/pipeline"
	"constable/internal/sim"
	"constable/internal/workload"
)

// perfConfig names one mechanism column of a speedup figure.
type perfConfig struct {
	name string
	mech sim.Mechanism
	core func() *pipeline.Config // optional core override
}

func (r *Runner) perfOpts(configs []perfConfig, threads int) func(spec *workload.Spec, ci int) sim.Options {
	return func(spec *workload.Spec, ci int) sim.Options {
		opts := sim.Options{
			Workload:     spec,
			Instructions: r.cfg.Instructions,
			Threads:      threads,
			Mech:         configs[ci].mech,
		}
		if configs[ci].core != nil {
			opts.Core = configs[ci].core()
		}
		return opts
	}
}

func configNames(configs []perfConfig) []string {
	names := make([]string, len(configs))
	for i, c := range configs {
		names[i] = c.name
	}
	return names
}

// runPerf materializes the full result matrix — for drivers that read
// per-cell counters (coverage, power, per-workload rows).
func (r *Runner) runPerf(configs []perfConfig, threads int) ([][]*sim.RunResult, []string, error) {
	names := configNames(configs)
	results, err := r.runMatrix(r.cfg.suite(), r.perfOpts(configs, threads), len(configs))
	return results, names, err
}

// runPerfTable streams the sweep straight into the per-category speedup
// aggregator: cells fold in as they complete and the full matrix is never
// held in memory.
func (r *Runner) runPerfTable(configs []perfConfig, threads int) (*stats.SpeedupTable, error) {
	specs := r.cfg.suite()
	agg := newSpeedupAgg(specs, configNames(configs))
	if err := r.runSweep(specs, r.perfOpts(configs, threads), len(configs), agg.observe); err != nil {
		return nil, err
	}
	return agg.table(), nil
}

// Fig7 reproduces Fig. 7: the performance headroom of Ideal Constable
// against Ideal Stable LVP, Ideal Stable LVP + data-fetch elimination, and
// a 2× load-execution-width machine.
func (r *Runner) Fig7() error {
	twoX := func() *pipeline.Config {
		cfg := pipeline.DefaultConfig()
		cfg.NumLoadPorts *= 2
		return &cfg
	}
	configs := []perfConfig{
		{name: "base"},
		{name: "IdealStableLVP", mech: sim.Mechanism{IdealStableLVP: true}},
		{name: "LVP+DFE", mech: sim.Mechanism{IdealStableLVP: true, IdealDataFetchElim: true}},
		{name: "2xLoadWidth", core: twoX},
		{name: "IdealConstable", mech: sim.Mechanism{IdealConstable: true}},
	}
	tbl, err := r.runPerfTable(configs, 1)
	if err != nil {
		return err
	}
	fmt.Fprint(r.cfg.Out, tbl)
	fmt.Fprintln(r.cfg.Out, "(paper GEOMEAN: LVP 1.043, LVP+DFE 1.067, 2x 1.088, Ideal Constable 1.091)")
	return nil
}

// Fig11 reproduces Fig. 11: noSMT speedups of EVES, Constable,
// EVES+Constable and EVES+Ideal Constable over the baseline.
func (r *Runner) Fig11() error {
	configs := []perfConfig{
		{name: "base"},
		{name: "EVES", mech: sim.Mechanism{EVES: true}},
		{name: "Constable", mech: sim.Mechanism{Constable: true}},
		{name: "EVES+Constable", mech: sim.Mechanism{EVES: true, Constable: true}},
		{name: "EVES+Ideal", mech: sim.Mechanism{EVES: true, IdealConstable: true}},
	}
	tbl, err := r.runPerfTable(configs, 1)
	if err != nil {
		return err
	}
	fmt.Fprint(r.cfg.Out, tbl)
	fmt.Fprintln(r.cfg.Out, "(paper GEOMEAN: EVES 1.047, Constable 1.051, EVES+Constable 1.085, EVES+Ideal 1.103)")
	return nil
}

// Fig12 reproduces Fig. 12: the per-workload speedup line graph, sorted by
// EVES's gain, highlighting where Constable beats EVES and vice versa.
func (r *Runner) Fig12() error {
	configs := []perfConfig{
		{name: "base"},
		{name: "EVES", mech: sim.Mechanism{EVES: true}},
		{name: "Constable", mech: sim.Mechanism{Constable: true}},
		{name: "EVES+Constable", mech: sim.Mechanism{EVES: true, Constable: true}},
	}
	specs := r.cfg.suite()
	results, _, err := r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	type row struct {
		name             string
		eves, cons, both float64
	}
	rows := make([]row, len(specs))
	for wi, spec := range specs {
		rows[wi] = row{
			name: spec.Name,
			eves: sim.Speedup(results[wi][0], results[wi][1]),
			cons: sim.Speedup(results[wi][0], results[wi][2]),
			both: sim.Speedup(results[wi][0], results[wi][3]),
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].eves < rows[j].eves })
	consWins := 0
	fmt.Fprintf(r.cfg.Out, "  %-30s %8s %10s %10s\n", "workload (sorted by EVES)", "EVES", "Constable", "E+C")
	for _, row := range rows {
		marker := " "
		if row.cons > row.eves {
			marker = "*"
			consWins++
		}
		fmt.Fprintf(r.cfg.Out, "%s %-30s %8.3f %10.3f %10.3f\n", marker, row.name, row.eves, row.cons, row.both)
	}
	fmt.Fprintf(r.cfg.Out, "Constable beats EVES in %d of %d workloads (paper: 60 of 90)\n", consWins, len(rows))
	return nil
}

// Fig13 reproduces Fig. 13: Constable restricted to eliminating only
// PC-relative, only stack-relative, or only register-relative loads.
func (r *Runner) Fig13() error {
	modeCfg := func(m isa.AddrMode) sim.Mechanism {
		cfg := constable.DefaultConfig()
		cfg.ModeFilter = m
		return sim.Mechanism{Constable: true, ConstableConfig: &cfg}
	}
	configs := []perfConfig{
		{name: "base"},
		{name: "PC-rel", mech: modeCfg(isa.AddrPCRel)},
		{name: "Stack-rel", mech: modeCfg(isa.AddrStackRel)},
		{name: "Reg-rel", mech: modeCfg(isa.AddrRegRel)},
		{name: "All", mech: sim.Mechanism{Constable: true}},
	}
	tbl, err := r.runPerfTable(configs, 1)
	if err != nil {
		return err
	}
	fmt.Fprint(r.cfg.Out, tbl)
	fmt.Fprintln(r.cfg.Out, "(paper GEOMEAN: PC-rel 1.011, Stack-rel 1.026, Reg-rel 1.018, All 1.051)")
	return nil
}

// Fig14 reproduces Fig. 14: SMT2 speedups of EVES, Constable and
// EVES+Constable over the SMT2 baseline.
func (r *Runner) Fig14() error {
	configs := []perfConfig{
		{name: "base"},
		{name: "EVES", mech: sim.Mechanism{EVES: true}},
		{name: "Constable", mech: sim.Mechanism{Constable: true}},
		{name: "EVES+Constable", mech: sim.Mechanism{EVES: true, Constable: true}},
	}
	tbl, err := r.runPerfTable(configs, 2)
	if err != nil {
		return err
	}
	fmt.Fprint(r.cfg.Out, tbl)
	fmt.Fprintln(r.cfg.Out, "(paper GEOMEAN: EVES 1.036, Constable 1.088, EVES+Constable 1.113;")
	fmt.Fprintln(r.cfg.Out, " the key shape: under SMT2 Constable clearly beats EVES)")
	return nil
}

// Fig15 reproduces Fig. 15: ELAR and RFP standalone and combined with
// Constable.
func (r *Runner) Fig15() error {
	configs := []perfConfig{
		{name: "base"},
		{name: "ELAR", mech: sim.Mechanism{ELAR: true}},
		{name: "RFP", mech: sim.Mechanism{RFP: true}},
		{name: "Constable", mech: sim.Mechanism{Constable: true}},
		{name: "ELAR+Cons", mech: sim.Mechanism{ELAR: true, Constable: true}},
		{name: "RFP+Cons", mech: sim.Mechanism{RFP: true, Constable: true}},
	}
	tbl, err := r.runPerfTable(configs, 1)
	if err != nil {
		return err
	}
	fmt.Fprint(r.cfg.Out, tbl)
	fmt.Fprintln(r.cfg.Out, "(paper GEOMEAN: ELAR 1.007, RFP 1.045, Constable 1.051, ELAR+C 1.054, RFP+C 1.081)")
	return nil
}

package experiments

import (
	"fmt"

	"constable/internal/sim"
)

// Interplay sweeps Constable across the component axes of the mechanism
// zoo: weaker branch prediction (bimodal), the delta-pattern prefetcher,
// and no L1-D prefetching at all. The question it answers is how much of
// Constable's speedup survives — or grows — when the surrounding
// microarchitecture changes: elimination removes loads from the execution
// path entirely, so it should be insulated from prefetcher quality, while a
// weak front end throttles the rename-stage machinery it lives in. The
// sweep is row-for-row the matrix ci/distributed_smoke.sh replays across a
// worker cluster; beyond the speedup table it reports the L1-D hit/miss
// predictability of the suite via the l1dpred instrumentation axis.
func (r *Runner) Interplay() error {
	mech := func(name string) sim.Mechanism {
		m, err := sim.MechanismByName(name)
		if err != nil {
			// Names below are compile-time constants resolved against the
			// registry; failure is a programming error.
			panic(err)
		}
		return m
	}
	configs := []perfConfig{
		{name: "base"},
		{name: "Constable", mech: mech("constable")},
		{name: "C/bimodal", mech: mech("constable,bpred=bimodal")},
		{name: "C/pf-delta", mech: mech("constable,prefetch=delta")},
		{name: "C/pf-none", mech: mech("constable,prefetch=none")},
		{name: "base/pf-none", mech: mech("baseline,prefetch=none")},
	}
	results, names, err := r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	specs := r.cfg.suite()
	fmt.Fprint(r.cfg.Out, categoryGeomeans(specs, results, names))

	// Elimination coverage under each variant: eliminated / retired loads,
	// suite-wide. Coverage that holds steady across prefetcher variants is
	// the insulation claim made concrete.
	for ci := 1; ci < 5; ci++ {
		var elim, loads uint64
		for wi := range specs {
			elim += results[wi][ci].Pipeline.EliminatedLoads
			loads += results[wi][ci].Pipeline.RetiredLoads
		}
		fmt.Fprintf(r.cfg.Out, "  %-12s eliminated %5.1f%% of loads\n",
			names[ci], 100*float64(elim)/float64(loads))
	}

	// L1-D hit/miss predictability of the suite, measured by the counter
	// variant of the l1dpred axis on the baseline.
	probe, err := r.runMatrix(specs, r.perfOpts([]perfConfig{
		{name: "l1dpred", mech: mech("baseline,l1dpred=counter")},
	}, 1), 1)
	if err != nil {
		return err
	}
	var lookups, misp uint64
	for wi := range specs {
		c := probe[wi][0].Counters
		lookups += c.Get("l1dpred.lookups")
		misp += c.Get("l1dpred.mispredicts")
	}
	if lookups > 0 {
		fmt.Fprintf(r.cfg.Out, "  L1-D hit/miss predictor accuracy: %.1f%% over %d demand loads\n",
			100*(1-float64(misp)/float64(lookups)), lookups)
	}
	fmt.Fprintln(r.cfg.Out, "(expected shape: Constable's edge persists without an L1 prefetcher,")
	fmt.Fprintln(r.cfg.Out, " and shrinks under the bimodal front end that starves rename)")
	return nil
}

package experiments

import (
	"fmt"

	"constable/internal/constable"
	"constable/internal/pipeline"
	"constable/internal/sim"
	"constable/internal/stats"
	"constable/internal/workload"
)

// Fig6 reproduces Fig. 6: (a) the fraction of execution cycles where at
// least one load port is utilized, and (b) the categorization of those
// cycles by whether a global-stable load held a port while a non-global-
// stable load was waiting.
func (r *Runner) Fig6() error {
	specs := r.cfg.suite()
	stable, err := r.stableSets(specs)
	if err != nil {
		return err
	}
	results, err := r.runMatrix(specs, func(spec *workload.Spec, _ int) sim.Options {
		return sim.Options{
			Workload:     spec,
			Instructions: r.cfg.Instructions,
			StablePCs:    stable[spec.Name],
		}
	}, 1)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	fmt.Fprintln(out, "(a) fraction of cycles with >=1 load port utilized:")
	boxByCategory(out, specs, func(wi int) float64 {
		st := results[wi][0].Pipeline
		return frac(st.LoadUtilizedCycles, st.Cycles)
	})
	fmt.Fprintln(out, "(paper AVG: 32.7%)")
	fmt.Fprintln(out, "(b) load-utilized cycles where a global-stable load held a port while a")
	fmt.Fprintln(out, "    non-global-stable load waited:")
	boxByCategory(out, specs, func(wi int) float64 {
		st := results[wi][0].Pipeline
		return frac(st.StableWhileNonStableWaits, st.LoadUtilizedCycles)
	})
	fmt.Fprintln(out, "(paper AVG: 23.0%)")
	return nil
}

// Fig9 reproduces Fig. 9: (a) the average number of SLD updates per cycle,
// and (b) the performance effect of letting wrong-path instructions update
// Constable's structures (the paper's default) versus correct-path-only.
func (r *Runner) Fig9() error {
	specs := r.cfg.suite()
	noWP := func() *pipeline.Config {
		cfg := pipeline.DefaultConfig()
		cfg.WrongPathUpdates = false
		return &cfg
	}
	results, err := r.runMatrix(specs, func(spec *workload.Spec, ci int) sim.Options {
		opts := sim.Options{Workload: spec, Instructions: r.cfg.Instructions,
			Mech: sim.Mechanism{Constable: true}}
		if ci == 1 {
			opts.Core = noWP()
		}
		return opts
	}, 2)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	fmt.Fprintln(out, "(a) SLD updates per cycle (with Constable):")
	boxByCategory(out, specs, func(wi int) float64 {
		st := results[wi][0].Pipeline
		return frac(st.SLDUpdates, st.Cycles)
	})
	var le2 []float64
	for wi := range specs {
		st := results[wi][0].Pipeline
		le2 = append(le2, frac(st.SLDUpdatesLE2Cycles, st.Cycles))
	}
	fmt.Fprintf(out, "cycles with <=2 SLD updates: %.1f%% on average (paper: 98.23%%; paper mean updates/cycle: 0.28)\n",
		100*mean(le2))

	fmt.Fprintln(out, "(b) performance change, correct-path-only updates vs all-path updates:")
	boxByCategory(out, specs, func(wi int) float64 {
		return sim.Speedup(results[wi][0], results[wi][1]) - 1
	})
	fmt.Fprintln(out, "(paper: 82/90 workloads within ±1%, average change 0.2%)")
	return nil
}

// Fig16 reproduces Fig. 16: load coverage — the fraction of loads that are
// eliminated (Constable) or value-predicted (EVES).
func (r *Runner) Fig16() error {
	specs := r.cfg.suite()
	configs := []perfConfig{
		{name: "EVES", mech: sim.Mechanism{EVES: true}},
		{name: "Constable", mech: sim.Mechanism{Constable: true}},
		{name: "EVES+Constable", mech: sim.Mechanism{EVES: true, Constable: true}},
		{name: "EVES+Ideal", mech: sim.Mechanism{EVES: true, IdealConstable: true}},
	}
	results, names, err := r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	fmt.Fprintf(out, "  %-16s %10s\n", "config", "coverage")
	for ci, name := range names {
		var covered, loads uint64
		for wi := range specs {
			st := results[wi][ci].Pipeline
			covered += st.EliminatedLoads + st.ValuePredicted
			loads += st.RetiredLoads
		}
		fmt.Fprintf(out, "  %-16s %9.1f%%\n", name, 100*frac(covered, loads))
	}
	fmt.Fprintln(out, "(paper AVG: EVES 27.3%, Constable 23.5%, EVES+Constable 35.5%, EVES+Ideal 41.6%)")
	return nil
}

// Fig17 reproduces Fig. 17: the breakdown of loads per addressing mode into
// global-stable-and-eliminated, global-stable-but-not-eliminated, and
// not-global-stable-but-eliminated.
func (r *Runner) Fig17() error {
	specs := r.cfg.suite()
	stable, err := r.stableSets(specs)
	if err != nil {
		return err
	}
	results, err := r.runMatrix(specs, func(spec *workload.Spec, _ int) sim.Options {
		return sim.Options{
			Workload:     spec,
			Instructions: r.cfg.Instructions,
			Mech:         sim.Mechanism{Constable: true},
			StablePCs:    stable[spec.Name],
		}
	}, 1)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	modes := []string{"pc-rel", "stack-rel", "reg-rel"}
	var stableTotal, elimStableTotal, elimNonStable uint64
	fmt.Fprintf(out, "  %-10s %22s %26s\n", "mode", "stable+eliminated", "stable, not eliminated")
	for _, m := range modes {
		var stable, elim uint64
		for wi := range specs {
			st := results[wi][0].Pipeline
			stable += st.RetiredStableByMode[m]
			elim += st.EliminatedStableByMode[m]
		}
		stableTotal += stable
		elimStableTotal += elim
		fmt.Fprintf(out, "  %-10s %21.1f%% %25.1f%%\n", m,
			100*frac(elim, stable), 100*frac(stable-elim, stable))
	}
	for wi := range specs {
		elimNonStable += results[wi][0].Pipeline.EliminatedNonStable
	}
	fmt.Fprintf(out, "  ALL: %.1f%% of global-stable loads eliminated (paper: 56.4%%);\n",
		100*frac(elimStableTotal, stableTotal))
	fmt.Fprintf(out, "  plus %.1f%% extra non-global-stable loads eliminated (paper: 13.5%%)\n",
		100*frac(elimNonStable, stableTotal))
	return nil
}

// Fig18 reproduces Fig. 18: reductions in RS allocations and L1-D accesses
// with Constable relative to the baseline.
func (r *Runner) Fig18() error {
	specs := r.cfg.suite()
	results, err := r.runMatrix(specs, func(spec *workload.Spec, ci int) sim.Options {
		opts := sim.Options{Workload: spec, Instructions: r.cfg.Instructions}
		if ci == 1 {
			opts.Mech = sim.Mechanism{Constable: true}
		}
		return opts
	}, 2)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	fmt.Fprintln(out, "(a) reduction in RS allocations:")
	boxByCategory(out, specs, func(wi int) float64 {
		return 1 - frac(results[wi][1].Pipeline.RSAllocs, results[wi][0].Pipeline.RSAllocs)
	})
	fmt.Fprintln(out, "(paper AVG: 8.8%, up to 35.1%)")
	fmt.Fprintln(out, "(b) reduction in L1-D accesses:")
	boxByCategory(out, specs, func(wi int) float64 {
		return 1 - frac(results[wi][1].L1DAccesses, results[wi][0].L1DAccesses)
	})
	fmt.Fprintln(out, "(paper AVG: 26.0%)")
	return nil
}

// Fig19 reproduces Fig. 19: the core dynamic power breakdown for the
// baseline, EVES, Constable and EVES+Constable.
func (r *Runner) Fig19() error {
	specs := r.cfg.suite()
	configs := []perfConfig{
		{name: "base"},
		{name: "EVES", mech: sim.Mechanism{EVES: true}},
		{name: "Constable", mech: sim.Mechanism{Constable: true}},
		{name: "EVES+Constable", mech: sim.Mechanism{EVES: true, Constable: true}},
	}
	results, names, err := r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	var baseTotal float64
	for ci, name := range names {
		var fe, rs, rat, rob, eu, l1d, dtlb float64
		for wi := range specs {
			b := results[wi][ci].Power
			fe += b.FE
			rs += b.RS
			rat += b.RAT
			rob += b.ROB
			eu += b.EU
			l1d += b.L1D
			dtlb += b.DTLB
		}
		total := fe + rs + rat + rob + eu + l1d + dtlb
		if ci == 0 {
			baseTotal = total
		}
		fmt.Fprintf(out, "  %-16s total %6.1f%% of baseline | FE %5.1f%% OOO %5.1f%% (RS %4.1f%% RAT %4.1f%% ROB %4.1f%%) EU %5.1f%% MEU %5.1f%% (L1D %4.1f%% DTLB %4.1f%%)\n",
			name, 100*total/baseTotal,
			100*fe/total, 100*(rs+rat+rob)/total, 100*rs/total, 100*rat/total, 100*rob/total,
			100*eu/total, 100*(l1d+dtlb)/total, 100*l1d/total, 100*dtlb/total)
	}
	fmt.Fprintln(out, "(paper: Constable cuts core dynamic power 3.4% vs baseline — RS −5.1%, L1D −9.1%;")
	fmt.Fprintln(out, " EVES is roughly power-neutral, −0.2%)")
	return nil
}

// Fig20 reproduces Fig. 20: performance sensitivity of the baseline and
// Constable to (a) load-execution-width scaling and (b) pipeline-depth
// scaling.
func (r *Runner) Fig20() error {
	specs := r.cfg.suite()
	out := r.cfg.Out

	fmt.Fprintln(out, "(a) load execution width scaling (speedup over 3-wide baseline):")
	widths := []int{3, 4, 5, 6}
	var configs []perfConfig
	for _, w := range widths {
		w := w
		core := func() *pipeline.Config {
			cfg := pipeline.DefaultConfig()
			cfg.NumLoadPorts = w
			return &cfg
		}
		configs = append(configs,
			perfConfig{name: fmt.Sprintf("base-%dw", w), core: core},
			perfConfig{name: fmt.Sprintf("cons-%dw", w), core: core, mech: sim.Mechanism{Constable: true}},
		)
	}
	results, names, err := r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	printGeomeanRow(out, specs, results, names)

	fmt.Fprintln(out, "(b) pipeline depth scaling (ROB/RS/LB/SB x1..x4):")
	scales := []int{1, 2, 3, 4}
	configs = configs[:0]
	for _, s := range scales {
		s := s
		core := func() *pipeline.Config {
			cfg := pipeline.DefaultConfig()
			cfg.ROBSize *= s
			cfg.RSSize *= s
			cfg.LBSize *= s
			cfg.SBSize *= s
			cfg.IntPRF *= s
			return &cfg
		}
		configs = append(configs,
			perfConfig{name: fmt.Sprintf("base-x%d", s), core: core},
			perfConfig{name: fmt.Sprintf("cons-x%d", s), core: core, mech: sim.Mechanism{Constable: true}},
		)
	}
	results, names, err = r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	printGeomeanRow(out, specs, results, names)
	fmt.Fprintln(out, "(paper: Constable keeps adding performance at every width and depth scale)")
	return nil
}

// printGeomeanRow prints geomean speedups of every config against config 0.
func printGeomeanRow(out interface{ Write([]byte) (int, error) }, specs []*workload.Spec, results [][]*sim.RunResult, names []string) {
	for ci, name := range names {
		var sp []float64
		for wi := range specs {
			sp = append(sp, sim.Speedup(results[wi][0], results[wi][ci]))
		}
		fmt.Fprintf(out, "  %-10s %7.4f\n", name, geomean(sp))
	}
}

// Fig21 reproduces Fig. 21: (a) the fraction of eliminated loads that
// violate memory ordering, and (b) the increase in ROB allocations caused
// by flush-driven re-execution.
func (r *Runner) Fig21() error {
	specs := r.cfg.suite()
	results, err := r.runMatrix(specs, func(spec *workload.Spec, ci int) sim.Options {
		opts := sim.Options{Workload: spec, Instructions: r.cfg.Instructions}
		if ci == 1 {
			opts.Mech = sim.Mechanism{Constable: true}
		}
		return opts
	}, 2)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	fmt.Fprintln(out, "(a) fraction of eliminated loads that violate memory ordering:")
	boxByCategory(out, specs, func(wi int) float64 {
		st := results[wi][1].Pipeline
		return frac(st.EliminatedThatViolated, st.EliminatedLoads)
	})
	fmt.Fprintln(out, "(paper AVG: 0.09%; <0.5% in 86 of 90 workloads)")
	fmt.Fprintln(out, "(b) increase in allocated (ROB) instructions with Constable:")
	boxByCategory(out, specs, func(wi int) float64 {
		return frac(results[wi][1].Pipeline.ROBAllocs, results[wi][0].Pipeline.ROBAllocs) - 1
	})
	fmt.Fprintln(out, "(paper AVG: +0.3%; <1% in 79 of 90 workloads)")
	return nil
}

// Fig22 reproduces Fig. 22: the Constable-AMT-I variant (invalidate the AMT
// on every L1-D eviction) against the default CV-bit-pinning design:
// speedup and elimination coverage.
func (r *Runner) Fig22() error {
	specs := r.cfg.suite()
	amtI := constable.DefaultConfig()
	amtI.InvalidateOnL1Evict = true
	configs := []perfConfig{
		{name: "base"},
		{name: "Constable", mech: sim.Mechanism{Constable: true}},
		{name: "Constable-AMT-I", mech: sim.Mechanism{Constable: true, ConstableConfig: &amtI}},
	}
	results, names, err := r.runPerf(configs, 1)
	if err != nil {
		return err
	}
	out := r.cfg.Out
	tbl := categoryGeomeans(specs, results, names)
	fmt.Fprint(out, tbl)
	for _, ci := range []int{1, 2} {
		var elim, loads uint64
		for wi := range specs {
			elim += results[wi][ci].Pipeline.EliminatedLoads
			loads += results[wi][ci].Pipeline.RetiredLoads
		}
		fmt.Fprintf(out, "  %-16s coverage %5.1f%%\n", names[ci], 100*frac(elim, loads))
	}
	fmt.Fprintln(out, "(paper: AMT-I loses 0.9% performance and 3.4% coverage vs vanilla Constable)")
	return nil
}

// stableSets runs the Load Inspector pre-pass for each workload serially
// (results are memoized inside sim) and returns the stable-PC sets by name.
func (r *Runner) stableSets(specs []*workload.Spec) (map[string]map[uint64]bool, error) {
	out := make(map[string]map[uint64]bool, len(specs))
	for _, spec := range specs {
		ins, err := sim.StableAnalysis(spec, false, r.cfg.Instructions)
		if err != nil {
			return nil, err
		}
		out[spec.Name] = ins.StableLoadPCs()
	}
	return out, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func geomean(xs []float64) float64 {
	return stats.Geomean(xs)
}

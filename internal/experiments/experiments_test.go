package experiments

import (
	"bytes"
	"strings"
	"testing"

	"constable/internal/sim"
	"constable/internal/workload"
)

func testRunner(buf *bytes.Buffer, insts uint64) *Runner {
	return NewRunner(Config{Instructions: insts, FullSuite: false, Out: buf})
}

func TestIDsCoverAllPaperArtifacts(t *testing.T) {
	var buf bytes.Buffer
	ids := testRunner(&buf, 1000).IDs()
	want := []string{"fig3", "fig6", "fig7", "fig9", "tab1", "tab3", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"fig21", "fig22", "fig23", "fig24", "abl1", "abl2", "interplay"}
	if len(ids) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner(&buf, 1000).Run("fig99"); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestTable1PrintsPaperNumbers(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner(&buf, 1000).Run("tab1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"7.9", "4.0", "12.4", "SLD", "RMT", "AMT"} {
		if !strings.Contains(out, frag) {
			t.Errorf("tab1 output missing %q:\n%s", frag, out)
		}
	}
}

func TestTable3PrintsStructures(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner(&buf, 1000).Run("tab3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"10.76", "16.70", "0.211"} {
		if !strings.Contains(out, frag) {
			t.Errorf("tab3 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig3ReportsAllPanels(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner(&buf, 15_000).Run("fig3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"(a)", "(b)", "(c)", "(d)", "pc-rel", "stack-rel", "reg-rel", "250+"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig3 output missing %q", frag)
		}
	}
}

func TestFig11ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup matrix is slow")
	}
	var buf bytes.Buffer
	r := testRunner(&buf, 40_000)
	configs := []perfConfig{
		{name: "base"},
		{name: "Constable", mech: sim.Mechanism{Constable: true}},
	}
	results, names, err := r.runPerf(configs, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := categoryGeomeans(r.cfg.suite(), results, names)
	g := tbl.Get("GEOMEAN", "Constable")
	if g < 1.0 {
		t.Errorf("Constable geomean speedup %.4f below 1.0", g)
	}
}

func TestRunMatrixPropagatesErrors(t *testing.T) {
	var buf bytes.Buffer
	r := testRunner(&buf, 0) // zero instructions defaults to 100k inside sim; force error differently
	_ = r
	// runMatrix with a failing makeOpts is covered via unknown workloads in
	// sim tests; here just ensure a tiny real matrix works.
	r2 := testRunner(&buf, 5_000)
	specs := r2.cfg.suite()[:2]
	res, err := r2.runMatrix(specs, func(spec *workload.Spec, ci int) sim.Options {
		return sim.Options{Workload: spec, Instructions: 5_000}
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0][0] == nil || res[1][0] == nil {
		t.Fatal("matrix cells not filled")
	}
}

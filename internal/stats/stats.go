// Package stats provides the counter and summary-statistics utilities used
// by the simulator and the experiment drivers: an interned counter registry
// with slice-backed hot-path counter sets (Intern, CounterSet, Snapshot),
// named counters, geometric means of speedups, and box-and-whiskers
// summaries matching the paper's plotting conventions (§6.7.1 footnote 10).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Counters is a set of named uint64 event counters, safe for concurrent use.
// The zero value is ready to use. Hot paths should prefer a CounterSet over
// interned CounterIDs; Counters hashes its key on every operation and takes
// a lock, which is fine for setup/aggregation code but not per-event use.
type Counters struct {
	mu sync.Mutex
	m  map[string]uint64
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n uint64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += n
	c.mu.Unlock()
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of the named counter (zero if never touched).
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for n, v := range other.Snapshot() {
		c.Add(n, v)
	}
}

// Snapshot returns a point-in-time copy of the counters.
func (c *Counters) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := make(Snapshot, len(c.m))
	for n, v := range c.m {
		snap[n] = v
	}
	return snap
}

// String renders the counters one per line, sorted by name.
func (c *Counters) String() string {
	snap := c.Snapshot()
	var b strings.Builder
	for _, n := range snap.Names() {
		fmt.Fprintf(&b, "%-40s %d\n", n, snap[n])
	}
	return b.String()
}

// Geomean returns the geometric mean of xs. It returns 1.0 for an empty
// slice and panics on non-positive values, which would indicate a broken
// speedup computation upstream.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1.0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (zero for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio returns num/den, or 0 when den is zero.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// BoxPlot summarises a distribution the way the paper's box-and-whiskers
// figures do: quartile box, 1.5×IQR whiskers, and the mean marked inside the
// box.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLo, WhiskerHi     float64
	Mean                     float64
	N                        int
}

// NewBoxPlot computes the box-plot summary of xs. An empty input yields the
// zero BoxPlot.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	bp := BoxPlot{
		Min:    s[0],
		Max:    s[len(s)-1],
		Q1:     Percentile(s, 25),
		Median: Percentile(s, 50),
		Q3:     Percentile(s, 75),
		Mean:   Mean(s),
		N:      len(s),
	}
	iqr := bp.Q3 - bp.Q1
	bp.WhiskerLo = math.Max(bp.Min, bp.Q1-1.5*iqr)
	bp.WhiskerHi = math.Min(bp.Max, bp.Q3+1.5*iqr)
	return bp
}

// Percentile returns the p-th percentile (0..100) of the sorted slice s
// using linear interpolation.
func Percentile(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// String renders the box-plot summary on one line.
func (b BoxPlot) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g mean=%.4g q3=%.4g max=%.4g",
		b.N, b.Min, b.Q1, b.Median, b.Mean, b.Q3, b.Max)
}

// SpeedupTable is a category → configuration → geomean-speedup table, the
// shape of most of the paper's bar charts (Figs. 7, 11, 13, 14, 15, 22).
type SpeedupTable struct {
	Categories []string    // row order
	Configs    []string    // column order
	Cells      [][]float64 // [category][config]
}

// NewSpeedupTable allocates a table with the given rows and columns.
func NewSpeedupTable(categories, configs []string) *SpeedupTable {
	cells := make([][]float64, len(categories))
	for i := range cells {
		cells[i] = make([]float64, len(configs))
	}
	return &SpeedupTable{Categories: categories, Configs: configs, Cells: cells}
}

// Set stores a value; unknown names panic (driver bug).
func (t *SpeedupTable) Set(category, config string, v float64) {
	t.Cells[t.rowIndex(category)][t.colIndex(config)] = v
}

// Get returns a cell value.
func (t *SpeedupTable) Get(category, config string) float64 {
	return t.Cells[t.rowIndex(category)][t.colIndex(config)]
}

func (t *SpeedupTable) rowIndex(category string) int {
	for i, c := range t.Categories {
		if c == category {
			return i
		}
	}
	panic("stats: unknown category " + category)
}

func (t *SpeedupTable) colIndex(config string) int {
	for i, c := range t.Configs {
		if c == config {
			return i
		}
	}
	panic("stats: unknown config " + config)
}

// String renders the table with categories as rows.
func (t *SpeedupTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "")
	for _, c := range t.Configs {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteByte('\n')
	for i, cat := range t.Categories {
		fmt.Fprintf(&b, "%-14s", cat)
		for j := range t.Configs {
			fmt.Fprintf(&b, "%16.4f", t.Cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

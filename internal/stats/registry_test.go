package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestInternStableIDs(t *testing.T) {
	a := Intern("test.registry.alpha")
	b := Intern("test.registry.beta")
	if a == b {
		t.Fatal("distinct names must get distinct IDs")
	}
	if again := Intern("test.registry.alpha"); again != a {
		t.Errorf("re-interning returned %d, want %d", again, a)
	}
	if got := CounterName(a); got != "test.registry.alpha" {
		t.Errorf("CounterName = %q", got)
	}
	if CounterName(-1) != "" || CounterName(CounterID(1<<30)) != "" {
		t.Error("out-of-range CounterName must be empty")
	}
	if NumCounters() < 2 {
		t.Errorf("NumCounters = %d", NumCounters())
	}
}

func TestInternConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	ids := make([]CounterID, 16)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = Intern("test.registry.concurrent")
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("concurrent interns disagree: %v", ids)
		}
	}
}

func TestCounterSet(t *testing.T) {
	x := Intern("test.set.x")
	y := Intern("test.set.y")
	var s CounterSet
	if s.Get(y) != 0 {
		t.Error("untouched counter must be zero")
	}
	s.Inc(x)
	s.Add(x, 4)
	s.Add(y, 2)
	if s.Get(x) != 5 || s.Get(y) != 2 {
		t.Errorf("got x=%d y=%d", s.Get(x), s.Get(y))
	}
	snap := s.Snapshot()
	if snap.Get("test.set.x") != 5 || snap.Get("test.set.y") != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestSnapshotMergeFilterJSON(t *testing.T) {
	a := Snapshot{"pipeline.cycles": 10, "constable.eliminated": 3}
	b := Snapshot{"pipeline.cycles": 5, "pipeline.retired": 7}
	a.Merge(b)
	if a["pipeline.cycles"] != 15 || a["pipeline.retired"] != 7 {
		t.Errorf("merge = %v", a)
	}
	f := a.Filter("pipeline.")
	if len(f) != 2 || f["constable.eliminated"] != 0 {
		t.Errorf("filter = %v", f)
	}
	names := a.Names()
	if len(names) != 3 || names[0] != "constable.eliminated" {
		t.Errorf("names = %v", names)
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back["pipeline.cycles"] != 15 {
		t.Errorf("round-trip = %v", back)
	}
}

// TestCountersConcurrentAdd locks in that the string-keyed Counters is safe
// for concurrent use (run under -race): multiple goroutines counting into
// the same set must not race and must not lose increments.
func TestCountersConcurrentAdd(t *testing.T) {
	var c Counters
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc("shared")
				c.Add("bulk", 2)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("shared"); got != goroutines*perG {
		t.Errorf("shared = %d, want %d", got, goroutines*perG)
	}
	if got := c.Get("bulk"); got != 2*goroutines*perG {
		t.Errorf("bulk = %d, want %d", got, 2*goroutines*perG)
	}
}

// Satellite edge cases: geomean of empty and of zero-valued speedup sets.
func TestGeomeanEdgeCases(t *testing.T) {
	if g := Geomean([]float64{}); g != 1.0 {
		t.Errorf("geomean of empty slice = %v, want the neutral speedup 1.0", g)
	}
	for _, zeros := range [][]float64{{0}, {0, 0, 0}, {1.5, 0, 2.0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geomean(%v) must panic: a zero speedup means a broken upstream computation", zeros)
				}
			}()
			Geomean(zeros)
		}()
	}
}

// Satellite edge cases: box-and-whiskers summaries of fewer than 4 samples,
// where quartiles interpolate between the few points available.
func TestBoxPlotFewSamples(t *testing.T) {
	one := NewBoxPlot([]float64{5})
	if one.N != 1 || one.Min != 5 || one.Max != 5 || one.Median != 5 ||
		one.Q1 != 5 || one.Q3 != 5 || one.Mean != 5 {
		t.Errorf("single-sample boxplot = %+v", one)
	}
	if one.WhiskerLo != 5 || one.WhiskerHi != 5 {
		t.Errorf("single-sample whiskers = %+v", one)
	}

	two := NewBoxPlot([]float64{1, 3})
	if two.Median != 2 || two.Min != 1 || two.Max != 3 {
		t.Errorf("two-sample boxplot = %+v", two)
	}
	if two.Q1 != 1.5 || two.Q3 != 2.5 {
		t.Errorf("two-sample quartiles = %+v", two)
	}

	three := NewBoxPlot([]float64{2, 4, 6})
	if three.Median != 4 || three.Q1 != 3 || three.Q3 != 5 || math.Abs(three.Mean-4) > 1e-12 {
		t.Errorf("three-sample boxplot = %+v", three)
	}
	// Whiskers are clamped to the observed extremes.
	if three.WhiskerLo < three.Min || three.WhiskerHi > three.Max {
		t.Errorf("whiskers outside data range: %+v", three)
	}
}

// BenchmarkCountersHotPath compares the string-keyed Counters map against
// the interned slice-backed CounterSet on the simulator's hot-path pattern:
// a handful of distinct counters bumped millions of times.
func BenchmarkCountersHotPath(b *testing.B) {
	names := make([]string, 8)
	ids := make([]CounterID, 8)
	for i := range names {
		names[i] = fmt.Sprintf("bench.hotpath.c%d", i)
		ids[i] = Intern(names[i])
	}
	b.Run("map-keyed", func(b *testing.B) {
		var c Counters
		for i := 0; i < b.N; i++ {
			c.Inc(names[i&7])
		}
	})
	b.Run("interned", func(b *testing.B) {
		var s CounterSet
		for i := 0; i < b.N; i++ {
			s.Inc(ids[i&7])
		}
	})
}

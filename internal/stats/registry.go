package stats

import (
	"sort"
	"sync"
)

// CounterID is the interned identifier of a named counter. IDs are small,
// dense integers assigned in Intern order and stable for the life of the
// process, so hot paths can count into a plain slice instead of hashing a
// string per event.
type CounterID int

// registry is the process-wide name⇄ID intern table. Interning is expected
// at package-init or setup time; counting itself never touches the registry.
var registry = struct {
	mu     sync.RWMutex
	byName map[string]CounterID
	names  []string
}{byName: make(map[string]CounterID)}

// Intern returns the stable CounterID for name, allocating one on first use.
// Safe for concurrent use.
func Intern(name string) CounterID {
	registry.mu.RLock()
	id, ok := registry.byName[name]
	registry.mu.RUnlock()
	if ok {
		return id
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if id, ok := registry.byName[name]; ok {
		return id
	}
	id = CounterID(len(registry.names))
	registry.byName[name] = id
	registry.names = append(registry.names, name)
	return id
}

// CounterName returns the name interned for id (empty if id was never
// allocated).
func CounterName(id CounterID) string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if id < 0 || int(id) >= len(registry.names) {
		return ""
	}
	return registry.names[id]
}

// NumCounters returns how many counter names have been interned.
func NumCounters() int {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return len(registry.names)
}

// CounterSet is a slice of counters indexed by CounterID — the hot-path
// replacement for the string-keyed Counters map. The zero value is ready to
// use. A CounterSet is owned by one simulation run and is not safe for
// concurrent use; snapshot it at the end of the run.
type CounterSet struct {
	v []uint64
}

// Add increments the counter with the given id by n.
func (s *CounterSet) Add(id CounterID, n uint64) {
	if int(id) >= len(s.v) {
		s.grow(int(id) + 1)
	}
	s.v[id] += n
}

// Inc increments the counter with the given id by one.
func (s *CounterSet) Inc(id CounterID) { s.Add(id, 1) }

// Get returns the value of the counter with the given id (zero if never
// touched).
func (s *CounterSet) Get(id CounterID) uint64 {
	if int(id) >= len(s.v) {
		return 0
	}
	return s.v[id]
}

func (s *CounterSet) grow(n int) {
	if cap(s.v) >= n {
		s.v = s.v[:n]
		return
	}
	grown := make([]uint64, n, 2*n)
	copy(grown, s.v)
	s.v = grown
}

// Snapshot returns the named view of every non-zero counter in the set.
func (s *CounterSet) Snapshot() Snapshot {
	snap := make(Snapshot)
	for id, v := range s.v {
		if v != 0 {
			snap[CounterName(CounterID(id))] = v
		}
	}
	return snap
}

// Snapshot is a serializable point-in-time view of a counter set: counter
// name → value. It marshals to a flat JSON object.
type Snapshot map[string]uint64

// Get returns the value of the named counter (zero if absent).
func (s Snapshot) Get(name string) uint64 { return s[name] }

// Names returns the counter names in sorted order.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every counter from other into s.
func (s Snapshot) Merge(other Snapshot) {
	for n, v := range other {
		s[n] += v
	}
}

// Clone returns an independent copy of the snapshot (nil stays nil).
func (s Snapshot) Clone() Snapshot {
	if s == nil {
		return nil
	}
	out := make(Snapshot, len(s))
	for n, v := range s {
		out[n] = v
	}
	return out
}

// Filter returns the sub-snapshot of counters whose name starts with prefix.
func (s Snapshot) Filter(prefix string) Snapshot {
	out := make(Snapshot)
	for n, v := range s {
		if len(n) >= len(prefix) && n[:len(prefix)] == prefix {
			out[n] = v
		}
	}
	return out
}

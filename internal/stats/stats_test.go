package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounters(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Error("untouched counter must be zero")
	}
	c.Inc("x")
	c.Add("x", 4)
	c.Add("y", 2)
	if c.Get("x") != 5 || c.Get("y") != 2 {
		t.Errorf("got x=%d y=%d", c.Get("x"), c.Get("y"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names() = %v", names)
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("z", 3)
	a.Merge(&b)
	if a.Get("x") != 3 || a.Get("z") != 3 {
		t.Errorf("merge wrong: x=%d z=%d", a.Get("x"), a.Get("z"))
	}
}

func TestCountersString(t *testing.T) {
	var c Counters
	c.Add("alpha", 7)
	if !strings.Contains(c.String(), "alpha") {
		t.Error("String() must include counter names")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 1.0 {
		t.Errorf("empty geomean = %v, want 1", g)
	}
	got := Geomean([]float64{2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("geomean of non-positive must panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-9 && x < 1e9 && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndRatio(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
	if Ratio(1, 0) != 0 {
		t.Error("ratio with zero denominator must be 0")
	}
	if r := Ratio(3, 4); math.Abs(r-0.75) > 1e-12 {
		t.Errorf("ratio = %v", r)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if p := Percentile(s, 50); p != 3 {
		t.Errorf("median = %v", p)
	}
	if p := Percentile(s, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(s, 100); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile([]float64{7}, 50); p != 7 {
		t.Errorf("single-element percentile = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}

func TestBoxPlot(t *testing.T) {
	bp := NewBoxPlot([]float64{1, 2, 3, 4, 100})
	if bp.N != 5 || bp.Min != 1 || bp.Max != 100 || bp.Median != 3 {
		t.Errorf("boxplot = %+v", bp)
	}
	if bp.WhiskerHi >= 100 {
		t.Errorf("outlier 100 must be outside the whisker, got hi=%v", bp.WhiskerHi)
	}
	zero := NewBoxPlot(nil)
	if zero.N != 0 {
		t.Error("empty boxplot must have N=0")
	}
	if !strings.Contains(bp.String(), "n=5") {
		t.Error("String() must include n")
	}
}

func TestBoxPlotOrderInvariant(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		a := NewBoxPlot(clean)
		rev := make([]float64, len(clean))
		for i, x := range clean {
			rev[len(clean)-1-i] = x
		}
		b := NewBoxPlot(rev)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedupTable(t *testing.T) {
	tbl := NewSpeedupTable([]string{"A", "B"}, []string{"c1", "c2"})
	tbl.Set("A", "c2", 1.25)
	if got := tbl.Get("A", "c2"); got != 1.25 {
		t.Errorf("Get = %v", got)
	}
	if got := tbl.Get("B", "c1"); got != 0 {
		t.Errorf("unset cell = %v", got)
	}
	s := tbl.String()
	if !strings.Contains(s, "c1") || !strings.Contains(s, "A") {
		t.Error("String() must include headers")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown category must panic")
		}
	}()
	tbl.Set("Z", "c1", 1)
}

package trace_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"constable/internal/fsim"
	"constable/internal/trace"
	"constable/internal/workload"
)

// captureBytes returns a small valid trace as raw bytes.
func captureBytes(t testing.TB, n uint64) []byte {
	t.Helper()
	spec := workload.SmallSuite()[0]
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Capture(&buf, fsim.NewStream(cpu, n), n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain reads a stream to exhaustion with an iteration bound: any record
// needs at least 9 encoded bytes (7 fixed + 2 one-byte varints), so a
// decoder that yields more records than the input could possibly hold is
// looping on corrupt data.
func drain(t testing.TB, data []byte) (records int, err error) {
	t.Helper()
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	limit := len(data)/9 + 2
	for {
		if _, ok := r.Next(); !ok {
			return records, r.Err()
		}
		records++
		if records > limit {
			t.Fatalf("decoder produced %d records from %d bytes — runaway loop", records, len(data))
		}
	}
}

// TestTruncationAtEveryOffset cuts a valid trace at every possible byte
// offset. Every prefix must decode without panicking and finish with either
// a clean EOF (cut on a record boundary) or a decode error — never silence
// past the corruption and never an unbounded record count.
func TestTruncationAtEveryOffset(t *testing.T) {
	data := captureBytes(t, 64)
	full, err := drain(t, data)
	if err != nil {
		t.Fatalf("pristine trace: %v", err)
	}
	for cut := 0; cut <= len(data); cut++ {
		records, err := drain(t, data[:cut])
		if cut < 4 {
			if err == nil {
				t.Fatalf("cut=%d: truncated header must be rejected", cut)
			}
			continue
		}
		if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			// Mid-varint cuts surface as plain io.EOF from ReadVarint and
			// mid-fixed-block cuts as ErrUnexpectedEOF; anything else wrapped
			// is still fine as long as it is an error, which it is here.
			_ = err
		}
		if records > full {
			t.Fatalf("cut=%d: decoded %d records from a prefix of a %d-record trace", cut, records, full)
		}
	}
}

// TestTruncatedStreamErrorsAreWrapped checks a cut inside a record's fixed
// block is reported as a truncated record, distinguishable from clean EOF.
func TestTruncatedStreamErrorsAreWrapped(t *testing.T) {
	data := captureBytes(t, 16)
	// Cut 3 bytes into the first record's 7-byte fixed block.
	r, err := trace.NewReader(bytes.NewReader(data[:4+3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-record cut: got %v, want wrapped io.ErrUnexpectedEOF", err)
	}
}

// TestGarbageVarints feeds a valid header followed by bytes that keep every
// varint continuation bit set. binary.ReadVarint must give up (varint
// overflow) rather than consume input forever.
func TestGarbageVarints(t *testing.T) {
	data := captureBytes(t, 1)[:4] // header only
	garbage := append([]byte{}, data...)
	// One plausible fixed block, then an endless varint.
	garbage = append(garbage, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0)
	for i := 0; i < 64; i++ {
		garbage = append(garbage, 0xFF)
	}
	records, err := drain(t, garbage)
	if err == nil {
		t.Fatal("unterminated varint must surface a decode error")
	}
	if records != 0 {
		t.Fatalf("decoded %d records from garbage", records)
	}
}

// TestRandomGarbageBody decodes headers followed by adversarial byte
// patterns; the reader must terminate with bounded records and no panic.
func TestRandomGarbageBody(t *testing.T) {
	header := captureBytes(t, 1)[:4]
	patterns := [][]byte{
		bytes.Repeat([]byte{0x00}, 256),
		bytes.Repeat([]byte{0xFF}, 256),
		bytes.Repeat([]byte{0x80}, 256), // continuation bits forever
		bytes.Repeat([]byte{0x7F, 0x80}, 128),
		{0xDE, 0xAD, 0xBE, 0xEF},
	}
	for i, p := range patterns {
		data := append(append([]byte{}, header...), p...)
		if _, err := drain(t, data); err == nil && len(p)%9 != 0 {
			// Some garbage happens to parse as valid records — that is
			// acceptable (the format has no per-record checksum); the
			// invariants are termination and bounded output, enforced in
			// drain. Only note the case for the log.
			t.Logf("pattern %d decoded cleanly (structurally valid garbage)", i)
		}
	}
}

// FuzzReader throws arbitrary bytes at the decoder. The corpus is seeded
// with a pristine trace plus corrupt variants; the decoder must never
// panic, hang, or emit more records than the input could encode.
func FuzzReader(f *testing.F) {
	valid := captureBytes(f, 32)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:4])
	f.Add([]byte{})
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	f.Add(append(append([]byte{}, valid[:4]...), bytes.Repeat([]byte{0xFF}, 32)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		drain(t, data)
	})
}

package trace_test

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"constable/internal/cache"
	"constable/internal/fsim"
	"constable/internal/isa"
	"constable/internal/pipeline"
	"constable/internal/trace"
	"constable/internal/workload"
)

func TestRoundTripWorkload(t *testing.T) {
	spec := workload.SmallSuite()[0]
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	orig := make([]isa.DynInst, n)
	for i := range orig {
		orig[i] = cpu.Step()
	}

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if err := w.Write(&orig[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Fatalf("count = %d", w.Count())
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != orig[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got, orig[i])
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestCompression(t *testing.T) {
	spec := workload.SmallSuite()[0]
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 10_000
	count, err := trace.Capture(&buf, fsim.NewStream(cpu, n), n)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("captured %d", count)
	}
	perRecord := float64(buf.Len()) / float64(n)
	// A naive fixed encoding of DynInst is ~60 bytes; delta-varint should
	// be far smaller on loopy code.
	if perRecord > 20 {
		t.Errorf("%.1f bytes/record — delta encoding ineffective", perRecord)
	}
	t.Logf("trace size: %.1f bytes/record", perRecord)
}

func TestReaderDrivesPipeline(t *testing.T) {
	// A captured trace must drive the timing model to the same cycle count
	// as the live functional stream.
	spec := workload.SmallSuite()[1]
	const n = 8000

	run := func(stream pipeline.Stream) uint64 {
		core := pipeline.NewCore(pipeline.DefaultConfig(), pipeline.Attachments{},
			cache.NewHierarchy(cache.DefaultHierarchyConfig()), stream)
		if err := core.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		if core.Stats.Retired != n {
			t.Fatalf("retired %d", core.Stats.Retired)
		}
		return core.Stats.Cycles
	}

	cpuLive, _ := spec.NewCPU(false)
	liveCycles := run(fsim.NewStream(cpuLive, n))

	cpuCap, _ := spec.NewCPU(false)
	var buf bytes.Buffer
	if _, err := trace.Capture(&buf, fsim.NewStream(cpuCap, n), n); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayCycles := run(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if liveCycles != replayCycles {
		t.Errorf("replay diverged: live %d cycles, replay %d cycles", liveCycles, replayCycles)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := trace.NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5})); err == nil {
		t.Fatal("garbage header must be rejected")
	}
	if _, err := trace.NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream must be rejected")
	}
}

func TestTruncatedStreamReported(t *testing.T) {
	spec := workload.SmallSuite()[0]
	cpu, _ := spec.NewCPU(false)
	var buf bytes.Buffer
	if _, err := trace.Capture(&buf, fsim.NewStream(cpu, 100), 100); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := trace.NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Fatal("truncated stream must surface a decode error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any syntactically-valid DynInst sequence round-trips.
	f := func(seeds []uint64) bool {
		var recs []isa.DynInst
		seq := uint64(0)
		for _, s := range seeds {
			d := isa.DynInst{
				Seq:  seq,
				PC:   0x400000 + (s%1024)*4,
				Dst:  isa.Reg(s % 16),
				Src1: isa.Reg(s >> 4 % 16),
				Src2: isa.RegNone,
			}
			switch s % 4 {
			case 0:
				d.Op = isa.OpALU
				d.Value = s * 3
			case 1:
				d.Op = isa.OpLoad
				d.Addr = (s % 100000) * 8
				d.Value = s ^ 0xABCD
				d.Mode = isa.AddrRegRel
				d.ProducerStore = s % 7
			case 2:
				d.Op = isa.OpStore
				d.Dst = isa.RegNone
				d.Addr = (s % 100000) * 8
				d.Value = s
				d.Silent = s%3 == 0
				d.Mode = isa.AddrStackRel
			case 3:
				d.Op = isa.OpBranch
				d.Dst = isa.RegNone
				d.Taken = s%2 == 0
				d.Target = 0x400000 + (s%512)*4
			}
			recs = append(recs, d)
			seq += 1 + s%3
		}
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			return false
		}
		for i := range recs {
			if w.Write(&recs[i]) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := trace.NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range recs {
			got, err := r.Read()
			if err != nil || got != recs[i] {
				return false
			}
		}
		_, err = r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package trace provides a compact binary serialization for dynamic
// instruction streams, so workload executions can be captured once and
// replayed into the timing model — the same trace-driven methodology as the
// paper's snapshot traces (§8.3). The format is a varint-delta encoding:
// sequence numbers and PCs are delta-encoded against the previous record,
// which compresses loop-heavy streams well.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"constable/internal/isa"
)

// magic identifies a trace stream and versions the format.
const magic uint32 = 0xC0715AB1

// flag bits packed per record.
const (
	flagTaken = 1 << iota
	flagWrongPath
	flagSilent
	flagHasAddr
	flagHasTarget
	flagHasProducer
)

// Writer serializes dynamic instructions to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	started bool
	prevSeq uint64
	prevPC  uint64
	buf     [binary.MaxVarintLen64]byte
	count   uint64
}

// NewWriter returns a Writer that emits the stream header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], magic)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

func (w *Writer) putVarint(v int64) error {
	n := binary.PutVarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write appends one dynamic instruction to the stream.
func (w *Writer) Write(d *isa.DynInst) error {
	var flags byte
	if d.Taken {
		flags |= flagTaken
	}
	if d.WrongPath {
		flags |= flagWrongPath
	}
	if d.Silent {
		flags |= flagSilent
	}
	hasAddr := d.Op.IsMem()
	hasTarget := d.Op.IsBranch()
	hasProducer := d.Op == isa.OpLoad && d.ProducerStore != 0
	if hasAddr {
		flags |= flagHasAddr
	}
	if hasTarget {
		flags |= flagHasTarget
	}
	if hasProducer {
		flags |= flagHasProducer
	}

	fixed := []byte{flags, byte(d.Op), byte(d.Fn), byte(d.Dst), byte(d.Src1), byte(d.Src2), byte(d.Mode)}
	if _, err := w.w.Write(fixed); err != nil {
		return err
	}
	var dSeq, dPC int64
	if w.started {
		dSeq = int64(d.Seq) - int64(w.prevSeq)
		dPC = int64(d.PC) - int64(w.prevPC)
	} else {
		dSeq = int64(d.Seq)
		dPC = int64(d.PC)
		w.started = true
	}
	w.prevSeq, w.prevPC = d.Seq, d.PC
	if err := w.putVarint(dSeq); err != nil {
		return err
	}
	if err := w.putVarint(dPC); err != nil {
		return err
	}
	if hasAddr {
		if err := w.putUvarint(d.Addr); err != nil {
			return err
		}
		if err := w.putUvarint(d.Value); err != nil {
			return err
		}
	} else if d.Dst != isa.RegNone {
		if err := w.putUvarint(d.Value); err != nil {
			return err
		}
	}
	if hasTarget {
		if err := w.putUvarint(d.Target); err != nil {
			return err
		}
	}
	if hasProducer {
		if err := w.putUvarint(d.ProducerStore); err != nil {
			return err
		}
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader deserializes a trace stream. It implements the pipeline.Stream
// interface, so a saved trace can drive the timing model directly.
type Reader struct {
	r       *bufio.Reader
	started bool
	prevSeq uint64
	prevPC  uint64
	err     error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[:]) != magic {
		return nil, errors.New("trace: bad magic (not a trace stream)")
	}
	return &Reader{r: br}, nil
}

// Read returns the next record. io.EOF signals a clean end of stream.
func (r *Reader) Read() (isa.DynInst, error) {
	var d isa.DynInst
	var fixed [7]byte
	if _, err := io.ReadFull(r.r, fixed[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return d, fmt.Errorf("trace: truncated record: %w", err)
		}
		return d, err
	}
	flags := fixed[0]
	d.Op = isa.Op(fixed[1])
	d.Fn = isa.ALUFn(fixed[2])
	d.Dst = isa.Reg(fixed[3])
	d.Src1 = isa.Reg(fixed[4])
	d.Src2 = isa.Reg(fixed[5])
	d.Mode = isa.AddrMode(fixed[6])
	d.Taken = flags&flagTaken != 0
	d.WrongPath = flags&flagWrongPath != 0
	d.Silent = flags&flagSilent != 0

	dSeq, err := binary.ReadVarint(r.r)
	if err != nil {
		return d, fmt.Errorf("trace: reading seq: %w", err)
	}
	dPC, err := binary.ReadVarint(r.r)
	if err != nil {
		return d, fmt.Errorf("trace: reading pc: %w", err)
	}
	if r.started {
		d.Seq = uint64(int64(r.prevSeq) + dSeq)
		d.PC = uint64(int64(r.prevPC) + dPC)
	} else {
		d.Seq = uint64(dSeq)
		d.PC = uint64(dPC)
		r.started = true
	}
	r.prevSeq, r.prevPC = d.Seq, d.PC

	if flags&flagHasAddr != 0 {
		if d.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return d, fmt.Errorf("trace: reading addr: %w", err)
		}
		if d.Value, err = binary.ReadUvarint(r.r); err != nil {
			return d, fmt.Errorf("trace: reading value: %w", err)
		}
	} else if d.Dst != isa.RegNone {
		if d.Value, err = binary.ReadUvarint(r.r); err != nil {
			return d, fmt.Errorf("trace: reading value: %w", err)
		}
	}
	if flags&flagHasTarget != 0 {
		if d.Target, err = binary.ReadUvarint(r.r); err != nil {
			return d, fmt.Errorf("trace: reading target: %w", err)
		}
	}
	if flags&flagHasProducer != 0 {
		if d.ProducerStore, err = binary.ReadUvarint(r.r); err != nil {
			return d, fmt.Errorf("trace: reading producer: %w", err)
		}
	}
	return d, nil
}

// Next adapts Read to the pipeline.Stream interface: it returns false on a
// clean EOF and remembers any decode error (check Err after the run).
func (r *Reader) Next() (isa.DynInst, bool) {
	if r.err != nil {
		return isa.DynInst{}, false
	}
	d, err := r.Read()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		return isa.DynInst{}, false
	}
	return d, true
}

// Err returns the first non-EOF decode error Next encountered, if any.
func (r *Reader) Err() error { return r.err }

// Capture runs src for n records and writes them to w.
func Capture(w io.Writer, src interface {
	Next() (isa.DynInst, bool)
}, n uint64) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < n; i++ {
		d, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(&d); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// Package profutil wires Go's profiling facilities into the command-line
// tools: file-based CPU/heap profiles for the batch commands (constable-sim,
// experiments) and the net/http/pprof debug listener for the long-running
// daemons (constable-server, constable-worker).
package profutil

import (
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path. An empty path is a
// no-op. The returned stop function flushes and closes the profile; call it
// before the process exits (profiles truncated by os.Exit are unreadable).
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteMemProfile writes an allocation profile to path after forcing a GC
// (so the numbers reflect live heap, not garbage awaiting collection). An
// empty path is a no-op.
func WriteMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	return nil
}

// ServePprof starts the net/http/pprof listener on addr in a background
// goroutine. An empty addr is a no-op. The listen socket is opened
// synchronously so misconfiguration (a taken port, a malformed address)
// surfaces at startup rather than as a silently missing endpoint.
func ServePprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	go func() {
		// DefaultServeMux carries the /debug/pprof handlers; nothing else is
		// registered on it by the daemons (their APIs use dedicated muxes).
		if err := http.Serve(ln, nil); err != nil {
			log.Printf("pprof listener: %v", err)
		}
	}()
	return nil
}

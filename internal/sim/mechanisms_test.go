package sim

import (
	"encoding/json"
	"testing"

	"constable/internal/constable"
	"constable/internal/workload"
)

func TestMechanismRegistryRoundTrip(t *testing.T) {
	names := MechanismNames()
	if len(names) == 0 || names[0] != "baseline" {
		t.Fatalf("names = %v", names)
	}
	seen := map[string]bool{}
	for _, p := range Mechanisms() {
		if seen[p.Name] {
			t.Errorf("duplicate preset %q", p.Name)
		}
		seen[p.Name] = true
		if p.Description == "" {
			t.Errorf("preset %q has no description", p.Name)
		}
		m, err := MechanismByName(p.Name)
		if err != nil {
			t.Fatalf("MechanismByName(%q): %v", p.Name, err)
		}
		if m != p.Mech {
			t.Errorf("MechanismByName(%q) = %+v, want %+v", p.Name, m, p.Mech)
		}
		if got := MechanismName(m); got != p.Name {
			t.Errorf("MechanismName(%+v) = %q, want %q", m, got, p.Name)
		}
	}
}

func TestMechanismByNameErrors(t *testing.T) {
	if m, err := MechanismByName(""); err != nil || m != (Mechanism{}) {
		t.Errorf("empty name: %+v, %v", m, err)
	}
	if _, err := MechanismByName("warp-drive"); err == nil {
		t.Error("unknown mechanism must error")
	}
}

func TestMechanismNameCustom(t *testing.T) {
	cfg := constable.DefaultConfig()
	m := Mechanism{Constable: true, ConstableConfig: &cfg}
	if got := MechanismName(m); got != "custom" {
		t.Errorf("config override must report custom, got %q", got)
	}
	if got := MechanismName(Mechanism{EVES: true, RFP: true}); got != "custom" {
		t.Errorf("non-preset combination must report custom, got %q", got)
	}
}

func TestRunResultSchema(t *testing.T) {
	spec, err := workload.ByName(workload.SmallSuite()[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Workload: spec, Instructions: 3000,
		Mech: Mechanism{EVES: true, Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	id := res.Identity
	if id.Workload != spec.Name || id.Mechanism != "eves+constable" ||
		id.Threads != 1 || id.Instructions != 3000 {
		t.Errorf("identity = %+v", id)
	}
	if res.ConfigDigest == "" {
		t.Error("config digest empty")
	}
	if res.Counters.Get("pipeline.retired") != res.Pipeline.Retired {
		t.Errorf("snapshot retired %d != typed %d",
			res.Counters.Get("pipeline.retired"), res.Pipeline.Retired)
	}
	if res.Counters.Get("constable.eliminated") != res.Constable.Eliminated {
		t.Error("snapshot and typed constable stats disagree")
	}
	if res.Counters.Get("mem.l1d_accesses") != res.L1DAccesses {
		t.Error("snapshot and typed L1-D accesses disagree")
	}
	mechs := map[string]MechanismStats{}
	for _, m := range res.Mechanisms {
		mechs[m.Name] = m
	}
	if len(mechs) != 2 {
		t.Fatalf("mechanism breakdown = %+v, want constable+eves", res.Mechanisms)
	}
	if c := mechs["constable"].Counters; c.Get("pipeline.golden_checks") == 0 {
		t.Errorf("constable breakdown missing golden checks: %v", c.Names())
	}
	if e := mechs["eves"].Counters; e.Get("eves.predictions") != res.EVESPredictions {
		t.Errorf("eves breakdown predictions %d != %d",
			e.Get("eves.predictions"), res.EVESPredictions)
	}

	// The document must round-trip through JSON (the service's wire format).
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back RunResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Identity != res.Identity || back.Cycles != res.Cycles ||
		back.ConfigDigest != res.ConfigDigest {
		t.Errorf("round-trip changed the document: %+v", back.Identity)
	}
	if back.Counters.Get("pipeline.retired") != res.Pipeline.Retired {
		t.Error("round-trip lost counters")
	}
	if back.Power.Total() != res.Power.Total() {
		t.Errorf("round-trip power total %v != %v", back.Power.Total(), res.Power.Total())
	}
}

func TestConfigDigestDistinguishesRuns(t *testing.T) {
	spec := workload.SmallSuite()[0]
	base, err := Run(Options{Workload: spec, Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Run(Options{Workload: spec, Instructions: 2000, Mech: Mechanism{Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if base.ConfigDigest == cons.ConfigDigest {
		t.Error("different mechanisms must produce different digests")
	}
	again, err := Run(Options{Workload: spec, Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if base.ConfigDigest != again.ConfigDigest {
		t.Error("identical runs must produce identical digests")
	}

	// A caller-primed stable-PC set changes what was simulated (oracle and
	// Fig. 6 accounting), so it must change the digest — and the digest must
	// not depend on map iteration order.
	pinned, err := Run(Options{Workload: spec, Instructions: 2000,
		StablePCs: map[uint64]bool{0x40: true, 0x80: true}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.ConfigDigest == base.ConfigDigest {
		t.Error("StablePCs must be part of the digest")
	}
	pinned2, err := Run(Options{Workload: spec, Instructions: 2000,
		StablePCs: map[uint64]bool{0x80: true, 0x40: true}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.ConfigDigest != pinned2.ConfigDigest {
		t.Error("digest must be insensitive to StablePCs map order")
	}
}

package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/workload"
)

func TestMechanismRegistryRoundTrip(t *testing.T) {
	names := MechanismNames()
	if len(names) == 0 || names[0] != "baseline" {
		t.Fatalf("names = %v", names)
	}
	seen := map[string]bool{}
	for _, p := range Mechanisms() {
		if seen[p.Name] {
			t.Errorf("duplicate preset %q", p.Name)
		}
		seen[p.Name] = true
		if p.Description == "" {
			t.Errorf("preset %q has no description", p.Name)
		}
		m, err := MechanismByName(p.Name)
		if err != nil {
			t.Fatalf("MechanismByName(%q): %v", p.Name, err)
		}
		if m != p.Mech {
			t.Errorf("MechanismByName(%q) = %+v, want %+v", p.Name, m, p.Mech)
		}
		if got := MechanismName(m); got != p.Name {
			t.Errorf("MechanismName(%+v) = %q, want %q", m, got, p.Name)
		}
	}
}

func TestMechanismByNameErrors(t *testing.T) {
	if m, err := MechanismByName(""); err != nil || m != (Mechanism{}) {
		t.Errorf("empty name: %+v, %v", m, err)
	}
	if _, err := MechanismByName("warp-drive"); err == nil {
		t.Error("unknown mechanism must error")
	}
}

func TestMechanismNameCustom(t *testing.T) {
	cfg := constable.DefaultConfig()
	m := Mechanism{Constable: true, ConstableConfig: &cfg}
	if got := MechanismName(m); got != "custom" {
		t.Errorf("config override must report custom, got %q", got)
	}
	if got := MechanismName(Mechanism{EVES: true, RFP: true}); got != "custom" {
		t.Errorf("non-preset combination must report custom, got %q", got)
	}
}

func TestRunResultSchema(t *testing.T) {
	spec, err := workload.ByName(workload.SmallSuite()[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Workload: spec, Instructions: 3000,
		Mech: Mechanism{EVES: true, Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	id := res.Identity
	if id.Workload != spec.Name || id.Mechanism != "eves+constable" ||
		id.Threads != 1 || id.Instructions != 3000 {
		t.Errorf("identity = %+v", id)
	}
	if res.ConfigDigest == "" {
		t.Error("config digest empty")
	}
	if res.Counters.Get("pipeline.retired") != res.Pipeline.Retired {
		t.Errorf("snapshot retired %d != typed %d",
			res.Counters.Get("pipeline.retired"), res.Pipeline.Retired)
	}
	if res.Counters.Get("constable.eliminated") != res.Constable.Eliminated {
		t.Error("snapshot and typed constable stats disagree")
	}
	if res.Counters.Get("mem.l1d_accesses") != res.L1DAccesses {
		t.Error("snapshot and typed L1-D accesses disagree")
	}
	mechs := map[string]MechanismStats{}
	for _, m := range res.Mechanisms {
		mechs[m.Name] = m
	}
	if len(mechs) != 2 {
		t.Fatalf("mechanism breakdown = %+v, want constable+eves", res.Mechanisms)
	}
	if c := mechs["constable"].Counters; c.Get("pipeline.golden_checks") == 0 {
		t.Errorf("constable breakdown missing golden checks: %v", c.Names())
	}
	if e := mechs["eves"].Counters; e.Get("eves.predictions") != res.EVESPredictions {
		t.Errorf("eves breakdown predictions %d != %d",
			e.Get("eves.predictions"), res.EVESPredictions)
	}

	// The document must round-trip through JSON (the service's wire format).
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back RunResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Identity != res.Identity || back.Cycles != res.Cycles ||
		back.ConfigDigest != res.ConfigDigest {
		t.Errorf("round-trip changed the document: %+v", back.Identity)
	}
	if back.Counters.Get("pipeline.retired") != res.Pipeline.Retired {
		t.Error("round-trip lost counters")
	}
	if back.Power.Total() != res.Power.Total() {
		t.Errorf("round-trip power total %v != %v", back.Power.Total(), res.Power.Total())
	}
}

func TestConfigDigestDistinguishesRuns(t *testing.T) {
	spec := workload.SmallSuite()[0]
	base, err := Run(Options{Workload: spec, Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Run(Options{Workload: spec, Instructions: 2000, Mech: Mechanism{Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if base.ConfigDigest == cons.ConfigDigest {
		t.Error("different mechanisms must produce different digests")
	}
	again, err := Run(Options{Workload: spec, Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if base.ConfigDigest != again.ConfigDigest {
		t.Error("identical runs must produce identical digests")
	}

	// A caller-primed stable-PC set changes what was simulated (oracle and
	// Fig. 6 accounting), so it must change the digest — and the digest must
	// not depend on map iteration order.
	pinned, err := Run(Options{Workload: spec, Instructions: 2000,
		StablePCs: map[uint64]bool{0x40: true, 0x80: true}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.ConfigDigest == base.ConfigDigest {
		t.Error("StablePCs must be part of the digest")
	}
	pinned2, err := Run(Options{Workload: spec, Instructions: 2000,
		StablePCs: map[uint64]bool{0x80: true, 0x40: true}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.ConfigDigest != pinned2.ConfigDigest {
		t.Error("digest must be insensitive to StablePCs map order")
	}
}

func TestQualifiedMechanismNames(t *testing.T) {
	cases := []struct {
		name string
		want Mechanism
	}{
		{"constable,bpred=bimodal", Mechanism{Constable: true, BPred: "bimodal"}},
		{"baseline,prefetch=delta", Mechanism{Prefetch: "delta"}},
		{"prefetch=none", Mechanism{Prefetch: "none"}},
		{"eves+constable,l1dpred=counter", Mechanism{EVES: true, Constable: true, L1DPred: "counter"}},
		{"constable,bpred=bimodal,prefetch=none,l1dpred=global",
			Mechanism{Constable: true, BPred: "bimodal", Prefetch: "none", L1DPred: "global"}},
		// Default variant names canonicalize away entirely.
		{"constable,bpred=tage,prefetch=stride,l1dpred=off", Mechanism{Constable: true}},
	}
	for _, c := range cases {
		m, err := MechanismByName(c.name)
		if err != nil {
			t.Fatalf("MechanismByName(%q): %v", c.name, err)
		}
		if m != c.want {
			t.Errorf("MechanismByName(%q) = %+v, want %+v", c.name, m, c.want)
		}
		// MechanismName must invert MechanismByName for every accepted name.
		back, err := MechanismByName(MechanismName(m))
		if err != nil {
			t.Fatalf("re-resolve %q: %v", MechanismName(m), err)
		}
		if back != m {
			t.Errorf("round-trip %q -> %q -> %+v, want %+v", c.name, MechanismName(m), back, m)
		}
	}
	// Axis terms on the baseline format without a leading preset comma only
	// when a preset is present; the baseline prints its own name first.
	if got := MechanismName(Mechanism{Prefetch: "delta"}); got != "baseline,prefetch=delta" {
		t.Errorf("baseline axis name = %q", got)
	}
}

func TestQualifiedMechanismNameErrors(t *testing.T) {
	for _, name := range []string{
		"constable,bpred=gshare",      // unknown variant
		"constable,warp=9",            // unknown axis
		"constable,bpred",             // malformed term
		"warp-drive,bpred=bimodal",    // unknown preset
		"constable,prefetch=bimodal",  // variant of the wrong axis
		"constable,l1dpred=stride",    // variant of the wrong axis
	} {
		if _, err := MechanismByName(name); err == nil {
			t.Errorf("MechanismByName(%q) must error", name)
		}
	}
}

func TestMechanismAxesRegistry(t *testing.T) {
	axes := MechanismAxes()
	if len(axes) != 3 {
		t.Fatalf("axes = %d, want 3", len(axes))
	}
	for _, a := range axes {
		if a.Description == "" {
			t.Errorf("axis %q has no description", a.Name)
		}
		foundDefault := false
		for _, v := range a.Variants {
			if v.Description == "" {
				t.Errorf("axis %q variant %q has no description", a.Name, v.Name)
			}
			if v.Name == a.Default {
				foundDefault = true
			}
		}
		if !foundDefault {
			t.Errorf("axis %q default %q not among its variants", a.Name, a.Default)
		}
		if len(a.Params) == 0 {
			t.Errorf("axis %q documents no parameters", a.Name)
		}
		for _, p := range a.Params {
			if p.Description == "" || p.Default == nil {
				t.Errorf("axis %q param %q lacks description or default", a.Name, p.Name)
			}
		}
	}
}

func TestAxisAttachmentsConstruct(t *testing.T) {
	m, err := MechanismByName("constable,bpred=bimodal,prefetch=delta,l1dpred=counter")
	if err != nil {
		t.Fatal(err)
	}
	att, cons, _, err := m.NewAttachments()
	if err != nil {
		t.Fatal(err)
	}
	if cons == nil || att.Constable == nil {
		t.Error("preset part of the qualified name must still construct")
	}
	if att.BPred == nil || att.BPred.Config().Tables != 0 {
		t.Errorf("bpred=bimodal must construct a zero-table predictor, got %+v", att.BPred)
	}
	if att.L1Prefetch == nil {
		t.Fatal("prefetch=delta constructed nothing")
	}
	if att.L1DPred == nil {
		t.Error("l1dpred=counter constructed nothing")
	}

	// Defaults construct nothing: the core and hierarchy keep their own
	// default components, so preset behavior is untouched byte for byte.
	dm, err := MechanismByName("constable")
	if err != nil {
		t.Fatal(err)
	}
	datt, _, _, err := dm.NewAttachments()
	if err != nil {
		t.Fatal(err)
	}
	if datt.BPred != nil || datt.L1Prefetch != nil || datt.L1DPred != nil {
		t.Errorf("default axes must not construct components: %+v", datt)
	}

	// Invalid config overrides are reported, not built.
	bad := Mechanism{Prefetch: "delta", PrefetchConfig: &cache.PrefetchConfig{}}
	if _, _, _, err := bad.NewAttachments(); err == nil {
		t.Error("invalid prefetch config must error")
	}
	orphan := Mechanism{L1DPredConfig: &cache.L1DPredConfig{Entries: 16, Bits: 2}}
	if _, _, _, err := orphan.NewAttachments(); err == nil {
		t.Error("l1dpred config without a variant must error")
	}
}

func TestAxisRunsExecuteAndDiverge(t *testing.T) {
	spec := workload.SmallSuite()[0]
	base, err := Run(Options{Workload: spec, Instructions: 3000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MechanismByName("baseline,bpred=bimodal,prefetch=none,l1dpred=counter")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Workload: spec, Instructions: 3000, Mech: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Identity.Mechanism != "baseline,bpred=bimodal,prefetch=none,l1dpred=counter" {
		t.Errorf("identity mechanism = %q", res.Identity.Mechanism)
	}
	if res.ConfigDigest == base.ConfigDigest {
		t.Error("axis selection must change the config digest")
	}
	if res.Counters.Get("l1dpred.lookups") == 0 {
		t.Error("l1dpred counters missing from the run snapshot")
	}
	if res.Counters.Get("prefetch.l1_issued") != 0 {
		t.Error("prefetch=none must issue no L1 prefetches")
	}
	if base.Counters.Get("prefetch.l1_issued") == 0 {
		t.Error("default stride prefetcher issued nothing on the baseline run")
	}
	names := map[string]bool{}
	for _, ms := range res.Mechanisms {
		names[ms.Name] = true
	}
	for _, want := range []string{"bpred=bimodal", "prefetch=none", "l1dpred=counter"} {
		if !names[want] {
			t.Errorf("mechanism breakdown missing %q: %v", want, res.Mechanisms)
		}
	}
	for _, ms := range base.Mechanisms {
		if strings.Contains(ms.Name, "=") {
			t.Errorf("default run breakdown gained axis entry %q", ms.Name)
		}
	}
}

package sim

import (
	"testing"

	"constable/internal/constable"
	"constable/internal/pipeline"
	"constable/internal/workload"
)

const testInsts = 40_000

func spec(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBaselineRunCompletes(t *testing.T) {
	r, err := Run(Options{Workload: spec(t, "server-kvstore-00"), Instructions: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pipeline.Retired != testInsts {
		t.Errorf("retired %d, want %d", r.Pipeline.Retired, testInsts)
	}
	if r.IPC <= 0.3 || r.IPC > 6 {
		t.Errorf("IPC %.2f implausible", r.IPC)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	opts := Options{Workload: spec(t, "client-browser-00"), Instructions: 20_000,
		Mech: Mechanism{Constable: true, EVES: true}}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Pipeline.EliminatedLoads != b.Pipeline.EliminatedLoads {
		t.Errorf("non-deterministic: %d/%d vs %d/%d cycles/elims",
			a.Cycles, a.Pipeline.EliminatedLoads, b.Cycles, b.Pipeline.EliminatedLoads)
	}
}

// TestGoldenCheckAcrossSuite is the reproduction of §8.5: Constable's
// eliminated loads must return architecturally-correct values in every
// workload. Any SLD staleness the disambiguation logic fails to catch
// surfaces here as a run error.
func TestGoldenCheckAcrossSuite(t *testing.T) {
	for _, s := range workload.SmallSuite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			r, err := Run(Options{Workload: s, Instructions: testInsts,
				Mech: Mechanism{Constable: true, EVES: true}})
			if err != nil {
				t.Fatal(err)
			}
			if r.Pipeline.GoldenChecks == 0 {
				t.Error("no golden checks ran")
			}
		})
	}
}

func TestConstableEliminatesAndHelps(t *testing.T) {
	s := spec(t, "enterprise-appserver-00")
	base, err := Run(Options{Workload: s, Instructions: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Run(Options{Workload: s, Instructions: testInsts, Mech: Mechanism{Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if cons.Pipeline.EliminatedLoads == 0 {
		t.Fatal("no loads eliminated")
	}
	if sp := Speedup(base, cons); sp < 1.0 {
		t.Errorf("Constable slowed appserver down: %.4f", sp)
	}
	// Elimination must reduce RS allocations and L1-D accesses (Fig. 18).
	if cons.Pipeline.RSAllocs >= base.Pipeline.RSAllocs {
		t.Errorf("RS allocs did not drop: %d vs %d", cons.Pipeline.RSAllocs, base.Pipeline.RSAllocs)
	}
	if cons.L1DAccesses >= base.L1DAccesses {
		t.Errorf("L1-D accesses did not drop: %d vs %d", cons.L1DAccesses, base.L1DAccesses)
	}
}

func TestIdealConstableBeatsRealConstable(t *testing.T) {
	s := spec(t, "server-webserver-01")
	base, err := Run(Options{Workload: s, Instructions: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Run(Options{Workload: s, Instructions: testInsts, Mech: Mechanism{Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(Options{Workload: s, Instructions: testInsts, Mech: Mechanism{IdealConstable: true}})
	if err != nil {
		t.Fatal(err)
	}
	spC, spI := Speedup(base, cons), Speedup(base, ideal)
	if spI < spC {
		t.Errorf("ideal (%.4f) must be at least as fast as real Constable (%.4f)", spI, spC)
	}
	if ideal.Pipeline.EliminatedLoads <= cons.Pipeline.EliminatedLoads {
		t.Errorf("ideal coverage (%d) must exceed real coverage (%d)",
			ideal.Pipeline.EliminatedLoads, cons.Pipeline.EliminatedLoads)
	}
}

func TestEVESPlusConstableBeatsEVES(t *testing.T) {
	s := spec(t, "enterprise-appserver-00")
	base, err := Run(Options{Workload: s, Instructions: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	eves, err := Run(Options{Workload: s, Instructions: testInsts, Mech: Mechanism{EVES: true}})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Run(Options{Workload: s, Instructions: testInsts, Mech: Mechanism{EVES: true, Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if Speedup(base, both) < Speedup(base, eves) {
		t.Errorf("EVES+Constable (%.4f) must beat EVES alone (%.4f)",
			Speedup(base, both), Speedup(base, eves))
	}
}

func TestSMT2RunsAndConstableHelpsMore(t *testing.T) {
	s := spec(t, "client-script-02")
	base2, err := Run(Options{Workload: s, Instructions: testInsts, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if base2.Pipeline.RetiredPerThread[0] != testInsts || base2.Pipeline.RetiredPerThread[1] != testInsts {
		t.Fatalf("SMT2 retired %v", base2.Pipeline.RetiredPerThread)
	}
	cons2, err := Run(Options{Workload: s, Instructions: testInsts, Threads: 2,
		Mech: Mechanism{Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if cons2.Pipeline.EliminatedLoads == 0 {
		t.Error("no eliminations under SMT2")
	}
	if sp := Speedup(base2, cons2); sp < 1.0 {
		t.Errorf("Constable slowed SMT2 down: %.4f", sp)
	}
}

func TestStableAnalysisMemoized(t *testing.T) {
	s := spec(t, "client-ui-01")
	a, err := StableAnalysis(s, false, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StableAnalysis(s, false, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("StableAnalysis must memoize")
	}
}

func TestCoreOverride(t *testing.T) {
	s := spec(t, "enterprise-appserver-00")
	narrow := pipeline.DefaultConfig()
	narrow.NumLoadPorts = 1
	wide := pipeline.DefaultConfig()
	wide.NumLoadPorts = 6
	rn, err := Run(Options{Workload: s, Instructions: testInsts, Core: &narrow})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(Options{Workload: s, Instructions: testInsts, Core: &wide})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Cycles >= rn.Cycles {
		t.Errorf("6 load ports (%d cycles) must beat 1 load port (%d cycles)", rw.Cycles, rn.Cycles)
	}
}

func TestModeFilterRestrictsElimination(t *testing.T) {
	s := spec(t, "enterprise-appserver-00")
	all, err := Run(Options{Workload: s, Instructions: testInsts, Mech: Mechanism{Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := constable.DefaultConfig()
	cfg.ModeFilter = 2 // isa.AddrStackRel
	stackOnly, err := Run(Options{Workload: s, Instructions: testInsts,
		Mech: Mechanism{Constable: true, ConstableConfig: &cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if stackOnly.Pipeline.EliminatedLoads >= all.Pipeline.EliminatedLoads {
		t.Errorf("mode-filtered elimination (%d) must be below unrestricted (%d)",
			stackOnly.Pipeline.EliminatedLoads, all.Pipeline.EliminatedLoads)
	}
	for mode, n := range stackOnly.Pipeline.EliminatedByMode {
		if mode != "stack-rel" && n > 0 {
			t.Errorf("mode filter leaked %d %s eliminations", n, mode)
		}
	}
}

func TestAPXRunWorks(t *testing.T) {
	r, err := Run(Options{Workload: spec(t, "enterprise-middleware-01"),
		Instructions: 20_000, APX: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pipeline.Retired != 20_000 {
		t.Errorf("retired %d", r.Pipeline.Retired)
	}
}

// TestRunResultClone verifies Clone shares no mutable state with the
// original — the contract the service result cache's isolation rests on.
func TestRunResultClone(t *testing.T) {
	orig, err := Run(Options{Workload: spec(t, "server-kvstore-00"),
		Instructions: 10_000, Mech: Mechanism{Constable: true}})
	if err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	if clone == orig {
		t.Fatal("Clone returned the receiver")
	}
	wantCycles := orig.Cycles
	wantRetired := orig.Counters.Get("pipeline.retired")
	wantElim := orig.Pipeline.EliminatedLoads

	// Mutate every mutable region of the clone.
	clone.Cycles = 0
	for name := range clone.Counters {
		clone.Counters[name] = 0
	}
	for i := range clone.Mechanisms {
		for name := range clone.Mechanisms[i].Counters {
			clone.Mechanisms[i].Counters[name] = 0
		}
	}
	for mode := range clone.Pipeline.EliminatedByMode {
		clone.Pipeline.EliminatedByMode[mode] = 0
	}
	clone.Pipeline.EliminatedLoads = 0

	if orig.Cycles != wantCycles ||
		orig.Counters.Get("pipeline.retired") != wantRetired ||
		orig.Pipeline.EliminatedLoads != wantElim {
		t.Errorf("mutating the clone changed the original")
	}
	for i, m := range orig.Mechanisms {
		for name, v := range m.Counters {
			if v == 0 && clone.Mechanisms[i].Counters[name] == 0 {
				continue
			}
			if v == 0 {
				t.Errorf("mechanism %s counter %s zeroed through the clone", m.Name, name)
			}
		}
	}
	if (*RunResult)(nil).Clone() != nil {
		t.Error("nil Clone != nil")
	}
}

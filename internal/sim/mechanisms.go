package sim

import (
	"fmt"

	"constable/internal/constable"
	"constable/internal/pipeline"
	"constable/internal/vpred"
)

// MechanismPreset is one named mechanism configuration in the registry.
type MechanismPreset struct {
	Name        string
	Description string
	Mech        Mechanism
}

// mechanismPresets is THE mechanism name→configuration table. Every consumer
// — the service API, the CLIs, the examples — resolves names through it, so
// adding a preset here makes it available everywhere at once.
var mechanismPresets = []MechanismPreset{
	{"baseline", "strong baseline only (MRN, move/zero elimination, folding)", Mechanism{}},
	{"eves", "EVES load value prediction", Mechanism{EVES: true}},
	{"constable", "Constable load-execution elimination (§6)", Mechanism{Constable: true}},
	{"eves+constable", "EVES and Constable combined", Mechanism{EVES: true, Constable: true}},
	{"elar", "early load address resolution for stack loads", Mechanism{ELAR: true}},
	{"rfp", "register-file prefetching", Mechanism{RFP: true}},
	{"ideal", "Ideal Constable oracle: eliminate all global-stable loads (§4.4)", Mechanism{IdealConstable: true}},
	{"ideal-lvp", "Ideal Stable LVP: perfectly value-predict global-stable loads", Mechanism{IdealStableLVP: true}},
	{"ideal-lvp-dfe", "Ideal Stable LVP plus data-fetch elimination", Mechanism{IdealStableLVP: true, IdealDataFetchElim: true}},
}

// Mechanisms returns the registry of named mechanism presets in
// presentation order. The returned slice is a copy.
func Mechanisms() []MechanismPreset {
	return append([]MechanismPreset(nil), mechanismPresets...)
}

// MechanismNames returns the preset names in presentation order.
func MechanismNames() []string {
	names := make([]string, len(mechanismPresets))
	for i, p := range mechanismPresets {
		names[i] = p.Name
	}
	return names
}

// MechanismByName resolves a preset name into its mechanism set. The empty
// string resolves to the baseline.
func MechanismByName(name string) (Mechanism, error) {
	if name == "" {
		return Mechanism{}, nil
	}
	for _, p := range mechanismPresets {
		if p.Name == name {
			return p.Mech, nil
		}
	}
	return Mechanism{}, fmt.Errorf("sim: unknown mechanism %q (known: %v)", name, MechanismNames())
}

// MechanismName returns the registry name of m, or "custom" when m does not
// correspond to a preset (e.g. a ConstableConfig override).
func MechanismName(m Mechanism) string {
	if m.ConstableConfig != nil {
		return "custom"
	}
	for _, p := range mechanismPresets {
		if p.Mech == m {
			return p.Name
		}
	}
	return "custom"
}

// NewAttachments builds the pipeline attachments for m's table-based
// mechanisms (Constable, EVES, RFP, ELAR). The oracle mechanisms need a
// per-workload stable-load pre-pass and are layered on by Run; callers that
// drive a Core directly (trace replay) use this to honor the registry
// without duplicating the construction logic.
func (m Mechanism) NewAttachments() (pipeline.Attachments, *constable.Constable, *vpred.EVES) {
	var att pipeline.Attachments
	var cons *constable.Constable
	var eves *vpred.EVES
	if m.Constable {
		ccfg := constable.DefaultConfig()
		if m.ConstableConfig != nil {
			ccfg = *m.ConstableConfig
		}
		cons = constable.New(ccfg)
		att.Constable = cons
	}
	if m.EVES {
		eves = vpred.NewEVES(vpred.DefaultEVESConfig())
		att.EVES = eves
	}
	if m.RFP {
		att.RFP = vpred.NewRFP(vpred.DefaultRFPConfig())
	}
	if m.ELAR {
		att.ELAR = vpred.NewELAR()
	}
	return att, cons, eves
}

// NeedsStableAnalysis reports whether running m requires the stable-load
// pre-pass (any oracle mechanism).
func (m Mechanism) NeedsStableAnalysis() bool {
	return m.IdealConstable || m.IdealStableLVP
}

package sim

import (
	"fmt"
	"strings"

	"constable/internal/bpred"
	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/pipeline"
	"constable/internal/vpred"
)

// MechanismPreset is one named mechanism configuration in the registry.
type MechanismPreset struct {
	Name        string
	Description string
	Mech        Mechanism
}

// mechanismPresets is THE mechanism name→configuration table. Every consumer
// — the service API, the CLIs, the examples — resolves names through it, so
// adding a preset here makes it available everywhere at once. A preset fixes
// the table-based mechanism set; the component axes (bpred, prefetch,
// l1dpred) compose orthogonally on top via qualified names, e.g.
// "constable,bpred=bimodal,prefetch=none".
var mechanismPresets = []MechanismPreset{
	{"baseline", "strong baseline only (MRN, move/zero elimination, folding)", Mechanism{}},
	{"eves", "EVES load value prediction", Mechanism{EVES: true}},
	{"constable", "Constable load-execution elimination (§6)", Mechanism{Constable: true}},
	{"eves+constable", "EVES and Constable combined", Mechanism{EVES: true, Constable: true}},
	{"elar", "early load address resolution for stack loads", Mechanism{ELAR: true}},
	{"rfp", "register-file prefetching", Mechanism{RFP: true}},
	{"ideal", "Ideal Constable oracle: eliminate all global-stable loads (§4.4)", Mechanism{IdealConstable: true}},
	{"ideal-lvp", "Ideal Stable LVP: perfectly value-predict global-stable loads", Mechanism{IdealStableLVP: true}},
	{"ideal-lvp-dfe", "Ideal Stable LVP plus data-fetch elimination", Mechanism{IdealStableLVP: true, IdealDataFetchElim: true}},
}

// Axis names (the keys accepted in qualified mechanism names and MechSpecs).
const (
	AxisBPred    = "bpred"
	AxisPrefetch = "prefetch"
	AxisL1DPred  = "l1dpred"
)

// AxisParam documents one configuration parameter of an axis, for the
// /v1/mechanisms schema.
type AxisParam struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Default     any    `json:"default"`
}

// AxisVariant is one named variant of a component axis.
type AxisVariant struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// MechanismAxis describes one component axis of the mechanism zoo: its
// variants, the default, and the parameters a config override may set.
type MechanismAxis struct {
	Name        string        `json:"name"`
	Description string        `json:"description"`
	Default     string        `json:"default"`
	Variants    []AxisVariant `json:"variants"`
	Params      []AxisParam   `json:"params"`
}

var defaultBPredCfg = bpred.DefaultConfig()

// mechanismAxes is the axis registry. Variant names are validated against it
// and the service surfaces it verbatim under /v1/mechanisms.
var mechanismAxes = []MechanismAxis{
	{
		Name:        AxisBPred,
		Description: "branch predictor driving the front end",
		Default:     "tage",
		Variants: []AxisVariant{
			{"tage", "TAGE-like: bimodal base plus tagged geometric-history tables (Table 2)"},
			{"bimodal", "plain bimodal counter table, no history tables"},
		},
		Params: []AxisParam{
			{"tables", "number of tagged history tables (0 = bimodal only)", defaultBPredCfg.Tables},
			{"table_bits", "log2 entries per tagged table", defaultBPredCfg.TableBits},
			{"bimodal_bits", "log2 entries of the bimodal fallback table", defaultBPredCfg.BimodalBits},
			{"tag_bits", "partial-tag width of the tagged tables", defaultBPredCfg.TagBits},
			{"hist_lens", "global-history length per tagged table, ascending", defaultBPredCfg.HistLens[:defaultBPredCfg.Tables]},
			{"ras_depth", "return-address-stack depth", defaultBPredCfg.RASDepth},
			{"btb_bits", "log2 entries of the branch target buffer", defaultBPredCfg.BTBBits},
		},
	},
	{
		Name:        AxisPrefetch,
		Description: "L1-D hardware prefetcher on the demand-load path",
		Default:     "stride",
		Variants: []AxisVariant{
			{"stride", "PC-indexed stride detector, prefetches degree lines ahead (Table 2)"},
			{"delta", "PC-indexed delta-pattern correlator: replays repeating multi-delta sequences"},
			{"none", "L1-D prefetching disabled (the L2 streamer stays on)"},
		},
		Params: []AxisParam{
			{"entries", "PC-indexed table size, rounded up to a power of two", cache.DefaultPrefetchConfig().Entries},
			{"degree", "lines prefetched ahead per confident trigger", cache.DefaultPrefetchConfig().Degree},
			{"threshold", "confidence needed before prefetches issue", cache.DefaultPrefetchConfig().Threshold},
			{"max_conf", "confidence saturation cap", cache.DefaultPrefetchConfig().MaxConf},
			{"deltas", "per-PC delta-history depth (delta variant only)", cache.DefaultPrefetchConfig().Deltas},
		},
	},
	{
		Name:        AxisL1DPred,
		Description: "L1-D hit/miss predictor observing the demand-load stream (instrumentation)",
		Default:     "off",
		Variants: []AxisVariant{
			{"off", "no hit/miss predictor attached"},
			{"counter", "PC-indexed saturating-counter table"},
			{"global", "single shared counter (deliberate weak contrast)"},
		},
		Params: []AxisParam{
			{"entries", "PC-indexed counter-table size (counter variant)", cache.DefaultL1DPredConfig().Entries},
			{"bits", "saturating-counter width in bits", cache.DefaultL1DPredConfig().Bits},
		},
	},
}

// MechanismAxes returns the component-axis registry in presentation order.
// The returned slice is a copy.
func MechanismAxes() []MechanismAxis {
	return append([]MechanismAxis(nil), mechanismAxes...)
}

// axisByName returns the axis descriptor for name.
func axisByName(name string) (MechanismAxis, bool) {
	for _, a := range mechanismAxes {
		if a.Name == name {
			return a, true
		}
	}
	return MechanismAxis{}, false
}

// canonicalVariant normalizes an axis variant name: the empty string and the
// axis default both canonicalize to "", so Mechanism comparison and content
// hashing treat them identically. Unknown variants return an error.
func canonicalVariant(axis MechanismAxis, v string) (string, error) {
	if v == "" || v == axis.Default {
		return "", nil
	}
	for _, av := range axis.Variants {
		if av.Name == v {
			return v, nil
		}
	}
	known := make([]string, len(axis.Variants))
	for i, av := range axis.Variants {
		known[i] = av.Name
	}
	return "", fmt.Errorf("sim: unknown %s variant %q (known: %v)", axis.Name, v, known)
}

// CanonicalAxes returns m with every axis variant name normalized (default
// names become the empty string). Invalid variant names are reported.
func (m Mechanism) CanonicalAxes() (Mechanism, error) {
	for _, spec := range []struct {
		axis string
		v    *string
	}{
		{AxisBPred, &m.BPred},
		{AxisPrefetch, &m.Prefetch},
		{AxisL1DPred, &m.L1DPred},
	} {
		a, _ := axisByName(spec.axis)
		cv, err := canonicalVariant(a, *spec.v)
		if err != nil {
			return m, err
		}
		*spec.v = cv
	}
	return m, nil
}

// clearAxes returns m with all axis fields (variants and config overrides)
// zeroed, leaving only the table-based mechanism set.
func (m Mechanism) clearAxes() Mechanism {
	m.BPred, m.Prefetch, m.L1DPred = "", "", ""
	m.BPredConfig, m.PrefetchConfig, m.L1DPredConfig = nil, nil, nil
	return m
}

// Mechanisms returns the registry of named mechanism presets in
// presentation order. The returned slice is a copy.
func Mechanisms() []MechanismPreset {
	return append([]MechanismPreset(nil), mechanismPresets...)
}

// MechanismNames returns the preset names in presentation order.
func MechanismNames() []string {
	names := make([]string, len(mechanismPresets))
	for i, p := range mechanismPresets {
		names[i] = p.Name
	}
	return names
}

// MechanismByName resolves a mechanism name into its mechanism set. The
// empty string resolves to the baseline. Besides bare preset names, the
// qualified form "preset,axis=variant[,axis=variant...]" composes component
// axes onto a preset ("constable,bpred=bimodal,prefetch=none"); a leading
// axis term ("bpred=bimodal") composes onto the baseline. Default variant
// names canonicalize away, so MechanismName inverts this exactly.
func MechanismByName(name string) (Mechanism, error) {
	parts := strings.Split(name, ",")
	preset := strings.TrimSpace(parts[0])
	axisParts := parts[1:]
	if strings.Contains(preset, "=") {
		preset = ""
		axisParts = parts
	}
	var m Mechanism
	if preset != "" {
		found := false
		for _, p := range mechanismPresets {
			if p.Name == preset {
				m, found = p.Mech, true
				break
			}
		}
		if !found {
			return Mechanism{}, fmt.Errorf("sim: unknown mechanism %q (known: %v)", preset, MechanismNames())
		}
	}
	for _, part := range axisParts {
		part = strings.TrimSpace(part)
		axisName, variant, ok := strings.Cut(part, "=")
		if !ok {
			return Mechanism{}, fmt.Errorf("sim: malformed axis term %q in mechanism %q (want axis=variant)", part, name)
		}
		axis, ok := axisByName(strings.TrimSpace(axisName))
		if !ok {
			return Mechanism{}, fmt.Errorf("sim: unknown axis %q in mechanism %q (known: %s, %s, %s)",
				axisName, name, AxisBPred, AxisPrefetch, AxisL1DPred)
		}
		cv, err := canonicalVariant(axis, strings.TrimSpace(variant))
		if err != nil {
			return Mechanism{}, err
		}
		switch axis.Name {
		case AxisBPred:
			m.BPred = cv
		case AxisPrefetch:
			m.Prefetch = cv
		case AxisL1DPred:
			m.L1DPred = cv
		}
	}
	return m, nil
}

// MechanismName returns the registry name of m: the preset name, qualified
// with ",axis=variant" terms for non-default axes, or "custom" when the
// table-based set matches no preset or any config override is present.
// It is the inverse of MechanismByName for every name that function accepts.
func MechanismName(m Mechanism) string {
	if m.ConstableConfig != nil || m.BPredConfig != nil || m.PrefetchConfig != nil || m.L1DPredConfig != nil {
		return "custom"
	}
	cm, err := m.CanonicalAxes()
	if err != nil {
		return "custom"
	}
	base := cm.clearAxes()
	name := ""
	for _, p := range mechanismPresets {
		if p.Mech == base {
			name = p.Name
			break
		}
	}
	if name == "" {
		return "custom"
	}
	for _, t := range []struct{ axis, v string }{
		{AxisBPred, cm.BPred},
		{AxisPrefetch, cm.Prefetch},
		{AxisL1DPred, cm.L1DPred},
	} {
		if t.v != "" {
			name += "," + t.axis + "=" + t.v
		}
	}
	return name
}

// ResolvedBPredConfig returns the branch-predictor configuration m builds:
// the variant's base config with any override applied.
func (m Mechanism) ResolvedBPredConfig() bpred.Config {
	cfg := bpred.DefaultConfig()
	if m.BPred == "bimodal" {
		cfg = bpred.BimodalConfig()
	}
	if m.BPredConfig != nil {
		cfg = *m.BPredConfig
	}
	return cfg
}

// ResolvedPrefetchConfig returns the L1-D prefetcher configuration m builds
// (meaningless for the "none" variant, which takes no parameters).
func (m Mechanism) ResolvedPrefetchConfig() cache.PrefetchConfig {
	cfg := cache.DefaultPrefetchConfig()
	if m.PrefetchConfig != nil {
		cfg = *m.PrefetchConfig
	}
	return cfg
}

// ResolvedL1DPredConfig returns the L1-D hit/miss predictor configuration and
// whether the axis is enabled at all. The variant decides the Global flag.
func (m Mechanism) ResolvedL1DPredConfig() (cache.L1DPredConfig, bool) {
	v := m.L1DPred
	if v == "" || v == "off" {
		return cache.L1DPredConfig{}, false
	}
	cfg := cache.DefaultL1DPredConfig()
	if m.L1DPredConfig != nil {
		cfg = *m.L1DPredConfig
	}
	cfg.Global = v == "global"
	return cfg, true
}

// NewAttachments builds the pipeline attachments for m's table-based
// mechanisms (Constable, EVES, RFP, ELAR) and component axes (branch
// predictor, L1-D prefetcher, L1-D hit/miss predictor). The oracle
// mechanisms need a per-workload stable-load pre-pass and are layered on by
// Run; callers that drive a Core directly (trace replay) use this to honor
// the registry without duplicating the construction logic. It reports
// unknown axis variants and invalid config overrides.
func (m Mechanism) NewAttachments() (pipeline.Attachments, *constable.Constable, *vpred.EVES, error) {
	var att pipeline.Attachments
	var cons *constable.Constable
	var eves *vpred.EVES
	cm, err := m.CanonicalAxes()
	if err != nil {
		return att, nil, nil, err
	}

	if cm.Constable {
		ccfg := constable.DefaultConfig()
		if cm.ConstableConfig != nil {
			ccfg = *cm.ConstableConfig
		}
		cons = constable.New(ccfg)
		att.Constable = cons
	}
	if cm.EVES {
		eves = vpred.NewEVES(vpred.DefaultEVESConfig())
		att.EVES = eves
	}
	if cm.RFP {
		att.RFP = vpred.NewRFP(vpred.DefaultRFPConfig())
	}
	if cm.ELAR {
		att.ELAR = vpred.NewELAR()
	}

	// Branch-predictor axis: construct only when something deviates from the
	// default, so default runs keep the core's own construction path.
	if cm.BPred != "" || cm.BPredConfig != nil {
		bcfg := cm.ResolvedBPredConfig()
		if err := bcfg.Validate(); err != nil {
			return att, nil, nil, fmt.Errorf("sim: bpred axis: %w", err)
		}
		att.BPred = bpred.New(bcfg)
	}
	// Prefetch axis.
	switch cm.Prefetch {
	case "":
		if cm.PrefetchConfig != nil {
			pcfg := cm.ResolvedPrefetchConfig()
			if err := pcfg.Validate(); err != nil {
				return att, nil, nil, fmt.Errorf("sim: prefetch axis: %w", err)
			}
			att.L1Prefetch = cache.NewStridePrefetcherWith(pcfg)
		}
	case "delta":
		pcfg := cm.ResolvedPrefetchConfig()
		if err := pcfg.Validate(); err != nil {
			return att, nil, nil, fmt.Errorf("sim: prefetch axis: %w", err)
		}
		att.L1Prefetch = cache.NewDeltaPrefetcher(pcfg)
	case "none":
		if cm.PrefetchConfig != nil {
			return att, nil, nil, fmt.Errorf("sim: prefetch=none takes no config override")
		}
		att.L1Prefetch = cache.NonePrefetcher{}
	}
	// L1-D hit/miss predictor axis.
	if lcfg, on := cm.ResolvedL1DPredConfig(); on {
		if err := lcfg.Validate(); err != nil {
			return att, nil, nil, fmt.Errorf("sim: l1dpred axis: %w", err)
		}
		att.L1DPred = cache.NewL1DPredictor(lcfg)
	} else if cm.L1DPredConfig != nil {
		return att, nil, nil, fmt.Errorf("sim: l1dpred config override requires a variant (counter or global)")
	}
	return att, cons, eves, nil
}

// NeedsStableAnalysis reports whether running m requires the stable-load
// pre-pass (any oracle mechanism).
func (m Mechanism) NeedsStableAnalysis() bool {
	return m.IdealConstable || m.IdealStableLVP
}

package sim

import (
	"fmt"

	"constable/internal/constable"
	"constable/internal/pipeline"
)

// EnvelopeSchema versions the full-fidelity RunResult encoding used for
// persistence (the service's content-addressed store) and transport (the
// server↔worker wire format). Bump it whenever ResultEnvelope, TypedViews or
// RunResult changes incompatibly; consumers treat other versions as absent
// results, so a mixed-version cluster re-simulates rather than decoding
// garbage.
const EnvelopeSchema = 1

// TypedViews carries the RunResult fields excluded from the public JSON
// schema (tagged `json:"-"`): the typed Pipeline/Constable programmatic
// views, the hierarchy access counts and the EVES accounting the experiment
// drivers read. They round-trip only through a ResultEnvelope.
type TypedViews struct {
	Pipeline  pipeline.Stats  `json:"pipeline"`
	Constable constable.Stats `json:"constable"`

	L1DAccesses  uint64 `json:"l1d_accesses"`
	L2Accesses   uint64 `json:"l2_accesses"`
	LLCAccesses  uint64 `json:"llc_accesses"`
	DTLBAccesses uint64 `json:"dtlb_accesses"`

	EVESPredictions uint64 `json:"eves_predictions"`
	EVESMispredicts uint64 `json:"eves_mispredicts"`
}

// ResultEnvelope is the full-fidelity serialized form of one RunResult: the
// public document plus the typed views, stamped with the schema version and
// the content hash of the JobSpec that produced it. The recorded hash lets
// any consumer verify an envelope against the key it was requested under —
// a file renamed across store shards, or a result returned by a confused or
// malicious remote worker, can never alias another spec's result.
type ResultEnvelope struct {
	Schema int        `json:"schema"`
	Hash   string     `json:"hash"`
	Result *RunResult `json:"result"`
	Typed  TypedViews `json:"typed"`
}

// NewResultEnvelope wraps res (produced by the job whose canonical spec
// hashes to hash) for persistence or transport.
func NewResultEnvelope(hash string, res *RunResult) ResultEnvelope {
	return ResultEnvelope{
		Schema: EnvelopeSchema,
		Hash:   hash,
		Result: res,
		Typed: TypedViews{
			Pipeline:        res.Pipeline,
			Constable:       res.Constable,
			L1DAccesses:     res.L1DAccesses,
			L2Accesses:      res.L2Accesses,
			LLCAccesses:     res.LLCAccesses,
			DTLBAccesses:    res.DTLBAccesses,
			EVESPredictions: res.EVESPredictions,
			EVESMispredicts: res.EVESMispredicts,
		},
	}
}

// Open validates the envelope — schema version, presence of a result, and
// (when wantHash is non-empty) that the recorded producing-spec hash matches
// the key the caller asked for — and returns the RunResult with its typed
// views restored. The returned result is the envelope's own freshly-decoded
// document, owned by the caller.
func (e ResultEnvelope) Open(wantHash string) (*RunResult, error) {
	if e.Schema != EnvelopeSchema {
		return nil, fmt.Errorf("sim: result envelope schema %d, want %d", e.Schema, EnvelopeSchema)
	}
	if e.Result == nil {
		return nil, fmt.Errorf("sim: result envelope has no result document")
	}
	if wantHash != "" && e.Hash != wantHash {
		return nil, fmt.Errorf("sim: result envelope hash %.12s does not match requested key %.12s", e.Hash, wantHash)
	}
	res := e.Result
	res.Pipeline = e.Typed.Pipeline
	res.Constable = e.Typed.Constable
	res.L1DAccesses = e.Typed.L1DAccesses
	res.L2Accesses = e.Typed.L2Accesses
	res.LLCAccesses = e.Typed.LLCAccesses
	res.DTLBAccesses = e.Typed.DTLBAccesses
	res.EVESPredictions = e.Typed.EVESPredictions
	res.EVESMispredicts = e.Typed.EVESMispredicts
	return res, nil
}

// Package sim wires workloads, the core model, the memory hierarchy,
// Constable and the competing mechanisms into runnable configurations, and
// is the entry point the experiment drivers, the CLI tools and the examples
// use. It owns the golden-check methodology (§8.5): every run verifies each
// retiring load against the functional model and fails loudly on a mismatch.
//
// Run returns a structured RunResult — identity, configuration digest,
// cycles/IPC, the counter snapshot populated through the stats registry,
// the per-mechanism breakdown and the power summary. A result's
// full-fidelity serialized form is the ResultEnvelope, which additionally
// carries the typed programmatic views excluded from the public JSON schema
// and stamps the producing JobSpec's content hash; the service layer uses
// it both on disk (the persistent store) and on the wire (server↔worker
// transport). The mechanism registry (Mechanisms, MechanismByName) is the
// single name→configuration table shared by every driver and the HTTP API.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"constable/internal/bpred"
	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/inspector"
	"constable/internal/pipeline"
	"constable/internal/power"
	"constable/internal/stats"
	"constable/internal/vpred"
	"constable/internal/workload"
)

// Mechanism selects which latency-tolerance / elimination mechanisms a run
// enables on top of the strong baseline (which always includes MRN, move and
// zero elimination, constant and branch folding).
type Mechanism struct {
	EVES      bool
	Constable bool
	RFP       bool
	ELAR      bool

	// IdealConstable eliminates all global-stable loads (oracle, §4.4).
	IdealConstable bool
	// IdealStableLVP perfectly value-predicts all global-stable loads.
	IdealStableLVP bool
	// IdealDataFetchElim upgrades IdealStableLVP to skip the data fetch.
	IdealDataFetchElim bool

	// ConstableConfig overrides the default Constable configuration
	// (AMT-I variant, mode filters, full-address AMT...).
	ConstableConfig *constable.Config

	// Component axes (the mechanism zoo): each selects a named variant of
	// one microarchitectural component, orthogonal to the mechanism set
	// above. The empty string selects the axis default (TAGE, stride
	// prefetcher, no L1-D hit/miss predictor); MechanismAxes lists the
	// variants. The optional config pointers override the chosen variant's
	// parameterization.
	BPred    string
	Prefetch string
	L1DPred  string

	BPredConfig    *bpred.Config
	PrefetchConfig *cache.PrefetchConfig
	L1DPredConfig  *cache.L1DPredConfig
}

// Options describes one simulation run.
type Options struct {
	Workload *workload.Spec
	APX      bool
	// Instructions is the committed-path instruction budget per thread.
	Instructions uint64
	// Threads selects noSMT (1) or SMT2 (2). With SMT2 the same workload
	// runs in both hardware contexts.
	Threads int

	Mech Mechanism

	// Core, when non-nil, overrides the default core configuration (load-
	// width and depth scaling sweeps).
	Core *pipeline.Config

	// StablePCs primes the oracles and the Fig. 6 accounting; when nil and
	// an oracle is requested, the stable-load pre-pass runs automatically.
	StablePCs map[uint64]bool
}

// RunIdentity names what a run simulated: the workload, the resolved
// mechanism preset ("custom" for ad-hoc sets), and the run shape.
type RunIdentity struct {
	Workload     string `json:"workload"`
	Category     string `json:"category"`
	Mechanism    string `json:"mechanism"`
	Threads      int    `json:"threads"`
	APX          bool   `json:"apx,omitempty"`
	Instructions uint64 `json:"instructions"`
}

// MechanismStats is the per-mechanism slice of a run's counter snapshot:
// one entry per active mechanism, carrying the counters that describe it
// (structure events, eliminated/value-predicted loads, golden checks).
type MechanismStats struct {
	Name     string         `json:"name"`
	Counters stats.Snapshot `json:"counters"`
}

// RunResult is the structured outcome of one run: identity, configuration
// digest, headline performance, the full counter snapshot populated through
// the stats registry, the per-mechanism breakdown, and the power summary.
// The typed Pipeline/Constable views carry the same values for programmatic
// consumers; the snapshot is the serialization schema.
type RunResult struct {
	Identity     RunIdentity      `json:"identity"`
	ConfigDigest string           `json:"config_digest"`
	Cycles       uint64           `json:"cycles"`
	IPC          float64          `json:"ipc"`
	Counters     stats.Snapshot   `json:"counters"`
	Mechanisms   []MechanismStats `json:"mechanisms,omitempty"`
	Power        power.Breakdown  `json:"power"`

	Pipeline  pipeline.Stats  `json:"-"`
	Constable constable.Stats `json:"-"`

	L1DAccesses  uint64 `json:"-"`
	L2Accesses   uint64 `json:"-"`
	LLCAccesses  uint64 `json:"-"`
	DTLBAccesses uint64 `json:"-"`

	EVESPredictions uint64 `json:"-"`
	EVESMispredicts uint64 `json:"-"`
}

// Clone returns a deep copy of r: the copy shares no mutable state (counter
// maps, per-mechanism snapshots) with the original, so mutating one never
// affects the other. The service layer's result cache hands out clones on
// every hit for exactly this reason. A nil receiver clones to nil.
func (r *RunResult) Clone() *RunResult {
	if r == nil {
		return nil
	}
	c := *r
	c.Counters = r.Counters.Clone()
	if r.Mechanisms != nil {
		c.Mechanisms = make([]MechanismStats, len(r.Mechanisms))
		for i, m := range r.Mechanisms {
			c.Mechanisms[i] = MechanismStats{Name: m.Name, Counters: m.Counters.Clone()}
		}
	}
	c.Pipeline.EliminatedByMode = cloneCountMap(r.Pipeline.EliminatedByMode)
	c.Pipeline.RetiredStableByMode = cloneCountMap(r.Pipeline.RetiredStableByMode)
	c.Pipeline.EliminatedStableByMode = cloneCountMap(r.Pipeline.EliminatedStableByMode)
	return &c
}

func cloneCountMap(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Interned counter IDs for the run-level memory-hierarchy counters.
var (
	cL1DAccesses  = stats.Intern("mem.l1d_accesses")
	cL2Accesses   = stats.Intern("mem.l2_accesses")
	cLLCAccesses  = stats.Intern("mem.llc_accesses")
	cDTLBAccesses = stats.Intern("mem.dtlb_accesses")
)

// ConfigDigest returns the sha256 content hash of the fully-resolved run
// configuration (workload, mechanism, core, budget). Two runs with equal
// digests simulated the same thing.
func configDigest(opts Options, core pipeline.Config) string {
	doc := struct {
		Workload     string               `json:"workload"`
		APX          bool                 `json:"apx"`
		Instructions uint64               `json:"instructions"`
		Threads      int                  `json:"threads"`
		Mech         Mechanism            `json:"mech"`
		Core         pipeline.Config      `json:"core"`
		Constable    constable.Config     `json:"constable"`
		BPred        bpred.Config         `json:"bpred"`
		Prefetch     cache.PrefetchConfig `json:"prefetch"`
		L1DPred      *cache.L1DPredConfig `json:"l1dpred,omitempty"`
		StablePCs    []uint64             `json:"stable_pcs,omitempty"`
	}{Workload: opts.Workload.Name, APX: opts.APX, Instructions: opts.Instructions,
		Threads: opts.Threads, Mech: opts.Mech, Core: core, Constable: constable.DefaultConfig(),
		BPred: opts.Mech.ResolvedBPredConfig(), Prefetch: opts.Mech.ResolvedPrefetchConfig()}
	if opts.Mech.ConstableConfig != nil {
		doc.Constable = *opts.Mech.ConstableConfig
	}
	if lcfg, on := opts.Mech.ResolvedL1DPredConfig(); on {
		doc.L1DPred = &lcfg
	}
	if opts.StablePCs != nil {
		// A caller-primed stable-PC set changes oracle behavior and the
		// Fig. 6 accounting, so it is part of what was simulated.
		for pc, ok := range opts.StablePCs {
			if ok {
				doc.StablePCs = append(doc.StablePCs, pc)
			}
		}
		sort.Slice(doc.StablePCs, func(i, j int) bool { return doc.StablePCs[i] < doc.StablePCs[j] })
	}
	b, err := json.Marshal(doc)
	if err != nil {
		// Every field above is a plain struct of scalars; failure would be a
		// programming error, not an input error.
		panic(fmt.Sprintf("sim: config digest: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// stableCache memoizes the global-stable pre-pass per (workload, APX).
var stableCache sync.Map

type stableKey struct {
	name string
	apx  bool
	n    uint64
}

// StableAnalysis runs the Load Inspector pre-pass over the first n
// instructions of the workload and returns the analysis (memoized). Trace
// names are content hashes, so the (name, apx, n) memo key stays sound for
// trace-backed specs.
func StableAnalysis(spec *workload.Spec, apx bool, n uint64) (*inspector.Inspector, error) {
	key := stableKey{spec.Name, apx, n}
	if v, ok := stableCache.Load(key); ok {
		return v.(*inspector.Inspector), nil
	}
	st, err := spec.NewStream(apx, n)
	if err != nil {
		return nil, err
	}
	ins := inspector.New()
	for i := uint64(0); i < n; i++ {
		d, ok := st.Next()
		if !ok {
			break
		}
		ins.Observe(&d)
	}
	if err := st.Err(); err != nil {
		return nil, fmt.Errorf("sim %s: stable pre-pass: %w", spec.Name, err)
	}
	stableCache.Store(key, ins)
	return ins, nil
}

// Run executes one simulation and returns its result. It returns an error if
// the workload cannot be built or the golden check fails.
func Run(opts Options) (*RunResult, error) {
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	if opts.Instructions == 0 {
		opts.Instructions = 100_000
	}

	cfg := pipeline.DefaultConfig()
	if opts.Core != nil {
		cfg = *opts.Core
	}
	cfg.Threads = opts.Threads

	att, cons, eves, err := buildAttachments(opts)
	if err != nil {
		return nil, err
	}

	streams := make([]pipeline.Stream, opts.Threads)
	wlStreams := make([]workload.Stream, opts.Threads)
	for i := range streams {
		st, err := opts.Workload.NewStream(opts.APX, opts.Instructions)
		if err != nil {
			return nil, err
		}
		wlStreams[i] = st
		streams[i] = st
	}

	hier := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	core := pipeline.NewCore(cfg, att, hier, streams...)

	// Generous cycle bound: IPC below 0.05 would indicate a deadlock.
	maxCycles := opts.Instructions * uint64(opts.Threads) * 20
	if maxCycles < 1_000_000 {
		maxCycles = 1_000_000
	}
	if err := core.Run(maxCycles); err != nil {
		return nil, fmt.Errorf("sim %s: %w", opts.Workload.Name, err)
	}
	for _, ws := range wlStreams {
		if serr := ws.Err(); serr != nil {
			return nil, fmt.Errorf("sim %s: %w", opts.Workload.Name, serr)
		}
	}
	st := core.Stats
	// A trace shorter than the budget ends the stream early; that is the
	// whole trace replayed, not a deadlock.
	perThread := opts.Instructions
	if ti := opts.Workload.TraceInstructions(); ti > 0 && ti < perThread {
		perThread = ti
	}
	want := perThread * uint64(opts.Threads)
	if st.Retired < want {
		return nil, fmt.Errorf("sim %s: retired only %d of %d instructions in %d cycles (deadlock?)",
			opts.Workload.Name, st.Retired, want, st.Cycles)
	}

	res := &RunResult{
		Identity: RunIdentity{
			Workload:     opts.Workload.Name,
			Category:     string(opts.Workload.Category),
			Mechanism:    MechanismName(opts.Mech),
			Threads:      opts.Threads,
			APX:          opts.APX,
			Instructions: opts.Instructions,
		},
		ConfigDigest: configDigest(opts, cfg),
		Cycles:       st.Cycles,
		IPC:          st.IPC(),
		Pipeline:     st,
		L1DAccesses:  hier.L1DLoadAccesses + hier.L1DStoreAccesses,
		L2Accesses:   hier.L2Accesses,
		LLCAccesses:  hier.LLCAccesses,
		DTLBAccesses: hier.DTLBAccesses,
	}
	if cons != nil {
		res.Constable = cons.Stats
	}
	if eves != nil {
		res.EVESPredictions = eves.Predictions
		res.EVESMispredicts = eves.Mispredicts
	}

	ev := power.Events{
		FetchedUops:  st.FetchedUops,
		RenamedUops:  st.RenamedUops,
		RSAllocs:     st.RSAllocs,
		RSIssues:     st.RSAllocs,
		ROBAllocs:    st.ROBAllocs,
		ALUOps:       st.ALUOps,
		AGUOps:       st.AGUOps,
		L1DAccesses:  res.L1DAccesses,
		DTLBAccesses: res.DTLBAccesses,
		L2Accesses:   res.L2Accesses,
		LLCAccesses:  res.LLCAccesses,
		Cycles:       st.Cycles,
	}
	if cons != nil {
		// Rename lookups and writeback confidence compares read the SLD;
		// can_eliminate flag updates write it.
		ev.SLDReads = cons.Stats.SLDLookups + cons.Stats.SLDConfUpdates
		ev.SLDWrites = cons.Stats.SLDWriteOps + cons.Stats.CanElimSets
		ev.RMTOps = st.RenamedUops
		ev.AMTReads = st.StoreExecs
		ev.AMTWrites = cons.Stats.CanElimSets
	}
	res.Power = power.Compute(ev)

	// Populate the counter snapshot through the interned registry: every
	// producing package emits its own counters by stable integer ID.
	var set stats.CounterSet
	st.EmitCounters(&set)
	if cons != nil {
		cons.Stats.EmitCounters(&set)
	}
	if eves != nil {
		eves.EmitCounters(&set)
	}
	if att.RFP != nil {
		att.RFP.EmitCounters(&set)
	}
	if att.ELAR != nil {
		att.ELAR.EmitCounters(&set)
	}
	ev.EmitCounters(&set)
	hier.EmitCounters(&set)
	set.Add(cL1DAccesses, res.L1DAccesses)
	set.Add(cL2Accesses, res.L2Accesses)
	set.Add(cLLCAccesses, res.LLCAccesses)
	set.Add(cDTLBAccesses, res.DTLBAccesses)
	res.Counters = set.Snapshot()
	res.Mechanisms = mechanismBreakdown(opts.Mech, res.Counters)
	return res, nil
}

// mechanismBreakdown slices the run snapshot into per-mechanism counter
// groups: each active mechanism gets its structure counters plus the
// retirement-side counters that describe its effect.
func mechanismBreakdown(m Mechanism, snap stats.Snapshot) []MechanismStats {
	pick := func(dst stats.Snapshot, names ...string) {
		for _, n := range names {
			if v, ok := snap[n]; ok {
				dst[n] = v
			}
		}
	}
	var out []MechanismStats
	if m.Constable || m.IdealConstable {
		// Names match the mechanism registry's vocabulary, so clients can
		// correlate Identity.Mechanism and /v1/mechanisms with the breakdown.
		name := "constable"
		if m.IdealConstable {
			name = "ideal"
		}
		c := snap.Filter("constable.")
		pick(c, "pipeline.eliminated_loads", "pipeline.eliminated_non_stable",
			"pipeline.golden_checks", "pipeline.ordering_violations",
			"pipeline.eliminated_that_violated",
			"power.sld_reads", "power.sld_writes", "power.amt_reads", "power.amt_writes")
		out = append(out, MechanismStats{Name: name, Counters: c})
	}
	if m.EVES || m.IdealStableLVP {
		name := "eves"
		if m.IdealStableLVP {
			name = "ideal-lvp"
			if m.IdealDataFetchElim {
				name = "ideal-lvp-dfe"
			}
		}
		c := snap.Filter("eves.")
		pick(c, "pipeline.value_predicted", "pipeline.value_mispredicts")
		out = append(out, MechanismStats{Name: name, Counters: c})
	}
	if m.RFP {
		out = append(out, MechanismStats{Name: "rfp", Counters: snap.Filter("rfp.")})
	}
	if m.ELAR {
		c := snap.Filter("elar.")
		out = append(out, MechanismStats{Name: "elar", Counters: c})
	}
	// Component axes appear in the breakdown only when they deviate from the
	// default, so preset runs keep their existing shape. Axis entries are
	// named like the qualified-name terms ("prefetch=delta"), correlating
	// with Identity.Mechanism and the /v1/mechanisms axis schema.
	cm, err := m.CanonicalAxes()
	if err != nil {
		return out
	}
	if cm.BPred != "" {
		c := stats.Snapshot{}
		pick(c, "pipeline.branches", "pipeline.branch_mispredicts")
		out = append(out, MechanismStats{Name: "bpred=" + cm.BPred, Counters: c})
	}
	if cm.Prefetch != "" {
		c := snap.Filter("prefetch.")
		out = append(out, MechanismStats{Name: "prefetch=" + cm.Prefetch, Counters: c})
	}
	if cm.L1DPred != "" {
		c := snap.Filter("l1dpred.")
		out = append(out, MechanismStats{Name: "l1dpred=" + cm.L1DPred, Counters: c})
	}
	return out
}

// buildAttachments assembles the mechanism set for a run: the registry's
// table-based mechanisms plus the oracles, which need the stable-load
// pre-pass.
func buildAttachments(opts Options) (pipeline.Attachments, *constable.Constable, *vpred.EVES, error) {
	m := opts.Mech
	att, cons, eves, err := m.NewAttachments()
	if err != nil {
		return att, nil, nil, err
	}

	needStable := m.NeedsStableAnalysis() || opts.StablePCs != nil
	if needStable {
		stable := opts.StablePCs
		if stable == nil {
			ins, err := StableAnalysis(opts.Workload, opts.APX, opts.Instructions)
			if err != nil {
				return att, nil, nil, err
			}
			stable = ins.StableLoadPCs()
		}
		att.StablePCs = stable
		if m.IdealConstable {
			att.IdealElimPCs = stable
		}
		if m.IdealStableLVP {
			att.IdealLVPPCs = stable
			att.IdealDataFetchElim = m.IdealDataFetchElim
		}
	}
	return att, cons, eves, nil
}

// Speedup returns the relative performance of res over base at equal work
// (same instruction count): base cycles / res cycles.
func Speedup(base, res *RunResult) float64 {
	if res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// Package sim wires workloads, the core model, the memory hierarchy,
// Constable and the competing mechanisms into runnable configurations, and
// is the entry point the experiment drivers, the CLI tools and the examples
// use. It owns the golden-check methodology (§8.5): every run verifies each
// retiring load against the functional model and fails loudly on a mismatch.
package sim

import (
	"fmt"
	"sync"

	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/fsim"
	"constable/internal/inspector"
	"constable/internal/pipeline"
	"constable/internal/power"
	"constable/internal/vpred"
	"constable/internal/workload"
)

// Mechanism selects which latency-tolerance / elimination mechanisms a run
// enables on top of the strong baseline (which always includes MRN, move and
// zero elimination, constant and branch folding).
type Mechanism struct {
	EVES      bool
	Constable bool
	RFP       bool
	ELAR      bool

	// IdealConstable eliminates all global-stable loads (oracle, §4.4).
	IdealConstable bool
	// IdealStableLVP perfectly value-predicts all global-stable loads.
	IdealStableLVP bool
	// IdealDataFetchElim upgrades IdealStableLVP to skip the data fetch.
	IdealDataFetchElim bool

	// ConstableConfig overrides the default Constable configuration
	// (AMT-I variant, mode filters, full-address AMT...).
	ConstableConfig *constable.Config
}

// Options describes one simulation run.
type Options struct {
	Workload *workload.Spec
	APX      bool
	// Instructions is the committed-path instruction budget per thread.
	Instructions uint64
	// Threads selects noSMT (1) or SMT2 (2). With SMT2 the same workload
	// runs in both hardware contexts.
	Threads int

	Mech Mechanism

	// Core, when non-nil, overrides the default core configuration (load-
	// width and depth scaling sweeps).
	Core *pipeline.Config

	// StablePCs primes the oracles and the Fig. 6 accounting; when nil and
	// an oracle is requested, the stable-load pre-pass runs automatically.
	StablePCs map[uint64]bool
}

// Result is the outcome of one run.
type Result struct {
	Cycles uint64
	IPC    float64

	Pipeline  pipeline.Stats
	Constable constable.Stats
	Power     power.Breakdown

	L1DAccesses  uint64
	L2Accesses   uint64
	LLCAccesses  uint64
	DTLBAccesses uint64

	EVESPredictions uint64
	EVESMispredicts uint64
}

// stableCache memoizes the global-stable pre-pass per (workload, APX).
var stableCache sync.Map

type stableKey struct {
	name string
	apx  bool
	n    uint64
}

// StableAnalysis runs the Load Inspector pre-pass over the first n
// instructions of the workload and returns the analysis (memoized).
func StableAnalysis(spec *workload.Spec, apx bool, n uint64) (*inspector.Inspector, error) {
	key := stableKey{spec.Name, apx, n}
	if v, ok := stableCache.Load(key); ok {
		return v.(*inspector.Inspector), nil
	}
	cpu, err := spec.NewCPU(apx)
	if err != nil {
		return nil, err
	}
	ins := inspector.New()
	for i := uint64(0); i < n; i++ {
		d := cpu.Step()
		ins.Observe(&d)
	}
	stableCache.Store(key, ins)
	return ins, nil
}

// Run executes one simulation and returns its result. It returns an error if
// the workload cannot be built or the golden check fails.
func Run(opts Options) (*Result, error) {
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	if opts.Instructions == 0 {
		opts.Instructions = 100_000
	}

	cfg := pipeline.DefaultConfig()
	if opts.Core != nil {
		cfg = *opts.Core
	}
	cfg.Threads = opts.Threads

	att, cons, eves, err := buildAttachments(opts)
	if err != nil {
		return nil, err
	}

	streams := make([]pipeline.Stream, opts.Threads)
	for i := range streams {
		cpu, err := opts.Workload.NewCPU(opts.APX)
		if err != nil {
			return nil, err
		}
		streams[i] = fsim.NewStream(cpu, opts.Instructions)
	}

	hier := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	core := pipeline.NewCore(cfg, att, hier, streams...)

	// Generous cycle bound: IPC below 0.05 would indicate a deadlock.
	maxCycles := opts.Instructions * uint64(opts.Threads) * 20
	if maxCycles < 1_000_000 {
		maxCycles = 1_000_000
	}
	if err := core.Run(maxCycles); err != nil {
		return nil, fmt.Errorf("sim %s: %w", opts.Workload.Name, err)
	}
	st := core.Stats
	want := opts.Instructions * uint64(opts.Threads)
	if st.Retired < want {
		return nil, fmt.Errorf("sim %s: retired only %d of %d instructions in %d cycles (deadlock?)",
			opts.Workload.Name, st.Retired, want, st.Cycles)
	}

	res := &Result{
		Cycles:       st.Cycles,
		IPC:          st.IPC(),
		Pipeline:     st,
		L1DAccesses:  hier.L1DLoadAccesses + hier.L1DStoreAccesses,
		L2Accesses:   hier.L2Accesses,
		LLCAccesses:  hier.LLCAccesses,
		DTLBAccesses: hier.DTLBAccesses,
	}
	if cons != nil {
		res.Constable = cons.Stats
	}
	if eves != nil {
		res.EVESPredictions = eves.Predictions
		res.EVESMispredicts = eves.Mispredicts
	}

	ev := power.Events{
		FetchedUops:  st.FetchedUops,
		RenamedUops:  st.RenamedUops,
		RSAllocs:     st.RSAllocs,
		RSIssues:     st.RSAllocs,
		ROBAllocs:    st.ROBAllocs,
		ALUOps:       st.ALUOps,
		AGUOps:       st.AGUOps,
		L1DAccesses:  res.L1DAccesses,
		DTLBAccesses: res.DTLBAccesses,
		L2Accesses:   res.L2Accesses,
		LLCAccesses:  res.LLCAccesses,
		Cycles:       st.Cycles,
	}
	if cons != nil {
		// Rename lookups and writeback confidence compares read the SLD;
		// can_eliminate flag updates write it.
		ev.SLDReads = cons.Stats.SLDLookups + cons.Stats.SLDConfUpdates
		ev.SLDWrites = cons.Stats.SLDWriteOps + cons.Stats.CanElimSets
		ev.RMTOps = st.RenamedUops
		ev.AMTReads = st.StoreExecs
		ev.AMTWrites = cons.Stats.CanElimSets
	}
	res.Power = power.Compute(ev)
	return res, nil
}

// buildAttachments assembles the mechanism set for a run.
func buildAttachments(opts Options) (pipeline.Attachments, *constable.Constable, *vpred.EVES, error) {
	var att pipeline.Attachments
	var cons *constable.Constable
	var eves *vpred.EVES

	m := opts.Mech
	if m.Constable {
		ccfg := constable.DefaultConfig()
		if m.ConstableConfig != nil {
			ccfg = *m.ConstableConfig
		}
		cons = constable.New(ccfg)
		att.Constable = cons
	}
	if m.EVES {
		eves = vpred.NewEVES(vpred.DefaultEVESConfig())
		att.EVES = eves
	}
	if m.RFP {
		att.RFP = vpred.NewRFP(vpred.DefaultRFPConfig())
	}
	if m.ELAR {
		att.ELAR = vpred.NewELAR()
	}

	needStable := m.IdealConstable || m.IdealStableLVP || opts.StablePCs != nil
	if needStable {
		stable := opts.StablePCs
		if stable == nil {
			ins, err := StableAnalysis(opts.Workload, opts.APX, opts.Instructions)
			if err != nil {
				return att, nil, nil, err
			}
			stable = ins.StableLoadPCs()
		}
		att.StablePCs = stable
		if m.IdealConstable {
			att.IdealElimPCs = stable
		}
		if m.IdealStableLVP {
			att.IdealLVPPCs = stable
			att.IdealDataFetchElim = m.IdealDataFetchElim
		}
	}
	return att, cons, eves, nil
}

// Speedup returns the relative performance of res over base at equal work
// (same instruction count): base cycles / res cycles.
func Speedup(base, res *Result) float64 {
	if res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

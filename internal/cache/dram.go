package cache

// DRAM is a bank/row-buffer timing approximation of the paper's DDR4 main
// memory (Table 2: 4 channels × 2 ranks × 8 banks, 2 KB row buffer,
// tCAS=tRCD=tRP=22 ns at a 3.2 GHz core ⇒ ≈70 core cycles per timing
// component). A row-buffer hit pays tCAS; a row-buffer conflict pays
// tRP+tRCD+tCAS.
type DRAM struct {
	banks    []uint64 // open row per bank
	openRow  []bool
	rowShift uint

	tCASCycles int
	tRCDCycles int
	tRPCycles  int

	Accesses uint64
	RowHits  uint64
}

// DRAMConfig parameterizes the DRAM model.
type DRAMConfig struct {
	Banks      int // total banks across channels and ranks
	RowBytes   int // row-buffer size per bank
	TCASCycles int // column access latency in core cycles
	TRCDCycles int // row activate latency
	TRPCycles  int // precharge latency
}

// DefaultDRAMConfig matches Table 2 scaled to core cycles.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Banks:      64, // 4 channels × 2 ranks × 8 banks
		RowBytes:   2048,
		TCASCycles: 70,
		TRCDCycles: 70,
		TRPCycles:  70,
	}
}

// NewDRAM builds the DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	shift := uint(0)
	for 1<<shift < cfg.RowBytes {
		shift++
	}
	return &DRAM{
		banks:      make([]uint64, cfg.Banks),
		openRow:    make([]bool, cfg.Banks),
		rowShift:   shift,
		tCASCycles: cfg.TCASCycles,
		tRCDCycles: cfg.TRCDCycles,
		tRPCycles:  cfg.TRPCycles,
	}
}

// Access returns the access latency in core cycles for the byte address.
func (d *DRAM) Access(addr uint64) int {
	d.Accesses++
	row := addr >> d.rowShift
	bank := int(row) % len(d.banks)
	if d.openRow[bank] && d.banks[bank] == row {
		d.RowHits++
		return d.tCASCycles
	}
	lat := d.tRCDCycles + d.tCASCycles
	if d.openRow[bank] {
		lat += d.tRPCycles // close the old row first
	}
	d.banks[bank] = row
	d.openRow[bank] = true
	return lat
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}

package cache

import "fmt"

// L1DPredConfig parameterizes the L1-D hit/miss predictor. A plain
// comparable value (the mechanism registry relies on ==).
type L1DPredConfig struct {
	// Entries sizes the PC-indexed counter table; rounded up to a power of
	// two. Ignored by the global variant.
	Entries int `json:"entries"`
	// Bits is the saturating-counter width (2 = classic bimodal hysteresis).
	Bits int `json:"bits"`
	// Global collapses the table to one shared counter — the registry's
	// "global" variant, a deliberate weak contrast to the PC-indexed one.
	Global bool `json:"global,omitempty"`
}

// DefaultL1DPredConfig returns a 4096-entry 2-bit PC-indexed predictor.
func DefaultL1DPredConfig() L1DPredConfig {
	return L1DPredConfig{Entries: 4096, Bits: 2}
}

// Validate reports whether the configuration describes a buildable
// predictor.
func (c L1DPredConfig) Validate() error {
	if c.Entries < 1 || c.Entries > 1<<20 {
		return fmt.Errorf("cache: l1dpred entries must be in [1,%d], got %d", 1<<20, c.Entries)
	}
	if c.Bits < 1 || c.Bits > 7 {
		return fmt.Errorf("cache: l1dpred bits must be in [1,7], got %d", c.Bits)
	}
	return nil
}

// L1DPredictor predicts, per static load, whether the access will hit in
// the L1-D — the hint a real scheduler uses to speculatively wake dependents
// at load-use latency. Here it runs as measurement hardware on the demand
// stream: the hierarchy consults it before each load and trains it with the
// observed outcome, and its accuracy counters flow into the run snapshot so
// sweeps can quantify predictability alongside Constable's coverage.
type L1DPredictor struct {
	table []int8
	mask  uint64
	max   int8
	min   int8

	// Counters (exported into the run snapshot via the hierarchy).
	Lookups      uint64
	PredictedHit uint64
	Mispredicts  uint64
	HitsObserved uint64
}

// NewL1DPredictor builds a predictor from cfg. Counters start weakly
// predicting hit, matching the prior that L1-D hit rates are high.
func NewL1DPredictor(cfg L1DPredConfig) *L1DPredictor {
	entries := cfg.Entries
	if cfg.Global {
		entries = 1
	}
	n := nextPow2(entries)
	return &L1DPredictor{
		table: make([]int8, n),
		mask:  uint64(n - 1),
		max:   int8(1<<(cfg.Bits-1)) - 1,
		min:   -int8(1 << (cfg.Bits - 1)),
	}
}

// Predict returns the current hit prediction for the load at pc without
// training.
func (p *L1DPredictor) Predict(pc uint64) bool {
	return p.table[(pc>>2)&p.mask] >= 0
}

// Observe predicts the access at pc, trains on the actual outcome, and
// accounts accuracy. The hierarchy calls it once per demand load.
func (p *L1DPredictor) Observe(pc uint64, hit bool) {
	p.Lookups++
	if hit {
		p.HitsObserved++
	}
	c := &p.table[(pc>>2)&p.mask]
	pred := *c >= 0
	if pred {
		p.PredictedHit++
	}
	if pred != hit {
		p.Mispredicts++
	}
	if hit {
		if *c < p.max {
			*c++
		}
	} else if *c > p.min {
		*c--
	}
}

// Accuracy returns the fraction of observed loads predicted correctly.
func (p *L1DPredictor) Accuracy() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return 1 - float64(p.Mispredicts)/float64(p.Lookups)
}

package cache

// StridePrefetcher is the PC-based stride prefetcher attached to the L1-D
// (Table 2). It learns a per-PC stride over load addresses and, once
// confident, prefetches degree lines ahead.
type StridePrefetcher struct {
	table  []strideEntry
	degree int
	Issued uint64
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int
	valid    bool
}

// NewStridePrefetcher builds a prefetcher with the given table size and
// prefetch degree.
func NewStridePrefetcher(entries, degree int) *StridePrefetcher {
	return &StridePrefetcher{table: make([]strideEntry, entries), degree: degree}
}

// Observe trains on a demand load and returns the line addresses to
// prefetch (possibly none).
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	e := &p.table[(pc>>2)%uint64(len(p.table))]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.conf < 2 {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	next := int64(addr)
	for i := 0; i < p.degree; i++ {
		next += e.stride
		if next <= 0 {
			break
		}
		out = append(out, LineAddr(uint64(next)))
		p.Issued++
	}
	return out
}

// Streamer is the next-line stream prefetcher attached to the L2 (Table 2):
// it detects ascending line streams within 4 KiB regions and prefetches the
// following lines.
type Streamer struct {
	regions []streamRegion
	degree  int
	Issued  uint64
}

type streamRegion struct {
	region   uint64
	lastLine uint64
	hits     int
	valid    bool
}

// NewStreamer builds a streamer with the given region-tracker count and
// prefetch degree.
func NewStreamer(trackers, degree int) *Streamer {
	return &Streamer{regions: make([]streamRegion, trackers), degree: degree}
}

// Observe trains on an L2 access and returns line addresses to prefetch.
func (s *Streamer) Observe(lineAddr uint64) []uint64 {
	region := lineAddr / (4096 / 64)
	e := &s.regions[region%uint64(len(s.regions))]
	if !e.valid || e.region != region {
		*e = streamRegion{region: region, lastLine: lineAddr, valid: true}
		return nil
	}
	if lineAddr == e.lastLine+1 {
		if e.hits < 4 {
			e.hits++
		}
	} else if lineAddr != e.lastLine {
		e.hits = 0
	}
	e.lastLine = lineAddr
	if e.hits < 2 {
		return nil
	}
	out := make([]uint64, 0, s.degree)
	for i := 1; i <= s.degree; i++ {
		out = append(out, lineAddr+uint64(i))
		s.Issued++
	}
	return out
}

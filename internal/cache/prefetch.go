package cache

import "fmt"

// PrefetchConfig parameterizes the PC-indexed L1-D prefetchers (stride and
// delta-pattern). It is a plain comparable value: the mechanism registry
// relies on == to normalize default-equal overrides.
type PrefetchConfig struct {
	// Entries is the PC-indexed table size; it is rounded up to the next
	// power of two so the hot-path index is a mask, never a modulo.
	Entries int `json:"entries"`
	// Degree is how many lines ahead a confident entry prefetches.
	Degree int `json:"degree"`
	// Threshold is the confidence a training entry must reach before it
	// issues prefetches; MaxConf is the saturation cap.
	Threshold int `json:"threshold"`
	MaxConf   int `json:"max_conf"`
	// Deltas is the per-PC delta-history depth of the delta-pattern
	// variant (ignored by the stride variant), at most MaxDeltaHist.
	Deltas int `json:"deltas"`
}

// MaxDeltaHist caps the delta-history ring so a table entry stays a fixed-
// size value.
const MaxDeltaHist = 8

// DefaultPrefetchConfig returns the Table 2 L1-D prefetcher parameters
// (256-entry PC table, degree 2, issue at confidence 2 of 3).
func DefaultPrefetchConfig() PrefetchConfig {
	return PrefetchConfig{Entries: 256, Degree: 2, Threshold: 2, MaxConf: 3, Deltas: 6}
}

// Validate reports whether the configuration describes a buildable
// prefetcher.
func (c PrefetchConfig) Validate() error {
	if c.Entries < 1 || c.Entries > 1<<20 {
		return fmt.Errorf("cache: prefetch entries must be in [1,%d], got %d", 1<<20, c.Entries)
	}
	if c.Degree < 1 || c.Degree > 16 {
		return fmt.Errorf("cache: prefetch degree must be in [1,16], got %d", c.Degree)
	}
	if c.MaxConf < 1 || c.MaxConf > 255 {
		return fmt.Errorf("cache: prefetch max_conf must be in [1,255], got %d", c.MaxConf)
	}
	if c.Threshold < 1 || c.Threshold > c.MaxConf {
		return fmt.Errorf("cache: prefetch threshold must be in [1,max_conf=%d], got %d", c.MaxConf, c.Threshold)
	}
	if c.Deltas < 2 || c.Deltas > MaxDeltaHist {
		return fmt.Errorf("cache: prefetch deltas must be in [2,%d], got %d", MaxDeltaHist, c.Deltas)
	}
	return nil
}

// L1Prefetcher is the pluggable L1-D prefetcher interface: Observe trains on
// a demand load and returns line addresses to prefetch-fill. The hierarchy
// owns one (stride by default); the mechanism registry swaps variants in.
type L1Prefetcher interface {
	Observe(pc, addr uint64) []uint64
	// IssuedCount returns the running count of issued prefetches, for the
	// run's counter snapshot.
	IssuedCount() uint64
}

// NonePrefetcher disables L1-D prefetching (the registry's "none" variant).
type NonePrefetcher struct{}

// Observe never prefetches.
func (NonePrefetcher) Observe(pc, addr uint64) []uint64 { return nil }

// IssuedCount is always zero.
func (NonePrefetcher) IssuedCount() uint64 { return 0 }

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// StridePrefetcher is the PC-based stride prefetcher attached to the L1-D
// (Table 2). It learns a per-PC stride over load addresses and, once
// confident, prefetches degree lines ahead.
type StridePrefetcher struct {
	table     []strideEntry
	mask      uint64
	degree    int
	threshold int
	maxConf   int
	Issued    uint64
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int
	valid    bool
}

// NewStridePrefetcher builds a prefetcher with the given table size and
// prefetch degree and the default confidence thresholds.
func NewStridePrefetcher(entries, degree int) *StridePrefetcher {
	cfg := DefaultPrefetchConfig()
	cfg.Entries = entries
	cfg.Degree = degree
	return NewStridePrefetcherWith(cfg)
}

// NewStridePrefetcherWith builds a stride prefetcher from cfg. The table
// size is rounded up to a power of two so indexing masks instead of taking
// an arbitrary modulo.
func NewStridePrefetcherWith(cfg PrefetchConfig) *StridePrefetcher {
	n := nextPow2(cfg.Entries)
	return &StridePrefetcher{
		table:     make([]strideEntry, n),
		mask:      uint64(n - 1),
		degree:    cfg.Degree,
		threshold: cfg.Threshold,
		maxConf:   cfg.MaxConf,
	}
}

// IssuedCount returns how many prefetches have been issued.
func (p *StridePrefetcher) IssuedCount() uint64 { return p.Issued }

// Observe trains on a demand load and returns the line addresses to
// prefetch (possibly none).
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	e := &p.table[(pc>>2)&p.mask]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < p.maxConf {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.conf < p.threshold {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	next := int64(addr)
	for i := 0; i < p.degree; i++ {
		next += e.stride
		if next <= 0 {
			break
		}
		out = append(out, LineAddr(uint64(next)))
		p.Issued++
	}
	return out
}

// Streamer is the next-line stream prefetcher attached to the L2 (Table 2):
// it detects ascending line streams within 4 KiB regions and prefetches the
// following lines.
type Streamer struct {
	regions []streamRegion
	mask    uint64
	degree  int
	Issued  uint64
}

type streamRegion struct {
	region   uint64
	lastLine uint64
	hits     int
	valid    bool
}

// NewStreamer builds a streamer with the given region-tracker count (rounded
// up to a power of two) and prefetch degree.
func NewStreamer(trackers, degree int) *Streamer {
	n := nextPow2(trackers)
	return &Streamer{regions: make([]streamRegion, n), mask: uint64(n - 1), degree: degree}
}

// Observe trains on an L2 access and returns line addresses to prefetch.
func (s *Streamer) Observe(lineAddr uint64) []uint64 {
	region := lineAddr / (4096 / 64)
	e := &s.regions[region&s.mask]
	if !e.valid || e.region != region {
		*e = streamRegion{region: region, lastLine: lineAddr, valid: true}
		return nil
	}
	if lineAddr == e.lastLine+1 {
		if e.hits < 4 {
			e.hits++
		}
	} else if lineAddr != e.lastLine {
		e.hits = 0
	}
	e.lastLine = lineAddr
	if e.hits < 2 {
		return nil
	}
	out := make([]uint64, 0, s.degree)
	for i := 1; i <= s.degree; i++ {
		out = append(out, lineAddr+uint64(i))
		s.Issued++
	}
	return out
}

package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return NewCache(Config{Name: "t", Sets: 4, Ways: 2, Latency: 1})
}

func TestHitAfterFill(t *testing.T) {
	c := small()
	if c.Access(100, false) {
		t.Error("cold access must miss")
	}
	if !c.Access(100, false) {
		t.Error("second access must hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Lines 0, 4, 8 map to set 0 (4 sets). Ways=2, so inserting the third
	// evicts the least recently used (line 0).
	c.Access(0, false)
	c.Access(4, false)
	c.Access(8, false)
	if c.Lookup(0) {
		t.Error("LRU line must be evicted")
	}
	if !c.Lookup(4) || !c.Lookup(8) {
		t.Error("younger lines must survive")
	}
}

func TestLRUUpdatedOnHit(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false) // touch 0; 4 becomes LRU
	c.Access(8, false)
	if c.Lookup(4) {
		t.Error("line 4 should be the victim")
	}
	if !c.Lookup(0) {
		t.Error("recently-touched line 0 must survive")
	}
}

func TestOnEvictHook(t *testing.T) {
	c := small()
	var evicted []uint64
	c.OnEvict = func(la uint64) { evicted = append(evicted, la) }
	c.Access(0, false)
	c.Access(4, false)
	c.Access(8, false)
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Errorf("evictions = %v, want [0]", evicted)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(5, false)
	if !c.Invalidate(5) {
		t.Error("invalidate must report presence")
	}
	if c.Lookup(5) {
		t.Error("line must be gone after invalidate")
	}
	if c.Invalidate(5) {
		t.Error("second invalidate must report absence")
	}
}

func TestFillDoesNotCountDemand(t *testing.T) {
	c := small()
	c.Fill(9)
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("Fill must not change demand counters")
	}
	if !c.Access(9, false) {
		t.Error("prefetched line must hit")
	}
}

func TestDeadBlockAwareVictimSelection(t *testing.T) {
	c := NewCache(Config{Name: "dba", Sets: 1, Ways: 3, Latency: 1, DeadBlockAware: true})
	c.Access(1, false)
	c.Access(1, false) // line 1 is reused
	c.Access(2, false)
	c.Access(2, false) // line 2 is reused
	c.Access(3, false) // line 3 never reused (dead)
	c.Access(4, false) // needs a victim: must pick the dead line 3
	if c.Lookup(3) {
		t.Error("dead-block-aware policy must evict the never-reused line")
	}
	if !c.Lookup(1) || !c.Lookup(2) {
		t.Error("reused lines must survive")
	}
}

func TestCacheCapacityInvariant(t *testing.T) {
	// Property: after any access sequence, the number of resident lines the
	// cache reports via Lookup never exceeds Sets×Ways.
	f := func(addrs []uint16) bool {
		c := NewCache(Config{Name: "q", Sets: 8, Ways: 2, Latency: 1})
		seen := make(map[uint64]bool)
		for _, a := range addrs {
			c.Access(uint64(a), false)
			seen[uint64(a)] = true
		}
		resident := 0
		for a := range seen {
			if c.Lookup(a) {
				resident++
			}
		}
		return resident <= 8*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "bad", Sets: 3, Ways: 2},
		{Name: "bad", Sets: 0, Ways: 2},
		{Name: "bad", Sets: 4, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestMissRateAndSize(t *testing.T) {
	c := small()
	if c.MissRate() != 0 {
		t.Error("empty cache must report 0 miss rate")
	}
	c.Access(1, false)
	c.Access(1, false)
	if mr := c.MissRate(); mr != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", mr)
	}
	if s := (Config{Sets: 64, Ways: 12}).SizeBytes(); s != 64*12*64 {
		t.Errorf("size = %d", s)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 1 || LineAddr(130) != 2 {
		t.Error("LineAddr wrong")
	}
}

package cache

import "constable/internal/isa"

// HierarchyConfig parameterizes a core's view of the memory hierarchy.
// Defaults follow Table 2 of the paper (Golden Cove-like).
type HierarchyConfig struct {
	L1D  Config
	L2   Config
	LLC  Config
	DRAM DRAMConfig

	StrideEntries  int
	StrideDegree   int
	StreamTrackers int
	StreamDegree   int
}

// DefaultHierarchyConfig returns the Table 2 configuration: 48 KB 12-way
// 5-cycle L1-D, 2 MB 16-way 12-cycle L2, 3 MB 12-way 50-cycle LLC slice with
// dead-block-aware replacement, DDR4-like DRAM.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:  Config{Name: "L1D", Sets: 64, Ways: 12, Latency: 5},
		L2:   Config{Name: "L2", Sets: 2048, Ways: 16, Latency: 12},
		LLC:  Config{Name: "LLC", Sets: 4096, Ways: 12, Latency: 50, DeadBlockAware: true},
		DRAM: DefaultDRAMConfig(),

		StrideEntries:  256,
		StrideDegree:   2,
		StreamTrackers: 64,
		StreamDegree:   2,
	}
}

// Hierarchy is one core's memory hierarchy: private L1-D and L2, an LLC
// slice (shareable between cores via SharedLLC), prefetchers and DRAM.
type Hierarchy struct {
	L1D  *Cache
	L2   *Cache
	LLC  *Cache
	DRAM *DRAM

	strideL1 *StridePrefetcher
	streamL2 *Streamer

	// Directory, when non-nil, is consulted on fills and evictions for
	// multi-core coherence; CoreID identifies this core to it.
	Directory *Directory
	CoreID    int

	// Counters.
	L1DLoadAccesses  uint64
	L1DStoreAccesses uint64
	DTLBAccesses     uint64
	L2Accesses       uint64
	LLCAccesses      uint64
	PrefetchFills    uint64
}

// NewHierarchy builds a hierarchy from cfg. Each call creates private
// caches; use SetSharedLLC to share an LLC between cores.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1D:      NewCache(cfg.L1D),
		L2:       NewCache(cfg.L2),
		LLC:      NewCache(cfg.LLC),
		DRAM:     NewDRAM(cfg.DRAM),
		strideL1: NewStridePrefetcher(cfg.StrideEntries, cfg.StrideDegree),
		streamL2: NewStreamer(cfg.StreamTrackers, cfg.StreamDegree),
	}
}

// SetSharedLLC replaces this hierarchy's LLC and DRAM with shared instances
// (multi-core configuration).
func (h *Hierarchy) SetSharedLLC(llc *Cache, dram *DRAM) {
	h.LLC = llc
	h.DRAM = dram
}

// Load performs a demand load of addr for the static load at pc and returns
// the access latency in core cycles.
func (h *Hierarchy) Load(pc, addr uint64) int {
	h.L1DLoadAccesses++
	h.DTLBAccesses++
	la := LineAddr(addr)
	lat := h.access(la, false)

	// Train the L1 stride prefetcher and fill prefetches into L1.
	for _, pl := range h.strideL1.Observe(pc, addr) {
		if !h.L1D.Lookup(pl) {
			h.L1D.Fill(pl)
			h.PrefetchFills++
		}
	}
	return lat
}

// LoadPrefetch performs a register-file-prefetch access (RFP): it walks the
// hierarchy and fills like a load but does not train the stride prefetcher —
// the predicted address stream would otherwise double-train and poison it.
func (h *Hierarchy) LoadPrefetch(addr uint64) int {
	h.L1DLoadAccesses++
	h.DTLBAccesses++
	return h.access(LineAddr(addr), false)
}

// TrainStride feeds a demand access into the L1 stride prefetcher without
// performing a cache access; used when the data itself was already fetched
// by a register-file prefetch but the prefetcher must keep seeing the true
// demand stream.
func (h *Hierarchy) TrainStride(pc, addr uint64) {
	for _, pl := range h.strideL1.Observe(pc, addr) {
		if !h.L1D.Lookup(pl) {
			h.L1D.Fill(pl)
			h.PrefetchFills++
		}
	}
}

// Store performs a demand store of addr and returns its latency (stores
// commit from the store buffer; latency matters only for occupancy).
func (h *Hierarchy) Store(addr uint64) int {
	h.L1DStoreAccesses++
	h.DTLBAccesses++
	return h.access(LineAddr(addr), true)
}

// access walks the hierarchy for lineAddr and returns the total latency.
func (h *Hierarchy) access(lineAddr uint64, write bool) int {
	lat := h.L1D.Config().Latency
	if h.L1D.Access(lineAddr, write) {
		if write && h.Directory != nil {
			h.Directory.OnStore(h.CoreID, lineAddr)
		}
		return lat
	}
	lat += h.L2.Config().Latency
	h.L2Accesses++
	l2hit := h.L2.Access(lineAddr, write)
	for _, pl := range h.streamL2.Observe(lineAddr) {
		if !h.L2.Lookup(pl) {
			h.L2.Fill(pl)
			h.PrefetchFills++
		}
	}
	if !l2hit {
		lat += h.LLC.Config().Latency
		h.LLCAccesses++
		if !h.LLC.Access(lineAddr, write) {
			lat += h.DRAM.Access(lineAddr * isa.CachelineBytes)
		}
	}
	if h.Directory != nil {
		h.Directory.OnFill(h.CoreID, lineAddr)
		if write {
			h.Directory.OnStore(h.CoreID, lineAddr)
		}
	}
	return lat
}

// InvalidateLine drops the line from the private levels (snoop handling).
func (h *Hierarchy) InvalidateLine(lineAddr uint64) {
	h.L1D.Invalidate(lineAddr)
	h.L2.Invalidate(lineAddr)
}

package cache

import (
	"constable/internal/isa"
	"constable/internal/stats"
)

// HierarchyConfig parameterizes a core's view of the memory hierarchy.
// Defaults follow Table 2 of the paper (Golden Cove-like).
type HierarchyConfig struct {
	L1D  Config
	L2   Config
	LLC  Config
	DRAM DRAMConfig

	StrideEntries  int
	StrideDegree   int
	StreamTrackers int
	StreamDegree   int
}

// DefaultHierarchyConfig returns the Table 2 configuration: 48 KB 12-way
// 5-cycle L1-D, 2 MB 16-way 12-cycle L2, 3 MB 12-way 50-cycle LLC slice with
// dead-block-aware replacement, DDR4-like DRAM.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:  Config{Name: "L1D", Sets: 64, Ways: 12, Latency: 5},
		L2:   Config{Name: "L2", Sets: 2048, Ways: 16, Latency: 12},
		LLC:  Config{Name: "LLC", Sets: 4096, Ways: 12, Latency: 50, DeadBlockAware: true},
		DRAM: DefaultDRAMConfig(),

		StrideEntries:  256,
		StrideDegree:   2,
		StreamTrackers: 64,
		StreamDegree:   2,
	}
}

// Hierarchy is one core's memory hierarchy: private L1-D and L2, an LLC
// slice (shareable between cores via SharedLLC), prefetchers and DRAM.
type Hierarchy struct {
	L1D  *Cache
	L2   *Cache
	LLC  *Cache
	DRAM *DRAM

	// l1pf is the pluggable L1-D prefetcher (stride by default; the
	// mechanism registry swaps in delta-pattern or none). streamL2 is the
	// fixed L2 next-line streamer.
	l1pf     L1Prefetcher
	streamL2 *Streamer

	// l1dPred, when attached, observes every demand load's hit/miss
	// outcome (measurement hardware; see L1DPredictor).
	l1dPred *L1DPredictor

	// Directory, when non-nil, is consulted on fills and evictions for
	// multi-core coherence; CoreID identifies this core to it.
	Directory *Directory
	CoreID    int

	// Counters.
	L1DLoadAccesses  uint64
	L1DStoreAccesses uint64
	DTLBAccesses     uint64
	L2Accesses       uint64
	LLCAccesses      uint64
	PrefetchFills    uint64
}

// NewHierarchy builds a hierarchy from cfg. Each call creates private
// caches; use SetSharedLLC to share an LLC between cores.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1D:      NewCache(cfg.L1D),
		L2:       NewCache(cfg.L2),
		LLC:      NewCache(cfg.LLC),
		DRAM:     NewDRAM(cfg.DRAM),
		l1pf:     NewStridePrefetcher(cfg.StrideEntries, cfg.StrideDegree),
		streamL2: NewStreamer(cfg.StreamTrackers, cfg.StreamDegree),
	}
}

// SetL1Prefetcher replaces the L1-D prefetcher (nil disables prefetching
// outright; prefer NonePrefetcher so IssuedCount stays reportable).
func (h *Hierarchy) SetL1Prefetcher(p L1Prefetcher) { h.l1pf = p }

// L1Prefetcher returns the attached L1-D prefetcher.
func (h *Hierarchy) L1Prefetcher() L1Prefetcher { return h.l1pf }

// SetL1DPredictor attaches an L1-D hit/miss predictor to the demand-load
// stream (nil detaches).
func (h *Hierarchy) SetL1DPredictor(p *L1DPredictor) { h.l1dPred = p }

// L1DPredictor returns the attached hit/miss predictor (nil when absent).
func (h *Hierarchy) L1DPredictor() *L1DPredictor { return h.l1dPred }

// SetSharedLLC replaces this hierarchy's LLC and DRAM with shared instances
// (multi-core configuration).
func (h *Hierarchy) SetSharedLLC(llc *Cache, dram *DRAM) {
	h.LLC = llc
	h.DRAM = dram
}

// Load performs a demand load of addr for the static load at pc and returns
// the access latency in core cycles.
func (h *Hierarchy) Load(pc, addr uint64) int {
	h.L1DLoadAccesses++
	h.DTLBAccesses++
	la := LineAddr(addr)
	lat, l1hit := h.access(la, false)
	if h.l1dPred != nil {
		h.l1dPred.Observe(pc, l1hit)
	}

	// Train the L1 prefetcher and fill prefetches into L1.
	h.trainL1Prefetcher(pc, addr)
	return lat
}

// LoadPrefetch performs a register-file-prefetch access (RFP): it walks the
// hierarchy and fills like a load but does not train the L1 prefetcher —
// the predicted address stream would otherwise double-train and poison it.
func (h *Hierarchy) LoadPrefetch(addr uint64) int {
	h.L1DLoadAccesses++
	h.DTLBAccesses++
	lat, _ := h.access(LineAddr(addr), false)
	return lat
}

// TrainStride feeds a demand access into the attached L1 prefetcher without
// performing a cache access; used when the data itself was already fetched
// by a register-file prefetch but the prefetcher must keep seeing the true
// demand stream.
func (h *Hierarchy) TrainStride(pc, addr uint64) {
	h.trainL1Prefetcher(pc, addr)
}

func (h *Hierarchy) trainL1Prefetcher(pc, addr uint64) {
	if h.l1pf == nil {
		return
	}
	for _, pl := range h.l1pf.Observe(pc, addr) {
		if !h.L1D.Lookup(pl) {
			h.L1D.Fill(pl)
			h.PrefetchFills++
		}
	}
}

// Store performs a demand store of addr and returns its latency (stores
// commit from the store buffer; latency matters only for occupancy).
func (h *Hierarchy) Store(addr uint64) int {
	h.L1DStoreAccesses++
	h.DTLBAccesses++
	lat, _ := h.access(LineAddr(addr), true)
	return lat
}

// access walks the hierarchy for lineAddr and returns the total latency and
// whether the L1-D hit.
func (h *Hierarchy) access(lineAddr uint64, write bool) (int, bool) {
	lat := h.L1D.Config().Latency
	if h.L1D.Access(lineAddr, write) {
		if write && h.Directory != nil {
			h.Directory.OnStore(h.CoreID, lineAddr)
		}
		return lat, true
	}
	lat += h.L2.Config().Latency
	h.L2Accesses++
	l2hit := h.L2.Access(lineAddr, write)
	for _, pl := range h.streamL2.Observe(lineAddr) {
		if !h.L2.Lookup(pl) {
			h.L2.Fill(pl)
			h.PrefetchFills++
		}
	}
	if !l2hit {
		lat += h.LLC.Config().Latency
		h.LLCAccesses++
		if !h.LLC.Access(lineAddr, write) {
			lat += h.DRAM.Access(lineAddr * isa.CachelineBytes)
		}
	}
	if h.Directory != nil {
		h.Directory.OnFill(h.CoreID, lineAddr)
		if write {
			h.Directory.OnStore(h.CoreID, lineAddr)
		}
	}
	return lat, false
}

// InvalidateLine drops the line from the private levels (snoop handling).
func (h *Hierarchy) InvalidateLine(lineAddr uint64) {
	h.L1D.Invalidate(lineAddr)
	h.L2.Invalidate(lineAddr)
}

// Interned counter IDs for the hierarchy's prefetch and L1-D-predictor
// statistics.
var (
	cPrefetchL1Issued = stats.Intern("prefetch.l1_issued")
	cPrefetchL2Issued = stats.Intern("prefetch.l2_stream_issued")
	cPrefetchFills    = stats.Intern("prefetch.fills")
	cL1DPredLookups   = stats.Intern("l1dpred.lookups")
	cL1DPredHit       = stats.Intern("l1dpred.predicted_hit")
	cL1DPredMisp      = stats.Intern("l1dpred.mispredicts")
	cL1DPredHitsObs   = stats.Intern("l1dpred.hits_observed")
)

// EmitCounters adds the hierarchy's prefetcher and L1-D-predictor statistics
// into cs through the interned counter registry, so they reach the run's
// counter snapshot alongside the access counters sim.Run records.
func (h *Hierarchy) EmitCounters(cs *stats.CounterSet) {
	if h.l1pf != nil {
		cs.Add(cPrefetchL1Issued, h.l1pf.IssuedCount())
	}
	cs.Add(cPrefetchL2Issued, h.streamL2.Issued)
	cs.Add(cPrefetchFills, h.PrefetchFills)
	if p := h.l1dPred; p != nil {
		cs.Add(cL1DPredLookups, p.Lookups)
		cs.Add(cL1DPredHit, p.PredictedHit)
		cs.Add(cL1DPredMisp, p.Mispredicts)
		cs.Add(cL1DPredHitsObs, p.HitsObserved)
	}
}

package cache

import "testing"

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	addr := uint64(0x2000_0000)
	cold := h.Load(0x400000, addr)
	warm := h.Load(0x400000, addr)
	if warm != 5 {
		t.Errorf("L1 hit latency = %d, want 5", warm)
	}
	if cold <= warm {
		t.Errorf("cold latency %d must exceed L1 hit %d", cold, warm)
	}
	// Cold path must include L1+L2+LLC+DRAM components.
	if cold < 5+12+50+70 {
		t.Errorf("cold latency %d smaller than the hierarchy sum", cold)
	}
}

func TestL2HitLatency(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	addr := uint64(0x2000_0000)
	h.Load(0x400000, addr)
	// Evict from the tiny L1 by filling its set with conflicting lines.
	// L1 has 64 sets, so addresses 64 lines apart collide.
	for i := 1; i <= 13; i++ {
		h.Load(0x400000, addr+uint64(i)*64*64)
	}
	lat := h.Load(0x400000, addr)
	if lat != 5+12 {
		t.Errorf("L2 hit latency = %d, want 17", lat)
	}
}

func TestStridePrefetcherCoversStream(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	pc := uint64(0x400100)
	misses := 0
	for i := 0; i < 256; i++ {
		addr := 0x3000_0000 + uint64(i)*64 // one load per line, stride 64
		before := h.L1D.Misses
		h.Load(pc, addr)
		if h.L1D.Misses != before {
			continue
		}
		_ = misses
	}
	if h.PrefetchFills == 0 {
		t.Error("stride stream must trigger prefetch fills")
	}
	// Steady-state: the miss count must be well below one per line.
	if h.L1D.Misses > 200 {
		t.Errorf("L1 misses = %d on a perfectly-strided stream of 256 lines", h.L1D.Misses)
	}
}

func TestStoreCountsSeparately(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Load(0x400000, 0x2000_0000)
	h.Store(0x2000_0000)
	if h.L1DLoadAccesses != 1 || h.L1DStoreAccesses != 1 || h.DTLBAccesses != 2 {
		t.Errorf("counters: loads=%d stores=%d dtlb=%d",
			h.L1DLoadAccesses, h.L1DStoreAccesses, h.DTLBAccesses)
	}
}

func TestInvalidateLine(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	addr := uint64(0x2000_0040)
	h.Load(0x400000, addr)
	h.InvalidateLine(LineAddr(addr))
	if h.L1D.Lookup(LineAddr(addr)) || h.L2.Lookup(LineAddr(addr)) {
		t.Error("snooped line must leave private caches")
	}
}

func TestDRAMRowBuffer(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	first := d.Access(0x1000)
	second := d.Access(0x1008) // same row
	if second >= first {
		t.Errorf("row hit %d must be faster than activate %d", second, first)
	}
	if d.RowHitRate() != 0.5 {
		t.Errorf("row hit rate = %v", d.RowHitRate())
	}
	// A conflicting row in the same bank pays precharge.
	cfg := DefaultDRAMConfig()
	conflict := d.Access(0x1000 + uint64(cfg.Banks*cfg.RowBytes))
	if conflict <= second {
		t.Errorf("row conflict %d must be slower than row hit %d", conflict, second)
	}
}

func TestStreamerDetectsSequentialLines(t *testing.T) {
	s := NewStreamer(16, 2)
	var prefetches int
	for i := uint64(0); i < 20; i++ {
		prefetches += len(s.Observe(1000 + i))
	}
	if prefetches == 0 {
		t.Error("sequential line stream must trigger the streamer")
	}
	s2 := NewStreamer(16, 2)
	rng := []uint64{5, 900, 12, 4400, 7, 31000}
	total := 0
	for _, la := range rng {
		total += len(s2.Observe(la))
	}
	if total != 0 {
		t.Error("random lines must not trigger the streamer")
	}
}

func TestStridePrefetcherNeedsConfidence(t *testing.T) {
	p := NewStridePrefetcher(16, 2)
	pc := uint64(0x400000)
	if got := p.Observe(pc, 1000); got != nil {
		t.Error("first observation must not prefetch")
	}
	if got := p.Observe(pc, 1064); got != nil {
		t.Error("one stride sample must not prefetch")
	}
	p.Observe(pc, 1128)
	if got := p.Observe(pc, 1192); len(got) == 0 {
		t.Error("confirmed stride must prefetch")
	}
	// A stride change resets confidence.
	if got := p.Observe(pc, 5000); got != nil {
		t.Error("stride break must not prefetch")
	}
}

func TestDirectorySnoopsAndPins(t *testing.T) {
	d := NewDirectory(2)
	var snooped []uint64
	d.RegisterSnoopHandler(0, func(la uint64) { snooped = append(snooped, la) })
	d.RegisterSnoopHandler(1, func(la uint64) { t.Error("core 1 must not be snooped") })

	d.OnFill(0, 77)
	if !d.HasCV(0, 77) {
		t.Error("fill must set CV")
	}
	// A write by core 1 snoops core 0.
	d.OnStore(1, 77)
	if len(snooped) != 1 || snooped[0] != 77 {
		t.Errorf("snoops = %v", snooped)
	}
	if d.HasCV(0, 77) {
		t.Error("snoop must clear CV")
	}

	// Pinning survives clean eviction.
	d.OnFill(0, 88)
	d.Pin(0, 88)
	d.OnEvict(0, 88)
	if !d.HasCV(0, 88) {
		t.Error("pinned CV bit must survive clean eviction")
	}
	// Without a pin, eviction clears CV and no snoop is sent.
	d.OnFill(0, 99)
	d.OnEvict(0, 99)
	if d.HasCV(0, 99) {
		t.Error("unpinned CV bit must clear on eviction")
	}
	snooped = nil
	d.OnStore(1, 99)
	if len(snooped) != 0 {
		t.Error("no snoop expected for a line with cleared CV")
	}

	// A snoop releases the pin.
	snooped = nil
	d.OnStore(1, 88)
	if len(snooped) != 1 {
		t.Error("pinned line must be snooped")
	}
	if d.IsPinned(0, 88) || d.HasCV(0, 88) {
		t.Error("snoop must release the pin and clear CV")
	}
}

func TestDirectoryOwnStoreDoesNotSelfSnoop(t *testing.T) {
	d := NewDirectory(2)
	d.RegisterSnoopHandler(0, func(uint64) { t.Error("self-snoop") })
	d.OnFill(0, 5)
	d.OnStore(0, 5)
	if d.SnoopsSent != 0 {
		t.Error("writing core must not snoop itself")
	}
}

// Package cache implements the memory-hierarchy substrate: set-associative
// caches with pluggable replacement, a stride prefetcher (L1-D) and a
// streamer (L2), a DRAM bank/row-buffer timing model, and a directory-based
// coherence layer with the core-valid-bit (CV-bit) pinning hook Constable
// relies on in multi-core systems (§6.6 of the paper). The configuration
// defaults follow Table 2.
package cache

import (
	"fmt"

	"constable/internal/isa"
)

// Config describes one cache level.
type Config struct {
	Name    string
	Sets    int
	Ways    int
	Latency int // hit latency contribution in core cycles
	// DeadBlockAware approximates the paper's dead-block-aware LLC
	// replacement: lines that were never re-referenced are preferred victims.
	DeadBlockAware bool
}

// SizeBytes returns the capacity of the configured cache.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * isa.CachelineBytes }

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
	reused  bool
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64

	Hits   uint64
	Misses uint64
	// OnEvict, when non-nil, is called with the line address of every
	// evicted line (clean or dirty). Constable-AMT-I (Fig. 22) hooks the
	// L1-D eviction stream here.
	OnEvict func(lineAddr uint64)
}

// NewCache builds a cache from cfg. Sets must be a power of two.
func NewCache(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets %d must be a positive power of two", cfg.Name, cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways %d must be positive", cfg.Name, cfg.Ways))
	}
	sets := make([][]line, cfg.Sets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr converts a byte address to a cacheline address.
func LineAddr(addr uint64) uint64 { return addr / isa.CachelineBytes }

func (c *Cache) setOf(lineAddr uint64) int { return int(lineAddr) & (c.cfg.Sets - 1) }

// Lookup probes the cache without changing replacement state.
func (c *Cache) Lookup(lineAddr uint64) bool {
	for i := range c.sets[c.setOf(lineAddr)] {
		l := &c.sets[c.setOf(lineAddr)][i]
		if l.valid && l.tag == lineAddr {
			return true
		}
	}
	return false
}

// Access looks up lineAddr, fills on miss, and returns whether it hit.
// write marks the line dirty on a store.
func (c *Cache) Access(lineAddr uint64, write bool) bool {
	c.clock++
	set := c.sets[c.setOf(lineAddr)]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == lineAddr {
			c.Hits++
			l.lastUse = c.clock
			l.reused = true
			l.dirty = l.dirty || write
			return true
		}
	}
	c.Misses++
	c.fill(lineAddr, write)
	return false
}

// Fill inserts lineAddr without counting a demand access (prefetch path).
func (c *Cache) Fill(lineAddr uint64) {
	if c.Lookup(lineAddr) {
		return
	}
	c.clock++
	c.fill(lineAddr, false)
}

func (c *Cache) fill(lineAddr uint64, write bool) {
	set := c.sets[c.setOf(lineAddr)]
	victim := 0
	// Prefer invalid ways, then (for dead-block-aware) never-reused lines,
	// then LRU.
	best := ^uint64(0)
	foundDead := false
	for i := range set {
		l := &set[i]
		if !l.valid {
			victim = i
			best = 0
			foundDead = true
			break
		}
		if c.cfg.DeadBlockAware && !l.reused {
			if !foundDead || l.lastUse < best {
				victim, best, foundDead = i, l.lastUse, true
			}
			continue
		}
		if !foundDead && l.lastUse < best {
			victim, best = i, l.lastUse
		}
	}
	v := &set[victim]
	if v.valid {
		if c.OnEvict != nil {
			c.OnEvict(v.tag)
		}
	}
	*v = line{tag: lineAddr, valid: true, dirty: write, lastUse: c.clock}
}

// Invalidate drops lineAddr if present (snoop handling). Reports whether the
// line was present.
func (c *Cache) Invalidate(lineAddr uint64) bool {
	set := c.sets[c.setOf(lineAddr)]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == lineAddr {
			l.valid = false
			return true
		}
	}
	return false
}

// MissRate returns misses / (hits+misses).
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

package cache

import (
	"testing"

	"constable/internal/stats"
)

// TestStrideTableMasksNonPowerOfTwo pins the indexing bugfix: an arbitrary
// (non-power-of-2) table size must round up and mask, never modulo — the
// prefetcher keeps learning per-PC streams regardless of the requested size.
func TestStrideTableMasksNonPowerOfTwo(t *testing.T) {
	p := NewStridePrefetcher(100, 2) // rounds up to 128
	if len(p.table) != 128 || p.mask != 127 {
		t.Fatalf("table = %d entries, mask = %d; want 128/127", len(p.table), p.mask)
	}
	pc := uint64(0x400000)
	var issued int
	for i := 0; i < 10; i++ {
		issued += len(p.Observe(pc, uint64(0x10000+i*64)))
	}
	if issued == 0 || p.IssuedCount() == 0 {
		t.Errorf("strided stream issued %d prefetches (counter %d)", issued, p.IssuedCount())
	}
}

func TestStridePrefetcherConfigThresholds(t *testing.T) {
	cfg := DefaultPrefetchConfig()
	cfg.Threshold = 3
	cfg.MaxConf = 3
	p := NewStridePrefetcherWith(cfg)
	pc := uint64(0x400100)
	// With threshold 3, the 3rd matching stride (4th access) is the first
	// that may issue; the default threshold-2 prefetcher issues one earlier.
	var firstIssue int
	for i := 0; i < 8; i++ {
		if len(p.Observe(pc, uint64(0x20000+i*64))) > 0 {
			firstIssue = i
			break
		}
	}
	if firstIssue != 4 {
		t.Errorf("threshold-3 first issue at access %d, want 4", firstIssue)
	}
}

func TestDeltaPrefetcherLearnsRepeatingPattern(t *testing.T) {
	p := NewDeltaPrefetcher(DefaultPrefetchConfig())
	pc := uint64(0x400200)
	// Repeating delta pattern +64,+64,+192 (a strided walk over padded
	// records) that a single-stride predictor cannot hold a stable stride
	// for.
	addr := uint64(0x30000)
	deltas := []int64{64, 64, 192}
	var issued uint64
	for i := 0; i < 30; i++ {
		issued += uint64(len(p.Observe(pc, addr)))
		addr += uint64(deltas[i%len(deltas)])
	}
	if issued == 0 {
		t.Fatal("delta prefetcher never issued on a repeating pattern")
	}
	if p.IssuedCount() != issued {
		t.Errorf("IssuedCount = %d, issued = %d", p.IssuedCount(), issued)
	}
	// The stride prefetcher keeps resetting confidence on this pattern.
	s := NewStridePrefetcher(256, 2)
	addr = 0x30000
	var strideIssued int
	for i := 0; i < 30; i++ {
		strideIssued += len(s.Observe(pc, addr))
		addr += uint64(deltas[i%len(deltas)])
	}
	if strideIssued >= int(issued) {
		t.Errorf("stride issued %d >= delta %d on a multi-delta pattern", strideIssued, issued)
	}
}

func TestDeltaPrefetcherPredictsPatternAddresses(t *testing.T) {
	cfg := DefaultPrefetchConfig()
	cfg.Degree = 2
	p := NewDeltaPrefetcher(cfg)
	pc := uint64(0x400300)
	addr := uint64(0x40000)
	var last []uint64
	var lastAddr uint64
	for i := 0; i < 24; i++ {
		if out := p.Observe(pc, addr); len(out) > 0 {
			last, lastAddr = out, addr
		}
		addr += 64
	}
	if last == nil {
		t.Fatal("pure stride never confident")
	}
	want := []uint64{LineAddr(lastAddr + 64), LineAddr(lastAddr + 128)}
	if len(last) != 2 || last[0] != want[0] || last[1] != want[1] {
		t.Errorf("prefetched %v, want %v", last, want)
	}
}

func TestDeltaPrefetcherIgnoresZeroDelta(t *testing.T) {
	p := NewDeltaPrefetcher(DefaultPrefetchConfig())
	pc := uint64(0x400400)
	for i := 0; i < 50; i++ {
		if out := p.Observe(pc, 0x50000); len(out) != 0 {
			t.Fatalf("same-address stream must never prefetch, got %v", out)
		}
	}
}

func TestNonePrefetcher(t *testing.T) {
	var p L1Prefetcher = NonePrefetcher{}
	for i := 0; i < 10; i++ {
		if out := p.Observe(0x400500, uint64(0x60000+i*64)); out != nil {
			t.Fatalf("NonePrefetcher issued %v", out)
		}
	}
	if p.IssuedCount() != 0 {
		t.Error("NonePrefetcher must count zero")
	}
}

func TestPrefetchConfigValidate(t *testing.T) {
	if err := DefaultPrefetchConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for _, mut := range []func(*PrefetchConfig){
		func(c *PrefetchConfig) { c.Entries = 0 },
		func(c *PrefetchConfig) { c.Degree = 0 },
		func(c *PrefetchConfig) { c.Degree = 17 },
		func(c *PrefetchConfig) { c.Threshold = 0 },
		func(c *PrefetchConfig) { c.Threshold = c.MaxConf + 1 },
		func(c *PrefetchConfig) { c.Deltas = 1 },
		func(c *PrefetchConfig) { c.Deltas = MaxDeltaHist + 1 },
	} {
		cfg := DefaultPrefetchConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
	}
}

func TestL1DPredictorLearnsPerPC(t *testing.T) {
	p := NewL1DPredictor(DefaultL1DPredConfig())
	hitPC, missPC := uint64(0x400600), uint64(0x400700)
	for i := 0; i < 100; i++ {
		p.Observe(hitPC, true)
		p.Observe(missPC, false)
	}
	if !p.Predict(hitPC) {
		t.Error("always-hit PC must predict hit")
	}
	if p.Predict(missPC) {
		t.Error("always-miss PC must predict miss")
	}
	if p.Lookups != 200 || p.HitsObserved != 100 {
		t.Errorf("lookups = %d, hits = %d", p.Lookups, p.HitsObserved)
	}
	// Initial bias predicts hit, so the miss PC pays a few training
	// mispredicts and nothing else.
	if p.Accuracy() < 0.95 {
		t.Errorf("accuracy = %.3f on a fully-biased stream", p.Accuracy())
	}
}

func TestL1DPredictorGlobalVariant(t *testing.T) {
	cfg := DefaultL1DPredConfig()
	cfg.Global = true
	p := NewL1DPredictor(cfg)
	if len(p.table) != 1 {
		t.Fatalf("global variant table = %d entries", len(p.table))
	}
	// A global counter conflates the two PCs; the PC-indexed one does not.
	for i := 0; i < 100; i++ {
		p.Observe(0x400800, true)
		p.Observe(0x400900, false)
	}
	if p.Predict(0x400800) != p.Predict(0x400900) {
		t.Error("global variant must give one shared prediction")
	}
}

func TestL1DPredConfigValidate(t *testing.T) {
	if err := DefaultL1DPredConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultL1DPredConfig()
	bad.Entries = 0
	if bad.Validate() == nil {
		t.Error("zero entries must be rejected")
	}
	bad = DefaultL1DPredConfig()
	bad.Bits = 0
	if bad.Validate() == nil {
		t.Error("zero bits must be rejected")
	}
}

// TestHierarchyEmitsPrefetchCounters pins the counter-registration bugfix:
// the prefetchers' Issued counts must reach a run's counter snapshot through
// the stats registry.
func TestHierarchyEmitsPrefetchCounters(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.SetL1DPredictor(NewL1DPredictor(DefaultL1DPredConfig()))
	pc := uint64(0x400A00)
	for i := 0; i < 64; i++ {
		h.Load(pc, uint64(0x100000+i*64))
	}
	var cs stats.CounterSet
	h.EmitCounters(&cs)
	snap := cs.Snapshot()
	if snap.Get("prefetch.l1_issued") == 0 {
		t.Errorf("prefetch.l1_issued missing from snapshot: %v", snap.Names())
	}
	if snap.Get("prefetch.fills") != h.PrefetchFills || h.PrefetchFills == 0 {
		t.Errorf("prefetch.fills = %d, hierarchy = %d", snap.Get("prefetch.fills"), h.PrefetchFills)
	}
	if snap.Get("l1dpred.lookups") != 64 {
		t.Errorf("l1dpred.lookups = %d, want 64", snap.Get("l1dpred.lookups"))
	}
}

func TestHierarchySwapsPrefetcherVariant(t *testing.T) {
	// The line one past the demand stream lands in L1 only via the L1
	// prefetcher (the L2 streamer fills L2), so its presence distinguishes
	// the stride and none variants behaviorally.
	ahead := LineAddr(0x200000 + 64*64)
	run := func(h *Hierarchy) {
		for i := 0; i < 64; i++ {
			h.Load(0x400B00, uint64(0x200000+i*64))
		}
	}
	none := NewHierarchy(DefaultHierarchyConfig())
	none.SetL1Prefetcher(NonePrefetcher{})
	run(none)
	if none.L1D.Lookup(ahead) {
		t.Error("none variant prefetched the next line into L1")
	}
	if none.L1Prefetcher().IssuedCount() != 0 {
		t.Errorf("none variant issued %d", none.L1Prefetcher().IssuedCount())
	}
	stride := NewHierarchy(DefaultHierarchyConfig())
	run(stride)
	if !stride.L1D.Lookup(ahead) {
		t.Error("default stride variant must prefetch the next line into L1")
	}
}

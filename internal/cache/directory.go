package cache

// Directory is a directory-based coherence layer (MESIF-flavoured, §6.6 of
// the paper): it tracks, per cacheline, which cores may hold the line via
// core-valid (CV) bits, and delivers invalidating snoops to sharers when a
// core writes. It also implements the paper's CV-bit *pinning*: a core may
// pin its CV bit for a line accessed by an eliminated load, guaranteeing
// that a future write by any other core still snoops this core even if the
// line was clean-evicted from its private caches. The pin is released when a
// snoop is delivered, exactly as §6.6 specifies.
type Directory struct {
	numCores int
	entries  map[uint64]*dirEntry

	// SnoopSink receives invalidating snoops: SnoopSink[core](lineAddr) is
	// called when core must invalidate lineAddr. Cores register themselves
	// via RegisterSnoopHandler.
	sinks []func(lineAddr uint64)

	SnoopsSent uint64
	PinsSet    uint64
}

type dirEntry struct {
	cv     []bool
	pinned []bool
}

// NewDirectory builds a directory for numCores cores.
func NewDirectory(numCores int) *Directory {
	return &Directory{
		numCores: numCores,
		entries:  make(map[uint64]*dirEntry),
		sinks:    make([]func(uint64), numCores),
	}
}

// RegisterSnoopHandler installs the snoop-delivery callback for core.
func (d *Directory) RegisterSnoopHandler(core int, fn func(lineAddr uint64)) {
	d.sinks[core] = fn
}

func (d *Directory) entry(lineAddr uint64) *dirEntry {
	e, ok := d.entries[lineAddr]
	if !ok {
		e = &dirEntry{cv: make([]bool, d.numCores), pinned: make([]bool, d.numCores)}
		d.entries[lineAddr] = e
	}
	return e
}

// OnFill records that core now holds lineAddr.
func (d *Directory) OnFill(core int, lineAddr uint64) {
	d.entry(lineAddr).cv[core] = true
}

// OnStore delivers invalidating snoops to every other sharer of lineAddr and
// clears their CV bits and pins.
func (d *Directory) OnStore(core int, lineAddr uint64) {
	e, ok := d.entries[lineAddr]
	if !ok {
		return
	}
	for c := 0; c < d.numCores; c++ {
		if c == core || !e.cv[c] {
			continue
		}
		e.cv[c] = false
		e.pinned[c] = false
		d.SnoopsSent++
		if d.sinks[c] != nil {
			d.sinks[c](lineAddr)
		}
	}
}

// OnEvict records that core clean-evicted lineAddr from its private caches.
// Without a pin, the CV bit is reset and the core will receive no further
// snoops for the line — which is why Constable must either pin the bit or
// invalidate its AMT entry (the Constable-AMT-I variant of Fig. 22).
func (d *Directory) OnEvict(core int, lineAddr uint64) {
	e, ok := d.entries[lineAddr]
	if !ok {
		return
	}
	if !e.pinned[core] {
		e.cv[core] = false
	}
}

// Pin pins core's CV bit for lineAddr (called when the memory request of a
// likely-stable, not-yet-eliminated load returns from the hierarchy).
func (d *Directory) Pin(core int, lineAddr uint64) {
	e := d.entry(lineAddr)
	e.cv[core] = true
	if !e.pinned[core] {
		e.pinned[core] = true
		d.PinsSet++
	}
}

// HasCV reports whether core's CV bit is set for lineAddr.
func (d *Directory) HasCV(core int, lineAddr uint64) bool {
	e, ok := d.entries[lineAddr]
	return ok && e.cv[core]
}

// IsPinned reports whether core's CV bit for lineAddr is pinned.
func (d *Directory) IsPinned(core int, lineAddr uint64) bool {
	e, ok := d.entries[lineAddr]
	return ok && e.pinned[core]
}

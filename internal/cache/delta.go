package cache

// DeltaPrefetcher is a PC-indexed delta-pattern (delta-correlating) L1-D
// prefetcher: each entry keeps a short ring of recent address deltas for its
// load PC and predicts the next delta by finding the most recent earlier
// occurrence of the current (previous, current) delta pair and replaying what
// followed it. A per-entry confidence counter tracks whether those
// predictions come true; prefetches issue only at or above the configured
// threshold. Unlike the stride prefetcher it captures repeating multi-delta
// patterns (e.g. +8,+8,+48 from a strided walk over padded records), which
// pointer-dense workloads exhibit around global-stable structures.
type DeltaPrefetcher struct {
	table     []deltaEntry
	mask      uint64
	degree    int
	threshold int
	maxConf   int
	deltas    int
	Issued    uint64
}

type deltaEntry struct {
	pc       uint64
	lastAddr uint64
	// hist is a circular delta ring: head is the next write slot, so the
	// newest delta sits at (head-1+deltas) % deltas.
	hist      [MaxDeltaHist]int64
	head      int
	filled    int
	predDelta int64 // delta predicted for the NEXT access (0 = no prediction)
	conf      int
	valid     bool
}

// NewDeltaPrefetcher builds a delta-pattern prefetcher from cfg.
func NewDeltaPrefetcher(cfg PrefetchConfig) *DeltaPrefetcher {
	n := nextPow2(cfg.Entries)
	return &DeltaPrefetcher{
		table:     make([]deltaEntry, n),
		mask:      uint64(n - 1),
		degree:    cfg.Degree,
		threshold: cfg.Threshold,
		maxConf:   cfg.MaxConf,
		deltas:    cfg.Deltas,
	}
}

// IssuedCount returns how many prefetches have been issued.
func (p *DeltaPrefetcher) IssuedCount() uint64 { return p.Issued }

// Observe trains on a demand load and returns the line addresses to
// prefetch (possibly none).
func (p *DeltaPrefetcher) Observe(pc, addr uint64) []uint64 {
	e := &p.table[(pc>>2)&p.mask]
	if !e.valid || e.pc != pc {
		*e = deltaEntry{pc: pc, lastAddr: addr, valid: true}
		return nil
	}
	delta := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if delta == 0 {
		return nil
	}

	// Score the previous prediction against what actually happened.
	if e.predDelta != 0 {
		if delta == e.predDelta {
			if e.conf < p.maxConf {
				e.conf++
			}
		} else if e.conf > 0 {
			e.conf--
		}
	}

	// Record the delta, then correlate on the (previous, current) delta
	// pair: the most recent earlier occurrence of the pair predicts that the
	// delta that followed it will follow again. Pair matching (rather than
	// single-delta matching) is what disambiguates repeating patterns whose
	// deltas individually recur at several distances.
	n := p.deltas
	prevIdx := (e.head - 1 + n) % n
	hasPrev := e.filled > 0
	prev := e.hist[prevIdx]
	pushed := e.head
	e.hist[pushed] = delta
	e.head = (e.head + 1) % n
	if e.filled < n {
		e.filled++
	}
	match := -1
	if hasPrev && prev != 0 {
		for i := 1; i <= e.filled-2; i++ {
			k := (pushed - i + n) % n
			j := (k - 1 + n) % n
			if e.hist[k] == delta && e.hist[j] == prev {
				match = k
				break
			}
		}
	}
	if match < 0 {
		e.predDelta = 0
		return nil
	}
	e.predDelta = e.hist[(match+1)%n]
	if e.predDelta == 0 || e.conf < p.threshold {
		return nil
	}

	// Replay the recorded pattern from the match point; once the walk wraps
	// onto the just-recorded delta, keep extrapolating with the predicted
	// delta.
	out := make([]uint64, 0, p.degree)
	next := int64(addr)
	idx := match
	for i := 0; i < p.degree; i++ {
		idx = (idx + 1) % n
		d := e.hist[idx]
		if idx == pushed {
			d = e.predDelta
		}
		if d == 0 {
			break
		}
		next += d
		if next <= 0 {
			break
		}
		out = append(out, LineAddr(uint64(next)))
		p.Issued++
	}
	return out
}

package service

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"constable/internal/sim"
	"constable/internal/workload"
)

// JobStatus is the lifecycle state of a submitted job.
type JobStatus string

// Job lifecycle: Queued → Running → Done | Failed; Queued → Canceled.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// Job tracks one submitted JobSpec through the scheduler. All fields are
// owned by the scheduler; read them through the accessor methods.
type Job struct {
	ID   string
	Hash string
	Spec JobSpec // canonical form

	// Class is the fair-share scheduling class the job was submitted under
	// (ClassInteractive unless the submitter said otherwise); SweepID tags
	// a sweep cell with its owning sweep. Both are scheduling attributes —
	// they never enter the spec's content hash — and are immutable after
	// Submit.
	Class   string
	SweepID string

	mu       sync.Mutex
	status   JobStatus
	result   *sim.RunResult
	err      error
	cacheHit bool

	// refs counts the submitters still interested in this job (initial
	// submit plus each deduped duplicate, minus Abandon calls). Owned by
	// the scheduler and guarded by the scheduler's mutex, not j.mu.
	refs int

	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the simulation result and error once the job has finished;
// before that it returns (nil, nil). The result is a deep copy: submitters
// deduped onto one job (and repeated Result calls) each get an independent
// document, so no caller's mutation can reach another's — the same isolation
// the result cache and store provide.
func (j *Job) Result() (*sim.RunResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result.Clone(), j.err
}

// terminalErr returns the job's error without copying the result — for
// in-package callers that only need the outcome (the sweep drainers).
func (j *Job) terminalErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// CacheHit reports whether the job was served from the result cache without
// simulating.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is canceled, then returns the
// job's result.
func (j *Job) Wait(ctx context.Context) (*sim.RunResult, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (j *Job) finish(res *sim.RunResult, err error, status JobStatus, cacheHit bool) {
	j.mu.Lock()
	j.result = res
	j.err = err
	j.status = status
	j.cacheHit = cacheHit
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// ErrShuttingDown is returned by Submit after Shutdown or Close has begun.
var ErrShuttingDown = errors.New("service: scheduler is shutting down")

// ErrCanceled is the terminal error of a job canceled while queued.
var ErrCanceled = errors.New("service: job canceled")

// Config parameterizes a Scheduler.
type Config struct {
	// Workers bounds the number of concurrent local simulations. Zero
	// selects the default (runtime.GOMAXPROCS(0)); a negative value
	// disables local execution entirely, turning the scheduler into a pure
	// dispatcher whose jobs all run on registered remote workers.
	Workers int
	// Backend overrides the execution backend. Nil (the default) builds a
	// MultiBackend over an in-process LocalBackend with Workers slots —
	// remote workers registered at runtime add capacity to it. A non-Multi
	// backend is wrapped in a MultiBackend so worker registration always
	// works.
	Backend Backend
	// WorkerTTL is how long a registered remote worker may go without a
	// heartbeat before it is expired and its capacity removed (default
	// 15s). In-flight jobs on an expired worker fail at the transport
	// level and requeue.
	WorkerTTL time.Duration
	// MaxBatch caps how many queued jobs the dispatcher hands one backend
	// as a single chunk (one worker round trip carries the whole chunk).
	// Chunks are additionally sized adaptively to each worker's free
	// capacity, so MaxBatch only bounds the degenerate single-worker case.
	// Zero selects the default (16); 1 (or any negative value) restores
	// per-cell dispatch.
	MaxBatch int
	// CacheSize is the LRU result-cache capacity in entries. Zero selects
	// the default (1024); any negative value disables in-memory caching.
	CacheSize int
	// JobRetention bounds how many finished jobs stay pollable via Get
	// (default 16384). Beyond it the oldest finished jobs are forgotten,
	// keeping a long-lived server's memory bounded.
	JobRetention int
	// DataDir, when non-empty, roots the persistent content-addressed
	// result store: every finished result is written there (one JSON file
	// per JobSpec hash, sharded, atomically renamed into place) and LRU
	// misses fall through to it, so results survive restarts and are
	// shared between processes pointing at the same directory. Uploaded
	// traces persist under its traces/ subdirectory; without a DataDir the
	// trace store is memory-only.
	DataDir string
	// TraceFetch, when set, lets the trace store retrieve missing trace
	// bytes by content hash — workers install a closure that downloads
	// GET /v1/traces/{hash} from their server. Fetched bytes are verified
	// against the requested hash before use.
	TraceFetch TraceFetchFunc
	// MaxBody caps HTTP request bodies on the JSON API routes (bytes;
	// default 8 MiB). MaxTraceBody is the separate, larger cap for raw
	// trace uploads on POST /v1/traces (default 256 MiB).
	MaxBody      int64
	MaxTraceBody int64
	// Share, when set, connects this scheduler to a cluster-wide result
	// store: a submitted spec that misses the local LRU and disk store is
	// looked up there before queueing (a hit completes the job without
	// simulating, promoted through the local LRU), and every locally
	// simulated result is written back so the rest of the cluster can reuse
	// it. Workers install a RemoteResultStore pointed at their server; a
	// federated dispatch server can point one at an upstream results server.
	Share ResultSharer
	// QueueMax, when positive, is the per-class queued-job watermark for
	// admission control: a submission that finds its class's queue at the
	// watermark is refused with a QueueFullError (HTTP 429 + Retry-After)
	// instead of queued. Batch-kind classes (sweep cells) are exempt up to
	// their own watermark of 64×QueueMax — sweeps flood the queue by
	// design. Submissions that dedup onto an in-flight job or are answered
	// by the cache/store/share are never refused. Zero disables admission
	// control.
	QueueMax int
	// ClassWeights overrides the weighted deficit-round-robin dispatch
	// weights (defaults: interactive 8, batch 1; the "default" key sets
	// the weight of ad-hoc tenant classes, default 4).
	ClassWeights map[string]int
	// HedgeAfter, when positive, arms hedged dispatch for stragglers: once
	// the queue has drained (a sweep tail), a single-cell dispatch to a
	// remote worker that hasn't answered within HedgeAfter is duplicated
	// onto the next-best backend; the first verified result wins and the
	// loser's request is canceled (the worker abandons its copy). Zero
	// disables hedging.
	HedgeAfter time.Duration
}

// SubmitOptions carries a submission's scheduling attributes — everything
// about how a job is queued, nothing about what it simulates, so none of
// it enters the JobSpec content hash and a submission that dedups onto an
// in-flight job simply joins that job's existing class.
type SubmitOptions struct {
	// Class names the fair-share scheduling class. Empty selects
	// ClassInteractive.
	Class string
	// SweepID tags the job as a cell of the named sweep.
	SweepID string
}

// Scheduler runs JobSpecs through a pluggable execution Backend — by
// default a MultiBackend over an in-process pool plus any remote workers
// that register — tracking per-job status and deduplicating identical
// specs: a spec whose hash matches a cached result completes instantly, and
// one matching a queued or running job shares that job instead of enqueuing
// a duplicate. Wherever a job executes, its result flows into the same LRU
// cache and persistent store.
type Scheduler struct {
	backend *MultiBackend
	cache   *resultCache
	store   *resultStore // nil without Config.DataDir
	traces  *traceStore  // always non-nil; memory-only without Config.DataDir
	share   ResultSharer // nil without Config.Share

	// maxBody / maxTraceBody are the HTTP request-body caps the handler
	// enforces (Config.MaxBody / Config.MaxTraceBody, defaulted).
	maxBody      int64
	maxTraceBody int64
	// runFn executes one local simulation; tests substitute a stub. The
	// default LocalBackend reads it through a closure at execution time, so
	// installing a stub after Open but before the first Submit works.
	runFn func(sim.Options) (*sim.RunResult, error)

	mu        sync.Mutex
	cond      *sync.Cond
	queues    *multiQueue
	byID      map[string]*Job
	inflight  map[string]*Job // hash → queued/running job
	retention int
	doneIDs   []string // finished job IDs, oldest first, for byID eviction
	closed    bool
	nextID    uint64
	running   int // jobs dispatched to the backend and not yet returned
	maxBatch  int // dispatch chunk-size cap (Config.MaxBatch, defaulted)

	sweeps    map[string]*Sweep
	sweepDone []string // finished sweep IDs, oldest first, for eviction
	nextSweep uint64

	janitorStop chan struct{}
	// dispatchCtx unblocks a dispatcher parked inside the backend's Reserve
	// wait when Shutdown begins.
	dispatchCtx    context.Context
	dispatchCancel context.CancelFunc

	wg sync.WaitGroup

	metrics metrics
}

// Open starts a scheduler over cfg's execution backend. It errors only when
// Config.DataDir is set and the store directory cannot be created.
func Open(cfg Config) (*Scheduler, error) {
	localWorkers := cfg.Workers
	if localWorkers == 0 {
		localWorkers = runtime.GOMAXPROCS(0)
	}
	if localWorkers < 0 {
		localWorkers = 0
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 16384
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 15 * time.Second
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20 // 8 MiB
	}
	if cfg.MaxTraceBody <= 0 {
		cfg.MaxTraceBody = 256 << 20 // 256 MiB
	}
	s := &Scheduler{
		cache:        newResultCache(cfg.CacheSize),
		runFn:        sim.Run,
		queues:       newMultiQueue(cfg.ClassWeights, cfg.QueueMax),
		byID:         make(map[string]*Job),
		inflight:     make(map[string]*Job),
		retention:    cfg.JobRetention,
		maxBatch:     cfg.MaxBatch,
		maxBody:      cfg.MaxBody,
		maxTraceBody: cfg.MaxTraceBody,
		sweeps:       make(map[string]*Sweep),
		janitorStop:  make(chan struct{}),
	}
	s.dispatchCtx, s.dispatchCancel = context.WithCancel(context.Background())
	traceDir := ""
	if cfg.DataDir != "" {
		store, err := newResultStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		s.store = store
		traceDir = filepath.Join(cfg.DataDir, "traces")
	}
	traces, err := newTraceStore(traceDir, cfg.TraceFetch)
	if err != nil {
		return nil, err
	}
	s.traces = traces
	base := cfg.Backend
	if base == nil {
		// The closure defers the runFn read to execution time (test stubs).
		base = NewLocalBackend(localWorkers, func(o sim.Options) (*sim.RunResult, error) { return s.runFn(o) })
	}
	if multi, ok := base.(*MultiBackend); ok {
		s.backend = multi
	} else {
		s.backend = NewMultiBackend(base)
	}
	s.share = cfg.Share
	s.backend.maxBatch = s.maxBatch
	s.backend.onChange = s.wake
	s.backend.hedgeAfter = cfg.HedgeAfter
	// Hedging only duplicates work when no queued cell could use the spare
	// slot better — i.e. at the sweep tail, once the queue has drained.
	s.backend.hedgeGate = func() bool { return s.QueueDepth() == 0 }
	s.backend.setWorkloadResolver(s.resolveWorkload)
	s.backend.setResultLookup(s.dispatchLookup)
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.dispatch()
	go s.janitor(cfg.WorkerTTL)
	return s, nil
}

// wake re-evaluates the dispatcher's gate after a capacity change (a worker
// registered, failed, or expired).
func (s *Scheduler) wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// New starts a scheduler over cfg's execution backend, panicking when the
// result store cannot be opened. Callers with an untrusted DataDir should
// use Open.
func New(cfg Config) *Scheduler {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

var (
	defaultMu  sync.Mutex
	defaultSch *Scheduler
	defaultCfg Config
)

// SetDefaultConfig sets the configuration the process-wide scheduler is
// created with. It must be called before the first Default() call — CLI
// tools call it from flag handling (e.g. -data-dir) — and errors if the
// default scheduler already exists or the configured store cannot open.
func SetDefaultConfig(cfg Config) error {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultSch != nil {
		return errors.New("service: default scheduler already created")
	}
	if cfg.DataDir != "" {
		// Surface store errors here rather than as a panic in Default.
		if _, err := newResultStore(cfg.DataDir); err != nil {
			return err
		}
	}
	defaultCfg = cfg
	return nil
}

// Default returns the process-wide shared scheduler, creating it on first
// use with the SetDefaultConfig configuration. The CLI tools and the
// experiment drivers all submit through it, so repeated cells across
// drivers are simulated once per process (and once ever, with a DataDir).
func Default() *Scheduler {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultSch == nil {
		defaultSch = New(defaultCfg) // DataDir pre-validated by SetDefaultConfig
	}
	return defaultSch
}

// resolveWorkload maps a canonical workload name to its Spec: suite names
// through the built-in registry, "trace:<hash>" references through the trace
// store (fetching by hash when the store has a fetch path). It is the
// WorkloadResolver the local backend executes with.
func (s *Scheduler) resolveWorkload(name string) (*workload.Spec, error) {
	if workload.IsTraceName(name) {
		h, err := workload.TraceHash(name)
		if err != nil {
			return nil, err
		}
		return s.traces.Resolve(h)
	}
	return workload.ByName(name)
}

// Traces exposes the scheduler's trace store to the HTTP layer and tools.
func (s *Scheduler) Traces() *traceStore { return s.traces }

// Submit validates spec, assigns a job ID and either enqueues the work or
// resolves it immediately from the result cache. Submitting a spec whose
// hash matches a job still queued or running returns that existing job.
// A trace-referenced spec is resolved up front — on a worker this is what
// triggers the fetch-by-hash from the server — so a job for an unavailable
// trace fails at submission (ErrTraceUnavailable) rather than mid-dispatch.
// The job joins the interactive scheduling class; SubmitWith chooses.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitWith(spec, SubmitOptions{})
}

// SubmitWith is Submit with explicit scheduling attributes: the class the
// job queues under (fair-share dispatch, admission control) and the sweep
// it belongs to. When the class's queue is at its admission watermark
// (Config.QueueMax) the submission is refused with a *QueueFullError —
// unless it never needs a queue slot at all: dedup onto an in-flight job,
// a cache/store/share hit, all bypass admission.
func (s *Scheduler) SubmitWith(spec JobSpec, opts SubmitOptions) (*Job, error) {
	canonical, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	hash, err := canonical.Hash()
	if err != nil {
		return nil, err
	}
	if workload.IsTraceName(canonical.Workload) {
		if _, err := s.resolveWorkload(canonical.Workload); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	s.metrics.submitted.Add(1)

	if j, ok := s.inflight[hash]; ok {
		s.metrics.deduped.Add(1)
		j.refs++
		return j, nil
	}

	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Hash:      hash,
		Spec:      canonical,
		Class:     s.queues.resolve(opts.Class),
		SweepID:   opts.SweepID,
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
		refs:      1,
	}
	s.byID[j.ID] = j

	if res, ok := s.cache.Get(hash); ok {
		j.finish(res, nil, StatusDone, true)
		s.retireLocked(j)
		return j, nil
	}

	if s.store == nil && s.share == nil {
		if err := s.admitLocked(j.Class); err != nil {
			s.rejectLocked(j)
			return nil, err
		}
		s.inflight[hash] = j
		s.queues.push(j)
		s.cond.Signal()
		return j, nil
	}

	// LRU miss with a persistent store and/or a cluster-wide share: consult
	// them with the scheduler unlocked — a cold sweep submission must not
	// serialize every other Submit/retire/Metrics call behind file reads or
	// a share round trip. Registering j in inflight first reserves the
	// hash, so a concurrent identical Submit dedups onto j instead of
	// racing its own lookup. Order matters: the local disk answers in
	// microseconds, so the share — one HTTP round trip, stampede-bounded by
	// its own singleflight and negative cache — is only asked what no local
	// tier has.
	s.inflight[hash] = j
	s.mu.Unlock()
	var res *sim.RunResult
	ok := false
	if s.store != nil {
		res, ok = s.store.Load(hash)
	}
	if !ok && s.share != nil {
		res, ok = s.shareLookup(hash)
	}
	s.mu.Lock()
	if s.closed {
		// Shutdown ran while we were off the lock and canceled the queue;
		// j was reserved but not queued, so cancel it the same way.
		delete(s.inflight, hash)
		j.finish(nil, ErrCanceled, StatusCanceled, false)
		s.retireLocked(j)
		s.metrics.canceled.Add(1)
		return j, nil
	}
	if ok {
		// Store or share hit: promote into the LRU so later duplicates
		// touch neither the disk nor the network again. The job keeps its
		// own clone of the promoted document — the copy the LRU now owns
		// and the copy this job's callers receive must never alias,
		// mirroring the cache's deep-copy-on-Add/Get contract: a caller
		// mutating its store-hit (or remote-hit) result must not be able to
		// corrupt what later hits observe.
		delete(s.inflight, hash)
		s.cache.Add(hash, res)
		j.finish(res.Clone(), nil, StatusDone, true)
		s.retireLocked(j)
		return j, nil
	}
	if err := s.admitLocked(j.Class); err != nil && j.refs <= 1 {
		// Every tier missed and the class queue is full. Refusing is only
		// safe while no concurrent identical Submit deduped onto j during
		// the unlocked lookup — sharers hold a *Job they will Wait on, so a
		// shared job must queue despite the watermark (dedup bypasses
		// admission by design: it consumes no new queue capacity of its
		// own submitter's making).
		delete(s.inflight, hash)
		s.rejectLocked(j)
		return nil, err
	}
	s.queues.push(j)
	s.cond.Signal()
	return j, nil
}

// admitLocked applies the admission watermark to one prospective enqueue,
// returning a *QueueFullError when the class's queue is full. A class
// below its watermark always admits — the submission that brings the
// depth exactly to the limit is the last one in. Caller holds s.mu.
func (s *Scheduler) admitLocked(class string) error {
	limit := s.queues.watermark(class)
	if limit <= 0 {
		return nil
	}
	depth := s.queues.depth(class)
	if depth < limit {
		return nil
	}
	return &QueueFullError{
		Class:      class,
		Depth:      depth,
		Limit:      limit,
		RetryAfter: s.retryAfterLocked(depth),
	}
}

// rejectLocked unregisters a job refused by admission control (it was
// never queued, so there is nothing to cancel) and counts the rejection.
func (s *Scheduler) rejectLocked(j *Job) {
	delete(s.byID, j.ID)
	s.queues.class(j.Class).rejected++
	s.metrics.admissionRejected.Add(1)
}

// retryAfterLocked estimates how long a refused submitter should back off:
// the time the backend needs to drain the rejected class's backlog at its
// current capacity, clamped to [1s, 60s] so clients neither stampede back
// immediately nor give up on a briefly saturated server.
func (s *Scheduler) retryAfterLocked(depth int) time.Duration {
	capacity := s.backend.Capacity()
	if capacity < 1 {
		capacity = 1
	}
	secs := (depth + capacity - 1) / capacity
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// Abandon drops one submitter's interest in a job. When the last interested
// submitter abandons a job that is still queued, the job is canceled and its
// queue slot freed — this is how a sweep cancellation, a DELETE /v1/runs
// call or a disconnected ?wait=1 client stops work nobody is waiting for,
// while a job shared with other submitters (dedup) keeps running for them.
// Running jobs are never interrupted (sim.Run has no preemption point): an
// abandoned running job completes and still populates the cache and store.
// Abandon reports whether it canceled the job.
func (s *Scheduler) Abandon(id string) bool {
	s.mu.Lock()
	j, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if j.refs > 0 {
		j.refs--
	}
	if j.refs > 0 {
		s.mu.Unlock()
		return false
	}
	canceled := s.cancelQueuedLocked(j)
	s.mu.Unlock()
	if canceled {
		s.metrics.canceled.Add(1)
	}
	return canceled
}

// cancelQueuedLocked removes j from its class queue and finishes it as
// canceled, reporting false when j is not queued (running or terminal).
// Queue membership — checked and removed under the lock, so a concurrent
// dispatcher pop or second cancellation cannot also finish the job — is
// what authorizes canceling. Caller holds s.mu and owns the canceled
// metric.
func (s *Scheduler) cancelQueuedLocked(j *Job) bool {
	if !s.queues.remove(j) {
		return false
	}
	delete(s.inflight, j.Hash)
	j.finish(nil, ErrCanceled, StatusCanceled, false)
	s.retireLocked(j)
	return true
}

// RunSync submits spec and waits for its result.
func (s *Scheduler) RunSync(ctx context.Context, spec JobSpec) (*sim.RunResult, error) {
	j, err := s.Submit(spec)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Get returns the job with the given ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// Cancel cancels a queued job that no other submitter shares. Unlike
// Abandon — which is a submitter relinquishing its own interest and always
// consumes a reference — Cancel is an external request (DELETE /v1/runs) by
// a caller whose identity is unknown: when the job is deduped across
// multiple submitters it refuses without touching their references, so a
// shared job (e.g. a running sweep's cell) can never be killed, or have its
// refcount drained by repeated DELETEs, by one client. Running jobs cannot
// be interrupted either way.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.byID[id]
	if !ok || j.refs > 1 {
		s.mu.Unlock()
		return false
	}
	canceled := s.cancelQueuedLocked(j)
	s.mu.Unlock()
	if canceled {
		s.metrics.canceled.Add(1)
	}
	return canceled
}

// lookupResult returns an independent copy of the result stored under hash
// in the LRU or the persistent store, or nil when neither has it — how
// finished sweeps re-resolve cell results for replay without pinning them.
func (s *Scheduler) lookupResult(hash string) *sim.RunResult {
	if res, ok := s.cache.Get(hash); ok {
		return res
	}
	if s.store != nil {
		if res, ok := s.store.Load(hash); ok {
			return res
		}
	}
	return nil
}

// shareLookup consults the cluster-wide result store and keeps the
// remote-store accounting: a verified result is a hit, an envelope that
// failed hash/schema verification is a rejection (counted, never used — the
// caller simulates locally, so a lying store cannot poison results), and
// everything else, transport failures included, is a miss.
func (s *Scheduler) shareLookup(hash string) (*sim.RunResult, bool) {
	res, err := s.share.Lookup(hash)
	switch {
	case res != nil:
		s.metrics.remoteHits.Add(1)
		return res, true
	case errors.Is(err, ErrResultRejected):
		s.metrics.remoteRejected.Add(1)
	default:
		s.metrics.remoteMisses.Add(1)
	}
	return nil, false
}

// dispatchLookup is the MultiBackend's pre-dispatch store probe: it answers
// from the local LRU or disk store only — quietly, without touching their
// hit/miss counters, since it runs once per dispatched cell — and never from
// the remote share, whose submit-time consultation already covered this job.
// It exists for results that land *after* submission: a worker write-back or
// a peer process sharing the data-dir can finish a cell while it sits
// queued, and dispatching it anyway would waste a backend slot.
func (s *Scheduler) dispatchLookup(hash string) *sim.RunResult {
	if res, ok := s.cache.peek(hash); ok {
		return res
	}
	if s.store != nil {
		if res, ok := s.store.load(hash, false); ok {
			return res
		}
	}
	return nil
}

// QueueDepth returns the number of jobs waiting for a worker, across every
// scheduling class.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queues.len()
}

// ClassQueueDepth returns the number of jobs queued in one scheduling
// class.
func (s *Scheduler) ClassQueueDepth(class string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queues.depth(class)
}

// QueuePosition returns the job's 1-based position within its class queue
// — what a polling client sees as "how many jobs of my kind are ahead of
// me" — or 0 when the job is not queued (running, finished, unknown).
func (s *Scheduler) QueuePosition(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return 0
	}
	return s.queues.position(j)
}

// Running returns the number of jobs currently simulating.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Shutdown stops accepting new jobs, cancels everything still queued, and
// waits for running simulations to finish or ctx to expire.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	canceled := s.queues.drain()
	for _, j := range canceled {
		delete(s.inflight, j.Hash)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.dispatchCancel() // unpark a dispatcher waiting inside Reserve
	close(s.janitorStop)

	for _, j := range canceled {
		j.finish(nil, ErrCanceled, StatusCanceled, false)
		s.retire(j)
		s.metrics.canceled.Add(1)
	}

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts the scheduler down, waiting indefinitely for running jobs.
func (s *Scheduler) Close() error { return s.Shutdown(context.Background()) }

// retire records a finished job and evicts the oldest finished jobs from
// byID once more than retention of them have accumulated.
func (s *Scheduler) retire(j *Job) {
	s.mu.Lock()
	s.retireLocked(j)
	s.mu.Unlock()
}

func (s *Scheduler) retireLocked(j *Job) {
	s.doneIDs = append(s.doneIDs, j.ID)
	for len(s.doneIDs) > s.retention {
		delete(s.byID, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
}

// dispatch is the scheduler's single dispatcher goroutine. Whenever the
// backend has free dispatch budget it reserves a chunk of cells on the
// single best backend slot — sized adaptively to that slot's free capacity
// and capped at Config.MaxBatch — pops that many queued jobs under
// weighted deficit round-robin across the class queues, and hands the
// chunk to its own runChunk goroutine; a remote chunk then rides one worker
// round trip instead of one per cell. Budget is re-read on every iteration,
// so the gate automatically widens when a remote worker registers (the
// backend's onChange hook broadcasts the cond) and narrows when one fails.
//
// Ordering: reservation happens before the queue pop, so jobs stay in the
// queue — cancelable, abandonable, visible to QueueDepth — for as long as
// no backend is actually ready for them.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && (s.queues.len() == 0 || s.running >= s.backend.DispatchBudget()) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		want := min(s.queues.len(), s.maxBatch)
		s.mu.Unlock()

		r, err := s.backend.Reserve(s.dispatchCtx, want)
		if err != nil {
			// Shutdown canceled the wait, or every backend vanished while
			// we were reserving: re-evaluate the gate (with zero capacity
			// the cond parks until a worker registers).
			continue
		}
		s.mu.Lock()
		chunk := s.queues.popN(min(r.Granted(), s.queues.len()), time.Now())
		s.running += len(chunk)
		s.mu.Unlock()
		if len(chunk) == 0 {
			// Everything queued was canceled while we waited for the slot.
			r.release()
			continue
		}
		r.shrink(len(chunk))
		if len(chunk) > 1 {
			s.metrics.batchesDispatched.Add(1)
			s.metrics.batchCells.Add(uint64(len(chunk)))
		}
		s.wg.Add(1)
		go s.runChunk(r, chunk)
	}
}

// runChunk executes one dispatched chunk on its reserved backend slot and
// routes each cell's outcome individually: success populates the LRU and
// the persistent store exactly as a local run always has, a simulation
// failure is terminal for that cell alone, and a backend failure (remote
// worker died mid-chunk, returned a bad envelope, or no healthy backend
// exists) requeues the affected cells at the head of their class queues in
// their original order — except cells every submitter has abandoned in the
// meantime: those are dropped from the chunk and canceled, not requeued to
// simulate for no one, while their live siblings still requeue. The chunk
// is never the unit of failure; the cell is.
func (s *Scheduler) runChunk(r *reservation, chunk []*Job) {
	defer s.wg.Done()
	started := time.Now()
	specs := make([]JobSpec, len(chunk))
	hashes := make([]string, len(chunk))
	for i, j := range chunk {
		j.mu.Lock()
		j.status = StatusRunning
		j.started = started
		j.mu.Unlock()
		specs[i] = j.Spec
		hashes[i] = j.Hash
	}

	results := r.execute(context.Background(), specs, hashes)
	elapsed := time.Since(started)

	// Split the outcomes under one lock so requeued cells re-enter the
	// queue head as a block, preserving their relative order (oldest work
	// first). Terminal cells finish after the lock drops: caching and
	// persistence do real work (deep copies, disk writes) that must not
	// serialize every Submit behind this chunk.
	s.mu.Lock()
	s.running -= len(chunk)
	var requeued, dropped []*Job
	var terminal []int
	for i, j := range chunk {
		if err := results[i].Err; err != nil && errors.Is(err, ErrBackendUnavailable) {
			if s.closed || j.refs <= 0 {
				// Shutdown, or nobody is interested anymore: drop the cell
				// from the chunk instead of requeuing it.
				delete(s.inflight, j.Hash)
				dropped = append(dropped, j)
				continue
			}
			j.mu.Lock()
			j.status = StatusQueued
			j.mu.Unlock()
			requeued = append(requeued, j)
			continue
		}
		delete(s.inflight, j.Hash)
		terminal = append(terminal, i)
	}
	s.queues.requeueFront(requeued)
	s.cond.Broadcast()
	s.mu.Unlock()

	if len(requeued) > 0 {
		s.metrics.requeued.Add(uint64(len(requeued)))
	}
	for _, j := range dropped {
		j.finish(nil, ErrCanceled, StatusCanceled, false)
		s.retire(j)
		s.metrics.canceled.Add(1)
	}
	for _, i := range terminal {
		j := chunk[i]
		if err := results[i].Err; err != nil {
			j.finish(nil, err, StatusFailed, false)
			s.retire(j)
			s.metrics.failed.Add(1)
			continue
		}
		res := results[i].Result
		cacheHit := results[i].CacheHit
		s.cache.Add(j.Hash, res)
		if s.store != nil && !cacheHit {
			// Persistence is best-effort: a full disk degrades to LRU-only
			// caching (the failure is counted in the store metrics) rather
			// than failing the job, whose in-memory result is still valid.
			// A dispatch-time short-circuit (cacheHit) resolved from the
			// cache or the store itself and has nothing new to persist.
			_ = s.store.Save(j.Hash, res)
		}
		if s.share != nil && !cacheHit {
			// Publish the freshly simulated result cluster-wide. The
			// write-back is best-effort and off the job's critical path (the
			// PUT must not delay finish), but tracked by the scheduler's
			// WaitGroup so Shutdown drains it.
			s.wg.Add(1)
			go func(hash string, res *sim.RunResult) {
				defer s.wg.Done()
				if err := s.share.WriteBack(hash, res); err == nil {
					s.metrics.remoteWritebacks.Add(1)
				}
			}(j.Hash, res)
		}
		j.finish(res, nil, StatusDone, cacheHit)
		s.retire(j)
		s.metrics.completed.Add(1)
		if !cacheHit {
			s.metrics.executed.Add(1)
			s.metrics.simInstructions.Add(j.Spec.Instructions * uint64(j.Spec.Threads))
			// Busy time is attributed per cell at chunk wall-time granularity —
			// the same dispatch-to-result window the per-cell path measured.
			s.metrics.simBusyNanos.Add(uint64(elapsed.Nanoseconds()))
		}
	}
}

// janitor expires remote workers whose lease lapsed, until shutdown.
func (s *Scheduler) janitor(ttl time.Duration) {
	interval := ttl / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			if removed := s.backend.expire(ttl); removed != nil {
				s.metrics.workersLost.Add(uint64(len(removed)))
			}
		}
	}
}

// RegisterWorker adds a remote constable-worker (reachable at workerURL, an
// absolute http(s) URL, able to run capacity concurrent jobs) to the
// execution backend and returns its assigned identity. The new capacity is
// dispatchable immediately; the worker must heartbeat within the configured
// WorkerTTL to stay registered.
func (s *Scheduler) RegisterWorker(name, workerURL string, capacity int) (WorkerView, error) {
	u, err := url.Parse(workerURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		// Catch the scheme-less registration ("10.0.0.5:8081") up front:
		// accepted, it would make every dispatch to the worker fail.
		return WorkerView{}, fmt.Errorf("service: worker url %q must be absolute, e.g. http://host:port", workerURL)
	}
	if capacity <= 0 {
		capacity = 1
	}
	if name == "" {
		name = workerURL
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return WorkerView{}, ErrShuttingDown
	}
	v := s.backend.AddWorker(name, workerURL, capacity, NewRemoteBackend(name, workerURL, capacity))
	s.metrics.workersRegistered.Add(1)
	return v, nil
}

// HeartbeatWorker renews a worker's lease (and restores its health after a
// transient failure). The second return is false for an unknown ID — the
// worker should re-register.
func (s *Scheduler) HeartbeatWorker(id string) (WorkerView, bool) {
	return s.backend.Heartbeat(id)
}

// DeregisterWorker removes a worker from dispatch (graceful worker
// shutdown). Jobs already in flight on it drain normally.
func (s *Scheduler) DeregisterWorker(id string) bool {
	ok := s.backend.RemoveWorker(id)
	if ok {
		s.metrics.workersLost.Add(1)
	}
	return ok
}

// Workers lists the registered remote workers.
func (s *Scheduler) Workers() []WorkerView { return s.backend.Workers() }

// Backend returns the scheduler's MultiBackend — the composition of the
// local pool and every registered remote worker.
func (s *Scheduler) Backend() *MultiBackend { return s.backend }

package service

import (
	"testing"

	"constable/internal/pipeline"
	"constable/internal/sim"
	"constable/internal/workload"
)

func testWorkload(t *testing.T) string {
	t.Helper()
	return workload.SmallSuite()[0].Name
}

func TestHashDeterministic(t *testing.T) {
	name := testWorkload(t)
	a := JobSpec{Workload: name, Mechanism: "constable", Instructions: 50_000, Threads: 1}
	b := JobSpec{Workload: name, Mechanism: "constable", Instructions: 50_000, Threads: 1}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("identical specs hash differently: %s vs %s", ha, hb)
	}
}

func TestHashBudgetSensitive(t *testing.T) {
	name := testWorkload(t)
	a := JobSpec{Workload: name, Mechanism: "constable", Instructions: 50_000}
	b := JobSpec{Workload: name, Mechanism: "constable", Instructions: 60_000}
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha == hb {
		t.Error("specs with different instruction budgets hash equal")
	}
}

func TestHashNormalizesDefaults(t *testing.T) {
	name := testWorkload(t)
	// Explicit defaults and implicit defaults must be the same simulation.
	implicit := JobSpec{Workload: name}
	explicit := JobSpec{Workload: name, Mechanism: "baseline", Instructions: 100_000, Threads: 1}
	hi, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Errorf("defaulted spec hashes differently from explicit defaults: %s vs %s", hi, he)
	}
}

func TestHashNamedVersusExplicitMechanism(t *testing.T) {
	name := testWorkload(t)
	named := JobSpec{Workload: name, Mechanism: "eves+constable", Instructions: 10_000}
	explicit := JobSpec{Workload: name, Mech: MechSpec{EVES: true, Constable: true}, Instructions: 10_000}
	hn, _ := named.Hash()
	he, _ := explicit.Hash()
	if hn != he {
		t.Error("named mechanism and equivalent explicit MechSpec hash differently")
	}
}

func TestHashStablePCsOrderInsensitive(t *testing.T) {
	name := testWorkload(t)
	a := JobSpec{Workload: name, Instructions: 10_000, StablePCs: []uint64{3, 1, 2}}
	b := JobSpec{Workload: name, Instructions: 10_000, StablePCs: []uint64{1, 2, 3}}
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Error("StablePCs ordering changed the hash")
	}
}

func TestCanonicalRejectsBadSpecs(t *testing.T) {
	name := testWorkload(t)
	for _, spec := range []JobSpec{
		{Workload: "no-such-workload"},
		{Workload: name, Mechanism: "warp-drive"},
		{Workload: name, Threads: 3},
	} {
		if _, err := spec.Canonical(); err == nil {
			t.Errorf("Canonical(%+v) succeeded, want error", spec)
		}
	}
}

func TestSpecFromOptionsRoundTrip(t *testing.T) {
	spec := workload.SmallSuite()[0]
	core := pipeline.DefaultConfig()
	core.NumLoadPorts = 6
	opts := sim.Options{
		Workload:     spec,
		Instructions: 12_000,
		Threads:      2,
		APX:          true,
		Mech:         sim.Mechanism{Constable: true},
		Core:         &core,
		StablePCs:    map[uint64]bool{7: true, 3: true},
	}
	js := SpecFromOptions(opts)
	back, err := js.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload.Name != spec.Name || back.Instructions != 12_000 ||
		back.Threads != 2 || !back.APX || !back.Mech.Constable {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if back.Core == nil || back.Core.NumLoadPorts != 6 {
		t.Errorf("round trip lost core override: %+v", back.Core)
	}
	if len(back.StablePCs) != 2 || !back.StablePCs[3] || !back.StablePCs[7] {
		t.Errorf("round trip lost StablePCs: %+v", back.StablePCs)
	}
}

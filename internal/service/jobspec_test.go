package service

import (
	"encoding/json"
	"os"
	"testing"

	"constable/internal/bpred"
	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/pipeline"
	"constable/internal/sim"
	"constable/internal/workload"
)

func testWorkload(t *testing.T) string {
	t.Helper()
	return workload.SmallSuite()[0].Name
}

func TestHashDeterministic(t *testing.T) {
	name := testWorkload(t)
	a := JobSpec{Workload: name, Mechanism: "constable", Instructions: 50_000, Threads: 1}
	b := JobSpec{Workload: name, Mechanism: "constable", Instructions: 50_000, Threads: 1}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("identical specs hash differently: %s vs %s", ha, hb)
	}
}

func TestHashBudgetSensitive(t *testing.T) {
	name := testWorkload(t)
	a := JobSpec{Workload: name, Mechanism: "constable", Instructions: 50_000}
	b := JobSpec{Workload: name, Mechanism: "constable", Instructions: 60_000}
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha == hb {
		t.Error("specs with different instruction budgets hash equal")
	}
}

func TestHashNormalizesDefaults(t *testing.T) {
	name := testWorkload(t)
	// Explicit defaults and implicit defaults must be the same simulation.
	implicit := JobSpec{Workload: name}
	explicit := JobSpec{Workload: name, Mechanism: "baseline", Instructions: 100_000, Threads: 1}
	hi, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Errorf("defaulted spec hashes differently from explicit defaults: %s vs %s", hi, he)
	}
}

func TestHashNamedVersusExplicitMechanism(t *testing.T) {
	name := testWorkload(t)
	named := JobSpec{Workload: name, Mechanism: "eves+constable", Instructions: 10_000}
	explicit := JobSpec{Workload: name, Mech: MechSpec{EVES: true, Constable: true}, Instructions: 10_000}
	hn, _ := named.Hash()
	he, _ := explicit.Hash()
	if hn != he {
		t.Error("named mechanism and equivalent explicit MechSpec hash differently")
	}
}

func TestHashStablePCsOrderInsensitive(t *testing.T) {
	name := testWorkload(t)
	a := JobSpec{Workload: name, Instructions: 10_000, StablePCs: []uint64{3, 1, 2}}
	b := JobSpec{Workload: name, Instructions: 10_000, StablePCs: []uint64{1, 2, 3}}
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Error("StablePCs ordering changed the hash")
	}
}

func TestCanonicalRejectsBadSpecs(t *testing.T) {
	name := testWorkload(t)
	for _, spec := range []JobSpec{
		{Workload: "no-such-workload"},
		{Workload: name, Mechanism: "warp-drive"},
		{Workload: name, Threads: 3},
	} {
		if _, err := spec.Canonical(); err == nil {
			t.Errorf("Canonical(%+v) succeeded, want error", spec)
		}
	}
}

func TestSpecFromOptionsRoundTrip(t *testing.T) {
	spec := workload.SmallSuite()[0]
	core := pipeline.DefaultConfig()
	core.NumLoadPorts = 6
	opts := sim.Options{
		Workload:     spec,
		Instructions: 12_000,
		Threads:      2,
		APX:          true,
		Mech:         sim.Mechanism{Constable: true},
		Core:         &core,
		StablePCs:    map[uint64]bool{7: true, 3: true},
	}
	js := SpecFromOptions(opts)
	back, err := js.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload.Name != spec.Name || back.Instructions != 12_000 ||
		back.Threads != 2 || !back.APX || !back.Mech.Constable {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if back.Core == nil || back.Core.NumLoadPorts != 6 {
		t.Errorf("round trip lost core override: %+v", back.Core)
	}
	if len(back.StablePCs) != 2 || !back.StablePCs[3] || !back.StablePCs[7] {
		t.Errorf("round trip lost StablePCs: %+v", back.StablePCs)
	}
}

// TestPresetHashesPinned pins every preset's job content hash against
// testdata/preset_hashes.json. These hashes are content addresses in
// persistent stores and across the wire: changing one silently orphans every
// previously stored result, so any diff here must be a deliberate,
// documented schema break — never a side effect of adding fields.
func TestPresetHashesPinned(t *testing.T) {
	blob, err := os.ReadFile("testdata/preset_hashes.json")
	if err != nil {
		t.Fatal(err)
	}
	var fixture struct {
		Workload     string            `json:"workload"`
		Instructions uint64            `json:"instructions"`
		Hashes       map[string]string `json:"hashes"`
	}
	if err := json.Unmarshal(blob, &fixture); err != nil {
		t.Fatal(err)
	}
	presets := sim.MechanismNames()
	if len(fixture.Hashes) != len(presets) {
		t.Errorf("fixture pins %d presets, registry has %d — update testdata/preset_hashes.json",
			len(fixture.Hashes), len(presets))
	}
	for _, name := range presets {
		want, ok := fixture.Hashes[name]
		if !ok {
			t.Errorf("preset %q not pinned in fixture", name)
			continue
		}
		got, err := JobSpec{Workload: fixture.Workload, Mechanism: name,
			Instructions: fixture.Instructions}.Hash()
		if err != nil {
			t.Fatalf("hash %q: %v", name, err)
		}
		if got != want {
			t.Errorf("preset %q hash changed: %s, pinned %s", name, got, want)
		}
	}
}

// TestHashNormalizesDefaultConfigs is the regression test for the
// default-equal-override bug: a MechSpec spelling out a component's default
// configuration runs the exact simulation the bare preset runs, so it must
// hash to the same content address.
func TestHashNormalizesDefaultConfigs(t *testing.T) {
	name := testWorkload(t)
	preset := JobSpec{Workload: name, Mechanism: "constable", Instructions: 10_000}
	hp, err := preset.Hash()
	if err != nil {
		t.Fatal(err)
	}

	ccfg := constable.DefaultConfig()
	spelled := JobSpec{Workload: name, Mech: MechSpec{Constable: true, Config: &ccfg}, Instructions: 10_000}
	hs, err := spelled.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hs != hp {
		t.Errorf("default-equal constable config hashes differently: %s vs %s", hs, hp)
	}

	// Same normalization for every axis override.
	bcfg := bpred.DefaultConfig()
	pcfg := cache.DefaultPrefetchConfig()
	for _, spec := range []JobSpec{
		{Workload: name, Mech: MechSpec{Constable: true, BPredConfig: &bcfg}, Instructions: 10_000},
		{Workload: name, Mech: MechSpec{Constable: true, PrefetchConfig: &pcfg}, Instructions: 10_000},
		{Workload: name, Mech: MechSpec{Constable: true, BPred: "tage", Prefetch: "stride", L1DPred: "off"}, Instructions: 10_000},
	} {
		h, err := spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != hp {
			t.Errorf("default-equal spec %+v hashes differently: %s vs %s", spec.Mech, h, hp)
		}
	}

	// A bimodal-variant override equal to the bimodal base also elides.
	bim := bpred.BimodalConfig()
	qa := JobSpec{Workload: name, Mechanism: "constable,bpred=bimodal", Instructions: 10_000}
	qb := JobSpec{Workload: name, Mech: MechSpec{Constable: true, BPred: "bimodal", BPredConfig: &bim}, Instructions: 10_000}
	ha, _ := qa.Hash()
	hb, _ := qb.Hash()
	if ha != hb {
		t.Error("bimodal-base override must hash like the bare variant")
	}
	if ha == hp {
		t.Error("bpred=bimodal must hash differently from the default predictor")
	}

	// A default L1DPredConfig whose Global flag disagrees with the variant is
	// still default-equal: the variant decides Global.
	lc := cache.DefaultL1DPredConfig()
	ga := JobSpec{Workload: name, Mechanism: "constable,l1dpred=global", Instructions: 10_000}
	gb := JobSpec{Workload: name, Mech: MechSpec{Constable: true, L1DPred: "global", L1DPredConfig: &lc}, Instructions: 10_000}
	hga, _ := ga.Hash()
	hgb, _ := gb.Hash()
	if hga != hgb {
		t.Error("l1dpred Global flag must canonicalize to the variant's value")
	}
}

func TestCanonicalRejectsBadAxisSpecs(t *testing.T) {
	name := testWorkload(t)
	badPf := cache.PrefetchConfig{}
	okPf := cache.DefaultPrefetchConfig()
	okLc := cache.DefaultL1DPredConfig()
	for _, spec := range []JobSpec{
		{Workload: name, Mech: MechSpec{BPred: "gshare"}},
		{Workload: name, Mech: MechSpec{Prefetch: "nextline"}},
		{Workload: name, Mech: MechSpec{L1DPred: "perceptron"}},
		{Workload: name, Mechanism: "constable,prefetch=warp"},
		{Workload: name, Mech: MechSpec{Prefetch: "delta", PrefetchConfig: &badPf}},
		{Workload: name, Mech: MechSpec{Prefetch: "none", PrefetchConfig: &okPf}},
		{Workload: name, Mech: MechSpec{L1DPredConfig: &okLc}},
	} {
		if _, err := spec.Canonical(); err == nil {
			t.Errorf("Canonical(%+v) succeeded, want error", spec)
		}
	}
}

// TestQualifiedMechanismHashStability: the qualified name and the equivalent
// explicit MechSpec are one simulation, and the registry round-trip
// (name → MechSpec → Canonical → hash) is stable for every preset × axis
// combination.
func TestQualifiedMechanismHashStability(t *testing.T) {
	name := testWorkload(t)
	named := JobSpec{Workload: name, Mechanism: "constable,bpred=bimodal,prefetch=delta", Instructions: 10_000}
	explicit := JobSpec{Workload: name, Mech: MechSpec{Constable: true, BPred: "bimodal", Prefetch: "delta"}, Instructions: 10_000}
	hn, err := named.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hn != he {
		t.Error("qualified name and explicit axis MechSpec hash differently")
	}

	seen := map[string]string{}
	for _, preset := range sim.MechanismNames() {
		for _, suffix := range []string{"", ",bpred=bimodal", ",prefetch=delta", ",prefetch=none", ",l1dpred=counter", ",l1dpred=global"} {
			qname := preset + suffix
			mech, err := sim.MechanismByName(qname)
			if err != nil {
				t.Fatalf("MechanismByName(%q): %v", qname, err)
			}
			if got := sim.MechanismName(mech); got != qname {
				t.Errorf("MechanismName inverse broken: %q -> %q", qname, got)
			}
			spec := JobSpec{Workload: name, Mechanism: qname, Instructions: 10_000}
			h1, err := spec.Hash()
			if err != nil {
				t.Fatal(err)
			}
			h2, err := spec.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Errorf("hash of %q unstable", qname)
			}
			if prev, dup := seen[h1]; dup {
				t.Errorf("distinct mechanisms %q and %q collide on %s", prev, qname, h1)
			}
			seen[h1] = qname
		}
	}
}

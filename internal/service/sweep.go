package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"constable/internal/sim"
)

// SweepStatus is the lifecycle state of a sweep (a workload×config matrix
// submitted as one job group).
type SweepStatus string

const (
	SweepRunning  SweepStatus = "running"
	SweepDone     SweepStatus = "done"
	SweepFailed   SweepStatus = "failed"
	SweepCanceled SweepStatus = "canceled"
)

// SweepOptions parameterizes a sweep.
type SweepOptions struct {
	// FailFast cancels the rest of the sweep after the first failed cell:
	// queued cells are dropped (unless another submitter shares them) and
	// the sweep drains without waiting for results nobody will use.
	FailFast bool
	// Class names the scheduling class the sweep's cells are submitted
	// under. Empty selects ClassBatch — sweep cells are batch work by
	// definition; a tenant-scoped batch class ("batch:<tenant>") keeps one
	// tenant's sweeps fair-sharing against another's.
	Class string
}

// SweepEvent reports one finished cell of a sweep. Events are delivered in
// completion order, not matrix order; Row/Col locate the cell.
type SweepEvent struct {
	Seq      int       `json:"seq"`
	Row      int       `json:"row"`
	Col      int       `json:"col"`
	Workload string    `json:"workload"`
	JobID    string    `json:"job_id"`
	Hash     string    `json:"hash"`
	Status   JobStatus `json:"status"` // done | failed | canceled
	CacheHit bool      `json:"cache_hit,omitempty"`
	Error    string    `json:"error,omitempty"`

	// Result is the cell's full result for status done, attached at
	// delivery when the subscriber asked for results — a fresh deep copy
	// per subscriber, never retained in the sweep's event log — so mutating
	// a delivered result cannot corrupt other subscribers or replays. On a
	// replay of a long-finished sweep it is resolved from the result
	// cache/store by hash and may be nil if evicted and no store is
	// configured.
	Result *sim.RunResult `json:"result,omitempty"`
}

// SweepView is the API representation of a sweep's aggregate state.
type SweepView struct {
	ID     string      `json:"id"`
	Status SweepStatus `json:"status"`
	// Class is the scheduling class the sweep's cells queue under.
	Class     string      `json:"class,omitempty"`
	Rows      int         `json:"rows"`
	Total     int         `json:"total_cells"`
	Completed int         `json:"completed_cells"`
	CacheHits int         `json:"cache_hits"`
	Failed    int         `json:"failed_cells"`
	Canceled  int         `json:"canceled_cells"`
	Error     string      `json:"error,omitempty"`
}

// Sweep tracks one matrix of jobs through the scheduler with sweep-level
// cancellation. Events accumulate in order and are replayable: a subscriber
// attaching at any time sees the full history and then follows live.
type Sweep struct {
	ID    string
	sched *Scheduler
	stop  context.CancelFunc

	class    string
	rows     int
	total    int
	failFast bool
	jobs     [][]*Job

	mu        sync.Mutex
	cond      *sync.Cond
	events    []SweepEvent
	status    SweepStatus
	completed int
	cacheHits int
	failed    int
	canceled  int
	firstErr  error
	done      chan struct{}
}

// sweepRetention bounds how many finished sweeps stay pollable.
const sweepRetention = 1024

// StartSweep validates and submits a whole workload×config matrix as one
// job group and returns immediately; cells stream out through
// (*Sweep).Stream as they complete, with no full-matrix barrier. The
// matrix's rows land on the shared queue in row-major order, from which
// the dispatcher shards them into chunks sized to each backend's free
// capacity (Config.MaxBatch caps a chunk) — a remote worker receives whole
// chunks per round trip, yet per-cell identity is preserved end to end, so
// artifacts stay byte-identical to per-cell dispatch and the NDJSON event
// stream keeps its ordering contract. Identical cells — within the matrix
// or against anything the scheduler has already seen — are deduplicated or
// served from the cache/store like any other submission. Canceling ctx (or calling (*Sweep).Cancel) cancels the sweep:
// queued cells with no other interested submitter are dropped from the
// scheduler's queue; running cells finish and still populate the cache and
// store, but the sweep stops waiting for them.
//
// Invalid specs fail the whole sweep up front, before anything is
// submitted.
func (s *Scheduler) StartSweep(ctx context.Context, matrix [][]JobSpec, opts SweepOptions) (*Sweep, error) {
	if len(matrix) == 0 {
		return nil, errors.New("service: empty sweep")
	}
	total := 0
	for ri, row := range matrix {
		if len(row) == 0 {
			return nil, fmt.Errorf("service: sweep row %d is empty", ri)
		}
		for ci, spec := range row {
			if _, err := spec.Canonical(); err != nil {
				return nil, fmt.Errorf("service: sweep cell (%d,%d): %w", ri, ci, err)
			}
		}
		total += len(row)
	}

	class := opts.Class
	if class == "" {
		class = ClassBatch
	}
	swctx, cancel := context.WithCancel(ctx)
	sw := &Sweep{
		sched:    s,
		stop:     cancel,
		class:    class,
		rows:     len(matrix),
		total:    total,
		failFast: opts.FailFast,
		jobs:     make([][]*Job, len(matrix)),
		status:   SweepRunning,
		done:     make(chan struct{}),
	}
	sw.cond = sync.NewCond(&sw.mu)

	// The sweep's identity is allocated before its cells are submitted so
	// each cell can be tagged with it (JobView.Sweep); the sweep only
	// becomes pollable once every cell is in.
	s.mu.Lock()
	s.nextSweep++
	sw.ID = fmt.Sprintf("sweep-%d", s.nextSweep)
	s.mu.Unlock()

	for ri, row := range matrix {
		sw.jobs[ri] = make([]*Job, len(row))
		for ci, spec := range row {
			j, err := s.SubmitWith(spec, SubmitOptions{Class: class, SweepID: sw.ID})
			if err != nil {
				// Roll back: drop interest in everything already submitted.
				for _, prow := range sw.jobs {
					for _, pj := range prow {
						if pj != nil {
							s.Abandon(pj.ID)
						}
					}
				}
				cancel()
				return nil, fmt.Errorf("service: sweep cell (%d,%d): %w", ri, ci, err)
			}
			sw.jobs[ri][ci] = j
		}
	}

	s.mu.Lock()
	s.sweeps[sw.ID] = sw
	s.mu.Unlock()
	s.metrics.sweepsStarted.Add(1)

	var wg sync.WaitGroup
	for ri := range sw.jobs {
		wg.Add(1)
		go sw.drainRow(swctx, ri, &wg)
	}
	go func() {
		wg.Wait()
		sw.finalize()
	}()
	return sw, nil
}

// GetSweep returns the sweep with the given ID.
func (s *Scheduler) GetSweep(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// drainRow waits for one row's cells in column order, recording an event
// per cell. On sweep cancellation it abandons each remaining cell exactly
// once, so sole-interest queued cells leave the scheduler queue.
func (sw *Sweep) drainRow(ctx context.Context, ri int, wg *sync.WaitGroup) {
	defer wg.Done()
	for ci, j := range sw.jobs[ri] {
		ev := SweepEvent{
			Row: ri, Col: ci,
			Workload: j.Spec.Workload,
			JobID:    j.ID,
			Hash:     j.Hash,
		}
		var err error
		select {
		case <-j.Done():
			err = j.terminalErr()
		case <-ctx.Done():
			// Sweep canceled. The job may still have finished concurrently;
			// report the real outcome if so, otherwise drop our interest.
			select {
			case <-j.Done():
				err = j.terminalErr()
			default:
				sw.sched.Abandon(j.ID)
				ev.Status = StatusCanceled
				ev.Error = "sweep canceled"
				sw.record(ev, nil)
				continue
			}
		}
		if errors.Is(err, ErrCanceled) {
			// The cell was canceled (sweep cancellation racing through a
			// deduped sibling drainer, scheduler shutdown, an external
			// DELETE of a sole-interest cell) — that is a canceled cell,
			// not a simulation failure, and must not fail the sweep.
			ev.Status = StatusCanceled
			ev.Error = err.Error()
			sw.record(ev, nil)
			continue
		}
		if err != nil {
			ev.Status = StatusFailed
			ev.Error = err.Error()
			sw.record(ev, err)
			continue
		}
		// The result itself is not stored in the event log (Stream attaches
		// a fresh copy from the job at delivery); only the outcome is.
		ev.Status = StatusDone
		ev.CacheHit = j.CacheHit()
		sw.record(ev, nil)
	}
}

// record appends one event, updates the aggregate counters, and wakes
// subscribers. err is the cell's failure (nil otherwise); the first one
// becomes the sweep's error and, under FailFast, cancels the rest.
func (sw *Sweep) record(ev SweepEvent, err error) {
	failFast := false
	sw.mu.Lock()
	ev.Seq = len(sw.events)
	sw.events = append(sw.events, ev)
	switch ev.Status {
	case StatusDone:
		sw.completed++
		if ev.CacheHit {
			sw.cacheHits++
		}
	case StatusFailed:
		sw.failed++
		if sw.firstErr == nil {
			sw.firstErr = err
			failFast = sw.failFast
		}
	case StatusCanceled:
		sw.canceled++
	}
	sw.cond.Broadcast()
	sw.mu.Unlock()
	if failFast {
		sw.stop()
	}
}

// finalize marks the sweep terminal once every row has drained. It also
// releases the job matrix: a retained finished sweep must not pin every
// cell's RunResult in memory (JobRetention and the LRU bound those) —
// replays with results re-resolve them from the cache/store by hash.
func (sw *Sweep) finalize() {
	sw.mu.Lock()
	sw.jobs = nil
	switch {
	case sw.firstErr != nil:
		sw.status = SweepFailed
	case sw.canceled > 0:
		sw.status = SweepCanceled
	default:
		sw.status = SweepDone
	}
	status := sw.status
	close(sw.done)
	sw.cond.Broadcast()
	sw.mu.Unlock()
	sw.stop() // release the derived context

	m := &sw.sched.metrics
	switch status {
	case SweepFailed:
		m.sweepsFailed.Add(1)
	case SweepCanceled:
		m.sweepsCanceled.Add(1)
	default:
		m.sweepsCompleted.Add(1)
	}
	sw.sched.retireSweep(sw)
}

func (s *Scheduler) retireSweep(sw *Sweep) {
	s.mu.Lock()
	s.sweepDone = append(s.sweepDone, sw.ID)
	for len(s.sweepDone) > sweepRetention {
		delete(s.sweeps, s.sweepDone[0])
		s.sweepDone = s.sweepDone[1:]
	}
	s.mu.Unlock()
}

// Cancel stops the sweep. Queued cells nobody else is waiting on are
// dropped; the sweep reaches a terminal status once in-flight cells drain.
func (sw *Sweep) Cancel() { sw.stop() }

// Done is closed when the sweep reaches a terminal status.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// Status returns the sweep's current lifecycle state.
func (sw *Sweep) Status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.status
}

// Err returns the first cell failure, or nil.
func (sw *Sweep) Err() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.firstErr
}

// View returns a point-in-time aggregate of the sweep.
func (sw *Sweep) View() SweepView {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	v := SweepView{
		ID:        sw.ID,
		Status:    sw.status,
		Class:     sw.class,
		Rows:      sw.rows,
		Total:     sw.total,
		Completed: sw.completed,
		CacheHits: sw.cacheHits,
		Failed:    sw.failed,
		Canceled:  sw.canceled,
	}
	if sw.firstErr != nil {
		v.Error = sw.firstErr.Error()
	}
	return v
}

// Stream replays every event from the beginning and then follows the live
// stream, invoking fn serially and in order. With withResults, each done
// cell's event carries a deep copy of its RunResult (subscribers that only
// need outcomes skip that cost — the clone is the largest allocation on
// this path). Stream returns nil once the sweep is terminal and fully
// delivered, fn's error if fn fails, or ctx.Err() if ctx is canceled
// first. Multiple subscribers may stream one sweep concurrently; each gets
// the full ordered history.
func (sw *Sweep) Stream(ctx context.Context, withResults bool, fn func(SweepEvent) error) error {
	unhook := context.AfterFunc(ctx, func() {
		sw.mu.Lock()
		sw.cond.Broadcast()
		sw.mu.Unlock()
	})
	defer unhook()
	for i := 0; ; i++ {
		sw.mu.Lock()
		for i >= len(sw.events) && sw.status == SweepRunning && ctx.Err() == nil {
			sw.cond.Wait()
		}
		if ctx.Err() != nil {
			sw.mu.Unlock()
			return ctx.Err()
		}
		if i >= len(sw.events) {
			sw.mu.Unlock()
			return nil // terminal and drained
		}
		ev := sw.events[i]
		var j *Job
		if withResults && ev.Status == StatusDone && sw.jobs != nil {
			j = sw.jobs[ev.Row][ev.Col]
		}
		sw.mu.Unlock()
		if withResults && ev.Status == StatusDone {
			// Attach the result at delivery — Job.Result deep-copies, so
			// every subscriber owns its document. Once the sweep has
			// finalized (jobs released), resolve it from the cache/store.
			if j != nil {
				if res, err := j.Result(); err == nil {
					ev.Result = res
				}
			} else {
				ev.Result = sw.sched.lookupResult(ev.Hash)
			}
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

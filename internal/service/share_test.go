package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"constable/internal/sim"
	"constable/internal/stats"
)

// specHash returns the canonical content hash a scheduler would file spec's
// result under.
func specHash(t testing.TB, spec JobSpec) string {
	t.Helper()
	canonical, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := canonical.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

// putEnvelope PUTs body to {srv}/v1/results/{hash} and returns the response.
func putEnvelope(t testing.TB, srvURL, hash string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, srvURL+"/v1/results/"+hash, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestResultsEndpointRoundTrip covers the read side of the cluster store:
// a miss 404s (and is counted), and once the cell has simulated the endpoint
// serves a verified envelope out of the same tiers Submit reads.
func TestResultsEndpointRoundTrip(t *testing.T) {
	srv, s := newTestServer(t, Config{Workers: 2}, countingRun(new(atomic.Uint64)))
	spec := JobSpec{Workload: testWorkload(t), Mechanism: "constable", Instructions: 5000}
	hash := specHash(t, spec)

	resp, err := http.Get(srv.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold store GET: HTTP %d, want 404", resp.StatusCode)
	}

	if _, err := s.RunSync(t.Context(), spec); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm store GET: HTTP %d, want 200", resp.StatusCode)
	}
	var env sim.ResultEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	res, err := env.Open(hash)
	if err != nil {
		t.Fatalf("served envelope failed verification: %v", err)
	}
	if res.Cycles != 5000 {
		t.Errorf("served cycles = %d, want 5000", res.Cycles)
	}
	m := s.Metrics()
	if m.StoreRemoteHits != 1 || m.StoreRemoteMisses != 1 {
		t.Errorf("remote hits/misses = %d/%d, want 1/1", m.StoreRemoteHits, m.StoreRemoteMisses)
	}
}

// TestResultsWriteBackIdempotentAndVerified covers the write side: a first
// PUT files the result (201) and answers later submissions without any
// simulation, a repeat PUT is an idempotent 200, and an envelope whose hash
// or schema fails verification is refused and counted — the server-side
// half of the alias defense.
func TestResultsWriteBackIdempotentAndVerified(t *testing.T) {
	srv, s := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()}, func(sim.Options) (*sim.RunResult, error) {
		t.Error("a written-back result was re-simulated")
		return nil, errors.New("unexpected simulation")
	})
	spec := JobSpec{Workload: testWorkload(t), Instructions: 9000}
	hash := specHash(t, spec)
	body, err := json.Marshal(sim.NewResultEnvelope(hash, &sim.RunResult{Cycles: 777}))
	if err != nil {
		t.Fatal(err)
	}

	resp := putEnvelope(t, srv.URL, hash, body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first write-back: HTTP %d, want 201", resp.StatusCode)
	}
	resp = putEnvelope(t, srv.URL, hash, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat write-back: HTTP %d, want 200", resp.StatusCode)
	}
	var ack struct {
		Dedup bool `json:"dedup"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil || !ack.Dedup {
		t.Errorf("repeat write-back ack dedup = %v (err %v), want true", ack.Dedup, err)
	}

	// The written-back result answers a submission as a cache hit; the
	// failing runFn above proves nothing simulates.
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit() || got.Cycles != 777 {
		t.Errorf("submission after write-back: cacheHit=%v cycles=%d, want true/777", j.CacheHit(), got.Cycles)
	}

	// Aliasing: the same valid envelope PUT under a different hash must be
	// refused — accepting it would file one spec's result under another's
	// content address.
	alias := strings.Repeat("ef", 32)
	resp = putEnvelope(t, srv.URL, alias, body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("aliased write-back: HTTP %d, want 400", resp.StatusCode)
	}
	if res := s.lookupResult(alias); res != nil {
		t.Error("aliased write-back was stored")
	}

	// Wrong schema version: treated as absent, refused.
	env := sim.NewResultEnvelope(hash, &sim.RunResult{Cycles: 777})
	env.Schema = 99
	b99, _ := json.Marshal(env)
	resp = putEnvelope(t, srv.URL, hash, b99)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-schema write-back: HTTP %d, want 400", resp.StatusCode)
	}

	m := s.Metrics()
	if m.StoreRemoteWritebacks != 2 || m.StoreRemoteRejected != 2 {
		t.Errorf("writebacks/rejected = %d/%d, want 2/2", m.StoreRemoteWritebacks, m.StoreRemoteRejected)
	}
}

// TestRemoteResultStoreSingleflight piles 32 concurrent Lookups for one hash
// onto a deliberately slow upstream and requires exactly one GET, with every
// caller receiving an independent copy of the result.
func TestRemoteResultStoreSingleflight(t *testing.T) {
	hash := strings.Repeat("ab", 32)
	want := fullResult()
	var gets atomic.Int32
	release := make(chan struct{})
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		<-release
		writeJSON(w, http.StatusOK, sim.NewResultEnvelope(hash, want))
	}))
	t.Cleanup(upstream.Close)

	rs := NewRemoteResultStore(upstream.URL)
	const callers = 32
	results := make([]*sim.RunResult, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = rs.Lookup(hash)
		}(i)
	}
	close(start)
	// Let the leader's GET begin, then give the rest time to pile onto the
	// in-flight call before the upstream answers.
	waitFor(t, 5*time.Second, func() bool { return gets.Load() >= 1 })
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if gets.Load() != 1 {
		t.Errorf("%d concurrent lookups issued %d GETs, want 1", callers, gets.Load())
	}
	for i := range results {
		if errs[i] != nil || results[i] == nil {
			t.Fatalf("caller %d: res=%v err=%v", i, results[i], errs[i])
		}
	}
	// Collapsed callers must not alias: vandalize one copy, check another.
	results[0].Counters["pipeline.retired"] = 999
	results[0].Cycles = 0
	if results[1].Cycles != want.Cycles || results[1].Counters["pipeline.retired"] != want.Counters["pipeline.retired"] {
		t.Error("singleflight waiters share one result document")
	}
}

// TestRemoteResultStoreNegativeCache verifies a miss (and a rejection) is
// remembered for the TTL — one GET per burst, not one per cell — and
// re-asked once the TTL lapses.
func TestRemoteResultStoreNegativeCache(t *testing.T) {
	var gets atomic.Int32
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		httpError(w, http.StatusNotFound, "no result")
	}))
	t.Cleanup(upstream.Close)

	rs := NewRemoteResultStore(upstream.URL)
	hash := strings.Repeat("cd", 32)
	for i := 0; i < 5; i++ {
		if res, err := rs.Lookup(hash); res != nil || err != nil {
			t.Fatalf("lookup %d: res=%v err=%v, want miss", i, res, err)
		}
	}
	if gets.Load() != 1 {
		t.Errorf("5 lookups within the TTL issued %d GETs, want 1", gets.Load())
	}

	rs.negTTL = time.Millisecond
	time.Sleep(5 * time.Millisecond)
	if _, err := rs.Lookup(hash); err != nil {
		t.Fatal(err)
	}
	if gets.Load() != 2 {
		t.Errorf("lookup after TTL expiry issued %d total GETs, want 2", gets.Load())
	}

	// Rejections are negative-cached the same way: a lying upstream is asked
	// once per TTL, not once per cell.
	var liarGets atomic.Int32
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liarGets.Add(1)
		writeJSON(w, http.StatusOK, sim.NewResultEnvelope(strings.Repeat("00", 32), &sim.RunResult{Cycles: 1}))
	}))
	t.Cleanup(liar.Close)
	lrs := NewRemoteResultStore(liar.URL)
	if _, err := lrs.Lookup(hash); !errors.Is(err, ErrResultRejected) {
		t.Fatalf("lying upstream error = %v, want ErrResultRejected", err)
	}
	if res, err := lrs.Lookup(hash); res != nil || err != nil {
		t.Fatalf("second lookup against liar: res=%v err=%v, want cached miss", res, err)
	}
	if liarGets.Load() != 1 {
		t.Errorf("rejection was not negative-cached: %d GETs", liarGets.Load())
	}
}

// TestParallelWriteBacksSameHash hammers one hash with concurrent PUT
// write-backs and concurrent GETs against a real handler (run under -race in
// CI): every request succeeds, and the store ends with exactly one entry.
func TestParallelWriteBacksSameHash(t *testing.T) {
	srv, s := newTestServer(t, Config{Workers: -1, WorkerTTL: time.Hour, DataDir: t.TempDir()}, nil)
	spec := JobSpec{Workload: testWorkload(t), Instructions: 31_337}
	hash := specHash(t, spec)
	res := fullResult()

	const writers, readers = 16, 16
	var wg sync.WaitGroup
	var putFailures, getFailures atomic.Int32
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Independent RemoteResultStores: parallel worker processes, not
			// one store's serialized client.
			if err := NewRemoteResultStore(srv.URL).WriteBack(hash, res); err != nil {
				putFailures.Add(1)
				t.Log(err)
			}
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A reader may race ahead of the first PUT (miss) but must never
			// see an error or an unverifiable envelope.
			r, err := NewRemoteResultStore(srv.URL).Lookup(hash)
			if err != nil {
				getFailures.Add(1)
				t.Log(err)
			}
			if r != nil && r.Cycles != res.Cycles {
				getFailures.Add(1)
				t.Logf("reader saw cycles %d, want %d", r.Cycles, res.Cycles)
			}
		}()
	}
	wg.Wait()
	if putFailures.Load() != 0 || getFailures.Load() != 0 {
		t.Fatalf("put/get failures = %d/%d, want 0/0", putFailures.Load(), getFailures.Load())
	}
	if n := s.store.Len(); n != 1 {
		t.Errorf("store entries after %d same-hash write-backs = %d, want 1", writers, n)
	}
	if m := s.Metrics(); m.StoreRemoteWritebacks != writers {
		t.Errorf("writebacks = %d, want %d", m.StoreRemoteWritebacks, writers)
	}
	// The filed result still round-trips through a submission.
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(t.Context())
	if err != nil || !j.CacheHit() || got.Cycles != res.Cycles {
		t.Errorf("post-race submission: cycles=%v cacheHit=%v err=%v", got, j.CacheHit(), err)
	}
}

// TestDispatchShortCircuitOnWriteBack pins the dispatch-time short-circuit:
// a result that lands (via write-back) while its job sits queued completes
// the job at dispatch without reaching a backend — counted as completed but
// not executed, so the global dedup ratio sees it.
func TestDispatchShortCircuitOnWriteBack(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(openGate)
	var ran atomic.Uint64
	srv, s := newTestServer(t, Config{Workers: 1}, func(o sim.Options) (*sim.RunResult, error) {
		ran.Add(1)
		if o.Instructions == 1000 {
			<-gate
		}
		return &sim.RunResult{Cycles: o.Instructions}, nil
	})
	name := testWorkload(t)

	ja, err := s.Submit(JobSpec{Workload: name, Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Job A holds the only slot; B queues behind it.
	waitFor(t, 5*time.Second, func() bool { return s.Running() == 1 })
	specB := JobSpec{Workload: name, Instructions: 2000}
	jb, err := s.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}

	// B's result arrives from elsewhere in the cluster while B is queued.
	hashB := specHash(t, specB)
	body, _ := json.Marshal(sim.NewResultEnvelope(hashB, &sim.RunResult{Cycles: 4242}))
	resp := putEnvelope(t, srv.URL, hashB, body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("write-back: HTTP %d, want 201", resp.StatusCode)
	}

	openGate()
	resB, err := jb.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !jb.CacheHit() {
		t.Error("short-circuited job not marked as a cache hit")
	}
	if resB.Cycles != 4242 {
		t.Errorf("short-circuited job cycles = %d, want 4242 (the written-back result)", resB.Cycles)
	}
	if _, err := ja.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Errorf("simulations run = %d, want 1 (only job A)", ran.Load())
	}
	m := s.Metrics()
	if m.JobsCompleted != 2 || m.JobsExecuted != 1 {
		t.Errorf("completed/executed = %d/%d, want 2/1", m.JobsCompleted, m.JobsExecuted)
	}
	if m.GlobalDedupRatio != 0.5 {
		t.Errorf("global dedup ratio = %v, want 0.5", m.GlobalDedupRatio)
	}
}

// TestRemoteHitPromotionIsolation is the cache-aliasing regression test for
// the remote-hit path, mirroring TestStoreHitResultIsolation: a result
// adopted from the cluster share is promoted into the local LRU as an
// independent clone, so a caller vandalizing its copy cannot corrupt what
// later submissions observe — and the later submissions come from the local
// LRU, not another network round trip.
func TestRemoteHitPromotionIsolation(t *testing.T) {
	name := testWorkload(t)
	spec := JobSpec{Workload: name, Instructions: 12345}
	rich := func(o sim.Options) (*sim.RunResult, error) {
		return &sim.RunResult{
			Cycles:   o.Instructions,
			Counters: stats.Snapshot{"pipeline.retired": 42},
			Mechanisms: []sim.MechanismStats{
				{Name: "constable", Counters: stats.Snapshot{"constable.eliminated": 7}},
			},
		}, nil
	}
	upstreamSrv, upstream := newTestServer(t, Config{Workers: 1}, rich)
	if _, err := upstream.RunSync(t.Context(), spec); err != nil {
		t.Fatal(err)
	}

	s, err := Open(Config{Workers: 1, Share: NewRemoteResultStore(upstreamSrv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.runFn = func(sim.Options) (*sim.RunResult, error) {
		return nil, errors.New("remote hit expected; nothing should simulate")
	}

	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit() {
		t.Fatal("expected a remote share hit")
	}

	// Vandalize every mutable layer of the caller's copy.
	got.Cycles = 0
	got.Counters["pipeline.retired"] = 999
	got.Mechanisms[0].Counters["constable.eliminated"] = 999

	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := j2.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if got2.Cycles != 12345 || got2.Counters["pipeline.retired"] != 42 ||
		got2.Mechanisms[0].Counters["constable.eliminated"] != 7 {
		t.Errorf("promoted result corrupted by a caller's mutation: %+v", got2)
	}

	m := s.Metrics()
	if m.StoreRemoteHits != 1 {
		t.Errorf("consumer remote hits = %d, want 1 (resubmit must come from the LRU)", m.StoreRemoteHits)
	}
	if m.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1 (the promoted entry)", m.CacheHits)
	}
	if um := upstream.Metrics(); um.StoreRemoteHits != 1 {
		t.Errorf("upstream served %d GETs, want 1", um.StoreRemoteHits)
	}
}

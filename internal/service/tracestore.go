package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"constable/internal/workload"
)

// ErrTraceUnavailable marks a trace-referenced job whose trace bytes could
// not be produced: not in the local store and either no fetch path or the
// fetch failed. Worker handlers map it to a requeue (the server may still
// have the trace; another worker or the local pool can run the job), not a
// terminal job failure.
var ErrTraceUnavailable = errors.New("trace unavailable")

// TraceFetchFunc retrieves raw trace bytes by content hash from elsewhere —
// workers install one that downloads from the server. The returned bytes are
// verified against the requested hash before use, so a fetch path cannot
// inject a different stream than the one the job's content hash pinned.
type TraceFetchFunc func(hash string) ([]byte, error)

// TraceInfo describes one stored trace.
type TraceInfo struct {
	// Hash is the sha256 of the raw trace bytes; Name is the workload
	// reference ("trace:<hash>") accepted by job and sweep specs.
	Hash string `json:"hash"`
	Name string `json:"name"`
	// Bytes is the encoded size on disk/in memory.
	Bytes int64 `json:"bytes"`
	// Instructions, Loads and Stores summarize the decoded stream.
	Instructions uint64 `json:"instructions"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	// UploadedAt is when this store first saw the trace (UTC). Zero for
	// entries installed by a fetch rather than an upload.
	UploadedAt time.Time `json:"uploaded_at,omitzero"`
}

// traceSpecCacheSize bounds how many resolved trace-backed workload Specs
// stay pinned in memory. Each resolved Spec holds the full decoded trace
// bytes, so this is a real memory bound, not a tuning nicety.
const traceSpecCacheSize = 8

// traceStore is the content-addressed trace blob store: raw trace streams
// keyed by their sha256, sharded on disk as dir/<hash[:2]>/<hash>.trace with
// a <hash>.json metadata sidecar, written via temp file + atomic rename —
// the same durability discipline as the result store. With an empty dir the
// store is memory-only (workers, tests). Every byte path is hash-verified:
// uploads are fully decoded and validated before acceptance, loads and
// fetches recompute the sha256 against the requested key, so a corrupt or
// aliased blob can never reach the timing model.
type traceStore struct {
	dir   string // "" = memory-only
	fetch TraceFetchFunc

	mu    sync.Mutex
	mem   map[string][]byte    // blobs, memory-only mode
	meta  map[string]TraceInfo // index of stored traces
	specs map[string]*workload.Spec
	order []string // specs insertion order, oldest first
	// fetchOrder tracks fetch-installed entries in a memory-only store
	// (oldest first) so a long-lived worker's cache of server traces stays
	// bounded. Direct uploads are never evicted — on a worker they don't
	// happen, and on a memory-only server they are the user's data.
	fetchOrder []string

	uploaded, deduped, fetched, deleted, corrupt atomic.Uint64
}

// newTraceStore opens a store rooted at dir (memory-only when dir is empty),
// sweeping orphaned temp files and rebuilding the metadata index from the
// sidecars of prior runs.
func newTraceStore(dir string, fetch TraceFetchFunc) (*traceStore, error) {
	ts := &traceStore{
		dir:   dir,
		fetch: fetch,
		mem:   make(map[string][]byte),
		meta:  make(map[string]TraceInfo),
		specs: make(map[string]*workload.Spec),
	}
	if dir == "" {
		return ts, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: trace store: %w", err)
	}
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".") && strings.Contains(d.Name(), ".tmp") {
			os.Remove(path)
			return nil
		}
		if filepath.Ext(path) != ".json" {
			return nil
		}
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil
		}
		var info TraceInfo
		if json.Unmarshal(b, &info) != nil || info.Hash == "" ||
			strings.TrimSuffix(d.Name(), ".json") != info.Hash {
			ts.corrupt.Add(1)
			return nil
		}
		ts.meta[info.Hash] = info
		return nil
	})
	return ts, nil
}

func (ts *traceStore) blobPath(hash string) string {
	shard := "xx"
	if len(hash) >= 2 {
		shard = hash[:2]
	}
	return filepath.Join(ts.dir, shard, hash+".trace")
}

func (ts *traceStore) metaPath(hash string) string {
	return strings.TrimSuffix(ts.blobPath(hash), ".trace") + ".json"
}

// Put validates data as a trace stream and stores it under its content
// hash. Re-uploading an already-stored trace is an idempotent no-op:
// existed reports true and the original metadata is returned unchanged.
func (ts *traceStore) Put(data []byte) (TraceInfo, bool, error) {
	spec, err := workload.FromTraceBytes(data)
	if err != nil {
		return TraceInfo{}, false, err
	}
	hash, _ := workload.TraceHash(spec.Name)
	loads, stores := spec.TraceCounts()

	ts.mu.Lock()
	defer ts.mu.Unlock()
	if info, ok := ts.meta[hash]; ok {
		ts.deduped.Add(1)
		return info, true, nil
	}
	info := TraceInfo{
		Hash:         hash,
		Name:         spec.Name,
		Bytes:        int64(len(data)),
		Instructions: spec.TraceInstructions(),
		Loads:        loads,
		Stores:       stores,
		UploadedAt:   time.Now().UTC().Truncate(time.Second),
	}
	if err := ts.persistLocked(hash, data, info); err != nil {
		return TraceInfo{}, false, err
	}
	ts.meta[hash] = info
	ts.cacheSpecLocked(hash, spec)
	ts.uploaded.Add(1)
	return info, false, nil
}

// persistLocked stores the blob and its metadata sidecar. Blob first: a
// crash between the two writes leaves a blob without an index entry (swept
// as unreferenced on the next corrupt read), never an index entry whose
// blob is missing.
func (ts *traceStore) persistLocked(hash string, data []byte, info TraceInfo) error {
	if ts.dir == "" {
		ts.mem[hash] = data
		return nil
	}
	if err := writeFileAtomic(ts.blobPath(hash), data); err != nil {
		return fmt.Errorf("service: trace store write %s: %w", hash, err)
	}
	mb, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("service: trace store encode %s: %w", hash, err)
	}
	if err := writeFileAtomic(ts.metaPath(hash), mb); err != nil {
		return fmt.Errorf("service: trace store write %s: %w", hash, err)
	}
	return nil
}

// writeFileAtomic writes data to path via a temp file in the destination
// directory and an atomic rename.
func writeFileAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Get returns the raw bytes of a locally-stored trace, re-verifying the
// content hash so bit rot or an aliased file (copied across shards) is
// rejected rather than served. It does not consult the fetch path.
func (ts *traceStore) Get(hash string) ([]byte, error) {
	ts.mu.Lock()
	_, known := ts.meta[hash]
	data, inMem := ts.mem[hash]
	ts.mu.Unlock()

	if ts.dir == "" {
		if !inMem {
			return nil, fmt.Errorf("service: trace %s not in store: %w", hash, ErrTraceUnavailable)
		}
	} else {
		if !known {
			return nil, fmt.Errorf("service: trace %s not in store: %w", hash, ErrTraceUnavailable)
		}
		var err error
		if data, err = os.ReadFile(ts.blobPath(hash)); err != nil {
			ts.corrupt.Add(1)
			return nil, fmt.Errorf("service: trace %s blob unreadable: %w", hash, ErrTraceUnavailable)
		}
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != hash {
		ts.corrupt.Add(1)
		return nil, fmt.Errorf("service: trace %s blob corrupt (content hash mismatch): %w", hash, ErrTraceUnavailable)
	}
	ts.fetched.Add(1)
	return data, nil
}

// Resolve returns the trace-backed workload Spec for hash, decoding from
// the local store or, failing that, through the fetch path. Fetched bytes
// are verified against the requested hash — envelope-style alias defense —
// and installed locally so repeated jobs against the same trace decode once.
func (ts *traceStore) Resolve(hash string) (*workload.Spec, error) {
	ts.mu.Lock()
	if spec, ok := ts.specs[hash]; ok {
		ts.mu.Unlock()
		return spec, nil
	}
	ts.mu.Unlock()

	data, err := ts.Get(hash)
	if err != nil {
		if ts.fetch == nil {
			return nil, err
		}
		data, err = ts.fetch(hash)
		if err != nil {
			return nil, fmt.Errorf("service: trace %s fetch: %v: %w", hash, err, ErrTraceUnavailable)
		}
	}
	spec, err := workload.FromTraceBytes(data)
	if err != nil {
		ts.corrupt.Add(1)
		return nil, fmt.Errorf("service: trace %s: %v: %w", hash, err, ErrTraceUnavailable)
	}
	if got, _ := workload.TraceHash(spec.Name); got != hash {
		// The bytes decode fine but are not the stream the job's content
		// hash pinned — a lying or confused fetch source. Reject.
		ts.corrupt.Add(1)
		return nil, fmt.Errorf("service: trace fetch returned %s, want %s: %w", got, hash, ErrTraceUnavailable)
	}

	ts.mu.Lock()
	defer ts.mu.Unlock()
	if cached, ok := ts.specs[hash]; ok { // raced with another resolver
		return cached, nil
	}
	if _, ok := ts.meta[hash]; !ok {
		loads, stores := spec.TraceCounts()
		info := TraceInfo{
			Hash: hash, Name: spec.Name, Bytes: int64(len(data)),
			Instructions: spec.TraceInstructions(), Loads: loads, Stores: stores,
		}
		if err := ts.persistLocked(hash, data, info); err == nil {
			ts.meta[hash] = info
			if ts.dir == "" {
				ts.fetchOrder = append(ts.fetchOrder, hash)
				for len(ts.fetchOrder) > 2*traceSpecCacheSize {
					old := ts.fetchOrder[0]
					ts.fetchOrder = ts.fetchOrder[1:]
					delete(ts.mem, old)
					delete(ts.meta, old)
				}
			}
		}
	}
	ts.cacheSpecLocked(hash, spec)
	return spec, nil
}

// cacheSpecLocked pins a resolved Spec, evicting the oldest beyond the cap.
func (ts *traceStore) cacheSpecLocked(hash string, spec *workload.Spec) {
	if _, ok := ts.specs[hash]; ok {
		return
	}
	ts.specs[hash] = spec
	ts.order = append(ts.order, hash)
	for len(ts.order) > traceSpecCacheSize {
		delete(ts.specs, ts.order[0])
		ts.order = ts.order[1:]
	}
}

// List returns all stored traces, newest upload first (ties by hash).
func (ts *traceStore) List() []TraceInfo {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceInfo, 0, len(ts.meta))
	for _, info := range ts.meta {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].UploadedAt.Equal(out[j].UploadedAt) {
			return out[i].UploadedAt.After(out[j].UploadedAt)
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// Info returns the metadata for one stored trace.
func (ts *traceStore) Info(hash string) (TraceInfo, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	info, ok := ts.meta[hash]
	return info, ok
}

// Delete removes a stored trace. It reports whether the trace existed.
func (ts *traceStore) Delete(hash string) (bool, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.meta[hash]; !ok {
		if _, inMem := ts.mem[hash]; !inMem {
			return false, nil
		}
	}
	delete(ts.mem, hash)
	delete(ts.meta, hash)
	if _, ok := ts.specs[hash]; ok {
		delete(ts.specs, hash)
		for i, h := range ts.order {
			if h == hash {
				ts.order = append(ts.order[:i], ts.order[i+1:]...)
				break
			}
		}
	}
	if ts.dir != "" {
		if err := os.Remove(ts.blobPath(hash)); err != nil && !os.IsNotExist(err) {
			return true, fmt.Errorf("service: trace store delete %s: %w", hash, err)
		}
		if err := os.Remove(ts.metaPath(hash)); err != nil && !os.IsNotExist(err) {
			return true, fmt.Errorf("service: trace store delete %s: %w", hash, err)
		}
	}
	ts.deleted.Add(1)
	return true, nil
}

// traceStoreStats is a point-in-time view of the store's counters.
type traceStoreStats struct {
	uploaded, deduped, fetched, deleted, corrupt uint64
	stored                                       int
	bytes                                        int64
}

func (ts *traceStore) Stats() traceStoreStats {
	st := traceStoreStats{
		uploaded: ts.uploaded.Load(),
		deduped:  ts.deduped.Load(),
		fetched:  ts.fetched.Load(),
		deleted:  ts.deleted.Load(),
		corrupt:  ts.corrupt.Load(),
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st.stored = len(ts.meta)
	for _, info := range ts.meta {
		st.bytes += info.Bytes
	}
	return st
}

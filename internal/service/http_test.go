package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"constable/internal/sim"
)

func newTestServer(t *testing.T, cfg Config, fn func(sim.Options) (*sim.RunResult, error)) (*httptest.Server, *Scheduler) {
	t.Helper()
	var s *Scheduler
	if fn != nil {
		s = newStubScheduler(t, cfg, fn)
	} else {
		s = New(cfg)
		t.Cleanup(func() { s.Close() })
	}
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	return srv, s
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAPISubmitPollResult(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2}, countingRun(new(atomic.Uint64)))
	spec := JobSpec{Workload: testWorkload(t), Mechanism: "constable", Instructions: 5000}

	resp := postJSON(t, srv.URL+"/v1/runs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.ID == "" || job.Hash == "" {
		t.Fatalf("submit response missing id/hash: %+v", job)
	}

	// Poll until done.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/runs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", r.StatusCode)
		}
		job = decodeJob(t, r)
		if job.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in status %s", job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.Result == nil || job.Result.Cycles != 5000 {
		t.Errorf("result = %+v, want cycles 5000 from stub", job.Result)
	}
}

func TestAPIResultEndpoint(t *testing.T) {
	// A real scheduler (no stub), so the result document carries the full
	// RunResult schema: identity, config digest, counters, mechanisms.
	srv, _ := newTestServer(t, Config{Workers: 2}, nil)
	spec := JobSpec{Workload: testWorkload(t), Mechanism: "constable", Instructions: 3000}

	job := decodeJob(t, postJSON(t, srv.URL+"/v1/runs?wait=1", spec))
	if job.Status != StatusDone {
		t.Fatalf("job not done: %+v", job)
	}

	r, err := http.Get(srv.URL + "/v1/runs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result status %d, want 200", r.StatusCode)
	}
	var res sim.RunResult
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Identity.Workload != spec.Workload || res.Identity.Mechanism != "constable" {
		t.Errorf("identity = %+v", res.Identity)
	}
	if res.ConfigDigest == "" || res.Cycles == 0 {
		t.Errorf("digest %q cycles %d", res.ConfigDigest, res.Cycles)
	}
	if res.Counters.Get("pipeline.retired") == 0 {
		t.Errorf("counter snapshot missing pipeline.retired: %v", res.Counters.Names())
	}
	found := false
	for _, m := range res.Mechanisms {
		if m.Name == "constable" && len(m.Counters) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("per-mechanism breakdown missing constable: %+v", res.Mechanisms)
	}

	if r, err = http.Get(srv.URL + "/v1/runs/job-999/result"); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: status %d, want 404", r.StatusCode)
	}
}

func TestAPIResultNotReady(t *testing.T) {
	gate := make(chan struct{})
	srv, _ := newTestServer(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{}, nil
	})
	defer close(gate)

	job := decodeJob(t, postJSON(t, srv.URL+"/v1/runs",
		JobSpec{Workload: testWorkload(t), Instructions: 1000}))
	r, err := http.Get(srv.URL + "/v1/runs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("unfinished result: status %d, want 409", r.StatusCode)
	}
}

func TestAPIWaitAndCacheHitViaMetrics(t *testing.T) {
	var calls atomic.Uint64
	srv, _ := newTestServer(t, Config{Workers: 2}, countingRun(&calls))
	spec := JobSpec{Workload: testWorkload(t), Mechanism: "constable", Instructions: 7000}

	// First submission simulates; second is a cache hit. Both return the
	// same result and only one simulation ran.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, srv.URL+"/v1/runs?wait=1", spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d, want 200", i, resp.StatusCode)
		}
		job := decodeJob(t, resp)
		if job.Status != StatusDone || job.Result == nil {
			t.Fatalf("submit %d: job not done: %+v", i, job)
		}
		if i == 1 && !job.CacheHit {
			t.Error("second identical submission was not marked cache_hit")
		}
	}
	if calls.Load() != 1 {
		t.Errorf("two identical submissions ran %d simulations, want 1", calls.Load())
	}

	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	metrics := buf.String()
	for _, want := range []string{
		"constable_jobs_submitted_total 2",
		"constable_jobs_completed_total 1",
		"constable_cache_hits_total 1",
		"constable_cache_hit_rate 0.5",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestAPIBatch(t *testing.T) {
	var calls atomic.Uint64
	srv, sched := newTestServer(t, Config{Workers: 4}, countingRun(&calls))
	name := testWorkload(t)

	specs := []JobSpec{
		{Workload: name, Mechanism: "baseline", Instructions: 3000},
		{Workload: name, Mechanism: "constable", Instructions: 3000},
		{Workload: name, Mechanism: "baseline", Instructions: 3000}, // duplicate of [0]
	}
	resp := postJSON(t, srv.URL+"/v1/runs/batch", specs)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d, want 202", resp.StatusCode)
	}
	defer resp.Body.Close()
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("batch returned %d jobs, want 3", len(views))
	}
	// The duplicate either shares the original's job (in-flight dedup) or is
	// a cache hit; either way the hashes match and only two sims run.
	if views[0].Hash != views[2].Hash {
		t.Error("duplicate specs in one batch hashed differently")
	}
	for _, v := range views {
		j, ok := sched.Get(v.ID)
		if !ok {
			t.Fatalf("job %s not found", v.ID)
		}
		if _, err := j.Wait(t.Context()); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("batch of 3 (one duplicate) ran %d simulations, want 2", calls.Load())
	}
}

func TestAPIBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1}, countingRun(new(atomic.Uint64)))
	name := testWorkload(t)

	for _, tc := range []struct {
		name string
		do   func() *http.Response
	}{
		{"malformed JSON", func() *http.Response {
			r, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader("{nope"))
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
		{"unknown workload", func() *http.Response {
			return postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: "no-such-workload"})
		}},
		{"unknown mechanism", func() *http.Response {
			return postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Mechanism: "warp-drive"})
		}},
		{"bad thread count", func() *http.Response {
			return postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Threads: 5})
		}},
		{"empty batch", func() *http.Response {
			return postJSON(t, srv.URL+"/v1/runs/batch", []JobSpec{})
		}},
	} {
		resp := tc.do()
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	r, err := http.Get(srv.URL + "/v1/runs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
}

func TestAPIWorkloadsAndMechanisms(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1}, countingRun(new(atomic.Uint64)))

	r, err := http.Get(srv.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var wls []struct{ Name, Category string }
	if err := json.NewDecoder(r.Body).Decode(&wls); err != nil {
		t.Fatal(err)
	}
	if len(wls) != 90 {
		t.Errorf("listed %d workloads, want 90", len(wls))
	}

	r2, err := http.Get(srv.URL + "/v1/mechanisms")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var mechs struct {
		Presets []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"presets"`
		Axes []struct {
			Name     string `json:"name"`
			Default  string `json:"default"`
			Variants []struct {
				Name        string `json:"name"`
				Description string `json:"description"`
			} `json:"variants"`
			Params []struct {
				Name        string `json:"name"`
				Description string `json:"description"`
			} `json:"params"`
		} `json:"axes"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&mechs); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(mechs.Presets))
	for i, m := range mechs.Presets {
		names[i] = m.Name
		if m.Description == "" {
			t.Errorf("mechanism %q has no description", m.Name)
		}
	}
	if fmt.Sprint(names) != fmt.Sprint(MechanismNames()) {
		t.Errorf("mechanisms = %v, want %v", names, MechanismNames())
	}
	if len(mechs.Axes) != 3 {
		t.Fatalf("axes = %d, want 3", len(mechs.Axes))
	}
	for _, a := range mechs.Axes {
		if a.Default == "" || len(a.Variants) < 2 || len(a.Params) == 0 {
			t.Errorf("axis %q incomplete: %+v", a.Name, a)
		}
		for _, p := range a.Params {
			if p.Description == "" {
				t.Errorf("axis %q param %q has no description", a.Name, p.Name)
			}
		}
	}
}

// TestAPIWaitDisconnectCancelsSoleWaiter is the regression test for the
// abandoned-job bug: a ?wait=1 client that disconnects while its job is
// queued was leaving the job to simulate with no waiter. The sole-waiter
// job must now be canceled; a job shared with another submitter must keep
// running.
func TestAPIWaitDisconnectCancelsSoleWaiter(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	srv, sched := newTestServer(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{}, nil
	})
	name := testWorkload(t)

	// Wedge the single worker so everything else stays queued.
	blocker := decodeJob(t, postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Instructions: 1000}))
	waitFor(t, 5*time.Second, func() bool {
		j, ok := sched.Get(blocker.ID)
		return ok && j.Status() == StatusRunning
	})

	// Sole waiter: submit via ?wait=1 only, then drop the connection.
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(JobSpec{Workload: name, Instructions: 2000})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/runs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return sched.QueueDepth() == 1 })
	cancel()
	<-errc
	waitFor(t, 5*time.Second, func() bool {
		m := sched.Metrics()
		return m.JobsCanceled == 1 && m.QueueDepth == 0
	})

	// Shared job: an async submitter holds interest, so a disconnecting
	// ?wait=1 duplicate must NOT cancel it.
	shared := decodeJob(t, postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Instructions: 3000}))
	ctx2, cancel2 := context.WithCancel(context.Background())
	body2, _ := json.Marshal(JobSpec{Workload: name, Instructions: 3000})
	req2, err := http.NewRequestWithContext(ctx2, http.MethodPost, srv.URL+"/v1/runs?wait=1", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.DefaultClient.Do(req2)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return sched.Metrics().JobsDeduped == 1 })
	cancel2()
	<-errc
	time.Sleep(20 * time.Millisecond) // give a buggy cancellation time to land
	j, ok := sched.Get(shared.ID)
	if !ok || j.Status() != StatusQueued {
		t.Errorf("shared job status after duplicate waiter disconnected: %v (want queued)", j.Status())
	}
	if m := sched.Metrics(); m.JobsCanceled != 1 {
		t.Errorf("jobs canceled = %d, want 1 (shared job must survive)", m.JobsCanceled)
	}
}

func TestAPISweepLifecycle(t *testing.T) {
	var calls atomic.Uint64
	srv, _ := newTestServer(t, Config{Workers: 2}, countingRun(&calls))
	name := testWorkload(t)

	resp := postJSON(t, srv.URL+"/v1/sweeps", SweepRequest{
		Workloads:  []string{name},
		Mechanisms: []string{"baseline", "constable"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit status %d, want 202", resp.StatusCode)
	}
	var view SweepView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.ID == "" || view.Total != 2 {
		t.Fatalf("sweep view %+v, want id and 2 cells", view)
	}

	// The event stream replays all cells and ends with the terminal view.
	r, err := http.Get(srv.URL + "/v1/sweeps/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var cells, finals int
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		var line sweepStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Cell != nil:
			cells++
			if line.Cell.Status != StatusDone {
				t.Errorf("cell (%d,%d) status %s", line.Cell.Row, line.Cell.Col, line.Cell.Status)
			}
			if line.Cell.Result != nil {
				t.Error("event stream embedded results without ?results=1")
			}
		case line.Sweep != nil:
			finals++
			if line.Sweep.Status != SweepDone {
				t.Errorf("final line status %s, want done", line.Sweep.Status)
			}
		}
	}
	if cells != 2 || finals != 1 {
		t.Errorf("stream had %d cell lines and %d final lines, want 2 and 1", cells, finals)
	}

	// ?results=1 embeds each cell's RunResult.
	r2, err := http.Get(srv.URL + "/v1/sweeps/" + view.ID + "/events?results=1")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	sc = bufio.NewScanner(r2.Body)
	for sc.Scan() {
		var line sweepStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Cell != nil && line.Cell.Result == nil {
			t.Error("?results=1 stream omitted a cell result")
		}
	}

	// Poll endpoint agrees.
	r3, err := http.Get(srv.URL + "/v1/sweeps/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if err := json.NewDecoder(r3.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Status != SweepDone || view.Completed != 2 {
		t.Errorf("poll view %+v, want done/2", view)
	}

	// Bad requests.
	for _, body := range []any{SweepRequest{}, SweepRequest{Workloads: []string{"nope"}, Mechanisms: []string{"baseline"}}} {
		resp := postJSON(t, srv.URL+"/v1/sweeps", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("invalid sweep %+v: status %d, want 400", body, resp.StatusCode)
		}
	}
	if r, err := http.Get(srv.URL + "/v1/sweeps/sweep-999"); err == nil {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("unknown sweep: status %d, want 404", r.StatusCode)
		}
	}
}

// TestAPISweepStreamsBeforeFinish is the acceptance criterion that
// GET /v1/sweeps/{id}/events delivers cells while the sweep is still
// running — no full-matrix barrier in front of the stream.
func TestAPISweepStreamsBeforeFinish(t *testing.T) {
	gate := make(chan struct{})
	var started atomic.Uint64
	srv, sched := newTestServer(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		if started.Add(1) >= 2 {
			<-gate // every cell after the first wedges until released
		}
		return &sim.RunResult{Cycles: opts.Instructions}, nil
	})
	name := testWorkload(t)

	resp := postJSON(t, srv.URL+"/v1/sweeps", SweepRequest{
		Workloads:  []string{name},
		Mechanisms: []string{"baseline", "eves", "constable"},
	})
	var view SweepView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	r, err := http.Get(srv.URL + "/v1/sweeps/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	if !sc.Scan() {
		t.Fatal("stream closed before the first cell")
	}
	var first sweepStreamLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Cell == nil || first.Cell.Status != StatusDone {
		t.Fatalf("first streamed line %+v, want a done cell", first)
	}
	// The cell arrived while the sweep is verifiably still running.
	sw, ok := sched.GetSweep(view.ID)
	if !ok {
		t.Fatal("sweep vanished")
	}
	if sw.Status() != SweepRunning {
		t.Errorf("sweep status %s when the first cell streamed, want running", sw.Status())
	}

	close(gate)
	var lines int
	for sc.Scan() {
		lines++
	}
	if lines != 3 { // two remaining cells + final sweep line
		t.Errorf("read %d lines after release, want 3", lines)
	}
	if sw.Status() != SweepDone {
		t.Errorf("final sweep status %s, want done", sw.Status())
	}
}

func TestAPISweepCancel(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	srv, sched := newTestServer(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{}, nil
	})
	name := testWorkload(t)

	resp := postJSON(t, srv.URL+"/v1/sweeps", SweepRequest{
		Workloads:  []string{name},
		Mechanisms: []string{"baseline", "eves", "constable"},
	})
	var view SweepView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+view.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", dresp.StatusCode)
	}
	sw, _ := sched.GetSweep(view.ID)
	select {
	case <-sw.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("canceled sweep never drained")
	}
	if sw.Status() != SweepCanceled {
		t.Errorf("status %s, want canceled", sw.Status())
	}
	if depth := sched.QueueDepth(); depth != 0 {
		t.Errorf("queue depth %d after sweep cancel, want 0", depth)
	}
}

func TestAPICancel(t *testing.T) {
	gate := make(chan struct{})
	srv, _ := newTestServer(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{}, nil
	})
	defer close(gate)
	name := testWorkload(t)

	blocker := decodeJob(t, postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Instructions: 1000}))
	victim := decodeJob(t, postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Instructions: 2000}))

	// Wait for the blocker to occupy the single worker, so the victim is
	// deterministically queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/runs/" + blocker.ID)
		if err != nil {
			t.Fatal(err)
		}
		if decodeJob(t, r).Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+victim.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	v := decodeJob(t, resp)
	if resp.StatusCode != http.StatusOK || v.Status != StatusCanceled {
		t.Errorf("cancel: status %d job %+v, want 200/canceled", resp.StatusCode, v)
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"constable/internal/fsim"
	"constable/internal/trace"
	"constable/internal/workload"
)

// testTraceBytes captures n instructions of a small suite workload as a
// serialized trace.
func testTraceBytes(t *testing.T, n uint64) []byte {
	t.Helper()
	spec := workload.SmallSuite()[0]
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Capture(&buf, fsim.NewStream(cpu, n), n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceStoreMemoryLifecycle(t *testing.T) {
	ts, err := newTraceStore("", nil)
	if err != nil {
		t.Fatal(err)
	}
	data := testTraceBytes(t, 500)

	info, existed, err := ts.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Fatal("first Put reported existed")
	}
	if info.Instructions != 500 || info.Bytes != int64(len(data)) {
		t.Fatalf("info = %+v", info)
	}
	if info.UploadedAt.IsZero() {
		t.Error("upload must stamp UploadedAt")
	}

	// Re-upload dedups: same metadata, existed=true, counter bumped.
	again, existed, err := ts.Put(append([]byte{}, data...))
	if err != nil {
		t.Fatal(err)
	}
	if !existed || again != info {
		t.Fatalf("re-Put: existed=%v info=%+v, want dedup of %+v", existed, again, info)
	}
	if st := ts.Stats(); st.uploaded != 1 || st.deduped != 1 || st.stored != 1 {
		t.Fatalf("stats = %+v", st)
	}

	got, err := ts.Get(info.Hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get: %v (equal=%v)", err, bytes.Equal(got, data))
	}
	if _, err := ts.Get(strings.Repeat("00", 32)); !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("Get unknown: %v, want ErrTraceUnavailable", err)
	}

	spec, err := ts.Resolve(info.Hash)
	if err != nil || spec.Name != info.Name {
		t.Fatalf("Resolve: %v (name %q)", err, spec.Name)
	}

	existedDel, err := ts.Delete(info.Hash)
	if err != nil || !existedDel {
		t.Fatalf("Delete: existed=%v err=%v", existedDel, err)
	}
	if _, err := ts.Get(info.Hash); !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("Get after delete: %v", err)
	}
	if existedDel, err := ts.Delete(info.Hash); err != nil || existedDel {
		t.Fatalf("second Delete: existed=%v err=%v", existedDel, err)
	}
}

func TestTraceStoreRejectsInvalidBytes(t *testing.T) {
	ts, _ := newTraceStore("", nil)
	for name, bad := range map[string][]byte{
		"empty":     nil,
		"garbage":   []byte("not a trace at all"),
		"truncated": testTraceBytes(t, 100)[:20],
	} {
		if _, _, err := ts.Put(bad); err == nil {
			t.Errorf("%s: Put accepted invalid bytes", name)
		}
	}
}

func TestTraceStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	data := testTraceBytes(t, 400)

	ts1, err := newTraceStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := ts1.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// Drop an orphaned temp file; reopening must sweep it.
	orphan := ts1.blobPath(info.Hash) + ".orphan"
	os.WriteFile(strings.TrimSuffix(orphan, ".orphan")+".tmp123", []byte("junk"), 0o644)
	os.Rename(strings.TrimSuffix(orphan, ".orphan")+".tmp123",
		ts1.blobPath(info.Hash)[:len(ts1.blobPath(info.Hash))-len(info.Hash+".trace")]+"."+info.Hash+".trace.tmp123")

	ts2, err := newTraceStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ts2.Info(info.Hash)
	if !ok || got != info {
		t.Fatalf("reopened store lost metadata: ok=%v %+v vs %+v", ok, got, info)
	}
	b, err := ts2.Get(info.Hash)
	if err != nil || !bytes.Equal(b, data) {
		t.Fatalf("reopened Get: %v", err)
	}
	if spec, err := ts2.Resolve(info.Hash); err != nil || spec.TraceInstructions() != 400 {
		t.Fatalf("reopened Resolve: %v", err)
	}
	// Dedup works against the rebuilt index too.
	if _, existed, err := ts2.Put(data); err != nil || !existed {
		t.Fatalf("reopened Put: existed=%v err=%v", existed, err)
	}
}

func TestTraceStoreCorruptBlobRejected(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTraceStore(dir, nil)
	info, _, err := ts.Put(testTraceBytes(t, 300))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the stored blob: the content hash no longer matches.
	path := ts.blobPath(info.Hash)
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Get(info.Hash); !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("Get of corrupt blob: %v, want ErrTraceUnavailable", err)
	}
	if st := ts.Stats(); st.corrupt == 0 {
		t.Error("corruption not counted")
	}
}

func TestTraceStoreFetchVerifiesHash(t *testing.T) {
	right := testTraceBytes(t, 200)
	wrong := testTraceBytes(t, 201) // valid trace, different content hash
	rightSpec, err := workload.FromTraceBytes(append([]byte{}, right...))
	if err != nil {
		t.Fatal(err)
	}
	rightHash, _ := workload.TraceHash(rightSpec.Name)

	// A fetch source that returns different (but well-formed) bytes than the
	// requested hash pinned must be rejected — content addressing is the
	// integrity envelope.
	lying, _ := newTraceStore("", func(hash string) ([]byte, error) {
		return wrong, nil
	})
	if _, err := lying.Resolve(rightHash); !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("Resolve via lying fetch: %v, want ErrTraceUnavailable", err)
	}
	if st := lying.Stats(); st.corrupt == 0 {
		t.Error("hash-mismatched fetch not counted as corrupt")
	}

	// An honest fetch resolves and installs the trace locally.
	var calls int
	honest, _ := newTraceStore("", func(hash string) ([]byte, error) {
		calls++
		return right, nil
	})
	spec, err := honest.Resolve(rightHash)
	if err != nil || spec.TraceInstructions() != 200 {
		t.Fatalf("Resolve via honest fetch: %v", err)
	}
	if _, err := honest.Resolve(rightHash); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("fetch called %d times, want 1 (install + cache)", calls)
	}

	// A failing fetch surfaces as ErrTraceUnavailable.
	broken, _ := newTraceStore("", func(hash string) ([]byte, error) {
		return nil, errors.New("connection refused")
	})
	if _, err := broken.Resolve(rightHash); !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("Resolve via broken fetch: %v, want ErrTraceUnavailable", err)
	}
}

func TestJobSpecTraceCanonical(t *testing.T) {
	name := workload.TraceNamePrefix + strings.Repeat("ab", 32)
	spec := JobSpec{Workload: name, Mechanism: "constable", Instructions: 1000, APX: true}
	c, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.APX {
		t.Error("trace replay is APX-agnostic; Canonical must clear APX for dedup")
	}
	h1, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := JobSpec{Workload: name, Mechanism: "constable", Instructions: 1000}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("APX flag leaked into a trace job's content hash")
	}

	for _, bad := range []string{
		workload.TraceNamePrefix + "deadbeef",
		workload.TraceNamePrefix + strings.Repeat("XY", 32),
	} {
		if _, err := (JobSpec{Workload: bad, Instructions: 1000}).Canonical(); err == nil {
			t.Errorf("Canonical accepted malformed trace reference %q", bad)
		}
	}
}

func TestAPITraceUploadLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1}, nil)
	data := testTraceBytes(t, 800)

	upload := func() (int, TraceInfo, bool) {
		resp, err := http.Post(srv.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v struct {
			TraceInfo
			Dedup bool `json:"dedup"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, v.TraceInfo, v.Dedup
	}

	code, info, dedup := upload()
	if code != http.StatusCreated || dedup {
		t.Fatalf("first upload: status %d dedup %v, want 201 new", code, dedup)
	}
	if info.Name != workload.TraceNamePrefix+info.Hash || info.Instructions != 800 {
		t.Fatalf("upload response %+v", info)
	}

	// Idempotent re-upload dedups with 200.
	code, again, dedup := upload()
	if code != http.StatusOK || !dedup || again.Hash != info.Hash {
		t.Fatalf("re-upload: status %d dedup %v hash %s", code, dedup, again.Hash)
	}

	// Listed under /v1/traces.
	resp, err := http.Get(srv.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list []TraceInfo
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].Hash != info.Hash {
		t.Fatalf("trace list = %+v", list)
	}

	// Raw download round-trips the exact bytes.
	resp, err = http.Get(srv.URL + "/v1/traces/" + info.Hash)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(raw, data) {
		t.Fatalf("download: status %d, %d bytes (want %d)", resp.StatusCode, len(raw), len(data))
	}

	// /v1/workloads lists the uploaded trace alongside the suite, with the
	// instruction count and upload time.
	resp, err = http.Get(srv.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var wls []struct {
		Name         string    `json:"name"`
		Category     string    `json:"category"`
		Hash         string    `json:"hash"`
		Instructions uint64    `json:"instructions"`
		UploadedAt   time.Time `json:"uploaded_at"`
	}
	json.NewDecoder(resp.Body).Decode(&wls)
	resp.Body.Close()
	found := false
	for _, w := range wls {
		if w.Name == info.Name {
			found = true
			if w.Category != string(workload.Trace) || w.Hash != info.Hash ||
				w.Instructions != 800 || w.UploadedAt.IsZero() {
				t.Fatalf("workload entry for trace = %+v", w)
			}
		}
	}
	if !found {
		t.Fatalf("GET /v1/workloads does not list uploaded trace %s (got %d entries)", info.Name, len(wls))
	}

	// Server-side analysis endpoint reports on the uploaded stream.
	resp, err = http.Get(srv.URL + "/v1/traces/" + info.Hash + "/analysis")
	if err != nil {
		t.Fatal(err)
	}
	var analysis struct {
		Hash                 string          `json:"hash"`
		Name                 string          `json:"name"`
		GlobalStableFraction float64         `json:"global_stable_fraction"`
		Report               json.RawMessage `json:"report"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analysis: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &analysis); err != nil {
		t.Fatal(err)
	}
	if analysis.Hash != info.Hash || len(analysis.Report) == 0 {
		t.Fatalf("analysis = %+v", analysis)
	}

	// Delete, then every read of it 404s.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/traces/"+info.Hash, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	for _, path := range []string{"/v1/traces/" + info.Hash, "/v1/traces/" + info.Hash + "/analysis"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s after delete: status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: status %d, want 404", resp.StatusCode)
	}
}

func TestAPITraceUploadRejectsGarbage(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1}, nil)
	resp, err := http.Post(srv.URL+"/v1/traces", "application/octet-stream",
		strings.NewReader("definitely not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: status %d, want 400", resp.StatusCode)
	}
}

func TestAPIBodyLimits(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, MaxBody: 256, MaxTraceBody: 1024}, nil)

	// An oversized trace upload is cut off with 413, not stored.
	big := testTraceBytes(t, 2000)
	if len(big) <= 1024 {
		t.Fatalf("test trace only %d bytes; raise n", len(big))
	}
	resp, err := http.Post(srv.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized trace: status %d (%s), want 413", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("413 response is not a JSON error: %q", body)
	}

	// JSON endpoints enforce the (smaller) JSON limit.
	huge := fmt.Sprintf(`{"workload":%q,"instructions":1000,"mechanism":"%s"}`,
		testWorkload(t), strings.Repeat("x", 512))
	resp, err = http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized run spec: status %d, want 413", resp.StatusCode)
	}

	// Within limits everything still works.
	small := testTraceBytes(t, 20)
	if len(small) > 1024 {
		t.Skipf("small trace unexpectedly %d bytes", len(small))
	}
	resp, err = http.Post(srv.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("in-limit upload: status %d, want 201", resp.StatusCode)
	}
}

func TestAPITraceReferencedRun(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2}, nil)
	data := testTraceBytes(t, 3000)

	resp, err := http.Post(srv.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var info TraceInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()

	// A run referencing the uploaded trace executes the real timing model
	// over the replayed stream.
	spec := JobSpec{Workload: info.Name, Mechanism: "baseline", Instructions: 3000}
	resp = postJSON(t, srv.URL+"/v1/runs?wait=1", spec)
	job := decodeJob(t, resp)
	if job.Status != StatusDone {
		t.Fatalf("trace job: status %s (error %q)", job.Status, job.Error)
	}
	if job.Result == nil || job.Result.Counters["pipeline.retired"] != 3000 || job.Result.Cycles == 0 {
		t.Fatalf("trace job result = %+v", job.Result)
	}

	// The same job against a shorter budget retires min(budget, trace len).
	short := JobSpec{Workload: info.Name, Mechanism: "baseline", Instructions: 100_000}
	resp = postJSON(t, srv.URL+"/v1/runs?wait=1", short)
	job = decodeJob(t, resp)
	if job.Status != StatusDone || job.Result.Counters["pipeline.retired"] != 3000 {
		t.Fatalf("over-budget trace job: status %s retired %d, want done/3000",
			job.Status, job.Result.Counters["pipeline.retired"])
	}

	// Referencing a trace nobody uploaded fails at submission with 404.
	missing := JobSpec{Workload: workload.TraceNamePrefix + strings.Repeat("11", 32),
		Mechanism: "baseline", Instructions: 1000}
	resp = postJSON(t, srv.URL+"/v1/runs", missing)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace submit: status %d, want 404", resp.StatusCode)
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"constable/internal/sim"
	"constable/internal/workload"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func queueJob(id, class string) *Job {
	return &Job{ID: id, Class: class, submitted: time.Now(), done: make(chan struct{})}
}

func popOrder(q *multiQueue) []string {
	var ids []string
	now := time.Now()
	for j := q.pop(now); j != nil; j = q.pop(now) {
		ids = append(ids, j.ID)
	}
	return ids
}

// TestMultiQueueDRRWeightedOrder pins the deficit-round-robin dispatch
// order: with interactive weight 2 over batch weight 1, a full backlog
// drains two interactive jobs per batch job until a class empties.
func TestMultiQueueDRRWeightedOrder(t *testing.T) {
	q := newMultiQueue(map[string]int{ClassInteractive: 2, ClassBatch: 1}, 0)
	for i := 1; i <= 4; i++ {
		q.push(queueJob(fmt.Sprintf("i%d", i), ClassInteractive))
		q.push(queueJob(fmt.Sprintf("b%d", i), ClassBatch))
	}
	got := popOrder(q)
	want := []string{"i1", "i2", "b1", "i3", "i4", "b2", "b3", "b4"}
	if len(got) != len(want) {
		t.Fatalf("popped %d jobs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
	if q.len() != 0 {
		t.Errorf("queue size after drain = %d, want 0", q.len())
	}
}

// TestMultiQueueSingleClassIsFIFO pins the degenerate case that keeps sweep
// artifacts byte-identical to the single-queue scheduler: with one active
// class, dispatch is pure submission-order FIFO regardless of weights.
func TestMultiQueueSingleClassIsFIFO(t *testing.T) {
	q := newMultiQueue(nil, 0)
	var want []string
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("b%d", i)
		want = append(want, id)
		q.push(queueJob(id, ClassBatch))
	}
	got := popOrder(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("single-class order = %v, want %v", got, want)
		}
	}
}

// TestMultiQueueRequeueFrontKeepsIntraClassFIFO is the regression test for
// the requeue path: a failed chunk's cells must re-enter at the head of
// THEIR OWN class queue — oldest first, ahead of that class's later
// submissions, but never displacing another class's jobs — exactly as the
// single-queue scheduler requeued at the global head.
func TestMultiQueueRequeueFrontKeepsIntraClassFIFO(t *testing.T) {
	q := newMultiQueue(nil, 0)
	for i := 1; i <= 4; i++ {
		q.push(queueJob(fmt.Sprintf("b%d", i), ClassBatch))
	}
	// A chunk of the two oldest batch cells dispatches...
	chunk := q.popN(2, time.Now())
	if len(chunk) != 2 || chunk[0].ID != "b1" || chunk[1].ID != "b2" {
		t.Fatalf("chunk = %v, want [b1 b2]", chunk)
	}
	// ...while other-class jobs arrive concurrently...
	q.push(queueJob("i1", ClassInteractive))
	q.push(queueJob("i2", ClassInteractive))
	// ...and then the chunk's backend fails, requeueing it.
	q.requeueFront(chunk)

	if got := q.depth(ClassBatch); got != 4 {
		t.Fatalf("batch depth after requeue = %d, want 4", got)
	}
	if got := q.position(chunk[0]); got != 1 {
		t.Errorf("requeued b1 position = %d, want 1 (head of its class)", got)
	}
	var batchOrder, interOrder []string
	for _, id := range popOrder(q) {
		if id[0] == 'b' {
			batchOrder = append(batchOrder, id)
		} else {
			interOrder = append(interOrder, id)
		}
	}
	wantBatch := []string{"b1", "b2", "b3", "b4"}
	for i := range wantBatch {
		if batchOrder[i] != wantBatch[i] {
			t.Fatalf("intra-class batch order = %v, want %v", batchOrder, wantBatch)
		}
	}
	wantInter := []string{"i1", "i2"}
	for i := range wantInter {
		if interOrder[i] != wantInter[i] {
			t.Fatalf("interactive order = %v, want %v", interOrder, wantInter)
		}
	}
}

// TestMultiQueueClassCap pins the anti-abuse fold: past maxClasses distinct
// names, new class names collapse into the built-in class of their kind
// instead of minting unbounded queues and metric rows.
func TestMultiQueueClassCap(t *testing.T) {
	q := newMultiQueue(nil, 0)
	for i := 0; i < maxClasses+10; i++ {
		name := q.resolve(fmt.Sprintf("tenant-%d", i))
		q.push(queueJob(fmt.Sprintf("t%d", i), name))
	}
	if got := len(q.classes); got > maxClasses {
		t.Errorf("materialized %d classes, cap is %d", got, maxClasses)
	}
	if got := q.resolve("batch:late-tenant"); got != ClassBatch {
		t.Errorf("over-cap batch tenant resolved to %q, want %q", got, ClassBatch)
	}
	if got := q.resolve("late-tenant"); got != ClassInteractive {
		t.Errorf("over-cap tenant resolved to %q, want %q", got, ClassInteractive)
	}
}

// TestAdmissionWatermarkBoundary pins the admission edge: the submission
// that brings a class's depth exactly to QueueMax is admitted, the next is
// refused with a 429-shaped *QueueFullError whose Retry-After estimate is
// sane, and a duplicate of an in-flight spec still dedups instead of being
// refused.
func TestAdmissionWatermarkBoundary(t *testing.T) {
	s, err := Open(Config{Workers: -1, WorkerTTL: time.Hour, QueueMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	name := testWorkload(t)

	j1, err := s.Submit(JobSpec{Workload: name, Instructions: 1001})
	if err != nil {
		t.Fatalf("first submission refused: %v", err)
	}
	// This one lands exactly at the watermark — it must be admitted.
	if _, err := s.Submit(JobSpec{Workload: name, Instructions: 1002}); err != nil {
		t.Fatalf("submission at the watermark refused: %v", err)
	}
	if got := s.ClassQueueDepth(ClassInteractive); got != 2 {
		t.Fatalf("interactive depth = %d, want 2", got)
	}

	_, err = s.Submit(JobSpec{Workload: name, Instructions: 1003})
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("over-watermark submission returned %v, want *QueueFullError", err)
	}
	if qf.Class != ClassInteractive || qf.Depth != 2 || qf.Limit != 2 {
		t.Errorf("QueueFullError = %+v, want class=interactive depth=2 limit=2", qf)
	}
	if qf.RetryAfter < time.Second || qf.RetryAfter > 60*time.Second {
		t.Errorf("RetryAfter = %v, want within [1s, 60s]", qf.RetryAfter)
	}
	if got := s.Metrics().AdmissionRejected; got != 1 {
		t.Errorf("admission_rejected = %d, want 1", got)
	}

	// A duplicate of a queued spec needs no queue slot: it must dedup onto
	// the existing job, never hit admission control.
	dup, err := s.Submit(JobSpec{Workload: name, Instructions: 1001})
	if err != nil {
		t.Fatalf("duplicate of in-flight spec refused by admission: %v", err)
	}
	if dup != j1 {
		t.Error("duplicate submission did not dedup onto the existing job")
	}

	// Batch-kind classes are exempt up to 64x the watermark: a sweep-sized
	// burst must be admitted even with the interactive queue full.
	for i := 0; i < 10; i++ {
		spec := JobSpec{Workload: name, Instructions: uint64(2000 + i)}
		if _, err := s.SubmitWith(spec, SubmitOptions{Class: ClassBatch}); err != nil {
			t.Fatalf("batch submission %d refused: %v", i, err)
		}
	}
}

// TestAdmissionBatchWatermark pins the batch class's own, scaled limit:
// 64xQueueMax admits, one more is refused.
func TestAdmissionBatchWatermark(t *testing.T) {
	s, err := Open(Config{Workers: -1, WorkerTTL: time.Hour, QueueMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	name := testWorkload(t)

	limit := 1 * batchWatermarkFactor
	for i := 0; i < limit; i++ {
		spec := JobSpec{Workload: name, Instructions: uint64(3000 + i)}
		if _, err := s.SubmitWith(spec, SubmitOptions{Class: ClassBatch}); err != nil {
			t.Fatalf("batch submission %d/%d refused: %v", i+1, limit, err)
		}
	}
	_, err = s.SubmitWith(JobSpec{Workload: name, Instructions: 9999}, SubmitOptions{Class: ClassBatch})
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("batch submission over 64x watermark returned %v, want *QueueFullError", err)
	}
	if qf.Limit != limit {
		t.Errorf("batch limit = %d, want %d", qf.Limit, limit)
	}
}

// TestAdmissionDisabledByDefault: without QueueMax, any depth queues.
func TestAdmissionDisabledByDefault(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)
	for i := 0; i < 50; i++ {
		if _, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(4000 + i)}); err != nil {
			t.Fatalf("submission %d refused with admission disabled: %v", i, err)
		}
	}
	if got := s.QueueDepth(); got != 50 {
		t.Errorf("queue depth = %d, want 50", got)
	}
}

// TestTenantDoesNotAffectHash pins class/tenant as a pure scheduling
// attribute: two specs differing only in Tenant hash identically, so
// results dedup and cache across tenants.
func TestTenantDoesNotAffectHash(t *testing.T) {
	name := testWorkload(t)
	base := JobSpec{Workload: name, Mechanism: "constable", Instructions: 50_000}
	a, b := base, base
	a.Tenant = "team-a"
	b.Tenant = "team-b"
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hn, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb || ha != hn {
		t.Errorf("tenant leaked into the spec hash: %s / %s / %s", ha, hb, hn)
	}
}

// scriptBackend is a ctx-aware Backend whose behavior is keyed on the
// global call number — shared across two registered workers, it makes hedge
// tests deterministic no matter which slot the dispatcher picks as primary.
type scriptBackend struct {
	mu    sync.Mutex
	calls int
	fn    func(call int, ctx context.Context, spec JobSpec) (*sim.RunResult, error)
}

func (b *scriptBackend) Name() string  { return "script" }
func (b *scriptBackend) Capacity() int { return 1 }
func (b *scriptBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	b.mu.Lock()
	b.calls++
	n := b.calls
	b.mu.Unlock()
	return b.fn(n, ctx, spec)
}
func (b *scriptBackend) ExecuteBatch(ctx context.Context, specs []JobSpec, hashes []string) ([]BatchResult, error) {
	out := make([]BatchResult, len(specs))
	for i := range specs {
		res, err := b.Execute(ctx, specs[i], hashes[i])
		out[i] = BatchResult{Result: res, Err: err}
	}
	return out, nil
}

func newHedgeScheduler(t *testing.T, sb *scriptBackend) *Scheduler {
	t.Helper()
	s, err := Open(Config{Workers: -1, WorkerTTL: time.Hour, HedgeAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.Backend().AddWorker("w1", "fake://w1", 1, sb)
	s.Backend().AddWorker("w2", "fake://w2", 1, sb)
	return s
}

// TestHedgeBeatsWedgedPrimary: a straggling remote dispatch is duplicated
// onto the second worker after HedgeAfter; the hedge's result wins, the
// primary's request is canceled, and neither worker is demoted.
func TestHedgeBeatsWedgedPrimary(t *testing.T) {
	sb := &scriptBackend{}
	sb.fn = func(call int, ctx context.Context, spec JobSpec) (*sim.RunResult, error) {
		if call == 1 {
			// The primary wedges until its request is canceled.
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return okResult(spec, "")
	}
	s := newHedgeScheduler(t, sb)
	name := testWorkload(t)

	j, err := s.Submit(JobSpec{Workload: name, Instructions: 7777})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("hedged job failed: %v", err)
	}
	if res.Cycles != 7777 {
		t.Errorf("result cycles = %d, want 7777", res.Cycles)
	}
	m := s.Metrics()
	if m.HedgesDispatched != 1 || m.HedgesWon != 1 || m.HedgesLost != 0 {
		t.Errorf("hedge stats = dispatched %d won %d lost %d, want 1/1/0",
			m.HedgesDispatched, m.HedgesWon, m.HedgesLost)
	}
	// The canceled primary must not demote its worker: the cancellation was
	// ours, not a worker fault.
	for _, v := range s.Workers() {
		if !v.Healthy {
			t.Errorf("worker %s demoted after losing a hedge race", v.Name)
		}
	}
}

// TestHedgeLosesToPrimary: the primary answers first; the in-flight hedge
// is counted lost and its request abandoned.
func TestHedgeLosesToPrimary(t *testing.T) {
	sb := &scriptBackend{}
	sb.fn = func(call int, ctx context.Context, spec JobSpec) (*sim.RunResult, error) {
		if call == 1 {
			select {
			case <-time.After(100 * time.Millisecond):
				return okResult(spec, "")
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// The hedge wedges; it only unblocks when abandoned.
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s := newHedgeScheduler(t, sb)
	name := testWorkload(t)

	j, err := s.Submit(JobSpec{Workload: name, Instructions: 8888})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Cycles != 8888 {
		t.Errorf("result cycles = %d, want 8888", res.Cycles)
	}
	m := s.Metrics()
	if m.HedgesDispatched != 1 || m.HedgesWon != 0 || m.HedgesLost != 1 {
		t.Errorf("hedge stats = dispatched %d won %d lost %d, want 1/0/1",
			m.HedgesDispatched, m.HedgesWon, m.HedgesLost)
	}
}

// TestHedgeRescuesFailedPrimary: the primary dies at the transport level
// with a hedge already in flight — the hedge's result saves the cell
// instead of requeueing it.
func TestHedgeRescuesFailedPrimary(t *testing.T) {
	sb := &scriptBackend{}
	sb.fn = func(call int, ctx context.Context, spec JobSpec) (*sim.RunResult, error) {
		if call == 1 {
			select {
			case <-time.After(40 * time.Millisecond):
			case <-ctx.Done():
			}
			return nil, fmt.Errorf("%w: connection reset", ErrBackendUnavailable)
		}
		select {
		case <-time.After(60 * time.Millisecond):
			return okResult(spec, "")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s := newHedgeScheduler(t, sb)
	name := testWorkload(t)

	j, err := s.Submit(JobSpec{Workload: name, Instructions: 6543})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job failed despite hedge rescue: %v", err)
	}
	if res.Cycles != 6543 {
		t.Errorf("result cycles = %d, want 6543", res.Cycles)
	}
	if m := s.Metrics(); m.HedgesWon != 1 {
		t.Errorf("hedges won = %d, want 1 (the hedge saved the cell)", m.HedgesWon)
	}
}

// TestInteractiveBoundedWaitUnderSweepFlood is the PR's acceptance
// scenario: a 500-cell batch sweep saturates the queue, yet a concurrent
// interactive submission overtakes the backlog under fair-share dispatch
// and completes with bounded wait while the sweep is still deep.
func TestInteractiveBoundedWaitUnderSweepFlood(t *testing.T) {
	fn := func(opts sim.Options) (*sim.RunResult, error) {
		time.Sleep(time.Millisecond)
		return &sim.RunResult{Cycles: opts.Instructions}, nil
	}
	s := newStubScheduler(t, Config{Workers: 2, MaxBatch: 1, QueueMax: 8}, fn)
	name := testWorkload(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw, err := s.StartSweep(ctx, testMatrix(25, 20, 100_000), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.View().Class; got != ClassBatch {
		t.Errorf("sweep class = %q, want %q", got, ClassBatch)
	}
	if got := s.ClassQueueDepth(ClassBatch); got < 100 {
		t.Fatalf("batch depth after sweep submit = %d, want a deep backlog", got)
	}

	start := time.Now()
	j, err := s.Submit(JobSpec{Workload: name, Instructions: 5555})
	if err != nil {
		t.Fatalf("interactive submission refused during sweep: %v", err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	res, err := j.Wait(wctx)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("interactive job did not complete under sweep load: %v", err)
	}
	if res.Cycles != 5555 {
		t.Errorf("result cycles = %d, want 5555", res.Cycles)
	}
	if elapsed > 2*time.Second {
		t.Errorf("interactive wait = %v under a 500-cell sweep, want bounded (<2s)", elapsed)
	}
	if got := s.ClassQueueDepth(ClassBatch); got == 0 {
		t.Error("batch queue drained before the interactive job finished — the test did not exercise overtaking")
	}
}

// TestAPIQueuePositionClassAndAdmission covers the HTTP surface of the
// multi-class scheduler: class and queue_position in run views, 429 +
// Retry-After on admission refusal, and tenant overrides via header and
// JSON field.
func TestAPIQueuePositionClassAndAdmission(t *testing.T) {
	srv, s := newTestServer(t, Config{Workers: -1, WorkerTTL: time.Hour, QueueMax: 2}, nil)
	name := testWorkload(t)

	v1 := decodeJob(t, postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Instructions: 1001}))
	if v1.Class != ClassInteractive || v1.QueuePosition != 1 {
		t.Errorf("first run view class=%q position=%d, want interactive/1", v1.Class, v1.QueuePosition)
	}
	v2 := decodeJob(t, postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Instructions: 1002}))
	if v2.QueuePosition != 2 {
		t.Errorf("second run position = %d, want 2", v2.QueuePosition)
	}

	// Poll view reports the same scheduling fields.
	resp, err := http.Get(srv.URL + "/v1/runs/" + v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	pv := decodeJob(t, resp)
	if pv.Class != ClassInteractive || pv.QueuePosition != 2 {
		t.Errorf("poll view class=%q position=%d, want interactive/2", pv.Class, pv.QueuePosition)
	}

	// Over the watermark: 429 with a sane Retry-After.
	resp = postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Instructions: 1003})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-watermark status = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want integer seconds in [1, 60]", resp.Header.Get("Retry-After"))
	}

	// A tenant header opens a separate class with its own watermark.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/runs",
		jsonBody(t, JobSpec{Workload: name, Instructions: 1004}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Constable-Tenant", "team-a")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hv := decodeJob(t, hresp)
	if hv.Class != "team-a" || hv.QueuePosition != 1 {
		t.Errorf("tenant-header view class=%q position=%d, want team-a/1", hv.Class, hv.QueuePosition)
	}

	// The JSON tenant field works too, and never perturbs the spec hash.
	jv := decodeJob(t, postJSON(t, srv.URL+"/v1/runs", JobSpec{Workload: name, Instructions: 1005, Tenant: "team-b"}))
	if jv.Class != "team-b" {
		t.Errorf("tenant-field view class = %q, want team-b", jv.Class)
	}
	if got := s.ClassQueueDepth("team-b"); got != 1 {
		t.Errorf("team-b depth = %d, want 1", got)
	}

	// Invalid tenant names are rejected before they become queue names and
	// metric labels.
	req, err = http.NewRequest(http.MethodPost, srv.URL+"/v1/runs",
		jsonBody(t, JobSpec{Workload: name, Instructions: 1006}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Constable-Tenant", "no/slashes allowed")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tenant status = %d, want 400", bresp.StatusCode)
	}
}

// TestAPISweepTenantClass: a sweep submitted with a tenant queues its cells
// under the tenant-scoped batch class.
func TestAPISweepTenantClass(t *testing.T) {
	srv, s := newTestServer(t, Config{Workers: -1, WorkerTTL: time.Hour}, nil)
	resp := postJSON(t, srv.URL+"/v1/sweeps", SweepRequest{
		Workloads:    []string{testWorkload(t)},
		Mechanisms:   []string{"baseline", "constable"},
		Instructions: 50_000,
		Tenant:       "acme",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep submit status = %d", resp.StatusCode)
	}
	var sv SweepView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if sv.Class != "batch:acme" {
		t.Errorf("sweep class = %q, want batch:acme", sv.Class)
	}
	if got := s.ClassQueueDepth("batch:acme"); got != 2 {
		t.Errorf("batch:acme depth = %d, want 2", got)
	}
}

// BenchmarkSchedulerMixedLoad measures interactive submit→result latency
// while a feeder keeps the batch class flooded — the number CI tracks as
// BENCH_sched.json. The custom metric is the average end-to-end wait of one
// interactive job under contention.
func BenchmarkSchedulerMixedLoad(b *testing.B) {
	fn := func(opts sim.Options) (*sim.RunResult, error) {
		time.Sleep(100 * time.Microsecond)
		return &sim.RunResult{Cycles: opts.Instructions}, nil
	}
	s := New(Config{Workers: 4, MaxBatch: 1})
	defer s.Close()
	s.runFn = fn
	name := workload.SmallSuite()[0].Name

	// Feeder: keep ~256 batch cells queued at all times.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var n uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s.ClassQueueDepth(ClassBatch) < 256 {
				n++
				spec := JobSpec{Workload: name, Instructions: 1_000_000 + n}
				if _, err := s.SubmitWith(spec, SubmitOptions{Class: ClassBatch}); err != nil {
					return
				}
				continue
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for s.ClassQueueDepth(ClassBatch) < 64 {
		time.Sleep(time.Millisecond)
	}

	ctx := context.Background()
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		j, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(2_000_000 + i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		total += time.Since(start)
	}
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "interactive-ns/op")
}

package service

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"constable/internal/sim"
	"constable/internal/stats"
)

// fullResult builds a RunResult exercising every field class the store must
// round-trip: the public JSON schema plus the typed views that RunResult
// itself excludes from JSON (`json:"-"`).
func fullResult() *sim.RunResult {
	res := &sim.RunResult{
		Identity: sim.RunIdentity{
			Workload: "w", Category: "Server", Mechanism: "constable",
			Threads: 1, Instructions: 5000,
		},
		ConfigDigest: "abc123",
		Cycles:       1234,
		IPC:          3.25,
		Counters:     stats.Snapshot{"pipeline.retired": 5000, "constable.eliminated": 321},
		Mechanisms: []sim.MechanismStats{
			{Name: "constable", Counters: stats.Snapshot{"constable.eliminated": 321}},
		},
		L1DAccesses:  777,
		L2Accesses:   88,
		LLCAccesses:  9,
		DTLBAccesses: 555,

		EVESPredictions: 12,
		EVESMispredicts: 3,
	}
	res.Pipeline.Cycles = 1234
	res.Pipeline.Retired = 5000
	res.Pipeline.EliminatedLoads = 321
	res.Pipeline.EliminatedByMode = map[string]uint64{"base+disp": 300, "absolute": 21}
	res.Constable.SLDLookups = 4000
	res.Constable.Eliminated = 321
	res.Power.FE = 10.5
	res.Power.L1D = 20.25
	res.Power.Cycles = 1234
	return res
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := newResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash := "deadbeefcafe0123"
	want := fullResult()
	if err := st.Save(hash, want); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Load(hash)
	if !ok {
		t.Fatal("Load missed a just-saved result")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The typed views excluded from RunResult's public JSON must survive.
	if got.Pipeline.EliminatedByMode["base+disp"] != 300 ||
		got.Constable.SLDLookups != 4000 ||
		got.L1DAccesses != 777 || got.EVESPredictions != 12 {
		t.Errorf("typed views lost in round-trip: %+v", got)
	}
	if st.Len() != 1 {
		t.Errorf("store Len = %d, want 1", st.Len())
	}
}

func TestStoreCorruptionAndAliasing(t *testing.T) {
	st, err := newResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load("absent00"); ok {
		t.Error("Load hit on an empty store")
	}

	// Truncated/garbage file: tolerated as a miss, counted as corrupt.
	garbage := "badbadbad0"
	p := st.path(garbage)
	os.MkdirAll(filepath.Dir(p), 0o755)
	os.WriteFile(p, []byte(`{"schema":1,"hash":"badbadbad0","result":{"cyc`), 0o644)
	if _, ok := st.Load(garbage); ok {
		t.Error("Load decoded a truncated file")
	}

	// Aliasing: a valid envelope copied under another key must not serve —
	// the envelope's recorded hash is verified against the requested one.
	if err := st.Save("realhash01", fullResult()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(st.path("realhash01"))
	if err != nil {
		t.Fatal(err)
	}
	alias := "otherhash9"
	os.MkdirAll(filepath.Dir(st.path(alias)), 0o755)
	os.WriteFile(st.path(alias), b, 0o644)
	if _, ok := st.Load(alias); ok {
		t.Error("Load served an aliased envelope whose hash does not match its key")
	}

	s := st.Stats()
	if s.corrupt != 2 {
		t.Errorf("corrupt count = %d, want 2 (garbage + alias)", s.corrupt)
	}
	if _, ok := st.Load("realhash01"); !ok {
		t.Error("the original key stopped serving")
	}
}

// TestStoreSweepsOrphanedTempFiles verifies reopening a store removes temp
// files a crashed writer left behind, while real entries survive.
func TestStoreSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := newResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("realhash01", fullResult()); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "re", ".realhash99.json.tmp123456")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := newResultStore(dir); err != nil { // "restart"
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned temp file survived reopen: %v", err)
	}
	st2, err := newResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Load("realhash01"); !ok {
		t.Error("real entry lost by the temp-file sweep")
	}
}

// TestStorePersistenceAcrossSchedulers is the restart-persistence
// acceptance test: results written by one scheduler are re-served by a
// fresh scheduler on the same --data-dir as hits, with zero re-simulations.
func TestStorePersistenceAcrossSchedulers(t *testing.T) {
	dir := t.TempDir()
	name := testWorkload(t)
	spec := JobSpec{Workload: name, Mechanism: "constable", Instructions: 5000}

	var calls atomic.Uint64
	s1, err := Open(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.runFn = countingRun(&calls)
	j, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := j.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("first scheduler ran %d simulations, want 1", calls.Load())
	}

	// "Restart": a brand-new scheduler over the same directory. Any
	// simulation here is a persistence failure.
	s2, err := Open(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	s2.runFn = func(opts sim.Options) (*sim.RunResult, error) {
		t.Error("restarted scheduler re-simulated a persisted spec")
		return countingRun(&calls)(opts)
	}
	j2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j2.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit() {
		t.Error("restarted scheduler did not mark the store hit as a cache hit")
	}
	if got.Cycles != want.Cycles {
		t.Errorf("persisted cycles = %d, want %d", got.Cycles, want.Cycles)
	}
	m := s2.Metrics()
	if m.StoreHits != 1 || m.JobsCompleted != 0 {
		t.Errorf("metrics after restart = store hits %d / completed %d, want 1 / 0", m.StoreHits, m.JobsCompleted)
	}

	// A second submission on s2 must now hit the promoted LRU entry, not
	// the disk again.
	j3, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	if m := s2.Metrics(); m.StoreHits != 1 || m.CacheHits != 1 {
		t.Errorf("LRU promotion broken: store hits %d (want 1), cache hits %d (want 1)", m.StoreHits, m.CacheHits)
	}
}

// TestStoreSharedAcrossLiveSchedulers covers cross-process sharing: two live
// schedulers over one directory, where the second sees the first's writes.
func TestStoreSharedAcrossLiveSchedulers(t *testing.T) {
	dir := t.TempDir()
	name := testWorkload(t)
	spec := JobSpec{Workload: name, Mechanism: "eves", Instructions: 4000}

	var calls atomic.Uint64
	open := func() *Scheduler {
		s, err := Open(Config{Workers: 1, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		s.runFn = countingRun(&calls)
		t.Cleanup(func() { s.Close() })
		return s
	}
	a, b := open(), open()
	ja, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ja.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	jb, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jb.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	if !jb.CacheHit() {
		t.Error("second scheduler did not reuse the first's persisted result")
	}
	if calls.Load() != 1 {
		t.Errorf("two schedulers over one store ran %d simulations, want 1", calls.Load())
	}
}

// TestStoreSaveFailureDegrades verifies a broken data dir degrades to
// LRU-only caching instead of failing jobs.
func TestStoreSaveFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var calls atomic.Uint64
	s.runFn = countingRun(&calls)
	// Make the shard un-creatable by replacing the store root with a file.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(JobSpec{Workload: testWorkload(t), Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(t.Context()); err != nil {
		t.Fatalf("job failed because persistence failed: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return s.Metrics().StoreErrors >= 1 })
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"constable/internal/sim"
	"constable/internal/stats"
)

// batchRecorder is a scriptable batch-aware Backend: it records every chunk
// it receives (the hashes, in dispatch order), optionally holds each chunk
// at a gate, and lets tests script per-cell and chunk-level outcomes.
type batchRecorder struct {
	name string
	cap  int

	mu     sync.Mutex
	chunks [][]string
	// gate, when non-nil, blocks each chunk after it is recorded until the
	// channel is closed.
	gate chan struct{}
	// cell produces one cell's outcome (defaults to okResult-shaped).
	cell func(spec JobSpec, hash string) BatchResult
	// chunkErr, when non-nil, fails the whole chunk with its return (nil =
	// proceed per cell). It sees the chunk index (0-based dispatch order).
	chunkErr func(chunkIndex int) error
}

func (b *batchRecorder) Name() string  { return b.name }
func (b *batchRecorder) Capacity() int { return b.cap }

func (b *batchRecorder) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	res, err := b.ExecuteBatch(ctx, []JobSpec{spec}, []string{hash})
	if err != nil {
		return nil, err
	}
	return res[0].Result, res[0].Err
}

func (b *batchRecorder) ExecuteBatch(ctx context.Context, specs []JobSpec, hashes []string) ([]BatchResult, error) {
	b.mu.Lock()
	idx := len(b.chunks)
	b.chunks = append(b.chunks, append([]string(nil), hashes...))
	gate := b.gate
	b.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if b.chunkErr != nil {
		if err := b.chunkErr(idx); err != nil {
			return nil, err
		}
	}
	out := make([]BatchResult, len(specs))
	for i := range specs {
		if b.cell != nil {
			out[i] = b.cell(specs[i], hashes[i])
			continue
		}
		out[i] = BatchResult{Result: &sim.RunResult{Cycles: specs[i].Instructions}}
	}
	return out, nil
}

func (b *batchRecorder) recorded() [][]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]string, len(b.chunks))
	copy(out, b.chunks)
	return out
}

// TestChunkedDispatchAdaptiveSizing pins the tentpole's dispatch shape: a
// backlog of queued cells reaches a capacity-2 worker as capacity-sized
// chunks — never the whole queue, never one cell at a time, and never more
// than one chunk's worth per grant (the 2×capacity budget exists so two
// chunks overlap, not so one double-sized chunk monopolizes the slot).
func TestChunkedDispatchAdaptiveSizing(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)

	var jobs []*Job
	for i := 0; i < 10; i++ {
		j, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(1000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// All ten queued before any capacity exists, so chunk sizes are
	// deterministic once the worker appears.
	br := &batchRecorder{name: "br", cap: 2}
	s.Backend().AddWorker("br", "fake://br", br.cap, br)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	chunks := br.recorded()
	if len(chunks) != 5 {
		t.Fatalf("chunks = %d (%v cells each), want 5", len(chunks), chunkSizes(chunks))
	}
	for i, c := range chunks {
		if len(c) != 2 {
			t.Errorf("chunk %d carried %d cells, want 2 (capacity-sized)", i, len(c))
		}
	}
	m := s.Metrics()
	if m.BatchesDispatched != 5 || m.BatchCells != 10 {
		t.Errorf("batch metrics = %d chunks / %d cells, want 5/10", m.BatchesDispatched, m.BatchCells)
	}
}

func chunkSizes(chunks [][]string) []int {
	out := make([]int, len(chunks))
	for i, c := range chunks {
		out[i] = len(c)
	}
	return out
}

// TestPerCellModeDisablesChunking pins MaxBatch: 1 — the PR-4 dispatch
// cadence stays available, and the batch metrics stay silent.
func TestPerCellModeDisablesChunking(t *testing.T) {
	s, err := Open(Config{Workers: -1, WorkerTTL: time.Hour, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	name := testWorkload(t)

	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(2000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	br := &batchRecorder{name: "br", cap: 2}
	s.Backend().AddWorker("br", "fake://br", br.cap, br)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range br.recorded() {
		if len(c) != 1 {
			t.Errorf("chunk %d carried %d cells, want 1 in per-cell mode", i, len(c))
		}
	}
	m := s.Metrics()
	if m.BatchesDispatched != 0 || m.BatchCells != 0 {
		t.Errorf("batch metrics = %d/%d, want 0/0 in per-cell mode", m.BatchesDispatched, m.BatchCells)
	}
}

// TestChunkRequeueDropsAbandonedCells pins the tentpole's failure
// semantics: when a whole chunk dies at the transport level, the cells
// every submitter has abandoned are dropped from the chunk (canceled), the
// live cells requeue in their original order, and the retry chunk carries
// exactly the survivors.
func TestChunkRequeueDropsAbandonedCells(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)

	gate := make(chan struct{})
	doomed := &batchRecorder{
		name: "doomed", cap: 3, gate: gate,
		chunkErr: func(int) error {
			return fmt.Errorf("%w: worker killed mid-chunk", ErrBackendUnavailable)
		},
	}
	s.Backend().AddWorker("doomed", "fake://doomed", doomed.cap, doomed)

	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(3000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	// Wait for the whole chunk (3 cells ≤ the capacity-3 grant) to be in
	// flight.
	deadline := time.Now().Add(5 * time.Second)
	for len(doomed.recorded()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("chunk never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	if got := len(doomed.recorded()[0]); got != 3 {
		t.Fatalf("first chunk carried %d cells, want 3", got)
	}

	// The middle cell's only submitter walks away mid-flight; then the
	// worker dies. The chunk must not be requeued wholesale.
	s.Abandon(jobs[1].ID)
	honest := &batchRecorder{name: "honest", cap: 3}
	s.Backend().AddWorker("honest", "fake://honest", honest.cap, honest)
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, i := range []int{0, 2} {
		if _, err := jobs[i].Wait(ctx); err != nil {
			t.Fatalf("surviving cell %d: %v", i, err)
		}
	}
	if _, err := jobs[1].Wait(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("abandoned cell's terminal error = %v, want ErrCanceled", err)
	}

	m := s.Metrics()
	if m.JobsRequeued != 2 {
		t.Errorf("requeued = %d, want 2 (the un-abandoned cells)", m.JobsRequeued)
	}
	if m.JobsCanceled != 1 {
		t.Errorf("canceled = %d, want 1 (the abandoned cell)", m.JobsCanceled)
	}
	// The survivors retried together, in their original relative order.
	hc := honest.recorded()
	if len(hc) != 1 || len(hc[0]) != 2 ||
		hc[0][0] != jobs[0].Hash || hc[0][1] != jobs[2].Hash {
		t.Errorf("retry chunks = %v, want one chunk [%s %s]", hc, jobs[0].Hash, jobs[2].Hash)
	}
}

// TestMixedChunkFailsOnlyBadCell pins per-cell failure granularity: one
// cell whose simulation fails terminally must not requeue — or fail — its
// chunk siblings.
func TestMixedChunkFailsOnlyBadCell(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)

	const badBudget = 6666
	br := &batchRecorder{
		name: "br", cap: 3,
		cell: func(spec JobSpec, hash string) BatchResult {
			if spec.Instructions == badBudget {
				return BatchResult{Err: errors.New("simulation exploded")}
			}
			return BatchResult{Result: &sim.RunResult{Cycles: spec.Instructions}}
		},
	}

	var jobs []*Job
	for _, insts := range []uint64{4000, badBudget, 4001} {
		j, err := s.Submit(JobSpec{Workload: name, Instructions: insts})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Backend().AddWorker("br", "fake://br", br.cap, br)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, i := range []int{0, 2} {
		res, err := jobs[i].Wait(ctx)
		if err != nil {
			t.Fatalf("sibling cell %d failed: %v", i, err)
		}
		if res.Cycles != jobs[i].Spec.Instructions {
			t.Errorf("sibling cell %d cycles = %d", i, res.Cycles)
		}
	}
	if _, err := jobs[1].Wait(ctx); err == nil || err.Error() != "simulation exploded" {
		t.Fatalf("bad cell error = %v, want its own terminal failure", err)
	}

	m := s.Metrics()
	if m.JobsRequeued != 0 {
		t.Errorf("requeued = %d, want 0 (a terminal cell must not bounce its chunk)", m.JobsRequeued)
	}
	if m.JobsFailed != 1 || m.JobsCompleted != 2 {
		t.Errorf("failed/completed = %d/%d, want 1/2", m.JobsFailed, m.JobsCompleted)
	}
}

// TestAllUnavailableChunkDemotesWorker pins the failure-backoff contract
// for batches: a chunk whose every cell comes back backend-unavailable —
// the shape an unreachable worker produces through the per-cell fallback,
// or a broken worker answering 200 with nothing but requeue items — must
// demote the worker exactly like a chunk-level transport error, or the
// dispatcher hot-loops dispatch→fail→requeue against it with no backoff.
func TestAllUnavailableChunkDemotesWorker(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)

	broken := &batchRecorder{
		name: "broken", cap: 2,
		cell: func(JobSpec, string) BatchResult {
			return BatchResult{Err: fmt.Errorf("%w: connection reset", ErrBackendUnavailable)}
		},
	}
	bv := s.Backend().AddWorker("broken", "fake://broken", broken.cap, broken)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(9000 + i)}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := s.Backend().Worker(bv.ID); ok && !v.Healthy && v.Failures > 0 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := s.Backend().Worker(bv.ID)
			t.Fatalf("worker never demoted after an all-unavailable chunk: %+v", v)
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Metrics().JobsRequeued; got != 2 {
		t.Errorf("requeued = %d, want 2", got)
	}
}

// workerStub is an httptest-backed fake constable-worker speaking the
// single and batch execute protocols with scriptable latency and per-spec
// failures.
func workerStub(t *testing.T, delay time.Duration, failBudget uint64) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var conns, batchHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /execute", func(w http.ResponseWriter, r *http.Request) {
		var req ExecuteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		time.Sleep(delay)
		if failBudget != 0 && req.Spec.Instructions == failBudget {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(map[string]string{"error": "simulation exploded"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sim.NewResultEnvelope(req.Hash, &sim.RunResult{Cycles: req.Spec.Instructions}))
	})
	mux.HandleFunc("POST /execute/batch", func(w http.ResponseWriter, r *http.Request) {
		batchHits.Add(1)
		var req BatchExecuteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		time.Sleep(delay)
		resp := BatchExecuteResponse{Items: make([]BatchExecuteItem, len(req.Items))}
		for i, it := range req.Items {
			if failBudget != 0 && it.Spec.Instructions == failBudget {
				resp.Items[i] = BatchExecuteItem{Error: "simulation exploded"}
				continue
			}
			env := sim.NewResultEnvelope(it.Hash, &sim.RunResult{Cycles: it.Spec.Instructions})
			resp.Items[i] = BatchExecuteItem{Envelope: &env}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	ts := httptest.NewUnstartedServer(mux)
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)
	return ts, &conns, &batchHits
}

// TestRemoteBackendReusesConnections is the connection-churn regression
// test: before the drain-before-close fix, every dispatch — including the
// success path, whose json.Decoder left the envelope's trailing newline
// unread — discarded its connection, so N dispatches cost N TCP dials.
// With draining and a capacity-sized idle pool, sequential dispatches
// (successes and error responses alike) ride one keep-alive connection.
func TestRemoteBackendReusesConnections(t *testing.T) {
	ts, conns, _ := workerStub(t, 0, 9999)
	r := NewRemoteBackend("w", ts.URL, 4)
	name := testWorkload(t)

	for i := 0; i < 4; i++ {
		if _, err := r.Execute(context.Background(), JobSpec{Workload: name, Instructions: uint64(5000 + i)}, fmt.Sprintf("h%d", i)); err != nil {
			t.Fatal(err)
		}
		// Error responses (422) must return their connection too.
		if _, err := r.Execute(context.Background(), JobSpec{Workload: name, Instructions: 9999}, "hfail"); err == nil {
			t.Fatal("failing spec did not error")
		}
	}
	// Batch dispatches share the same pool.
	specs := []JobSpec{{Workload: name, Instructions: 6000}, {Workload: name, Instructions: 6001}}
	if _, err := r.ExecuteBatch(context.Background(), specs, []string{"b0", "b1"}); err != nil {
		t.Fatal(err)
	}
	if got := conns.Load(); got > 2 {
		t.Errorf("server saw %d TCP connections for 9 sequential dispatches, want ≤2 (keep-alive reuse)", got)
	}
}

// TestRemoteBatchDeadlineScalesWithChunkSize is the timeout-misclassification
// regression test: the per-cell round-trip budget must scale with chunk
// size, so a large chunk that is merely slow is not mistaken for a wedged
// worker — while a single dispatch still times out at the per-cell budget.
func TestRemoteBatchDeadlineScalesWithChunkSize(t *testing.T) {
	ts, _, _ := workerStub(t, 300*time.Millisecond, 0)
	name := testWorkload(t)

	r := NewRemoteBackend("w", ts.URL, 4)
	r.timeout = 150 * time.Millisecond

	// Four cells → 600ms of budget; the 300ms chunk must land.
	specs := make([]JobSpec, 4)
	hashes := make([]string, 4)
	for i := range specs {
		specs[i] = JobSpec{Workload: name, Instructions: uint64(7000 + i)}
		hashes[i] = fmt.Sprintf("h%d", i)
	}
	results, err := r.ExecuteBatch(context.Background(), specs, hashes)
	if err != nil {
		t.Fatalf("chunk misclassified as wedged: %v", err)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("cell %d: %v", i, br.Err)
		}
	}

	// A single cell gets exactly one per-cell budget and must time out.
	_, err = r.Execute(context.Background(), specs[0], hashes[0])
	if err == nil || !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("single dispatch past the per-cell budget = %v, want backend-unavailable timeout", err)
	}
}

// TestRemoteBatchFallsBackForOldWorkers pins mixed-version clusters: a
// worker without the batch endpoint answers 404 and the chunk degrades to
// per-cell dispatch — once, after which the probe result is remembered.
func TestRemoteBatchFallsBackForOldWorkers(t *testing.T) {
	var execHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /execute", func(w http.ResponseWriter, r *http.Request) {
		execHits.Add(1)
		var req ExecuteRequest
		json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sim.NewResultEnvelope(req.Hash, &sim.RunResult{Cycles: req.Spec.Instructions}))
	})
	ts := httptest.NewServer(mux) // no /execute/batch route: an old worker
	t.Cleanup(ts.Close)
	name := testWorkload(t)

	r := NewRemoteBackend("old", ts.URL, 2)
	specs := []JobSpec{{Workload: name, Instructions: 8000}, {Workload: name, Instructions: 8001}}
	for round := 0; round < 2; round++ {
		results, err := r.ExecuteBatch(context.Background(), specs, []string{"h0", "h1"})
		if err != nil {
			t.Fatal(err)
		}
		for i, br := range results {
			if br.Err != nil || br.Result.Cycles != specs[i].Instructions {
				t.Fatalf("round %d cell %d: %+v", round, i, br)
			}
		}
	}
	if got := execHits.Load(); got != 4 {
		t.Errorf("per-cell fallback hits = %d, want 4", got)
	}
	r.mu.Lock()
	noBatch := r.noBatch
	r.mu.Unlock()
	if !noBatch {
		t.Error("404 fallback was not remembered")
	}
}

// TestStoreHitResultIsolation is the cache-aliasing regression test for the
// disk-store hit path: a result promoted from the persistent store into the
// LRU is handed to callers as an independent clone, so mutating a store-hit
// result (counters map, mechanism snapshots, scalar fields) and re-reading
// it — from the same job, the LRU, or the disk — always yields the
// pristine document.
func TestStoreHitResultIsolation(t *testing.T) {
	dir := t.TempDir()
	name := testWorkload(t)
	spec := JobSpec{Workload: name, Instructions: 12345}

	rich := func(o sim.Options) (*sim.RunResult, error) {
		return &sim.RunResult{
			Cycles:   o.Instructions,
			Counters: stats.Snapshot{"pipeline.retired": 42},
			Mechanisms: []sim.MechanismStats{
				{Name: "constable", Counters: stats.Snapshot{"constable.eliminated": 7}},
			},
		}, nil
	}

	first, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first.runFn = rich
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := first.RunSync(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh scheduler with a cold LRU: the submit below is a disk-store
	// hit, promoted into the LRU on its way to the caller.
	second, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { second.Close() })
	second.runFn = func(sim.Options) (*sim.RunResult, error) {
		return nil, errors.New("store hit expected; nothing should simulate")
	}

	j, err := second.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit() {
		t.Fatal("expected a store hit")
	}

	// Vandalize every mutable layer of the caller's copy.
	got.Cycles = 0
	got.Counters["pipeline.retired"] = 999
	got.Counters["vandal"] = 1
	got.Mechanisms[0].Counters["constable.eliminated"] = 999

	check := func(label string, res *sim.RunResult) {
		t.Helper()
		if res == nil {
			t.Fatalf("%s: result missing", label)
		}
		if res.Cycles != 12345 {
			t.Errorf("%s: cycles = %d, want 12345", label, res.Cycles)
		}
		if v := res.Counters["pipeline.retired"]; v != 42 {
			t.Errorf("%s: counter = %d, want 42", label, v)
		}
		if _, ok := res.Counters["vandal"]; ok {
			t.Errorf("%s: vandal counter leaked through the promotion path", label)
		}
		if v := res.Mechanisms[0].Counters["constable.eliminated"]; v != 7 {
			t.Errorf("%s: mechanism counter = %d, want 7", label, v)
		}
	}

	// Re-read through every path that can observe the promoted result.
	reread, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	check("same job re-read", reread)
	j2, err := second.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	lru, err := j2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	check("LRU hit after promotion", lru)
	check("lookupResult", second.lookupResult(j.Hash))
}

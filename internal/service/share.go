package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"constable/internal/sim"
)

// ErrResultRejected marks a shared result that failed envelope verification:
// the envelope was undecodable, carried the wrong schema, or — the aliasing
// attack the content-addressed design exists to stop — recorded a hash that
// does not match the JobSpec hash it was requested under. A rejected result
// is never used; the consulting scheduler simulates locally instead and
// counts the rejection, so a corrupt or lying store degrades throughput, not
// correctness.
var ErrResultRejected = errors.New("service: shared result rejected")

// ResultSharer connects a scheduler to a cluster-wide result store. Workers
// install one pointed at their server (so N workers simulate a popular cell
// once, not N times), and a federated dispatch server can install one
// pointed at an upstream results server. Both methods are called off the
// scheduler's lock and may do network I/O.
type ResultSharer interface {
	// Lookup returns the shared store's result for hash. (nil, nil) is a
	// miss; an error wrapping ErrResultRejected means the store answered
	// with an envelope that failed hash/schema verification; any other
	// error is a transport failure, treated as a miss.
	Lookup(hash string) (*sim.RunResult, error)
	// WriteBack publishes a locally-simulated result under hash so every
	// other consulting scheduler can reuse it.
	WriteBack(hash string, res *sim.RunResult) error
}

// shareNegCap bounds the negative-lookup cache: remembered misses beyond it
// evict oldest-first, so an adversarial stream of absent hashes cannot grow
// worker memory.
const shareNegCap = 8192

// RemoteResultStore consults a constable-server's content-addressed result
// store over HTTP — GET /v1/results/{hash} before simulating, PUT
// /v1/results/{hash} after — with two stampede defenses tuned for sweep
// bursts: concurrent Lookups for the same hash collapse into one in-flight
// GET (singleflight), and a miss is remembered in a bounded negative cache
// for a short TTL so a burst of duplicate submissions costs one round trip,
// not one per cell. Every 200 response is verified with
// sim.ResultEnvelope.Open against the requested hash before use; a
// mismatched or undecodable envelope is rejected (ErrResultRejected), never
// trusted.
type RemoteResultStore struct {
	url    string
	client *http.Client
	negTTL time.Duration

	mu       sync.Mutex
	neg      map[string]time.Time // hash → when the miss was observed
	negOrder []string             // insertion order, for bounded eviction
	calls    map[string]*shareCall
}

// shareCall is one in-flight GET all concurrent Lookups for a hash share.
type shareCall struct {
	done chan struct{}
	res  *sim.RunResult
	err  error
}

// NewRemoteResultStore returns a sharer consulting the server at baseURL
// (e.g. http://127.0.0.1:8080).
func NewRemoteResultStore(baseURL string) *RemoteResultStore {
	transport := http.DefaultTransport
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		t = t.Clone()
		// A worker consults once per dispatched cell; keep the connections
		// warm across a chunk instead of churning handshakes.
		t.MaxIdleConnsPerHost = 16
		transport = t
	}
	return &RemoteResultStore{
		url:    baseURL,
		client: &http.Client{Timeout: 10 * time.Second, Transport: transport},
		negTTL: 3 * time.Second,
		neg:    make(map[string]time.Time),
		calls:  make(map[string]*shareCall),
	}
}

// Lookup implements ResultSharer. Each caller gets an independent deep copy,
// so callers collapsed onto one GET cannot alias each other's documents.
func (rs *RemoteResultStore) Lookup(hash string) (*sim.RunResult, error) {
	rs.mu.Lock()
	if t, ok := rs.neg[hash]; ok {
		if time.Since(t) < rs.negTTL {
			rs.mu.Unlock()
			return nil, nil
		}
		delete(rs.neg, hash)
	}
	if c, ok := rs.calls[hash]; ok {
		rs.mu.Unlock()
		<-c.done
		if c.res != nil {
			return c.res.Clone(), nil
		}
		return nil, c.err
	}
	c := &shareCall{done: make(chan struct{})}
	rs.calls[hash] = c
	rs.mu.Unlock()

	c.res, c.err = rs.fetch(hash)

	rs.mu.Lock()
	delete(rs.calls, hash)
	if c.res == nil {
		// Remember misses, transport failures and rejections alike: a lying
		// or unreachable store must not be re-asked per cell of a burst.
		rs.neg[hash] = time.Now()
		rs.negOrder = append(rs.negOrder, hash)
		for len(rs.negOrder) > shareNegCap {
			delete(rs.neg, rs.negOrder[0])
			rs.negOrder = rs.negOrder[1:]
		}
	}
	rs.mu.Unlock()
	close(c.done)
	if c.res != nil {
		return c.res.Clone(), nil
	}
	return nil, c.err
}

// fetch does one verified GET. It returns (nil, nil) on 404.
func (rs *RemoteResultStore) fetch(hash string) (*sim.RunResult, error) {
	resp, err := rs.client.Get(rs.url + "/v1/results/" + hash)
	if err != nil {
		return nil, fmt.Errorf("service: share lookup %.12s: %w", hash, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var env sim.ResultEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return nil, fmt.Errorf("%w: undecodable envelope for %.12s: %v", ErrResultRejected, hash, err)
		}
		res, err := env.Open(hash)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrResultRejected, err)
		}
		return res, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("service: share lookup %.12s: HTTP %d", hash, resp.StatusCode)
	}
}

// WriteBack implements ResultSharer with an idempotent PUT; the receiving
// server re-verifies the envelope against the URL hash before storing it.
func (rs *RemoteResultStore) WriteBack(hash string, res *sim.RunResult) error {
	env := sim.NewResultEnvelope(hash, res)
	b, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("service: share write-back %.12s: %w", hash, err)
	}
	req, err := http.NewRequest(http.MethodPut, rs.url+"/v1/results/"+hash, bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("service: share write-back %.12s: %w", hash, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rs.client.Do(req)
	if err != nil {
		return fmt.Errorf("service: share write-back %.12s: %w", hash, err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("service: share write-back %.12s: HTTP %d", hash, resp.StatusCode)
	}
	return nil
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"constable/internal/sim"
)

// remoteRequestTimeout bounds one dispatched cell's worker round trip.
// Simulations are seconds-long, not hours-long, so a cell that has produced
// nothing for this long means the worker is wedged; the job requeues
// elsewhere (the worker's own run, if it ever finishes, still lands in the
// worker-local cache and is simply never collected). Batched dispatches
// scale this per cell — see ExecuteBatch — so a legitimately large chunk is
// never misclassified as a wedged worker. It is deliberately a per-dispatch
// context deadline, not an http.Client.Timeout: a client-wide timeout would
// silently bound the whole chunk at the single-cell budget.
const remoteRequestTimeout = 10 * time.Minute

// RemoteBackend executes jobs on one constable-worker over HTTP: Execute is
// a single POST {url}/execute carrying one canonical spec and its content
// hash, ExecuteBatch a single POST {url}/execute/batch carrying a whole
// chunk, answered with full sim.ResultEnvelope documents. Every envelope is
// verified against the dispatched hash before the result is accepted (alias
// defense, mirroring the persistent store's Load): a worker returning a
// mismatched or undecodable envelope is indistinguishable from a corrupt
// one, so the error wraps ErrBackendUnavailable and the job retries on an
// honest backend.
type RemoteBackend struct {
	name     string
	url      string // base URL, no trailing slash
	capacity int
	client   *http.Client
	// timeout is the per-cell round-trip budget (remoteRequestTimeout in
	// production; tests shrink it to exercise deadline behavior).
	timeout time.Duration

	// noBatch is set after the worker answers /execute/batch with 404/405 —
	// an older worker without the batch endpoint — so subsequent chunks
	// skip straight to per-cell dispatch instead of re-probing every time.
	mu      sync.Mutex
	noBatch bool
}

// NewRemoteBackend returns a backend dispatching to the worker at url
// (e.g. http://10.0.0.5:8081) which advertised room for capacity
// concurrent jobs. The transport keeps up to capacity idle connections to
// the worker: the default http.Transport caps idle conns per host at 2,
// which silently turned a wide per-cell dispatch into a TCP-dial-per-job
// churn once the MultiBackend filled more than two slots on one worker.
func NewRemoteBackend(name, url string, capacity int) *RemoteBackend {
	if capacity < 1 {
		capacity = 1
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = capacity
	if tr.MaxIdleConns < capacity {
		tr.MaxIdleConns = capacity
	}
	return &RemoteBackend{
		name:     name,
		url:      strings.TrimRight(url, "/"),
		capacity: capacity,
		client:   &http.Client{Transport: tr},
		timeout:  remoteRequestTimeout,
	}
}

// Name implements Backend.
func (r *RemoteBackend) Name() string { return r.name }

// Capacity implements Backend: the concurrency the worker advertised at
// registration. When dispatched through a MultiBackend slot the slot owns
// the budget; standalone the backend reports it directly.
func (r *RemoteBackend) Capacity() int { return r.capacity }

// drainClose consumes whatever the exchange left unread, then closes the
// body. Returning a connection to the keep-alive pool requires reading the
// response to EOF first: error paths that closed early — and success paths
// whose json.Decoder stopped at the end of the value, one newline short of
// EOF — were silently discarding every connection, so each dispatch paid a
// fresh TCP dial.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}

// Execute implements Backend: one job, one HTTP round trip, bounded by one
// per-cell timeout.
//
// Status mapping: 200 carries a result envelope (verified against hash);
// 422 is the simulation's own failure, terminal for the job; anything else
// — transport errors, timeouts, 5xx, a closed worker — wraps
// ErrBackendUnavailable so the scheduler requeues the job.
func (r *RemoteBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	body, err := json.Marshal(ExecuteRequest{Hash: hash, Spec: spec})
	if err != nil {
		// Failing to even build the dispatch is this backend's problem, not
		// the job's: requeue rather than terminally failing the job.
		return nil, fmt.Errorf("%w: encode dispatch to worker %s: %v", ErrBackendUnavailable, r.name, err)
	}
	resp, err := r.post(ctx, "/execute", body)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)

	switch resp.StatusCode {
	case http.StatusOK:
		var env sim.ResultEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return nil, fmt.Errorf("%w: worker %s returned an undecodable envelope: %v", ErrBackendUnavailable, r.name, err)
		}
		res, err := env.Open(hash)
		if err != nil {
			return nil, fmt.Errorf("%w: worker %s: %v", ErrBackendUnavailable, r.name, err)
		}
		return res, nil
	case http.StatusUnprocessableEntity:
		// The worker ran the simulation and it failed: that failure belongs
		// to the job, not the transport, and retrying elsewhere would only
		// fail the same way.
		return nil, fmt.Errorf("worker %s: %s", r.name, decodeErrorBody(resp.Body))
	default:
		return nil, fmt.Errorf("%w: worker %s: HTTP %d: %s", ErrBackendUnavailable, r.name, resp.StatusCode, decodeErrorBody(resp.Body))
	}
}

// ExecuteBatch implements Backend: the whole chunk rides one POST
// {url}/execute/batch round trip, with the context deadline scaled by
// chunk size so a large chunk gets the same per-cell budget a single
// dispatch does. Per-cell outcomes come back item-for-item; a worker-side
// per-cell condition (draining mid-chunk, corrupted item) requeues only
// that cell. A corrupt or miscounted response taints the whole exchange —
// there is no telling which cells to trust — so it fails the chunk at the
// transport level and every cell requeues on an honest backend.
//
// Workers predating the batch endpoint answer 404/405; the chunk falls
// back to concurrent per-cell dispatch, so a mixed-version cluster keeps
// working at the old cadence.
func (r *RemoteBackend) ExecuteBatch(ctx context.Context, specs []JobSpec, hashes []string) ([]BatchResult, error) {
	ctx, cancel := context.WithTimeout(ctx, time.Duration(len(specs))*r.timeout)
	defer cancel()
	r.mu.Lock()
	noBatch := r.noBatch
	r.mu.Unlock()
	if noBatch {
		return r.executeCells(ctx, specs, hashes), nil
	}

	items := make([]ExecuteRequest, len(specs))
	for i := range specs {
		items[i] = ExecuteRequest{Hash: hashes[i], Spec: specs[i]}
	}
	body, err := json.Marshal(BatchExecuteRequest{Items: items})
	if err != nil {
		return nil, fmt.Errorf("%w: encode batch dispatch to worker %s: %v", ErrBackendUnavailable, r.name, err)
	}
	resp, err := r.post(ctx, "/execute/batch", body)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)

	switch resp.StatusCode {
	case http.StatusOK:
		var br BatchExecuteResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			return nil, fmt.Errorf("%w: worker %s returned an undecodable batch response: %v", ErrBackendUnavailable, r.name, err)
		}
		if len(br.Items) != len(specs) {
			return nil, fmt.Errorf("%w: worker %s answered %d cells for a %d-cell chunk", ErrBackendUnavailable, r.name, len(br.Items), len(specs))
		}
		out := make([]BatchResult, len(specs))
		for i, it := range br.Items {
			switch {
			case it.Envelope != nil:
				res, err := it.Envelope.Open(hashes[i])
				if err != nil {
					return nil, fmt.Errorf("%w: worker %s: chunk cell %d: %v", ErrBackendUnavailable, r.name, i, err)
				}
				out[i] = BatchResult{Result: res}
			case it.Requeue:
				out[i] = BatchResult{Err: fmt.Errorf("%w: worker %s: %s", ErrBackendUnavailable, r.name, it.Error)}
			default:
				out[i] = BatchResult{Err: fmt.Errorf("worker %s: %s", r.name, it.Error)}
			}
		}
		return out, nil
	case http.StatusNotFound, http.StatusMethodNotAllowed:
		// An older worker without the batch route: remember and dispatch
		// the cells individually (concurrently, as the per-cell protocol
		// always has).
		r.mu.Lock()
		r.noBatch = true
		r.mu.Unlock()
		return r.executeCells(ctx, specs, hashes), nil
	default:
		return nil, fmt.Errorf("%w: worker %s: HTTP %d: %s", ErrBackendUnavailable, r.name, resp.StatusCode, decodeErrorBody(resp.Body))
	}
}

// executeCells is the batch-endpoint fallback: every cell dispatched as its
// own concurrent /execute round trip.
func (r *RemoteBackend) executeCells(ctx context.Context, specs []JobSpec, hashes []string) []BatchResult {
	out := make([]BatchResult, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Execute(ctx, specs[i], hashes[i])
			out[i] = BatchResult{Result: res, Err: err}
		}(i)
	}
	wg.Wait()
	return out
}

// post sends one JSON dispatch and classifies request-level failures as
// backend-unavailable. The caller owns the response body (drainClose it).
func (r *RemoteBackend) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: worker %s has an unusable url %q: %v", ErrBackendUnavailable, r.name, r.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: worker %s: %v", ErrBackendUnavailable, r.name, err)
	}
	return resp, nil
}

// decodeErrorBody extracts the {"error": ...} message the worker and server
// APIs use, falling back to the raw (truncated) body.
func decodeErrorBody(body io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}

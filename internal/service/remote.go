package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"constable/internal/sim"
)

// remoteRequestTimeout bounds one worker round trip. Simulations are
// seconds-long, not hours-long, so a request that has produced nothing for
// this long means the worker is wedged; the job requeues elsewhere (the
// worker's own run, if it ever finishes, still lands in the worker-local
// cache and is simply never collected).
const remoteRequestTimeout = 10 * time.Minute

// RemoteBackend executes jobs on one constable-worker over HTTP: each
// Execute is a single POST {url}/execute carrying the canonical spec and
// its content hash, answered with a full sim.ResultEnvelope. The envelope
// is verified against the dispatched hash before the result is accepted
// (alias defense, mirroring the persistent store's Load): a worker
// returning a mismatched or undecodable envelope is indistinguishable from
// a corrupt one, so the error wraps ErrBackendUnavailable and the job
// retries on an honest backend.
type RemoteBackend struct {
	name   string
	url    string // base URL, no trailing slash
	client *http.Client
}

// NewRemoteBackend returns a backend dispatching to the worker at url
// (e.g. http://10.0.0.5:8081).
func NewRemoteBackend(name, url string) *RemoteBackend {
	return &RemoteBackend{
		name:   name,
		url:    strings.TrimRight(url, "/"),
		client: &http.Client{Timeout: remoteRequestTimeout},
	}
}

// Name implements Backend.
func (r *RemoteBackend) Name() string { return r.name }

// Capacity implements Backend. A RemoteBackend is always dispatched through
// a MultiBackend slot, which owns the concurrency budget the worker
// advertised at registration; standalone it reports one slot.
func (r *RemoteBackend) Capacity() int { return 1 }

// Execute implements Backend: one job, one HTTP round trip.
//
// Status mapping: 200 carries a result envelope (verified against hash);
// 422 is the simulation's own failure, terminal for the job; anything else
// — transport errors, timeouts, 5xx, a closed worker — wraps
// ErrBackendUnavailable so the scheduler requeues the job.
func (r *RemoteBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	body, err := json.Marshal(ExecuteRequest{Hash: hash, Spec: spec})
	if err != nil {
		// Failing to even build the dispatch is this backend's problem, not
		// the job's: requeue rather than terminally failing the job.
		return nil, fmt.Errorf("%w: encode dispatch to worker %s: %v", ErrBackendUnavailable, r.name, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url+"/execute", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: worker %s has an unusable url %q: %v", ErrBackendUnavailable, r.name, r.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: worker %s: %v", ErrBackendUnavailable, r.name, err)
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		var env sim.ResultEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return nil, fmt.Errorf("%w: worker %s returned an undecodable envelope: %v", ErrBackendUnavailable, r.name, err)
		}
		res, err := env.Open(hash)
		if err != nil {
			return nil, fmt.Errorf("%w: worker %s: %v", ErrBackendUnavailable, r.name, err)
		}
		return res, nil
	case http.StatusUnprocessableEntity:
		// The worker ran the simulation and it failed: that failure belongs
		// to the job, not the transport, and retrying elsewhere would only
		// fail the same way.
		return nil, fmt.Errorf("worker %s: %s", r.name, decodeErrorBody(resp.Body))
	default:
		return nil, fmt.Errorf("%w: worker %s: HTTP %d: %s", ErrBackendUnavailable, r.name, resp.StatusCode, decodeErrorBody(resp.Body))
	}
}

// decodeErrorBody extracts the {"error": ...} message the worker and server
// APIs use, falling back to the raw (truncated) body.
func decodeErrorBody(body io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}

package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"constable/internal/sim"
)

// newStubScheduler returns a scheduler whose workers run fn instead of a
// real simulation. fn must be installed before the first Submit.
func newStubScheduler(t *testing.T, cfg Config, fn func(sim.Options) (*sim.RunResult, error)) *Scheduler {
	t.Helper()
	s := New(cfg)
	s.runFn = fn
	t.Cleanup(func() { s.Close() })
	return s
}

func countingRun(calls *atomic.Uint64) func(sim.Options) (*sim.RunResult, error) {
	return func(opts sim.Options) (*sim.RunResult, error) {
		calls.Add(1)
		return &sim.RunResult{Cycles: opts.Instructions}, nil
	}
}

func TestSchedulerRunsConcurrently(t *testing.T) {
	var calls atomic.Uint64
	s := newStubScheduler(t, Config{Workers: 4}, countingRun(&calls))
	name := testWorkload(t)

	jobs := make([]*Job, 0, 16)
	for i := 0; i < 16; i++ {
		j, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(1000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, j := range jobs {
		res, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Cycles != uint64(1000+i) {
			t.Errorf("job %d: got result for wrong spec (cycles %d)", i, res.Cycles)
		}
		if j.Status() != StatusDone {
			t.Errorf("job %d: status %s, want done", i, j.Status())
		}
	}
	if calls.Load() != 16 {
		t.Errorf("ran %d simulations, want 16 (all specs distinct)", calls.Load())
	}
}

func TestSchedulerDedupAndCache(t *testing.T) {
	var calls atomic.Uint64
	gate := make(chan struct{})
	s := newStubScheduler(t, Config{Workers: 2}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		calls.Add(1)
		return &sim.RunResult{Cycles: 42}, nil
	})
	name := testWorkload(t)
	spec := JobSpec{Workload: name, Mechanism: "constable", Instructions: 5000}

	// Two submissions while the first is still in flight share one job.
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Error("in-flight duplicate spec got a distinct job")
	}
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := j1.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// A third submission after completion is served from the cache.
	j3, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j3.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !j3.CacheHit() {
		t.Error("post-completion duplicate was not a cache hit")
	}
	if res.Cycles != 42 {
		t.Errorf("cached result cycles = %d, want 42", res.Cycles)
	}
	if calls.Load() != 1 {
		t.Errorf("ran %d simulations for 3 identical submissions, want 1", calls.Load())
	}
	m := s.Metrics()
	if m.JobsSubmitted != 3 || m.JobsDeduped != 1 || m.CacheHits != 1 || m.JobsCompleted != 1 {
		t.Errorf("metrics = %+v, want submitted 3 / deduped 1 / cache hits 1 / completed 1", m)
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	gate := make(chan struct{})
	s := newStubScheduler(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{}, nil
	})
	name := testWorkload(t)

	blocker, err := s.Submit(JobSpec{Workload: name, Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker has picked the blocker up.
	deadline := time.Now().Add(5 * time.Second)
	for blocker.Status() != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started running")
		}
		time.Sleep(time.Millisecond)
	}

	victim, err := s.Submit(JobSpec{Workload: name, Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if victim.Status() != StatusQueued {
		t.Fatalf("victim status %s, want queued", victim.Status())
	}
	if !s.Cancel(victim.ID) {
		t.Fatal("Cancel(queued job) = false")
	}
	if victim.Status() != StatusCanceled {
		t.Errorf("victim status %s, want canceled", victim.Status())
	}
	if _, err := victim.Result(); !errors.Is(err, ErrCanceled) {
		t.Errorf("victim error = %v, want ErrCanceled", err)
	}
	// A running job cannot be canceled.
	if s.Cancel(blocker.ID) {
		t.Error("Cancel(running job) = true")
	}
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// The canceled spec must re-run when resubmitted (nothing was cached).
	resub, err := s.Submit(JobSpec{Workload: name, Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resub.Wait(ctx); err != nil {
		t.Errorf("resubmitted canceled spec failed: %v", err)
	}
}

func TestSchedulerFailurePropagates(t *testing.T) {
	boom := errors.New("boom")
	s := newStubScheduler(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		return nil, boom
	})
	j, err := s.Submit(JobSpec{Workload: testWorkload(t), Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, boom) {
		t.Fatalf("Wait error = %v, want boom", err)
	}
	if j.Status() != StatusFailed {
		t.Errorf("status %s, want failed", j.Status())
	}
	// Failures must not be cached: resubmitting runs again.
	j2, err := s.Submit(JobSpec{Workload: testWorkload(t), Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if j2.CacheHit() {
		t.Error("failed result was served from cache")
	}
}

func TestSchedulerShutdown(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1})
	s.runFn = func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{}, nil
	}
	name := testWorkload(t)
	running, _ := s.Submit(JobSpec{Workload: name, Instructions: 1000})
	deadline := time.Now().Add(5 * time.Second)
	for running.Status() != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, _ := s.Submit(JobSpec{Workload: name, Instructions: 2000})

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// The queued job is canceled promptly even while one is still running.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := queued.Wait(ctx); !errors.Is(err, ErrCanceled) {
		t.Errorf("queued job error = %v, want ErrCanceled", err)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := running.Result(); err != nil {
		t.Errorf("running job should have finished cleanly, got %v", err)
	}
	if _, err := s.Submit(JobSpec{Workload: name, Instructions: 3000}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Submit after shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestSchedulerJobRetention(t *testing.T) {
	var calls atomic.Uint64
	s := newStubScheduler(t, Config{Workers: 1, JobRetention: 2}, countingRun(&calls))
	name := testWorkload(t)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(1000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Only the 2 most recently finished jobs stay pollable.
	for _, id := range ids[:2] {
		if _, ok := s.Get(id); ok {
			t.Errorf("job %s still pollable beyond retention", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := s.Get(id); !ok {
			t.Errorf("job %s evicted within retention", id)
		}
	}
}

// TestSchedulerRealSimulation exercises the scheduler end-to-end over the
// actual simulator once, checking the result matches a direct sim.Run.
func TestSchedulerRealSimulation(t *testing.T) {
	s := New(Config{Workers: 2})
	t.Cleanup(func() { s.Close() })
	name := testWorkload(t)
	spec := JobSpec{Workload: name, Mechanism: "constable", Instructions: 5000}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := s.RunSync(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.IPC != want.IPC {
		t.Errorf("scheduler result (cycles %d, IPC %.4f) differs from direct sim.Run (cycles %d, IPC %.4f)",
			got.Cycles, got.IPC, want.Cycles, want.IPC)
	}
}

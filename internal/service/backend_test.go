package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"constable/internal/sim"
)

// fakeBackend is a scriptable Backend for dispatch-layer tests.
type fakeBackend struct {
	name string
	cap  int

	mu    sync.Mutex
	calls int
	// gate, when non-nil, blocks each Execute until it is closed.
	gate chan struct{}
	fn   func(spec JobSpec, hash string) (*sim.RunResult, error)
}

func (f *fakeBackend) Name() string  { return f.name }
func (f *fakeBackend) Capacity() int { return f.cap }
func (f *fakeBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	f.mu.Lock()
	f.calls++
	gate := f.gate
	f.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return f.fn(spec, hash)
}

// ExecuteBatch runs the chunk cell-by-cell so per-item call counts keep
// meaning "cells executed" in the assertions below.
func (f *fakeBackend) ExecuteBatch(ctx context.Context, specs []JobSpec, hashes []string) ([]BatchResult, error) {
	out := make([]BatchResult, len(specs))
	for i := range specs {
		res, err := f.Execute(ctx, specs[i], hashes[i])
		out[i] = BatchResult{Result: res, Err: err}
	}
	return out, nil
}

func (f *fakeBackend) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func okResult(spec JobSpec, hash string) (*sim.RunResult, error) {
	return &sim.RunResult{Cycles: spec.Instructions}, nil
}

// newDispatchScheduler returns a scheduler with no local execution slots:
// everything must flow through backends added to its MultiBackend.
func newDispatchScheduler(t *testing.T) *Scheduler {
	t.Helper()
	s, err := Open(Config{Workers: -1, WorkerTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDispatcherParksUntilCapacityAppears(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)
	j, err := s.Submit(JobSpec{Workload: name, Instructions: 1234})
	if err != nil {
		t.Fatal(err)
	}
	// With zero total capacity the job must stay queued, not fail.
	time.Sleep(50 * time.Millisecond)
	if got := j.Status(); got != StatusQueued {
		t.Fatalf("status with no capacity = %s, want queued", got)
	}
	// A worker registering makes the parked queue flow.
	fb := &fakeBackend{name: "fb", cap: 2, fn: okResult}
	s.Backend().AddWorker("fb", "fake://fb", fb.cap, fb)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1234 {
		t.Errorf("result cycles = %d, want 1234", res.Cycles)
	}
	if fb.callCount() != 1 {
		t.Errorf("backend calls = %d, want 1", fb.callCount())
	}
}

func TestMultiBackendCapacityAwareDistribution(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)
	// A touch of execution latency so in-flight jobs pile up and saturate
	// big's slots — otherwise instant completions let the most-free-slots
	// rule send everything to the larger worker.
	slowOK := func(spec JobSpec, hash string) (*sim.RunResult, error) {
		time.Sleep(2 * time.Millisecond)
		return okResult(spec, hash)
	}
	big := &fakeBackend{name: "big", cap: 4, fn: slowOK}
	small := &fakeBackend{name: "small", cap: 1, fn: slowOK}
	s.Backend().AddWorker("big", "fake://big", big.cap, big)
	s.Backend().AddWorker("small", "fake://small", small.cap, small)

	if got := s.Backend().Capacity(); got != 5 {
		t.Fatalf("multi capacity = %d, want 5", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var jobs []*Job
	for i := 0; i < 20; i++ {
		j, err := s.Submit(JobSpec{Workload: name, Instructions: uint64(1000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if big.callCount()+small.callCount() != 20 {
		t.Fatalf("calls: big %d + small %d, want 20 total", big.callCount(), small.callCount())
	}
	// Capacity-aware dispatch must exercise both workers, weighted toward
	// the bigger one.
	if big.callCount() == 0 || small.callCount() == 0 {
		t.Errorf("dispatch skipped a worker: big %d, small %d", big.callCount(), small.callCount())
	}
	views := s.Workers()
	var done uint64
	for _, v := range views {
		done += v.Completed
	}
	if done != 20 {
		t.Errorf("per-worker completed sum = %d, want 20", done)
	}
}

func TestBackendFailureRequeuesAndMarksUnhealthy(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)

	flaky := &fakeBackend{name: "flaky", cap: 1}
	flaky.fn = func(spec JobSpec, hash string) (*sim.RunResult, error) {
		return nil, fmt.Errorf("%w: connection reset", ErrBackendUnavailable)
	}
	fv := s.Backend().AddWorker("flaky", "fake://flaky", flaky.cap, flaky)

	j, err := s.Submit(JobSpec{Workload: name, Instructions: 4321})
	if err != nil {
		t.Fatal(err)
	}

	// The failing dispatch requeues the job and demotes the worker; with no
	// healthy capacity left the job parks.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().JobsRequeued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job was never requeued")
		}
		time.Sleep(time.Millisecond)
	}
	if v, ok := s.Backend().Worker(fv.ID); !ok || v.Healthy || v.Failures == 0 {
		t.Errorf("flaky worker view = %+v, want unhealthy with failures", v)
	}

	// An honest worker arriving picks the requeued job up.
	honest := &fakeBackend{name: "honest", cap: 1, fn: okResult}
	s.Backend().AddWorker("honest", "fake://honest", honest.cap, honest)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 4321 {
		t.Errorf("result cycles = %d, want 4321", res.Cycles)
	}
	if honest.callCount() != 1 {
		t.Errorf("honest calls = %d, want 1", honest.callCount())
	}

	// Heartbeats restore the flaky worker's dispatch eligibility — but only
	// once the failure-backoff window has passed, so keep heartbeating.
	restoreDeadline := time.Now().Add(5 * time.Second)
	for {
		v, ok := s.HeartbeatWorker(fv.ID)
		if !ok {
			t.Fatal("heartbeat lost the lease")
		}
		if v.Healthy {
			break
		}
		if time.Now().After(restoreDeadline) {
			t.Fatal("heartbeat never restored health after the backoff window")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := s.Backend().Capacity(); got != 2 {
		t.Errorf("capacity after restore = %d, want 2", got)
	}
}

// TestFailureBackoffGatesHeartbeatRestore pins the anti-livelock rule: a
// worker that heartbeats fine but failed its last dispatch is not restored
// by a heartbeat inside the backoff window — otherwise a reachable but
// broken worker (wrong -advertise URL, say) would win every dispatch and
// spin the queue in a hot requeue loop.
func TestFailureBackoffGatesHeartbeatRestore(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)
	broken := &fakeBackend{name: "broken", cap: 2}
	broken.fn = func(spec JobSpec, hash string) (*sim.RunResult, error) {
		return nil, fmt.Errorf("%w: no route to host", ErrBackendUnavailable)
	}
	bv := s.Backend().AddWorker("broken", "fake://broken", broken.cap, broken)

	j, err := s.Submit(JobSpec{Workload: name, Instructions: 9999})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().JobsRequeued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never requeued")
		}
		time.Sleep(time.Millisecond)
	}
	if v, ok := s.HeartbeatWorker(bv.ID); !ok || v.Healthy {
		t.Fatalf("heartbeat inside the backoff window restored health: %+v", v)
	}
	calls := broken.callCount()
	// Even with heartbeats arriving, the suspended worker must not be
	// redispatched to during the backoff window.
	for i := 0; i < 10; i++ {
		s.HeartbeatWorker(bv.ID)
		time.Sleep(5 * time.Millisecond)
	}
	if got := broken.callCount(); got != calls {
		t.Errorf("suspended worker received %d more dispatches", got-calls)
	}
	s.Abandon(j.ID)
}

// TestExpiredLeaseAbortsInflightDispatch pins lease-expiry semantics: when
// a worker stops heartbeating with jobs in flight, those requests are
// aborted at lease expiry (not after the long remote request timeout) so
// the jobs requeue onto whoever is healthy.
func TestExpiredLeaseAbortsInflightDispatch(t *testing.T) {
	s, err := Open(Config{Workers: -1, WorkerTTL: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	name := testWorkload(t)

	// The wedged worker accepts the dispatch and never answers: its
	// Execute only returns when the slot's lease-expiry cancels the
	// context.
	s.Backend().AddWorker("wedged", "fake://wedged", 1, &ctxBlockingBackend{})

	start := time.Now()
	j, err := s.Submit(JobSpec{Workload: name, Instructions: 3333})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().JobsRequeued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight job on the expired worker was never requeued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("requeue took %v; lease expiry should abort in-flight work promptly", waited)
	}

	honest := &fakeBackend{name: "honest", cap: 1, fn: okResult}
	s.Backend().AddWorker("honest", "fake://honest", honest.cap, honest)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 3333 {
		t.Errorf("result cycles = %d, want 3333", res.Cycles)
	}
}

// ctxBlockingBackend hangs every Execute until its context is canceled —
// the shape of a wedged worker with an open socket.
type ctxBlockingBackend struct{}

func (*ctxBlockingBackend) Name() string  { return "wedged" }
func (*ctxBlockingBackend) Capacity() int { return 1 }
func (*ctxBlockingBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (b *ctxBlockingBackend) ExecuteBatch(ctx context.Context, specs []JobSpec, hashes []string) ([]BatchResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestRequeueRespectsAbandonRefcounts(t *testing.T) {
	s := newDispatchScheduler(t)
	name := testWorkload(t)

	gate := make(chan struct{})
	dying := &fakeBackend{name: "dying", cap: 1, gate: gate}
	dying.fn = func(spec JobSpec, hash string) (*sim.RunResult, error) {
		return nil, fmt.Errorf("%w: worker killed", ErrBackendUnavailable)
	}
	s.Backend().AddWorker("dying", "fake://dying", dying.cap, dying)

	j, err := s.Submit(JobSpec{Workload: name, Instructions: 7777})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Status() != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never dispatched")
		}
		time.Sleep(time.Millisecond)
	}

	// The only submitter walks away while the job is in flight on the
	// doomed worker; when the worker dies, the job must be canceled, not
	// requeued to simulate for no one.
	s.Abandon(j.ID)
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err != ErrCanceled {
		t.Fatalf("abandoned job's terminal error = %v, want ErrCanceled", err)
	}
	if got := s.Metrics().JobsRequeued; got != 0 {
		t.Errorf("requeued = %d, want 0 (nobody wanted the job anymore)", got)
	}
}

func TestWorkerLeaseExpiry(t *testing.T) {
	s, err := Open(Config{Workers: -1, WorkerTTL: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	if _, err := s.RegisterWorker("ghost", "http://127.0.0.1:1", 2); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Workers()); n != 1 {
		t.Fatalf("workers after register = %d, want 1", n)
	}
	// No heartbeats arrive: the janitor must expire the lease.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Workers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := s.Metrics()
	if m.WorkersRegistered != 1 || m.WorkersLost != 1 {
		t.Errorf("workers registered/lost = %d/%d, want 1/1", m.WorkersRegistered, m.WorkersLost)
	}
	if m.BackendCapacity != 0 {
		t.Errorf("capacity after expiry = %d, want 0", m.BackendCapacity)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	s, err := Open(Config{Workers: -1, WorkerTTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	v, err := s.RegisterWorker("live", "http://127.0.0.1:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	stop := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(stop) {
		if _, ok := s.HeartbeatWorker(v.ID); !ok {
			t.Fatal("heartbeat lost a live lease")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := len(s.Workers()); n != 1 {
		t.Errorf("workers after heartbeating = %d, want 1", n)
	}
	if !s.DeregisterWorker(v.ID) {
		t.Error("deregister of a live worker failed")
	}
	if n := len(s.Workers()); n != 0 {
		t.Errorf("workers after deregister = %d, want 0", n)
	}
}

package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics holds the scheduler's cumulative counters.
type metrics struct {
	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	deduped   atomic.Uint64
	// requeued counts jobs bounced back to the queue after a backend
	// failure (remote worker died mid-job or returned a bad envelope).
	requeued atomic.Uint64
	// admissionRejected counts submissions refused by admission control
	// (class queue at its watermark → HTTP 429 + Retry-After).
	admissionRejected atomic.Uint64
	// executed counts terminal successes that actually ran a simulation on
	// some backend — completed minus dispatch-time store short-circuits,
	// and excluding submit-time cache/store/share hits, which never reach
	// a backend at all. The global dedup ratio derives from it.
	executed atomic.Uint64

	// Remote result-sharing families. On a server they count the
	// /v1/results endpoint: GETs served (remoteHits) or 404'd
	// (remoteMisses), write-backs accepted (remoteWritebacks) or refused on
	// envelope verification (remoteRejected). On a consulting scheduler — a
	// worker, or a server federated via Config.Share — they count its own
	// consultations: results adopted, lookups that missed, write-backs that
	// landed, and envelopes refused because their hash or schema failed
	// verification.
	remoteHits       atomic.Uint64
	remoteMisses     atomic.Uint64
	remoteWritebacks atomic.Uint64
	remoteRejected   atomic.Uint64

	// batchesDispatched counts multi-cell chunks handed to a backend in one
	// round trip; batchCells the cells they carried. Their ratio is the
	// realized mean chunk size — the lever POST /execute/batch exists for.
	batchesDispatched atomic.Uint64
	batchCells        atomic.Uint64

	workersRegistered atomic.Uint64
	workersLost       atomic.Uint64 // deregistered, lease-expired

	sweepsStarted   atomic.Uint64
	sweepsCompleted atomic.Uint64
	sweepsFailed    atomic.Uint64
	sweepsCanceled  atomic.Uint64

	// simInstructions counts committed-path instructions actually simulated
	// (cache hits excluded); simBusyNanos the worker time spent simulating.
	simInstructions atomic.Uint64
	simBusyNanos    atomic.Uint64
}

// MetricsSnapshot is a point-in-time view of the scheduler's counters,
// suitable for JSON or the plaintext /metrics endpoint.
type MetricsSnapshot struct {
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsDeduped   uint64 `json:"jobs_deduped"`
	JobsRequeued  uint64 `json:"jobs_requeued"`
	JobsRunning   int    `json:"jobs_running"`
	QueueDepth    int    `json:"queue_depth"`
	// JobsExecuted counts jobs that actually ran a simulation on some
	// backend; every other submission was answered by a dedup, the LRU, the
	// disk store, the cluster share, or a dispatch-time short-circuit.
	// GlobalDedupRatio is (submitted − executed) / submitted — the fraction
	// of submitted work the dedup tiers absorbed.
	JobsExecuted     uint64  `json:"jobs_executed"`
	GlobalDedupRatio float64 `json:"global_dedup_ratio"`

	// Batched-dispatch families: chunks of ≥2 cells sent to one backend in
	// one round trip, and the cells they carried (single-cell dispatches
	// count in neither).
	BatchesDispatched uint64 `json:"batches_dispatched"`
	BatchCells        uint64 `json:"batch_cells"`

	// Worker/backend families. WorkersActive counts currently-registered
	// healthy remote workers; BackendCapacity is the total concurrent-job
	// budget (local slots + healthy workers) the dispatcher sees.
	WorkersRegistered uint64 `json:"workers_registered"`
	WorkersLost       uint64 `json:"workers_lost"`
	WorkersActive     int    `json:"workers_active"`
	BackendCapacity   int    `json:"backend_capacity"`

	SweepsStarted   uint64 `json:"sweeps_started"`
	SweepsCompleted uint64 `json:"sweeps_completed"`
	SweepsFailed    uint64 `json:"sweeps_failed"`
	SweepsCanceled  uint64 `json:"sweeps_canceled"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Store counters are zero when no --data-dir is configured.
	StoreHits    uint64 `json:"store_hits"`
	StoreMisses  uint64 `json:"store_misses"`
	StoreWrites  uint64 `json:"store_writes"`
	StoreErrors  uint64 `json:"store_errors"`
	StoreCorrupt uint64 `json:"store_corrupt"`

	// Remote result-sharing families (cluster-wide dedup). On a server:
	// GET /v1/results served/404'd and PUT write-backs accepted/refused. On
	// a consulting worker or federated server: its own lookups and
	// write-backs against the upstream store. Rejected counts envelopes
	// refused on hash/schema verification — on either side, never adopted.
	StoreRemoteHits       uint64 `json:"store_remote_hits"`
	StoreRemoteMisses     uint64 `json:"store_remote_misses"`
	StoreRemoteWritebacks uint64 `json:"store_remote_writebacks"`
	StoreRemoteRejected   uint64 `json:"store_remote_rejected"`

	// Trace-store families. TracesFetched counts every hash-verified blob
	// read served out of the store — worker downloads and local resolves
	// alike; TracesCorrupt counts blobs rejected on hash or decode
	// verification.
	TracesUploaded   uint64 `json:"traces_uploaded"`
	TracesDeduped    uint64 `json:"traces_deduped"`
	TracesFetched    uint64 `json:"traces_fetched"`
	TracesDeleted    uint64 `json:"traces_deleted"`
	TracesCorrupt    uint64 `json:"traces_corrupt"`
	TracesStored     int    `json:"traces_stored"`
	TraceBytesStored int64  `json:"trace_bytes_stored"`

	SimInstructions       uint64  `json:"sim_instructions"`
	SimInstructionsPerSec float64 `json:"sim_instructions_per_sec"`

	// Fair-share scheduling families. AdmissionRejected counts submissions
	// refused because their class queue sat at its watermark; Classes
	// breaks queueing down per scheduling class. Hedge counters track
	// straggler hedging: duplicates launched, duplicates that beat (or
	// saved) their primary, duplicates wasted.
	AdmissionRejected uint64         `json:"admission_rejected"`
	HedgesDispatched  uint64         `json:"hedges_dispatched"`
	HedgesWon         uint64         `json:"hedges_won"`
	HedgesLost        uint64         `json:"hedges_lost"`
	Classes           []ClassMetrics `json:"classes,omitempty"`
}

// ClassMetrics is the per-scheduling-class slice of the snapshot.
type ClassMetrics struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	// Watermark is the class's admission limit (0 = unlimited).
	Watermark int `json:"watermark,omitempty"`
	Depth     int `json:"depth"`
	// Admitted counts jobs that entered this class's queue; Rejected those
	// refused at the watermark; Dispatched those handed to a backend
	// (requeues re-count); Requeued those bounced back after a backend
	// failure. QueueWaitSeconds accumulates the submit→dispatch wait of
	// every dispatched job — divided by Dispatched it is the class's mean
	// queue wait, the number the interactive class's weight exists to keep
	// small.
	Admitted         uint64  `json:"admitted"`
	Rejected         uint64  `json:"rejected"`
	Dispatched       uint64  `json:"dispatched"`
	Requeued         uint64  `json:"requeued"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
}

// Metrics returns a snapshot of the scheduler's counters.
func (s *Scheduler) Metrics() MetricsSnapshot {
	hits, misses := s.cache.Stats()
	m := MetricsSnapshot{
		JobsSubmitted: s.metrics.submitted.Load(),
		JobsCompleted: s.metrics.completed.Load(),
		JobsFailed:    s.metrics.failed.Load(),
		JobsCanceled:  s.metrics.canceled.Load(),
		JobsDeduped:   s.metrics.deduped.Load(),
		JobsRequeued:  s.metrics.requeued.Load(),
		JobsExecuted:  s.metrics.executed.Load(),
		JobsRunning:   s.Running(),
		QueueDepth:    s.QueueDepth(),

		StoreRemoteHits:       s.metrics.remoteHits.Load(),
		StoreRemoteMisses:     s.metrics.remoteMisses.Load(),
		StoreRemoteWritebacks: s.metrics.remoteWritebacks.Load(),
		StoreRemoteRejected:   s.metrics.remoteRejected.Load(),

		BatchesDispatched: s.metrics.batchesDispatched.Load(),
		BatchCells:        s.metrics.batchCells.Load(),

		WorkersRegistered: s.metrics.workersRegistered.Load(),
		WorkersLost:       s.metrics.workersLost.Load(),
		BackendCapacity:   s.backend.Capacity(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEntries:      s.cache.Len(),

		SweepsStarted:   s.metrics.sweepsStarted.Load(),
		SweepsCompleted: s.metrics.sweepsCompleted.Load(),
		SweepsFailed:    s.metrics.sweepsFailed.Load(),
		SweepsCanceled:  s.metrics.sweepsCanceled.Load(),
	}
	if s.store != nil {
		st := s.store.Stats()
		m.StoreHits = st.hits
		m.StoreMisses = st.misses
		m.StoreWrites = st.writes
		m.StoreErrors = st.errors
		m.StoreCorrupt = st.corrupt
	}
	ts := s.traces.Stats()
	m.TracesUploaded = ts.uploaded
	m.TracesDeduped = ts.deduped
	m.TracesFetched = ts.fetched
	m.TracesDeleted = ts.deleted
	m.TracesCorrupt = ts.corrupt
	m.TracesStored = ts.stored
	m.TraceBytesStored = ts.bytes
	for _, w := range s.backend.Workers() {
		if w.Healthy {
			m.WorkersActive++
		}
	}
	if total := hits + misses; total > 0 {
		m.CacheHitRate = float64(hits) / float64(total)
	}
	if m.JobsSubmitted > 0 {
		m.GlobalDedupRatio = float64(m.JobsSubmitted-m.JobsExecuted) / float64(m.JobsSubmitted)
	}
	m.SimInstructions = s.metrics.simInstructions.Load()
	if busy := s.metrics.simBusyNanos.Load(); busy > 0 {
		m.SimInstructionsPerSec = float64(m.SimInstructions) / (float64(busy) / 1e9)
	}
	m.AdmissionRejected = s.metrics.admissionRejected.Load()
	m.HedgesDispatched, m.HedgesWon, m.HedgesLost = s.backend.hedgeStats()
	m.Classes = s.classMetrics()
	return m
}

// classMetrics snapshots the per-class queueing counters in class-creation
// order (stable across scrapes — classes are never deleted).
func (s *Scheduler) classMetrics() []ClassMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ClassMetrics, 0, len(s.queues.order))
	for _, cq := range s.queues.order {
		out = append(out, ClassMetrics{
			Name:             cq.name,
			Weight:           cq.weight,
			Watermark:        s.queues.watermark(cq.name),
			Depth:            len(cq.jobs),
			Admitted:         cq.admitted,
			Rejected:         cq.rejected,
			Dispatched:       cq.dispatched,
			Requeued:         cq.requeued,
			QueueWaitSeconds: float64(cq.waitNanos) / 1e9,
		})
	}
	return out
}

// WriteTo renders the snapshot in Prometheus text exposition format.
func (m MetricsSnapshot) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(name string, value any) error {
		c, err := fmt.Fprintf(w, "constable_%s %v\n", name, value)
		n += int64(c)
		return err
	}
	for _, row := range []struct {
		name  string
		value any
	}{
		{"jobs_submitted_total", m.JobsSubmitted},
		{"jobs_completed_total", m.JobsCompleted},
		{"jobs_failed_total", m.JobsFailed},
		{"jobs_canceled_total", m.JobsCanceled},
		{"jobs_deduped_total", m.JobsDeduped},
		{"jobs_requeued_total", m.JobsRequeued},
		{"jobs_executed_total", m.JobsExecuted},
		{"global_dedup_ratio", m.GlobalDedupRatio},
		{"jobs_running", m.JobsRunning},
		{"queue_depth", m.QueueDepth},
		{"batches_dispatched_total", m.BatchesDispatched},
		{"batch_cells_total", m.BatchCells},
		{"workers_registered_total", m.WorkersRegistered},
		{"workers_lost_total", m.WorkersLost},
		{"workers_active", m.WorkersActive},
		{"backend_capacity", m.BackendCapacity},
		{"sweeps_started_total", m.SweepsStarted},
		{"sweeps_completed_total", m.SweepsCompleted},
		{"sweeps_failed_total", m.SweepsFailed},
		{"sweeps_canceled_total", m.SweepsCanceled},
		{"cache_hits_total", m.CacheHits},
		{"cache_misses_total", m.CacheMisses},
		{"cache_entries", m.CacheEntries},
		{"cache_hit_rate", m.CacheHitRate},
		{"store_hits_total", m.StoreHits},
		{"store_misses_total", m.StoreMisses},
		{"store_writes_total", m.StoreWrites},
		{"store_errors_total", m.StoreErrors},
		{"store_corrupt_total", m.StoreCorrupt},
		{"store_remote_hits_total", m.StoreRemoteHits},
		{"store_remote_misses_total", m.StoreRemoteMisses},
		{"store_remote_writebacks_total", m.StoreRemoteWritebacks},
		{"store_remote_rejected_total", m.StoreRemoteRejected},
		{"traces_uploaded_total", m.TracesUploaded},
		{"traces_deduped_total", m.TracesDeduped},
		{"traces_fetched_total", m.TracesFetched},
		{"traces_deleted_total", m.TracesDeleted},
		{"traces_corrupt_total", m.TracesCorrupt},
		{"traces_stored", m.TracesStored},
		{"trace_bytes_stored", m.TraceBytesStored},
		{"sim_instructions_total", m.SimInstructions},
		{"sim_instructions_per_second", m.SimInstructionsPerSec},
		{"admission_rejected_total", m.AdmissionRejected},
		{"hedges_dispatched_total", m.HedgesDispatched},
		{"hedges_won_total", m.HedgesWon},
		{"hedges_lost_total", m.HedgesLost},
	} {
		if err := write(row.name, row.value); err != nil {
			return n, err
		}
	}
	for _, c := range m.Classes {
		for _, row := range []struct {
			name  string
			value any
		}{
			{"class_weight", c.Weight},
			{"class_watermark", c.Watermark},
			{"class_queue_depth", c.Depth},
			{"class_admitted_total", c.Admitted},
			{"class_rejected_total", c.Rejected},
			{"class_dispatched_total", c.Dispatched},
			{"class_requeued_total", c.Requeued},
			{"class_queue_wait_seconds_total", c.QueueWaitSeconds},
		} {
			c2, err := fmt.Fprintf(w, "constable_%s{class=%q} %v\n", row.name, c.Name, row.value)
			n += int64(c2)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"constable/internal/sim"
)

// WorkerView is the API representation of one registered remote worker.
type WorkerView struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	URL      string `json:"url"`
	Capacity int    `json:"capacity"`
	// Healthy reports whether the worker is eligible for dispatch. A
	// transport failure marks it unhealthy; a later heartbeat restores it.
	Healthy bool `json:"healthy"`
	// Inflight is the number of jobs currently dispatched to the worker.
	Inflight int `json:"inflight"`
	// Completed counts jobs the worker finished successfully.
	Completed uint64 `json:"completed"`
	// Failures counts transport-level failures (died mid-request, bad
	// envelope) attributed to the worker.
	Failures     uint64    `json:"failures"`
	RegisteredAt time.Time `json:"registered_at"`
	LastSeen     time.Time `json:"last_seen"`
}

// workerSlot tracks one backend's dispatch state inside a MultiBackend: its
// concurrency budget, in-flight count, health and (for remotes) lease
// bookkeeping. All fields are guarded by the owning MultiBackend's mutex,
// except ctx/cancel which are assigned once before the slot is published.
type workerSlot struct {
	id      string
	backend Backend
	remote  bool

	capacity  int
	inflight  int
	healthy   bool
	completed uint64
	failures  uint64

	// consecFails counts consecutive transport failures; suspendedUntil is
	// the earliest instant a heartbeat may restore health again. The
	// exponential suspension prevents a worker that heartbeats fine but
	// fails every dispatch (e.g. a wrong -advertise URL behind NAT) from
	// livelocking the queue in a hot dispatch/fail/requeue loop.
	consecFails    int
	suspendedUntil time.Time

	// ctx is canceled when the slot's lease expires, aborting the expired
	// worker's in-flight requests so their jobs requeue immediately
	// instead of waiting out the full remote request timeout. Graceful
	// deregistration does not cancel it: a live worker drains its
	// in-flight jobs. Nil for the local slot.
	ctx    context.Context
	cancel context.CancelFunc

	name       string
	url        string
	registered time.Time
	lastSeen   time.Time
}

// failureSuspension is the health-restore backoff after the n-th (1-based)
// consecutive transport failure: 500ms doubling up to 30s.
func failureSuspension(n int) time.Duration {
	d := 500 * time.Millisecond
	for i := 1; i < n && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

func (ws *workerSlot) view() WorkerView {
	return WorkerView{
		ID:           ws.id,
		Name:         ws.name,
		URL:          ws.url,
		Capacity:     ws.capacity,
		Healthy:      ws.healthy,
		Inflight:     ws.inflight,
		Completed:    ws.completed,
		Failures:     ws.failures,
		RegisteredAt: ws.registered,
		LastSeen:     ws.lastSeen,
	}
}

// MultiBackend composes a local backend with any number of dynamically
// registered remote workers under capacity-aware dispatch: Execute hands
// each job to the eligible backend with the most free slots (local first on
// ties), tracks per-worker in-flight counts, and does per-worker
// health/failure accounting — a worker whose request fails at the transport
// level is marked unhealthy and excluded from dispatch until a heartbeat
// restores it or its lease expires. Capacity is the sum of the local pool
// and every healthy worker, so the scheduler's dispatcher automatically
// widens as workers register and narrows as they fail.
type MultiBackend struct {
	mu     sync.Mutex
	cond   *sync.Cond
	local  *workerSlot
	slots  map[string]*workerSlot // remote workers by ID
	order  []string               // registration order, for stable listings
	nextID uint64

	// maxBatch is the owning scheduler's chunk-size cap. Above 1 it also
	// doubles each remote slot's dispatch budget (see budgetLocked): the
	// worker can hold one chunk running and one queued, so its pool never
	// drains dry while a finished chunk's response is on the wire.
	maxBatch int

	// onChange, when set (the owning scheduler installs it), is invoked
	// without the lock held whenever total capacity may have changed, so
	// the dispatcher re-evaluates its gate.
	onChange func()

	// resultLookup, when set (the owning scheduler installs it at Open,
	// before dispatch starts), resolves a JobSpec hash to an
	// already-finished result so a chunk about to dispatch can short-circuit
	// cells whose results landed — via a worker write-back or a peer process
	// sharing the data-dir — after they were submitted. It must be cheap on
	// a miss and must return a caller-owned copy on a hit.
	resultLookup func(hash string) *sim.RunResult

	// hedgeAfter, when positive, arms hedged dispatch: a single-cell
	// dispatch to a remote worker that hasn't answered within hedgeAfter
	// is duplicated onto the next-best slot, first verified result wins,
	// the loser's request is canceled. hedgeGate (the owning scheduler
	// installs it) reports whether hedging is currently worthwhile — only
	// once the queue has drained, i.e. at a sweep tail, where a spare slot
	// has no queued cell to serve instead. Both are assigned at Open,
	// before dispatch starts; hedgeGate must be called without m.mu held.
	hedgeAfter time.Duration
	hedgeGate  func() bool

	hedgesDispatched atomic.Uint64
	hedgesWon        atomic.Uint64
	hedgesLost       atomic.Uint64
}

// hedgeStats returns the cumulative hedged-dispatch counters: hedges
// launched, hedges that beat (or saved) their primary, and hedges whose
// primary answered first or that failed themselves.
func (m *MultiBackend) hedgeStats() (dispatched, won, lost uint64) {
	return m.hedgesDispatched.Load(), m.hedgesWon.Load(), m.hedgesLost.Load()
}

// NewMultiBackend returns a MultiBackend dispatching to local (required;
// use a zero-capacity LocalBackend for a dispatch-only server) and to any
// workers registered later.
func NewMultiBackend(local Backend) *MultiBackend {
	m := &MultiBackend{
		local: &workerSlot{
			id:       "local",
			name:     local.Name(),
			backend:  local,
			capacity: local.Capacity(),
			healthy:  true,
		},
		slots: make(map[string]*workerSlot),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// setWorkloadResolver forwards the scheduler's trace-aware workload
// resolver to the wrapped local backend, when it wants one (remote workers
// resolve through their own schedulers). Called once at Open, before
// dispatch starts.
func (m *MultiBackend) setWorkloadResolver(r WorkloadResolver) {
	if s, ok := m.local.backend.(workloadResolverSetter); ok {
		s.setWorkloadResolver(r)
	}
}

// setResultLookup installs the dispatch-time store probe. Called once at
// Open, before dispatch starts.
func (m *MultiBackend) setResultLookup(lookup func(hash string) *sim.RunResult) {
	m.resultLookup = lookup
}

// Name implements Backend.
func (m *MultiBackend) Name() string { return "multi" }

// Capacity implements Backend: the local pool plus every healthy worker.
func (m *MultiBackend) Capacity() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.capacityLocked()
}

func (m *MultiBackend) capacityLocked() int {
	total := m.local.capacity
	for _, ws := range m.slots {
		if ws.healthy {
			total += ws.capacity
		}
	}
	return total
}

// budgetLocked is the number of cells the dispatcher may have in flight on
// one slot. For the local pool it is exactly the pool's concurrency. For a
// remote worker under batched dispatch it is double the advertised
// capacity: the extra chunk queues on the worker's private scheduler and
// starts the moment the running chunk finishes, hiding the response round
// trip instead of idling the worker for it.
func (m *MultiBackend) budgetLocked(ws *workerSlot) int {
	if ws.remote && m.maxBatch > 1 {
		return 2 * ws.capacity
	}
	return ws.capacity
}

// DispatchBudget is the total number of cells the dispatcher may have in
// flight across every eligible slot — the gate the scheduler's dispatcher
// fills up to. It exceeds Capacity exactly when batched dispatch
// double-buffers remote workers.
func (m *MultiBackend) DispatchBudget() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.local.capacity
	for _, ws := range m.slots {
		if ws.healthy {
			total += m.budgetLocked(ws)
		}
	}
	return total
}

// AddWorker registers a remote worker and returns its assigned view. The
// new capacity becomes dispatchable immediately.
func (m *MultiBackend) AddWorker(name, url string, capacity int, backend Backend) WorkerView {
	now := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	m.nextID++
	ws := &workerSlot{
		id:         fmt.Sprintf("worker-%d", m.nextID),
		backend:    backend,
		remote:     true,
		capacity:   capacity,
		healthy:    true,
		ctx:        ctx,
		cancel:     cancel,
		name:       name,
		url:        url,
		registered: now,
		lastSeen:   now,
	}
	m.slots[ws.id] = ws
	m.order = append(m.order, ws.id)
	v := ws.view()
	m.cond.Broadcast()
	m.mu.Unlock()
	m.notify()
	return v
}

// RemoveWorker deregisters a worker. Jobs already dispatched to it keep
// running to completion (or to a transport failure, which requeues them);
// no new jobs are dispatched. It reports whether the worker existed.
func (m *MultiBackend) RemoveWorker(id string) bool {
	m.mu.Lock()
	_, ok := m.slots[id]
	if ok {
		delete(m.slots, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	if ok {
		m.notify()
	}
	return ok
}

// Heartbeat renews a worker's lease and — once the failure-backoff window
// has passed — restores its health, so a worker demoted by a transient
// transport failure becomes dispatchable again while one that fails every
// dispatch retries at a bounded, decaying rate instead of livelocking the
// queue. It returns the refreshed view, or false for an unknown ID — the
// worker should re-register.
func (m *MultiBackend) Heartbeat(id string) (WorkerView, bool) {
	m.mu.Lock()
	ws, ok := m.slots[id]
	if !ok {
		m.mu.Unlock()
		return WorkerView{}, false
	}
	ws.lastSeen = time.Now()
	restored := false
	if !ws.healthy && time.Now().After(ws.suspendedUntil) {
		ws.healthy = true
		restored = true
	}
	v := ws.view()
	if restored {
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	if restored {
		m.notify()
	}
	return v, true
}

// Worker returns one worker's view by ID.
func (m *MultiBackend) Worker(id string) (WorkerView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ws, ok := m.slots[id]
	if !ok {
		return WorkerView{}, false
	}
	return ws.view(), true
}

// Workers lists the registered remote workers in registration order.
func (m *MultiBackend) Workers() []WorkerView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerView, 0, len(m.order))
	for _, id := range m.order {
		if ws, ok := m.slots[id]; ok {
			out = append(out, ws.view())
		}
	}
	return out
}

// expire removes every worker whose lease (last heartbeat) is older than
// ttl, returning the removed views. The scheduler's janitor calls it
// periodically; jobs in flight on an expired worker fail at the transport
// level on their own and requeue.
func (m *MultiBackend) expire(ttl time.Duration) []WorkerView {
	cutoff := time.Now().Add(-ttl)
	var removed []WorkerView
	m.mu.Lock()
	for i := 0; i < len(m.order); {
		id := m.order[i]
		ws := m.slots[id]
		if ws != nil && ws.lastSeen.Before(cutoff) {
			removed = append(removed, ws.view())
			delete(m.slots, id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			// An expired worker is presumed dead: abort its in-flight
			// requests now so their jobs requeue immediately instead of
			// waiting out the remote request timeout.
			ws.cancel()
			continue
		}
		i++
	}
	if removed != nil {
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	if removed != nil {
		m.notify()
	}
	return removed
}

func (m *MultiBackend) notify() {
	if m.onChange != nil {
		m.onChange()
	}
}

// reservation is a claim of n in-flight cells on one slot, handed out by
// Reserve and settled by execute (or returned unused by release). The
// scheduler's dispatcher reserves first and pops the queue second, so jobs
// stay cancelable right up to the moment a backend is actually ready for
// them.
type reservation struct {
	m  *MultiBackend
	ws *workerSlot
	n  int

	// noHedge marks a reservation that must never hedge — hedge
	// reservations themselves carry it, so a straggling hedge cannot
	// recursively hedge again.
	noHedge bool
}

// Granted is the number of cells the reservation holds.
func (r *reservation) Granted() int { return r.n }

// shrink returns the unused tail of the reservation (the queue had fewer
// live jobs than the slot had room for).
func (r *reservation) shrink(to int) {
	if to >= r.n {
		return
	}
	r.m.mu.Lock()
	r.ws.inflight -= r.n - to
	r.n = to
	r.m.cond.Broadcast()
	r.m.mu.Unlock()
}

// release gives the whole reservation back without executing anything.
func (r *reservation) release() { r.shrink(0) }

// Reserve picks the eligible slot (healthy, below its dispatch budget) with
// the most free room, local winning ties, and claims up to want cells on it
// — the adaptive chunk size: a worker with three free slots gets a
// three-cell chunk even when forty cells are queued, so no single worker
// hoards the queue. When every eligible backend is saturated it waits for
// room; when no healthy backend exists at all it returns
// ErrBackendUnavailable so the dispatcher parks instead of spinning.
func (m *MultiBackend) Reserve(ctx context.Context, want int) (*reservation, error) {
	if want < 1 {
		want = 1
	}
	unhook := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer unhook()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var best *workerSlot
		bestFree := 0
		// The local slot honors the same failure suspension as workers: a
		// custom Config.Backend that fails at the transport level backs
		// off instead of spinning (sim.Run-backed local pools never
		// return ErrBackendUnavailable, so this never gates them).
		if free := m.local.capacity - m.local.inflight; free > 0 && time.Now().After(m.local.suspendedUntil) {
			best, bestFree = m.local, free
		}
		for _, id := range m.order {
			ws := m.slots[id]
			if ws == nil || !ws.healthy {
				continue
			}
			free := m.budgetLocked(ws) - ws.inflight
			if free <= 0 {
				continue
			}
			if best == nil || free > bestFree {
				best, bestFree = ws, free
			}
		}
		if best != nil {
			// One grant never exceeds the slot's actual concurrency: the
			// remote budget is 2×capacity so that *two* capacity-sized
			// chunks overlap — one running while the other is on the wire
			// or queued worker-side. Granting the whole budget as a single
			// chunk would serialize the round trips the double-buffer
			// exists to hide.
			n := min(want, bestFree, best.capacity)
			best.inflight += n
			return &reservation{m: m, ws: best, n: n}, nil
		}
		if m.capacityLocked() == 0 {
			return nil, fmt.Errorf("%w: no healthy backend", ErrBackendUnavailable)
		}
		m.cond.Wait()
	}
}

// reserveHedge claims one cell on the best eligible slot other than
// exclude, without blocking — hedging is opportunistic, and a cluster with
// no second slot free simply doesn't hedge. The local pool is an eligible
// hedge target: a local simulation can absolutely save a cell straggling
// on a wedged remote.
func (m *MultiBackend) reserveHedge(exclude *workerSlot) *reservation {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *workerSlot
	bestFree := 0
	if m.local != exclude {
		if free := m.local.capacity - m.local.inflight; free > 0 && time.Now().After(m.local.suspendedUntil) {
			best, bestFree = m.local, free
		}
	}
	for _, id := range m.order {
		ws := m.slots[id]
		if ws == nil || ws == exclude || !ws.healthy {
			continue
		}
		free := m.budgetLocked(ws) - ws.inflight
		if free <= 0 {
			continue
		}
		if best == nil || free > bestFree {
			best, bestFree = ws, free
		}
	}
	if best == nil {
		return nil
	}
	best.inflight++
	return &reservation{m: m, ws: best, n: 1, noHedge: true}
}

// executeSingle runs one cell on the reserved slot. When the slot is a
// remote worker and hedging is armed, a cell that hasn't answered within
// hedgeAfter — with the queue drained, per the hedge gate — is duplicated
// onto the next-best slot via its own one-cell reservation; the first
// verified result wins (a bad envelope surfaces as ErrBackendUnavailable,
// so "verified" falls out of the remote exchange itself) and the loser's
// request is canceled, which makes the losing worker abandon its copy of
// the job through the abort machinery. hedgedWon reports that the winning
// result came from the hedge: the caller must then skip the primary
// slot's health/completion accounting — the hedge reservation's own
// execute already credited the winner.
func (r *reservation) executeSingle(ctx, execCtx context.Context, spec JobSpec, hash string) (res *sim.RunResult, hedgedWon bool, err error) {
	m, ws := r.m, r.ws
	if !ws.remote || r.noHedge || m.hedgeAfter <= 0 {
		res, err = ws.backend.Execute(execCtx, spec, hash)
		return res, false, err
	}

	type outcome struct {
		res *sim.RunResult
		err error
	}
	pctx, pcancel := context.WithCancel(execCtx)
	defer pcancel()
	primary := make(chan outcome, 1)
	go func() {
		pres, perr := ws.backend.Execute(pctx, spec, hash)
		primary <- outcome{pres, perr}
	}()

	timer := time.NewTimer(m.hedgeAfter)
	defer timer.Stop()
	// The hedge context derives from the chunk's ctx, not execCtx: the
	// primary's lease expiring must kill the primary, not the hedge — that
	// is precisely the moment the hedge matters. Returning cancels it, so
	// a hedge that lost to the primary is abandoned on the spot.
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	var hedge chan outcome
	for {
		select {
		case o := <-primary:
			if hedge == nil {
				return o.res, false, o.err
			}
			if o.err != nil {
				// The primary failed with a hedge still in flight: the
				// hedge may yet save the cell — that rescue is exactly what
				// hedging buys beyond latency. Its reservation settles its
				// own slot accounting either way.
				ho := <-hedge
				if ho.err == nil {
					m.hedgesWon.Add(1)
					return ho.res, true, nil
				}
			}
			m.hedgesLost.Add(1)
			return o.res, false, o.err
		case ho := <-hedge:
			if ho.err != nil {
				// The hedge lost on its own; keep waiting for the primary.
				// A nil channel never delivers, so this arm goes quiet.
				m.hedgesLost.Add(1)
				hedge = nil
				continue
			}
			// First verified result wins: cancel the primary's request (the
			// worker abandons its copy of the job) and wait briefly for the
			// exchange to unwind so the slot's in-flight accounting settles
			// in order; a primary that ignores cancellation must not hold
			// the finished result hostage.
			m.hedgesWon.Add(1)
			pcancel()
			select {
			case <-primary:
			case <-time.After(5 * time.Second):
			}
			return ho.res, true, nil
		case <-timer.C:
			if m.hedgeGate != nil && !m.hedgeGate() {
				// Queued work would use a spare slot better than a
				// duplicate; check again in another hedgeAfter.
				timer.Reset(m.hedgeAfter)
				continue
			}
			hr := m.reserveHedge(ws)
			if hr == nil {
				timer.Reset(m.hedgeAfter)
				continue
			}
			m.hedgesDispatched.Add(1)
			hedge = make(chan outcome, 1)
			go func(hr *reservation, hctx context.Context, hc chan<- outcome) {
				results := hr.execute(hctx, []JobSpec{spec}, []string{hash})
				hc <- outcome{results[0].Result, results[0].Err}
			}(hr, hctx, hedge)
		}
	}
}

// execute runs the chunk on the reserved slot and settles the reservation:
// the in-flight claim is released, per-worker completion/failure accounting
// mirrors what per-cell dispatch always did, and a chunk-level transport
// failure demotes the worker. A remote dispatch also aborts the moment the
// slot's lease expires, so a wedged worker's cells requeue at lease-expiry
// speed rather than at the (chunk-scaled) remote request timeout. The
// returned slice always has one entry per spec: a chunk-level error is
// fanned out to every cell.
func (r *reservation) execute(ctx context.Context, specs []JobSpec, hashes []string) []BatchResult {
	m, ws := r.m, r.ws

	// Store short-circuit: a cell whose result already exists cluster-wide —
	// a worker wrote it back, or a peer process sharing the data-dir saved
	// it, after the cell was submitted — must not burn a backend slot
	// re-simulating it. Probe each hash before dispatch, answer the hits
	// directly, give their slots back, and send only the remainder over the
	// wire. Chunks dispatched before the probe existed behave identically:
	// a nil resultLookup (MultiBackends built outside a scheduler) skips it.
	out := make([]BatchResult, len(specs))
	run := make([]int, 0, len(specs))
	if m.resultLookup != nil {
		for i, h := range hashes {
			if res := m.resultLookup(h); res != nil {
				out[i] = BatchResult{Result: res, CacheHit: true}
				continue
			}
			run = append(run, i)
		}
	} else {
		for i := range specs {
			run = append(run, i)
		}
	}
	if len(run) < len(specs) {
		r.shrink(len(run)) // release the short-circuited cells' claim now
	}
	if len(run) == 0 {
		// The whole chunk was served from the store: no backend exchange
		// happened, so no health or completion accounting applies.
		return out
	}
	subSpecs, subHashes := specs, hashes
	if len(run) < len(specs) {
		subSpecs = make([]JobSpec, len(run))
		subHashes = make([]string, len(run))
		for k, i := range run {
			subSpecs[k] = specs[i]
			subHashes[k] = hashes[i]
		}
	}

	execCtx := ctx
	if ws.remote {
		var cancel context.CancelFunc
		execCtx, cancel = context.WithCancel(ctx)
		stop := context.AfterFunc(ws.ctx, cancel) // lease expiry aborts the request
		defer stop()
		defer cancel()
	}
	var results []BatchResult
	var chunkErr error
	hedgedWon := false
	// leaseExpired rewrites an exchange error once the slot's lease — not
	// the caller — killed the context: the failure belongs to the backend,
	// so it must wrap ErrBackendUnavailable for the scheduler to requeue.
	leaseExpired := func(err error) error {
		if err != nil && ctx.Err() == nil && execCtx.Err() != nil {
			return fmt.Errorf("%w: worker %s lease expired mid-chunk: %v", ErrBackendUnavailable, ws.name, err)
		}
		return err
	}
	if len(subSpecs) == 1 {
		// One cell rides the single-dispatch path: batch framing would buy
		// nothing, and older workers without the batch endpoint stay on
		// their native protocol. It is also the hedgeable shape — sweep
		// tails dispatch per cell once the queue runs dry.
		res, hedged, err := r.executeSingle(ctx, execCtx, subSpecs[0], subHashes[0])
		err = leaseExpired(err)
		results = []BatchResult{{Result: res, Err: err}}
		hedgedWon = hedged
		if err != nil && errors.Is(err, ErrBackendUnavailable) {
			chunkErr = err
		}
	} else {
		results, chunkErr = ws.backend.ExecuteBatch(execCtx, subSpecs, subHashes)
		chunkErr = leaseExpired(chunkErr)
	}
	if chunkErr != nil && len(subSpecs) > 1 {
		results = make([]BatchResult, len(subSpecs))
		for i := range results {
			results[i] = BatchResult{Err: chunkErr}
		}
	}
	succeeded, unavailable := 0, 0
	for _, br := range results {
		switch {
		case br.Err == nil:
			succeeded++
		case errors.Is(br.Err, ErrBackendUnavailable):
			unavailable++
		}
	}
	// A chunk-level transport error is the worker's fault; so is a chunk
	// where every single cell came back backend-unavailable — the shape an
	// unreachable worker produces through the per-cell fallback path, or a
	// broken worker answering 200 with nothing but requeue items. Without
	// this the failure-backoff machinery never engages for batches and the
	// dispatcher hot-loops dispatch→fail→requeue against the same worker.
	// A chunk with at least one delivered outcome keeps the worker healthy:
	// it demonstrably answered, and any requeue-marked stragglers retry as
	// smaller chunks that fall through to this same accounting.
	// ...unless the caller canceled the exchange (a hedge won and aborted
	// this dispatch, or the dispatch context died with it): the resulting
	// transport errors are the canceler's doing, not the worker's, and
	// demoting a healthy worker for them would let every lost hedge race
	// knock capacity out of the cluster.
	callerCanceled := ctx.Err() != nil
	transportFailure := !hedgedWon && !callerCanceled &&
		((chunkErr != nil && errors.Is(chunkErr, ErrBackendUnavailable)) ||
			unavailable == len(results))

	m.mu.Lock()
	ws.inflight -= r.n
	capacityChanged := false
	switch {
	case transportFailure:
		ws.failures++
		ws.consecFails++
		d := failureSuspension(ws.consecFails)
		ws.suspendedUntil = time.Now().Add(d)
		if ws.remote && ws.healthy {
			ws.healthy = false
			capacityChanged = true
		}
		// Wake the dispatch gate when the suspension lapses — the local
		// slot has no heartbeat to restore it, and a suspended-but-counted
		// slot must not park the queue past its backoff.
		time.AfterFunc(d, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
			m.notify()
		})
	case hedgedWon || callerCanceled:
		// The slot neither completed nor failed this cell: a hedge raced
		// it and won (the winning reservation already credited its own
		// slot — crediting here too would double-count the cell), or the
		// caller abandoned the exchange mid-flight. No health signal
		// either way.
	default:
		ws.completed += uint64(succeeded)
		if succeeded > 0 {
			// The backend delivered results: the transport is healthy again.
			ws.consecFails = 0
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	if capacityChanged {
		m.notify()
	}
	for k, i := range run {
		out[i] = results[k]
	}
	return out
}

// Execute implements Backend: a one-cell chunk on the best eligible slot.
// A transport-level failure (ErrBackendUnavailable) on a remote worker
// marks that worker unhealthy — removing its capacity from dispatch until a
// heartbeat restores it after the failure-backoff window — and propagates
// to the scheduler, which requeues the job.
func (m *MultiBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	r, err := m.Reserve(ctx, 1)
	if err != nil {
		return nil, err
	}
	results := r.execute(ctx, []JobSpec{spec}, []string{hash})
	return results[0].Result, results[0].Err
}

// ExecuteBatch implements Backend by carving the chunk into sub-chunks
// sized to whatever slot Reserve grants, sequentially. The scheduler's
// dispatcher does not use this path — it reserves first and pops the queue
// second — but embedders driving a MultiBackend directly get correct
// chunked semantics.
func (m *MultiBackend) ExecuteBatch(ctx context.Context, specs []JobSpec, hashes []string) ([]BatchResult, error) {
	out := make([]BatchResult, 0, len(specs))
	for off := 0; off < len(specs); {
		r, err := m.Reserve(ctx, len(specs)-off)
		if err != nil {
			return nil, err
		}
		n := r.Granted()
		out = append(out, r.execute(ctx, specs[off:off+n], hashes[off:off+n])...)
		off += n
	}
	return out, nil
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"constable/internal/sim"
)

// WorkerView is the API representation of one registered remote worker.
type WorkerView struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	URL      string `json:"url"`
	Capacity int    `json:"capacity"`
	// Healthy reports whether the worker is eligible for dispatch. A
	// transport failure marks it unhealthy; a later heartbeat restores it.
	Healthy bool `json:"healthy"`
	// Inflight is the number of jobs currently dispatched to the worker.
	Inflight int `json:"inflight"`
	// Completed counts jobs the worker finished successfully.
	Completed uint64 `json:"completed"`
	// Failures counts transport-level failures (died mid-request, bad
	// envelope) attributed to the worker.
	Failures     uint64    `json:"failures"`
	RegisteredAt time.Time `json:"registered_at"`
	LastSeen     time.Time `json:"last_seen"`
}

// workerSlot tracks one backend's dispatch state inside a MultiBackend: its
// concurrency budget, in-flight count, health and (for remotes) lease
// bookkeeping. All fields are guarded by the owning MultiBackend's mutex,
// except ctx/cancel which are assigned once before the slot is published.
type workerSlot struct {
	id      string
	backend Backend
	remote  bool

	capacity  int
	inflight  int
	healthy   bool
	completed uint64
	failures  uint64

	// consecFails counts consecutive transport failures; suspendedUntil is
	// the earliest instant a heartbeat may restore health again. The
	// exponential suspension prevents a worker that heartbeats fine but
	// fails every dispatch (e.g. a wrong -advertise URL behind NAT) from
	// livelocking the queue in a hot dispatch/fail/requeue loop.
	consecFails    int
	suspendedUntil time.Time

	// ctx is canceled when the slot's lease expires, aborting the expired
	// worker's in-flight requests so their jobs requeue immediately
	// instead of waiting out the full remote request timeout. Graceful
	// deregistration does not cancel it: a live worker drains its
	// in-flight jobs. Nil for the local slot.
	ctx    context.Context
	cancel context.CancelFunc

	name       string
	url        string
	registered time.Time
	lastSeen   time.Time
}

// failureSuspension is the health-restore backoff after the n-th (1-based)
// consecutive transport failure: 500ms doubling up to 30s.
func failureSuspension(n int) time.Duration {
	d := 500 * time.Millisecond
	for i := 1; i < n && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

func (ws *workerSlot) view() WorkerView {
	return WorkerView{
		ID:           ws.id,
		Name:         ws.name,
		URL:          ws.url,
		Capacity:     ws.capacity,
		Healthy:      ws.healthy,
		Inflight:     ws.inflight,
		Completed:    ws.completed,
		Failures:     ws.failures,
		RegisteredAt: ws.registered,
		LastSeen:     ws.lastSeen,
	}
}

// MultiBackend composes a local backend with any number of dynamically
// registered remote workers under capacity-aware dispatch: Execute hands
// each job to the eligible backend with the most free slots (local first on
// ties), tracks per-worker in-flight counts, and does per-worker
// health/failure accounting — a worker whose request fails at the transport
// level is marked unhealthy and excluded from dispatch until a heartbeat
// restores it or its lease expires. Capacity is the sum of the local pool
// and every healthy worker, so the scheduler's dispatcher automatically
// widens as workers register and narrows as they fail.
type MultiBackend struct {
	mu     sync.Mutex
	cond   *sync.Cond
	local  *workerSlot
	slots  map[string]*workerSlot // remote workers by ID
	order  []string               // registration order, for stable listings
	nextID uint64

	// onChange, when set (the owning scheduler installs it), is invoked
	// without the lock held whenever total capacity may have changed, so
	// the dispatcher re-evaluates its gate.
	onChange func()
}

// NewMultiBackend returns a MultiBackend dispatching to local (required;
// use a zero-capacity LocalBackend for a dispatch-only server) and to any
// workers registered later.
func NewMultiBackend(local Backend) *MultiBackend {
	m := &MultiBackend{
		local: &workerSlot{
			id:       "local",
			name:     local.Name(),
			backend:  local,
			capacity: local.Capacity(),
			healthy:  true,
		},
		slots: make(map[string]*workerSlot),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Name implements Backend.
func (m *MultiBackend) Name() string { return "multi" }

// Capacity implements Backend: the local pool plus every healthy worker.
func (m *MultiBackend) Capacity() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.capacityLocked()
}

func (m *MultiBackend) capacityLocked() int {
	total := m.local.capacity
	for _, ws := range m.slots {
		if ws.healthy {
			total += ws.capacity
		}
	}
	return total
}

// AddWorker registers a remote worker and returns its assigned view. The
// new capacity becomes dispatchable immediately.
func (m *MultiBackend) AddWorker(name, url string, capacity int, backend Backend) WorkerView {
	now := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	m.nextID++
	ws := &workerSlot{
		id:         fmt.Sprintf("worker-%d", m.nextID),
		backend:    backend,
		remote:     true,
		capacity:   capacity,
		healthy:    true,
		ctx:        ctx,
		cancel:     cancel,
		name:       name,
		url:        url,
		registered: now,
		lastSeen:   now,
	}
	m.slots[ws.id] = ws
	m.order = append(m.order, ws.id)
	v := ws.view()
	m.cond.Broadcast()
	m.mu.Unlock()
	m.notify()
	return v
}

// RemoveWorker deregisters a worker. Jobs already dispatched to it keep
// running to completion (or to a transport failure, which requeues them);
// no new jobs are dispatched. It reports whether the worker existed.
func (m *MultiBackend) RemoveWorker(id string) bool {
	m.mu.Lock()
	_, ok := m.slots[id]
	if ok {
		delete(m.slots, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	if ok {
		m.notify()
	}
	return ok
}

// Heartbeat renews a worker's lease and — once the failure-backoff window
// has passed — restores its health, so a worker demoted by a transient
// transport failure becomes dispatchable again while one that fails every
// dispatch retries at a bounded, decaying rate instead of livelocking the
// queue. It returns the refreshed view, or false for an unknown ID — the
// worker should re-register.
func (m *MultiBackend) Heartbeat(id string) (WorkerView, bool) {
	m.mu.Lock()
	ws, ok := m.slots[id]
	if !ok {
		m.mu.Unlock()
		return WorkerView{}, false
	}
	ws.lastSeen = time.Now()
	restored := false
	if !ws.healthy && time.Now().After(ws.suspendedUntil) {
		ws.healthy = true
		restored = true
	}
	v := ws.view()
	if restored {
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	if restored {
		m.notify()
	}
	return v, true
}

// Worker returns one worker's view by ID.
func (m *MultiBackend) Worker(id string) (WorkerView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ws, ok := m.slots[id]
	if !ok {
		return WorkerView{}, false
	}
	return ws.view(), true
}

// Workers lists the registered remote workers in registration order.
func (m *MultiBackend) Workers() []WorkerView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerView, 0, len(m.order))
	for _, id := range m.order {
		if ws, ok := m.slots[id]; ok {
			out = append(out, ws.view())
		}
	}
	return out
}

// expire removes every worker whose lease (last heartbeat) is older than
// ttl, returning the removed views. The scheduler's janitor calls it
// periodically; jobs in flight on an expired worker fail at the transport
// level on their own and requeue.
func (m *MultiBackend) expire(ttl time.Duration) []WorkerView {
	cutoff := time.Now().Add(-ttl)
	var removed []WorkerView
	m.mu.Lock()
	for i := 0; i < len(m.order); {
		id := m.order[i]
		ws := m.slots[id]
		if ws != nil && ws.lastSeen.Before(cutoff) {
			removed = append(removed, ws.view())
			delete(m.slots, id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			// An expired worker is presumed dead: abort its in-flight
			// requests now so their jobs requeue immediately instead of
			// waiting out the remote request timeout.
			ws.cancel()
			continue
		}
		i++
	}
	if removed != nil {
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	if removed != nil {
		m.notify()
	}
	return removed
}

func (m *MultiBackend) notify() {
	if m.onChange != nil {
		m.onChange()
	}
}

// acquire picks the eligible slot (healthy, below its concurrency budget)
// with the most free capacity, local winning ties, and reserves one slot on
// it. When every eligible backend is saturated it waits for a slot to free;
// when no healthy backend exists at all it returns ErrBackendUnavailable so
// the job goes back to the scheduler queue instead of blocking forever.
func (m *MultiBackend) acquire(ctx context.Context) (*workerSlot, error) {
	unhook := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer unhook()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var best *workerSlot
		// The local slot honors the same failure suspension as workers: a
		// custom Config.Backend that fails at the transport level backs
		// off instead of spinning (sim.Run-backed local pools never
		// return ErrBackendUnavailable, so this never gates them).
		if m.local.capacity > m.local.inflight && time.Now().After(m.local.suspendedUntil) {
			best = m.local
		}
		for _, id := range m.order {
			ws := m.slots[id]
			if ws == nil || !ws.healthy || ws.inflight >= ws.capacity {
				continue
			}
			if best == nil || ws.capacity-ws.inflight > best.capacity-best.inflight {
				best = ws
			}
		}
		if best != nil {
			best.inflight++
			return best, nil
		}
		if m.capacityLocked() == 0 {
			return nil, fmt.Errorf("%w: no healthy backend", ErrBackendUnavailable)
		}
		m.cond.Wait()
	}
}

// Execute implements Backend: it reserves a slot on the best eligible
// backend, runs the job there, and releases the slot. A transport-level
// failure (ErrBackendUnavailable) on a remote worker marks that worker
// unhealthy — removing its capacity from dispatch until a heartbeat
// restores it after the failure-backoff window — and propagates to the
// scheduler, which requeues the job. A remote dispatch also aborts the
// moment the slot's lease expires, so a wedged worker's jobs requeue at
// lease-expiry speed rather than at the remote request timeout.
func (m *MultiBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	ws, err := m.acquire(ctx)
	if err != nil {
		return nil, err
	}
	execCtx := ctx
	if ws.remote {
		var cancel context.CancelFunc
		execCtx, cancel = context.WithCancel(ctx)
		stop := context.AfterFunc(ws.ctx, cancel) // lease expiry aborts the request
		defer stop()
		defer cancel()
	}
	res, err := ws.backend.Execute(execCtx, spec, hash)
	if err != nil && ctx.Err() == nil && execCtx.Err() != nil {
		// The request died because the lease expired, not because of
		// anything the caller did: surface it as a backend failure so the
		// scheduler requeues the job.
		err = fmt.Errorf("%w: worker %s lease expired mid-job: %v", ErrBackendUnavailable, ws.name, err)
	}

	m.mu.Lock()
	ws.inflight--
	capacityChanged := false
	switch {
	case err == nil:
		ws.completed++
		ws.consecFails = 0
	case errors.Is(err, ErrBackendUnavailable):
		ws.failures++
		ws.consecFails++
		d := failureSuspension(ws.consecFails)
		ws.suspendedUntil = time.Now().Add(d)
		if ws.remote && ws.healthy {
			ws.healthy = false
			capacityChanged = true
		}
		// Wake the dispatch gate when the suspension lapses — the local
		// slot has no heartbeat to restore it, and a suspended-but-counted
		// slot must not park the queue past its backoff.
		time.AfterFunc(d, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
			m.notify()
		})
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	if capacityChanged {
		m.notify()
	}
	return res, err
}

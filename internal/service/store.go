package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"constable/internal/sim"
)

// resultStore is the persistent content-addressed result store: one JSON
// file per finished RunResult, keyed by JobSpec hash, sharded into
// dir/<hash[:2]>/<hash>.json so no single directory grows unboundedly.
// Writes go through a temp file + atomic rename, so concurrent processes
// sharing a --data-dir never observe partial files; loads tolerate
// corruption (truncated writes, stray files, schema drift) by treating any
// undecodable or mismatched file as a miss.
type resultStore struct {
	dir string

	hits, misses, writes, errors, corrupt atomic.Uint64
}

// newResultStore opens (creating if needed) a store rooted at dir and
// sweeps temp files orphaned by writers that crashed mid-Save — they are
// invisible to Load and would otherwise accumulate across restarts.
func newResultStore(dir string) (*resultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: result store: %w", err)
	}
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() &&
			strings.HasPrefix(d.Name(), ".") && strings.Contains(d.Name(), ".tmp") {
			os.Remove(path)
		}
		return nil
	})
	return &resultStore{dir: dir}, nil
}

func (st *resultStore) path(hash string) string {
	shard := "xx"
	if len(hash) >= 2 {
		shard = hash[:2]
	}
	return filepath.Join(st.dir, shard, hash+".json")
}

// Load returns the stored result for hash, or (nil, false) when absent or
// unreadable. The returned result is freshly decoded and owned by the
// caller. A decodable envelope whose recorded hash differs from the
// requested key (aliasing — e.g. a file copied across shards) counts as
// corrupt and is a miss.
func (st *resultStore) Load(hash string) (*sim.RunResult, bool) {
	return st.load(hash, true)
}

// load is Load with optional hit/miss accounting. The dispatch-time
// short-circuit probe reads quietly (count=false): it runs once per
// dispatched cell and would otherwise swamp the store hit-rate submitters
// see. Corruption is always counted — a bad file is worth knowing about no
// matter who tripped over it.
func (st *resultStore) load(hash string, count bool) (*sim.RunResult, bool) {
	b, err := os.ReadFile(st.path(hash))
	if err != nil {
		if count {
			st.misses.Add(1)
		}
		return nil, false
	}
	var env sim.ResultEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		st.corrupt.Add(1)
		if count {
			st.misses.Add(1)
		}
		return nil, false
	}
	res, err := env.Open(hash)
	if err != nil {
		st.corrupt.Add(1)
		if count {
			st.misses.Add(1)
		}
		return nil, false
	}
	if count {
		st.hits.Add(1)
	}
	return res, true
}

// Has reports whether a result file exists under hash without reading or
// verifying it — enough for the idempotent PUT handler to distinguish a
// first write-back (201) from a repeat (200).
func (st *resultStore) Has(hash string) bool {
	_, err := os.Stat(st.path(hash))
	return err == nil
}

// Save persists res under hash. The write is atomic (temp file in the same
// shard directory, then rename), so a crashed or concurrent writer can only
// ever leave a complete file or none. The on-disk form is a
// sim.ResultEnvelope: the public RunResult document plus the typed views
// hidden from the public JSON schema, which the experiment drivers read.
func (st *resultStore) Save(hash string, res *sim.RunResult) error {
	env := sim.NewResultEnvelope(hash, res)
	b, err := json.Marshal(env)
	if err != nil {
		st.errors.Add(1)
		return fmt.Errorf("service: result store encode %s: %w", hash, err)
	}
	final := st.path(hash)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		st.errors.Add(1)
		return fmt.Errorf("service: result store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), "."+filepath.Base(final)+".tmp*")
	if err != nil {
		st.errors.Add(1)
		return fmt.Errorf("service: result store: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		st.errors.Add(1)
		return fmt.Errorf("service: result store write %s: %w", hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		st.errors.Add(1)
		return fmt.Errorf("service: result store close %s: %w", hash, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		st.errors.Add(1)
		return fmt.Errorf("service: result store rename %s: %w", hash, err)
	}
	st.writes.Add(1)
	return nil
}

// Len walks the store and returns the number of persisted results. The
// traces/ subtree belongs to the trace store — its metadata sidecars are
// JSON files too and must not count as results.
func (st *resultStore) Len() int {
	n := 0
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() && path == filepath.Join(st.dir, "traces") {
			return filepath.SkipDir
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}

// storeStats is a point-in-time view of the store's counters.
type storeStats struct {
	hits, misses, writes, errors, corrupt uint64
}

func (st *resultStore) Stats() storeStats {
	return storeStats{
		hits:    st.hits.Load(),
		misses:  st.misses.Load(),
		writes:  st.writes.Load(),
		errors:  st.errors.Load(),
		corrupt: st.corrupt.Load(),
	}
}

package service

import (
	"fmt"
	"testing"

	"constable/internal/sim"
)

func TestCacheEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("k%d", i), &sim.RunResult{Cycles: uint64(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// k0, k1 evicted; k2..k4 resident.
	for _, k := range []string{"k0", "k1"} {
		if _, ok := c.Get(k); ok {
			t.Errorf("%s still cached after eviction", k)
		}
	}
	for i := 2; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		res, ok := c.Get(k)
		if !ok || res.Cycles != uint64(i) {
			t.Errorf("%s: got %v, %v", k, res, ok)
		}
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := newResultCache(2)
	c.Add("a", &sim.RunResult{})
	c.Add("b", &sim.RunResult{})
	c.Get("a") // promote a; b is now LRU
	c.Add("c", &sim.RunResult{})
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("least recently used entry survived")
	}
}

func TestCacheHitRate(t *testing.T) {
	c := newResultCache(8)
	c.Add("x", &sim.RunResult{})
	c.Get("x")
	c.Get("x")
	c.Get("y")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Add("a", &sim.RunResult{})
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

package service

import (
	"fmt"
	"sync"
	"testing"

	"constable/internal/pipeline"
	"constable/internal/sim"
	"constable/internal/stats"
)

func TestCacheEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("k%d", i), &sim.RunResult{Cycles: uint64(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// k0, k1 evicted; k2..k4 resident.
	for _, k := range []string{"k0", "k1"} {
		if _, ok := c.Get(k); ok {
			t.Errorf("%s still cached after eviction", k)
		}
	}
	for i := 2; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		res, ok := c.Get(k)
		if !ok || res.Cycles != uint64(i) {
			t.Errorf("%s: got %v, %v", k, res, ok)
		}
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := newResultCache(2)
	c.Add("a", &sim.RunResult{})
	c.Add("b", &sim.RunResult{})
	c.Get("a") // promote a; b is now LRU
	c.Add("c", &sim.RunResult{})
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("least recently used entry survived")
	}
}

func TestCacheHitRate(t *testing.T) {
	c := newResultCache(8)
	c.Add("x", &sim.RunResult{})
	c.Get("x")
	c.Get("x")
	c.Get("y")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, capacity := range []int{-1, 0} {
		c := newResultCache(capacity)
		c.Add("a", &sim.RunResult{})
		if _, ok := c.Get("a"); ok {
			t.Errorf("cache with capacity %d stored an entry", capacity)
		}
	}
}

// TestCacheHitsAreIsolated is the regression test for the aliasing bug: a
// caller mutating a result it inserted or received must never corrupt what
// later hits observe.
func TestCacheHitsAreIsolated(t *testing.T) {
	c := newResultCache(8)
	orig := &sim.RunResult{
		Cycles:   100,
		Counters: stats.Snapshot{"pipeline.retired": 5000},
		Mechanisms: []sim.MechanismStats{
			{Name: "constable", Counters: stats.Snapshot{"constable.eliminated": 7}},
		},
		Pipeline: pipeline.Stats{EliminatedByMode: map[string]uint64{"base+disp": 3}},
	}
	c.Add("k", orig)

	// Mutating the inserted original must not reach the cache.
	orig.Cycles = 1
	orig.Counters["pipeline.retired"] = 1
	orig.Mechanisms[0].Counters["constable.eliminated"] = 1
	orig.Pipeline.EliminatedByMode["base+disp"] = 1

	first, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	if first.Cycles != 100 || first.Counters.Get("pipeline.retired") != 5000 {
		t.Errorf("insert-side mutation reached the cache: %+v", first)
	}

	// Mutating a hit must not corrupt later hits.
	first.Cycles = 2
	first.Counters["pipeline.retired"] = 2
	first.Mechanisms[0].Counters["constable.eliminated"] = 2
	first.Pipeline.EliminatedByMode["base+disp"] = 2

	second, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	if second.Cycles != 100 ||
		second.Counters.Get("pipeline.retired") != 5000 ||
		second.Mechanisms[0].Counters.Get("constable.eliminated") != 7 ||
		second.Pipeline.EliminatedByMode["base+disp"] != 3 {
		t.Errorf("hit-side mutation corrupted the cache: %+v", second)
	}
}

// TestCacheConcurrentHitMutation hammers concurrent hits on one entry while
// every goroutine mutates its copy — run under -race (CI does), this fails
// loudly if hits ever share state.
func TestCacheConcurrentHitMutation(t *testing.T) {
	c := newResultCache(4)
	c.Add("k", &sim.RunResult{
		Cycles:   100,
		Counters: stats.Snapshot{"pipeline.retired": 5000},
		Pipeline: pipeline.Stats{EliminatedByMode: map[string]uint64{"base+disp": 3}},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				res, ok := c.Get("k")
				if !ok {
					t.Error("miss")
					return
				}
				if res.Cycles != 100 || res.Counters.Get("pipeline.retired") != 5000 {
					t.Errorf("goroutine %d saw another goroutine's mutation: %+v", g, res)
					return
				}
				res.Cycles = uint64(g)
				res.Counters["pipeline.retired"] = uint64(i)
				res.Pipeline.EliminatedByMode["base+disp"] = uint64(g * i)
			}
		}(g)
	}
	wg.Wait()
}

package service

import (
	"fmt"
	"regexp"
	"strings"
	"time"
)

// Built-in scheduling classes. Every job joins exactly one class: POST
// /v1/runs submissions default to ClassInteractive, sweep cells to
// ClassBatch, and an X-Constable-Tenant header (or JSON tenant field) can
// name an ad-hoc class instead. Classes are scheduling attributes only —
// they never enter the JobSpec content hash, so identical simulations
// dedup across classes.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

// maxClasses caps how many distinct class queues a scheduler materializes.
// Classes are created on first use and never deleted (their counters are
// cumulative), so without a cap an attacker could mint one per request and
// grow the scheduler without bound. Past the cap, unknown class names fold
// into the built-in class of their kind.
const maxClasses = 64

// batchWatermarkFactor scales the admission watermark of batch-kind
// classes over Config.QueueMax: sweeps flood the queue by design, so they
// are exempt from the interactive watermark up to their own, much higher,
// limit.
const batchWatermarkFactor = 64

// tenantPattern constrains tenant/class names arriving over the API: they
// become queue names and metric label values, so keep them short and
// filesystem/exposition-safe.
var tenantPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,32}$`)

func validTenant(name string) bool { return tenantPattern.MatchString(name) }

// isBatchClass reports whether a class is batch-kind: the built-in batch
// class or a tenant-scoped one ("batch:<tenant>"). Batch-kind classes get
// the batch admission watermark and the batch default weight.
func isBatchClass(name string) bool {
	return name == ClassBatch || strings.HasPrefix(name, ClassBatch+":")
}

// QueueFullError is returned by Submit when admission control refuses a
// job: its class's queued depth has reached the watermark. RetryAfter is
// the server's drain-time estimate, the value the HTTP layer surfaces as a
// Retry-After header on the 429 response.
type QueueFullError struct {
	Class      string
	Depth      int
	Limit      int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: %s queue is full (%d/%d jobs queued); retry in %s",
		e.Class, e.Depth, e.Limit, e.RetryAfter)
}

// classQueue is one scheduling class's FIFO queue plus its deficit
// round-robin state and cumulative counters. All fields are guarded by the
// owning scheduler's mutex.
type classQueue struct {
	name   string
	weight int
	jobs   []*Job

	// deficit is the class's remaining dispatch credit in the current
	// round-robin visit (unit job cost). It is replenished by weight when
	// the rotor reaches a backlogged class and zeroed when the class
	// drains, so an idle class cannot bank an unbounded burst.
	deficit int

	admitted   uint64
	rejected   uint64
	dispatched uint64
	requeued   uint64
	waitNanos  uint64 // cumulative submit→dispatch wait of dispatched jobs
}

// multiQueue is the scheduler's multi-class job queue: one FIFO per class,
// drained by weighted deficit round-robin. Within a class, order is strict
// FIFO — with a single active class the whole structure degenerates to the
// global FIFO it replaced, which is what keeps sweep artifacts and NDJSON
// orderings byte-identical. All methods require the scheduler's mutex.
type multiQueue struct {
	weights       map[string]int
	defaultWeight int
	queueMax      int // per-class admission watermark; 0 disables

	classes map[string]*classQueue
	order   []*classQueue // creation order; the round-robin rotor's track
	rr      int           // rotor index into order
	size    int           // total queued jobs across classes
}

// newMultiQueue builds the queue with cfg's weight overrides folded over
// the defaults (interactive 8, batch 1; the "default" key sets the weight
// of ad-hoc tenant classes, default 4).
func newMultiQueue(overrides map[string]int, queueMax int) *multiQueue {
	weights := map[string]int{ClassInteractive: 8, ClassBatch: 1}
	def := 4
	for name, w := range overrides {
		if w < 1 {
			w = 1
		}
		if name == "default" {
			def = w
			continue
		}
		weights[name] = w
	}
	q := &multiQueue{
		weights:       weights,
		defaultWeight: def,
		queueMax:      queueMax,
		classes:       make(map[string]*classQueue),
	}
	// Materialize the built-in classes up front so metrics list them from
	// the first scrape, before anything is submitted.
	q.class(ClassInteractive)
	q.class(ClassBatch)
	return q
}

func (q *multiQueue) weightOf(name string) int {
	if w, ok := q.weights[name]; ok {
		return w
	}
	if isBatchClass(name) {
		return q.weights[ClassBatch]
	}
	return q.defaultWeight
}

// resolve maps a requested class name to the class a job actually joins:
// empty means interactive, and past maxClasses unknown names fold into the
// built-in class of their kind instead of minting new queues.
func (q *multiQueue) resolve(requested string) string {
	if requested == "" {
		return ClassInteractive
	}
	if _, ok := q.classes[requested]; ok {
		return requested
	}
	if len(q.classes) >= maxClasses {
		if isBatchClass(requested) {
			return ClassBatch
		}
		return ClassInteractive
	}
	return requested
}

// class returns the named class queue, creating it on first use.
func (q *multiQueue) class(name string) *classQueue {
	cq, ok := q.classes[name]
	if !ok {
		cq = &classQueue{name: name, weight: q.weightOf(name)}
		q.classes[name] = cq
		q.order = append(q.order, cq)
	}
	return cq
}

// watermark is the class's admission limit: QueueMax for interactive-kind
// classes, batchWatermarkFactor×QueueMax for batch-kind ones, 0 (no limit)
// when admission control is disabled.
func (q *multiQueue) watermark(name string) int {
	if q.queueMax <= 0 {
		return 0
	}
	if isBatchClass(name) {
		return q.queueMax * batchWatermarkFactor
	}
	return q.queueMax
}

// depth is the number of jobs queued in the named class.
func (q *multiQueue) depth(name string) int {
	if cq, ok := q.classes[name]; ok {
		return len(cq.jobs)
	}
	return 0
}

func (q *multiQueue) len() int { return q.size }

// push appends j to the tail of its class queue.
func (q *multiQueue) push(j *Job) {
	cq := q.class(j.Class)
	cq.jobs = append(cq.jobs, j)
	cq.admitted++
	q.size++
}

// requeueFront puts jobs back at the head of their class queues, keeping
// their relative order — a failed chunk's cells re-enter as the oldest
// work of each class, exactly as the single-queue scheduler requeued them,
// and never ahead of another class's unrelated jobs.
func (q *multiQueue) requeueFront(jobs []*Job) {
	if len(jobs) == 0 {
		return
	}
	groups := make(map[string][]*Job)
	var names []string
	for _, j := range jobs {
		if _, ok := groups[j.Class]; !ok {
			names = append(names, j.Class)
		}
		groups[j.Class] = append(groups[j.Class], j)
	}
	for _, name := range names {
		cq := q.class(name)
		g := groups[name]
		cq.jobs = append(g, cq.jobs...)
		cq.requeued += uint64(len(g))
		q.size += len(g)
	}
}

// pop removes and returns the next job under weighted deficit round-robin
// with unit job cost: when the rotor reaches a backlogged class with no
// credit left it grants the class its weight, serves from it until the
// credit runs out (or the class drains), then advances. Steady-state
// dispatch ratios therefore match the configured weights — 8:1 interactive
// over batch by default — while a lone active class is served back to back
// in pure FIFO order. Returns nil when nothing is queued.
func (q *multiQueue) pop(now time.Time) *Job {
	if q.size == 0 {
		return nil
	}
	for {
		cq := q.order[q.rr%len(q.order)]
		if len(cq.jobs) == 0 {
			cq.deficit = 0
			q.rr++
			continue
		}
		if cq.deficit == 0 {
			cq.deficit = cq.weight
		}
		j := cq.jobs[0]
		cq.jobs = cq.jobs[1:]
		cq.deficit--
		cq.dispatched++
		cq.waitNanos += uint64(now.Sub(j.submitted))
		q.size--
		if len(cq.jobs) == 0 {
			cq.deficit = 0
		}
		if cq.deficit == 0 {
			q.rr++
		}
		return j
	}
}

// popN pops up to n jobs in dispatch order.
func (q *multiQueue) popN(n int, now time.Time) []*Job {
	if n > q.size {
		n = q.size
	}
	if n <= 0 {
		return nil
	}
	out := make([]*Job, 0, n)
	for len(out) < n {
		out = append(out, q.pop(now))
	}
	return out
}

// remove deletes j from its class queue, reporting whether it was queued —
// the membership check that authorizes cancellation.
func (q *multiQueue) remove(j *Job) bool {
	cq, ok := q.classes[j.Class]
	if !ok {
		return false
	}
	for i, queued := range cq.jobs {
		if queued == j {
			cq.jobs = append(cq.jobs[:i], cq.jobs[i+1:]...)
			if len(cq.jobs) == 0 {
				cq.deficit = 0
			}
			q.size--
			return true
		}
	}
	return false
}

// position returns j's 1-based position within its class queue, 0 when j
// is not queued.
func (q *multiQueue) position(j *Job) int {
	cq, ok := q.classes[j.Class]
	if !ok {
		return 0
	}
	for i, queued := range cq.jobs {
		if queued == j {
			return i + 1
		}
	}
	return 0
}

// drain empties every class queue and returns the removed jobs (shutdown).
func (q *multiQueue) drain() []*Job {
	out := make([]*Job, 0, q.size)
	for _, cq := range q.order {
		out = append(out, cq.jobs...)
		cq.jobs = nil
		cq.deficit = 0
	}
	q.size = 0
	return out
}

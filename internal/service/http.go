package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"constable/internal/sim"
	"constable/internal/workload"
)

// sweepStreamLine is one NDJSON line of GET /v1/sweeps/{id}/events: either
// a per-cell event or, as the final line, the sweep's terminal view.
type sweepStreamLine struct {
	Cell  *SweepEvent `json:"cell,omitempty"`
	Sweep *SweepView  `json:"sweep,omitempty"`
}

// JobView is the API representation of a job.
type JobView struct {
	ID       string         `json:"id"`
	Hash     string         `json:"hash"`
	Status   JobStatus      `json:"status"`
	Spec     JobSpec        `json:"spec"`
	CacheHit bool           `json:"cache_hit,omitempty"`
	Error    string         `json:"error,omitempty"`
	Result   *sim.RunResult `json:"result,omitempty"`
}

func viewOf(j *Job) JobView {
	v := JobView{ID: j.ID, Hash: j.Hash, Spec: j.Spec, Status: j.Status(), CacheHit: j.CacheHit()}
	res, err := j.Result()
	if err != nil {
		v.Error = err.Error()
	}
	v.Result = res
	return v
}

// SweepRequest is the POST /v1/sweeps body. Either give the explicit cell
// matrix in Specs, or let Workloads × Mechanisms expand into one (one row
// per workload, one column per mechanism, sharing Instructions/Threads/APX).
type SweepRequest struct {
	Specs [][]JobSpec `json:"specs,omitempty"`

	Workloads    []string `json:"workloads,omitempty"`
	Mechanisms   []string `json:"mechanisms,omitempty"`
	Instructions uint64   `json:"instructions,omitempty"`
	Threads      int      `json:"threads,omitempty"`
	APX          bool     `json:"apx,omitempty"`

	// FailFast cancels the rest of the sweep after the first failed cell.
	FailFast bool `json:"fail_fast,omitempty"`
}

// matrix expands the request into the cell matrix handed to StartSweep.
func (req SweepRequest) matrix() ([][]JobSpec, error) {
	if len(req.Specs) > 0 {
		return req.Specs, nil
	}
	if len(req.Workloads) == 0 || len(req.Mechanisms) == 0 {
		return nil, errors.New("sweep needs either specs or workloads+mechanisms")
	}
	m := make([][]JobSpec, len(req.Workloads))
	for wi, wl := range req.Workloads {
		row := make([]JobSpec, len(req.Mechanisms))
		for ci, mech := range req.Mechanisms {
			row[ci] = JobSpec{
				Workload:     wl,
				Mechanism:    mech,
				Instructions: req.Instructions,
				Threads:      req.Threads,
				APX:          req.APX,
			}
		}
		m[wi] = row
	}
	return m, nil
}

// NewHandler returns the service's HTTP API over s:
//
//	POST /v1/runs                 submit one JobSpec; ?wait=1 blocks until finished
//	POST /v1/runs/batch           submit a JSON array of JobSpecs
//	GET  /v1/runs/{id}            poll one job
//	GET  /v1/runs/{id}/result     the finished run's full RunResult document
//	POST /v1/sweeps               submit a workload×config matrix as one sweep
//	GET  /v1/sweeps/{id}          poll a sweep's aggregate state
//	GET  /v1/sweeps/{id}/events   NDJSON stream of per-cell events (?results=1
//	                              embeds each cell's full RunResult)
//	DELETE /v1/sweeps/{id}        cancel a sweep
//	GET  /v1/workloads            list workloads (name, category)
//	GET  /v1/mechanisms           list mechanism presets (name, description)
//	GET  /metrics                 plaintext scheduler metrics
//	GET  /healthz                 liveness probe
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		j, err := s.Submit(spec)
		if err != nil {
			httpError(w, submitStatus(err), err.Error())
			return
		}
		status := http.StatusAccepted
		if r.URL.Query().Get("wait") != "" {
			if _, err := j.Wait(r.Context()); err != nil && errors.Is(err, r.Context().Err()) {
				// The waiting client is gone (disconnect or timeout): drop
				// its interest so a queued job nobody else shares is
				// canceled instead of simulating for no one. Shared/deduped
				// jobs keep running for their remaining submitters.
				s.Abandon(j.ID)
				httpError(w, http.StatusGatewayTimeout, "wait interrupted: "+err.Error())
				return
			}
			status = http.StatusOK
		} else if j.Status() == StatusDone {
			status = http.StatusOK // served from cache
		}
		writeJSON(w, status, viewOf(j))
	})

	mux.HandleFunc("POST /v1/runs/batch", func(w http.ResponseWriter, r *http.Request) {
		var specs []JobSpec
		if err := json.NewDecoder(r.Body).Decode(&specs); err != nil {
			httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if len(specs) == 0 {
			httpError(w, http.StatusBadRequest, "empty batch")
			return
		}
		views := make([]JobView, 0, len(specs))
		for i, spec := range specs {
			j, err := s.Submit(spec)
			if err != nil {
				httpError(w, submitStatus(err), "spec "+strconv.Itoa(i)+": "+err.Error())
				return
			}
			views = append(views, viewOf(j))
		}
		writeJSON(w, http.StatusAccepted, views)
	})

	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, viewOf(j))
	})

	mux.HandleFunc("GET /v1/runs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, ok := s.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job "+id)
			return
		}
		res, err := j.Result()
		switch {
		case err != nil:
			httpError(w, http.StatusUnprocessableEntity, "job "+id+" failed: "+err.Error())
		case res == nil:
			httpError(w, http.StatusConflict, "job "+id+" is "+string(j.Status())+"; result not available yet")
		default:
			writeJSON(w, http.StatusOK, res)
		}
	})

	mux.HandleFunc("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := s.Get(id); !ok {
			httpError(w, http.StatusNotFound, "unknown job "+id)
			return
		}
		if !s.Cancel(id) {
			httpError(w, http.StatusConflict, "job "+id+" was not canceled: it is running, finished, or shared by other submitters")
			return
		}
		j, _ := s.Get(id)
		writeJSON(w, http.StatusOK, viewOf(j))
	})

	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		matrix, err := req.matrix()
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// The sweep belongs to the server, not to this request: it keeps
		// running after the submitting connection closes and is canceled
		// only by DELETE (or scheduler shutdown).
		sw, err := s.StartSweep(context.Background(), matrix, SweepOptions{FailFast: req.FailFast})
		if err != nil {
			httpError(w, submitStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, sw.View())
	})

	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := s.GetSweep(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown sweep "+r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, sw.View())
	})

	mux.HandleFunc("GET /v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := s.GetSweep(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown sweep "+r.PathValue("id"))
			return
		}
		includeResults := r.URL.Query().Get("results") != ""
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		// Replays history, then follows live; one JSON object per line,
		// flushed per cell so clients see cells as they complete. The final
		// line is the sweep's terminal aggregate view.
		err := sw.Stream(r.Context(), includeResults, func(ev SweepEvent) error {
			if err := enc.Encode(sweepStreamLine{Cell: &ev}); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		if err != nil {
			return // client disconnected mid-stream
		}
		v := sw.View()
		enc.Encode(sweepStreamLine{Sweep: &v})
		if flusher != nil {
			flusher.Flush()
		}
	})

	mux.HandleFunc("DELETE /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := s.GetSweep(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown sweep "+r.PathValue("id"))
			return
		}
		sw.Cancel()
		writeJSON(w, http.StatusOK, sw.View())
	})

	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		type wl struct {
			Name     string `json:"name"`
			Category string `json:"category"`
		}
		suite := workload.Suite()
		out := make([]wl, len(suite))
		for i, spec := range suite {
			out[i] = wl{Name: spec.Name, Category: string(spec.Category)}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/mechanisms", func(w http.ResponseWriter, r *http.Request) {
		type mech struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		}
		presets := sim.Mechanisms()
		out := make([]mech, len(presets))
		for i, p := range presets {
			out[i] = mech{Name: p.Name, Description: p.Description}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics().WriteTo(w)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	return mux
}

// Serve runs the API on addr until the server errors or ctx-free shutdown is
// handled by the caller via the returned *http.Server.
func Serve(addr string, s *Scheduler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewHandler(s),
		ReadHeaderTimeout: 10 * time.Second,
	}
}

func submitStatus(err error) int {
	if errors.Is(err, ErrShuttingDown) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"constable/internal/inspector"
	"constable/internal/sim"
	"constable/internal/workload"
)

// sweepStreamLine is one NDJSON line of GET /v1/sweeps/{id}/events: either
// a per-cell event or, as the final line, the sweep's terminal view.
type sweepStreamLine struct {
	Cell  *SweepEvent `json:"cell,omitempty"`
	Sweep *SweepView  `json:"sweep,omitempty"`
}

// JobView is the API representation of a job.
type JobView struct {
	ID     string    `json:"id"`
	Hash   string    `json:"hash"`
	Status JobStatus `json:"status"`
	// Class is the fair-share scheduling class the job queues under;
	// QueuePosition its 1-based position within that class's queue (0 once
	// it is running or finished — and in every terminal response). Sweep
	// tags a sweep cell with its owning sweep's ID.
	Class         string         `json:"class,omitempty"`
	QueuePosition int            `json:"queue_position,omitempty"`
	Sweep         string         `json:"sweep,omitempty"`
	Spec          JobSpec        `json:"spec"`
	CacheHit      bool           `json:"cache_hit,omitempty"`
	Error         string         `json:"error,omitempty"`
	Result        *sim.RunResult `json:"result,omitempty"`
}

func (s *Scheduler) viewOf(j *Job) JobView {
	v := JobView{ID: j.ID, Hash: j.Hash, Spec: j.Spec, Status: j.Status(), CacheHit: j.CacheHit(),
		Class: j.Class, Sweep: j.SweepID, QueuePosition: s.QueuePosition(j.ID)}
	res, err := j.Result()
	if err != nil {
		v.Error = err.Error()
	}
	v.Result = res
	return v
}

// SweepRequest is the POST /v1/sweeps body. Either give the explicit cell
// matrix in Specs, or let Workloads × Mechanisms expand into one (one row
// per workload, one column per mechanism, sharing Instructions/Threads/APX).
type SweepRequest struct {
	Specs [][]JobSpec `json:"specs,omitempty"`

	Workloads    []string `json:"workloads,omitempty"`
	Mechanisms   []string `json:"mechanisms,omitempty"`
	Instructions uint64   `json:"instructions,omitempty"`
	Threads      int      `json:"threads,omitempty"`
	APX          bool     `json:"apx,omitempty"`

	// FailFast cancels the rest of the sweep after the first failed cell.
	FailFast bool `json:"fail_fast,omitempty"`

	// Tenant scopes the sweep's batch scheduling class ("batch:<tenant>"),
	// so one tenant's sweeps fair-share against another's. The
	// X-Constable-Tenant header overrides it; empty uses the shared batch
	// class.
	Tenant string `json:"tenant,omitempty"`
}

// matrix expands the request into the cell matrix handed to StartSweep.
func (req SweepRequest) matrix() ([][]JobSpec, error) {
	if len(req.Specs) > 0 {
		return req.Specs, nil
	}
	if len(req.Workloads) == 0 || len(req.Mechanisms) == 0 {
		return nil, errors.New("sweep needs either specs or workloads+mechanisms")
	}
	m := make([][]JobSpec, len(req.Workloads))
	for wi, wl := range req.Workloads {
		row := make([]JobSpec, len(req.Mechanisms))
		for ci, mech := range req.Mechanisms {
			row[ci] = JobSpec{
				Workload:     wl,
				Mechanism:    mech,
				Instructions: req.Instructions,
				Threads:      req.Threads,
				APX:          req.APX,
			}
		}
		m[wi] = row
	}
	return m, nil
}

// apiRoute pairs one registered pattern with its handler. The route table
// built by routesFor is the single source of truth for the API surface:
// NewHandler registers exactly these patterns, APIRoutes exposes them, and
// a test cross-checks them against docs/API.md so the reference cannot
// drift from the code.
type apiRoute struct {
	pattern string
	handler http.HandlerFunc
}

// APIRoutes lists every route pattern NewHandler registers, in
// documentation order.
func APIRoutes() []string {
	routes := routesFor(nil)
	out := make([]string, len(routes))
	for i, rt := range routes {
		out[i] = rt.pattern
	}
	return out
}

// NewHandler returns the service's HTTP API over s:
//
//	POST /v1/runs                     submit one JobSpec; ?wait=1 blocks until finished
//	POST /v1/runs/batch               submit a JSON array of JobSpecs
//	GET  /v1/runs/{id}                poll one job
//	GET  /v1/runs/{id}/result         the finished run's full RunResult document
//	DELETE /v1/runs/{id}              cancel a queued, unshared job
//	POST /v1/sweeps                   submit a workload×config matrix as one sweep
//	GET  /v1/sweeps/{id}              poll a sweep's aggregate state
//	GET  /v1/sweeps/{id}/events       NDJSON stream of per-cell events (?results=1
//	                                  embeds each cell's full RunResult)
//	DELETE /v1/sweeps/{id}            cancel a sweep
//	GET  /v1/results/{hash}           cluster result store: envelope by JobSpec hash
//	PUT  /v1/results/{hash}           worker write-back (hash-verified, idempotent)
//	POST /v1/workers                  register a remote worker {name, url, capacity}
//	GET  /v1/workers                  list registered workers
//	POST /v1/workers/{id}/heartbeat   renew a worker's lease
//	DELETE /v1/workers/{id}           deregister a worker
//	POST /v1/traces                   upload a raw trace; returns its content hash
//	GET  /v1/traces                   list uploaded traces
//	GET  /v1/traces/{hash}            download a trace's raw bytes
//	DELETE /v1/traces/{hash}          delete an uploaded trace
//	GET  /v1/traces/{hash}/analysis   server-side Load Inspector report
//	GET  /v1/workloads                list workloads (built-in suite + uploaded traces)
//	GET  /v1/mechanisms               list mechanism presets (name, description)
//	GET  /metrics                     plaintext scheduler metrics
//	GET  /healthz                     liveness probe
//
// See docs/API.md for the complete reference with request/response examples.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	for _, rt := range routesFor(s) {
		mux.HandleFunc(rt.pattern, rt.handler)
	}
	return mux
}

// routesFor builds the route table over s. The handlers are closures that
// only dereference s when invoked, so building the table with a nil
// scheduler (APIRoutes) is safe.
func routesFor(s *Scheduler) []apiRoute {
	return []apiRoute{
		{"POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
			var spec JobSpec
			if !readJSON(w, r, s.maxBody, &spec) {
				return
			}
			class, ok := requestTenant(w, r, spec.Tenant)
			if !ok {
				return
			}
			j, err := s.SubmitWith(spec, SubmitOptions{Class: class})
			if err != nil {
				writeSubmitError(w, err, "")
				return
			}
			status := http.StatusAccepted
			if r.URL.Query().Get("wait") != "" {
				if _, err := j.Wait(r.Context()); err != nil && errors.Is(err, r.Context().Err()) {
					// The waiting client is gone (disconnect or timeout): drop
					// its interest so a queued job nobody else shares is
					// canceled instead of simulating for no one. Shared/deduped
					// jobs keep running for their remaining submitters.
					s.Abandon(j.ID)
					httpError(w, http.StatusGatewayTimeout, "wait interrupted: "+err.Error())
					return
				}
				status = http.StatusOK
			} else if j.Status() == StatusDone {
				status = http.StatusOK // served from cache
			}
			writeJSON(w, status, s.viewOf(j))
		}},

		{"POST /v1/runs/batch", func(w http.ResponseWriter, r *http.Request) {
			var specs []JobSpec
			if !readJSON(w, r, s.maxBody, &specs) {
				return
			}
			if len(specs) == 0 {
				httpError(w, http.StatusBadRequest, "empty batch")
				return
			}
			views := make([]JobView, 0, len(specs))
			for i, spec := range specs {
				class, ok := requestTenant(w, r, spec.Tenant)
				if !ok {
					return
				}
				j, err := s.SubmitWith(spec, SubmitOptions{Class: class})
				if err != nil {
					writeSubmitError(w, err, "spec "+strconv.Itoa(i)+": ")
					return
				}
				views = append(views, s.viewOf(j))
			}
			writeJSON(w, http.StatusAccepted, views)
		}},

		{"GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
			j, ok := s.Get(r.PathValue("id"))
			if !ok {
				httpError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
				return
			}
			writeJSON(w, http.StatusOK, s.viewOf(j))
		}},

		{"GET /v1/runs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			j, ok := s.Get(id)
			if !ok {
				httpError(w, http.StatusNotFound, "unknown job "+id)
				return
			}
			res, err := j.Result()
			switch {
			case err != nil:
				httpError(w, http.StatusUnprocessableEntity, "job "+id+" failed: "+err.Error())
			case res == nil:
				httpError(w, http.StatusConflict, "job "+id+" is "+string(j.Status())+"; result not available yet")
			default:
				writeJSON(w, http.StatusOK, res)
			}
		}},

		{"DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if _, ok := s.Get(id); !ok {
				httpError(w, http.StatusNotFound, "unknown job "+id)
				return
			}
			if !s.Cancel(id) {
				httpError(w, http.StatusConflict, "job "+id+" was not canceled: it is running, finished, or shared by other submitters")
				return
			}
			j, _ := s.Get(id)
			writeJSON(w, http.StatusOK, s.viewOf(j))
		}},

		{"POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
			var req SweepRequest
			if !readJSON(w, r, s.maxBody, &req) {
				return
			}
			matrix, err := req.matrix()
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			tenant, ok := requestTenant(w, r, req.Tenant)
			if !ok {
				return
			}
			class := "" // StartSweep defaults to ClassBatch
			if tenant != "" {
				class = ClassBatch + ":" + tenant
			}
			// The sweep belongs to the server, not to this request: it keeps
			// running after the submitting connection closes and is canceled
			// only by DELETE (or scheduler shutdown).
			sw, err := s.StartSweep(context.Background(), matrix, SweepOptions{FailFast: req.FailFast, Class: class})
			if err != nil {
				writeSubmitError(w, err, "")
				return
			}
			writeJSON(w, http.StatusAccepted, sw.View())
		}},

		{"GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
			sw, ok := s.GetSweep(r.PathValue("id"))
			if !ok {
				httpError(w, http.StatusNotFound, "unknown sweep "+r.PathValue("id"))
				return
			}
			writeJSON(w, http.StatusOK, sw.View())
		}},

		{"GET /v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
			sw, ok := s.GetSweep(r.PathValue("id"))
			if !ok {
				httpError(w, http.StatusNotFound, "unknown sweep "+r.PathValue("id"))
				return
			}
			includeResults := r.URL.Query().Get("results") != ""
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			flusher, _ := w.(http.Flusher)
			enc := json.NewEncoder(w)
			// Replays history, then follows live; one JSON object per line,
			// flushed per cell so clients see cells as they complete. The final
			// line is the sweep's terminal aggregate view.
			err := sw.Stream(r.Context(), includeResults, func(ev SweepEvent) error {
				if err := enc.Encode(sweepStreamLine{Cell: &ev}); err != nil {
					return err
				}
				if flusher != nil {
					flusher.Flush()
				}
				return nil
			})
			if err != nil {
				return // client disconnected mid-stream
			}
			v := sw.View()
			enc.Encode(sweepStreamLine{Sweep: &v})
			if flusher != nil {
				flusher.Flush()
			}
		}},

		{"DELETE /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
			sw, ok := s.GetSweep(r.PathValue("id"))
			if !ok {
				httpError(w, http.StatusNotFound, "unknown sweep "+r.PathValue("id"))
				return
			}
			sw.Cancel()
			writeJSON(w, http.StatusOK, sw.View())
		}},

		{"GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
			// The cluster-wide result store, keyed by JobSpec content hash:
			// workers consult it before simulating a dispatched cell, so a
			// popular cell is simulated once per cluster, not once per
			// worker. Answers from the LRU or the persistent store; the
			// envelope's recorded hash lets the caller verify what it got
			// against what it asked for.
			hash := r.PathValue("hash")
			res := s.lookupResult(hash)
			if res == nil {
				s.metrics.remoteMisses.Add(1)
				httpError(w, http.StatusNotFound, "no result for hash "+hash)
				return
			}
			s.metrics.remoteHits.Add(1)
			writeJSON(w, http.StatusOK, sim.NewResultEnvelope(hash, res))
		}},

		{"PUT /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
			// Worker write-back. The envelope is verified on receipt — schema,
			// presence, and recorded hash against the URL's hash — exactly as
			// the store verifies on load, so a confused or malicious writer
			// cannot file a result under someone else's content address. The
			// PUT is idempotent: repeats overwrite with identical content and
			// answer 200 instead of 201.
			hash := r.PathValue("hash")
			var env sim.ResultEnvelope
			if !readJSON(w, r, s.maxBody, &env) {
				return
			}
			res, err := env.Open(hash)
			if err != nil {
				s.metrics.remoteRejected.Add(1)
				httpError(w, http.StatusBadRequest, "rejected write-back: "+err.Error())
				return
			}
			existed := s.cache.Has(hash)
			if s.store != nil {
				existed = existed || s.store.Has(hash)
			}
			s.cache.Add(hash, res)
			if s.store != nil {
				// Best-effort like every other store write: a full disk
				// degrades the write-back to LRU-only visibility.
				_ = s.store.Save(hash, res)
			}
			s.metrics.remoteWritebacks.Add(1)
			status := http.StatusCreated
			if existed {
				status = http.StatusOK
			}
			writeJSON(w, status, struct {
				Hash   string `json:"hash"`
				Stored bool   `json:"stored"`
				Dedup  bool   `json:"dedup,omitempty"`
			}{hash, true, existed})
		}},

		{"POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				Name     string `json:"name"`
				URL      string `json:"url"`
				Capacity int    `json:"capacity"`
			}
			if !readJSON(w, r, s.maxBody, &req) {
				return
			}
			v, err := s.RegisterWorker(req.Name, req.URL, req.Capacity)
			if err != nil {
				httpError(w, submitStatus(err), err.Error())
				return
			}
			writeJSON(w, http.StatusCreated, v)
		}},

		{"GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.Workers())
		}},

		{"POST /v1/workers/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
			v, ok := s.HeartbeatWorker(r.PathValue("id"))
			if !ok {
				// Unknown lease — expired or never registered. The worker
				// reacts by re-registering.
				httpError(w, http.StatusNotFound, "unknown worker "+r.PathValue("id"))
				return
			}
			writeJSON(w, http.StatusOK, v)
		}},

		{"DELETE /v1/workers/{id}", func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if !s.DeregisterWorker(id) {
				httpError(w, http.StatusNotFound, "unknown worker "+id)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"id": id, "deregistered": true})
		}},

		{"POST /v1/traces", func(w http.ResponseWriter, r *http.Request) {
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxTraceBody))
			if err != nil {
				var maxErr *http.MaxBytesError
				if errors.As(err, &maxErr) {
					httpError(w, http.StatusRequestEntityTooLarge,
						fmt.Sprintf("trace exceeds %d bytes", maxErr.Limit))
					return
				}
				httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
				return
			}
			info, existed, err := s.traces.Put(data)
			if err != nil {
				httpError(w, http.StatusBadRequest, "invalid trace: "+err.Error())
				return
			}
			status := http.StatusCreated
			if existed {
				status = http.StatusOK // idempotent re-upload
			}
			writeJSON(w, status, struct {
				TraceInfo
				Dedup bool `json:"dedup,omitempty"`
			}{info, existed})
		}},

		{"GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.traces.List())
		}},

		{"GET /v1/traces/{hash}", func(w http.ResponseWriter, r *http.Request) {
			hash := r.PathValue("hash")
			data, err := s.traces.Get(hash)
			if err != nil {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.Write(data)
		}},

		{"DELETE /v1/traces/{hash}", func(w http.ResponseWriter, r *http.Request) {
			hash := r.PathValue("hash")
			existed, err := s.traces.Delete(hash)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			if !existed {
				httpError(w, http.StatusNotFound, "unknown trace "+hash)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"hash": hash, "deleted": true})
		}},

		{"GET /v1/traces/{hash}/analysis", func(w http.ResponseWriter, r *http.Request) {
			hash := r.PathValue("hash")
			spec, err := s.traces.Resolve(hash)
			if err != nil {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			st, err := spec.NewStream(false, 0)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			ins := inspector.New()
			for {
				d, ok := st.Next()
				if !ok {
					break
				}
				ins.Observe(&d)
			}
			if err := st.Err(); err != nil {
				httpError(w, http.StatusInternalServerError, "trace decode: "+err.Error())
				return
			}
			rep := ins.Report()
			writeJSON(w, http.StatusOK, struct {
				Hash                 string            `json:"hash"`
				Name                 string            `json:"name"`
				GlobalStableFraction float64           `json:"global_stable_fraction"`
				Report               *inspector.Report `json:"report"`
			}{hash, spec.Name, rep.GlobalStableFraction(), rep})
		}},

		{"GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
			type wl struct {
				Name     string `json:"name"`
				Category string `json:"category"`
				// Trace-backed entries only.
				Hash         string    `json:"hash,omitempty"`
				Instructions uint64    `json:"instructions,omitempty"`
				Bytes        int64     `json:"bytes,omitempty"`
				UploadedAt   time.Time `json:"uploaded_at,omitzero"`
			}
			suite := workload.Suite()
			out := make([]wl, len(suite), len(suite)+s.traces.Stats().stored)
			for i, spec := range suite {
				out[i] = wl{Name: spec.Name, Category: string(spec.Category)}
			}
			for _, info := range s.traces.List() {
				out = append(out, wl{
					Name:         info.Name,
					Category:     string(workload.Trace),
					Hash:         info.Hash,
					Instructions: info.Instructions,
					Bytes:        info.Bytes,
					UploadedAt:   info.UploadedAt,
				})
			}
			writeJSON(w, http.StatusOK, out)
		}},

		{"GET /v1/mechanisms", func(w http.ResponseWriter, r *http.Request) {
			type mech struct {
				Name        string `json:"name"`
				Description string `json:"description"`
			}
			presets := sim.Mechanisms()
			out := struct {
				Presets []mech              `json:"presets"`
				Axes    []sim.MechanismAxis `json:"axes"`
			}{Presets: make([]mech, len(presets)), Axes: sim.MechanismAxes()}
			for i, p := range presets {
				out.Presets[i] = mech{Name: p.Name, Description: p.Description}
			}
			writeJSON(w, http.StatusOK, out)
		}},

		{"GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.Metrics().WriteTo(w)
		}},

		{"GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte("ok\n"))
		}},
	}
}

// Serve runs the API on addr until the server errors or ctx-free shutdown is
// handled by the caller via the returned *http.Server.
func Serve(addr string, s *Scheduler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewHandler(s),
		ReadHeaderTimeout: 10 * time.Second,
	}
}

func submitStatus(err error) int {
	if errors.Is(err, ErrShuttingDown) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, ErrTraceUnavailable) {
		// The spec references a trace this server doesn't have — the name
		// is well-formed, the resource is absent.
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// writeSubmitError maps a Submit/StartSweep error onto the wire. Admission
// refusals become 429 with a Retry-After header carrying the scheduler's
// drain-time estimate — the contract that lets a loaded server shed
// interactive traffic politely; everything else goes through submitStatus.
func writeSubmitError(w http.ResponseWriter, err error, prefix string) {
	var qf *QueueFullError
	if errors.As(err, &qf) {
		w.Header().Set("Retry-After", strconv.Itoa(int(qf.RetryAfter/time.Second)))
		httpError(w, http.StatusTooManyRequests, prefix+err.Error())
		return
	}
	httpError(w, submitStatus(err), prefix+err.Error())
}

// requestTenant resolves a submission's tenant/class override: the
// X-Constable-Tenant header wins over the JSON field; both must satisfy
// the tenant-name pattern. On a bad name it writes the 400 itself and
// reports false; an empty result with ok=true means "use the path
// default".
func requestTenant(w http.ResponseWriter, r *http.Request, fromJSON string) (string, bool) {
	tenant := r.Header.Get("X-Constable-Tenant")
	if tenant == "" {
		tenant = fromJSON
	}
	if tenant == "" {
		return "", true
	}
	if !validTenant(tenant) {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("invalid tenant %q: want 1-32 characters of [A-Za-z0-9._-]", tenant))
		return "", false
	}
	return tenant, true
}

// readJSON decodes the request body into v under a byte limit, writing the
// error response itself (413 for an oversized body, 400 for bad JSON) and
// reporting whether decoding succeeded. Every JSON-accepting handler goes
// through it: an unbounded decode would let one request balloon server
// memory with a multi-gigabyte body.
func readJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"constable/internal/sim"
	"constable/internal/workload"
)

// JobView is the API representation of a job.
type JobView struct {
	ID       string         `json:"id"`
	Hash     string         `json:"hash"`
	Status   JobStatus      `json:"status"`
	Spec     JobSpec        `json:"spec"`
	CacheHit bool           `json:"cache_hit,omitempty"`
	Error    string         `json:"error,omitempty"`
	Result   *sim.RunResult `json:"result,omitempty"`
}

func viewOf(j *Job) JobView {
	v := JobView{ID: j.ID, Hash: j.Hash, Spec: j.Spec, Status: j.Status(), CacheHit: j.CacheHit()}
	res, err := j.Result()
	if err != nil {
		v.Error = err.Error()
	}
	v.Result = res
	return v
}

// NewHandler returns the service's HTTP API over s:
//
//	POST /v1/runs               submit one JobSpec; ?wait=1 blocks until finished
//	POST /v1/runs/batch         submit a JSON array of JobSpecs
//	GET  /v1/runs/{id}          poll one job
//	GET  /v1/runs/{id}/result   the finished run's full RunResult document
//	GET  /v1/workloads          list workloads (name, category)
//	GET  /v1/mechanisms         list mechanism presets (name, description)
//	GET  /metrics               plaintext scheduler metrics
//	GET  /healthz               liveness probe
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		j, err := s.Submit(spec)
		if err != nil {
			httpError(w, submitStatus(err), err.Error())
			return
		}
		status := http.StatusAccepted
		if r.URL.Query().Get("wait") != "" {
			if _, err := j.Wait(r.Context()); err != nil && errors.Is(err, r.Context().Err()) {
				httpError(w, http.StatusGatewayTimeout, "wait interrupted: "+err.Error())
				return
			}
			status = http.StatusOK
		} else if j.Status() == StatusDone {
			status = http.StatusOK // served from cache
		}
		writeJSON(w, status, viewOf(j))
	})

	mux.HandleFunc("POST /v1/runs/batch", func(w http.ResponseWriter, r *http.Request) {
		var specs []JobSpec
		if err := json.NewDecoder(r.Body).Decode(&specs); err != nil {
			httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if len(specs) == 0 {
			httpError(w, http.StatusBadRequest, "empty batch")
			return
		}
		views := make([]JobView, 0, len(specs))
		for i, spec := range specs {
			j, err := s.Submit(spec)
			if err != nil {
				httpError(w, submitStatus(err), "spec "+strconv.Itoa(i)+": "+err.Error())
				return
			}
			views = append(views, viewOf(j))
		}
		writeJSON(w, http.StatusAccepted, views)
	})

	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, viewOf(j))
	})

	mux.HandleFunc("GET /v1/runs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, ok := s.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job "+id)
			return
		}
		res, err := j.Result()
		switch {
		case err != nil:
			httpError(w, http.StatusUnprocessableEntity, "job "+id+" failed: "+err.Error())
		case res == nil:
			httpError(w, http.StatusConflict, "job "+id+" is "+string(j.Status())+"; result not available yet")
		default:
			writeJSON(w, http.StatusOK, res)
		}
	})

	mux.HandleFunc("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := s.Get(id); !ok {
			httpError(w, http.StatusNotFound, "unknown job "+id)
			return
		}
		if !s.Cancel(id) {
			httpError(w, http.StatusConflict, "job "+id+" is not queued (running jobs cannot be canceled)")
			return
		}
		j, _ := s.Get(id)
		writeJSON(w, http.StatusOK, viewOf(j))
	})

	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		type wl struct {
			Name     string `json:"name"`
			Category string `json:"category"`
		}
		suite := workload.Suite()
		out := make([]wl, len(suite))
		for i, spec := range suite {
			out[i] = wl{Name: spec.Name, Category: string(spec.Category)}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/mechanisms", func(w http.ResponseWriter, r *http.Request) {
		type mech struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		}
		presets := sim.Mechanisms()
		out := make([]mech, len(presets))
		for i, p := range presets {
			out[i] = mech{Name: p.Name, Description: p.Description}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics().WriteTo(w)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	return mux
}

// Serve runs the API on addr until the server errors or ctx-free shutdown is
// handled by the caller via the returned *http.Server.
func Serve(addr string, s *Scheduler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewHandler(s),
		ReadHeaderTimeout: 10 * time.Second,
	}
}

func submitStatus(err error) int {
	if errors.Is(err, ErrShuttingDown) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// Package service is the execution subsystem shared by the CLI tools, the
// experiment drivers and cmd/constable-server: a canonical, content-hashable
// JobSpec describing one simulation, a Scheduler with per-job status
// tracking and refcounted submitter interest, an LRU result cache plus an
// optional persistent content-addressed store keyed by spec hash, a
// streaming sweep engine, and an HTTP API over all of it. One engine runs
// every simulation in the repo, so identical (workload, mechanism, budget)
// cells — whether they come from two HTTP clients or from two experiment
// drivers — are simulated exactly once per process, and once ever with a
// DataDir.
//
// Execution is pluggable: the scheduler dispatches through a Backend —
// LocalBackend simulates in-process, RemoteBackend sends one job per HTTP
// request to a cmd/constable-worker node, and MultiBackend (the default
// wrapper) composes the local pool with every remote worker registered at
// runtime under capacity-aware dispatch, per-worker health tracking, and
// requeue of a dead worker's in-flight jobs. Results are transported and
// persisted as sim.ResultEnvelope documents whose recorded spec hash is
// verified at every boundary, so a result can never be filed under the
// wrong content address. See docs/ARCHITECTURE.md for the dataflow and
// docs/API.md for the HTTP surface.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"constable/internal/bpred"
	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/pipeline"
	"constable/internal/sim"
	"constable/internal/workload"
)

// MechSpec is the serializable form of sim.Mechanism: the mechanism flags,
// the component-axis variant selections, and the optional configuration
// overrides. Every axis field is default-elided (omitempty), so specs that
// predate the axes keep their JSON encoding — and their content hash —
// byte for byte.
type MechSpec struct {
	EVES      bool `json:"eves,omitempty"`
	Constable bool `json:"constable,omitempty"`
	RFP       bool `json:"rfp,omitempty"`
	ELAR      bool `json:"elar,omitempty"`

	IdealConstable     bool `json:"ideal_constable,omitempty"`
	IdealStableLVP     bool `json:"ideal_stable_lvp,omitempty"`
	IdealDataFetchElim bool `json:"ideal_data_fetch_elim,omitempty"`

	// Config overrides the default Constable configuration.
	Config *constable.Config `json:"config,omitempty"`

	// Component-axis variant names (sim.MechanismAxes lists the vocabulary;
	// empty selects the axis default) with optional config overrides.
	// Canonical normalizes default variant names and default-equal overrides
	// away, so equivalent specs hash equal.
	BPred    string `json:"bpred,omitempty"`
	Prefetch string `json:"prefetch,omitempty"`
	L1DPred  string `json:"l1dpred,omitempty"`

	BPredConfig    *bpred.Config         `json:"bpred_config,omitempty"`
	PrefetchConfig *cache.PrefetchConfig `json:"prefetch_config,omitempty"`
	L1DPredConfig  *cache.L1DPredConfig  `json:"l1dpred_config,omitempty"`
}

// ToMechanism converts the spec into the sim package's mechanism set.
func (m MechSpec) ToMechanism() sim.Mechanism {
	return sim.Mechanism{
		EVES:               m.EVES,
		Constable:          m.Constable,
		RFP:                m.RFP,
		ELAR:               m.ELAR,
		IdealConstable:     m.IdealConstable,
		IdealStableLVP:     m.IdealStableLVP,
		IdealDataFetchElim: m.IdealDataFetchElim,
		ConstableConfig:    m.Config,
		BPred:              m.BPred,
		Prefetch:           m.Prefetch,
		L1DPred:            m.L1DPred,
		BPredConfig:        m.BPredConfig,
		PrefetchConfig:     m.PrefetchConfig,
		L1DPredConfig:      m.L1DPredConfig,
	}
}

// mechSpecFromMechanism is the inverse of ToMechanism.
func mechSpecFromMechanism(m sim.Mechanism) MechSpec {
	return MechSpec{
		EVES:               m.EVES,
		Constable:          m.Constable,
		RFP:                m.RFP,
		ELAR:               m.ELAR,
		IdealConstable:     m.IdealConstable,
		IdealStableLVP:     m.IdealStableLVP,
		IdealDataFetchElim: m.IdealDataFetchElim,
		Config:             m.ConstableConfig,
		BPred:              m.BPred,
		Prefetch:           m.Prefetch,
		L1DPred:            m.L1DPred,
		BPredConfig:        m.BPredConfig,
		PrefetchConfig:     m.PrefetchConfig,
		L1DPredConfig:      m.L1DPredConfig,
	}
}

// MechanismNames lists the named mechanism configurations accepted by
// ParseMechanism, in presentation order (sim's mechanism registry).
func MechanismNames() []string { return sim.MechanismNames() }

// ParseMechanism resolves a named mechanism configuration through sim's
// mechanism registry — the single name→configuration table shared by
// constable-sim's -mech flag, tracetool's replay, and the HTTP API's
// "mechanism" field.
func ParseMechanism(s string) (MechSpec, error) {
	m, err := sim.MechanismByName(s)
	if err != nil {
		return MechSpec{}, err
	}
	return mechSpecFromMechanism(m), nil
}

// canonical validates the mechanism spec and normalizes it so equivalent
// specs compare and hash equal: axis variant names canonicalize through
// sim's axis registry (default names become ""), config overrides are
// deep-copied, and an override that equals the variant's default
// configuration is elided to nil — a spec spelling out
// constable.DefaultConfig() runs the exact simulation the bare preset runs,
// so it must land on the same content address.
func (m MechSpec) canonical() (MechSpec, error) {
	cm, err := m.ToMechanism().CanonicalAxes()
	if err != nil {
		return m, err
	}
	c := mechSpecFromMechanism(cm)
	if c.Config != nil {
		if *c.Config == constable.DefaultConfig() {
			c.Config = nil
		} else {
			cfg := *c.Config
			c.Config = &cfg
		}
	}
	if c.BPredConfig != nil {
		if err := c.BPredConfig.Validate(); err != nil {
			return m, fmt.Errorf("service: bpred config: %w", err)
		}
		base := bpred.DefaultConfig()
		if c.BPred == "bimodal" {
			base = bpred.BimodalConfig()
		}
		if *c.BPredConfig == base {
			c.BPredConfig = nil
		} else {
			cfg := *c.BPredConfig
			c.BPredConfig = &cfg
		}
	}
	if c.PrefetchConfig != nil {
		if c.Prefetch == "none" {
			return m, fmt.Errorf("service: prefetch=none takes no config override")
		}
		if err := c.PrefetchConfig.Validate(); err != nil {
			return m, fmt.Errorf("service: prefetch config: %w", err)
		}
		if *c.PrefetchConfig == cache.DefaultPrefetchConfig() {
			c.PrefetchConfig = nil
		} else {
			cfg := *c.PrefetchConfig
			c.PrefetchConfig = &cfg
		}
	}
	if c.L1DPredConfig != nil {
		if c.L1DPred == "" {
			return m, fmt.Errorf("service: l1dpred config override requires a variant (counter or global)")
		}
		if err := c.L1DPredConfig.Validate(); err != nil {
			return m, fmt.Errorf("service: l1dpred config: %w", err)
		}
		// The variant decides the Global flag, so it never differentiates
		// specs; canonicalize it to the variant's value before comparing.
		cfg := *c.L1DPredConfig
		cfg.Global = c.L1DPred == "global"
		def := cache.DefaultL1DPredConfig()
		def.Global = cfg.Global
		if cfg == def {
			c.L1DPredConfig = nil
		} else {
			c.L1DPredConfig = &cfg
		}
	}
	return c, nil
}

// JobSpec canonically describes one simulation run. Two specs that resolve
// to the same simulation have equal hashes, so the scheduler can serve one
// from the other's result.
type JobSpec struct {
	// Workload names a workload from the suite (workload.Names).
	Workload string `json:"workload"`
	// Mechanism, when non-empty, names a mechanism configuration
	// (ParseMechanism) and overrides Mech. The HTTP API uses this form;
	// programmatic callers may fill Mech directly instead.
	Mechanism string `json:"mechanism,omitempty"`
	// Mech is the explicit mechanism set (ignored when Mechanism is set).
	Mech MechSpec `json:"mech,omitzero"`

	// Instructions is the committed-path budget per thread (default 100k,
	// matching sim.Run).
	Instructions uint64 `json:"instructions,omitempty"`
	// Threads selects noSMT (1, the default) or SMT2 (2).
	Threads int `json:"threads,omitempty"`
	// APX selects the 32-register build of the workload (appendix B).
	APX bool `json:"apx,omitempty"`

	// Core overrides the default core configuration (width/depth sweeps).
	Core *pipeline.Config `json:"core,omitempty"`

	// StablePCs primes the oracles and the Fig. 6 accounting (sorted;
	// optional — normally the pre-pass computes it).
	StablePCs []uint64 `json:"stable_pcs,omitempty"`

	// Tenant optionally names the fair-share scheduling class this
	// submission joins (the X-Constable-Tenant header overrides it). It is
	// a scheduling attribute, not simulation identity: Canonical clears
	// it, so equal simulations hash equal — and dedup — across tenants.
	Tenant string `json:"tenant,omitempty"`
}

// Canonical returns the spec with defaults applied and the named mechanism
// resolved, so equivalent specs compare and hash equal. It errors on an
// unknown workload or mechanism name. A "trace:<hash>" workload is validated
// syntactically only — the hash is content-addressed, so the name alone pins
// what will be simulated; whether the trace bytes are present is a question
// for submission time (the scheduler) and execution time (the backend), not
// for hashing. That keeps Canonical/Hash usable on workers before the trace
// has been fetched.
func (s JobSpec) Canonical() (JobSpec, error) {
	c := s
	// Tenant routes the job to a scheduling class; it does not change what
	// is simulated, so it must not differentiate content hashes.
	c.Tenant = ""
	if workload.IsTraceName(c.Workload) {
		if _, err := workload.TraceHash(c.Workload); err != nil {
			return c, err
		}
		// Trace replay is register-file-agnostic (the captured stream fixes
		// the operands), so APX does not change the simulation; canonicalize
		// it away for better cross-spec dedup.
		c.APX = false
	} else if _, err := workload.ByName(c.Workload); err != nil {
		return c, err
	}
	if c.Mechanism != "" {
		m, err := ParseMechanism(c.Mechanism)
		if err != nil {
			return c, err
		}
		c.Mech = m
		c.Mechanism = ""
	}
	if c.Instructions == 0 {
		c.Instructions = 100_000
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Threads != 1 && c.Threads != 2 {
		return c, fmt.Errorf("service: threads must be 1 or 2, got %d", c.Threads)
	}
	mech, err := c.Mech.canonical()
	if err != nil {
		return c, err
	}
	c.Mech = mech
	if c.Core != nil {
		core := *c.Core
		c.Core = &core
	}
	if c.StablePCs != nil {
		pcs := append([]uint64(nil), c.StablePCs...)
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		c.StablePCs = pcs
	}
	return c, nil
}

// Hash returns the spec's deterministic content hash: sha256 over the JSON
// encoding of the canonical form (struct fields encode in declaration order,
// so the encoding — and therefore the hash — is stable across processes).
func (s JobSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// WorkloadResolver maps a canonical workload name to its Spec. The default
// resolver knows only the built-in suite; the scheduler supplies one that
// also resolves "trace:<hash>" references through its trace store.
type WorkloadResolver func(name string) (*workload.Spec, error)

// ToOptions resolves the canonical spec into runnable sim.Options using the
// built-in suite only. Specs that reference uploaded traces need
// ToOptionsWith and a trace-aware resolver.
func (s JobSpec) ToOptions() (sim.Options, error) {
	return s.ToOptionsWith(workload.ByName)
}

// ToOptionsWith resolves the canonical spec into runnable sim.Options,
// resolving the workload name through resolve.
func (s JobSpec) ToOptionsWith(resolve WorkloadResolver) (sim.Options, error) {
	c, err := s.Canonical()
	if err != nil {
		return sim.Options{}, err
	}
	spec, err := resolve(c.Workload)
	if err != nil {
		return sim.Options{}, err
	}
	opts := sim.Options{
		Workload:     spec,
		APX:          c.APX,
		Instructions: c.Instructions,
		Threads:      c.Threads,
		Mech:         c.Mech.ToMechanism(),
		Core:         c.Core,
	}
	if c.StablePCs != nil {
		stable := make(map[uint64]bool, len(c.StablePCs))
		for _, pc := range c.StablePCs {
			stable[pc] = true
		}
		opts.StablePCs = stable
	}
	return opts, nil
}

// SpecFromOptions converts sim.Options into the canonical JobSpec form —
// the bridge the experiment drivers use to route their existing option
// construction through the scheduler.
func SpecFromOptions(opts sim.Options) JobSpec {
	s := JobSpec{
		Workload:     opts.Workload.Name,
		Mech:         mechSpecFromMechanism(opts.Mech),
		Instructions: opts.Instructions,
		Threads:      opts.Threads,
		APX:          opts.APX,
		Core:         opts.Core,
	}
	if opts.StablePCs != nil {
		pcs := make([]uint64, 0, len(opts.StablePCs))
		for pc, ok := range opts.StablePCs {
			if ok {
				pcs = append(pcs, pc)
			}
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		s.StablePCs = pcs
	}
	return s
}

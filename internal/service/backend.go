package service

import (
	"context"
	"errors"

	"constable/internal/sim"
)

// ErrBackendUnavailable marks an execution failure that is the backend's
// fault rather than the job's: the remote worker died mid-request, returned
// a malformed or aliased result envelope, or no healthy backend exists at
// all. The scheduler reacts by requeuing the job for another backend
// (respecting Abandon refcounts) instead of failing it, and the MultiBackend
// reacts by marking the offending worker unhealthy. Simulation failures —
// the spec itself is broken, or the model faulted — are ordinary errors and
// terminal for the job on any backend.
var ErrBackendUnavailable = errors.New("service: backend unavailable")

// Backend executes canonical JobSpecs. It is the scheduler's run-a-JobSpec
// seam: LocalBackend simulates in-process, RemoteBackend dispatches one job
// per HTTP request to a constable-worker, and MultiBackend composes a local
// pool with any number of registered remote workers under capacity-aware
// dispatch. The scheduler owns queueing, dedup, caching and persistence;
// backends only turn one spec into one result.
type Backend interface {
	// Name identifies the backend in logs, metrics and worker listings.
	Name() string
	// Capacity is the number of jobs the backend can execute concurrently.
	// The scheduler dispatches at most Capacity jobs at a time; a capacity
	// of zero parks the queue until capacity appears (e.g. a remote worker
	// registers).
	Capacity() int
	// Execute runs one canonical spec to completion and returns its result.
	// hash is the spec's content hash, forwarded so remote backends can
	// verify the result envelope they get back (alias defense). An error
	// wrapping ErrBackendUnavailable means the job never completed anywhere
	// and should be retried on another backend; any other error is the
	// job's own terminal failure.
	Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error)
}

// ExecuteRequest is the body of the server→worker POST /execute call: the
// canonical spec to run plus its content hash, which the worker re-derives
// and verifies before simulating so a corrupted dispatch can never produce
// a result filed under the wrong key.
type ExecuteRequest struct {
	Hash string  `json:"hash"`
	Spec JobSpec `json:"spec"`
}

// LocalBackend executes jobs in-process on the scheduler's own machine.
type LocalBackend struct {
	name     string
	capacity int
	// run executes one simulation (sim.Run in production; tests substitute
	// a stub through the scheduler's runFn indirection).
	run func(sim.Options) (*sim.RunResult, error)
}

// NewLocalBackend returns an in-process backend running up to capacity
// concurrent simulations through run (sim.Run when nil). A capacity ≤ 0
// yields a backend that accepts no work — useful for a pure dispatcher
// server whose cells must all execute on remote workers.
func NewLocalBackend(capacity int, run func(sim.Options) (*sim.RunResult, error)) *LocalBackend {
	if run == nil {
		run = sim.Run
	}
	if capacity < 0 {
		capacity = 0
	}
	return &LocalBackend{name: "local", capacity: capacity, run: run}
}

// Name implements Backend.
func (l *LocalBackend) Name() string { return l.name }

// Capacity implements Backend.
func (l *LocalBackend) Capacity() int { return l.capacity }

// Execute implements Backend by resolving the spec and simulating it on the
// calling goroutine. Local execution failures are always the job's own
// (never ErrBackendUnavailable): the process that would retry the job is
// the same one that just failed it.
func (l *LocalBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	opts, err := spec.ToOptions()
	if err != nil {
		return nil, err
	}
	return l.run(opts)
}

package service

import (
	"context"
	"errors"
	"sync"

	"constable/internal/sim"
	"constable/internal/workload"
)

// ErrBackendUnavailable marks an execution failure that is the backend's
// fault rather than the job's: the remote worker died mid-request, returned
// a malformed or aliased result envelope, or no healthy backend exists at
// all. The scheduler reacts by requeuing the job for another backend
// (respecting Abandon refcounts) instead of failing it, and the MultiBackend
// reacts by marking the offending worker unhealthy. Simulation failures —
// the spec itself is broken, or the model faulted — are ordinary errors and
// terminal for the job on any backend.
var ErrBackendUnavailable = errors.New("service: backend unavailable")

// BatchResult is one cell's outcome within an ExecuteBatch chunk. Err nil
// means Result is the cell's finished document; an Err wrapping
// ErrBackendUnavailable means this cell never completed anywhere and should
// be retried on another backend; any other Err is the cell's own terminal
// failure. Per-cell granularity is the point: one failing cell must not
// drag its chunk siblings down with it.
type BatchResult struct {
	Result *sim.RunResult
	Err    error
	// CacheHit marks a cell that never reached a backend because its result
	// already existed cluster-wide at dispatch time (another worker wrote it
	// back, or a peer process sharing the data-dir saved it, after this cell
	// was submitted). The scheduler finishes such a cell as a cache hit and
	// excludes it from the executed/simulated accounting.
	CacheHit bool
}

// Backend executes canonical JobSpecs. It is the scheduler's run-a-JobSpec
// seam: LocalBackend simulates in-process, RemoteBackend dispatches chunks
// of jobs over HTTP to a constable-worker, and MultiBackend composes a
// local pool with any number of registered remote workers under
// capacity-aware dispatch. The scheduler owns queueing, dedup, caching and
// persistence; backends only turn specs into results.
type Backend interface {
	// Name identifies the backend in logs, metrics and worker listings.
	Name() string
	// Capacity is the number of jobs the backend can execute concurrently.
	// The scheduler dispatches at most Capacity jobs at a time; a capacity
	// of zero parks the queue until capacity appears (e.g. a remote worker
	// registers).
	Capacity() int
	// Execute runs one canonical spec to completion and returns its result.
	// hash is the spec's content hash, forwarded so remote backends can
	// verify the result envelope they get back (alias defense). An error
	// wrapping ErrBackendUnavailable means the job never completed anywhere
	// and should be retried on another backend; any other error is the
	// job's own terminal failure.
	Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error)
	// ExecuteBatch runs a chunk of specs (hashes[i] belonging to specs[i])
	// and reports each cell's outcome individually, so one failing cell
	// does not requeue its siblings. The returned slice is index-aligned
	// with specs. A non-nil error means the whole chunk failed in one
	// stroke — the dispatch never reached the backend, or the transport
	// died mid-exchange with no per-cell attribution — and the results
	// slice is meaningless; the caller treats every cell as having failed
	// with that error.
	ExecuteBatch(ctx context.Context, specs []JobSpec, hashes []string) ([]BatchResult, error)
}

// ExecuteRequest is the body of the server→worker POST /execute call: the
// canonical spec to run plus its content hash, which the worker re-derives
// and verifies before simulating so a corrupted dispatch can never produce
// a result filed under the wrong key.
type ExecuteRequest struct {
	Hash string  `json:"hash"`
	Spec JobSpec `json:"spec"`
}

// BatchExecuteRequest is the body of the server→worker POST /execute/batch
// call: a chunk of cells, each carrying the same spec+hash pair a single
// /execute dispatch would. The worker runs the chunk through its private
// scheduler (bounded concurrency, worker-local dedup and LRU) and answers
// item-for-item.
type BatchExecuteRequest struct {
	Items []ExecuteRequest `json:"items"`
}

// BatchExecuteItem is one cell's outcome in a BatchExecuteResponse. Exactly
// one of Envelope (the cell finished; the envelope is hash-verified by the
// server before acceptance) or Error is set. Requeue distinguishes the two
// failure classes the single-dispatch protocol expresses as 503 vs 422:
// true means the failure is the worker's condition (draining for shutdown,
// pool canceled, corrupted dispatch) and the server should run the cell
// elsewhere; false means the simulation itself failed and retrying would
// only fail the same way.
type BatchExecuteItem struct {
	Envelope *sim.ResultEnvelope `json:"envelope,omitempty"`
	Error    string              `json:"error,omitempty"`
	Requeue  bool                `json:"requeue,omitempty"`
}

// BatchExecuteResponse answers a BatchExecuteRequest, index-aligned with
// its items.
type BatchExecuteResponse struct {
	Items []BatchExecuteItem `json:"items"`
}

// workloadResolverSetter is implemented by backends that resolve workload
// names themselves (LocalBackend) so the owning scheduler can teach them
// about trace-backed workloads. Remote backends don't need it: the worker's
// own scheduler resolves on its side.
type workloadResolverSetter interface {
	setWorkloadResolver(WorkloadResolver)
}

// LocalBackend executes jobs in-process on the scheduler's own machine.
type LocalBackend struct {
	name     string
	capacity int
	// run executes one simulation (sim.Run in production; tests substitute
	// a stub through the scheduler's runFn indirection).
	run func(sim.Options) (*sim.RunResult, error)
	// resolve maps workload names to Specs (workload.ByName when nil). The
	// owning scheduler installs its trace-aware resolver at Open, before
	// dispatch starts.
	resolve WorkloadResolver
}

func (l *LocalBackend) setWorkloadResolver(r WorkloadResolver) { l.resolve = r }

// NewLocalBackend returns an in-process backend running up to capacity
// concurrent simulations through run (sim.Run when nil). A capacity ≤ 0
// yields a backend that accepts no work — useful for a pure dispatcher
// server whose cells must all execute on remote workers.
func NewLocalBackend(capacity int, run func(sim.Options) (*sim.RunResult, error)) *LocalBackend {
	if run == nil {
		run = sim.Run
	}
	if capacity < 0 {
		capacity = 0
	}
	return &LocalBackend{name: "local", capacity: capacity, run: run}
}

// Name implements Backend.
func (l *LocalBackend) Name() string { return l.name }

// Capacity implements Backend.
func (l *LocalBackend) Capacity() int { return l.capacity }

// Execute implements Backend by resolving the spec and simulating it on the
// calling goroutine. Local execution failures are always the job's own
// (never ErrBackendUnavailable): the process that would retry the job is
// the same one that just failed it.
func (l *LocalBackend) Execute(ctx context.Context, spec JobSpec, hash string) (*sim.RunResult, error) {
	resolve := l.resolve
	if resolve == nil {
		resolve = workload.ByName
	}
	opts, err := spec.ToOptionsWith(resolve)
	if err != nil {
		return nil, err
	}
	return l.run(opts)
}

// ExecuteBatch implements Backend by simulating the chunk's cells
// concurrently — the dispatcher only hands the local pool a chunk as large
// as the number of slots it reserved, so each cell gets its own goroutine
// without oversubscribing the pool. Like Execute, local failures are
// always the cell's own.
func (l *LocalBackend) ExecuteBatch(ctx context.Context, specs []JobSpec, hashes []string) ([]BatchResult, error) {
	out := make([]BatchResult, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := l.Execute(ctx, specs[i], hashes[i])
			out[i] = BatchResult{Result: res, Err: err}
		}(i)
	}
	wg.Wait()
	return out, nil
}

package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"constable/internal/sim"
	"constable/internal/workload"
)

var errSimBoom = errors.New("sim boom")

// testMatrix builds a rows×cols matrix of distinct specs over the small
// suite (one workload per row, instruction budget varying per column).
func testMatrix(rows, cols int, baseInsts uint64) [][]JobSpec {
	suite := workload.SmallSuite()
	m := make([][]JobSpec, rows)
	for ri := 0; ri < rows; ri++ {
		row := make([]JobSpec, cols)
		for ci := 0; ci < cols; ci++ {
			row[ci] = JobSpec{
				Workload:     suite[ri%len(suite)].Name,
				Instructions: baseInsts + uint64(ri*cols+ci),
			}
		}
		m[ri] = row
	}
	return m
}

func drainSweep(t *testing.T, sw *Sweep) []SweepEvent {
	t.Helper()
	var events []SweepEvent
	if err := sw.Stream(t.Context(), true, func(ev SweepEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	return events
}

func TestSweepStreamsAllCells(t *testing.T) {
	var calls atomic.Uint64
	s := newStubScheduler(t, Config{Workers: 4}, countingRun(&calls))

	sw, err := s.StartSweep(t.Context(), testMatrix(3, 4, 1000), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events := drainSweep(t, sw)
	if len(events) != 12 {
		t.Fatalf("streamed %d events, want 12", len(events))
	}
	lastCol := map[int]int{0: -1, 1: -1, 2: -1}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d; stream is out of order", i, ev.Seq)
		}
		if ev.Status != StatusDone || ev.Result == nil {
			t.Errorf("cell (%d,%d): status %s, result %v", ev.Row, ev.Col, ev.Status, ev.Result)
		}
		// Within a row, cells must stream in column order (runSweep's
		// aggregators rely on per-row ordering being stable).
		if ev.Col <= lastCol[ev.Row] {
			t.Errorf("row %d streamed col %d after col %d", ev.Row, ev.Col, lastCol[ev.Row])
		}
		lastCol[ev.Row] = ev.Col
	}
	if calls.Load() != 12 {
		t.Errorf("ran %d simulations, want 12 (all cells distinct)", calls.Load())
	}
	v := sw.View()
	if v.Status != SweepDone || v.Completed != 12 || v.Failed != 0 || v.Canceled != 0 {
		t.Errorf("view = %+v, want done/12/0/0", v)
	}

	// Replay after completion: a late subscriber still gets full history.
	replay := drainSweep(t, sw)
	if len(replay) != 12 {
		t.Errorf("replay streamed %d events, want 12", len(replay))
	}

	// The same matrix resubmitted is served entirely from the cache.
	sw2, err := s.StartSweep(t.Context(), testMatrix(3, 4, 1000), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	drainSweep(t, sw2)
	if calls.Load() != 12 {
		t.Errorf("resubmitted sweep re-simulated (%d calls)", calls.Load())
	}
	if v := sw2.View(); v.CacheHits != 12 {
		t.Errorf("resubmitted sweep cache hits = %d, want 12", v.CacheHits)
	}
}

// TestSweepCancelMidMatrix is the mid-matrix cancellation test: with one
// worker wedged, canceling the sweep must drop every still-queued cell from
// the scheduler queue and drain the sweep to a terminal canceled status
// without waiting for the wedged cell.
func TestSweepCancelMidMatrix(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	var started atomic.Uint64
	s := newStubScheduler(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		if started.Add(1) >= 2 {
			<-gate // second and later simulations wedge
		}
		return &sim.RunResult{Cycles: opts.Instructions}, nil
	})

	sw, err := s.StartSweep(t.Context(), testMatrix(2, 4, 2000), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until one cell has completed and the next is wedged running.
	waitFor(t, 5*time.Second, func() bool {
		return sw.View().Completed >= 1 && started.Load() >= 2
	})
	sw.Cancel()

	select {
	case <-sw.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("sweep did not reach a terminal status after Cancel (wedged cell still running)")
	}
	v := sw.View()
	if v.Status != SweepCanceled {
		t.Fatalf("status %s, want canceled (view %+v)", v.Status, v)
	}
	if v.Completed+v.Canceled != v.Total || v.Canceled == 0 {
		t.Errorf("cells: %d done + %d canceled != %d total", v.Completed, v.Canceled, v.Total)
	}
	// Every queued cell left the scheduler queue — nothing keeps simulating
	// toward a canceled sweep.
	if depth := s.QueueDepth(); depth != 0 {
		t.Errorf("queue depth after cancel = %d, want 0", depth)
	}
	if m := s.Metrics(); m.JobsCanceled == 0 {
		t.Errorf("scheduler canceled %d jobs, want > 0", m.JobsCanceled)
	}
	events := drainSweep(t, sw)
	if len(events) != v.Total {
		t.Errorf("streamed %d events, want %d (canceled cells must still produce events)", len(events), v.Total)
	}
}

// TestSweepFailFast verifies satellite bug #1's fix end-to-end: after one
// cell fails, the remaining cells are canceled instead of simulating to
// completion, and the first error surfaces.
func TestSweepFailFast(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var sims atomic.Uint64
	s := newStubScheduler(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		sims.Add(1)
		if opts.Instructions == 3000 { // first cell fails
			return nil, errSimBoom
		}
		// Later cells block until the test ends: if fail-fast doesn't drop
		// them from the queue, they show up in the simulation count.
		<-release
		return &sim.RunResult{Cycles: opts.Instructions}, nil
	})

	sw, err := s.StartSweep(t.Context(), testMatrix(2, 3, 3000), SweepOptions{FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	events := drainSweep(t, sw)
	if sw.Status() != SweepFailed {
		t.Errorf("status %s, want failed", sw.Status())
	}
	if !errors.Is(sw.Err(), errSimBoom) {
		t.Errorf("Err = %v, want %v", sw.Err(), errSimBoom)
	}
	v := sw.View()
	if v.Failed != 1 {
		t.Errorf("failed cells = %d, want 1", v.Failed)
	}
	if v.Completed+v.Failed+v.Canceled != v.Total {
		t.Errorf("event accounting: %+v does not cover %d cells", v, v.Total)
	}
	if v.Canceled == 0 {
		t.Error("fail-fast canceled no cells — the matrix ran to completion after the error")
	}
	if int(sims.Load()) >= v.Total {
		t.Errorf("all %d cells simulated despite fail-fast (want < total)", sims.Load())
	}
	if len(events) != v.Total {
		t.Errorf("streamed %d events, want %d", len(events), v.Total)
	}
}

// TestSweepWithoutFailFastCompletes verifies a sweep that did NOT opt into
// fail_fast keeps simulating the rest of the matrix after a cell fails.
func TestSweepWithoutFailFastCompletes(t *testing.T) {
	var sims atomic.Uint64
	s := newStubScheduler(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		sims.Add(1)
		if opts.Instructions == 5000 { // first cell fails
			return nil, errSimBoom
		}
		return &sim.RunResult{Cycles: opts.Instructions}, nil
	})

	sw, err := s.StartSweep(t.Context(), testMatrix(2, 3, 5000), SweepOptions{FailFast: false})
	if err != nil {
		t.Fatal(err)
	}
	drainSweep(t, sw)
	v := sw.View()
	if v.Status != SweepFailed || v.Failed != 1 {
		t.Errorf("view %+v, want failed status with exactly 1 failed cell", v)
	}
	if v.Completed != v.Total-1 || v.Canceled != 0 {
		t.Errorf("non-fail-fast sweep canceled cells: %+v (want %d completed, 0 canceled)", v, v.Total-1)
	}
	if int(sims.Load()) != v.Total {
		t.Errorf("simulated %d cells, want all %d", sims.Load(), v.Total)
	}
	if !errors.Is(sw.Err(), errSimBoom) {
		t.Errorf("Err = %v, want %v", sw.Err(), errSimBoom)
	}
}

// TestDedupedWaitersGetIsolatedResults pins the Job.Result isolation
// contract: two submitters deduped onto one job each receive an independent
// deep copy.
func TestDedupedWaitersGetIsolatedResults(t *testing.T) {
	gate := make(chan struct{})
	s := newStubScheduler(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{Cycles: 42, Counters: map[string]uint64{"pipeline.retired": 9}}, nil
	})
	spec := JobSpec{Workload: testWorkload(t), Instructions: 1000}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("specs did not dedup")
	}
	close(gate)
	a, err := j1.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	b, err := j2.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("deduped waiters share one result pointer")
	}
	a.Cycles = 0
	a.Counters["pipeline.retired"] = 0
	if b.Cycles != 42 || b.Counters.Get("pipeline.retired") != 9 {
		t.Errorf("mutating one waiter's result corrupted the other's: %+v", b)
	}
}

// TestSweepPersistenceRestart is the sweep half of the restart acceptance
// criterion: a sweep against a data-dir, then a fresh scheduler on the same
// dir, re-serves every cell as a cache/store hit with zero re-simulations.
func TestSweepPersistenceRestart(t *testing.T) {
	dir := t.TempDir()
	matrix := testMatrix(2, 3, 4000)

	var calls atomic.Uint64
	s1, err := Open(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.runFn = countingRun(&calls)
	sw1, err := s1.StartSweep(t.Context(), matrix, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	drainSweep(t, sw1)
	if sw1.Status() != SweepDone || calls.Load() != 6 {
		t.Fatalf("seed sweep: status %s, %d sims (want done, 6)", sw1.Status(), calls.Load())
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	s2.runFn = func(opts sim.Options) (*sim.RunResult, error) {
		t.Error("restarted scheduler re-simulated a persisted sweep cell")
		return countingRun(&calls)(opts)
	}
	sw2, err := s2.StartSweep(t.Context(), matrix, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events := drainSweep(t, sw2)
	if sw2.Status() != SweepDone {
		t.Fatalf("restarted sweep status %s, want done", sw2.Status())
	}
	for _, ev := range events {
		if !ev.CacheHit {
			t.Errorf("cell (%d,%d) was not served from the store after restart", ev.Row, ev.Col)
		}
	}
	if v := sw2.View(); v.CacheHits != v.Total {
		t.Errorf("restart sweep: %d/%d cache hits", v.CacheHits, v.Total)
	}
}

func TestSweepRejectsInvalidMatrix(t *testing.T) {
	s := newStubScheduler(t, Config{Workers: 1}, countingRun(new(atomic.Uint64)))
	if _, err := s.StartSweep(t.Context(), nil, SweepOptions{}); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := s.StartSweep(t.Context(), [][]JobSpec{{}}, SweepOptions{}); err == nil {
		t.Error("empty row accepted")
	}
	bad := [][]JobSpec{{{Workload: "no-such-workload"}}}
	if _, err := s.StartSweep(t.Context(), bad, SweepOptions{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if m := s.Metrics(); m.JobsSubmitted != 0 {
		t.Errorf("invalid sweeps submitted %d jobs, want 0", m.JobsSubmitted)
	}
}

// TestSchedulerAbandonRefcount pins Abandon's sharing semantics directly:
// a job with two interested submitters survives one abandon and is
// canceled by the second; a running job is never canceled.
func TestSchedulerAbandonRefcount(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := newStubScheduler(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{}, nil
	})
	name := testWorkload(t)

	blocker, err := s.Submit(JobSpec{Workload: name, Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return blocker.Status() == StatusRunning })

	spec := JobSpec{Workload: name, Instructions: 2000}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(spec) // dedup: same job, second interest
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("expected dedup to share the job")
	}
	if s.Abandon(j1.ID) {
		t.Error("Abandon canceled a job another submitter still waits on")
	}
	if j1.Status() != StatusQueued {
		t.Errorf("shared job status %s after first abandon, want queued", j1.Status())
	}
	if !s.Abandon(j1.ID) {
		t.Error("Abandon did not cancel the job after the last interest was dropped")
	}
	if j1.Status() != StatusCanceled {
		t.Errorf("status %s after final abandon, want canceled", j1.Status())
	}

	// A running job is never canceled by Abandon.
	if s.Abandon(blocker.ID) {
		t.Error("Abandon canceled a running job")
	}
}

// TestCancelRespectsSharedInterest: one client's DELETE must not kill a
// queued job that a sweep (or another client) deduped onto.
func TestCancelRespectsSharedInterest(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := newStubScheduler(t, Config{Workers: 1}, func(opts sim.Options) (*sim.RunResult, error) {
		<-gate
		return &sim.RunResult{}, nil
	})
	name := testWorkload(t)
	blocker, err := s.Submit(JobSpec{Workload: name, Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return blocker.Status() == StatusRunning })

	spec := JobSpec{Workload: name, Instructions: 2000}
	j, err := s.Submit(spec) // client A
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec); err != nil { // sweep cell dedups onto j
		t.Fatal(err)
	}
	if s.Cancel(j.ID) {
		t.Error("Cancel killed a job another submitter still shares")
	}
	// Repeated external cancels must not drain the submitters' interests —
	// Cancel is not tied to any submitter, so it may not consume refs.
	if s.Cancel(j.ID) {
		t.Error("repeated Cancel drained shared interests and killed the job")
	}
	if j.Status() != StatusQueued {
		t.Errorf("shared job status %s after external cancels, want queued", j.Status())
	}
	// One submitter bows out (job survives for the other), after which an
	// external cancel of the now sole-interest job succeeds.
	if s.Abandon(j.ID) {
		t.Error("Abandon canceled while another interest remained")
	}
	if !s.Cancel(j.ID) {
		t.Error("Cancel did not cancel a sole-interest queued job")
	}
	if j.Status() != StatusCanceled {
		t.Errorf("status %s, want canceled", j.Status())
	}
}

// BenchmarkSweepThroughput measures sweep orchestration throughput — cells
// per second through submit → queue → worker → LRU + persistent store →
// event stream — with simulation cost stubbed out, isolating the service
// stack. CI uploads its timing as BENCH_sweep.json, the perf-trajectory
// baseline for the sweep path.
func BenchmarkSweepThroughput(b *testing.B) {
	s, err := Open(Config{Workers: 4, DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.runFn = func(opts sim.Options) (*sim.RunResult, error) {
		return &sim.RunResult{Cycles: opts.Instructions}, nil
	}
	const rows, cols = 4, 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Distinct specs every iteration, so each cell takes the full
		// simulate-and-persist path rather than hitting the cache.
		sw, err := s.StartSweep(context.Background(), testMatrix(rows, cols, uint64(10_000+i*rows*cols)), SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := sw.Stream(context.Background(), true, func(SweepEvent) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != rows*cols || sw.Status() != SweepDone {
			b.Fatalf("sweep streamed %d cells, status %s", n, sw.Status())
		}
	}
	b.ReportMetric(float64(rows*cols*b.N)/b.Elapsed().Seconds(), "cells/s")
}

package service

import (
	"container/list"
	"sync"

	"constable/internal/sim"
)

// resultCache is a thread-safe LRU cache of simulation results keyed by
// JobSpec hash. Results are treated as immutable once stored; hits hand out
// the shared pointer.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key string
	res *sim.RunResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, promoting it to most recently used.
func (c *resultCache) Get(key string) (*sim.RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Add stores res under key, evicting the least recently used entry when the
// cache is full. A capacity of zero disables caching.
func (c *resultCache) Add(key string, res *sim.RunResult) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *resultCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

package service

import (
	"container/list"
	"sync"

	"constable/internal/sim"
)

// resultCache is a thread-safe LRU cache of simulation results keyed by
// JobSpec hash. The cache owns its entries exclusively: Add stores a deep
// copy of the inserted result and Get returns a deep copy of the stored one,
// so a caller mutating a result it submitted or received can never corrupt
// what later hits observe (the aliasing bug this replaces handed every hit
// the same shared pointer).
//
// Capacity semantics: a non-positive capacity disables the cache entirely
// (Add is a no-op, Get always misses). Defaulting of the zero value to a
// real capacity is the constructor's job (Config.CacheSize: 0 → 1024), not
// the cache's.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key string
	res *sim.RunResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns a deep copy of the cached result for key, promoting the entry
// to most recently used.
func (c *resultCache) Get(key string) (*sim.RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res.Clone(), true
}

// peek returns a deep copy of the cached result for key without promoting
// the entry or touching the hit/miss counters — the dispatch-time
// short-circuit probe, which runs once per dispatched cell and must not
// distort the cache-hit-rate metric submitters see.
func (c *resultCache) peek(key string) (*sim.RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).res.Clone(), true
}

// Has reports whether key is cached, without promoting, copying, or
// counting — the PUT /v1/results handler's idempotency probe.
func (c *resultCache) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Add stores a deep copy of res under key, evicting the least recently used
// entry when the cache is full. A non-positive capacity disables caching.
func (c *resultCache) Add(key string, res *sim.RunResult) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res.Clone()
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res.Clone()})
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *resultCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// TestAPIDocCoversAllRoutes enforces the documentation contract: every
// route the handler registers must appear verbatim in docs/API.md. Adding
// an endpoint without documenting it fails this test.
func TestAPIDocCoversAllRoutes(t *testing.T) {
	b, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the API: %v", err)
	}
	doc := string(b)
	for _, pattern := range APIRoutes() {
		if !strings.Contains(doc, pattern) {
			t.Errorf("docs/API.md does not document route %q", pattern)
		}
	}
}

// TestAPIRoutesMatchHandler keeps APIRoutes honest: each declared pattern
// must be exactly what the ServeMux resolves for a matching request, so the
// doc cross-check above really covers the served surface.
func TestAPIRoutesMatchHandler(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(func() { s.Close() })
	mux, ok := NewHandler(s).(*http.ServeMux)
	if !ok {
		t.Fatal("NewHandler no longer returns a *http.ServeMux; update this test")
	}
	for _, pattern := range APIRoutes() {
		method, path, found := strings.Cut(pattern, " ")
		if !found {
			t.Errorf("route %q is not in 'METHOD /path' form", pattern)
			continue
		}
		reqPath := strings.ReplaceAll(path, "{id}", "some-id")
		reqPath = strings.ReplaceAll(reqPath, "{hash}", strings.Repeat("ab", 32))
		req := httptest.NewRequest(method, reqPath, nil)
		if _, got := mux.Handler(req); got != pattern {
			t.Errorf("request %s %s resolves to %q, want %q", method, reqPath, got, pattern)
		}
	}
}

// Package power implements the event-energy core power model used for the
// paper's power results (§8.2, §9.5, Table 3, Fig. 19). Dynamic energy is
// accumulated per microarchitectural event; the report breaks core dynamic
// power into the paper's units — front end (FE), out-of-order (OOO: RS, RAT,
// ROB), non-memory execution (EU), and memory execution (MEU: L1-D, DTLB) —
// with Constable's structures charged to RAT (SLD, RMT) and L1-D (AMT)
// exactly as §8.2 specifies.
package power

import (
	"encoding/json"
	"fmt"
	"strings"

	"constable/internal/stats"
)

// Energy constants in picojoules per event. The SLD/RMT/AMT numbers are
// Table 3's CACTI values scaled to 14 nm; the generic core events are
// plausible 14 nm-class figures — the paper's power *deltas* come from event
// count differences (fewer RS allocations, fewer L1-D accesses), which is
// what this model reproduces.
const (
	FetchEnergyPJ    = 27.0  // per fetched uop (I-cache + decode pipes)
	DecodeEnergyPJ   = 12.0  // per decoded uop
	RenameEnergyPJ   = 18.0  // per renamed uop (RAT read/write)
	RSAllocEnergyPJ  = 42.0  // per reservation-station allocation
	RSIssueEnergyPJ  = 30.0  // per issue (wakeup/select across 248 entries)
	ROBAllocEnergyPJ = 21.0  // per ROB allocation (+retire)
	ALUEnergyPJ      = 48.0  // per ALU/MUL/FP operation
	AGUEnergyPJ      = 27.0  // per address generation
	L1DEnergyPJ      = 195.0 // per L1-D access (48 KB, 12-way)
	DTLBEnergyPJ     = 24.0  // per DTLB access
	L2EnergyPJ       = 450.0 // per L2 access
	LLCEnergyPJ      = 960.0

	// Table 3 (Constable structures, 14 nm).
	SLDReadPJ   = 10.76
	SLDWritePJ  = 16.70
	RMTAccessPJ = 0.20
	AMTReadPJ   = 1.58
	AMTWritePJ  = 4.22
)

// LeakagemW and area from Table 3, reported by the Table 3 driver.
const (
	SLDLeakageMW = 1.02
	RMTLeakageMW = 0.31
	AMTLeakageMW = 0.74

	SLDAreaMM2 = 0.211
	RMTAreaMM2 = 0.004
	AMTAreaMM2 = 0.017
)

// Events are the microarchitectural event counts a simulation produces.
type Events struct {
	FetchedUops  uint64
	RenamedUops  uint64
	RSAllocs     uint64
	RSIssues     uint64
	ROBAllocs    uint64
	ALUOps       uint64
	AGUOps       uint64
	L1DAccesses  uint64
	DTLBAccesses uint64
	L2Accesses   uint64
	LLCAccesses  uint64

	SLDReads  uint64
	SLDWrites uint64
	RMTOps    uint64
	AMTReads  uint64
	AMTWrites uint64

	Cycles uint64
}

// Breakdown is the per-unit dynamic energy in picojoules.
type Breakdown struct {
	FE   float64
	RS   float64
	RAT  float64 // includes SLD and RMT (§8.2)
	ROB  float64
	EU   float64
	L1D  float64 // includes AMT (§8.2)
	DTLB float64

	Cycles uint64
}

// Compute translates event counts into the per-unit energy breakdown.
func Compute(e Events) Breakdown {
	var b Breakdown
	b.FE = float64(e.FetchedUops)*FetchEnergyPJ + float64(e.FetchedUops)*DecodeEnergyPJ
	b.RS = float64(e.RSAllocs)*RSAllocEnergyPJ + float64(e.RSIssues)*RSIssueEnergyPJ
	b.RAT = float64(e.RenamedUops)*RenameEnergyPJ +
		float64(e.SLDReads)*SLDReadPJ + float64(e.SLDWrites)*SLDWritePJ +
		float64(e.RMTOps)*RMTAccessPJ
	b.ROB = float64(e.ROBAllocs) * ROBAllocEnergyPJ
	b.EU = float64(e.ALUOps) * ALUEnergyPJ
	b.L1D = float64(e.L1DAccesses)*L1DEnergyPJ + float64(e.AGUOps)*AGUEnergyPJ +
		float64(e.L2Accesses)*L2EnergyPJ + float64(e.LLCAccesses)*LLCEnergyPJ +
		float64(e.AMTReads)*AMTReadPJ + float64(e.AMTWrites)*AMTWritePJ
	b.DTLB = float64(e.DTLBAccesses) * DTLBEnergyPJ
	b.Cycles = e.Cycles
	return b
}

// OOO returns the out-of-order unit total (RS + RAT + ROB).
func (b Breakdown) OOO() float64 { return b.RS + b.RAT + b.ROB }

// MEU returns the memory-execution-unit total (L1-D + DTLB).
func (b Breakdown) MEU() float64 { return b.L1D + b.DTLB }

// Total returns total core dynamic energy.
func (b Breakdown) Total() float64 { return b.FE + b.OOO() + b.EU + b.MEU() }

// Power returns average dynamic power in arbitrary units (energy/cycle);
// comparisons between configurations at equal work are meaningful.
func (b Breakdown) Power() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return b.Total() / float64(b.Cycles)
}

// Interned counter IDs for the power model's input events. Only the events
// the power model introduces itself (Constable structure accesses) are
// emitted; the generic core events already reach the run snapshot through
// pipeline.Stats.EmitCounters under their own names.
var (
	cSLDReads  = stats.Intern("power.sld_reads")
	cSLDWrites = stats.Intern("power.sld_writes")
	cRMTOps    = stats.Intern("power.rmt_ops")
	cAMTReads  = stats.Intern("power.amt_reads")
	cAMTWrites = stats.Intern("power.amt_writes")
)

// EmitCounters adds the power model's structure-access events into cs
// through the interned counter registry.
func (e Events) EmitCounters(cs *stats.CounterSet) {
	cs.Add(cSLDReads, e.SLDReads)
	cs.Add(cSLDWrites, e.SLDWrites)
	cs.Add(cRMTOps, e.RMTOps)
	cs.Add(cAMTReads, e.AMTReads)
	cs.Add(cAMTWrites, e.AMTWrites)
}

// breakdownJSON is the serialized form of a Breakdown: per-unit energies
// plus the derived totals the figures report.
type breakdownJSON struct {
	FE       float64 `json:"fe_pj"`
	RS       float64 `json:"rs_pj"`
	RAT      float64 `json:"rat_pj"`
	ROB      float64 `json:"rob_pj"`
	EU       float64 `json:"eu_pj"`
	L1D      float64 `json:"l1d_pj"`
	DTLB     float64 `json:"dtlb_pj"`
	OOO      float64 `json:"ooo_pj"`
	MEU      float64 `json:"meu_pj"`
	Total    float64 `json:"total_pj"`
	PerCycle float64 `json:"per_cycle_pj"`
	Cycles   uint64  `json:"cycles"`
}

// MarshalJSON serializes the breakdown with its derived totals, so API
// clients get the same aggregates the experiment drivers print.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	return json.Marshal(breakdownJSON{
		FE: b.FE, RS: b.RS, RAT: b.RAT, ROB: b.ROB, EU: b.EU,
		L1D: b.L1D, DTLB: b.DTLB,
		OOO: b.OOO(), MEU: b.MEU(), Total: b.Total(), PerCycle: b.Power(),
		Cycles: b.Cycles,
	})
}

// UnmarshalJSON restores the stored per-unit energies (derived totals are
// recomputed on demand).
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var v breakdownJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*b = Breakdown{FE: v.FE, RS: v.RS, RAT: v.RAT, ROB: v.ROB, EU: v.EU,
		L1D: v.L1D, DTLB: v.DTLB, Cycles: v.Cycles}
	return nil
}

// String renders the unit shares the way Fig. 19 reports them.
func (b Breakdown) String() string {
	var s strings.Builder
	total := b.Total()
	if total == 0 {
		return "power: no events\n"
	}
	pct := func(x float64) float64 { return 100 * x / total }
	fmt.Fprintf(&s, "FE %.1f%%  OOO %.1f%% (RS %.1f%% RAT %.1f%% ROB %.1f%%)  EU %.1f%%  MEU %.1f%% (L1D %.1f%% DTLB %.1f%%)\n",
		pct(b.FE), pct(b.OOO()), pct(b.RS), pct(b.RAT), pct(b.ROB),
		pct(b.EU), pct(b.MEU()), pct(b.L1D), pct(b.DTLB))
	return s.String()
}

package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleEvents() Events {
	return Events{
		FetchedUops:  1000,
		RenamedUops:  900,
		RSAllocs:     700,
		RSIssues:     700,
		ROBAllocs:    900,
		ALUOps:       500,
		AGUOps:       300,
		L1DAccesses:  400,
		DTLBAccesses: 400,
		L2Accesses:   50,
		LLCAccesses:  10,
		SLDReads:     300,
		SLDWrites:    20,
		RMTOps:       900,
		AMTReads:     100,
		AMTWrites:    15,
		Cycles:       500,
	}
}

func TestBreakdownAddsUp(t *testing.T) {
	b := Compute(sampleEvents())
	sum := b.FE + b.RS + b.RAT + b.ROB + b.EU + b.L1D + b.DTLB
	if math.Abs(sum-b.Total()) > 1e-9 {
		t.Errorf("units sum %.2f != total %.2f", sum, b.Total())
	}
	if b.OOO() != b.RS+b.RAT+b.ROB {
		t.Error("OOO != RS+RAT+ROB")
	}
	if b.MEU() != b.L1D+b.DTLB {
		t.Error("MEU != L1D+DTLB")
	}
}

func TestEliminationReducesPower(t *testing.T) {
	base := sampleEvents()
	// Constable run: 20% fewer L1-D accesses and RS allocations, small SLD
	// overhead — total must drop (the Fig. 19 result).
	cons := base
	cons.L1DAccesses = 320
	cons.RSAllocs = 560
	cons.RSIssues = 560
	cons.AGUOps = 240
	pb, pc := Compute(base), Compute(cons)
	if pc.Total() >= pb.Total() {
		t.Errorf("constable-style run uses more energy: %.1f vs %.1f", pc.Total(), pb.Total())
	}
	if pc.L1D >= pb.L1D || pc.RS >= pb.RS {
		t.Error("L1D and RS components must drop")
	}
	if pc.RAT <= pb.RAT-1e-9 {
		// Same SLD events here, so RAT equal; with SLD events it grows.
		t.Error("RAT must not drop")
	}
}

func TestSLDEventsChargeRAT(t *testing.T) {
	e := sampleEvents()
	noSLD := e
	noSLD.SLDReads, noSLD.SLDWrites, noSLD.RMTOps = 0, 0, 0
	withB, noB := Compute(e), Compute(noSLD)
	if withB.RAT <= noB.RAT {
		t.Error("SLD/RMT events must increase RAT energy")
	}
	wantDelta := 300*SLDReadPJ + 20*SLDWritePJ + 900*RMTAccessPJ
	if math.Abs((withB.RAT-noB.RAT)-wantDelta) > 1e-9 {
		t.Errorf("RAT delta = %.2f, want %.2f", withB.RAT-noB.RAT, wantDelta)
	}
}

func TestAMTEventsChargeL1D(t *testing.T) {
	e := sampleEvents()
	noAMT := e
	noAMT.AMTReads, noAMT.AMTWrites = 0, 0
	delta := Compute(e).L1D - Compute(noAMT).L1D
	want := 100*AMTReadPJ + 15*AMTWritePJ
	if math.Abs(delta-want) > 1e-9 {
		t.Errorf("AMT delta = %.2f, want %.2f", delta, want)
	}
}

func TestPowerZeroCycles(t *testing.T) {
	var b Breakdown
	if b.Power() != 0 {
		t.Error("zero-cycle power must be 0")
	}
	if !strings.Contains(b.String(), "no events") {
		t.Error("empty breakdown should say so")
	}
}

func TestStringSharesSumTo100(t *testing.T) {
	s := Compute(sampleEvents()).String()
	for _, frag := range []string{"FE", "OOO", "RS", "RAT", "ROB", "EU", "MEU", "L1D", "DTLB"} {
		if !strings.Contains(s, frag) {
			t.Errorf("breakdown string missing %s: %s", frag, s)
		}
	}
}

func TestMonotonicity(t *testing.T) {
	// Property: adding events never decreases total energy.
	f := func(extraL1D, extraRS uint16) bool {
		a := sampleEvents()
		b := a
		b.L1DAccesses += uint64(extraL1D)
		b.RSAllocs += uint64(extraRS)
		return Compute(b).Total() >= Compute(a).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable3ConstantsMatchPaper(t *testing.T) {
	if SLDReadPJ != 10.76 || SLDWritePJ != 16.70 {
		t.Error("SLD energies must match Table 3")
	}
	if SLDLeakageMW != 1.02 || RMTLeakageMW != 0.31 || AMTLeakageMW != 0.74 {
		t.Error("leakage must match Table 3")
	}
	if SLDAreaMM2 != 0.211 || RMTAreaMM2 != 0.004 || AMTAreaMM2 != 0.017 {
		t.Error("area must match Table 3")
	}
}

// Package constable implements the paper's contribution: the Stable Load
// Detector (SLD), Register Monitor Table (RMT), Address Monitor Table (AMT)
// and the xPRF, with the confidence-based likely-stable learning mechanism
// (§6.2), load-execution elimination (§6.3), structure updates on register
// writes, store-address generation and snoops (§6.4), and the design options
// studied in the evaluation: cacheline- vs full-address AMT indexing (§6.6),
// AMT invalidation on L1-D eviction (Constable-AMT-I, Fig. 22), and
// addressing-mode-restricted elimination (Fig. 13).
package constable

import (
	"constable/internal/isa"
)

// Config parameterizes Constable. DefaultConfig matches Table 1 and §6.
type Config struct {
	// SLD geometry: 512 entries as 32 sets × 16 ways.
	SLDSets, SLDWays int
	// ConfThreshold is the stability confidence level needed to mark a load
	// likely-stable (30 in the paper); ConfMax is the 5-bit saturation (31).
	ConfThreshold uint8
	ConfMax       uint8
	// SLDReadPorts/SLDWritePorts model rename-stage port contention (§6.7.1).
	SLDReadPorts, SLDWritePorts int

	// RMT list depths: 16 load PCs for RSP/RBP, 8 for the other registers.
	RMTStackListLen, RMTListLen int

	// AMT geometry: 256 entries as 32 sets × 8 ways, 4 hashed PCs each.
	AMTSets, AMTWays, AMTPCSlots int
	// FullAddressAMT indexes the AMT by full (word) address instead of
	// cacheline address — the ablation of §6.6.
	FullAddressAMT bool
	// InvalidateOnL1Evict enables the Constable-AMT-I variant (Fig. 22):
	// every L1-D eviction invalidates the matching AMT entry instead of
	// relying on CV-bit pinning.
	InvalidateOnL1Evict bool

	// XPRFSize is the dedicated register file for in-flight eliminated
	// loads (32 entries; when full the load executes normally).
	XPRFSize int

	// ModeFilter, when non-zero, restricts elimination to loads with the
	// given addressing mode (Fig. 13's per-category study).
	ModeFilter isa.AddrMode
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		SLDSets: 32, SLDWays: 16,
		ConfThreshold: 30, ConfMax: 31,
		SLDReadPorts: 3, SLDWritePorts: 2,
		RMTStackListLen: 16, RMTListLen: 8,
		AMTSets: 32, AMTWays: 8, AMTPCSlots: 4,
		XPRFSize: 32,
	}
}

// StorageBits returns the storage cost of the configuration in bits,
// reproducing Table 1's accounting (24 b SLD tag, 32 b address, 64 b value,
// 5 b confidence, 1 b flag; 24 b RMT PCs; 32 b AMT tag + 4×24 b hashed PCs).
func (c Config) StorageBits() (sld, rmt, amt int) {
	sldEntryBits := 24 + 32 + 64 + 5 + 1
	sld = c.SLDSets * c.SLDWays * sldEntryBits
	rmt = (2*c.RMTStackListLen + 14*c.RMTListLen) * 24
	amt = c.AMTSets * c.AMTWays * (32 + c.AMTPCSlots*24)
	return sld, rmt, amt
}

type sldEntry struct {
	pc      uint64
	valid   bool
	addr    uint64
	value   uint64
	conf    uint8
	canElim bool
	lru     uint64
}

type amtEntry struct {
	key   uint64 // cacheline (or word) address
	valid bool
	pcs   []uint64 // hashed load PCs, capacity AMTPCSlots
	lru   uint64
}

// Stats counts Constable's events for the evaluation figures.
type Stats struct {
	SLDLookups       uint64
	Eliminated       uint64 // loads whose execution was eliminated
	XPRFFullMisses   uint64 // elimination skipped because the xPRF was full
	ModeFiltered     uint64 // elimination skipped by the ModeFilter ablation
	LikelyStableExec uint64 // likely-stable loads executed to arm elimination
	CanElimSets      uint64
	CanElimResetsReg uint64 // resets caused by register writes (RMT)
	CanElimResetsSt  uint64 // resets caused by store addresses (AMT)
	CanElimResetsSn  uint64 // resets caused by snoops
	CanElimResetsEv  uint64 // resets caused by L1-D evictions (AMT-I)
	RMTOverflows     uint64 // likely-stable loads that could not be tracked
	AMTOverflowEvict uint64 // AMT capacity evictions
	// SLDWriteOps counts rename-side can_eliminate updates — the writes the
	// paper sizes the SLD's two write ports for (§6.7.1, Fig. 9a).
	SLDWriteOps uint64
	// SLDConfUpdates counts writeback-side confidence compare-and-updates;
	// they use the writeback path, not the rename-stage write ports.
	SLDConfUpdates uint64
}

// Constable is the complete mechanism. Create with New.
type Constable struct {
	cfg Config

	sld [][]sldEntry
	// rmt holds load PCs per architectural register, per SMT context:
	// architectural registers are private to a hardware thread, so a write
	// by one context must never reset the other context's eliminations.
	rmt   [maxContexts][isa.NumRegsAPX][]uint64
	amt   [][]amtEntry
	xprf  int // in-use xPRF registers
	clock uint64

	Stats Stats
}

// New builds a Constable instance from cfg.
func New(cfg Config) *Constable {
	c := &Constable{cfg: cfg}
	c.sld = make([][]sldEntry, cfg.SLDSets)
	for i := range c.sld {
		c.sld[i] = make([]sldEntry, cfg.SLDWays)
	}
	c.amt = make([][]amtEntry, cfg.AMTSets)
	for i := range c.amt {
		c.amt[i] = make([]amtEntry, cfg.AMTWays)
		for j := range c.amt[i] {
			c.amt[i][j].pcs = make([]uint64, 0, cfg.AMTPCSlots)
		}
	}
	return c
}

// Config returns the instance's configuration.
func (c *Constable) Config() Config { return c.cfg }

func (c *Constable) sldSet(pc uint64) int {
	return int(pc>>2) & (c.cfg.SLDSets - 1)
}

func (c *Constable) sldFind(pc uint64) *sldEntry {
	set := c.sld[c.sldSet(pc)]
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			return &set[i]
		}
	}
	return nil
}

// sldAlloc finds or allocates the SLD entry for pc (LRU victim).
func (c *Constable) sldAlloc(pc uint64) *sldEntry {
	if e := c.sldFind(pc); e != nil {
		return e
	}
	set := c.sld[c.sldSet(pc)]
	victim := 0
	best := ^uint64(0)
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < best {
			victim, best = i, set[i].lru
		}
	}
	set[victim] = sldEntry{pc: pc, valid: true}
	return &set[victim]
}

// amtKey maps a memory address to the AMT indexing granularity.
func (c *Constable) amtKey(addr uint64) uint64 {
	if c.cfg.FullAddressAMT {
		return addr &^ (isa.WordBytes - 1)
	}
	return addr / isa.CachelineBytes
}

func (c *Constable) amtSet(key uint64) int { return int(key) & (c.cfg.AMTSets - 1) }

func (c *Constable) amtFind(key uint64) *amtEntry {
	set := c.amt[c.amtSet(key)]
	for i := range set {
		if set[i].valid && set[i].key == key {
			return &set[i]
		}
	}
	return nil
}

// hashPC compresses a (context-tagged) load PC to the AMT's 24-bit stored
// form; collisions cause extra (safe) resets, never missed ones.
func hashPC(pc uint64) uint64 { return ((pc >> 2) ^ (pc >> 40)) & 0xFF_FFFF }

// maxContexts is the number of SMT hardware contexts the structures
// distinguish (Table 2: 2-way SMT).
const maxContexts = 2

// tagPC folds the SMT context into a PC so that the PC-indexed SLD never
// aliases across hardware threads — two contexts may run different programs
// at identical virtual PCs (§8.1: Constable is shared or partitioned
// between contexts; sharing requires context tags, like every PC-indexed
// front-end structure in an SMT core).
func tagPC(pc uint64, ctx int) uint64 { return pc | uint64(ctx)<<62 }

// RenameDecision is the outcome of the rename-stage SLD lookup (§6.3).
type RenameDecision struct {
	// Eliminate is true when the load's execution is eliminated; Value and
	// Addr carry the SLD's last-fetched value and last-computed address
	// (the address goes into the LB entry for disambiguation).
	Eliminate bool
	Value     uint64
	Addr      uint64
	// LikelyStable marks an instance that executes normally but will arm
	// elimination at writeback (confidence reached the threshold).
	LikelyStable bool
}

// LookupRename performs the rename-stage lookup for a load at pc with the
// given addressing mode ( 1 / 2 / 3 in Fig. 8). ctx identifies the SMT
// hardware context (0 in noSMT).
func (c *Constable) LookupRename(pc uint64, mode isa.AddrMode, ctx int) RenameDecision {
	pc = tagPC(pc, ctx)
	c.clock++
	c.Stats.SLDLookups++
	e := c.sldFind(pc)
	if e == nil {
		return RenameDecision{}
	}
	e.lru = c.clock
	if e.canElim {
		if c.cfg.ModeFilter != isa.AddrNone && mode != c.cfg.ModeFilter {
			c.Stats.ModeFiltered++
			return RenameDecision{LikelyStable: e.conf >= c.cfg.ConfThreshold}
		}
		if c.xprf >= c.cfg.XPRFSize {
			c.Stats.XPRFFullMisses++
			return RenameDecision{LikelyStable: e.conf >= c.cfg.ConfThreshold}
		}
		c.xprf++
		c.Stats.Eliminated++
		return RenameDecision{Eliminate: true, Value: e.value, Addr: e.addr}
	}
	if e.conf >= c.cfg.ConfThreshold {
		c.Stats.LikelyStableExec++
		return RenameDecision{LikelyStable: true}
	}
	return RenameDecision{}
}

// ReleaseXPRF frees the xPRF register of a retired or squashed eliminated
// load.
func (c *Constable) ReleaseXPRF() {
	if c.xprf > 0 {
		c.xprf--
	}
}

// XPRFInUse returns the number of occupied xPRF registers.
func (c *Constable) XPRFInUse() int { return c.xprf }

// OnLoadWriteback trains the SLD when a non-eliminated load completes
// execution ( 4 / 5 / 6 in Fig. 8). srcRegs are the load's architectural
// source registers (empty for PC-relative loads); likelyStable is the mark
// attached at rename. It returns the number of SLD write operations
// performed, for the rename/writeback port model.
func (c *Constable) OnLoadWriteback(pc, addr, value uint64, srcRegs []isa.Reg, likelyStable bool, ctx int) int {
	pc = tagPC(pc, ctx)
	e := c.sldAlloc(pc)
	e.lru = c.clock
	c.Stats.SLDConfUpdates++
	writes := 0

	if e.addr == addr && e.value == value && e.conf > 0 {
		if e.conf < c.cfg.ConfMax {
			e.conf++
		}
	} else if e.addr == addr && e.value == value {
		e.conf = 1
	} else {
		e.conf /= 2
		e.addr, e.value = addr, value
	}

	if likelyStable && !e.canElim {
		// Arm elimination: track the source registers and the address.
		if c.insertRMT(pc, srcRegs, ctx) && c.insertAMT(pc, addr) {
			e.canElim = true
			c.Stats.CanElimSets++
			writes++
		} else {
			c.Stats.RMTOverflows++
			c.removeRMT(pc, srcRegs, ctx)
		}
	}
	c.Stats.SLDWriteOps += uint64(writes)
	return writes
}

// insertRMT adds pc to the RMT lists of each source register, reporting
// whether every insertion fit.
func (c *Constable) insertRMT(pc uint64, srcRegs []isa.Reg, ctx int) bool {
	for _, r := range srcRegs {
		limit := c.cfg.RMTListLen
		if isa.IsStackReg(r) {
			limit = c.cfg.RMTStackListLen
		}
		list := c.rmt[ctx][r]
		if contains(list, pc) {
			continue
		}
		if len(list) >= limit {
			return false
		}
		c.rmt[ctx][r] = append(list, pc)
	}
	return true
}

func (c *Constable) removeRMT(pc uint64, srcRegs []isa.Reg, ctx int) {
	for _, r := range srcRegs {
		c.rmt[ctx][r] = removeVal(c.rmt[ctx][r], pc)
	}
}

func contains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func removeVal(s []uint64, v uint64) []uint64 {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// insertAMT adds pc (hashed) to the AMT entry for addr, allocating and — on
// capacity pressure — safely evicting an older entry (resetting its loads'
// can_eliminate flags first).
func (c *Constable) insertAMT(pc, addr uint64) bool {
	key := c.amtKey(addr)
	e := c.amtFind(key)
	if e == nil {
		set := c.amt[c.amtSet(key)]
		victim := 0
		best := ^uint64(0)
		allValid := true
		for i := range set {
			if !set[i].valid {
				victim = i
				allValid = false
				break
			}
			if set[i].lru < best {
				victim, best = i, set[i].lru
			}
		}
		if allValid {
			c.Stats.AMTOverflowEvict++
			c.resetPCsOfAMTEntry(&set[victim], &c.Stats.CanElimResetsSt)
		}
		set[victim] = amtEntry{key: key, valid: true, pcs: set[victim].pcs[:0]}
		e = &set[victim]
	}
	e.lru = c.clock
	h := hashPC(pc)
	if contains(e.pcs, h) {
		return true
	}
	if len(e.pcs) >= c.cfg.AMTPCSlots {
		// Replace the oldest slot; the displaced load must stop eliminating.
		c.resetCanElimByHash(e.pcs[0], &c.Stats.CanElimResetsSt)
		copy(e.pcs, e.pcs[1:])
		e.pcs[len(e.pcs)-1] = h
		return true
	}
	e.pcs = append(e.pcs, h)
	return true
}

// resetPCsOfAMTEntry resets can_eliminate for every load PC hashed in e.
func (c *Constable) resetPCsOfAMTEntry(e *amtEntry, counter *uint64) {
	for _, h := range e.pcs {
		c.resetCanElimByHash(h, counter)
	}
	e.pcs = e.pcs[:0]
	e.valid = false
}

// resetCanElimByHash scans the SLD for entries whose hashed PC matches h and
// resets their can_eliminate flags. Hash collisions reset extra loads —
// safe, never unsafe.
func (c *Constable) resetCanElimByHash(h uint64, counter *uint64) {
	for si := range c.sld {
		for wi := range c.sld[si] {
			e := &c.sld[si][wi]
			if e.valid && e.canElim && hashPC(e.pc) == h {
				e.canElim = false
				*counter++
				c.Stats.SLDWriteOps++
			}
		}
	}
}

// OnRegWrite handles the rename of any instruction writing architectural
// register dst ( 7 / 8 in Fig. 8): every load PC tracked in the RMT entry
// has its can_eliminate flag reset. It returns the number of SLD updates
// performed (for the Fig. 9a port study).
func (c *Constable) OnRegWrite(dst isa.Reg, ctx int) int {
	list := c.rmt[ctx][dst]
	if len(list) == 0 {
		return 0
	}
	writes := 0
	for _, pc := range list {
		if e := c.sldFind(pc); e != nil && e.canElim {
			e.canElim = false
			c.Stats.CanElimResetsReg++
			c.Stats.SLDWriteOps++
			writes++
		}
	}
	c.rmt[ctx][dst] = list[:0]
	return writes
}

// OnStoreAddr handles store-address generation ( 9 / 8 in Fig. 8): the AMT
// entry for the address is looked up, every tracked load's can_eliminate is
// reset, and the entry is evicted.
func (c *Constable) OnStoreAddr(addr uint64) {
	key := c.amtKey(addr)
	if e := c.amtFind(key); e != nil {
		c.resetPCsOfAMTEntry(e, &c.Stats.CanElimResetsSt)
	}
}

// OnSnoop handles a snoop request arriving at the core ( 10 in Fig. 8).
// Snoops carry cacheline addresses; with a full-address AMT every word of
// the line must be probed.
func (c *Constable) OnSnoop(lineAddr uint64) {
	if !c.cfg.FullAddressAMT {
		if e := c.amtFind(lineAddr); e != nil {
			c.resetPCsOfAMTEntry(e, &c.Stats.CanElimResetsSn)
		}
		return
	}
	base := lineAddr * isa.CachelineBytes
	for off := uint64(0); off < isa.CachelineBytes; off += isa.WordBytes {
		if e := c.amtFind(base + off); e != nil {
			c.resetPCsOfAMTEntry(e, &c.Stats.CanElimResetsSn)
		}
	}
}

// OnL1Evict handles an L1-D eviction in the Constable-AMT-I variant
// (Fig. 22); in the default CV-bit-pinning design it is a no-op.
func (c *Constable) OnL1Evict(lineAddr uint64) {
	if !c.cfg.InvalidateOnL1Evict {
		return
	}
	if c.cfg.FullAddressAMT {
		base := lineAddr * isa.CachelineBytes
		for off := uint64(0); off < isa.CachelineBytes; off += isa.WordBytes {
			if e := c.amtFind(base + off); e != nil {
				c.resetPCsOfAMTEntry(e, &c.Stats.CanElimResetsEv)
			}
		}
		return
	}
	if e := c.amtFind(lineAddr); e != nil {
		c.resetPCsOfAMTEntry(e, &c.Stats.CanElimResetsEv)
	}
}

// OnViolation records a memory-ordering violation by an eliminated load
// (§6.5, Fig. 10 step G): the can_eliminate flag is reset and the stability
// confidence is halved, so a load whose address keeps colliding with
// in-flight stores (e.g. under silent stores) quickly stops being eliminated
// instead of flushing the pipeline every iteration.
func (c *Constable) OnViolation(pc uint64, ctx int) {
	e := c.sldFind(tagPC(pc, ctx))
	if e == nil {
		return
	}
	if e.canElim {
		e.canElim = false
		c.Stats.CanElimResetsSt++
	}
	e.conf /= 2
	c.Stats.SLDWriteOps++
}

// OnContextSwitch handles a change of physical address mapping (§6.7.3):
// every can_eliminate flag is reset and the RMT and AMT are invalidated.
func (c *Constable) OnContextSwitch() {
	for si := range c.sld {
		for wi := range c.sld[si] {
			c.sld[si][wi].canElim = false
		}
	}
	for ctx := range c.rmt {
		for r := range c.rmt[ctx] {
			c.rmt[ctx][r] = nil
		}
	}
	for si := range c.amt {
		for wi := range c.amt[si] {
			c.amt[si][wi].valid = false
			c.amt[si][wi].pcs = c.amt[si][wi].pcs[:0]
		}
	}
}

// CanEliminate reports whether the load at pc (context 0) currently has its
// can_eliminate flag set (test/inspection hook).
func (c *Constable) CanEliminate(pc uint64) bool {
	e := c.sldFind(tagPC(pc, 0))
	return e != nil && e.canElim
}

// Confidence returns the stability confidence level of pc's SLD entry
// (context 0).
func (c *Constable) Confidence(pc uint64) uint8 {
	if e := c.sldFind(tagPC(pc, 0)); e != nil {
		return e.conf
	}
	return 0
}

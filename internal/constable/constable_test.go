package constable

import (
	"testing"
	"testing/quick"

	"constable/internal/isa"
)

// trainTo drives the load at pc to the given confidence by repeated
// writebacks of the same address/value.
func trainTo(c *Constable, pc, addr, value uint64, srcs []isa.Reg, conf int) {
	for i := 0; i < conf+1; i++ {
		likely := c.Confidence(pc) >= c.cfg.ConfThreshold
		c.OnLoadWriteback(pc, addr, value, srcs, likely, 0)
	}
}

func TestConfidenceLearning(t *testing.T) {
	c := New(DefaultConfig())
	pc, addr, val := uint64(0x400100), uint64(0x10000000), uint64(42)

	// Before the threshold, rename lookups neither eliminate nor mark.
	// (The first writeback installs the entry, the second starts the
	// counter, so confidence after N writebacks is N-2.)
	for i := 0; i < 30; i++ {
		c.OnLoadWriteback(pc, addr, val, nil, false, 0)
		dec := c.LookupRename(pc, isa.AddrPCRel, 0)
		if dec.Eliminate {
			t.Fatalf("eliminated after only %d writebacks", i+1)
		}
	}
	if c.Confidence(pc) >= 30 {
		t.Fatalf("confidence %d reached threshold too early", c.Confidence(pc))
	}
	// Crossing the threshold marks likely-stable.
	c.OnLoadWriteback(pc, addr, val, nil, false, 0)
	dec := c.LookupRename(pc, isa.AddrPCRel, 0)
	if dec.Eliminate || !dec.LikelyStable {
		t.Fatalf("expected likely-stable mark at threshold, got %+v", dec)
	}
	// A likely-stable execution arms can_eliminate; the next instance is
	// eliminated with the last address and value.
	c.OnLoadWriteback(pc, addr, val, nil, true, 0)
	dec = c.LookupRename(pc, isa.AddrPCRel, 0)
	if !dec.Eliminate || dec.Value != val || dec.Addr != addr {
		t.Fatalf("expected elimination, got %+v", dec)
	}
}

func TestConfidenceHalvedOnMismatch(t *testing.T) {
	c := New(DefaultConfig())
	pc := uint64(0x400104)
	trainTo(c, pc, 0x1000, 7, nil, 31)
	before := c.Confidence(pc)
	c.OnLoadWriteback(pc, 0x1000, 8, nil, false, 0) // value changed
	if got := c.Confidence(pc); got != before/2 {
		t.Errorf("confidence after mismatch = %d, want %d", got, before/2)
	}
}

func TestRegisterWriteResetsElimination(t *testing.T) {
	c := New(DefaultConfig())
	pc := uint64(0x400200)
	srcs := []isa.Reg{isa.R6}
	trainTo(c, pc, 0x2000, 9, srcs, 31)
	if !c.CanEliminate(pc) {
		t.Fatal("load not armed")
	}
	// Writing an unrelated register changes nothing.
	if n := c.OnRegWrite(isa.R7, 0); n != 0 {
		t.Errorf("unrelated register write caused %d SLD updates", n)
	}
	if !c.CanEliminate(pc) {
		t.Fatal("unrelated register write cleared can_eliminate")
	}
	// Writing the source register resets it (Condition 1).
	if n := c.OnRegWrite(isa.R6, 0); n != 1 {
		t.Errorf("source register write caused %d SLD updates, want 1", n)
	}
	if c.CanEliminate(pc) {
		t.Fatal("can_eliminate survived a source register write")
	}
}

func TestStoreAddressResetsElimination(t *testing.T) {
	c := New(DefaultConfig())
	pc := uint64(0x400300)
	addr := uint64(0x3000)
	trainTo(c, pc, addr, 5, nil, 31)
	if !c.CanEliminate(pc) {
		t.Fatal("load not armed")
	}
	// A store to a different cacheline does not reset.
	c.OnStoreAddr(addr + 4096)
	if !c.CanEliminate(pc) {
		t.Fatal("unrelated store reset can_eliminate")
	}
	// A store to another word of the same cacheline resets (cacheline-
	// granular AMT, §6.6).
	c.OnStoreAddr(addr + 8)
	if c.CanEliminate(pc) {
		t.Fatal("same-line store did not reset can_eliminate")
	}
	if c.Stats.CanElimResetsSt == 0 {
		t.Error("store reset not counted")
	}
}

func TestFullAddressAMTIgnoresFalseSharing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FullAddressAMT = true
	c := New(cfg)
	pc := uint64(0x400304)
	addr := uint64(0x3000)
	trainTo(c, pc, addr, 5, nil, 31)
	c.OnStoreAddr(addr + 8) // same line, different word
	if !c.CanEliminate(pc) {
		t.Fatal("full-address AMT must tolerate same-line different-word stores")
	}
	c.OnStoreAddr(addr)
	if c.CanEliminate(pc) {
		t.Fatal("full-address AMT must reset on exact-word store")
	}
}

func TestSnoopResetsElimination(t *testing.T) {
	c := New(DefaultConfig())
	pc := uint64(0x400400)
	addr := uint64(0x4040)
	trainTo(c, pc, addr, 5, nil, 31)
	c.OnSnoop(addr / isa.CachelineBytes)
	if c.CanEliminate(pc) {
		t.Fatal("snoop did not reset can_eliminate")
	}
	if c.Stats.CanElimResetsSn != 1 {
		t.Errorf("snoop resets = %d", c.Stats.CanElimResetsSn)
	}
}

func TestL1EvictOnlyInAMTIVariant(t *testing.T) {
	pc := uint64(0x400500)
	addr := uint64(0x5000)

	vanilla := New(DefaultConfig())
	trainTo(vanilla, pc, addr, 5, nil, 31)
	vanilla.OnL1Evict(addr / isa.CachelineBytes)
	if !vanilla.CanEliminate(pc) {
		t.Fatal("vanilla Constable (CV-bit pinning) must ignore L1 evictions")
	}

	cfg := DefaultConfig()
	cfg.InvalidateOnL1Evict = true
	amti := New(cfg)
	trainTo(amti, pc, addr, 5, nil, 31)
	amti.OnL1Evict(addr / isa.CachelineBytes)
	if amti.CanEliminate(pc) {
		t.Fatal("Constable-AMT-I must reset on L1 eviction")
	}
}

func TestXPRFBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.XPRFSize = 2
	c := New(cfg)
	pcs := []uint64{0x400600, 0x400604, 0x400608}
	for _, pc := range pcs {
		trainTo(c, pc, pc*2, 1, nil, 31)
	}
	if !c.LookupRename(pcs[0], isa.AddrRegRel, 0).Eliminate {
		t.Fatal("first elimination failed")
	}
	if !c.LookupRename(pcs[1], isa.AddrRegRel, 0).Eliminate {
		t.Fatal("second elimination failed")
	}
	dec := c.LookupRename(pcs[2], isa.AddrRegRel, 0)
	if dec.Eliminate {
		t.Fatal("third elimination must fail with a 2-entry xPRF")
	}
	if c.Stats.XPRFFullMisses != 1 {
		t.Errorf("xPRF misses = %d", c.Stats.XPRFFullMisses)
	}
	c.ReleaseXPRF()
	if !c.LookupRename(pcs[2], isa.AddrRegRel, 0).Eliminate {
		t.Fatal("elimination must resume after xPRF release")
	}
}

func TestModeFilter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModeFilter = isa.AddrStackRel
	c := New(cfg)
	pc := uint64(0x400700)
	trainTo(c, pc, 0x7000, 3, []isa.Reg{isa.RSP}, 31)
	if c.LookupRename(pc, isa.AddrRegRel, 0).Eliminate {
		t.Fatal("reg-relative load eliminated despite stack-only filter")
	}
	if !c.LookupRename(pc, isa.AddrStackRel, 0).Eliminate {
		t.Fatal("stack-relative load not eliminated by stack-only filter")
	}
	if c.Stats.ModeFiltered != 1 {
		t.Errorf("mode filtered = %d", c.Stats.ModeFiltered)
	}
}

func TestOnViolationHalvesConfidence(t *testing.T) {
	c := New(DefaultConfig())
	pc := uint64(0x400800)
	trainTo(c, pc, 0x8000, 1, nil, 31)
	if !c.CanEliminate(pc) {
		t.Fatal("not armed")
	}
	before := c.Confidence(pc)
	c.OnViolation(pc, 0)
	if c.CanEliminate(pc) {
		t.Fatal("violation must reset can_eliminate")
	}
	if got := c.Confidence(pc); got != before/2 {
		t.Errorf("confidence = %d, want %d", got, before/2)
	}
}

func TestContextSwitchClearsEverything(t *testing.T) {
	c := New(DefaultConfig())
	pc := uint64(0x400900)
	trainTo(c, pc, 0x9000, 1, []isa.Reg{isa.R3}, 31)
	if !c.CanEliminate(pc) {
		t.Fatal("not armed")
	}
	c.OnContextSwitch()
	if c.CanEliminate(pc) {
		t.Fatal("context switch must reset can_eliminate")
	}
	// Confidence survives (only the flag and monitor tables clear), so the
	// load re-arms after one likely-stable execution.
	c.OnLoadWriteback(pc, 0x9000, 1, []isa.Reg{isa.R3}, true, 0)
	if !c.CanEliminate(pc) {
		t.Fatal("re-arming after context switch failed")
	}
}

func TestRMTOverflowPreventsArming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RMTListLen = 2
	c := New(cfg)
	srcs := []isa.Reg{isa.R3}
	pcs := []uint64{0x400A00, 0x400A04, 0x400A08}
	for _, pc := range pcs {
		trainTo(c, pc, pc, 1, srcs, 31)
	}
	armed := 0
	for _, pc := range pcs {
		if c.CanEliminate(pc) {
			armed++
		}
	}
	if armed != 2 {
		t.Errorf("%d loads armed with a 2-entry RMT list, want 2", armed)
	}
	if c.Stats.RMTOverflows == 0 {
		t.Error("RMT overflow not counted")
	}
}

func TestStorageBitsMatchTable1(t *testing.T) {
	sld, rmt, amt := DefaultConfig().StorageBits()
	kb := func(bits int) float64 { return float64(bits) / 8 / 1024 }
	if got := kb(sld); got < 7.8 || got > 8.0 {
		t.Errorf("SLD = %.2f KB, want ~7.9", got)
	}
	if got := kb(rmt); got < 0.3 || got > 0.5 {
		t.Errorf("RMT = %.2f KB, want ~0.4", got)
	}
	if got := kb(amt); got < 3.9 || got > 4.1 {
		t.Errorf("AMT = %.2f KB, want ~4.0", got)
	}
	if total := kb(sld + rmt + amt); total < 12.0 || total > 12.8 {
		t.Errorf("total = %.2f KB, want ~12.4", total)
	}
}

func TestSLDEvictionLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SLDSets = 1
	cfg.SLDWays = 2
	c := New(cfg)
	// Three PCs compete for two ways.
	c.OnLoadWriteback(0x100, 1, 1, nil, false, 0)
	c.OnLoadWriteback(0x104, 2, 2, nil, false, 0)
	c.LookupRename(0x100, isa.AddrRegRel, 0) // touch 0x100
	c.OnLoadWriteback(0x108, 3, 3, nil, false, 0)
	if c.Confidence(0x104) != 0 || c.sldFind(tagPC(0x104, 0)) != nil {
		t.Error("LRU entry 0x104 should be evicted")
	}
	if c.sldFind(tagPC(0x100, 0)) == nil {
		t.Error("recently-used entry 0x100 should survive")
	}
}

// TestSafetyInvariant is the core property test: under any interleaving of
// writebacks, register writes, stores and snoops, a load is only eliminated
// if no register write or same-line store/snoop occurred since the last
// writeback that armed it — i.e. the returned value always equals the last
// written value of that location in this model.
func TestSafetyInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(DefaultConfig())
		const pc = uint64(0x400B00)
		const addr = uint64(0xB000)
		src := []isa.Reg{isa.R3}
		mem := uint64(1) // current architectural value of addr
		for _, op := range ops {
			switch op % 5 {
			case 0: // the load executes and (maybe) arms
				likely := c.Confidence(pc) >= c.cfg.ConfThreshold
				c.OnLoadWriteback(pc, addr, mem, src, likely, 0)
			case 1: // a store changes memory
				mem++
				c.OnStoreAddr(addr)
			case 2: // a silent store: value unchanged, AMT still resets
				c.OnStoreAddr(addr)
			case 3:
				c.OnRegWrite(isa.R3, 0)
			case 4:
				dec := c.LookupRename(pc, isa.AddrRegRel, 0)
				if dec.Eliminate {
					if dec.Value != mem {
						return false // unsafe elimination
					}
					c.ReleaseXPRF()
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package constable

import "constable/internal/stats"

// Interned counter IDs for Constable's event statistics.
var (
	cSLDLookups       = stats.Intern("constable.sld_lookups")
	cEliminated       = stats.Intern("constable.eliminated")
	cXPRFFullMisses   = stats.Intern("constable.xprf_full_misses")
	cModeFiltered     = stats.Intern("constable.mode_filtered")
	cLikelyStableExec = stats.Intern("constable.likely_stable_exec")
	cCanElimSets      = stats.Intern("constable.can_elim_sets")
	cCanElimResetsReg = stats.Intern("constable.can_elim_resets_reg")
	cCanElimResetsSt  = stats.Intern("constable.can_elim_resets_store")
	cCanElimResetsSn  = stats.Intern("constable.can_elim_resets_snoop")
	cCanElimResetsEv  = stats.Intern("constable.can_elim_resets_evict")
	cRMTOverflows     = stats.Intern("constable.rmt_overflows")
	cAMTOverflowEvict = stats.Intern("constable.amt_overflow_evicts")
	cSLDWriteOps      = stats.Intern("constable.sld_write_ops")
	cSLDConfUpdates   = stats.Intern("constable.sld_conf_updates")
)

// EmitCounters adds every Constable statistic into cs through the interned
// counter registry.
func (s Stats) EmitCounters(cs *stats.CounterSet) {
	cs.Add(cSLDLookups, s.SLDLookups)
	cs.Add(cEliminated, s.Eliminated)
	cs.Add(cXPRFFullMisses, s.XPRFFullMisses)
	cs.Add(cModeFiltered, s.ModeFiltered)
	cs.Add(cLikelyStableExec, s.LikelyStableExec)
	cs.Add(cCanElimSets, s.CanElimSets)
	cs.Add(cCanElimResetsReg, s.CanElimResetsReg)
	cs.Add(cCanElimResetsSt, s.CanElimResetsSt)
	cs.Add(cCanElimResetsSn, s.CanElimResetsSn)
	cs.Add(cCanElimResetsEv, s.CanElimResetsEv)
	cs.Add(cRMTOverflows, s.RMTOverflows)
	cs.Add(cAMTOverflowEvict, s.AMTOverflowEvict)
	cs.Add(cSLDWriteOps, s.SLDWriteOps)
	cs.Add(cSLDConfUpdates, s.SLDConfUpdates)
}

package pipeline

import (
	"constable/internal/isa"
	"constable/internal/prog"
)

// fetch pulls up to FetchWidth instructions into the IDQs, round-robin over
// threads. Branches are predicted here; a detected misprediction switches
// the thread's front end onto a synthesized wrong path until the branch
// resolves in the execute stage.
func (c *Core) fetch() {
	budget := c.cfg.FetchWidth
	nThreads := len(c.threads)
	for slot := 0; slot < budget; slot++ {
		t := c.threads[slot%nThreads]
		if !c.fetchOne(t) && nThreads == 1 {
			// Every fetch-failure cause (stall, full IDQ, drained stream)
			// persists for the rest of the cycle, so with one thread the
			// remaining slots can't fetch either.
			break
		}
	}
}

// fetchOne fetches one uop into t's IDQ, reporting whether it did.
func (c *Core) fetchOne(t *threadState) bool {
	if c.cycle < t.fetchStall {
		return false
	}
	if t.idq.len() >= c.idqCap {
		return false
	}

	if t.wrongPath {
		u := c.makeWrongPathUop(t)
		t.idq.pushBack(u)
		c.Stats.FetchedUops++
		return true
	}

	d, ok := c.nextDyn(t)
	if !ok {
		return false
	}
	t.seqCounter++
	u := t.allocUop()
	u.seq = t.seqCounter
	u.thread = t.index
	u.dyn = d
	t.idq.pushBack(u)
	c.Stats.FetchedUops++

	if d.Op.IsBranch() {
		c.predictBranch(t, u)
	}
	return true
}

// nextDyn returns the next committed-path instruction for t, serving
// replayed instructions from the window before pulling new ones.
func (c *Core) nextDyn(t *threadState) (isa.DynInst, bool) {
	idx := t.replayPos - t.windowBase
	if int(idx) < t.window.len() {
		d := t.window.at(int(idx))
		t.replayPos++
		return d, true
	}
	if t.streamDone {
		return isa.DynInst{}, false
	}
	d, ok := t.stream.Next()
	if !ok {
		t.streamDone = true
		return isa.DynInst{}, false
	}
	t.window.pushBack(d)
	t.replayPos++
	return d, true
}

// predictBranch consults the direction predictor / BTB / RAS and, on a
// misprediction, flips the thread onto the wrong path. The predictor is
// trained immediately in fetch order.
func (c *Core) predictBranch(t *threadState, u *uop) {
	d := &u.dyn
	c.Stats.Branches++
	train := d.Seq >= t.trainedUpTo
	if train {
		t.trainedUpTo = d.Seq + 1
	} else {
		// Replayed branch after a flush: real front ends checkpoint and
		// restore the global history on recovery, so the branch sees the
		// same (by now trained) state as its first encounter. Predicting it
		// against the polluted post-flush history would cascade flushes
		// that no real machine suffers.
		return
	}

	mispredict := false
	switch d.Op {
	case isa.OpBranch:
		predTaken := c.bp.PredictDirection(d.PC)
		if predTaken != d.Taken {
			mispredict = true
		} else if d.Taken {
			if tgt, ok := c.bp.PredictTarget(d.PC, d.Op); !ok || tgt != d.Target {
				mispredict = true // taken with unknown/wrong target: redirect at resolve
			}
		}
		if train {
			c.bp.UpdateDirection(d.PC, d.Taken)
			if d.Taken {
				c.bp.UpdateTarget(d.PC, d.Op, d.Target)
			}
		}
	case isa.OpRet:
		if tgt, ok := c.bp.PredictTarget(d.PC, d.Op); !ok || tgt != d.Target {
			mispredict = true
		}
		if train {
			c.bp.UpdateTarget(d.PC, d.Op, d.Target)
		}
	case isa.OpJump, isa.OpCall:
		// Direct targets are decoded from the instruction; with branch
		// folding they never mispredict and never execute.
		if train {
			c.bp.UpdateTarget(d.PC, d.Op, d.Target)
		}
	}

	if mispredict {
		c.Stats.BranchMispredicts++
		t.wrongPath = true
		t.pendingRedirect = u
	}
}

// makeWrongPathUop synthesizes a deterministic wrong-path instruction:
// a plausible mix of ALU ops, loads and stores whose registers and addresses
// derive from a per-thread counter. Wrong-path uops consume pipeline
// resources and (optionally) update Constable's structures, but never retire.
func (c *Core) makeWrongPathUop(t *threadState) *uop {
	t.wpCounter++
	t.seqCounter++
	h := mix64(t.wpCounter ^ 0xABCD<<32)
	d := isa.DynInst{
		PC:        prog.CodeBase + 0x8000 + (h%1024)*isa.InstBytes,
		WrongPath: true,
	}
	switch h % 10 {
	case 0, 1, 2: // load
		d.Op = isa.OpLoad
		d.Dst = isa.Reg(h >> 8 % 16)
		d.Src1 = isa.Reg(h >> 16 % 16)
		d.Mode = isa.AddrRegRel
		d.Addr = prog.HeapBase + (h>>12%0x10000)*8
	case 3: // store
		d.Op = isa.OpStore
		d.Dst = isa.RegNone
		d.Src1 = isa.Reg(h >> 16 % 16)
		d.Src2 = isa.Reg(h >> 24 % 16)
		d.Mode = isa.AddrRegRel
		d.Addr = prog.HeapBase + (h>>12%0x10000)*8
	default: // ALU
		d.Op = isa.OpALU
		d.Fn = isa.ALUAdd
		d.Dst = isa.Reg(h >> 8 % 16)
		d.Src1 = isa.Reg(h >> 16 % 16)
		d.Src2 = isa.Reg(h >> 24 % 16)
	}
	u := t.allocUop()
	u.seq = t.seqCounter
	u.thread = t.index
	u.dyn = d
	u.wrongPath = true
	return u
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

package pipeline

import (
	"math/rand"
	"testing"

	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/fsim"
	"constable/internal/workload"
)

// TestConfigFuzz is the failure-injection property test: across randomly
// shrunken and skewed core geometries (down to single-entry queues and one
// port of each kind), every run must (1) retire all instructions without
// deadlock and (2) pass every golden check — Constable's safety must not
// depend on the machine being comfortable.
func TestConfigFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("config fuzzing is slow")
	}
	rng := rand.New(rand.NewSource(20260613))
	suite := workload.SmallSuite()
	const n = 6000

	for trial := 0; trial < 30; trial++ {
		cfg := DefaultConfig()
		cfg.FetchWidth = 1 + rng.Intn(8)
		cfg.RenameWidth = 1 + rng.Intn(6)
		cfg.IssueWidth = 1 + rng.Intn(6)
		cfg.RetireWidth = 1 + rng.Intn(6)
		cfg.IDQSize = 4 + rng.Intn(140)
		cfg.ROBSize = 16 + rng.Intn(500)
		cfg.LBSize = 8 + rng.Intn(230)
		cfg.SBSize = 8 + rng.Intn(100)
		cfg.RSSize = 8 + rng.Intn(240)
		cfg.IntPRF = 48 + rng.Intn(240)
		cfg.NumALUPorts = 1 + rng.Intn(5)
		cfg.NumLoadPorts = 1 + rng.Intn(3)
		cfg.NumStaPorts = 1 + rng.Intn(2)
		cfg.NumStdPorts = 1 + rng.Intn(2)
		cfg.RedirectPenalty = 1 + rng.Intn(30)
		cfg.MoveElimination = rng.Intn(2) == 0
		cfg.ZeroElimination = rng.Intn(2) == 0
		cfg.ConstantFolding = rng.Intn(2) == 0
		cfg.BranchFolding = rng.Intn(2) == 0
		cfg.MemoryRenaming = rng.Intn(2) == 0
		cfg.MemDepPrediction = rng.Intn(2) == 0
		cfg.WrongPathUpdates = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			cfg.ContextSwitchInterval = uint64(500 + rng.Intn(3000))
		}

		ccfg := constable.DefaultConfig()
		ccfg.XPRFSize = 1 + rng.Intn(32)
		ccfg.ConfThreshold = uint8(2 + rng.Intn(29))
		ccfg.FullAddressAMT = rng.Intn(2) == 0
		ccfg.InvalidateOnL1Evict = rng.Intn(2) == 0

		spec := suite[rng.Intn(len(suite))]
		cpu, err := spec.NewCPU(false)
		if err != nil {
			t.Fatal(err)
		}
		core := NewCore(cfg, Attachments{Constable: constable.New(ccfg)},
			cache.NewHierarchy(cache.DefaultHierarchyConfig()),
			fsim.NewStream(cpu, n))
		if err := core.Run(n * 400); err != nil {
			t.Fatalf("trial %d (%s, cfg %+v): %v", trial, spec.Name, cfg, err)
		}
		if core.Stats.Retired != n {
			t.Fatalf("trial %d (%s): deadlock — retired %d of %d in %d cycles\ncfg: %+v",
				trial, spec.Name, core.Stats.Retired, n, core.Stats.Cycles, cfg)
		}
	}
}

// TestSMTConfigFuzz repeats the exercise with two hardware threads sharing
// the shrunken machine.
func TestSMTConfigFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("config fuzzing is slow")
	}
	rng := rand.New(rand.NewSource(777))
	suite := workload.SmallSuite()
	const n = 4000

	for trial := 0; trial < 10; trial++ {
		cfg := DefaultConfig()
		cfg.Threads = 2
		cfg.ROBSize = 32 + rng.Intn(480)
		cfg.LBSize = 16 + rng.Intn(220)
		cfg.SBSize = 16 + rng.Intn(96)
		cfg.RSSize = 16 + rng.Intn(230)
		cfg.NumLoadPorts = 1 + rng.Intn(3)
		cfg.IDQSize = 8 + rng.Intn(136)

		specA := suite[rng.Intn(len(suite))]
		specB := suite[rng.Intn(len(suite))]
		cpuA, _ := specA.NewCPU(false)
		cpuB, _ := specB.NewCPU(false)
		core := NewCore(cfg, Attachments{Constable: constable.New(constable.DefaultConfig())},
			cache.NewHierarchy(cache.DefaultHierarchyConfig()),
			fsim.NewStream(cpuA, n), fsim.NewStream(cpuB, n))
		if err := core.Run(n * 800); err != nil {
			t.Fatalf("trial %d (%s+%s): %v", trial, specA.Name, specB.Name, err)
		}
		if core.Stats.RetiredPerThread[0] != n || core.Stats.RetiredPerThread[1] != n {
			t.Fatalf("trial %d (%s+%s): retired %v of %d each",
				trial, specA.Name, specB.Name, core.Stats.RetiredPerThread, n)
		}
	}
}

package pipeline

// ring is a power-of-two-capacity circular queue with masked indexing, the
// backing structure for every age-ordered pipeline queue (IDQ, ROB, LB, SB,
// the RS and writeback scan lists, the uop limbo list and the replay
// window). Pushes reuse the fixed buffer instead of re-slicing, so the
// steady-state cycle loop performs no queue allocations; a push beyond the
// current capacity doubles the buffer (amortized — only until the deepest
// occupancy of the run has been seen once).
//
// Logical index 0 is the front (oldest entry); physical slot i lives at
// buf[(head+i)&mask]. All removal paths zero the vacated slot so the ring
// never retains pointers to entries that left the pipeline.
type ring[T any] struct {
	buf  []T
	mask uint64
	head uint64
	n    int
}

// newRing returns a ring with capacity for at least `capacity` entries.
func newRing[T any](capacity int) ring[T] {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return ring[T]{buf: make([]T, c), mask: uint64(c - 1)}
}

func (r *ring[T]) len() int { return r.n }

// at returns the entry at logical index i (0 = oldest).
func (r *ring[T]) at(i int) T { return r.buf[(r.head+uint64(i))&r.mask] }

// set overwrites the entry at logical index i.
func (r *ring[T]) set(i int, v T) { r.buf[(r.head+uint64(i))&r.mask] = v }

func (r *ring[T]) front() T { return r.buf[r.head&r.mask] }

func (r *ring[T]) back() T { return r.buf[(r.head+uint64(r.n-1))&r.mask] }

func (r *ring[T]) pushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+uint64(r.n))&r.mask] = v
	r.n++
}

func (r *ring[T]) popFront() T {
	i := r.head & r.mask
	v := r.buf[i]
	var zero T
	r.buf[i] = zero
	r.head++
	r.n--
	return v
}

func (r *ring[T]) popBack() T {
	i := (r.head + uint64(r.n-1)) & r.mask
	v := r.buf[i]
	var zero T
	r.buf[i] = zero
	r.n--
	return v
}

// truncate keeps the first n entries and zeroes the dropped slots. The scan
// loops in issue/complete compact the ring in place with set() and then
// truncate to the number of kept entries.
func (r *ring[T]) truncate(n int) {
	var zero T
	for i := n; i < r.n; i++ {
		r.buf[(r.head+uint64(i))&r.mask] = zero
	}
	r.n = n
}

// removeAt deletes the entry at logical index i, preserving order.
func (r *ring[T]) removeAt(i int) {
	for j := i; j < r.n-1; j++ {
		r.set(j, r.at(j+1))
	}
	r.truncate(r.n - 1)
}

func (r *ring[T]) grow() {
	nbuf := make([]T, len(r.buf)*2)
	for i := 0; i < r.n; i++ {
		nbuf[i] = r.at(i)
	}
	r.buf = nbuf
	r.mask = uint64(len(nbuf) - 1)
	r.head = 0
}

package pipeline

import "constable/internal/isa"

// flushAfter squashes every uop of u's thread younger than u (exclusive).
func (c *Core) flushAfter(u *uop) {
	c.flushYounger(c.threads[u.thread], u.seq, false)
}

// flushFrom squashes younger uops and redirects fetch; inclusive squashes u
// itself as well (memory-ordering violations re-execute the load, value
// mispredictions re-execute only its dependents).
func (c *Core) flushFrom(u *uop, inclusive bool) {
	t := c.threads[u.thread]
	c.flushYounger(t, u.seq, inclusive)
	if inclusive {
		t.replayPos = u.dyn.Seq
	} else {
		t.replayPos = u.dyn.Seq + 1
	}
	// The flush also abandons any wrong path younger than u.
	if t.pendingRedirect != nil && t.pendingRedirect.seq >= u.seq {
		t.pendingRedirect = nil
		t.wrongPath = false
	}
	t.fetchStall = c.cycle + uint64(c.cfg.RedirectPenalty)
	c.Stats.Flushes++
}

// flushYounger removes all uops of t with seq beyond the boundary from every
// pipeline structure and rebuilds the rename table from the survivors.
//
// Every queue is age-ordered by seq, so the squashed uops form a contiguous
// suffix and the flush is a truncation from the back — survivors keep their
// positions, which lets the issue/complete scans flush mid-walk without
// invalidating already-visited entries.
func (c *Core) flushYounger(t *threadState, seq uint64, inclusive bool) {
	bound := seq
	if !inclusive {
		bound = seq + 1
	}

	buf := c.flushBuf[:0]
	for t.rob.len() > 0 {
		u := t.rob.back()
		if u.seq < bound {
			break
		}
		u.squashed = true
		if u.inRS {
			u.inRS = false
			c.rsCount--
		}
		if u.usesXPRF && c.hasConstable {
			c.att.Constable.ReleaseXPRF()
			u.usesXPRF = false
		}
		if u.dyn.Dst != isa.RegNone && u.elim != elimMove && u.elim != elimConstable && u.elim != elimIdeal {
			c.prfInUse--
		}
		t.rob.popBack()
		buf = append(buf, u)
	}
	for t.lb.len() > 0 && t.lb.back().squashed {
		t.lb.popBack()
	}
	for t.sb.len() > 0 && t.sb.back().squashed {
		t.sb.popBack()
	}
	// Completion events, ready-queue/heap entries and waiter registrations
	// of squashed uops stay where they are; every consumer of those
	// structures validates squashed/seq lazily before acting.

	// The IDQ holds not-yet-renamed uops; all squashed ones leave too.
	for t.idq.len() > 0 {
		u := t.idq.back()
		if u.seq < bound {
			break
		}
		u.squashed = true
		t.idq.popBack()
		buf = append(buf, u)
	}

	c.rebuildLastWriter(t)

	// Park the squashed uops in limbo: surviving older uops may still hold
	// producers/mrnStore pointers whose squashed flag gets checked, so a
	// squashed uop's fields must stay intact until every uop fetched before
	// its release has left the pipeline.
	for _, u := range buf {
		t.releaseUop(u)
	}
	c.flushBuf = buf[:0]
}

// rebuildLastWriter restores the rename table to the youngest surviving
// writer of each architectural register (squashed writers fall back to older
// survivors or to the architectural state).
func (c *Core) rebuildLastWriter(t *threadState) {
	for r := range t.lastWriter {
		t.lastWriter[r] = nil
	}
	for i := 0; i < t.rob.len(); i++ {
		u := t.rob.at(i)
		if u.dyn.Dst != isa.RegNone {
			t.lastWriter[u.dyn.Dst] = u
		}
	}
	_ = isa.RegNone
}

package pipeline

import "constable/internal/isa"

// flushAfter squashes every uop of u's thread younger than u (exclusive).
func (c *Core) flushAfter(u *uop) {
	c.flushYounger(c.threads[u.thread], u.seq, false)
}

// flushFrom squashes younger uops and redirects fetch; inclusive squashes u
// itself as well (memory-ordering violations re-execute the load, value
// mispredictions re-execute only its dependents).
func (c *Core) flushFrom(u *uop, inclusive bool) {
	t := c.threads[u.thread]
	c.flushYounger(t, u.seq, inclusive)
	if inclusive {
		t.replayPos = u.dyn.Seq
	} else {
		t.replayPos = u.dyn.Seq + 1
	}
	// The flush also abandons any wrong path younger than u.
	if t.pendingRedirect != nil && t.pendingRedirect.seq >= u.seq {
		t.pendingRedirect = nil
		t.wrongPath = false
	}
	t.fetchStall = c.cycle + uint64(c.cfg.RedirectPenalty)
	c.Stats.Flushes++
}

// flushYounger removes all uops of t with seq beyond the boundary from every
// pipeline structure and rebuilds the rename table from the survivors.
func (c *Core) flushYounger(t *threadState, seq uint64, inclusive bool) {
	squash := func(u *uop) bool {
		if inclusive {
			return u.seq >= seq
		}
		return u.seq > seq
	}

	for _, u := range t.rob {
		if !squash(u) {
			continue
		}
		u.squashed = true
		if u.inRS {
			u.inRS = false
			c.rsCount--
		}
		if u.usesXPRF && c.att.Constable != nil {
			c.att.Constable.ReleaseXPRF()
			u.usesXPRF = false
		}
		if u.dyn.Dst != isa.RegNone && u.elim != elimMove && u.elim != elimConstable && u.elim != elimIdeal {
			c.prfInUse--
		}
	}
	t.rob = filterSquashed(t.rob)
	t.lb = filterSquashed(t.lb)
	t.sb = filterSquashed(t.sb)

	// The IDQ holds not-yet-renamed uops; all squashed ones leave too.
	kept := t.idq[:0]
	for _, u := range t.idq {
		if squash(u) {
			u.squashed = true
			continue
		}
		kept = append(kept, u)
	}
	t.idq = kept

	c.rebuildLastWriter(t)
}

func filterSquashed(s []*uop) []*uop {
	kept := s[:0]
	for _, u := range s {
		if !u.squashed {
			kept = append(kept, u)
		}
	}
	return kept
}

// rebuildLastWriter restores the rename table to the youngest surviving
// writer of each architectural register (squashed writers fall back to older
// survivors or to the architectural state).
func (c *Core) rebuildLastWriter(t *threadState) {
	for r := range t.lastWriter {
		t.lastWriter[r] = nil
	}
	for _, u := range t.rob {
		if u.dyn.Dst != isa.RegNone {
			t.lastWriter[u.dyn.Dst] = u
		}
	}
	_ = isa.RegNone
}

package pipeline

import "constable/internal/isa"

// elimKind classifies why a uop completed in the rename stage without
// executing.
type elimKind uint8

const (
	elimNone elimKind = iota
	elimMove
	elimZero
	elimConst
	elimBranchFold
	elimConstable // SLD-driven load elimination (converted register move)
	elimIdeal     // Ideal Constable oracle
	elimNop
)

const farFuture = ^uint64(0) >> 1

// uop is one in-flight micro-operation.
type uop struct {
	seq       uint64 // per-thread fetch order, including wrong-path uops
	thread    int
	dyn       isa.DynInst
	wrongPath bool

	// Rename-stage outcome.
	renamedAt    uint64
	elim         elimKind
	usesXPRF     bool
	elimValue    uint64
	elimAddr     uint64
	likelyStable bool

	valuePred bool
	predVal   uint64
	idealLVP  bool
	aguOnly   bool // Ideal Stable LVP + data-fetch elimination

	rfpPred   bool
	rfpAddr   uint64
	rfpLat    int
	elarEarly bool

	mrnPred  bool
	mrnStore *uop

	producers [2]*uop

	// Scheduling state.
	inRS       bool
	issued     bool
	issuedAt   uint64
	completed  bool
	completeAt uint64

	// availAt is the cycle from which dependents may consume the uop's
	// result, set the moment it becomes determined: at rename for
	// eliminated/folded uops (renamedAt) and value-predicted loads
	// (renamedAt+1), at issue for executing uops (completeAt — never revised
	// afterwards, and the completion event guarantees the transition fires),
	// and for memory-renamed loads when their predicted store issues (the
	// store's completeAt: the forwarded value arrives with the store's data,
	// not the load's own execution). farFuture means "not yet determined";
	// consumers finding that register themselves on the waiters list.
	availAt uint64

	// readyAt is the cycle from which every source operand is consumable,
	// computed once all producers' availAt are determined (farFuture until
	// then). availAt never changes once finite, so readyAt is final.
	readyAt uint64

	// unknownSrcs counts producers whose availAt is not yet determined; the
	// uop is registered on each such producer's waiters list and becomes
	// schedulable when the count reaches zero.
	unknownSrcs int8

	// waiters holds consumers blocked on this uop's availAt being unknown
	// (plus memory-renamed loads waiting on this store's issue). Each entry
	// snapshots the consumer's seq: pooled uops can be recycled while a
	// stale registration remains, and a seq mismatch exposes that on wake.
	waiters []waiterRef

	// Memory-dependence prediction: the load waits for all older stores'
	// addresses before issuing.
	depPredicted bool

	squashed bool

	// releasedAtSeq is the thread's seqCounter at the moment the uop was
	// parked in the limbo list (see threadState.releaseUop); it bounds when
	// the pool may recycle it.
	releasedAtSeq uint64
}

// waiterRef is one waiters-list registration (see uop.waiters).
type waiterRef struct {
	u   *uop
	seq uint64
}

// reset clears the uop for reuse from the pool, keeping the waiters slice's
// backing array so steady-state recycling does not allocate. Registrations
// left from a squashed previous life are dropped here; they were never
// walked, because a squashed uop never issues and so never wakes anyone.
func (u *uop) reset() {
	w := u.waiters[:0]
	*u = uop{}
	u.waiters = w
}

// isLoad/isStore/isBranch are on the dynamic record.
func (u *uop) isLoad() bool   { return u.dyn.Op == isa.OpLoad }
func (u *uop) isStore() bool  { return u.dyn.Op == isa.OpStore }
func (u *uop) isBranch() bool { return u.dyn.Op.IsBranch() }

// eliminatedLoad reports whether this load's execution was eliminated
// (Constable or the ideal oracle).
func (u *uop) eliminatedLoad() bool {
	return u.elim == elimConstable || (u.elim == elimIdeal && u.isLoad())
}

// renameComplete reports whether the uop finished in the rename stage and
// never enters the RS.
func (u *uop) renameComplete() bool { return u.elim != elimNone }

// effAddr returns the address the timing model uses for this memory uop:
// the SLD-provided address for eliminated loads (which goes into the LB for
// disambiguation), the architectural address otherwise.
func (u *uop) effAddr() uint64 {
	if u.eliminatedLoad() {
		return u.elimAddr
	}
	return u.dyn.Addr
}

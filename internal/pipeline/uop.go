package pipeline

import "constable/internal/isa"

// elimKind classifies why a uop completed in the rename stage without
// executing.
type elimKind uint8

const (
	elimNone elimKind = iota
	elimMove
	elimZero
	elimConst
	elimBranchFold
	elimConstable // SLD-driven load elimination (converted register move)
	elimIdeal     // Ideal Constable oracle
	elimNop
)

const farFuture = ^uint64(0) >> 1

// uop is one in-flight micro-operation.
type uop struct {
	seq       uint64 // per-thread fetch order, including wrong-path uops
	thread    int
	dyn       isa.DynInst
	wrongPath bool

	// Rename-stage outcome.
	renamedAt    uint64
	elim         elimKind
	usesXPRF     bool
	elimValue    uint64
	elimAddr     uint64
	likelyStable bool

	valuePred bool
	predVal   uint64
	idealLVP  bool
	aguOnly   bool // Ideal Stable LVP + data-fetch elimination

	rfpPred   bool
	rfpAddr   uint64
	rfpLat    int
	elarEarly bool

	mrnPred  bool
	mrnStore *uop

	producers [2]*uop

	// Scheduling state.
	inRS       bool
	issued     bool
	issuedAt   uint64
	completed  bool
	completeAt uint64

	// Memory-dependence prediction: the load waits for all older stores'
	// addresses before issuing.
	depPredicted bool

	squashed bool
}

// isLoad/isStore/isBranch are on the dynamic record.
func (u *uop) isLoad() bool   { return u.dyn.Op == isa.OpLoad }
func (u *uop) isStore() bool  { return u.dyn.Op == isa.OpStore }
func (u *uop) isBranch() bool { return u.dyn.Op.IsBranch() }

// eliminatedLoad reports whether this load's execution was eliminated
// (Constable or the ideal oracle).
func (u *uop) eliminatedLoad() bool {
	return u.elim == elimConstable || (u.elim == elimIdeal && u.isLoad())
}

// renameComplete reports whether the uop finished in the rename stage and
// never enters the RS.
func (u *uop) renameComplete() bool { return u.elim != elimNone }

// valueAvailAt returns the cycle from which dependents may consume the
// uop's result. Value speculation (EVES, ideal LVP), elimination and memory
// renaming make the value available before execution completes.
func (u *uop) valueAvailAt() uint64 {
	if u.renameComplete() {
		return u.renamedAt
	}
	if u.valuePred || u.idealLVP {
		return u.renamedAt + 1
	}
	if u.mrnPred && u.mrnStore != nil {
		if u.mrnStore.completed {
			return u.mrnStore.completeAt
		}
		return farFuture
	}
	if u.completed {
		return u.completeAt
	}
	return farFuture
}

// effAddr returns the address the timing model uses for this memory uop:
// the SLD-provided address for eliminated loads (which goes into the LB for
// disambiguation), the architectural address otherwise.
func (u *uop) effAddr() uint64 {
	if u.eliminatedLoad() {
		return u.elimAddr
	}
	return u.dyn.Addr
}

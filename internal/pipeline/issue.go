package pipeline

import (
	"constable/internal/isa"
)

// issue scans the reservation stations in age order and dispatches up to
// IssueWidth ready uops to free execution ports (5 ALU, 3 AGU+load, 2 STA,
// 2 STD per Table 2). Loads hold their AGU+load port for two cycles (address
// generation + L1-D read slot); AGU-only execution holds it for one.
func (c *Core) issue() {
	issued := 0
	var stableOnPort, nonStableOnPort, nonStableWaiting bool

	// Collect ready candidates across threads in age order (shared RS).
	for _, t := range c.threads {
		for _, u := range t.rob {
			if issued >= c.cfg.IssueWidth {
				break
			}
			if !u.inRS || u.issued || u.squashed {
				continue
			}
			if !c.sourcesReady(u) {
				continue
			}
			if u.isLoad() && !c.loadMayIssue(t, u) {
				continue
			}
			if !c.portAvailable(u) {
				if u.isLoad() {
					// A ready load that found no port: resource dependence.
					if c.att.StablePCs != nil && !c.att.StablePCs[u.dyn.PC] {
						nonStableWaiting = true
					}
				}
				continue
			}
			c.issueOne(t, u)
			issued++
			if u.isLoad() && c.att.StablePCs != nil {
				if c.att.StablePCs[u.dyn.PC] {
					stableOnPort = true
				} else {
					nonStableOnPort = true
				}
			}
		}
	}

	// Fig. 6 accounting: load-utilized cycles and their categorization.
	anyLoadPortBusy := false
	for _, busy := range c.loadPorts {
		if busy > c.cycle {
			anyLoadPortBusy = true
			break
		}
	}
	if anyLoadPortBusy {
		c.Stats.LoadUtilizedCycles++
		switch {
		case stableOnPort && nonStableWaiting:
			c.Stats.StableWhileNonStableWaits++
		case stableOnPort:
			c.Stats.StableNoWaiter++
		case nonStableOnPort || anyLoadPortBusy:
			c.Stats.NonStableOnly++
		}
	}
}

// sourcesReady reports whether every producer's value is consumable this
// cycle.
func (c *Core) sourcesReady(u *uop) bool {
	for _, p := range u.producers {
		if p == nil || p.squashed {
			continue
		}
		if p.valueAvailAt() > c.cycle {
			return false
		}
	}
	return true
}

// loadMayIssue enforces memory-dependence prediction: a conflict-predicted
// load waits until every older store in its thread has generated its
// address.
func (c *Core) loadMayIssue(t *threadState, u *uop) bool {
	if !u.depPredicted {
		return true
	}
	for _, s := range t.sb {
		if s.squashed || s.seq >= u.seq {
			continue
		}
		if !s.issued {
			return false
		}
	}
	return true
}

// portAvailable finds and reserves the port class the uop needs; it returns
// false (reserving nothing) when all ports of the class are busy.
func (c *Core) portAvailable(u *uop) bool {
	switch {
	case u.isLoad():
		occ := uint64(loadPortOccupancy)
		if u.aguOnly {
			occ = aguOnlyPortOccupancy
		}
		return reservePort(c.loadPorts, c.cycle, occ)
	case u.isStore():
		// A store needs an STA and an STD slot in its issue cycle.
		staIdx := findPort(c.staPorts, c.cycle)
		stdIdx := findPort(c.stdPorts, c.cycle)
		if staIdx < 0 || stdIdx < 0 {
			return false
		}
		c.staPorts[staIdx] = c.cycle + 1
		c.stdPorts[stdIdx] = c.cycle + 1
		return true
	default:
		occ := uint64(1)
		if u.dyn.Op == isa.OpDiv {
			occ = divPortOccupancy
		}
		return reservePort(c.aluPorts, c.cycle, occ)
	}
}

func findPort(ports []uint64, now uint64) int {
	for i, busy := range ports {
		if busy <= now {
			return i
		}
	}
	return -1
}

func reservePort(ports []uint64, now, occupancy uint64) bool {
	i := findPort(ports, now)
	if i < 0 {
		return false
	}
	ports[i] = now + occupancy
	return true
}

// issueOne dispatches the uop and computes its completion time.
func (c *Core) issueOne(t *threadState, u *uop) {
	u.issued = true
	u.issuedAt = c.cycle
	u.inRS = false
	c.rsCount--

	switch {
	case u.isLoad():
		c.executeLoad(t, u)
	case u.isStore():
		c.executeStore(t, u)
	default:
		c.Stats.ALUOps++
		u.completeAt = c.cycle + uint64(u.dyn.ExecLatency())
	}
}

// executeLoad models address generation (1 cycle) plus the memory access.
func (c *Core) executeLoad(t *threadState, u *uop) {
	c.Stats.AGUOps++
	addr := u.dyn.Addr

	if u.aguOnly {
		// Ideal Stable LVP + data-fetch elimination: stop after address
		// generation — no load port data slot, no L1-D access.
		u.completeAt = c.cycle + 1
		return
	}

	// Store-to-load forwarding: an older in-flight store to the same word
	// whose address is known supplies the data at L1-hit-like latency.
	if fwd := c.forwardingStore(t, u, addr); fwd != nil {
		c.Stats.LoadExecs++
		u.completeAt = c.cycle + 1 + uint64(c.hier.L1D.Config().Latency)
		// Forwarding still reads the store buffer, not the L1-D; don't
		// count an L1-D access. Account a DTLB access only.
		return
	}

	if u.rfpPred && u.rfpAddr == addr {
		// The register-file prefetch already started this access at rename;
		// the data arrives relative to rename time. The stride prefetcher
		// still sees the demand stream.
		c.hier.TrainStride(u.dyn.PC, addr)
		arrival := u.renamedAt + 1 + uint64(u.rfpLat)
		if arrival < c.cycle+2 {
			arrival = c.cycle + 2 // verification still takes the pipeline
		}
		u.completeAt = arrival
		c.Stats.LoadExecs++
		return
	}

	memLat := c.hier.Load(u.dyn.PC, addr)
	c.Stats.LoadExecs++
	u.completeAt = c.cycle + 1 + uint64(memLat)
}

// forwardingStore returns the youngest older in-flight store to the same
// word address whose address is already generated, or nil.
func (c *Core) forwardingStore(t *threadState, u *uop, addr uint64) *uop {
	for i := len(t.sb) - 1; i >= 0; i-- {
		s := t.sb[i]
		if s.squashed || s.seq >= u.seq {
			continue
		}
		if s.issued && s.dyn.Addr == addr {
			return s
		}
	}
	return nil
}

// executeStore models store-address generation: the STA both arms memory
// disambiguation (catching younger already-done loads to the same address)
// and updates Constable's AMT ( 9 in Fig. 8).
func (c *Core) executeStore(t *threadState, u *uop) {
	c.Stats.AGUOps++
	c.Stats.StoreExecs++
	u.completeAt = c.cycle + 1
	addr := u.dyn.Addr

	if c.att.Constable != nil && (!u.wrongPath || c.cfg.WrongPathUpdates) {
		c.att.Constable.OnStoreAddr(addr)
	}

	// Memory disambiguation: find the oldest younger load to the same word
	// that already obtained its value (executed or eliminated). Such a load
	// consumed stale data and must re-execute, flushing everything younger.
	// An eliminated load whose SLD value still equals the architectural
	// value was not actually made stale by this store (the silent-store
	// case): the forwarded data is correct, so no flush is needed.
	var victim *uop
	for _, l := range t.lb {
		if l.squashed || l.seq <= u.seq || l.wrongPath {
			continue
		}
		done := l.completed || l.eliminatedLoad()
		if !done {
			continue
		}
		if l.effAddr() != addr {
			continue
		}
		if l.eliminatedLoad() && l.elimValue == l.dyn.Value {
			continue
		}
		if victim == nil || l.seq < victim.seq {
			victim = l
		}
	}
	if victim != nil {
		c.Stats.OrderingViolations++
		if victim.eliminatedLoad() {
			c.Stats.EliminatedThatViolated++
			if c.att.Constable != nil {
				c.att.Constable.OnViolation(victim.dyn.PC, victim.thread)
			}
		}
		c.memDepMark(victim.dyn.PC)
		c.flushFrom(victim, true)
	}
}

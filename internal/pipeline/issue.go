package pipeline

import (
	"sort"

	"constable/internal/isa"
)

// issue dispatches up to IssueWidth ready uops in age order to free execution
// ports (5 ALU, 3 AGU+load, 2 STA, 2 STD per Table 2). Loads hold their
// AGU+load port for two cycles (address generation + L1-D read slot);
// AGU-only execution holds it for one.
//
// Scheduling is wakeup-driven instead of a scan: RS entries whose readiness
// cycle is known sit in readyHeap until it arrives, then move into readyQ
// (age-sorted) where they compete for the issue budget and ports; entries
// with unresolved producers cost nothing until a wake delivers them. The
// walk drops issued/squashed entries by compacting readyQ in place; a flush
// fired mid-walk (store-address disambiguation) only squashes uops younger
// than the one issuing, which the compaction drops as it reaches them.
func (c *Core) issue() {
	issued := 0
	var stableOnPort, nonStableOnPort, nonStableWaiting bool

	for _, t := range c.threads {
		// Mature ready entries into the age-ordered queue.
		for t.readyHeap.len() > 0 && t.readyHeap.peek().due <= c.cycle {
			ev := t.readyHeap.pop()
			u := ev.u
			if u.seq != ev.seq || u.squashed || !u.inRS || u.issued {
				continue
			}
			t.insertReady(u)
		}

		w := 0
		for i := 0; i < len(t.readyQ); i++ {
			u := t.readyQ[i]
			if !u.inRS || u.issued || u.squashed {
				continue
			}
			if issued >= c.cfg.IssueWidth {
				t.readyQ[w] = u
				w++
				continue
			}
			if u.isLoad() && !c.loadMayIssue(t, u) {
				t.readyQ[w] = u
				w++
				continue
			}
			if !c.portAvailable(u) {
				if u.isLoad() {
					// A ready load that found no port: resource dependence.
					if c.hasStablePCs && !c.att.StablePCs[u.dyn.PC] {
						nonStableWaiting = true
					}
				}
				t.readyQ[w] = u
				w++
				continue
			}
			c.issueOne(t, u)
			issued++
			if u.isLoad() && c.hasStablePCs {
				if c.att.StablePCs[u.dyn.PC] {
					stableOnPort = true
				} else {
					nonStableOnPort = true
				}
			}
		}
		clearTail(t.readyQ, w)
		t.readyQ = t.readyQ[:w]
	}

	// Fig. 6 accounting: load-utilized cycles and their categorization.
	anyLoadPortBusy := false
	for _, busy := range c.loadPorts {
		if busy > c.cycle {
			anyLoadPortBusy = true
			break
		}
	}
	if anyLoadPortBusy {
		c.Stats.LoadUtilizedCycles++
		switch {
		case stableOnPort && nonStableWaiting:
			c.Stats.StableWhileNonStableWaits++
		case stableOnPort:
			c.Stats.StableNoWaiter++
		case nonStableOnPort || anyLoadPortBusy:
			c.Stats.NonStableOnly++
		}
	}
}

func clearTail(q []*uop, from int) {
	for i := from; i < len(q); i++ {
		q[i] = nil
	}
}

// insertReady places u into the age-sorted ready queue.
func (t *threadState) insertReady(u *uop) {
	q := t.readyQ
	if n := len(q); n == 0 || q[n-1].seq < u.seq {
		t.readyQ = append(q, u)
		return
	}
	i := sort.Search(len(q), func(i int) bool { return q[i].seq > u.seq })
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = u
	t.readyQ = q
}

// scheduleReady routes a uop whose readyAt just became known: future
// readiness matures in the heap, already-reached readiness goes straight to
// the ready queue (it competes for issue from the next cycle on, exactly as
// a scan would have found it).
func (c *Core) scheduleReady(t *threadState, u *uop) {
	if u.readyAt > c.cycle {
		t.readyHeap.push(u.readyAt, u)
		return
	}
	t.insertReady(u)
}

// wake resolves u's availability for its registered consumers. Normal
// consumers decrement their unknown-producer count and are scheduled once
// every producer is resolved; a memory-renamed load waiting on store u gets
// its availability directly from the store's completion time and cascades to
// its own consumers. All readiness times produced here are strictly in the
// future (completeAt > cycle at issue), so scheduling never lands in the
// current cycle's already-run issue stage.
func (c *Core) wake(t *threadState, u *uop) {
	if u.availAt == farFuture {
		return // memory-renamed load still waiting on its store's issue
	}
	for _, wr := range u.waiters {
		v := wr.u
		if v.seq != wr.seq || v.squashed {
			continue
		}
		if v.mrnPred && v.mrnStore == u {
			v.availAt = u.completeAt
			c.wake(t, v)
			continue
		}
		v.unknownSrcs--
		if v.unknownSrcs != 0 {
			continue
		}
		ready := uint64(0)
		for _, p := range v.producers {
			if p == nil || p.squashed || p.availAt == farFuture {
				continue
			}
			if p.availAt > ready {
				ready = p.availAt
			}
		}
		v.readyAt = ready
		if v.inRS && !v.issued {
			c.scheduleReady(t, v)
		}
	}
	u.waiters = u.waiters[:0]
}

// loadMayIssue enforces memory-dependence prediction: a conflict-predicted
// load waits until every older store in its thread has generated its
// address.
func (c *Core) loadMayIssue(t *threadState, u *uop) bool {
	if !u.depPredicted {
		return true
	}
	for i := 0; i < t.sb.len(); i++ {
		s := t.sb.at(i)
		if s.squashed || s.seq >= u.seq {
			continue
		}
		if !s.issued {
			return false
		}
	}
	return true
}

// portAvailable finds and reserves the port class the uop needs; it returns
// false (reserving nothing) when all ports of the class are busy.
func (c *Core) portAvailable(u *uop) bool {
	switch {
	case u.isLoad():
		occ := uint64(loadPortOccupancy)
		if u.aguOnly {
			occ = aguOnlyPortOccupancy
		}
		return reservePort(c.loadPorts, c.cycle, occ)
	case u.isStore():
		// A store needs an STA and an STD slot in its issue cycle.
		staIdx := findPort(c.staPorts, c.cycle)
		stdIdx := findPort(c.stdPorts, c.cycle)
		if staIdx < 0 || stdIdx < 0 {
			return false
		}
		c.staPorts[staIdx] = c.cycle + 1
		c.stdPorts[stdIdx] = c.cycle + 1
		return true
	default:
		occ := uint64(1)
		if u.dyn.Op == isa.OpDiv {
			occ = divPortOccupancy
		}
		return reservePort(c.aluPorts, c.cycle, occ)
	}
}

func findPort(ports []uint64, now uint64) int {
	for i, busy := range ports {
		if busy <= now {
			return i
		}
	}
	return -1
}

func reservePort(ports []uint64, now, occupancy uint64) bool {
	i := findPort(ports, now)
	if i < 0 {
		return false
	}
	ports[i] = now + occupancy
	return true
}

// issueOne dispatches the uop, computes its completion time, and wakes
// consumers now that the result's arrival cycle is determined. Memory-renamed
// loads stay unresolved until their predicted store issues (the forwarded
// value arrives with the store's data, not the load's own execution).
func (c *Core) issueOne(t *threadState, u *uop) {
	u.issued = true
	u.issuedAt = c.cycle
	u.inRS = false
	c.rsCount--

	switch {
	case u.isLoad():
		c.executeLoad(t, u)
	case u.isStore():
		c.executeStore(t, u)
	default:
		c.Stats.ALUOps++
		u.completeAt = c.cycle + uint64(u.dyn.ExecLatency())
	}
	t.events.push(u.completeAt, u)
	if u.availAt == farFuture && !(u.mrnPred && u.mrnStore != nil) {
		u.availAt = u.completeAt
	}
	c.wake(t, u)
}

// executeLoad models address generation (1 cycle) plus the memory access.
func (c *Core) executeLoad(t *threadState, u *uop) {
	c.Stats.AGUOps++
	addr := u.dyn.Addr

	if u.aguOnly {
		// Ideal Stable LVP + data-fetch elimination: stop after address
		// generation — no load port data slot, no L1-D access.
		u.completeAt = c.cycle + 1
		return
	}

	// Store-to-load forwarding: an older in-flight store to the same word
	// whose address is known supplies the data at L1-hit-like latency.
	if fwd := c.forwardingStore(t, u, addr); fwd != nil {
		c.Stats.LoadExecs++
		u.completeAt = c.cycle + 1 + uint64(c.hier.L1D.Config().Latency)
		// Forwarding still reads the store buffer, not the L1-D; don't
		// count an L1-D access. Account a DTLB access only.
		return
	}

	if u.rfpPred && u.rfpAddr == addr {
		// The register-file prefetch already started this access at rename;
		// the data arrives relative to rename time. The stride prefetcher
		// still sees the demand stream.
		c.hier.TrainStride(u.dyn.PC, addr)
		arrival := u.renamedAt + 1 + uint64(u.rfpLat)
		if arrival < c.cycle+2 {
			arrival = c.cycle + 2 // verification still takes the pipeline
		}
		u.completeAt = arrival
		c.Stats.LoadExecs++
		return
	}

	memLat := c.hier.Load(u.dyn.PC, addr)
	c.Stats.LoadExecs++
	u.completeAt = c.cycle + 1 + uint64(memLat)
}

// forwardingStore returns the youngest older in-flight store to the same
// word address whose address is already generated, or nil.
func (c *Core) forwardingStore(t *threadState, u *uop, addr uint64) *uop {
	for i := t.sb.len() - 1; i >= 0; i-- {
		s := t.sb.at(i)
		if s.squashed || s.seq >= u.seq {
			continue
		}
		if s.issued && s.dyn.Addr == addr {
			return s
		}
	}
	return nil
}

// executeStore models store-address generation: the STA both arms memory
// disambiguation (catching younger already-done loads to the same address)
// and updates Constable's AMT ( 9 in Fig. 8).
func (c *Core) executeStore(t *threadState, u *uop) {
	c.Stats.AGUOps++
	c.Stats.StoreExecs++
	u.completeAt = c.cycle + 1
	addr := u.dyn.Addr

	if c.hasConstable && (!u.wrongPath || c.cfg.WrongPathUpdates) {
		c.att.Constable.OnStoreAddr(addr)
	}

	// Memory disambiguation: find the oldest younger load to the same word
	// that already obtained its value (executed or eliminated). Such a load
	// consumed stale data and must re-execute, flushing everything younger.
	// An eliminated load whose SLD value still equals the architectural
	// value was not actually made stale by this store (the silent-store
	// case): the forwarded data is correct, so no flush is needed.
	var victim *uop
	for i := 0; i < t.lb.len(); i++ {
		l := t.lb.at(i)
		if l.squashed || l.seq <= u.seq || l.wrongPath {
			continue
		}
		done := l.completed || l.eliminatedLoad()
		if !done {
			continue
		}
		if l.effAddr() != addr {
			continue
		}
		if l.eliminatedLoad() && l.elimValue == l.dyn.Value {
			continue
		}
		if victim == nil || l.seq < victim.seq {
			victim = l
		}
	}
	if victim != nil {
		c.Stats.OrderingViolations++
		if victim.eliminatedLoad() {
			c.Stats.EliminatedThatViolated++
			if c.hasConstable {
				c.att.Constable.OnViolation(victim.dyn.PC, victim.thread)
			}
		}
		c.memDepMark(victim.dyn.PC)
		c.flushFrom(victim, true)
	}
}

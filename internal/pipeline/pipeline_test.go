package pipeline

import (
	"testing"

	"constable/internal/bpred"
	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/fsim"
	"constable/internal/isa"
	"constable/internal/prog"
	"constable/internal/vpred"
	"constable/internal/workload"
)

// buildAndRun assembles a program, runs n instructions on a fresh core and
// returns it.
func buildAndRun(t *testing.T, p *prog.Program, att Attachments, cfg Config, n uint64) *Core {
	t.Helper()
	core := NewCore(cfg, att, cache.NewHierarchy(cache.DefaultHierarchyConfig()),
		fsim.NewStream(fsim.New(p), n))
	if err := core.Run(n * 100); err != nil {
		t.Fatal(err)
	}
	if core.Stats.Retired != n {
		t.Fatalf("retired %d of %d (cycles %d)", core.Stats.Retired, n, core.Stats.Cycles)
	}
	return core
}

// stableLoadLoop is a minimal program with one global-stable load. The load
// feeds no serial chain, so retirement keeps pace with rename and the xPRF
// never saturates.
func stableLoadLoop() *prog.Program {
	b := prog.NewBuilder("stable-loop")
	b.SetMem(prog.HeapBase, 77)
	b.MovImm(isa.R6, int64(prog.HeapBase))
	b.Label("loop")
	b.Load(isa.R9, isa.R6, 0)
	// Independent filler keeps the load density moderate so the in-flight
	// eliminated-load count stays inside the 32-entry xPRF.
	b.ALUImm(isa.ALUAdd, isa.R10, isa.R10, 1)
	b.ALUImm(isa.ALUAdd, isa.R11, isa.R11, 1)
	b.ALUImm(isa.ALUAdd, isa.R12, isa.R12, 1)
	b.ALUImm(isa.ALUAdd, isa.R13, isa.R13, 1)
	b.Jump("loop")
	return b.MustBuild()
}

func TestStableLoadGetsEliminated(t *testing.T) {
	cons := constable.New(constable.DefaultConfig())
	core := buildAndRun(t, stableLoadLoop(), Attachments{Constable: cons}, DefaultConfig(), 2000)
	st := &core.Stats
	if st.EliminatedLoads == 0 {
		t.Fatalf("no eliminations (conf events: %+v)", cons.Stats)
	}
	// After warmup (~32 instances at threshold 30) most instances should be
	// eliminated; the 32-entry xPRF bounds how many eliminated loads can be
	// in flight, so the fraction saturates below 1.0 in a tight loop.
	if frac := float64(st.EliminatedLoads) / float64(st.RetiredLoads); frac < 0.45 {
		t.Errorf("elimination fraction %.2f too low for a perfectly stable load", frac)
	}
	if st.EliminatedByMode["reg-rel"] != st.EliminatedLoads {
		t.Errorf("mode attribution wrong: %v", st.EliminatedByMode)
	}
}

func TestStorePreventsStaleElimination(t *testing.T) {
	// A loop that increments a counter in memory: load must never retire an
	// eliminated stale value (golden check would fail the run).
	b := prog.NewBuilder("counter")
	ctr := prog.GlobalBase
	b.SetMem(ctr, 0)
	b.MovImm(isa.R6, int64(ctr))
	b.Label("loop")
	b.Load(isa.R9, isa.R6, 0)
	b.ALUImm(isa.ALUInc, isa.R9, isa.R9, 0)
	b.Store(isa.R6, 0, isa.R9)
	b.Jump("loop")
	core := buildAndRun(t, b.MustBuild(),
		Attachments{Constable: constable.New(constable.DefaultConfig())},
		DefaultConfig(), 4000)
	// The run completing means every golden check passed; the load's value
	// changes every iteration so it must essentially never be eliminated.
	if core.Stats.EliminatedLoads > core.Stats.RetiredLoads/10 {
		t.Errorf("%d of %d changing-value loads eliminated",
			core.Stats.EliminatedLoads, core.Stats.RetiredLoads)
	}
}

func TestMoveAndZeroElimination(t *testing.T) {
	b := prog.NewBuilder("movzero")
	b.Label("loop")
	b.MovImm(isa.R6, 5)
	b.Mov(isa.R7, isa.R6)
	b.Zero(isa.R8)
	b.Jump("loop")
	core := buildAndRun(t, b.MustBuild(), Attachments{}, DefaultConfig(), 1000)
	st := &core.Stats
	if st.MoveEliminated == 0 || st.ZeroEliminated == 0 || st.ConstFolded == 0 || st.BranchFolded == 0 {
		t.Errorf("rename optimizations inactive: %+v", st)
	}
	// Eliminated uops must not allocate reservation stations.
	if st.RSAllocs != 0 {
		t.Errorf("fully-foldable loop allocated %d RS entries", st.RSAllocs)
	}
}

func TestOptimizationsCanBeDisabled(t *testing.T) {
	b := prog.NewBuilder("mov")
	b.Label("loop")
	b.MovImm(isa.R6, 5)
	b.Mov(isa.R7, isa.R6)
	b.Jump("loop")
	cfg := DefaultConfig()
	cfg.MoveElimination = false
	cfg.ConstantFolding = false
	cfg.BranchFolding = false
	core := buildAndRun(t, b.MustBuild(), Attachments{}, cfg, 900)
	if core.Stats.MoveEliminated != 0 || core.Stats.ConstFolded != 0 {
		t.Error("disabled optimizations still fired")
	}
	if core.Stats.RSAllocs == 0 {
		t.Error("without folding the uops must use the RS")
	}
}

func TestBranchMispredictsCostCycles(t *testing.T) {
	// A data-dependent unpredictable branch (LCG low bit).
	spec := workload.SmallSuite()[0]
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(DefaultConfig(), Attachments{}, cache.NewHierarchy(cache.DefaultHierarchyConfig()),
		fsim.NewStream(cpu, 20_000))
	if err := core.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if core.Stats.BranchMispredicts == 0 {
		t.Error("workload with an LCG branch must mispredict sometimes")
	}
	if core.Stats.Flushes < core.Stats.BranchMispredicts {
		t.Errorf("every resolved mispredict flushes: flushes=%d mispredicts=%d",
			core.Stats.Flushes, core.Stats.BranchMispredicts)
	}
}

func TestEVESMispredictFlushesAndRecovers(t *testing.T) {
	// A single static load whose value is constant for 200 instances, then
	// changes: EVES gains confidence, mispredicts at the switch, and the
	// machine must recover architecturally (run completes, golden checks
	// pass). The utility filter then retires the PC.
	b := prog.NewBuilder("vpswitch")
	flag := prog.GlobalBase
	b.SetMem(flag, 1)
	b.MovImm(isa.R6, int64(flag))
	b.Label("outer")
	b.MovImm(isa.R8, 200)
	b.Label("warm")
	b.Load(isa.R9, isa.R6, 0)
	b.ALUImm(isa.ALUDec, isa.R8, isa.R8, 0)
	b.Branch(isa.R8, "warm")
	// Switch the value once per outer iteration.
	b.ALUImm(isa.ALUInc, isa.R9, isa.R9, 0)
	b.Store(isa.R6, 0, isa.R9)
	b.Jump("outer")

	eves := vpred.NewEVES(vpred.DefaultEVESConfig())
	core := buildAndRun(t, b.MustBuild(), Attachments{EVES: eves}, DefaultConfig(), 3000)
	if eves.Predictions == 0 {
		t.Fatal("EVES never predicted the constant load")
	}
	if core.Stats.ValueMispredicts == 0 {
		t.Error("the value switch must cause one mispredict")
	}
}

func TestSMT2PartitionsAndProgresses(t *testing.T) {
	specA := workload.SmallSuite()[0]
	cpuA, _ := specA.NewCPU(false)
	cpuB, _ := specA.NewCPU(false)
	cfg := DefaultConfig()
	cfg.Threads = 2
	core := NewCore(cfg, Attachments{}, cache.NewHierarchy(cache.DefaultHierarchyConfig()),
		fsim.NewStream(cpuA, 10_000), fsim.NewStream(cpuB, 10_000))
	if err := core.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if core.Stats.RetiredPerThread[0] != 10_000 || core.Stats.RetiredPerThread[1] != 10_000 {
		t.Fatalf("per-thread retired = %v", core.Stats.RetiredPerThread)
	}
	// Two identical threads on shared ports must take longer than one.
	solo := NewCore(DefaultConfig(), Attachments{}, cache.NewHierarchy(cache.DefaultHierarchyConfig()),
		fsim.NewStream(mustCPU(t, specA), 10_000))
	if err := solo.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if core.Stats.Cycles <= solo.Stats.Cycles {
		t.Errorf("SMT2 (%d cycles) should be slower than one thread (%d) at double the work",
			core.Stats.Cycles, solo.Stats.Cycles)
	}
}

func mustCPU(t *testing.T, s *workload.Spec) *fsim.CPU {
	t.Helper()
	cpu, err := s.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestInjectSnoopResetsElimination(t *testing.T) {
	cons := constable.New(constable.DefaultConfig())
	p := stableLoadLoop()
	core := NewCore(DefaultConfig(), Attachments{Constable: cons},
		cache.NewHierarchy(cache.DefaultHierarchyConfig()),
		fsim.NewStream(fsim.New(p), 3000))
	// Run halfway, snoop the stable line, finish.
	if err := core.Run(400); err != nil {
		t.Fatal(err)
	}
	before := cons.Stats.CanElimResetsSn
	core.InjectSnoop(prog.HeapBase / 64)
	if cons.Stats.CanElimResetsSn <= before {
		t.Error("snoop must reset the stable load's can_eliminate")
	}
	if err := core.Run(600_000); err != nil {
		t.Fatal(err)
	}
}

func TestELARResolvesStackLoads(t *testing.T) {
	b := prog.NewBuilder("stack")
	b.Store(isa.RSP, -8, isa.R6)
	b.Label("loop")
	b.Load(isa.R9, isa.RSP, -8)
	b.Jump("loop")
	elar := vpred.NewELAR()
	buildAndRun(t, b.MustBuild(), Attachments{ELAR: elar}, DefaultConfig(), 1000)
	if elar.EarlyResolved == 0 {
		t.Error("ELAR never resolved a stack load early")
	}
}

func TestRFPPredictsStridedLoads(t *testing.T) {
	b := prog.NewBuilder("stream")
	b.Label("outer")
	b.MovImm(isa.R6, int64(prog.HeapBase))
	b.MovImm(isa.R8, 200)
	b.Label("loop")
	b.Load(isa.R9, isa.R6, 0)
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 8)
	b.ALUImm(isa.ALUDec, isa.R8, isa.R8, 0)
	b.Branch(isa.R8, "loop")
	b.Jump("outer")
	rfp := vpred.NewRFP(vpred.DefaultRFPConfig())
	buildAndRun(t, b.MustBuild(), Attachments{RFP: rfp}, DefaultConfig(), 3000)
	if rfp.Predictions == 0 || rfp.Correct == 0 {
		t.Errorf("RFP predictions=%d correct=%d on a perfect stride", rfp.Predictions, rfp.Correct)
	}
}

func TestIdealConstableEliminatesEverything(t *testing.T) {
	p := stableLoadLoop()
	// The loop's single load PC: instruction index 2 (movi, label/loop →
	// load is the second instruction emitted).
	loadPC := prog.PCOf(1)
	core := buildAndRun(t, p, Attachments{IdealElimPCs: map[uint64]bool{loadPC: true}},
		DefaultConfig(), 1500)
	if core.Stats.EliminatedLoads != core.Stats.RetiredLoads {
		t.Errorf("ideal oracle eliminated %d of %d loads",
			core.Stats.EliminatedLoads, core.Stats.RetiredLoads)
	}
}

func TestIdealLVPCoversLoadsWithoutEliminating(t *testing.T) {
	p := stableLoadLoop()
	loadPC := prog.PCOf(1)
	core := buildAndRun(t, p, Attachments{IdealLVPPCs: map[uint64]bool{loadPC: true}},
		DefaultConfig(), 1500)
	if core.Stats.EliminatedLoads != 0 {
		t.Error("ideal LVP must not eliminate loads")
	}
	if core.Stats.ValuePredicted != core.Stats.RetiredLoads {
		t.Errorf("ideal LVP covered %d of %d loads",
			core.Stats.ValuePredicted, core.Stats.RetiredLoads)
	}
	if core.Stats.LoadExecs == 0 {
		t.Error("value-predicted loads must still execute")
	}
}

func TestAGUOnlySkipsL1D(t *testing.T) {
	p := stableLoadLoop()
	loadPC := prog.PCOf(1)
	hier := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	core := NewCore(DefaultConfig(), Attachments{
		IdealLVPPCs:        map[uint64]bool{loadPC: true},
		IdealDataFetchElim: true,
	}, hier, fsim.NewStream(fsim.New(p), 1500))
	if err := core.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if hier.L1DLoadAccesses > 5 {
		t.Errorf("data-fetch-eliminated loads performed %d L1-D accesses", hier.L1DLoadAccesses)
	}
}

func TestWrongPathUpdatesToggle(t *testing.T) {
	// With wrong-path updates on, Constable sees extra (safe) register-write
	// resets from synthesized wrong-path uops.
	spec := workload.SmallSuite()[9] // ispec17-intbranchy: many mispredicts
	run := func(wp bool) *constable.Stats {
		cpu := mustCPU(t, spec)
		cons := constable.New(constable.DefaultConfig())
		cfg := DefaultConfig()
		cfg.WrongPathUpdates = wp
		core := NewCore(cfg, Attachments{Constable: cons},
			cache.NewHierarchy(cache.DefaultHierarchyConfig()), fsim.NewStream(cpu, 30_000))
		if err := core.Run(3_000_000); err != nil {
			t.Fatal(err)
		}
		return &cons.Stats
	}
	on := run(true)
	off := run(false)
	if on.Eliminated == 0 || off.Eliminated == 0 {
		t.Fatal("both configurations must eliminate loads")
	}
	t.Logf("eliminations: wrong-path-updates on=%d off=%d", on.Eliminated, off.Eliminated)
}

func TestConstableReducesLoadPortPressure(t *testing.T) {
	spec := workload.SmallSuite()[13] // server workload, load-heavy
	base := runWorkload(t, spec, Attachments{}, DefaultConfig(), 40_000)
	cons := runWorkload(t, spec, Attachments{Constable: constable.New(constable.DefaultConfig())},
		DefaultConfig(), 40_000)
	if cons.Stats.LoadExecs >= base.Stats.LoadExecs {
		t.Errorf("eliminations must reduce executed loads: %d vs %d",
			cons.Stats.LoadExecs, base.Stats.LoadExecs)
	}
}

func TestXPRFReleasedOnFlush(t *testing.T) {
	// After any run the xPRF must drain back to zero occupancy (releases on
	// both retirement and squash).
	cons := constable.New(constable.DefaultConfig())
	spec := workload.SmallSuite()[4]
	runWorkload(t, spec, Attachments{Constable: cons}, DefaultConfig(), 30_000)
	if got := cons.XPRFInUse(); got != 0 {
		t.Errorf("xPRF leak: %d entries still in use after drain", got)
	}
}

func TestContextSwitchResetsConstable(t *testing.T) {
	cons := constable.New(constable.DefaultConfig())
	cfg := DefaultConfig()
	cfg.ContextSwitchInterval = 500
	core := buildAndRun(t, stableLoadLoop(), Attachments{Constable: cons}, cfg, 4000)
	if core.Stats.ContextSwitches != 4000/500 {
		t.Errorf("context switches = %d, want %d", core.Stats.ContextSwitches, 4000/500)
	}
	// Elimination must still work between switches (confidence survives, so
	// one likely-stable execution re-arms after each flush).
	if core.Stats.EliminatedLoads == 0 {
		t.Error("no eliminations despite surviving confidence")
	}
	// And the flushes must cost some coverage versus the no-switch run.
	base := buildAndRun(t, stableLoadLoop(),
		Attachments{Constable: constable.New(constable.DefaultConfig())}, DefaultConfig(), 4000)
	if core.Stats.EliminatedLoads > base.Stats.EliminatedLoads {
		t.Errorf("context switches increased coverage: %d vs %d",
			core.Stats.EliminatedLoads, base.Stats.EliminatedLoads)
	}
}

func TestSMTContextsDoNotAliasInSLD(t *testing.T) {
	// Regression test: two SMT contexts running *different* programs share
	// the PC-indexed SLD. Without context tagging, thread B's load at the
	// same virtual PC as thread A's would be eliminated with thread A's
	// value — an unsafe cross-context aliasing the golden check catches.
	// (Found by TestSMTConfigFuzz.)
	specA := workload.SmallSuite()[6]  // fspec17 workload
	specB := workload.SmallSuite()[14] // server workload: same PCs, different program
	cpuA, _ := specA.NewCPU(false)
	cpuB, _ := specB.NewCPU(false)
	cfg := DefaultConfig()
	cfg.Threads = 2
	cons := constable.New(constable.DefaultConfig())
	core := NewCore(cfg, Attachments{Constable: cons},
		cache.NewHierarchy(cache.DefaultHierarchyConfig()),
		fsim.NewStream(cpuA, 20_000), fsim.NewStream(cpuB, 20_000))
	if err := core.Run(8_000_000); err != nil {
		t.Fatalf("cross-context SLD aliasing: %v", err)
	}
	if core.Stats.RetiredPerThread[0] != 20_000 || core.Stats.RetiredPerThread[1] != 20_000 {
		t.Fatalf("retired %v", core.Stats.RetiredPerThread)
	}
	if core.Stats.EliminatedLoads == 0 {
		t.Error("context tagging must not disable elimination")
	}
}

func TestAttachmentsWireComponentVariants(t *testing.T) {
	bp := bpred.New(bpred.BimodalConfig())
	l1pf := cache.NewDeltaPrefetcher(cache.DefaultPrefetchConfig())
	l1dp := cache.NewL1DPredictor(cache.DefaultL1DPredConfig())
	hier := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	core := NewCore(DefaultConfig(), Attachments{BPred: bp, L1Prefetch: l1pf, L1DPred: l1dp},
		hier, fsim.NewStream(fsim.New(stableLoadLoop()), 100))
	if core.Branch() != bp {
		t.Error("front end did not take the constructed predictor")
	}
	if hier.L1Prefetcher() != cache.L1Prefetcher(l1pf) {
		t.Errorf("hierarchy prefetcher = %T", hier.L1Prefetcher())
	}
	if hier.L1DPredictor() != l1dp {
		t.Error("hierarchy did not attach the L1-D predictor")
	}
	if err := core.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if l1dp.Lookups == 0 {
		t.Error("attached L1-D predictor observed no loads")
	}
	if _, ok := hier.L1Prefetcher().(*cache.DeltaPrefetcher); !ok {
		t.Errorf("prefetcher swapped away mid-run: %T", hier.L1Prefetcher())
	}
}

func TestNilAttachmentsKeepDefaults(t *testing.T) {
	hier := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	core := NewCore(DefaultConfig(), Attachments{}, hier,
		fsim.NewStream(fsim.New(stableLoadLoop()), 100))
	if core.Branch() == nil || core.Branch().Config() != bpred.DefaultConfig() {
		t.Error("nil BPred attachment must fall back to the default TAGE config")
	}
	if _, ok := hier.L1Prefetcher().(*cache.StridePrefetcher); !ok {
		t.Errorf("default prefetcher = %T, want stride", hier.L1Prefetcher())
	}
	if hier.L1DPredictor() != nil {
		t.Error("L1-D predictor must stay detached by default")
	}
}

//go:build !race

package pipeline

// raceEnabled reports whether the race detector is compiled in; allocation-
// count assertions are skipped under it.
const raceEnabled = false

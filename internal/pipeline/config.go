// Package pipeline implements the cycle-level out-of-order core model the
// reproduction's experiments run on: a 6-wide Golden Cove-like machine
// (Table 2 of the paper) with TAGE branch prediction, rename-stage dynamic
// optimizations (memory renaming, move/zero elimination, constant and branch
// folding), a reservation-station/port scheduler (5 ALU, 3 AGU+load, 2
// store-address, 2 store-data ports), aggressive out-of-order load issue
// with memory-dependence prediction and disambiguation flushes, optional
// 2-way SMT, and hooks for Constable, EVES, ELAR and RFP.
package pipeline

import (
	"constable/internal/bpred"
	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/isa"
	"constable/internal/vpred"
)

// Config parameterizes one core. DefaultConfig matches Table 2.
type Config struct {
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	RetireWidth int

	IDQSize int
	ROBSize int
	LBSize  int
	SBSize  int
	RSSize  int
	IntPRF  int // physical integer registers available for in-flight writers

	NumALUPorts  int
	NumLoadPorts int
	NumStaPorts  int
	NumStdPorts  int

	// RedirectPenalty is the front-end refill delay after any pipeline
	// flush (branch mispredict, value mispredict, ordering violation).
	RedirectPenalty int

	// Baseline rename-stage dynamic optimizations (always on in the paper's
	// baseline).
	MoveElimination  bool
	ZeroElimination  bool
	ConstantFolding  bool
	BranchFolding    bool
	MemoryRenaming   bool
	MemDepPrediction bool

	// WrongPathUpdates lets wrong-path instructions update Constable's
	// structures (the paper's default; §6.7.2 measures the alternative).
	WrongPathUpdates bool

	// ContextSwitchInterval, when non-zero, simulates a physical-address-
	// mapping change every N retired instructions: Constable resets every
	// can_eliminate flag and invalidates the RMT and AMT (§6.7.3).
	ContextSwitchInterval uint64

	// SMT threads (1 or 2). With 2 threads the ROB/LB/SB are statically
	// partitioned and the RS and ports are shared (§8.1).
	Threads int
}

// DefaultConfig returns the Table 2 baseline core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		RenameWidth: 6,
		IssueWidth:  6,
		RetireWidth: 6,

		IDQSize: 144,
		ROBSize: 512,
		LBSize:  240,
		SBSize:  112,
		RSSize:  248,
		IntPRF:  288,

		NumALUPorts:  5,
		NumLoadPorts: 3,
		NumStaPorts:  2,
		NumStdPorts:  2,

		RedirectPenalty: 20,

		MoveElimination:  true,
		ZeroElimination:  true,
		ConstantFolding:  true,
		BranchFolding:    true,
		MemoryRenaming:   true,
		MemDepPrediction: true,

		WrongPathUpdates: true,

		Threads: 1,
	}
}

// Attachments wires the optional mechanisms into the core. Nil fields are
// simply absent.
type Attachments struct {
	Constable *constable.Constable
	EVES      *vpred.EVES
	RFP       *vpred.RFP
	ELAR      *vpred.ELAR

	// BPred, when non-nil, is the constructed branch predictor the front end
	// uses; nil keeps the default TAGE configuration. The mechanism
	// registry's bpred axis builds one from its variant config.
	BPred *bpred.Predictor
	// L1Prefetch, when non-nil, replaces the hierarchy's L1-D prefetcher on
	// the memory path (stride, delta-pattern or none).
	L1Prefetch cache.L1Prefetcher
	// L1DPred, when non-nil, attaches an L1-D hit/miss predictor to the
	// demand-load stream (instrumentation; counters reach the run snapshot).
	L1DPred *cache.L1DPredictor

	// IdealElimPCs eliminates every instance of the listed (global-stable)
	// load PCs at rename — the Ideal Constable oracle of §4.4.
	IdealElimPCs map[uint64]bool
	// IdealLVPPCs perfectly value-predicts every instance of the listed
	// load PCs; the loads still execute to verify (Ideal Stable LVP).
	IdealLVPPCs map[uint64]bool
	// IdealDataFetchElim upgrades Ideal Stable LVP: predicted loads execute
	// only through address generation, skipping the load port and L1-D
	// access (the middle bar of Fig. 7).
	IdealDataFetchElim bool

	// StablePCs classifies load PCs as global-stable for the resource-
	// dependence accounting of Fig. 6 (offline analysis input; optional).
	StablePCs map[uint64]bool
}

// Stream supplies the committed-path dynamic instruction stream of one
// hardware thread.
type Stream interface {
	Next() (isa.DynInst, bool)
}

// Stats aggregates the core's counters for the experiment drivers.
type Stats struct {
	Cycles           uint64
	Retired          uint64
	RetiredLoads     uint64
	RetiredStores    uint64
	RetiredPerThread [2]uint64

	// Resource events.
	ROBAllocs   uint64
	RSAllocs    uint64
	LBAllocs    uint64
	SBAllocs    uint64
	FetchedUops uint64
	RenamedUops uint64

	// Rename-stage optimization events.
	MoveEliminated uint64
	ZeroEliminated uint64
	ConstFolded    uint64
	BranchFolded   uint64
	MRNForwarded   uint64
	MRNMispredicts uint64

	// Constable events observed at retirement.
	EliminatedLoads  uint64
	EliminatedByMode map[string]uint64
	// Global-stable attribution (needs Attachments.StablePCs): retired and
	// eliminated loads split by stability and addressing mode (Fig. 17).
	RetiredStableByMode    map[string]uint64
	EliminatedStableByMode map[string]uint64
	EliminatedNonStable    uint64
	GoldenChecks           uint64
	OrderingViolations     uint64 // flushes caused by eliminated/early loads
	EliminatedThatViolated uint64

	// Value prediction events (retired loads).
	ValuePredicted   uint64
	ValueMispredicts uint64

	// Branch events.
	Branches          uint64
	BranchMispredicts uint64

	// Flushes.
	Flushes uint64
	// ContextSwitches counts simulated physical-mapping changes (§6.7.3).
	ContextSwitches uint64

	// Load-port utilization (Fig. 6). A cycle is load-utilized when at
	// least one load port is busy.
	LoadUtilizedCycles uint64
	// StableWhileNonStableWaits counts load-utilized cycles where a
	// global-stable load held a port while a non-global-stable load was
	// ready but un-issued; StableNoWaiter counts stable-on-port cycles with
	// no such waiter; NonStableOnly the rest.
	StableWhileNonStableWaits uint64
	StableNoWaiter            uint64
	NonStableOnly             uint64

	// SLD write-port pressure (Fig. 9a).
	SLDUpdateCycles     uint64 // cycles with at least one SLD update
	SLDUpdates          uint64
	SLDUpdatesLE2Cycles uint64 // cycles with ≤2 SLD updates (always counted)
	RenameStallsSLD     uint64 // rename stalls from SLD port pressure

	// Execution-unit events for the power model.
	ALUOps     uint64
	AGUOps     uint64
	LoadExecs  uint64 // loads that actually accessed the L1-D
	StoreExecs uint64
}

// IPC returns retired instructions per cycle (all threads combined).
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

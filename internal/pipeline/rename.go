package pipeline

import (
	"constable/internal/isa"
)

// rename pulls up to RenameWidth uops from the IDQs, applies the rename-
// stage dynamic optimizations (move/zero elimination, constant and branch
// folding, memory renaming), performs Constable's SLD lookup and the value/
// address predictions, and allocates ROB/RS/LB/SB entries. It models the
// SLD port constraints of §6.7.1: at most SLDReadPorts load lookups and
// SLDWritePorts RMT-driven updates per cycle; excess stalls the group.
func (c *Core) rename() {
	sldReads := 0
	sldWrites := 0
	nThreads := len(c.threads)
	for slot := 0; slot < c.cfg.RenameWidth; slot++ {
		t := c.threads[slot%nThreads]
		if t.idq.len() == 0 {
			// An empty IDQ or a structural stall persists for the rest of the
			// cycle (rename only consumes resources), so with one thread the
			// remaining slots of the group can't rename either.
			if nThreads == 1 {
				break
			}
			continue
		}
		u := t.idq.front()
		if !c.canAllocate(t, u) {
			if nThreads == 1 {
				break
			}
			continue
		}
		// SLD read-port constraint: a rename group with too many loads
		// stalls (§6.7.1).
		if c.hasConstable && u.isLoad() && sldReads >= c.sldReadPorts {
			c.Stats.RenameStallsSLD++
			break
		}
		if c.hasConstable && sldWrites >= c.sldWritePorts {
			c.Stats.RenameStallsSLD++
			break
		}
		t.idq.popFront()
		w := c.renameOne(t, u)
		sldWrites += w
		if u.isLoad() && c.hasConstable {
			sldReads++
		}
		c.Stats.RenamedUops++
	}
}

// canAllocate checks every structural resource the uop will need.
func (c *Core) canAllocate(t *threadState, u *uop) bool {
	if t.rob.len() >= c.robCap {
		return false
	}
	if u.isLoad() && t.lb.len() >= c.lbCap {
		return false
	}
	if u.isStore() && t.sb.len() >= c.sbCap {
		return false
	}
	// Conservatively assume an RS entry is needed; elimination decisions
	// happen during rename itself.
	if !c.mightEliminate(u) && c.rsCount >= c.cfg.RSSize {
		return false
	}
	if u.dyn.Dst != isa.RegNone && c.prfInUse >= c.prfCap {
		return false
	}
	return true
}

// mightEliminate is a cheap pre-check used only for the RS-full stall
// decision.
func (c *Core) mightEliminate(u *uop) bool {
	switch u.dyn.Op {
	case isa.OpNop, isa.OpMov, isa.OpMovImm, isa.OpJump, isa.OpCall:
		return true
	}
	return false
}

// renameOne processes a single uop through the rename stage and returns the
// number of SLD write operations it caused (for the port model).
func (c *Core) renameOne(t *threadState, u *uop) int {
	u.renamedAt = c.cycle
	d := &u.dyn
	sldWrites := 0

	// Constable structure updates on register writes ( 7 / 8 in Fig. 8):
	// every renamed instruction that writes a register resets the
	// can_eliminate flag of loads sourcing that register. Wrong-path
	// instructions participate per the paper's default (§6.7.2).
	if c.hasConstable && d.Dst != isa.RegNone {
		if !u.wrongPath || c.cfg.WrongPathUpdates {
			sldWrites += c.att.Constable.OnRegWrite(d.Dst, u.thread)
		}
	}

	// ELAR stack-pointer tracking: immediate adjustments keep the decode-
	// stage copy valid, any other write invalidates it.
	if t.elar != nil && d.Dst != isa.RegNone && isa.IsStackReg(d.Dst) {
		immOnly := d.Op == isa.OpMovImm ||
			(d.Op == isa.OpALU && d.Src2 == isa.RegNone && d.Src1 == d.Dst)
		t.elar.OnStackPointerWrite(immOnly)
	}

	// Rename-stage optimizations of the baseline.
	switch d.Op {
	case isa.OpNop:
		u.elim = elimNop
	case isa.OpMov:
		if c.cfg.MoveElimination {
			u.elim = elimMove
			c.Stats.MoveEliminated++
		}
	case isa.OpMovImm:
		if c.cfg.ConstantFolding {
			u.elim = elimConst
			c.Stats.ConstFolded++
		}
	case isa.OpALU:
		if c.cfg.ZeroElimination && d.Fn == isa.ALUXor && d.Src1 == d.Src2 && d.Src2 != isa.RegNone {
			u.elim = elimZero
			c.Stats.ZeroEliminated++
		}
	case isa.OpJump, isa.OpCall:
		if c.cfg.BranchFolding {
			u.elim = elimBranchFold
			c.Stats.BranchFolded++
		}
	case isa.OpLoad:
		sldWrites += c.renameLoad(t, u)
	}

	// Availability resolution: eliminated/folded results are consumable at
	// rename, value-predicted ones the cycle after. A memory-renamed load's
	// value arrives with its predicted store's data, so its availability
	// resolves at the store's issue (now, if it already happened; via the
	// store's waiters list otherwise). Everything else resolves at issue.
	u.availAt = farFuture
	u.readyAt = farFuture
	u.unknownSrcs = 0
	if u.renameComplete() {
		u.availAt = u.renamedAt
		// The rename-complete → completed transition fires next cycle.
		t.events.push(c.cycle+1, u)
	} else if u.valuePred || u.idealLVP {
		u.availAt = u.renamedAt + 1
	} else if u.mrnPred {
		if u.mrnStore.issued {
			u.availAt = u.mrnStore.completeAt
		} else {
			u.mrnStore.waiters = append(u.mrnStore.waiters, waiterRef{u, u.seq})
		}
	}

	// Producer linking for dependency wake-up.
	if u.elim == elimNone || u.elim == elimMove {
		c.linkProducers(t, u)
	}

	// Allocate structures.
	t.rob.pushBack(u)
	c.Stats.ROBAllocs++
	if u.isLoad() {
		t.lb.pushBack(u)
		c.Stats.LBAllocs++
	}
	if u.isStore() {
		t.sb.pushBack(u)
		c.Stats.SBAllocs++
	}
	if u.elim == elimNone {
		u.inRS = true
		c.rsCount++
		c.Stats.RSAllocs++
		// Register on producers whose availability is not yet determined;
		// with none, readiness is final now and the entry is scheduled
		// directly (wake handles the rest otherwise).
		ready := uint64(0)
		for _, p := range u.producers {
			if p == nil || p.squashed {
				continue
			}
			if p.availAt == farFuture {
				u.unknownSrcs++
				p.waiters = append(p.waiters, waiterRef{u, u.seq})
			} else if p.availAt > ready {
				ready = p.availAt
			}
		}
		if u.unknownSrcs == 0 {
			u.readyAt = ready
			c.scheduleReady(t, u)
		}
	}
	if d.Dst != isa.RegNone && u.elim != elimMove && u.elim != elimConstable && u.elim != elimIdeal {
		c.prfInUse++
	}

	// Track the newest writer of each architectural register.
	if d.Dst != isa.RegNone {
		t.lastWriter[d.Dst] = u
	}
	return sldWrites
}

// renameLoad applies Constable / the oracles / EVES / RFP / ELAR to a load
// and returns SLD write operations caused.
func (c *Core) renameLoad(t *threadState, u *uop) int {
	d := &u.dyn

	// Ideal Constable oracle: every instance of a global-stable load is
	// eliminated outright (§4.4).
	if !u.wrongPath && c.hasIdealElim && c.att.IdealElimPCs[d.PC] {
		u.elim = elimIdeal
		u.elimValue = d.Value
		u.elimAddr = d.Addr
		return 0
	}

	// Constable: SLD lookup ( 1 / 2 / 3 in Fig. 8). A load the memory-
	// dependence predictor marks as store-conflicting is not eliminated:
	// its address is being written by in-flight stores, so elimination
	// would keep tripping the disambiguation flush.
	conflicting := false
	if c.cfg.MemDepPrediction {
		if e := c.memDepLookup(d.PC); e != nil && e.conf >= 2 {
			conflicting = true
		}
	}
	if c.hasConstable && !u.wrongPath && !conflicting {
		dec := c.att.Constable.LookupRename(d.PC, d.Mode, u.thread)
		if dec.Eliminate {
			u.elim = elimConstable
			u.usesXPRF = true
			u.elimValue = dec.Value
			u.elimAddr = dec.Addr
			return 0
		}
		u.likelyStable = dec.LikelyStable
	}

	// Ideal Stable LVP: perfect value prediction of global-stable loads;
	// the load still executes (optionally only through address generation).
	if !u.wrongPath && c.hasIdealLVP && c.att.IdealLVPPCs[d.PC] {
		u.idealLVP = true
		if c.att.IdealDataFetchElim {
			u.aguOnly = true
		}
	}

	// EVES value prediction.
	if c.hasEVES && !u.wrongPath && !u.idealLVP {
		if v, ok := c.att.EVES.Predict(d.PC); ok {
			u.valuePred = true
			u.predVal = v
		}
	}

	// RFP address prediction: begin the memory access now. The prefetch
	// must not train the stride prefetcher (its own address stream would
	// poison the per-PC stride state).
	if c.hasRFP && !u.wrongPath {
		if addr, ok := c.att.RFP.PredictAddr(d.PC); ok {
			u.rfpPred = true
			u.rfpAddr = addr
			u.rfpLat = c.hier.LoadPrefetch(addr)
		}
	}

	// ELAR: stack loads with a tracked stack pointer resolve their address
	// in decode and need not wait for their base register.
	if t.elar != nil && d.Mode == isa.AddrStackRel && t.elar.CanResolveEarly() {
		u.elarEarly = true
	}

	// Memory renaming: predict the forwarding store by store-buffer
	// distance and break the data dependence onto the store.
	if c.cfg.MemoryRenaming && !u.wrongPath {
		if e := c.mrnLookup(d.PC); e != nil && !e.poisoned && e.conf >= 3 && e.dist <= t.sb.len() {
			u.mrnPred = true
			u.mrnStore = t.sb.at(t.sb.len() - e.dist)
			c.Stats.MRNForwarded++
		}
	}

	// Memory-dependence prediction: loads with a conflict history wait for
	// older store addresses.
	if c.cfg.MemDepPrediction {
		if e := c.memDepLookup(d.PC); e != nil && e.conf >= 2 {
			u.depPredicted = true
		}
	}
	return 0
}

// linkProducers records the newest in-flight writers of the uop's source
// registers. Eliminated loads and folded instructions need no producers.
func (c *Core) linkProducers(t *threadState, u *uop) {
	d := &u.dyn
	n := 0
	if d.Src1 != isa.RegNone {
		// ELAR-resolved loads do not wait for their base register.
		if !(u.elarEarly && u.isLoad()) {
			u.producers[n] = t.lastWriter[d.Src1]
			n++
		}
	}
	if d.Src2 != isa.RegNone {
		u.producers[n] = t.lastWriter[d.Src2]
	}
}

// The predictor tables are power-of-2 sized, so the modulo in the index
// computations reduces to a mask.
func (c *Core) mrnLookup(pc uint64) *mrnEntry {
	e := &c.mrn[(pc>>2)&uint64(len(c.mrn)-1)]
	if e.valid && e.pc == pc {
		return e
	}
	return nil
}

func (c *Core) mrnTrain(pc uint64, dist int, correctPred, hadPred bool) {
	e := &c.mrn[(pc>>2)&uint64(len(c.mrn)-1)]
	if !e.valid || e.pc != pc {
		if dist > 0 {
			*e = mrnEntry{pc: pc, dist: dist, conf: 1, valid: true}
		}
		return
	}
	if hadPred && !correctPred {
		e.conf = 0
		// Utility filter: a load whose forwarding distance proves unstable
		// at runtime stops being renamed — the flush cost of one wrong
		// forwarding dwarfs many correct ones.
		if e.misses < 255 {
			e.misses++
		}
		if e.misses >= 2 {
			e.poisoned = true
		}
	}
	if dist > 0 {
		if dist == e.dist {
			if e.conf < 7 {
				e.conf++
			}
		} else {
			e.dist = dist
			e.conf = 0
		}
	}
}

func (c *Core) memDepLookup(pc uint64) *memDepEntry {
	e := &c.memDep[(pc>>2)&uint64(len(c.memDep)-1)]
	if e.valid && e.pc == pc {
		return e
	}
	return nil
}

func (c *Core) memDepMark(pc uint64) {
	e := &c.memDep[(pc>>2)&uint64(len(c.memDep)-1)]
	if e.valid && e.pc == pc {
		if e.conf < 3 {
			e.conf++
		}
		return
	}
	*e = memDepEntry{pc: pc, conf: 2, valid: true}
}

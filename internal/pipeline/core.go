package pipeline

import (
	"fmt"

	"constable/internal/bpred"
	"constable/internal/cache"
	"constable/internal/isa"
	"constable/internal/vpred"
)

// threadState is the per-hardware-thread front-end and in-order state.
type threadState struct {
	index      int // position in Core.threads, stamped into uop.thread
	stream     Stream
	streamDone bool

	// window holds fetched-but-not-retired committed-path instructions;
	// window.front().Seq == windowBase. replayPos is the dynamic sequence
	// number of the next committed-path instruction to fetch (rewound on
	// flushes).
	window     ring[isa.DynInst]
	windowBase uint64
	replayPos  uint64

	wrongPath       bool
	wpCounter       uint64
	fetchStall      uint64 // no fetch until this cycle
	pendingRedirect *uop

	seqCounter uint64
	// trainedUpTo is the lowest committed-path dynamic sequence number the
	// branch predictor has NOT been trained on; replayed branches after a
	// flush predict without retraining, so history is not double-shifted.
	trainedUpTo uint64
	lastWriter  [isa.NumRegsAPX]*uop

	idq ring[*uop]
	rob ring[*uop]
	lb  ring[*uop]
	sb  ring[*uop]

	// Wakeup-driven issue scheduling. An RS entry is in exactly one place:
	// blocked (unknownSrcs > 0, reachable only through its producers'
	// waiters lists — zero per-cycle cost), maturing in readyHeap (readyAt
	// known but future, keyed (readyAt, seq)), or issue-eligible in readyQ
	// (age-sorted by seq; retried every cycle until a port and the issue
	// budget admit it). Squashed/recycled entries are invalidated lazily on
	// pop/walk, like the completion events.
	readyQ    []*uop
	readyHeap eventHeap

	// events schedules completed-transitions: rename-complete uops enqueue
	// at rename (due the next cycle), executing uops at issue (due their
	// completeAt). complete() pops only the events due this cycle, so the
	// writeback stage costs O(due events · log inflight) instead of a scan
	// over everything renamed-but-not-completed. Events for squashed uops
	// are left in place and invalidated lazily on pop via the seq snapshot.
	events eventHeap

	// uop pool. free holds immediately-reusable uops. limbo holds uops
	// that left the pipeline (retired or squashed) but may still be
	// referenced by younger in-flight uops: producers[] and mrnStore only
	// ever point young→old, so a parked uop is reclaimable once every uop
	// fetched before it was parked has itself left the pipeline.
	free  []*uop
	limbo ring[*uop]

	elar *vpred.ELAR

	retired uint64
}

// allocUop returns a zeroed uop, recycling from the pool when possible.
func (t *threadState) allocUop() *uop {
	if len(t.free) == 0 {
		t.reclaimLimbo()
	}
	if n := len(t.free); n > 0 {
		u := t.free[n-1]
		t.free = t.free[:n-1]
		u.reset()
		return u
	}
	return new(uop)
}

// releaseUop parks a uop that left the pipeline. Its fields must stay
// readable (a younger load's valueAvailAt consults its mrnStore's completion
// time even after the store retires), so it only becomes free once no
// in-flight uop can reference it; the seq stamp encodes that horizon.
func (t *threadState) releaseUop(u *uop) {
	u.releasedAtSeq = t.seqCounter
	t.limbo.pushBack(u)
}

// reclaimLimbo moves limbo entries past the reference horizon to the free
// list. Any uop referencing a parked one was fetched before it was parked
// (seq ≤ releasedAtSeq), so once the oldest in-flight seq passes the stamp
// no live reference remains. Stamps are nondecreasing in limbo order, so
// draining stops at the first entry still in the horizon.
func (t *threadState) reclaimLimbo() {
	oldest := t.seqCounter + 1
	if t.rob.len() > 0 {
		oldest = t.rob.front().seq
	} else if t.idq.len() > 0 {
		oldest = t.idq.front().seq
	}
	for t.limbo.len() > 0 && t.limbo.front().releasedAtSeq < oldest {
		t.free = append(t.free, t.limbo.popFront())
	}
}

// memDepEntry is a store-set-style conflict predictor entry.
type memDepEntry struct {
	pc    uint64
	conf  uint8
	valid bool
}

// mrnEntry predicts the store-buffer distance a load forwards from.
type mrnEntry struct {
	pc       uint64
	dist     int
	conf     uint8
	misses   uint8
	poisoned bool
	valid    bool
}

// Core is one simulated core (1 or 2 hardware threads).
type Core struct {
	cfg Config
	att Attachments

	hier *cache.Hierarchy
	bp   *bpred.Predictor

	threads []*threadState

	cycle    uint64
	rsCount  int
	prfInUse int

	// Attachment dispatch flags and per-thread structure capacities,
	// resolved once in NewCore so the per-uop hot paths branch on plain
	// booleans/ints instead of re-deriving them (nil checks, Config()
	// struct copies, divisions) every cycle.
	hasConstable  bool
	sldReadPorts  int
	sldWritePorts int
	hasEVES       bool
	hasRFP        bool
	hasIdealElim  bool
	hasIdealLVP   bool
	hasStablePCs  bool
	idqCap        int
	robCap        int
	lbCap         int
	sbCap         int
	prfCap        int

	aluPorts  []uint64 // busy-until cycle per port
	loadPorts []uint64
	staPorts  []uint64
	stdPorts  []uint64

	memDep []memDepEntry
	mrn    []mrnEntry

	lastSLDWrites uint64

	// Per-mode retirement counters, indexed by isa.AddrMode. The map-typed
	// Stats views are materialized from these by finalizeStats at the end
	// of Run so the retire stage never hashes a mode string.
	elimByMode          [256]uint64
	retiredStableByMode [256]uint64
	elimStableByMode    [256]uint64

	// flushBuf and srcsBuf are reusable scratch buffers for flushYounger
	// and completeLoad.
	flushBuf []*uop
	srcsBuf  [2]isa.Reg

	// loadPortStableUse marks, for the current cycle, whether any issued
	// load on a port was global-stable (Fig. 6 accounting).
	Stats Stats

	err error
}

// loadPortOccupancy is how many cycles a full load execution holds its
// AGU+load port (address generation + L1-D read slot); AGU-only execution
// (Ideal Stable LVP + data-fetch elimination) holds it for one.
const (
	loadPortOccupancy    = 2
	aguOnlyPortOccupancy = 1
	divPortOccupancy     = 6
)

// NewCore builds a core over the given hierarchy and per-thread streams.
func NewCore(cfg Config, att Attachments, hier *cache.Hierarchy, streams ...Stream) *Core {
	if cfg.Threads != len(streams) {
		panic(fmt.Sprintf("pipeline: config has %d threads but %d streams supplied", cfg.Threads, len(streams)))
	}
	bp := att.BPred
	if bp == nil {
		bp = bpred.New(bpred.DefaultConfig())
	}
	c := &Core{
		cfg:       cfg,
		att:       att,
		hier:      hier,
		bp:        bp,
		aluPorts:  make([]uint64, cfg.NumALUPorts),
		loadPorts: make([]uint64, cfg.NumLoadPorts),
		staPorts:  make([]uint64, cfg.NumStaPorts),
		stdPorts:  make([]uint64, cfg.NumStdPorts),
		memDep:    make([]memDepEntry, 4096),
		mrn:       make([]mrnEntry, 4096),
	}
	c.Stats.EliminatedByMode = make(map[string]uint64)
	c.Stats.RetiredStableByMode = make(map[string]uint64)
	c.Stats.EliminatedStableByMode = make(map[string]uint64)

	c.hasConstable = att.Constable != nil
	if c.hasConstable {
		ccfg := att.Constable.Config()
		c.sldReadPorts = ccfg.SLDReadPorts
		c.sldWritePorts = ccfg.SLDWritePorts
	}
	if att.L1Prefetch != nil {
		hier.SetL1Prefetcher(att.L1Prefetch)
	}
	if att.L1DPred != nil {
		hier.SetL1DPredictor(att.L1DPred)
	}
	c.hasEVES = att.EVES != nil
	c.hasRFP = att.RFP != nil
	c.hasIdealElim = att.IdealElimPCs != nil
	c.hasIdealLVP = att.IdealLVPPCs != nil
	c.hasStablePCs = att.StablePCs != nil
	c.idqCap = cfg.IDQSize / len(streams)
	c.robCap = cfg.ROBSize / len(streams)
	c.lbCap = cfg.LBSize / len(streams)
	c.sbCap = cfg.SBSize / len(streams)
	c.prfCap = cfg.IntPRF - isa.NumRegsAPX

	for i, s := range streams {
		t := &threadState{index: i, stream: s}
		t.window = newRing[isa.DynInst](256)
		t.idq = newRing[*uop](c.idqCap)
		t.rob = newRing[*uop](c.robCap)
		t.lb = newRing[*uop](c.lbCap)
		t.sb = newRing[*uop](c.sbCap)
		t.readyQ = make([]*uop, 0, cfg.RSSize)
		t.readyHeap.a = make([]completionEvent, 0, cfg.RSSize)
		t.events.a = make([]completionEvent, 0, c.robCap)
		t.limbo = newRing[*uop](c.robCap)
		if att.ELAR != nil {
			// ELAR state is per hardware context: thread 0 uses the caller's
			// instance (so its counters are observable), extra threads get
			// their own trackers.
			if i == 0 {
				t.elar = att.ELAR
			} else {
				t.elar = vpred.NewELAR()
			}
		}
		c.threads = append(c.threads, t)
	}
	// Constable-AMT-I: hook the L1-D eviction stream.
	if att.Constable != nil && att.Constable.Config().InvalidateOnL1Evict {
		prev := hier.L1D.OnEvict
		hier.L1D.OnEvict = func(lineAddr uint64) {
			att.Constable.OnL1Evict(lineAddr)
			if prev != nil {
				prev(lineAddr)
			}
		}
	}
	return c
}

// Hierarchy returns the core's memory hierarchy.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Branch returns the branch predictor (for inspection).
func (c *Core) Branch() *bpred.Predictor { return c.bp }

// Run simulates until every thread's stream is exhausted and drained, or
// until maxCycles total cycles have elapsed. Repeated calls resume where the
// previous one stopped (maxCycles is a cumulative cycle number), so a driver
// can interleave cores cycle-region by cycle-region. It returns an error if
// the golden check ever fails — which would mean Constable returned an
// architecturally-wrong load value.
func (c *Core) Run(maxCycles uint64) error {
	for c.cycle < maxCycles {
		if !c.Step() {
			break
		}
	}
	c.finalizeStats()
	return c.err
}

// Step advances the core by one cycle. It returns false once every stream is
// exhausted and drained, or on a golden-check failure (see Run). Callers
// driving the core by Step should call finalizeStats (via Run, or a final
// zero-budget Run call) before reading the map-typed Stats views.
func (c *Core) Step() bool {
	c.cycle++
	c.retire()
	if c.err != nil {
		return false
	}
	c.complete()
	c.issue()
	c.rename()
	c.fetch()
	c.Stats.Cycles = c.cycle
	c.accountSLDUpdates()
	return !c.done()
}

// finalizeStats materializes the map-typed per-mode Stats views from the
// array counters the retire stage increments. Only modes with nonzero counts
// get keys — counter snapshots depend on the exact key set.
func (c *Core) finalizeStats() {
	c.Stats.EliminatedByMode = modeCounts(&c.elimByMode)
	c.Stats.RetiredStableByMode = modeCounts(&c.retiredStableByMode)
	c.Stats.EliminatedStableByMode = modeCounts(&c.elimStableByMode)
}

func modeCounts(a *[256]uint64) map[string]uint64 {
	m := make(map[string]uint64, 4)
	for i, v := range a {
		if v != 0 {
			m[isa.AddrMode(i).String()] = v
		}
	}
	return m
}

func (c *Core) done() bool {
	for _, t := range c.threads {
		if !t.streamDone || t.rob.len() > 0 || t.idq.len() > 0 {
			return false
		}
		// A flush may have rewound the replay cursor into the window; those
		// instructions still need to be refetched and retired.
		if t.replayPos < t.windowBase+uint64(t.window.len()) {
			return false
		}
	}
	return true
}

// accountSLDUpdates tracks SLD write-port pressure per cycle (Fig. 9a).
func (c *Core) accountSLDUpdates() {
	if !c.hasConstable {
		return
	}
	w := c.att.Constable.Stats.SLDWriteOps
	delta := w - c.lastSLDWrites
	c.lastSLDWrites = w
	if delta > 0 {
		c.Stats.SLDUpdateCycles++
	}
	c.Stats.SLDUpdates += delta
	if delta <= 2 {
		c.Stats.SLDUpdatesLE2Cycles++
	}
}

// InjectSnoop delivers an invalidating snoop to the core: Constable drops
// the AMT entry, the private caches invalidate the line, and — mirroring the
// existing memory-disambiguation logic — any in-flight load whose address
// falls in the line is flushed and re-executed (§6.6).
func (c *Core) InjectSnoop(lineAddr uint64) {
	if c.hasConstable {
		c.att.Constable.OnSnoop(lineAddr)
	}
	c.hier.InvalidateLine(lineAddr)
	for _, t := range c.threads {
		for i := 0; i < t.lb.len(); i++ {
			u := t.lb.at(i)
			if u.squashed || !(u.completed || u.eliminatedLoad()) {
				continue
			}
			if cache.LineAddr(u.effAddr()) == lineAddr {
				c.Stats.OrderingViolations++
				c.flushFrom(u, true)
				break
			}
		}
	}
}

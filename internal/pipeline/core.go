package pipeline

import (
	"fmt"

	"constable/internal/bpred"
	"constable/internal/cache"
	"constable/internal/isa"
	"constable/internal/vpred"
)

// threadState is the per-hardware-thread front-end and in-order state.
type threadState struct {
	stream     Stream
	streamDone bool

	// window holds fetched-but-not-retired committed-path instructions;
	// window[0].Seq == windowBase. replayPos is the dynamic sequence number
	// of the next committed-path instruction to fetch (rewound on flushes).
	window     []isa.DynInst
	windowBase uint64
	replayPos  uint64

	wrongPath       bool
	wpCounter       uint64
	fetchStall      uint64 // no fetch until this cycle
	pendingRedirect *uop

	seqCounter uint64
	// trainedUpTo is the lowest committed-path dynamic sequence number the
	// branch predictor has NOT been trained on; replayed branches after a
	// flush predict without retraining, so history is not double-shifted.
	trainedUpTo uint64
	lastWriter  [isa.NumRegsAPX]*uop

	idq []*uop
	rob []*uop
	lb  []*uop
	sb  []*uop

	elar *vpred.ELAR

	retired uint64
}

// memDepEntry is a store-set-style conflict predictor entry.
type memDepEntry struct {
	pc    uint64
	conf  uint8
	valid bool
}

// mrnEntry predicts the store-buffer distance a load forwards from.
type mrnEntry struct {
	pc       uint64
	dist     int
	conf     uint8
	misses   uint8
	poisoned bool
	valid    bool
}

// Core is one simulated core (1 or 2 hardware threads).
type Core struct {
	cfg Config
	att Attachments

	hier *cache.Hierarchy
	bp   *bpred.Predictor

	threads []*threadState

	cycle    uint64
	rsCount  int
	prfInUse int

	aluPorts  []uint64 // busy-until cycle per port
	loadPorts []uint64
	staPorts  []uint64
	stdPorts  []uint64

	memDep []memDepEntry
	mrn    []mrnEntry

	lastSLDWrites uint64

	// loadPortStableUse marks, for the current cycle, whether any issued
	// load on a port was global-stable (Fig. 6 accounting).
	Stats Stats

	err error
}

// loadPortOccupancy is how many cycles a full load execution holds its
// AGU+load port (address generation + L1-D read slot); AGU-only execution
// (Ideal Stable LVP + data-fetch elimination) holds it for one.
const (
	loadPortOccupancy    = 2
	aguOnlyPortOccupancy = 1
	divPortOccupancy     = 6
)

// NewCore builds a core over the given hierarchy and per-thread streams.
func NewCore(cfg Config, att Attachments, hier *cache.Hierarchy, streams ...Stream) *Core {
	if cfg.Threads != len(streams) {
		panic(fmt.Sprintf("pipeline: config has %d threads but %d streams supplied", cfg.Threads, len(streams)))
	}
	c := &Core{
		cfg:       cfg,
		att:       att,
		hier:      hier,
		bp:        bpred.New(),
		aluPorts:  make([]uint64, cfg.NumALUPorts),
		loadPorts: make([]uint64, cfg.NumLoadPorts),
		staPorts:  make([]uint64, cfg.NumStaPorts),
		stdPorts:  make([]uint64, cfg.NumStdPorts),
		memDep:    make([]memDepEntry, 4096),
		mrn:       make([]mrnEntry, 4096),
	}
	c.Stats.EliminatedByMode = make(map[string]uint64)
	c.Stats.RetiredStableByMode = make(map[string]uint64)
	c.Stats.EliminatedStableByMode = make(map[string]uint64)
	for i, s := range streams {
		t := &threadState{stream: s}
		if att.ELAR != nil {
			// ELAR state is per hardware context: thread 0 uses the caller's
			// instance (so its counters are observable), extra threads get
			// their own trackers.
			if i == 0 {
				t.elar = att.ELAR
			} else {
				t.elar = vpred.NewELAR()
			}
		}
		c.threads = append(c.threads, t)
	}
	// Constable-AMT-I: hook the L1-D eviction stream.
	if att.Constable != nil && att.Constable.Config().InvalidateOnL1Evict {
		prev := hier.L1D.OnEvict
		hier.L1D.OnEvict = func(lineAddr uint64) {
			att.Constable.OnL1Evict(lineAddr)
			if prev != nil {
				prev(lineAddr)
			}
		}
	}
	return c
}

// Hierarchy returns the core's memory hierarchy.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Branch returns the branch predictor (for inspection).
func (c *Core) Branch() *bpred.Predictor { return c.bp }

// perThreadCap returns the statically-partitioned size of a resource.
func (c *Core) perThreadCap(total int) int { return total / len(c.threads) }

// Run simulates until every thread's stream is exhausted and drained, or
// maxCycles elapses. It returns an error if the golden check ever fails —
// which would mean Constable returned an architecturally-wrong load value.
func (c *Core) Run(maxCycles uint64) error {
	for c.cycle = 1; c.cycle <= maxCycles; c.cycle++ {
		c.retire()
		if c.err != nil {
			return c.err
		}
		c.complete()
		c.issue()
		c.rename()
		c.fetch()
		c.Stats.Cycles = c.cycle
		c.accountSLDUpdates()

		if c.done() {
			break
		}
	}
	return c.err
}

func (c *Core) done() bool {
	for _, t := range c.threads {
		if !t.streamDone || len(t.rob) > 0 || len(t.idq) > 0 {
			return false
		}
		// A flush may have rewound the replay cursor into the window; those
		// instructions still need to be refetched and retired.
		if t.replayPos < t.windowBase+uint64(len(t.window)) {
			return false
		}
	}
	return true
}

// accountSLDUpdates tracks SLD write-port pressure per cycle (Fig. 9a).
func (c *Core) accountSLDUpdates() {
	if c.att.Constable == nil {
		return
	}
	w := c.att.Constable.Stats.SLDWriteOps
	delta := w - c.lastSLDWrites
	c.lastSLDWrites = w
	if delta > 0 {
		c.Stats.SLDUpdateCycles++
	}
	c.Stats.SLDUpdates += delta
	if delta <= 2 {
		c.Stats.SLDUpdatesLE2Cycles++
	}
}

// InjectSnoop delivers an invalidating snoop to the core: Constable drops
// the AMT entry, the private caches invalidate the line, and — mirroring the
// existing memory-disambiguation logic — any in-flight load whose address
// falls in the line is flushed and re-executed (§6.6).
func (c *Core) InjectSnoop(lineAddr uint64) {
	if c.att.Constable != nil {
		c.att.Constable.OnSnoop(lineAddr)
	}
	c.hier.InvalidateLine(lineAddr)
	for _, t := range c.threads {
		for _, u := range t.lb {
			if u.squashed || !(u.completed || u.eliminatedLoad()) {
				continue
			}
			if cache.LineAddr(u.effAddr()) == lineAddr {
				c.Stats.OrderingViolations++
				c.flushFrom(u, true)
				break
			}
		}
	}
}

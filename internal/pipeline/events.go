package pipeline

// completionEvent schedules one uop's completed-transition. seq snapshots
// the uop's identity at scheduling time: pooled uops can be recycled while a
// stale event for their squashed previous life is still queued, and the
// (monotonic, never reused) per-thread seq exposes that on pop.
type completionEvent struct {
	due uint64
	seq uint64
	u   *uop
}

// eventHeap is a min-heap ordered by (due, seq). All pending events satisfy
// due >= current cycle (complete drains every due event each cycle), so
// same-cycle pops come out in seq order — the same age order the writeback
// stage would see scanning the ROB.
type eventHeap struct {
	a []completionEvent
}

func (h *eventHeap) len() int               { return len(h.a) }
func (h *eventHeap) peek() *completionEvent { return &h.a[0] }

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].due != h.a[j].due {
		return h.a[i].due < h.a[j].due
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *eventHeap) push(due uint64, u *uop) {
	h.a = append(h.a, completionEvent{due: due, seq: u.seq, u: u})
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *eventHeap) pop() completionEvent {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[n] = completionEvent{} // drop the uop pointer
	h.a = h.a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.less(l, s) {
			s = l
		}
		if r < n && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

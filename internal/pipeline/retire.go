package pipeline

import (
	"fmt"

	"constable/internal/isa"
)

// retire commits up to RetireWidth completed uops in program order,
// round-robin over threads. Loads pass the golden check of §8.5: the value
// (and for eliminated loads, the address) the timing model produced must
// match the functional simulation; a mismatch aborts the run. Stores commit
// their data to the memory hierarchy here.
func (c *Core) retire() {
	retired := 0
	for slot := 0; slot < c.cfg.RetireWidth; slot++ {
		t := c.threads[slot%len(c.threads)]
		if len(t.rob) == 0 {
			continue
		}
		u := t.rob[0]
		if !u.completed || u.completeAt > c.cycle || u.wrongPath {
			continue
		}
		if err := c.goldenCheck(u); err != nil {
			c.err = err
			return
		}
		c.retireOne(t, u)
		retired++
	}
	_ = retired
}

// goldenCheck verifies every retiring load against the functional model.
func (c *Core) goldenCheck(u *uop) error {
	if !u.isLoad() {
		return nil
	}
	c.Stats.GoldenChecks++
	if u.eliminatedLoad() {
		if u.elimValue != u.dyn.Value || u.elimAddr != u.dyn.Addr {
			return fmt.Errorf(
				"golden check failed: eliminated load pc=%#x seq=%d: got value=%#x addr=%#x, functional value=%#x addr=%#x",
				u.dyn.PC, u.dyn.Seq, u.elimValue, u.elimAddr, u.dyn.Value, u.dyn.Addr)
		}
	}
	return nil
}

func (c *Core) retireOne(t *threadState, u *uop) {
	t.rob = t.rob[1:]
	c.Stats.Retired++
	c.Stats.RetiredPerThread[u.thread]++
	t.retired++

	// Simulated context switch: the physical mapping changes, so Constable
	// must drop every armed elimination and its monitor tables (§6.7.3).
	if iv := c.cfg.ContextSwitchInterval; iv != 0 && c.Stats.Retired%iv == 0 {
		c.Stats.ContextSwitches++
		if c.att.Constable != nil {
			c.att.Constable.OnContextSwitch()
		}
	}

	if u.dyn.Dst != isa.RegNone && u.elim != elimMove && u.elim != elimConstable && u.elim != elimIdeal {
		c.prfInUse--
	}
	if u.usesXPRF && c.att.Constable != nil {
		c.att.Constable.ReleaseXPRF()
	}

	switch {
	case u.isLoad():
		c.Stats.RetiredLoads++
		if len(t.lb) > 0 && t.lb[0] == u {
			t.lb = t.lb[1:]
		} else {
			t.lb = removeUop(t.lb, u)
		}
		if u.eliminatedLoad() {
			c.Stats.EliminatedLoads++
			c.Stats.EliminatedByMode[u.dyn.Mode.String()]++
		}
		if c.att.StablePCs != nil {
			mode := u.dyn.Mode.String()
			if c.att.StablePCs[u.dyn.PC] {
				c.Stats.RetiredStableByMode[mode]++
				if u.eliminatedLoad() {
					c.Stats.EliminatedStableByMode[mode]++
				}
			} else if u.eliminatedLoad() {
				c.Stats.EliminatedNonStable++
			}
		}
		if u.valuePred || u.idealLVP {
			c.Stats.ValuePredicted++
		}
	case u.isStore():
		c.Stats.RetiredStores++
		if len(t.sb) > 0 && t.sb[0] == u {
			t.sb = t.sb[1:]
		} else {
			t.sb = removeUop(t.sb, u)
		}
		// The store's data becomes globally visible: write the hierarchy
		// (and, through it, the coherence directory).
		c.hier.Store(u.dyn.Addr)
	}

	// Clear the last-writer entry if this uop is still the newest writer
	// (its value now lives in the architectural state, always ready).
	if u.dyn.Dst != isa.RegNone && t.lastWriter[u.dyn.Dst] == u {
		t.lastWriter[u.dyn.Dst] = nil
	}

	// Trim the replay window: everything at or before this committed-path
	// instruction can never be refetched.
	if u.dyn.Seq == t.windowBase && len(t.window) > 0 {
		t.window = t.window[1:]
		t.windowBase++
	}
}

func removeUop(s []*uop, u *uop) []*uop {
	for i, x := range s {
		if x == u {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

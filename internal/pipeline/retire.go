package pipeline

import (
	"fmt"

	"constable/internal/isa"
)

// retire commits up to RetireWidth completed uops in program order,
// round-robin over threads. Loads pass the golden check of §8.5: the value
// (and for eliminated loads, the address) the timing model produced must
// match the functional simulation; a mismatch aborts the run. Stores commit
// their data to the memory hierarchy here.
func (c *Core) retire() {
	nThreads := len(c.threads)
	for slot := 0; slot < c.cfg.RetireWidth; slot++ {
		t := c.threads[slot%nThreads]
		if t.rob.len() == 0 {
			// A skipped slot changes no state, so with one thread the later
			// slots of the group can't succeed either.
			if nThreads == 1 {
				break
			}
			continue
		}
		u := t.rob.front()
		if !u.completed || u.completeAt > c.cycle || u.wrongPath {
			if nThreads == 1 {
				break
			}
			continue
		}
		if err := c.goldenCheck(u); err != nil {
			c.err = err
			return
		}
		c.retireOne(t, u)
	}
}

// goldenCheck verifies every retiring load against the functional model.
func (c *Core) goldenCheck(u *uop) error {
	if !u.isLoad() {
		return nil
	}
	c.Stats.GoldenChecks++
	if u.eliminatedLoad() {
		if u.elimValue != u.dyn.Value || u.elimAddr != u.dyn.Addr {
			return fmt.Errorf(
				"golden check failed: eliminated load pc=%#x seq=%d: got value=%#x addr=%#x, functional value=%#x addr=%#x",
				u.dyn.PC, u.dyn.Seq, u.elimValue, u.elimAddr, u.dyn.Value, u.dyn.Addr)
		}
	}
	return nil
}

func (c *Core) retireOne(t *threadState, u *uop) {
	t.rob.popFront()
	c.Stats.Retired++
	c.Stats.RetiredPerThread[u.thread]++
	t.retired++

	// Simulated context switch: the physical mapping changes, so Constable
	// must drop every armed elimination and its monitor tables (§6.7.3).
	if iv := c.cfg.ContextSwitchInterval; iv != 0 && c.Stats.Retired%iv == 0 {
		c.Stats.ContextSwitches++
		if c.hasConstable {
			c.att.Constable.OnContextSwitch()
		}
	}

	if u.dyn.Dst != isa.RegNone && u.elim != elimMove && u.elim != elimConstable && u.elim != elimIdeal {
		c.prfInUse--
	}
	if u.usesXPRF && c.hasConstable {
		c.att.Constable.ReleaseXPRF()
	}

	switch {
	case u.isLoad():
		c.Stats.RetiredLoads++
		if t.lb.len() > 0 && t.lb.front() == u {
			t.lb.popFront()
		} else {
			// Older wrong-path loads can sit ahead of u in the LB (they
			// never retire and only leave via a flush), so remove from the
			// middle when needed.
			removeFromRing(&t.lb, u)
		}
		if u.eliminatedLoad() {
			c.Stats.EliminatedLoads++
			c.elimByMode[u.dyn.Mode]++
		}
		if c.hasStablePCs {
			if c.att.StablePCs[u.dyn.PC] {
				c.retiredStableByMode[u.dyn.Mode]++
				if u.eliminatedLoad() {
					c.elimStableByMode[u.dyn.Mode]++
				}
			} else if u.eliminatedLoad() {
				c.Stats.EliminatedNonStable++
			}
		}
		if u.valuePred || u.idealLVP {
			c.Stats.ValuePredicted++
		}
	case u.isStore():
		c.Stats.RetiredStores++
		if t.sb.len() > 0 && t.sb.front() == u {
			t.sb.popFront()
		} else {
			removeFromRing(&t.sb, u)
		}
		// The store's data becomes globally visible: write the hierarchy
		// (and, through it, the coherence directory).
		c.hier.Store(u.dyn.Addr)
	}

	// Clear the last-writer entry if this uop is still the newest writer
	// (its value now lives in the architectural state, always ready). With
	// pooled uops this is load-bearing: a recycled uop must never be
	// reachable from the rename table.
	if u.dyn.Dst != isa.RegNone && t.lastWriter[u.dyn.Dst] == u {
		t.lastWriter[u.dyn.Dst] = nil
	}

	// Trim the replay window: everything at or before this committed-path
	// instruction can never be refetched.
	if u.dyn.Seq == t.windowBase && t.window.len() > 0 {
		t.window.popFront()
		t.windowBase++
	}

	// The uop has left every pipeline structure (its rs entry dropped at
	// issue, its completion event fired); park it for recycling.
	t.releaseUop(u)
}

func removeFromRing(r *ring[*uop], u *uop) {
	for i := 0; i < r.len(); i++ {
		if r.at(i) == u {
			r.removeAt(i)
			return
		}
	}
}

package pipeline

// complete handles the writeback stage: uops whose execution finishes this
// cycle become completed; loads train the value predictors and Constable's
// SLD, verify value speculation (EVES, MRN), and mispredicted branches
// resolve and redirect the front end.
//
// The stage drains the thread's completion-event heap instead of scanning
// renamed-but-not-completed uops: every pending event has due >= the current
// cycle (due events are popped the cycle they mature), so same-cycle pops
// come out in seq order — the age order a ROB scan would visit. Events whose
// uop was squashed (or recycled into a new instruction, detected by the seq
// snapshot) are dropped on pop; completeOne may flush mid-drain, which only
// ever squashes uops younger than the one completing.
func (c *Core) complete() {
	for _, t := range c.threads {
		for t.events.len() > 0 && t.events.peek().due <= c.cycle {
			ev := t.events.pop()
			u := ev.u
			if u.seq != ev.seq || u.squashed || u.completed {
				continue
			}
			if u.renameComplete() {
				u.completed = true
				u.completeAt = u.renamedAt + 1
				continue
			}
			u.completed = true
			if u.availAt == farFuture && !(u.mrnPred && u.mrnStore != nil) {
				u.availAt = u.completeAt
			}
			c.completeOne(t, u)
			if c.err != nil {
				return
			}
		}
	}
}

func (c *Core) completeOne(t *threadState, u *uop) {
	if u.isLoad() && !u.wrongPath {
		c.completeLoad(t, u)
		return
	}

	// Wrong-path loads still train nothing architectural; stores and ALU
	// uops have no writeback-side work beyond branch resolution.
	if u.isBranch() && t.pendingRedirect == u {
		c.resolveMispredict(t, u)
	}
}

// completeLoad runs the writeback-side work of a committed-path load.
func (c *Core) completeLoad(t *threadState, u *uop) {
	d := &u.dyn

	// EVES verification and training.
	if c.hasEVES {
		if c.att.EVES.Train(d.PC, d.Value, u.valuePred, u.predVal) {
			// Value mispredict: dependents consumed a wrong value; flush
			// everything younger than the load and refetch.
			c.Stats.ValueMispredicts++
			c.flushFrom(u, false)
		}
	}

	// RFP verification and training.
	if c.hasRFP {
		c.att.RFP.Train(d.PC, d.Addr, u.rfpPred, u.rfpAddr)
	}

	// Memory-renaming verification: the predicted forwarding store must be
	// the architectural producer of the loaded value.
	if u.mrnPred {
		correct := u.mrnStore != nil && !u.mrnStore.squashed && !u.mrnStore.wrongPath &&
			d.ProducerStore != 0 && u.mrnStore.dyn.Seq == d.ProducerStore
		if !correct {
			c.Stats.MRNMispredicts++
			c.mrnTrain(d.PC, 0, false, true)
			c.flushFrom(u, false)
		} else {
			c.mrnTrain(d.PC, c.sbDistance(t, u), true, true)
		}
	} else if c.cfg.MemoryRenaming && d.ProducerStore != 0 {
		// Train the distance when the producer store is still in flight.
		if dist := c.sbDistance(t, u); dist > 0 {
			c.mrnTrain(d.PC, dist, true, false)
		}
	}

	// Constable SLD training and arming ( 4 / 5 / 6 in Fig. 8): only
	// non-eliminated loads execute and reach this point.
	if c.hasConstable {
		srcs := d.SrcRegs(c.srcsBuf[:0])
		c.att.Constable.OnLoadWriteback(d.PC, d.Addr, d.Value, srcs, u.likelyStable, u.thread)
		// CV-bit pinning: when a likely-stable load's memory request
		// returns, pin the own core's CV bit in the directory (§6.6).
		if u.likelyStable && c.hier.Directory != nil {
			c.hier.Directory.Pin(c.hier.CoreID, d.Addr/64)
		}
	}
}

// sbDistance returns the store-buffer distance (1 = youngest older store)
// of the load's architectural producer store, or 0 when it is not in flight.
func (c *Core) sbDistance(t *threadState, u *uop) int {
	if u.dyn.ProducerStore == 0 {
		return 0
	}
	for i := t.sb.len() - 1; i >= 0; i-- {
		s := t.sb.at(i)
		if s.squashed || s.seq >= u.seq {
			continue
		}
		if s.dyn.Seq == u.dyn.ProducerStore {
			return t.sb.len() - i
		}
	}
	return 0
}

// resolveMispredict ends wrong-path fetch: everything younger than the
// branch is squashed and the front end restarts at the correct target after
// the redirect penalty.
func (c *Core) resolveMispredict(t *threadState, u *uop) {
	t.pendingRedirect = nil
	t.wrongPath = false
	c.flushAfter(u)
	t.replayPos = u.dyn.Seq + 1
	t.fetchStall = c.cycle + uint64(c.cfg.RedirectPenalty)
	c.Stats.Flushes++
}

package pipeline

import (
	"testing"

	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/fsim"
	"constable/internal/workload"
)

// runWorkload simulates n committed-path instructions of the named suite
// workload under the given attachments and returns the core.
func runWorkload(t testing.TB, spec *workload.Spec, att Attachments, cfg Config, n uint64) *Core {
	t.Helper()
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(cfg, att, cache.NewHierarchy(cache.DefaultHierarchyConfig()), fsim.NewStream(cpu, n))
	if err := core.Run(n * 40); err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	return core
}

func TestSmokeBaseline(t *testing.T) {
	spec := workload.SmallSuite()[0]
	core := runWorkload(t, spec, Attachments{}, DefaultConfig(), 30_000)
	st := &core.Stats
	if st.Retired != 30_000 {
		t.Fatalf("retired %d of 30000 (cycles=%d, done=%v)", st.Retired, st.Cycles, core.done())
	}
	ipc := st.IPC()
	if ipc < 0.5 || ipc > 6 {
		t.Errorf("IPC %.2f implausible", ipc)
	}
	if st.RetiredLoads == 0 || st.Branches == 0 {
		t.Errorf("loads=%d branches=%d", st.RetiredLoads, st.Branches)
	}
	t.Logf("%s: IPC=%.2f cycles=%d loads=%d mispredicts=%d flushes=%d",
		spec.Name, ipc, st.Cycles, st.RetiredLoads, st.BranchMispredicts, st.Flushes)
}

func TestSmokeConstable(t *testing.T) {
	spec := workload.SmallSuite()[0]
	base := runWorkload(t, spec, Attachments{}, DefaultConfig(), 30_000)
	cons := runWorkload(t, spec,
		Attachments{Constable: constable.New(constable.DefaultConfig())},
		DefaultConfig(), 30_000)
	if cons.Stats.EliminatedLoads == 0 {
		t.Fatalf("Constable eliminated no loads (SLD lookups=%d, likely-stable=%d, canElimSets=%d)",
			cons.att.Constable.Stats.SLDLookups,
			cons.att.Constable.Stats.LikelyStableExec,
			cons.att.Constable.Stats.CanElimSets)
	}
	t.Logf("baseline IPC=%.3f constable IPC=%.3f eliminated=%d/%d violations=%d",
		base.Stats.IPC(), cons.Stats.IPC(),
		cons.Stats.EliminatedLoads, cons.Stats.RetiredLoads,
		cons.Stats.EliminatedThatViolated)
}

package pipeline

import "testing"

func ringContents(r *ring[int]) []int {
	out := make([]int, 0, r.len())
	for i := 0; i < r.len(); i++ {
		out = append(out, r.at(i))
	}
	return out
}

func wantContents(t *testing.T, r *ring[int], want ...int) {
	t.Helper()
	got := ringContents(r)
	if len(got) != len(want) {
		t.Fatalf("len = %d (%v), want %d (%v)", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents = %v, want %v", got, want)
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	r := newRing[int](4)
	// Fill, drain half, refill: the head wraps past the buffer end.
	for i := 1; i <= 4; i++ {
		r.pushBack(i)
	}
	if r.popFront() != 1 || r.popFront() != 2 {
		t.Fatal("popFront order wrong")
	}
	r.pushBack(5)
	r.pushBack(6)
	wantContents(t, &r, 3, 4, 5, 6)
	if r.front() != 3 || r.back() != 6 {
		t.Fatalf("front/back = %d/%d, want 3/6", r.front(), r.back())
	}
}

func TestRingGrowth(t *testing.T) {
	r := newRing[int](2)
	// Force growth from a wrapped state so re-linearization is exercised.
	r.pushBack(1)
	r.pushBack(2)
	r.popFront()
	r.pushBack(3) // wrapped: physical order [3, 2]
	for i := 4; i <= 40; i++ {
		r.pushBack(i)
	}
	want := make([]int, 0, 39)
	for i := 2; i <= 40; i++ {
		want = append(want, i)
	}
	wantContents(t, &r, want...)
}

func TestRingCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	for _, cap := range []int{0, 1, 3, 5, 97} {
		r := newRing[int](cap)
		for i := 0; i < 2*cap+3; i++ {
			r.pushBack(i)
		}
		if got := r.len(); got != 2*cap+3 {
			t.Fatalf("cap %d: len = %d, want %d", cap, got, 2*cap+3)
		}
	}
}

func TestRingPopBackAndTruncate(t *testing.T) {
	r := newRing[int](4)
	for i := 1; i <= 6; i++ {
		r.pushBack(i)
	}
	if r.popBack() != 6 {
		t.Fatal("popBack != 6")
	}
	r.truncate(3)
	wantContents(t, &r, 1, 2, 3)
	r.truncate(0)
	if r.len() != 0 {
		t.Fatalf("len after truncate(0) = %d", r.len())
	}
	// The ring must be fully reusable after emptying.
	r.pushBack(9)
	wantContents(t, &r, 9)
}

func TestRingRemoveAt(t *testing.T) {
	r := newRing[int](4)
	for i := 1; i <= 5; i++ { // wrapped after growth path
		r.pushBack(i)
	}
	r.popFront()
	r.removeAt(1) // remove 3 from [2 3 4 5]
	wantContents(t, &r, 2, 4, 5)
	r.removeAt(2) // remove the back element
	wantContents(t, &r, 2, 4)
	r.removeAt(0) // remove the front element
	wantContents(t, &r, 4)
}

func TestRingZeroesVacatedSlots(t *testing.T) {
	// Pointer rings must not retain references in vacated slots (the pool
	// depends on released uops becoming collectible once reclaimed).
	r := newRing[*int](2)
	x := new(int)
	r.pushBack(x)
	r.popFront()
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("popFront left a live pointer in the buffer")
		}
	}
	r.pushBack(x)
	r.popBack()
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("popBack left a live pointer in the buffer")
		}
	}
	r.pushBack(x)
	r.truncate(0)
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("truncate left a live pointer in the buffer")
		}
	}
}

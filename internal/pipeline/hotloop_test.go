package pipeline

import (
	"testing"

	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/fsim"
	"constable/internal/isa"
	"constable/internal/prog"
)

// mixedLoop is a program exercising the structures the pool interacts with:
// register dependencies, a store/load pair (store buffer, forwarding, memory
// renaming) and a folded back-edge.
func mixedLoop() *prog.Program {
	b := prog.NewBuilder("mixed")
	ctr := prog.GlobalBase
	b.SetMem(ctr, 0)
	b.MovImm(isa.R6, int64(ctr))
	b.Label("loop")
	b.Load(isa.R9, isa.R6, 0)
	b.ALUImm(isa.ALUInc, isa.R9, isa.R9, 0)
	b.Store(isa.R6, 0, isa.R9)
	b.ALUImm(isa.ALUAdd, isa.R10, isa.R10, 1)
	b.Mov(isa.R11, isa.R10)
	b.Jump("loop")
	return b.MustBuild()
}

// TestRetiredUopUnreachableFromRenameState is the regression test for the
// lastWriter-clearing bugfix: once a uop retires (and its pooled object can
// be recycled), the rename table must not reach it anymore. The invariant
// checked each cycle is stronger: every non-nil lastWriter entry refers to a
// live, un-squashed ROB resident.
func TestRetiredUopUnreachableFromRenameState(t *testing.T) {
	core := NewCore(DefaultConfig(),
		Attachments{Constable: constable.New(constable.DefaultConfig())},
		cache.NewHierarchy(cache.DefaultHierarchyConfig()),
		fsim.NewStream(fsim.New(mixedLoop()), 3000))

	for core.Step() {
		for _, th := range core.threads {
			for reg, w := range th.lastWriter {
				if w == nil {
					continue
				}
				if w.squashed {
					t.Fatalf("cycle %d: lastWriter[%d] is a squashed uop (seq %d)",
						core.cycle, reg, w.seq)
				}
				inROB := false
				for i := 0; i < th.rob.len(); i++ {
					if th.rob.at(i) == w {
						inROB = true
						break
					}
				}
				if !inROB {
					t.Fatalf("cycle %d: lastWriter[%d] (seq %d) is not in the ROB — retired or recycled uop reachable from rename state",
						core.cycle, reg, w.seq)
				}
			}
		}
	}
	core.finalizeStats()
	if core.err != nil {
		t.Fatal(core.err)
	}
	if core.Stats.Retired != 3000 {
		t.Fatalf("retired %d of 3000", core.Stats.Retired)
	}
	// After the drain every instruction has retired; nothing may linger.
	for _, th := range core.threads {
		for reg, w := range th.lastWriter {
			if w != nil {
				t.Errorf("drained core still has lastWriter[%d] = seq %d", reg, w.seq)
			}
		}
	}
}

// TestSteadyStateCycleAllocations asserts the tentpole property: after
// warmup, stepping the core allocates (almost) nothing — the uop pool, the
// ring buffers and the event/ready structures reach a steady footprint.
func TestSteadyStateCycleAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted by the race detector")
	}
	core := NewCore(DefaultConfig(),
		Attachments{Constable: constable.New(constable.DefaultConfig())},
		cache.NewHierarchy(cache.DefaultHierarchyConfig()),
		fsim.NewStream(fsim.New(mixedLoop()), 40_000_000))

	// Warm up: let pools, rings, predictor tables and cache structures grow
	// to their steady-state capacity.
	for i := 0; i < 50_000; i++ {
		if !core.Step() {
			t.Fatal("stream drained during warmup")
		}
	}

	avg := testing.AllocsPerRun(20_000, func() {
		core.Step()
	})
	if core.err != nil {
		t.Fatal(core.err)
	}
	// ~0 per cycle: the occasional map/slice growth deep in a predictor or
	// cache is tolerated, a per-uop or per-cycle allocation is not.
	if avg > 0.01 {
		t.Errorf("steady-state allocations = %.4f per cycle, want ~0", avg)
	}
}

package fsim

import (
	"testing"
	"testing/quick"

	"constable/internal/isa"
	"constable/internal/prog"
)

// buildLoop returns a tiny counted loop program:
//
//	r8 = n
//	loop: r9 += 1; r8 -= 1; br r8, loop
//	jmp loop0 (infinite outer)
func buildLoop(n int64) *prog.Program {
	b := prog.NewBuilder("loop")
	b.Label("outer")
	b.MovImm(isa.R8, n)
	b.Zero(isa.R9)
	b.Label("loop")
	b.ALUImm(isa.ALUInc, isa.R9, isa.R9, 0)
	b.ALUImm(isa.ALUDec, isa.R8, isa.R8, 0)
	b.Branch(isa.R8, "loop")
	b.Jump("outer")
	return b.MustBuild()
}

func TestCountedLoop(t *testing.T) {
	cpu := New(buildLoop(5))
	// Execute one full outer iteration: movi, zero, then 5×(inc,dec,br), jmp.
	var branches, takens int
	for i := 0; i < 2+5*3+1; i++ {
		d := cpu.Step()
		if d.Op == isa.OpBranch {
			branches++
			if d.Taken {
				takens++
			}
		}
	}
	if branches != 5 || takens != 4 {
		t.Errorf("got %d branches (%d taken), want 5 (4 taken)", branches, takens)
	}
	if got := cpu.Reg(isa.R9); got != 5 {
		t.Errorf("r9 = %d, want 5", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := prog.NewBuilder("ldst")
	addr := prog.HeapBase
	b.Label("outer")
	b.MovImm(isa.R6, int64(addr))
	b.MovImm(isa.R7, 1234)
	b.Store(isa.R6, 0, isa.R7)
	b.Load(isa.R9, isa.R6, 0)
	b.Jump("outer")
	cpu := New(b.MustBuild())

	var st, ld isa.DynInst
	for i := 0; i < 4; i++ {
		d := cpu.Step()
		switch d.Op {
		case isa.OpStore:
			st = d
		case isa.OpLoad:
			ld = d
		}
	}
	if st.Addr != addr || st.Value != 1234 {
		t.Errorf("store = %+v", st)
	}
	if ld.Addr != addr || ld.Value != 1234 {
		t.Errorf("load = %+v", ld)
	}
	if ld.ProducerStore != st.Seq {
		t.Errorf("load producer = %d, want store seq %d", ld.ProducerStore, st.Seq)
	}
}

func TestSilentStoreDetection(t *testing.T) {
	b := prog.NewBuilder("silent")
	b.Label("outer")
	b.MovImm(isa.R6, int64(prog.GlobalBase))
	b.MovImm(isa.R7, 7)
	b.Store(isa.R6, 0, isa.R7)
	b.Jump("outer")
	cpu := New(b.MustBuild())

	var stores []isa.DynInst
	for len(stores) < 3 {
		d := cpu.Step()
		if d.Op == isa.OpStore {
			stores = append(stores, d)
		}
	}
	if stores[0].Silent {
		t.Error("first store must not be silent")
	}
	if !stores[1].Silent || !stores[2].Silent {
		t.Error("repeated identical stores must be silent")
	}
}

func TestPCRelativeLoadHasStableAddress(t *testing.T) {
	b := prog.NewBuilder("pcrel")
	g := prog.GlobalBase + 0x100
	b.SetMem(g, 0xDEAD)
	b.Label("outer")
	b.LoadGlobal(isa.R9, g)
	b.Jump("outer")
	cpu := New(b.MustBuild())

	for i := 0; i < 6; i++ {
		d := cpu.Step()
		if d.Op != isa.OpLoad {
			continue
		}
		if d.Mode != isa.AddrPCRel {
			t.Fatalf("mode = %v", d.Mode)
		}
		if d.Addr != g || d.Value != 0xDEAD {
			t.Fatalf("instance %d: addr=%#x value=%#x", i, d.Addr, d.Value)
		}
		if d.Src1 != isa.RegNone {
			t.Fatal("PC-relative load must have no source register")
		}
	}
}

func TestCallRet(t *testing.T) {
	b := prog.NewBuilder("callret")
	b.Label("outer")
	b.Call("fn")
	b.ALUImm(isa.ALUInc, isa.R10, isa.R10, 0) // return lands here
	b.Jump("outer")
	b.Label("fn")
	b.ALUImm(isa.ALUInc, isa.R9, isa.R9, 0)
	b.Ret()
	cpu := New(b.MustBuild())

	for i := 0; i < 10; i++ {
		d := cpu.Step()
		if d.Op == isa.OpRet && !d.Taken {
			t.Error("ret must be taken")
		}
	}
	if cpu.Reg(isa.R9) != cpu.Reg(isa.R10) {
		t.Errorf("call body ran %d times but return path %d times",
			cpu.Reg(isa.R9), cpu.Reg(isa.R10))
	}
}

func TestDivByZero(t *testing.T) {
	b := prog.NewBuilder("div0")
	b.Label("outer")
	b.MovImm(isa.R6, 10)
	b.Zero(isa.R7)
	b.Div(isa.R9, isa.R6, isa.R7)
	b.Jump("outer")
	cpu := New(b.MustBuild())
	for i := 0; i < 4; i++ {
		cpu.Step()
	}
	if got := cpu.Reg(isa.R9); got != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all-ones", got)
	}
}

func TestInitialWordDeterministic(t *testing.T) {
	f := func(addr uint64) bool {
		return InitialWord(addr) == InitialWord(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if InitialWord(8) == InitialWord(16) {
		t.Error("distinct addresses should give distinct initial words")
	}
}

func TestUninitializedLoadIsStable(t *testing.T) {
	b := prog.NewBuilder("uninit")
	b.Label("outer")
	b.MovImm(isa.R6, int64(prog.HeapBase+0x7000))
	b.Load(isa.R9, isa.R6, 0)
	b.Jump("outer")
	cpu := New(b.MustBuild())
	var first uint64
	seen := 0
	for seen < 3 {
		d := cpu.Step()
		if d.Op != isa.OpLoad {
			continue
		}
		if seen == 0 {
			first = d.Value
		} else if d.Value != first {
			t.Fatalf("uninitialized load value changed: %#x vs %#x", d.Value, first)
		}
		seen++
	}
	if first != InitialWord(prog.HeapBase+0x7000) {
		t.Error("uninitialized load must return InitialWord")
	}
}

func TestStreamBounds(t *testing.T) {
	s := NewStream(New(buildLoop(3)), 10)
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("stream yielded %d instructions, want 10", n)
	}
	if s.CPU().Seq() != 10 {
		t.Errorf("cpu seq = %d", s.CPU().Seq())
	}
}

func TestALUFunctions(t *testing.T) {
	cases := []struct {
		fn   isa.ALUFn
		a, b uint64
		want uint64
	}{
		{isa.ALUAdd, 3, 4, 7},
		{isa.ALUSub, 9, 4, 5},
		{isa.ALUXor, 0xF0, 0x0F, 0xFF},
		{isa.ALUAnd, 0xF0, 0x3C, 0x30},
		{isa.ALUOr, 0xF0, 0x0F, 0xFF},
		{isa.ALUShl, 1, 4, 16},
		{isa.ALUCmpLT, 2, 3, 1},
		{isa.ALUCmpLT, 3, 2, 0},
		{isa.ALUDec, 5, 0, 4},
		{isa.ALUInc, 5, 0, 6},
	}
	for _, tc := range cases {
		b := prog.NewBuilder("alu")
		b.Label("outer")
		b.MovImm(isa.R1, int64(tc.a))
		b.MovImm(isa.R2, int64(tc.b))
		b.ALU(tc.fn, isa.R3, isa.R1, isa.R2)
		b.Jump("outer")
		cpu := New(b.MustBuild())
		for i := 0; i < 3; i++ {
			cpu.Step()
		}
		if got := cpu.Reg(isa.R3); got != tc.want {
			t.Errorf("fn %d: got %d, want %d", tc.fn, got, tc.want)
		}
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	cpu := New(buildLoop(4))
	var prev uint64
	for i := 0; i < 50; i++ {
		d := cpu.Step()
		if i > 0 && d.Seq != prev+1 {
			t.Fatalf("seq jumped from %d to %d", prev, d.Seq)
		}
		prev = d.Seq
	}
}

// Package fsim is the functional simulator: it interprets a prog.Program,
// maintaining an architectural register file and a word-granular memory
// image, and emits the dynamic instruction stream that drives the timing
// model. Because every load value is produced by genuine interpretation
// (the last store to the word, or a deterministic initial value), the
// timing model's golden check at retirement can verify that Constable's
// eliminated loads return architecturally-correct values — the same
// methodology as the paper's functional-vs-microarchitectural match (§8.5).
package fsim

import (
	"fmt"

	"constable/internal/isa"
	"constable/internal/prog"
)

// CPU is the functional interpreter state. Create one with New and call
// Step repeatedly; each Step executes exactly one instruction and returns
// its dynamic record.
type CPU struct {
	program *prog.Program
	regs    [isa.NumRegsAPX]uint64
	mem     map[uint64]uint64
	// lastStore maps a word address to the Seq of the dynamic store that
	// last wrote it, for memory-renaming training and verification.
	lastStore map[uint64]uint64
	callStack []int
	pcIdx     int
	seq       uint64

	// counters
	dynLoads  uint64
	dynStores uint64
}

// New returns a CPU ready to execute p from its entry point.
func New(p *prog.Program) *CPU {
	c := &CPU{
		program:   p,
		mem:       make(map[uint64]uint64, len(p.InitMem)*2),
		lastStore: make(map[uint64]uint64),
		pcIdx:     p.Entry,
	}
	for r, v := range p.InitRegs {
		c.regs[r] = v
	}
	for a, v := range p.InitMem {
		c.mem[a] = v
	}
	return c
}

// Program returns the program being interpreted.
func (c *CPU) Program() *prog.Program { return c.program }

// Seq returns the number of instructions executed so far.
func (c *CPU) Seq() uint64 { return c.seq }

// DynLoads returns the number of dynamic loads executed so far.
func (c *CPU) DynLoads() uint64 { return c.dynLoads }

// DynStores returns the number of dynamic stores executed so far.
func (c *CPU) DynStores() uint64 { return c.dynStores }

// Reg returns the current architectural value of r.
func (c *CPU) Reg(r isa.Reg) uint64 { return c.regs[r] }

// InitialWord returns the deterministic value a memory word holds before
// any store writes it: a mix of its address. This keeps uninitialized loads
// stable and reproducible, mirroring a zero-filled or statically-initialized
// data segment.
func InitialWord(addr uint64) uint64 {
	return mix64(addr ^ 0x9E3779B97F4A7C15)
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// ReadMem returns the current architectural value of the word at addr.
func (c *CPU) ReadMem(addr uint64) uint64 {
	if v, ok := c.mem[addr]; ok {
		return v
	}
	return InitialWord(addr)
}

func alignWord(addr uint64) uint64 { return addr &^ (isa.WordBytes - 1) }

// Step interprets the next instruction and returns its dynamic record.
func (c *CPU) Step() isa.DynInst {
	if c.pcIdx < 0 || c.pcIdx >= len(c.program.Code) {
		panic(fmt.Sprintf("fsim: PC index %d out of range in %q (fell off the code image; workloads must loop)",
			c.pcIdx, c.program.Name))
	}
	in := &c.program.Code[c.pcIdx]
	d := isa.DynInst{
		Seq:  c.seq,
		PC:   prog.PCOf(c.pcIdx),
		Op:   in.Op,
		Fn:   in.Fn,
		Dst:  in.Dst,
		Src1: in.Src1,
		Src2: in.Src2,
		Mode: in.Mode,
	}
	c.seq++
	next := c.pcIdx + 1

	switch in.Op {
	case isa.OpNop:
		// nothing
	case isa.OpALU:
		d.Value = c.alu(in)
		c.regs[in.Dst] = d.Value
	case isa.OpMul:
		d.Value = c.regs[in.Src1] * c.regs[in.Src2]
		c.regs[in.Dst] = d.Value
	case isa.OpDiv:
		den := c.regs[in.Src2]
		if den == 0 {
			d.Value = ^uint64(0)
		} else {
			d.Value = c.regs[in.Src1] / den
		}
		c.regs[in.Dst] = d.Value
	case isa.OpFP:
		// A deterministic non-trivial mixing function standing in for FP math.
		d.Value = mix64(c.regs[in.Src1] + 3*c.regs[in.Src2])
		c.regs[in.Dst] = d.Value
	case isa.OpMovImm:
		d.Value = uint64(in.Imm)
		c.regs[in.Dst] = d.Value
	case isa.OpMov:
		d.Value = c.regs[in.Src1]
		c.regs[in.Dst] = d.Value
	case isa.OpLoad:
		d.Addr = alignWord(c.effAddr(in))
		d.Value = c.ReadMem(d.Addr)
		d.ProducerStore = c.lastStore[d.Addr]
		c.regs[in.Dst] = d.Value
		c.dynLoads++
	case isa.OpStore:
		d.Addr = alignWord(c.effAddr(in))
		d.Value = c.regs[in.Src2]
		d.Silent = c.ReadMem(d.Addr) == d.Value
		c.mem[d.Addr] = d.Value
		c.lastStore[d.Addr] = d.Seq
		c.dynStores++
	case isa.OpBranch:
		d.Taken = c.regs[in.Src1] != 0
		d.Target = prog.PCOf(int(in.Imm))
		if d.Taken {
			next = int(in.Imm)
		}
	case isa.OpJump:
		d.Taken = true
		d.Target = prog.PCOf(int(in.Imm))
		next = int(in.Imm)
	case isa.OpCall:
		d.Taken = true
		d.Target = prog.PCOf(int(in.Imm))
		c.callStack = append(c.callStack, c.pcIdx+1)
		next = int(in.Imm)
	case isa.OpRet:
		if len(c.callStack) == 0 {
			panic(fmt.Sprintf("fsim: return with empty call stack at pc %#x in %q", d.PC, c.program.Name))
		}
		next = c.callStack[len(c.callStack)-1]
		c.callStack = c.callStack[:len(c.callStack)-1]
		d.Taken = true
		d.Target = prog.PCOf(next)
	default:
		panic(fmt.Sprintf("fsim: unknown opcode %v at pc %#x", in.Op, d.PC))
	}

	c.pcIdx = next
	return d
}

func (c *CPU) alu(in *isa.Inst) uint64 {
	a := c.regs[in.Src1]
	var b uint64
	if in.Src2 != isa.RegNone {
		b = c.regs[in.Src2]
	} else {
		b = uint64(in.Imm)
	}
	switch in.Fn {
	case isa.ALUAdd:
		return a + b
	case isa.ALUSub:
		return a - b
	case isa.ALUXor:
		return a ^ b
	case isa.ALUAnd:
		return a & b
	case isa.ALUOr:
		return a | b
	case isa.ALUShl:
		return a << (b & 63)
	case isa.ALUCmpLT:
		if a < b {
			return 1
		}
		return 0
	case isa.ALUDec:
		return a - 1
	case isa.ALUInc:
		return a + 1
	default:
		panic(fmt.Sprintf("fsim: unknown ALU fn %d", in.Fn))
	}
}

// effAddr computes the effective address of a memory instruction.
func (c *CPU) effAddr(in *isa.Inst) uint64 {
	if in.Mode == isa.AddrPCRel {
		// RIP-relative: the effective address is a per-static-instruction
		// constant, encoded as an absolute address in Imm.
		return uint64(in.Imm)
	}
	return c.regs[in.Src1] + uint64(in.Imm)
}

// Stream adapts a CPU to the instruction-stream interface the timing model
// consumes, bounding the run at max instructions. Next returns false once
// the budget is exhausted.
type Stream struct {
	cpu *CPU
	max uint64
}

// NewStream returns a Stream that yields at most max dynamic instructions.
func NewStream(cpu *CPU, max uint64) *Stream { return &Stream{cpu: cpu, max: max} }

// Next returns the next dynamic instruction and true, or false at end.
func (s *Stream) Next() (isa.DynInst, bool) {
	if s.cpu.seq >= s.max {
		return isa.DynInst{}, false
	}
	return s.cpu.Step(), true
}

// CPU returns the underlying functional CPU (for golden-state inspection).
func (s *Stream) CPU() *CPU { return s.cpu }

package worker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"constable/internal/service"
	"constable/internal/sim"
	"constable/internal/workload"
)

// startServer boots a dispatch-only scheduler (no local execution slots —
// every cell must run on a remote worker) behind the real HTTP API, at the
// default (batched) dispatch configuration.
func startServer(t testing.TB) (*service.Scheduler, *httptest.Server) {
	return startServerBatch(t, 0)
}

// startServerBatch is startServer with an explicit dispatch chunk cap
// (service.Config.MaxBatch: 0 = default, 1 = per-cell).
func startServerBatch(t testing.TB, batch int) (*service.Scheduler, *httptest.Server) {
	t.Helper()
	s, err := service.Open(service.Config{Workers: -1, WorkerTTL: time.Hour, MaxBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(service.NewHandler(s))
	t.Cleanup(ts.Close)
	return s, ts
}

// startWorkerNode boots one worker, serves its handler, and registers it
// with the server through the public API — the full production handshake.
func startWorkerNode(t testing.TB, serverURL, name string, capacity int) (*Worker, *httptest.Server) {
	t.Helper()
	w, err := New(Options{Server: serverURL, Name: name, Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	w.opts.Advertise = ts.URL
	if err := w.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	return w, ts
}

// testMatrix builds rows×cols distinct cells over the small suite.
func testMatrix(rows, cols int, insts uint64) [][]service.JobSpec {
	suite := workload.SmallSuite()
	m := make([][]service.JobSpec, rows)
	for ri := range m {
		row := make([]service.JobSpec, cols)
		for ci := range row {
			row[ci] = service.JobSpec{
				Workload:     suite[ri%len(suite)].Name,
				Instructions: insts + uint64(ri*cols+ci),
			}
		}
		m[ri] = row
	}
	return m
}

// runSweepCollect runs matrix on s and returns each done cell's envelope
// JSON keyed by "row,col" — the full-fidelity printed artifact of the cell,
// including the typed views the experiment drivers read.
func runSweepCollect(t testing.TB, s *service.Scheduler, matrix [][]service.JobSpec) map[string][]byte {
	t.Helper()
	sw, err := s.StartSweep(context.Background(), matrix, service.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	out := make(map[string][]byte)
	err = sw.Stream(ctx, true, func(ev service.SweepEvent) error {
		if ev.Status != service.StatusDone {
			return fmt.Errorf("cell (%d,%d) status %s: %s", ev.Row, ev.Col, ev.Status, ev.Error)
		}
		if ev.Result == nil {
			return fmt.Errorf("cell (%d,%d) has no result", ev.Row, ev.Col)
		}
		b, err := json.Marshal(sim.NewResultEnvelope(ev.Hash, ev.Result))
		if err != nil {
			return err
		}
		out[fmt.Sprintf("%d,%d", ev.Row, ev.Col)] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Status() != service.SweepDone {
		t.Fatalf("sweep status %s, want done", sw.Status())
	}
	return out
}

// TestDistributedSweepMatchesLocal shards one sweep across two remote
// workers (the server itself has zero local slots) and requires the
// resulting artifacts to be byte-identical to a pure single-process run —
// under batched dispatch (the default) and in per-cell mode alike.
func TestDistributedSweepMatchesLocal(t *testing.T) {
	for _, tc := range []struct {
		name  string
		batch int
	}{
		{"batch=16", 16},
		{"batch=1", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, ts := startServerBatch(t, tc.batch)
			startWorkerNode(t, ts.URL, "w1", 2)
			startWorkerNode(t, ts.URL, "w2", 2)

			matrix := testMatrix(3, 3, 2000)
			distributed := runSweepCollect(t, s, matrix)

			local, err := service.Open(service.Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { local.Close() })
			reference := runSweepCollect(t, local, matrix)

			if len(distributed) != len(reference) {
				t.Fatalf("distributed run produced %d cells, local %d", len(distributed), len(reference))
			}
			for key, want := range reference {
				got, ok := distributed[key]
				if !ok {
					t.Fatalf("cell %s missing from distributed run", key)
				}
				if string(got) != string(want) {
					t.Errorf("cell %s: distributed artifact differs from single-process run\n got: %.200s\nwant: %.200s", key, got, want)
				}
			}

			// Every cell executed remotely, spread across both workers.
			var total uint64
			for _, v := range s.Workers() {
				if v.Completed == 0 {
					t.Errorf("worker %s executed no cells; sharding skipped it", v.Name)
				}
				total += v.Completed
			}
			if total != uint64(len(reference)) {
				t.Errorf("remote completions = %d, want %d (server has no local slots)", total, len(reference))
			}
			m := s.Metrics()
			if tc.batch > 1 && m.BatchesDispatched == 0 {
				t.Error("batched server dispatched no multi-cell chunks")
			}
			if tc.batch == 1 && m.BatchesDispatched != 0 {
				t.Errorf("per-cell server dispatched %d chunks", m.BatchesDispatched)
			}
		})
	}
}

// TestWorkerDeathMidSweepRequeues kills one of two workers while a sweep is
// in flight and requires the sweep to finish with every cell done, the dead
// worker's in-flight jobs requeued onto the survivor, and artifacts still
// byte-identical to a single-process run.
func TestWorkerDeathMidSweepRequeues(t *testing.T) {
	s, ts := startServer(t)
	_, wts1 := startWorkerNode(t, ts.URL, "doomed", 1)
	startWorkerNode(t, ts.URL, "survivor", 1)

	matrix := testMatrix(2, 4, 60_000)
	sw, err := s.StartSweep(context.Background(), matrix, service.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	events := 0
	distributed := make(map[string][]byte)
	err = sw.Stream(ctx, true, func(ev service.SweepEvent) error {
		if ev.Status != service.StatusDone {
			return fmt.Errorf("cell (%d,%d) status %s: %s", ev.Row, ev.Col, ev.Status, ev.Error)
		}
		b, err := json.Marshal(sim.NewResultEnvelope(ev.Hash, ev.Result))
		if err != nil {
			return err
		}
		distributed[fmt.Sprintf("%d,%d", ev.Row, ev.Col)] = b
		events++
		if events == 1 {
			// Kill the first worker with cells still outstanding: sever its
			// live connections (requests in flight fail at the transport
			// level) and stop its listener (new dispatches fail too).
			wts1.CloseClientConnections()
			wts1.Close()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Status() != service.SweepDone {
		t.Fatalf("sweep status %s, want done", sw.Status())
	}
	if got := len(distributed); got != 8 {
		t.Fatalf("completed cells = %d, want 8", got)
	}

	local, err := service.Open(service.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })
	reference := runSweepCollect(t, local, matrix)
	for key, want := range reference {
		if got := distributed[key]; string(got) != string(want) {
			t.Errorf("cell %s: artifact differs after worker death", key)
		}
	}

	m := s.Metrics()
	if m.JobsRequeued == 0 {
		t.Error("no job was requeued despite a worker dying mid-sweep")
	}
	if m.JobsFailed != 0 {
		t.Errorf("failed jobs = %d, want 0 (worker death must not fail cells)", m.JobsFailed)
	}
}

// TestAliasedEnvelopeRejected points the server at a worker that answers
// with a result envelope recorded under the wrong JobSpec hash. The server
// must reject it (the store-mirroring alias defense), demote the worker,
// and requeue the job onto an honest one.
func TestAliasedEnvelopeRejected(t *testing.T) {
	s, ts := startServer(t)

	malicious := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		env := sim.NewResultEnvelope("0000000000000000", &sim.RunResult{Cycles: 1})
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(env)
	}))
	t.Cleanup(malicious.Close)
	// Register the malicious worker with more capacity so the most-free
	// dispatch rule picks it first.
	if _, err := s.RegisterWorker("malicious", malicious.URL, 4); err != nil {
		t.Fatal(err)
	}
	startWorkerNode(t, ts.URL, "honest", 1)

	j, err := s.Submit(service.JobSpec{Workload: workload.SmallSuite()[0].Name, Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 1 {
		t.Fatal("the aliased result was accepted")
	}

	m := s.Metrics()
	if m.JobsRequeued == 0 {
		t.Error("bad envelope did not requeue the job")
	}
	for _, v := range s.Workers() {
		if v.Name == "malicious" {
			if v.Healthy || v.Failures == 0 {
				t.Errorf("malicious worker still healthy: %+v", v)
			}
		}
	}
}

// TestWorkerRejectsMismatchedDispatch exercises the worker-side half of the
// alias defense: a dispatch whose recorded hash does not match the spec it
// carries is refused before simulating.
func TestWorkerRejectsMismatchedDispatch(t *testing.T) {
	w, err := New(Options{Server: "http://unused.invalid", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)

	body := fmt.Sprintf(`{"hash":"%s","spec":{"workload":"%s","instructions":2000}}`,
		strings.Repeat("ab", 32), workload.SmallSuite()[0].Name)
	resp, err := http.Post(ts.URL+"/execute", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched dispatch: HTTP %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "does not match") {
		t.Errorf("error body = %q, %v", e.Error, err)
	}
}

// TestWorkerShutdownAnswers503 pins the graceful-drain contract: a dispatch
// arriving while the worker's pool is shutting down must answer 503 (the
// worker's condition → server requeues elsewhere), never 422 (the job's
// failure → terminal).
func TestWorkerShutdownAnswers503(t *testing.T) {
	w, err := New(Options{Server: "http://unused.invalid", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	w.Close() // the pool is draining; new submissions are refused

	body := fmt.Sprintf(`{"spec":{"workload":"%s","instructions":2000}}`, workload.SmallSuite()[0].Name)
	resp, err := http.Post(ts.URL+"/execute", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dispatch to a draining worker: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestWorkerAbandonsAbortedDispatch pins the zombie-work defense: when the
// dispatching server aborts an /execute request (lease-expiry cancel,
// timeout), a queued sole-interest job on the worker must be abandoned —
// not left to simulate for no one while the cell re-runs elsewhere.
func TestWorkerAbandonsAbortedDispatch(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	started := make(chan struct{}, 4)
	w, err := New(Options{
		Server:   "http://unused.invalid",
		Capacity: 1,
		Run: func(o sim.Options) (*sim.RunResult, error) {
			started <- struct{}{}
			<-gate
			return &sim.RunResult{Cycles: o.Instructions}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	t.Cleanup(func() { gateOnce.Do(func() { close(gate) }) }) // LIFO: gate opens before Close drains
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)

	// Occupy the worker's only slot so the dispatched job queues.
	name := workload.SmallSuite()[0].Name
	if _, err := w.sched.Submit(service.JobSpec{Workload: name, Instructions: 111_111}); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	body := fmt.Sprintf(`{"spec":{"workload":"%s","instructions":222222}}`, name)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/execute", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for w.sched.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("dispatched job never queued on the worker")
		}
		time.Sleep(time.Millisecond)
	}

	// The server gives up on the dispatch: the worker must abandon the
	// queued job rather than keep it for nobody.
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected the aborted request to error")
	}
	for w.sched.Metrics().JobsCanceled != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("aborted dispatch's queued job was not abandoned (canceled=%d, queue=%d)",
				w.sched.Metrics().JobsCanceled, w.sched.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	gateOnce.Do(func() { close(gate) })
}

// TestWorkerKilledMidChunkRequeuesOnlyUnabandoned kills a worker while a
// whole dispatch chunk is in flight on it, with some of the chunk's cells
// already abandoned by their only submitter. The un-abandoned cells must
// requeue (and complete on a survivor worker); the abandoned ones must be
// canceled — dropped from the chunk — not resimulated for no one.
func TestWorkerKilledMidChunkRequeuesOnlyUnabandoned(t *testing.T) {
	s, ts := startServer(t)

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(openGate) // LIFO: gate opens before worker Close drains
	doomed, err := New(Options{
		Server:   ts.URL,
		Name:     "doomed",
		Capacity: 2,
		Run: func(o sim.Options) (*sim.RunResult, error) {
			<-gate
			return &sim.RunResult{Cycles: o.Instructions}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { doomed.Close() })

	// Queue four distinct cells before any capacity exists, so they ride
	// one chunk (capacity 2 → dispatch budget 4) to the doomed worker.
	name := workload.SmallSuite()[0].Name
	var jobs []*service.Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(service.JobSpec{Workload: name, Instructions: uint64(50_000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	wts := httptest.NewServer(doomed.Handler())
	t.Cleanup(wts.Close)
	doomed.opts.Advertise = wts.URL
	if err := doomed.Register(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Wait until the whole chunk landed on the worker's private pool (two
	// simulating, two queued behind them).
	deadline := time.Now().Add(10 * time.Second)
	for doomed.sched.Running()+doomed.sched.QueueDepth() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("chunk never landed on the worker (running=%d queued=%d)",
				doomed.sched.Running(), doomed.sched.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	// Two cells lose their only submitter mid-chunk; then the worker dies
	// with the chunk still open.
	s.Abandon(jobs[2].ID)
	s.Abandon(jobs[3].ID)
	wts.CloseClientConnections()
	wts.Close()

	survivor, err := New(Options{Server: ts.URL, Name: "survivor", Capacity: 2,
		Run: func(o sim.Options) (*sim.RunResult, error) {
			return &sim.RunResult{Cycles: o.Instructions}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { survivor.Close() })
	sts := httptest.NewServer(survivor.Handler())
	t.Cleanup(sts.Close)
	survivor.opts.Advertise = sts.URL
	if err := survivor.Register(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		res, err := jobs[i].Wait(ctx)
		if err != nil {
			t.Fatalf("surviving cell %d: %v", i, err)
		}
		if res.Cycles != jobs[i].Spec.Instructions {
			t.Errorf("surviving cell %d cycles = %d", i, res.Cycles)
		}
	}
	for i := 2; i < 4; i++ {
		if _, err := jobs[i].Wait(ctx); !errors.Is(err, service.ErrCanceled) {
			t.Fatalf("abandoned cell %d terminal error = %v, want ErrCanceled", i, err)
		}
	}
	openGate()

	m := s.Metrics()
	if m.JobsRequeued != 2 {
		t.Errorf("requeued = %d, want 2 (only the un-abandoned cells)", m.JobsRequeued)
	}
	if m.JobsCanceled != 2 {
		t.Errorf("canceled = %d, want 2 (the abandoned cells)", m.JobsCanceled)
	}
	if m.JobsFailed != 0 {
		t.Errorf("failed = %d, want 0 (worker death must not fail cells)", m.JobsFailed)
	}
}

// TestMixedChunkOverHTTP pins per-cell failure granularity across the real
// batch wire protocol: a chunk with one cell whose simulation fails must
// fail that cell terminally (the 422-equivalent of the batch protocol)
// while its siblings land normally — no requeue of anything.
func TestMixedChunkOverHTTP(t *testing.T) {
	s, ts := startServer(t)

	const badBudget = 66_666
	name := workload.SmallSuite()[0].Name
	var jobs []*service.Job
	for _, insts := range []uint64{40_000, badBudget, 40_001} {
		j, err := s.Submit(service.JobSpec{Workload: name, Instructions: insts})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	w, err := New(Options{Server: ts.URL, Name: "mixed", Capacity: 2,
		Run: func(o sim.Options) (*sim.RunResult, error) {
			if o.Instructions == badBudget {
				return nil, fmt.Errorf("simulation exploded at %d", o.Instructions)
			}
			return &sim.RunResult{Cycles: o.Instructions}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	wts := httptest.NewServer(w.Handler())
	t.Cleanup(wts.Close)
	w.opts.Advertise = wts.URL
	if err := w.Register(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, i := range []int{0, 2} {
		res, err := jobs[i].Wait(ctx)
		if err != nil {
			t.Fatalf("sibling cell %d failed: %v", i, err)
		}
		if res.Cycles != jobs[i].Spec.Instructions {
			t.Errorf("sibling cell %d cycles = %d", i, res.Cycles)
		}
	}
	_, err = jobs[1].Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "simulation exploded") {
		t.Fatalf("bad cell error = %v, want its own terminal simulation failure", err)
	}

	m := s.Metrics()
	if m.JobsRequeued != 0 {
		t.Errorf("requeued = %d, want 0 (a terminal cell must not bounce its chunk)", m.JobsRequeued)
	}
	if m.JobsFailed != 1 || m.JobsCompleted != 2 {
		t.Errorf("failed/completed = %d/%d, want 1/2", m.JobsFailed, m.JobsCompleted)
	}
	if m.BatchesDispatched == 0 {
		t.Error("the chunk was not dispatched over the batch path")
	}
}

// TestHeartbeatJitter pins the lease-renewal cadence: intervals stay within
// ±15% of the configured heartbeat and vary draw to draw, so a fleet
// restarted in lockstep decorrelates instead of stampeding one server.
func TestHeartbeatJitter(t *testing.T) {
	const base = time.Second
	lo, hi := 850*time.Millisecond, 1150*time.Millisecond
	distinct := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		d := heartbeatInterval(base)
		if d < lo || d > hi {
			t.Fatalf("interval %v outside [%v, %v]", d, lo, hi)
		}
		distinct[d] = true
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct intervals in 200 draws; jitter is not jittering", len(distinct))
	}
	if got := heartbeatInterval(0); got != 0 {
		t.Errorf("heartbeatInterval(0) = %v, want 0", got)
	}
}

// TestWorkerHeartbeatReregistersAfterServerRestart simulates a server
// losing its worker registry (restart): the next heartbeat gets a 404 and
// the worker must transparently re-register.
func TestWorkerHeartbeatReregistersAfterServerRestart(t *testing.T) {
	s, ts := startServer(t)
	w, _ := startWorkerNode(t, ts.URL, "phoenix", 1)

	oldID := w.ID()
	if oldID == "" {
		t.Fatal("worker has no ID after registration")
	}
	// The server forgets the worker (as a restart would).
	if !s.DeregisterWorker(oldID) {
		t.Fatal("deregister failed")
	}
	if err := w.heartbeat(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w.ID() == "" || w.ID() == oldID {
		t.Errorf("worker did not re-register: id %q (old %q)", w.ID(), oldID)
	}
	if n := len(s.Workers()); n != 1 {
		t.Errorf("workers after re-register = %d, want 1", n)
	}
}

// BenchmarkSweepDistributed measures distributed sweep throughput (cells/s
// through submit → dispatch → HTTP → worker → envelope → store/stream) with
// one and with two remote workers attached to a dispatch-only server, in
// per-cell dispatch mode (batch=1, the PR-4 protocol) and under batched
// dispatch (batch=16, the default). Simulation cost is stubbed to a fixed
// latency, mirroring BenchmarkSweepThroughput's isolation of the
// orchestration stack, so the worker and batch dimensions demonstrate the
// scaling wins even on a single-core machine. Workers advertise 8 slots
// and sweeps carry 32 cells (production-shaped: multi-core workers, Fig.
// 9-sized matrices) — the earlier 2-slot/8-cell shape capped the whole
// measurement at 4 concurrent cells, hiding any transport improvement
// behind the sleep floor. CI uploads the full grid as
// BENCH_sweep_distributed.json and the batched subset as
// BENCH_sweep_batched.json, next to the single-process BENCH_sweep.json.
func BenchmarkSweepDistributed(b *testing.B) {
	fixedLatency := func(o sim.Options) (*sim.RunResult, error) {
		time.Sleep(2 * time.Millisecond)
		return &sim.RunResult{Cycles: o.Instructions}, nil
	}
	for _, workers := range []int{1, 2} {
		for _, batch := range []int{1, 16} {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				s, ts := startServerBatch(b, batch)
				for i := 0; i < workers; i++ {
					w, err := New(Options{Server: ts.URL, Name: fmt.Sprintf("w%d", i+1), Capacity: 8, Run: fixedLatency})
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { w.Close() })
					wts := httptest.NewServer(w.Handler())
					b.Cleanup(wts.Close)
					w.opts.Advertise = wts.URL
					if err := w.Register(context.Background()); err != nil {
						b.Fatal(err)
					}
				}
				const rows, cols = 4, 8
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Distinct budgets per iteration so every cell simulates.
					matrix := testMatrix(rows, cols, uint64(10_000+i*rows*cols))
					runSweepCollect(b, s, matrix)
				}
				b.ReportMetric(float64(rows*cols*b.N)/b.Elapsed().Seconds(), "cells/s")
			})
		}
	}
}

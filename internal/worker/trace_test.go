package worker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"constable/internal/fsim"
	"constable/internal/service"
	"constable/internal/trace"
	"constable/internal/workload"
)

// captureTestTrace serializes n instructions of a small suite workload.
func captureTestTrace(t testing.TB, n uint64) []byte {
	t.Helper()
	spec := workload.SmallSuite()[0]
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Capture(&buf, fsim.NewStream(cpu, n), n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceSweepDistributedMatchesLocal uploads a trace to a dispatch-only
// server, sweeps a matrix referencing it across two remote workers (which
// hold no trace bytes — they must fetch from the server by hash), and
// requires the artifacts to be byte-identical to a single-process run of the
// same matrix. This is the end-to-end acceptance path for trace-referenced
// jobs: upload → sweep → worker fetch-by-hash → verified replay.
func TestTraceSweepDistributedMatchesLocal(t *testing.T) {
	s, ts := startServer(t)
	startWorkerNode(t, ts.URL, "w1", 2)
	startWorkerNode(t, ts.URL, "w2", 2)

	data := captureTestTrace(t, 4000)
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var info service.TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	// Mix trace-referenced and suite cells across mechanisms, as a real
	// bring-your-own-workload comparison sweep would.
	matrix := [][]service.JobSpec{
		{
			{Workload: info.Name, Mechanism: "baseline", Instructions: 4000},
			{Workload: info.Name, Mechanism: "constable", Instructions: 4000},
		},
		{
			{Workload: workload.SmallSuite()[0].Name, Mechanism: "baseline", Instructions: 4000},
			{Workload: workload.SmallSuite()[0].Name, Mechanism: "constable", Instructions: 4000},
		},
	}
	distributed := runSweepCollect(t, s, matrix)

	local, err := service.Open(service.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })
	if _, _, err := local.Traces().Put(data); err != nil {
		t.Fatal(err)
	}
	reference := runSweepCollect(t, local, matrix)

	if len(distributed) != len(reference) {
		t.Fatalf("distributed produced %d cells, local %d", len(distributed), len(reference))
	}
	for key, want := range reference {
		if got := distributed[key]; string(got) != string(want) {
			t.Errorf("cell %s: trace-referenced artifact differs between distributed and local runs\n got: %.200s\nwant: %.200s",
				key, got, want)
		}
	}

	// The workers held no trace bytes, so the server must have served the
	// blob at least once (each hash-verified read counts as a fetch).
	m := s.Metrics()
	if m.TracesUploaded != 1 {
		t.Errorf("traces_uploaded = %d, want 1", m.TracesUploaded)
	}
	if m.TracesFetched == 0 {
		t.Error("traces_fetched = 0; workers cannot have fetched the trace from the server")
	}
}

// TestWorkerRejectsTraceFetchHashMismatch exercises the fetch-side alias
// defense: a worker whose server answers a trace download with different
// (but well-formed) bytes than the requested hash must refuse to run the
// job — answering 503 so the dispatcher requeues it — rather than simulate
// a stream the job's content hash never pinned.
func TestWorkerRejectsTraceFetchHashMismatch(t *testing.T) {
	right := captureTestTrace(t, 1000)
	wrong := captureTestTrace(t, 1001)
	rightSpec, err := workload.FromTraceBytes(append([]byte{}, right...))
	if err != nil {
		t.Fatal(err)
	}

	// A "server" that serves the wrong bytes for every trace download.
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/traces/") {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(wrong)
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(lying.Close)

	w, err := New(Options{Server: lying.URL, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	wts := httptest.NewServer(w.Handler())
	t.Cleanup(wts.Close)

	spec := service.JobSpec{Workload: rightSpec.Name, Mechanism: "baseline", Instructions: 1000}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"hash":%q,"spec":{"workload":%q,"mechanism":"baseline","instructions":1000}}`,
		hash, rightSpec.Name)
	resp, err := http.Post(wts.URL+"/execute", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mismatched trace fetch: HTTP %d, want 503 (requeue, not terminal)", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "trace") {
		t.Errorf("error body = %q, %v", e.Error, err)
	}

	// The batch path classifies the same condition as requeue-able, never a
	// terminal per-cell failure.
	batchBody := fmt.Sprintf(`{"items":[{"hash":%q,"spec":{"workload":%q,"mechanism":"baseline","instructions":1000}}]}`,
		hash, rightSpec.Name)
	resp, err = http.Post(wts.URL+"/execute/batch", "application/json", strings.NewReader(batchBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch service.BatchExecuteResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != 1 || !batch.Items[0].Requeue || batch.Items[0].Error == "" {
		t.Fatalf("batch items = %+v, want one requeue-able error", batch.Items)
	}
}

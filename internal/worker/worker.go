// Package worker implements the constable-worker runtime: a process that
// registers with a constable-server, receives JobSpecs one HTTP request at a
// time, simulates them on a local bounded pool, and answers with
// full-fidelity sim.ResultEnvelope documents that flow into the server's LRU
// cache and content-addressed store exactly like locally-executed results.
//
// Protocol (server side documented in docs/API.md):
//
//   - The worker POSTs {name, url, capacity} to {server}/v1/workers and
//     keeps the returned lease alive with POST
//     {server}/v1/workers/{id}/heartbeat every Options.Heartbeat. A 404 on
//     heartbeat means the lease expired (e.g. the server restarted); the
//     worker re-registers.
//   - The server dispatches work by POSTing a service.ExecuteRequest to
//     {url}/execute, or a whole chunk as a service.BatchExecuteRequest to
//     {url}/execute/batch. The worker re-derives each spec's canonical
//     hash and refuses a dispatch whose recorded hash does not match — the
//     same alias defense the result store applies on load — then simulates
//     and replies 200 with a sim.ResultEnvelope per cell (or the cell's
//     own error; a single /execute answers 422 for a simulation failure).
//   - On shutdown the worker DELETEs its registration so the server stops
//     dispatching to it before the listener closes.
//
// Inside the worker the simulations run through a private
// service.Scheduler, so a worker also dedups identical in-flight specs and
// serves repeats from its own LRU.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"time"

	"constable/internal/service"
	"constable/internal/sim"
)

// Options parameterizes a Worker.
type Options struct {
	// Server is the base URL of the constable-server to register with,
	// e.g. http://127.0.0.1:8080.
	Server string
	// Advertise is the URL at which the server can reach this worker's
	// handler, e.g. http://10.0.0.5:8081. It must be set before Register.
	Advertise string
	// Name identifies the worker in listings (default: Advertise).
	Name string
	// Capacity is the number of concurrent simulations the worker runs and
	// advertises (default runtime.GOMAXPROCS(0)).
	Capacity int
	// Heartbeat is the lease-renewal interval (default 5s). It must be
	// comfortably under the server's worker TTL.
	Heartbeat time.Duration
	// CacheSize is the worker-local LRU capacity (default 1024 entries).
	CacheSize int
	// Run overrides the simulation function (default sim.Run) — used by
	// benchmarks that isolate orchestration cost and by embedders with a
	// custom execution path. Results still flow through the worker's local
	// scheduler (dedup, LRU) and the envelope protocol.
	Run func(sim.Options) (*sim.RunResult, error)
	// MaxBody caps the worker's /execute and /execute/batch request bodies
	// in bytes (default 64 MiB). Dispatch chunks are JSON-small; the cap
	// exists so a confused or hostile peer cannot balloon worker memory.
	MaxBody int64
	// MaxTraceFetch caps how many bytes a single trace fetch from the
	// server will read (default 256 MiB, matching the server's default
	// upload cap).
	MaxTraceFetch int64
	// ResultsServer is the base URL of the cluster-wide result store the
	// worker consults before simulating and writes back to on completion
	// (GET/PUT /v1/results/{hash}). Empty means Server — the common
	// topology, where the dispatching server is also the result authority;
	// point it elsewhere when dispatch and storage are split across
	// servers. "none" disables sharing: the worker simulates everything it
	// is dispatched, relying only on its private LRU.
	ResultsServer string
}

// Worker is one remote execution node. Create with New, expose Handler()
// on the advertised address, then either call Run (register + heartbeat
// until the context ends) or drive Register/Deregister manually.
type Worker struct {
	opts        Options
	sched       *service.Scheduler
	client      *http.Client
	traceClient *http.Client

	mu sync.Mutex
	id string // registered worker ID, "" when unregistered
}

// New validates opts, applies defaults, and returns a Worker with its local
// simulation pool started.
func New(opts Options) (*Worker, error) {
	if opts.Server == "" {
		return nil, errors.New("worker: Options.Server is required")
	}
	if opts.Capacity <= 0 {
		opts.Capacity = runtime.GOMAXPROCS(0)
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 5 * time.Second
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 64 << 20
	}
	if opts.MaxTraceFetch <= 0 {
		opts.MaxTraceFetch = 256 << 20
	}
	w := &Worker{
		opts:   opts,
		client: &http.Client{Timeout: 10 * time.Second},
		// Trace downloads move real bytes; give them their own, more
		// generous transfer budget than the control-plane client.
		traceClient: &http.Client{Timeout: 2 * time.Minute},
	}
	cfg := service.Config{
		Workers:   opts.Capacity,
		CacheSize: opts.CacheSize,
		// The local scheduler resolves "trace:<hash>" workloads by
		// downloading the bytes from the server; the store verifies the
		// fetched content hash before any record reaches the pipeline.
		TraceFetch: w.fetchTrace,
	}
	// The cluster-wide result share: a dispatched cell that misses the
	// worker's private LRU is looked up on the results server before
	// simulating (hash-verified envelope; a tampered or aliased one is
	// rejected and the cell simulates locally), and every freshly simulated
	// result is written back — so N workers simulate a popular cell once,
	// not N times.
	if share := opts.ResultsServer; share != "none" {
		if share == "" {
			share = opts.Server
		}
		cfg.Share = service.NewRemoteResultStore(share)
	}
	if opts.Run != nil {
		cfg.Backend = service.NewLocalBackend(opts.Capacity, opts.Run)
	}
	sched, err := service.Open(cfg)
	if err != nil {
		return nil, err
	}
	w.sched = sched
	return w, nil
}

// fetchTrace downloads one trace's raw bytes from the server by content
// hash. The caller (the trace store) re-hashes what it gets back, so this
// only has to move bytes, not trust them.
func (w *Worker) fetchTrace(hash string) ([]byte, error) {
	resp, err := w.traceClient.Get(w.opts.Server + "/v1/traces/" + hash)
	if err != nil {
		return nil, fmt.Errorf("worker: trace fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("worker: trace fetch %s: HTTP %d: %s", hash, resp.StatusCode, bytes.TrimSpace(b))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, w.opts.MaxTraceFetch+1))
	if err != nil {
		return nil, fmt.Errorf("worker: trace fetch %s: %w", hash, err)
	}
	if int64(len(data)) > w.opts.MaxTraceFetch {
		return nil, fmt.Errorf("worker: trace fetch %s: exceeds %d bytes", hash, w.opts.MaxTraceFetch)
	}
	return data, nil
}

// ID returns the server-assigned worker ID, or "" before registration.
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Scheduler exposes the worker's local scheduler (metrics, shutdown).
func (w *Worker) Scheduler() *service.Scheduler { return w.sched }

// Handler returns the worker's HTTP surface:
//
//	POST /execute         run one service.ExecuteRequest, answer a sim.ResultEnvelope
//	POST /execute/batch   run a service.BatchExecuteRequest chunk, answer per-cell
//	GET  /healthz         liveness probe
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /execute", w.handleExecute)
	mux.HandleFunc("POST /execute/batch", w.handleExecuteBatch)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rw.Write([]byte("ok\n"))
	})
	return mux
}

func (w *Worker) handleExecute(rw http.ResponseWriter, r *http.Request) {
	var req service.ExecuteRequest
	if !w.readJSON(rw, r, &req) {
		return
	}
	hash, err := req.Spec.Hash()
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// Alias defense, mirroring the store's Load and the server's envelope
	// check: a dispatch whose recorded hash does not match the spec it
	// carries was corrupted somewhere, and simulating it would file the
	// result under the wrong content address.
	if req.Hash != "" && req.Hash != hash {
		writeJSON(rw, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("worker: dispatched hash %.12s does not match spec hash %.12s", req.Hash, hash),
		})
		return
	}
	j, err := w.sched.Submit(req.Spec)
	if err != nil {
		if errors.Is(err, service.ErrShuttingDown) {
			writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		if errors.Is(err, service.ErrTraceUnavailable) {
			// This worker couldn't produce the trace bytes (fetch failed,
			// server hiccup): the worker's condition, not the job's — 503
			// makes the server requeue the cell on a backend that can.
			writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	res, err := j.Wait(r.Context())
	if err != nil {
		if errors.Is(err, r.Context().Err()) {
			// The dispatching server aborted the request (lease-expiry
			// cancel, request timeout, server death) and has already
			// requeued the cell elsewhere: mirror the server's ?wait=1
			// disconnect handling and drop this dispatch's interest, so a
			// queued sole-interest job leaves the pool instead of
			// simulating for no one (a running one finishes and stays in
			// the worker-local cache). The 503 is written for symmetry —
			// the connection is usually already dead.
			w.sched.Abandon(j.ID)
			writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "dispatch aborted: " + err.Error()})
			return
		}
		// A worker shutting down (or canceling its queue as part of it) is
		// the worker's condition, not the job's: 503 makes the server wrap
		// it as backend-unavailable and requeue the cell elsewhere, so a
		// graceful worker drain never fails a sweep.
		if errors.Is(err, service.ErrShuttingDown) || errors.Is(err, service.ErrCanceled) {
			writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		// The simulation itself failed; 422 tells the server this is the
		// job's error, not the worker's, so it must not requeue.
		writeJSON(rw, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(rw, http.StatusOK, sim.NewResultEnvelope(hash, res))
}

// handleExecuteBatch runs a whole dispatch chunk through the worker's
// private scheduler and answers item-for-item: the chunk's cells are all
// submitted up front (so the local pool pipelines them at its own
// concurrency and identical cells dedup), then collected in order. Failure
// granularity is the cell, mirroring the single-dispatch status mapping:
// a cell's own simulation failure is terminal for that cell alone
// (requeue=false), a worker-side condition (draining pool, corrupted
// dispatch item) marks just that cell requeue=true, and only a chunk that
// cannot be accepted at all — malformed JSON, or the whole pool already
// shutting down — fails the request itself.
func (w *Worker) handleExecuteBatch(rw http.ResponseWriter, r *http.Request) {
	var req service.BatchExecuteRequest
	if !w.readJSON(rw, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "empty batch"})
		return
	}
	items := make([]service.BatchExecuteItem, len(req.Items))
	jobs := make([]*service.Job, len(req.Items))
	hashes := make([]string, len(req.Items))
	abandonFrom := func(i int) {
		for ; i < len(jobs); i++ {
			if jobs[i] != nil {
				w.sched.Abandon(jobs[i].ID)
			}
		}
	}
	for i, it := range req.Items {
		hash, err := it.Spec.Hash()
		if err != nil {
			items[i] = service.BatchExecuteItem{Error: err.Error()}
			continue
		}
		// Alias defense per cell, mirroring handleExecute: a corrupted item
		// must not simulate under the wrong content address — but unlike a
		// fully corrupt request it poisons only itself, and the server may
		// retry the cell over an honest transport.
		if it.Hash != "" && it.Hash != hash {
			items[i] = service.BatchExecuteItem{
				Error:   fmt.Sprintf("worker: dispatched hash %.12s does not match spec hash %.12s", it.Hash, hash),
				Requeue: true,
			}
			continue
		}
		j, err := w.sched.Submit(it.Spec)
		if err != nil {
			if errors.Is(err, service.ErrShuttingDown) {
				// The pool is draining: nothing in this chunk can run here.
				// Drop interest in the cells already queued and let the
				// server requeue the whole chunk elsewhere.
				abandonFrom(0)
				writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
				return
			}
			if errors.Is(err, service.ErrTraceUnavailable) {
				// This worker couldn't fetch the cell's trace: requeue just
				// this cell elsewhere, like the single-dispatch 503.
				items[i] = service.BatchExecuteItem{Error: err.Error(), Requeue: true}
				continue
			}
			items[i] = service.BatchExecuteItem{Error: err.Error()}
			continue
		}
		jobs[i] = j
		hashes[i] = hash
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		res, err := j.Wait(r.Context())
		if err != nil {
			if errors.Is(err, r.Context().Err()) {
				// The dispatching server aborted the chunk (lease-expiry
				// cancel, deadline, server death) and has already requeued
				// the cells elsewhere: drop this dispatch's interest in
				// everything still pending, so queued sole-interest cells
				// leave the pool instead of simulating for no one.
				abandonFrom(i)
				writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "dispatch aborted: " + err.Error()})
				return
			}
			if errors.Is(err, service.ErrShuttingDown) || errors.Is(err, service.ErrCanceled) {
				// The worker's condition, not the cell's: this cell should
				// requeue elsewhere while finished siblings still land.
				items[i] = service.BatchExecuteItem{Error: err.Error(), Requeue: true}
				continue
			}
			items[i] = service.BatchExecuteItem{Error: err.Error()}
			continue
		}
		env := sim.NewResultEnvelope(hashes[i], res)
		items[i] = service.BatchExecuteItem{Envelope: &env}
	}
	writeJSON(rw, http.StatusOK, service.BatchExecuteResponse{Items: items})
}

// Register announces the worker to the server and stores the assigned ID.
func (w *Worker) Register(ctx context.Context) error {
	if w.opts.Advertise == "" {
		return errors.New("worker: Options.Advertise is required to register")
	}
	body, _ := json.Marshal(map[string]any{
		"name":     w.opts.Name,
		"url":      w.opts.Advertise,
		"capacity": w.opts.Capacity,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Server+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("worker: register: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("worker: register with %s: %w", w.opts.Server, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("worker: register with %s: HTTP %d: %s", w.opts.Server, resp.StatusCode, bytes.TrimSpace(b))
	}
	var v service.WorkerView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return fmt.Errorf("worker: register with %s: decode response: %w", w.opts.Server, err)
	}
	w.mu.Lock()
	w.id = v.ID
	w.mu.Unlock()
	return nil
}

// heartbeat renews the lease once. A 404 (lease expired, server restarted)
// re-registers; transport errors are returned for the caller to retry on
// the next tick.
func (w *Worker) heartbeat(ctx context.Context) error {
	id := w.ID()
	if id == "" {
		return w.Register(ctx)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/v1/workers/%s/heartbeat", w.opts.Server, id), nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		w.mu.Lock()
		w.id = ""
		w.mu.Unlock()
		return w.Register(ctx)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("worker: heartbeat: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Deregister removes the worker from the server's dispatch set.
func (w *Worker) Deregister(ctx context.Context) error {
	id := w.ID()
	if id == "" {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/v1/workers/%s", w.opts.Server, id), nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.mu.Lock()
	w.id = ""
	w.mu.Unlock()
	return nil
}

// heartbeatInterval returns one lease-renewal (or registration-retry)
// delay: d with ±15% uniform jitter. A fleet restarted by one orchestrator
// tick would otherwise renew in lockstep forever — every worker's fixed
// Ticker firing at the same instant against one server — so each wait is
// drawn fresh and the fleet decorrelates within a few periods.
func heartbeatInterval(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.85 + 0.3*rand.Float64()))
}

// sleepHeartbeat waits one jittered heartbeat interval, or until ctx ends.
func sleepHeartbeat(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(heartbeatInterval(d))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Run registers (retrying until the server answers — the worker may start
// before the server) and then heartbeats until ctx ends, when it
// deregisters and returns. Registration retries and lease renewals share
// one jittered cadence (heartbeatInterval): the old split — a one-shot
// time.After for the retry path, a fixed Ticker afterwards — renewed in
// lockstep across a restarted fleet. Run owns only the control-plane loop:
// the caller serves Handler() separately and drains the local pool itself
// (Close, or Scheduler().Shutdown for a bounded drain) once Run returns,
// as cmd/constable-worker does.
func (w *Worker) Run(ctx context.Context) error {
	for w.ID() == "" {
		if err := w.Register(ctx); err == nil {
			break
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := sleepHeartbeat(ctx, w.opts.Heartbeat); err != nil {
			return err
		}
	}
	for {
		if err := sleepHeartbeat(ctx, w.opts.Heartbeat); err != nil {
			// Deregister on a fresh context: ctx is already dead.
			dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			derr := w.Deregister(dctx)
			cancel()
			return derr
		}
		// Best-effort: a flaky heartbeat retries next tick, and the
		// server restores health on the first one that lands.
		_ = w.heartbeat(ctx)
	}
}

// Close drains the worker's local simulation pool.
func (w *Worker) Close() error { return w.sched.Close() }

// readJSON decodes a dispatch body under the worker's MaxBody cap, writing
// 413 (oversized) or 400 (bad JSON) itself and reporting success.
func (w *Worker) readJSON(rw http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(rw, r.Body, w.opts.MaxBody)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeJSON(rw, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)})
			return false
		}
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "invalid JSON: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

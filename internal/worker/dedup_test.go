package worker

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"constable/internal/service"
	"constable/internal/sim"
	"constable/internal/workload"
)

// startCountingWorker is startWorkerNode with a Run stub that counts actual
// simulations and an explicit results-server URL — the instrumentation the
// cluster-dedup tests hang their zero-simulation assertions on.
func startCountingWorker(t testing.TB, serverURL, resultsURL, name string, capacity int, calls *atomic.Uint64) *Worker {
	t.Helper()
	w, err := New(Options{
		Server:        serverURL,
		ResultsServer: resultsURL,
		Name:          name,
		Capacity:      capacity,
		Run: func(o sim.Options) (*sim.RunResult, error) {
			calls.Add(1)
			return &sim.RunResult{Cycles: o.Instructions}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	w.opts.Advertise = ts.URL
	if err := w.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	return w
}

// waitMetric polls read until cond holds or the deadline passes.
func waitMetric(t testing.TB, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("metric condition never held")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterDedupSecondSweepSimulatesZeroCells is the cluster-wide dedup
// acceptance test: a sweep simulated once by cluster A (server + two
// workers, whose results are written back into A's store) is re-run on a
// completely cold cluster B — fresh dispatch server, fresh workers with
// empty LRUs — whose workers consult A's result store before simulating.
// The second pass must simulate zero cells and produce byte-identical
// artifacts.
func TestClusterDedupSecondSweepSimulatesZeroCells(t *testing.T) {
	const cells = 9

	// Pass 1: cluster A simulates the full matrix and writes every result
	// back into A's store (the workers' default results server is A).
	a, ats := startServer(t)
	var pass1 atomic.Uint64
	startCountingWorker(t, ats.URL, "", "w1", 2, &pass1)
	startCountingWorker(t, ats.URL, "", "w2", 2, &pass1)

	matrix := testMatrix(3, 3, 40_000)
	artifacts1 := runSweepCollect(t, a, matrix)
	if got := pass1.Load(); got != cells {
		t.Fatalf("pass 1 simulated %d cells, want %d", got, cells)
	}
	// Write-backs are async (off the cells' critical path): wait for all
	// nine to land on A before declaring its store warm.
	waitMetric(t, 10*time.Second, func() bool { return a.Metrics().StoreRemoteWritebacks >= cells })

	// Pass 2: cluster B is cold everywhere except the share — its workers
	// point their results server at A.
	b, bts := startServer(t)
	var pass2 atomic.Uint64
	startCountingWorker(t, bts.URL, ats.URL, "w3", 2, &pass2)
	startCountingWorker(t, bts.URL, ats.URL, "w4", 2, &pass2)

	artifacts2 := runSweepCollect(t, b, matrix)
	if got := pass2.Load(); got != 0 {
		t.Errorf("pass 2 simulated %d cells, want 0 (every cell should come from A's store)", got)
	}
	if len(artifacts2) != len(artifacts1) {
		t.Fatalf("pass 2 produced %d cells, pass 1 %d", len(artifacts2), len(artifacts1))
	}
	for key, want := range artifacts1 {
		if got := artifacts2[key]; string(got) != string(want) {
			t.Errorf("cell %s: shared artifact differs from the simulated one\n got: %.200s\nwant: %.200s", key, got, want)
		}
	}

	am := a.Metrics()
	if am.StoreRemoteHits < cells {
		t.Errorf("A served %d remote hits, want >= %d", am.StoreRemoteHits, cells)
	}
	if am.StoreRemoteWritebacks < cells {
		t.Errorf("A accepted %d write-backs, want >= %d", am.StoreRemoteWritebacks, cells)
	}

	// Federation, the worker-less variant: a third dispatch server with no
	// workers at all, sharing against A, completes the same sweep entirely
	// at submit time — zero cells executed, a 100% dedup ratio.
	fed, err := service.Open(service.Config{Workers: -1, WorkerTTL: time.Hour,
		Share: service.NewRemoteResultStore(ats.URL)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fed.Close() })
	artifacts3 := runSweepCollect(t, fed, matrix)
	for key, want := range artifacts1 {
		if got := artifacts3[key]; string(got) != string(want) {
			t.Errorf("cell %s: federated artifact differs", key)
		}
	}
	fm := fed.Metrics()
	if fm.JobsExecuted != 0 {
		t.Errorf("federated server executed %d jobs, want 0", fm.JobsExecuted)
	}
	if fm.JobsSubmitted != cells || fm.GlobalDedupRatio != 1 {
		t.Errorf("federated submitted/dedup = %d/%v, want %d/1", fm.JobsSubmitted, fm.GlobalDedupRatio, cells)
	}
	if fm.StoreRemoteHits != cells {
		t.Errorf("federated remote hits = %d, want %d", fm.StoreRemoteHits, cells)
	}
}

// TestWorkerRejectsCorruptRemoteResult is the chaos test for the consult
// path: a lying results server answers GETs with an aliased envelope (valid
// document, wrong recorded hash) and then a wrong-schema one. The worker
// must refuse both — hash/schema verification on receipt — simulate locally,
// and count the rejections; a corrupt store degrades throughput, never
// correctness.
func TestWorkerRejectsCorruptRemoteResult(t *testing.T) {
	var gets atomic.Uint64
	liar := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			rw.WriteHeader(http.StatusOK)
			return
		}
		n := gets.Add(1)
		rw.Header().Set("Content-Type", "application/json")
		if n == 1 {
			// An aliased envelope: internally consistent, recorded under a
			// hash that is not the one the worker asked for.
			env := sim.NewResultEnvelope(strings.Repeat("00", 32), &sim.RunResult{Cycles: 1})
			writeEnvelope(rw, env)
			return
		}
		// A wrong-schema envelope under the right hash.
		hash := strings.TrimPrefix(r.URL.Path, "/v1/results/")
		env := sim.NewResultEnvelope(hash, &sim.RunResult{Cycles: 1})
		env.Schema = 99
		writeEnvelope(rw, env)
	}))
	t.Cleanup(liar.Close)

	var calls atomic.Uint64
	w, err := New(Options{
		Server:        "http://unused.invalid",
		ResultsServer: liar.URL,
		Capacity:      1,
		Run: func(o sim.Options) (*sim.RunResult, error) {
			calls.Add(1)
			return &sim.RunResult{Cycles: o.Instructions}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })

	name := workload.SmallSuite()[0].Name
	for i, insts := range []uint64{50_000, 60_000} {
		j, err := w.sched.Submit(service.JobSpec{Workload: name, Instructions: insts})
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		if j.CacheHit() {
			t.Errorf("cell %d adopted a corrupt remote result", i)
		}
		if res.Cycles != insts {
			t.Errorf("cell %d cycles = %d, want %d (the local simulation)", i, res.Cycles, insts)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("local simulations = %d, want 2 (both corrupt results refused)", calls.Load())
	}
	m := w.Scheduler().Metrics()
	if m.StoreRemoteRejected != 2 {
		t.Errorf("remote rejections = %d, want 2 (alias + schema)", m.StoreRemoteRejected)
	}
	if m.StoreRemoteHits != 0 {
		t.Errorf("remote hits = %d, want 0", m.StoreRemoteHits)
	}
}

func writeEnvelope(rw http.ResponseWriter, env sim.ResultEnvelope) {
	rw.WriteHeader(http.StatusOK)
	json.NewEncoder(rw).Encode(env)
}

// BenchmarkSweepRepeated measures what the cluster store saves on repeated
// identical sweeps: a warm pass simulates the 32-cell matrix once, then
// each iteration re-runs it (a) against the same server — LRU re-hits —
// and (b) on a freshly booted worker-less federated server consulting the
// warm one over HTTP, where every cell is one verified GET round trip. CI
// uploads the results as BENCH_sweep_dedup.json.
func BenchmarkSweepRepeated(b *testing.B) {
	fixedLatency := func(o sim.Options) (*sim.RunResult, error) {
		time.Sleep(2 * time.Millisecond)
		return &sim.RunResult{Cycles: o.Instructions}, nil
	}
	s, ts := startServer(b)
	for i := 0; i < 2; i++ {
		w, err := New(Options{Server: ts.URL, Name: fmt.Sprintf("w%d", i+1), Capacity: 8, Run: fixedLatency})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		wts := httptest.NewServer(w.Handler())
		b.Cleanup(wts.Close)
		w.opts.Advertise = wts.URL
		if err := w.Register(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	const rows, cols = 4, 8
	matrix := testMatrix(rows, cols, 500_000)
	runSweepCollect(b, s, matrix) // the warm pass: the only real simulations

	b.Run("rehit=local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSweepCollect(b, s, matrix)
		}
		b.ReportMetric(float64(rows*cols*b.N)/b.Elapsed().Seconds(), "cells/s")
	})
	b.Run("rehit=federated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A cold, worker-less dispatch server: every cell resolves via
			// one GET against the warm server's store.
			fed, err := service.Open(service.Config{Workers: -1, WorkerTTL: time.Hour,
				Share: service.NewRemoteResultStore(ts.URL)})
			if err != nil {
				b.Fatal(err)
			}
			runSweepCollect(b, fed, matrix)
			if m := fed.Metrics(); m.JobsExecuted != 0 {
				b.Fatalf("federated pass executed %d jobs, want 0", m.JobsExecuted)
			}
			fed.Close()
		}
		b.ReportMetric(float64(rows*cols*b.N)/b.Elapsed().Seconds(), "cells/s")
	})
}

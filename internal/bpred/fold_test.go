package bpred

import "testing"

// TestIncrementalFoldsMatchReference drives the predictor through a long
// pseudo-random update sequence and checks, after every shift, that the
// incrementally-maintained folded histories equal the O(history-length)
// reference definition. This pins the rotate-and-patch recurrence in
// shiftFold to foldedHist.
func TestIncrementalFoldsMatchReference(t *testing.T) {
	p := New(DefaultConfig())
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 4*maxHistory; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		pc := 0x401000 + (rng>>8%512)*4
		taken := rng&1 == 1
		p.UpdateDirection(pc, taken)

		for tab := 0; tab < numTables; tab++ {
			n := histLens[tab]
			if got, want := p.foldIdx[tab], p.foldedHist(n, tableBits); got != want {
				t.Fatalf("update %d table %d: foldIdx = %#x, reference = %#x", i, tab, got, want)
			}
			if got, want := p.foldTag[tab], p.foldedHist(n, tagBits); got != want {
				t.Fatalf("update %d table %d: foldTag = %#x, reference = %#x", i, tab, got, want)
			}
		}
	}
}

package bpred

import (
	"math/rand"
	"testing"

	"constable/internal/isa"
)

func TestAlwaysTakenBranchLearns(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400100)
	wrong := 0
	for i := 0; i < 200; i++ {
		if !p.PredictDirection(pc) {
			wrong++
		}
		p.UpdateDirection(pc, true)
	}
	if wrong > 5 {
		t.Errorf("always-taken branch mispredicted %d/200 times", wrong)
	}
}

func TestAlternatingBranchLearnsWithHistory(t *testing.T) {
	// TAGE's tagged history components must learn a strict T/NT alternation.
	p := New(DefaultConfig())
	pc := uint64(0x400200)
	wrongLate := 0
	for i := 0; i < 600; i++ {
		taken := i%2 == 0
		pred := p.PredictDirection(pc)
		if i >= 300 && pred != taken {
			wrongLate++
		}
		p.UpdateDirection(pc, taken)
	}
	if wrongLate > 30 {
		t.Errorf("alternating branch mispredicted %d/300 in steady state", wrongLate)
	}
}

func TestLoopExitPattern(t *testing.T) {
	// A loop taken 7 times then not-taken must be mostly predictable.
	p := New(DefaultConfig())
	pc := uint64(0x400300)
	wrongLate := 0
	total := 0
	for iter := 0; iter < 300; iter++ {
		for i := 0; i < 8; i++ {
			taken := i < 7
			pred := p.PredictDirection(pc)
			if iter >= 150 {
				total++
				if pred != taken {
					wrongLate++
				}
			}
			p.UpdateDirection(pc, taken)
		}
	}
	if rate := float64(wrongLate) / float64(total); rate > 0.2 {
		t.Errorf("loop-exit steady-state mispredict rate %.2f too high", rate)
	}
}

func TestRandomBranchIsHard(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	pc := uint64(0x400400)
	wrong := 0
	const n = 2000
	for i := 0; i < n; i++ {
		taken := rng.Intn(2) == 0
		if p.PredictDirection(pc) != taken {
			wrong++
		}
		p.UpdateDirection(pc, taken)
	}
	rate := float64(wrong) / n
	if rate < 0.3 {
		t.Errorf("random branch mispredict rate %.2f suspiciously low", rate)
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	pc, target := uint64(0x400500), uint64(0x400800)
	if _, ok := p.PredictTarget(pc, isa.OpJump); ok {
		t.Error("cold BTB must miss")
	}
	p.UpdateTarget(pc, isa.OpJump, target)
	got, ok := p.PredictTarget(pc, isa.OpJump)
	if !ok || got != target {
		t.Errorf("BTB predict = %#x,%v", got, ok)
	}
}

func TestRAS(t *testing.T) {
	p := New(DefaultConfig())
	callPC := uint64(0x400600)
	p.UpdateTarget(callPC, isa.OpCall, 0x500000)
	got, ok := p.PredictTarget(0x500010, isa.OpRet)
	if !ok || got != callPC+isa.InstBytes {
		t.Errorf("RAS predict = %#x,%v, want %#x", got, ok, callPC+isa.InstBytes)
	}
	p.UpdateTarget(0x500010, isa.OpRet, got) // pop
	if _, ok := p.PredictTarget(0x500014, isa.OpRet); ok {
		t.Error("RAS must be empty after pop")
	}
}

func TestRASOverflowKeepsNewest(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < rasDepth+5; i++ {
		p.UpdateTarget(uint64(0x400000+i*8), isa.OpCall, 0x500000)
	}
	got, ok := p.PredictTarget(0x500000, isa.OpRet)
	want := uint64(0x400000+(rasDepth+4)*8) + isa.InstBytes
	if !ok || got != want {
		t.Errorf("RAS top = %#x, want %#x", got, want)
	}
}

func TestMispredictRate(t *testing.T) {
	p := New(DefaultConfig())
	if p.MispredictRate() != 0 {
		t.Error("empty predictor must report rate 0")
	}
	p.PredictDirection(0x400700)
	p.UpdateDirection(0x400700, true)
	if p.Lookups != 1 {
		t.Errorf("lookups = %d", p.Lookups)
	}
}

func TestDistinctBranchesDoNotInterfereMuch(t *testing.T) {
	p := New(DefaultConfig())
	wrong := 0
	const n = 400
	for i := 0; i < n; i++ {
		for b := 0; b < 8; b++ {
			pc := uint64(0x410000 + b*4)
			taken := b%2 == 0 // each branch has a fixed direction
			if i > 50 && p.PredictDirection(pc) != taken {
				wrong++
			} else if i <= 50 {
				p.PredictDirection(pc)
			}
			p.UpdateDirection(pc, taken)
		}
	}
	if wrong > 100 {
		t.Errorf("fixed-direction branches mispredicted %d times", wrong)
	}
}

func TestBimodalVariantPredicts(t *testing.T) {
	p := New(BimodalConfig())
	pc := uint64(0x400900)
	wrong := 0
	for i := 0; i < 200; i++ {
		if i > 10 && !p.PredictDirection(pc) {
			wrong++
		} else if i <= 10 {
			p.PredictDirection(pc)
		}
		p.UpdateDirection(pc, true)
	}
	if wrong > 0 {
		t.Errorf("bimodal mispredicted a fixed-direction branch %d times in steady state", wrong)
	}
}

func TestBimodalCannotLearnAlternation(t *testing.T) {
	// Without tagged history components a strict T/NT alternation is
	// unlearnable — that is exactly what makes the variant a useful
	// sweepable contrast to TAGE.
	p := New(BimodalConfig())
	pc := uint64(0x400A00)
	wrongLate := 0
	for i := 0; i < 600; i++ {
		taken := i%2 == 0
		pred := p.PredictDirection(pc)
		if i >= 300 && pred != taken {
			wrongLate++
		}
		p.UpdateDirection(pc, taken)
	}
	if wrongLate < 100 {
		t.Errorf("bimodal alternation mispredicts = %d/300, suspiciously low", wrongLate)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := BimodalConfig().Validate(); err != nil {
		t.Fatalf("bimodal config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Tables = MaxTables + 1
	if bad.Validate() == nil {
		t.Error("excess tables must be rejected")
	}
	bad = DefaultConfig()
	bad.HistLens[1] = bad.HistLens[0] // not strictly increasing
	if bad.Validate() == nil {
		t.Error("non-increasing history lengths must be rejected")
	}
	bad = DefaultConfig()
	bad.HistLens[3] = MaxHistory + 1
	if bad.Validate() == nil {
		t.Error("over-long history must be rejected")
	}
	bad = DefaultConfig()
	bad.TagBits = 0
	if bad.Validate() == nil {
		t.Error("zero tag bits must be rejected")
	}
}

func TestShortHistoryTageLearnsShortPatterns(t *testing.T) {
	// A 2-table TAGE with short histories still learns a period-2 pattern.
	cfg := DefaultConfig()
	cfg.Tables = 2
	cfg.HistLens = [MaxTables]int{2, 6}
	p := New(cfg)
	pc := uint64(0x400B00)
	wrongLate := 0
	for i := 0; i < 600; i++ {
		taken := i%2 == 0
		pred := p.PredictDirection(pc)
		if i >= 300 && pred != taken {
			wrongLate++
		}
		p.UpdateDirection(pc, taken)
	}
	if wrongLate > 30 {
		t.Errorf("2-table TAGE alternation mispredicts = %d/300", wrongLate)
	}
}

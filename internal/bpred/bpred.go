// Package bpred implements the front-end branch prediction substrate: a
// TAGE-style tagged geometric-history direction predictor, a branch target
// buffer, and a return address stack. The baseline core (Table 2 of the
// paper) uses TAGE/ITTAGE with a 20-cycle misprediction penalty; this is a
// compact TAGE with the same structure (bimodal base + tagged components
// with geometrically-growing history lengths).
package bpred

import "constable/internal/isa"

const (
	numTables   = 4  // tagged components
	tableBits   = 10 // entries per tagged component = 1<<tableBits
	bimodalBits = 12 // bimodal base table entries = 1<<bimodalBits
	tagBits     = 11
	maxHistory  = 128
	rasDepth    = 32
	btbBits     = 11
)

// history lengths for the tagged components (geometric series).
var histLens = [numTables]int{4, 12, 34, 96}

type tageEntry struct {
	tag    uint32
	ctr    int8 // signed 3-bit counter: taken if >= 0
	useful uint8
}

// Predictor is the combined direction predictor + BTB + RAS. The zero value
// is not usable; call New.
type Predictor struct {
	bimodal []int8
	tables  [numTables][]tageEntry
	ghist   [maxHistory]bool
	gpos    int // circular position

	// foldIdx/foldTag are the folded histories foldedHist(histLens[t], bits)
	// for bits = tableBits and tagBits, maintained incrementally on every
	// history shift so a lookup never walks the history buffer.
	foldIdx [numTables]uint32
	foldTag [numTables]uint32

	btb []btbEntry
	ras []uint64

	// statistics
	Lookups     uint64
	Mispredicts uint64
}

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
}

// New returns an initialized predictor.
func New() *Predictor {
	p := &Predictor{
		bimodal: make([]int8, 1<<bimodalBits),
		btb:     make([]btbEntry, 1<<btbBits),
		ras:     make([]uint64, 0, rasDepth),
	}
	for i := range p.tables {
		p.tables[i] = make([]tageEntry, 1<<tableBits)
	}
	return p
}

func (p *Predictor) histBit(i int) bool {
	return p.ghist[(p.gpos-1-i+2*maxHistory)%maxHistory]
}

// foldedHist compresses the most recent n history bits into bits output bits.
// It is the reference definition of the fold; lookups use the incrementally-
// maintained foldIdx/foldTag registers, which a regression test holds equal
// to this.
func (p *Predictor) foldedHist(n, bits int) uint32 {
	var h uint32
	for i := 0; i < n; i++ {
		if p.histBit(i) {
			h ^= 1 << (uint(i) % uint(bits))
		}
	}
	return h
}

// shiftFold advances one folded-history register for a new bit entering the
// window and the bit at position n-1 leaving it. Pushing a bit moves every
// history position i to i+1, which moves fold position (i mod b) to
// ((i+1) mod b) — a rotate-left within b bits; the new bit lands at position
// 0 and the leaving bit, rotated onto position (n mod b), is XORed away.
func shiftFold(f uint32, bits, n int, newBit, oldBit bool) uint32 {
	mask := uint32(1)<<bits - 1
	f = ((f << 1) | (f >> (bits - 1))) & mask
	if newBit {
		f ^= 1
	}
	if oldBit {
		f ^= 1 << (uint(n) % uint(bits))
	}
	return f
}

// shiftHistory appends the branch outcome to the global history and updates
// every folded register.
func (p *Predictor) shiftHistory(taken bool) {
	for t := 0; t < numTables; t++ {
		n := histLens[t]
		old := p.histBit(n - 1)
		p.foldIdx[t] = shiftFold(p.foldIdx[t], tableBits, n, taken, old)
		p.foldTag[t] = shiftFold(p.foldTag[t], tagBits, n, taken, old)
	}
	p.ghist[p.gpos] = taken
	p.gpos = (p.gpos + 1) % maxHistory
}

func (p *Predictor) index(pc uint64, t int) uint32 {
	return (uint32(pc>>2) ^ p.foldIdx[t] ^ uint32(t)*0x9E37) & ((1 << tableBits) - 1)
}

func (p *Predictor) tag(pc uint64, t int) uint32 {
	return (uint32(pc>>2)*2654435761 ^ p.foldTag[t]) & ((1 << tagBits) - 1)
}

// PredictDirection predicts the direction of the conditional branch at pc.
func (p *Predictor) PredictDirection(pc uint64) bool {
	p.Lookups++
	taken, _, _ := p.predict(pc)
	return taken
}

// predict returns (prediction, provider table index or -1 for bimodal,
// provider entry index).
func (p *Predictor) predict(pc uint64) (bool, int, uint32) {
	for t := numTables - 1; t >= 0; t-- {
		idx := p.index(pc, t)
		e := &p.tables[t][idx]
		if e.tag == p.tag(pc, t) {
			return e.ctr >= 0, t, idx
		}
	}
	bi := (pc >> 2) & ((1 << bimodalBits) - 1)
	return p.bimodal[bi] >= 0, -1, uint32(bi)
}

// UpdateDirection trains the predictor with the resolved outcome and shifts
// the global history. It must be called exactly once per conditional branch,
// in fetch order.
func (p *Predictor) UpdateDirection(pc uint64, taken bool) {
	pred, provider, idx := p.predict(pc)
	if pred != taken {
		p.Mispredicts++
	}

	// Update the provider's counter.
	if provider >= 0 {
		e := &p.tables[provider][idx]
		e.ctr = satUpdate(e.ctr, taken, 3)
		if pred == taken && e.useful < 3 {
			e.useful++
		}
	} else {
		bi := idx
		p.bimodal[bi] = satUpdate(p.bimodal[bi], taken, 2)
	}

	// On a misprediction, allocate in a longer-history table.
	if pred != taken && provider < numTables-1 {
		start := provider + 1
		allocated := false
		for t := start; t < numTables; t++ {
			i := p.index(pc, t)
			e := &p.tables[t][i]
			if e.useful == 0 {
				e.tag = p.tag(pc, t)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			for t := start; t < numTables; t++ {
				e := &p.tables[t][p.index(pc, t)]
				if e.useful > 0 {
					e.useful--
				}
			}
		}
	}

	// Shift history.
	p.shiftHistory(taken)
}

func satUpdate(c int8, taken bool, bits uint) int8 {
	max := int8(1<<(bits-1)) - 1
	min := -int8(1 << (bits - 1))
	if taken {
		if c < max {
			c++
		}
	} else if c > min {
		c--
	}
	return c
}

// PredictTarget returns the predicted target for a taken control-flow
// instruction at pc. Returns look-up success; unconditional direct branches
// hit after first encounter, returns use the RAS.
func (p *Predictor) PredictTarget(pc uint64, op isa.Op) (uint64, bool) {
	if op == isa.OpRet {
		if len(p.ras) == 0 {
			return 0, false
		}
		return p.ras[len(p.ras)-1], true
	}
	e := &p.btb[(pc>>2)&((1<<btbBits)-1)]
	if e.valid && e.pc == pc {
		return e.target, true
	}
	return 0, false
}

// UpdateTarget installs the resolved target into the BTB and maintains the
// RAS for calls and returns. Call it in fetch order for every taken branch.
func (p *Predictor) UpdateTarget(pc uint64, op isa.Op, target uint64) {
	switch op {
	case isa.OpCall:
		if len(p.ras) == rasDepth {
			copy(p.ras, p.ras[1:])
			p.ras = p.ras[:rasDepth-1]
		}
		p.ras = append(p.ras, pc+isa.InstBytes)
	case isa.OpRet:
		if len(p.ras) > 0 {
			p.ras = p.ras[:len(p.ras)-1]
		}
		return // returns are predicted by the RAS, not the BTB
	}
	e := &p.btb[(pc>>2)&((1<<btbBits)-1)]
	e.pc, e.target, e.valid = pc, target, true
}

// MispredictRate returns the fraction of direction lookups that mispredicted.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

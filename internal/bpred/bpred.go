// Package bpred implements the front-end branch prediction substrate: a
// TAGE-style tagged geometric-history direction predictor, a branch target
// buffer, and a return address stack. The baseline core (Table 2 of the
// paper) uses TAGE/ITTAGE with a 20-cycle misprediction penalty; this is a
// compact TAGE with the same structure (bimodal base + tagged components
// with geometrically-growing history lengths).
//
// The predictor is fully parameterized through Config: the mechanism
// registry (internal/sim) exposes the TAGE geometry and a plain-bimodal
// fallback variant as a sweepable axis, so predictor interplay studies run
// through the same New(Config) constructor the default core uses.
package bpred

import (
	"fmt"

	"constable/internal/isa"
)

// Default geometry (Table 2-like compact TAGE). DefaultConfig returns these.
const (
	numTables   = 4  // tagged components
	tableBits   = 10 // entries per tagged component = 1<<tableBits
	bimodalBits = 12 // bimodal base table entries = 1<<bimodalBits
	tagBits     = 11
	maxHistory  = 128
	rasDepth    = 32
	btbBits     = 11
)

// MaxTables caps the tagged-component count so Config stays a comparable
// fixed-size value (the service layer relies on == for canonicalization).
const MaxTables = 8

// MaxHistory is the longest global-history length a tagged component may use.
const MaxHistory = maxHistory

// history lengths for the default tagged components (geometric series).
var histLens = [numTables]int{4, 12, 34, 96}

// Config parameterizes a Predictor. The zero value is not valid; start from
// DefaultConfig (or BimodalConfig) and override fields. Config is a plain
// comparable value: two equal configs describe identical predictors.
type Config struct {
	// Tables is the number of tagged TAGE components. 0 selects the plain
	// bimodal variant: the base table predicts alone and no global history
	// is consulted (the history still shifts, keeping the update contract
	// identical across variants).
	Tables int `json:"tables"`
	// TableBits sizes each tagged component at 1<<TableBits entries.
	TableBits int `json:"table_bits"`
	// BimodalBits sizes the bimodal base table at 1<<BimodalBits entries.
	BimodalBits int `json:"bimodal_bits"`
	// TagBits is the partial-tag width stored in the tagged components.
	TagBits int `json:"tag_bits"`
	// HistLens[0:Tables] are the global-history lengths of the tagged
	// components, strictly increasing, each at most MaxHistory. Entries
	// past Tables are ignored and should be zero.
	HistLens [MaxTables]int `json:"hist_lens"`
	// RASDepth is the return-address-stack depth.
	RASDepth int `json:"ras_depth"`
	// BTBBits sizes the branch target buffer at 1<<BTBBits entries.
	BTBBits int `json:"btb_bits"`
}

// DefaultConfig returns the Table 2 baseline TAGE geometry.
func DefaultConfig() Config {
	cfg := Config{
		Tables:      numTables,
		TableBits:   tableBits,
		BimodalBits: bimodalBits,
		TagBits:     tagBits,
		RASDepth:    rasDepth,
		BTBBits:     btbBits,
	}
	copy(cfg.HistLens[:], histLens[:])
	return cfg
}

// BimodalConfig returns the plain-bimodal fallback variant: the default
// geometry with every tagged component removed.
func BimodalConfig() Config {
	cfg := DefaultConfig()
	cfg.Tables = 0
	cfg.HistLens = [MaxTables]int{}
	return cfg
}

// Validate reports whether the configuration describes a buildable
// predictor.
func (c Config) Validate() error {
	if c.Tables < 0 || c.Tables > MaxTables {
		return fmt.Errorf("bpred: tables must be in [0,%d], got %d", MaxTables, c.Tables)
	}
	if c.TableBits < 1 || c.TableBits > 20 {
		return fmt.Errorf("bpred: table_bits must be in [1,20], got %d", c.TableBits)
	}
	if c.BimodalBits < 1 || c.BimodalBits > 22 {
		return fmt.Errorf("bpred: bimodal_bits must be in [1,22], got %d", c.BimodalBits)
	}
	if c.TagBits < 2 || c.TagBits > 16 {
		return fmt.Errorf("bpred: tag_bits must be in [2,16], got %d", c.TagBits)
	}
	prev := 0
	for t := 0; t < c.Tables; t++ {
		n := c.HistLens[t]
		if n <= prev {
			return fmt.Errorf("bpred: hist_lens must be strictly increasing, got %v", c.HistLens[:c.Tables])
		}
		if n > MaxHistory {
			return fmt.Errorf("bpred: history length %d exceeds the %d-bit window", n, MaxHistory)
		}
		prev = n
	}
	if c.RASDepth < 1 || c.RASDepth > 1024 {
		return fmt.Errorf("bpred: ras_depth must be in [1,1024], got %d", c.RASDepth)
	}
	if c.BTBBits < 1 || c.BTBBits > 22 {
		return fmt.Errorf("bpred: btb_bits must be in [1,22], got %d", c.BTBBits)
	}
	return nil
}

type tageEntry struct {
	tag    uint32
	ctr    int8 // signed 3-bit counter: taken if >= 0
	useful uint8
}

// Predictor is the combined direction predictor + BTB + RAS. The zero value
// is not usable; call New.
type Predictor struct {
	cfg Config

	bimodal []int8
	tables  [][]tageEntry
	ghist   [maxHistory]bool
	gpos    int // circular position

	// foldIdx/foldTag are the folded histories foldedHist(HistLens[t], bits)
	// for bits = TableBits and TagBits, maintained incrementally on every
	// history shift so a lookup never walks the history buffer.
	foldIdx []uint32
	foldTag []uint32

	btb []btbEntry
	ras []uint64

	// statistics
	Lookups     uint64
	Mispredicts uint64
}

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
}

// New returns a predictor built from cfg. It panics on an invalid
// configuration — callers that accept configs from outside validate with
// Config.Validate first (the service layer does this at canonicalization).
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]int8, 1<<cfg.BimodalBits),
		tables:  make([][]tageEntry, cfg.Tables),
		foldIdx: make([]uint32, cfg.Tables),
		foldTag: make([]uint32, cfg.Tables),
		btb:     make([]btbEntry, 1<<cfg.BTBBits),
		ras:     make([]uint64, 0, cfg.RASDepth),
	}
	for i := range p.tables {
		p.tables[i] = make([]tageEntry, 1<<cfg.TableBits)
	}
	return p
}

// Config returns the configuration the predictor was built from.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) histBit(i int) bool {
	return p.ghist[(p.gpos-1-i+2*maxHistory)%maxHistory]
}

// foldedHist compresses the most recent n history bits into bits output bits.
// It is the reference definition of the fold; lookups use the incrementally-
// maintained foldIdx/foldTag registers, which a regression test holds equal
// to this.
func (p *Predictor) foldedHist(n, bits int) uint32 {
	var h uint32
	for i := 0; i < n; i++ {
		if p.histBit(i) {
			h ^= 1 << (uint(i) % uint(bits))
		}
	}
	return h
}

// shiftFold advances one folded-history register for a new bit entering the
// window and the bit at position n-1 leaving it. Pushing a bit moves every
// history position i to i+1, which moves fold position (i mod b) to
// ((i+1) mod b) — a rotate-left within b bits; the new bit lands at position
// 0 and the leaving bit, rotated onto position (n mod b), is XORed away.
func shiftFold(f uint32, bits, n int, newBit, oldBit bool) uint32 {
	mask := uint32(1)<<bits - 1
	f = ((f << 1) | (f >> (bits - 1))) & mask
	if newBit {
		f ^= 1
	}
	if oldBit {
		f ^= 1 << (uint(n) % uint(bits))
	}
	return f
}

// shiftHistory appends the branch outcome to the global history and updates
// every folded register.
func (p *Predictor) shiftHistory(taken bool) {
	for t := 0; t < p.cfg.Tables; t++ {
		n := p.cfg.HistLens[t]
		old := p.histBit(n - 1)
		p.foldIdx[t] = shiftFold(p.foldIdx[t], p.cfg.TableBits, n, taken, old)
		p.foldTag[t] = shiftFold(p.foldTag[t], p.cfg.TagBits, n, taken, old)
	}
	p.ghist[p.gpos] = taken
	p.gpos = (p.gpos + 1) % maxHistory
}

func (p *Predictor) index(pc uint64, t int) uint32 {
	return (uint32(pc>>2) ^ p.foldIdx[t] ^ uint32(t)*0x9E37) & ((1 << p.cfg.TableBits) - 1)
}

func (p *Predictor) tag(pc uint64, t int) uint32 {
	return (uint32(pc>>2)*2654435761 ^ p.foldTag[t]) & ((1 << p.cfg.TagBits) - 1)
}

// PredictDirection predicts the direction of the conditional branch at pc.
func (p *Predictor) PredictDirection(pc uint64) bool {
	p.Lookups++
	taken, _, _ := p.predict(pc)
	return taken
}

// predict returns (prediction, provider table index or -1 for bimodal,
// provider entry index).
func (p *Predictor) predict(pc uint64) (bool, int, uint32) {
	for t := p.cfg.Tables - 1; t >= 0; t-- {
		idx := p.index(pc, t)
		e := &p.tables[t][idx]
		if e.tag == p.tag(pc, t) {
			return e.ctr >= 0, t, idx
		}
	}
	bi := (pc >> 2) & ((1 << p.cfg.BimodalBits) - 1)
	return p.bimodal[bi] >= 0, -1, uint32(bi)
}

// UpdateDirection trains the predictor with the resolved outcome and shifts
// the global history. It must be called exactly once per conditional branch,
// in fetch order.
func (p *Predictor) UpdateDirection(pc uint64, taken bool) {
	pred, provider, idx := p.predict(pc)
	if pred != taken {
		p.Mispredicts++
	}

	// Update the provider's counter.
	if provider >= 0 {
		e := &p.tables[provider][idx]
		e.ctr = satUpdate(e.ctr, taken, 3)
		if pred == taken && e.useful < 3 {
			e.useful++
		}
	} else {
		bi := idx
		p.bimodal[bi] = satUpdate(p.bimodal[bi], taken, 2)
	}

	// On a misprediction, allocate in a longer-history table.
	if pred != taken && provider < p.cfg.Tables-1 {
		start := provider + 1
		allocated := false
		for t := start; t < p.cfg.Tables; t++ {
			i := p.index(pc, t)
			e := &p.tables[t][i]
			if e.useful == 0 {
				e.tag = p.tag(pc, t)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			for t := start; t < p.cfg.Tables; t++ {
				e := &p.tables[t][p.index(pc, t)]
				if e.useful > 0 {
					e.useful--
				}
			}
		}
	}

	// Shift history.
	p.shiftHistory(taken)
}

func satUpdate(c int8, taken bool, bits uint) int8 {
	max := int8(1<<(bits-1)) - 1
	min := -int8(1 << (bits - 1))
	if taken {
		if c < max {
			c++
		}
	} else if c > min {
		c--
	}
	return c
}

// PredictTarget returns the predicted target for a taken control-flow
// instruction at pc. Returns look-up success; unconditional direct branches
// hit after first encounter, returns use the RAS.
func (p *Predictor) PredictTarget(pc uint64, op isa.Op) (uint64, bool) {
	if op == isa.OpRet {
		if len(p.ras) == 0 {
			return 0, false
		}
		return p.ras[len(p.ras)-1], true
	}
	e := &p.btb[(pc>>2)&((1<<p.cfg.BTBBits)-1)]
	if e.valid && e.pc == pc {
		return e.target, true
	}
	return 0, false
}

// UpdateTarget installs the resolved target into the BTB and maintains the
// RAS for calls and returns. Call it in fetch order for every taken branch.
func (p *Predictor) UpdateTarget(pc uint64, op isa.Op, target uint64) {
	switch op {
	case isa.OpCall:
		if len(p.ras) == p.cfg.RASDepth {
			copy(p.ras, p.ras[1:])
			p.ras = p.ras[:p.cfg.RASDepth-1]
		}
		p.ras = append(p.ras, pc+isa.InstBytes)
	case isa.OpRet:
		if len(p.ras) > 0 {
			p.ras = p.ras[:len(p.ras)-1]
		}
		return // returns are predicted by the RAS, not the BTB
	}
	e := &p.btb[(pc>>2)&((1<<p.cfg.BTBBits)-1)]
	e.pc, e.target, e.valid = pc, target, true
}

// MispredictRate returns the fraction of direction lookups that mispredicted.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

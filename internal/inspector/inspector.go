// Package inspector reproduces the paper's Load Inspector tool (§4.1–4.2,
// appendix B): it analyzes a dynamic instruction stream and classifies every
// static load as global-stable (all dynamic instances fetched the same value
// from the same address) or not, with breakdowns by addressing mode and
// inter-occurrence distance, mirroring Fig. 3 and Figs. 23–24.
package inspector

import (
	"fmt"
	"strings"

	"constable/internal/isa"
)

// DistanceBuckets are the paper's inter-occurrence-distance bins (Fig. 3c):
// [0,50), [50,100), [100,250), 250+.
var DistanceBuckets = []string{"[0-50)", "[50-100)", "[100-250)", "250+"}

func distanceBucket(d uint64) int {
	switch {
	case d < 50:
		return 0
	case d < 100:
		return 1
	case d < 250:
		return 2
	default:
		return 3
	}
}

// loadRecord accumulates the history of one static load PC.
type loadRecord struct {
	mode      isa.AddrMode
	addr      uint64
	value     uint64
	count     uint64
	stable    bool
	lastSeq   uint64
	distances [4]uint64 // histogram of inter-occurrence distances
}

// Inspector consumes dynamic instructions and accumulates the global-stable
// load analysis. The zero value is not usable; call New.
type Inspector struct {
	loads     map[uint64]*loadRecord
	dynInsts  uint64
	dynLoads  uint64
	dynStores uint64
}

// New returns an empty Inspector.
func New() *Inspector {
	return &Inspector{loads: make(map[uint64]*loadRecord)}
}

// Observe feeds one dynamic instruction into the analysis. Wrong-path
// instructions must not be fed (the paper instruments committed execution).
func (ins *Inspector) Observe(d *isa.DynInst) {
	ins.dynInsts++
	switch d.Op {
	case isa.OpStore:
		ins.dynStores++
	case isa.OpLoad:
		ins.dynLoads++
		r, ok := ins.loads[d.PC]
		if !ok {
			ins.loads[d.PC] = &loadRecord{
				mode:    d.Mode,
				addr:    d.Addr,
				value:   d.Value,
				count:   1,
				stable:  true,
				lastSeq: d.Seq,
			}
			return
		}
		r.count++
		if r.stable && (r.addr != d.Addr || r.value != d.Value) {
			r.stable = false
		}
		r.distances[distanceBucket(d.Seq-r.lastSeq)]++
		r.lastSeq = d.Seq
	}
}

// Report is the result of the analysis.
type Report struct {
	DynInsts  uint64
	DynLoads  uint64
	DynStores uint64

	// GlobalStableDynLoads is the number of dynamic loads issued by
	// global-stable static loads (Fig. 3a numerator).
	GlobalStableDynLoads uint64
	// StaticLoads and GlobalStableStaticLoads count static load PCs.
	StaticLoads             uint64
	GlobalStableStaticLoads uint64

	// ByMode breaks global-stable dynamic loads down by addressing mode
	// (Fig. 3b); keys are isa.AddrMode strings.
	ByMode map[string]uint64
	// ByDistance is the inter-occurrence-distance histogram of global-stable
	// dynamic loads (Fig. 3c), keyed by DistanceBuckets.
	ByDistance map[string]uint64
	// ByModeDistance is the per-mode distance histogram (Fig. 3d).
	ByModeDistance map[string]map[string]uint64
}

// GlobalStableFraction returns the fraction of dynamic loads that are
// global-stable (Fig. 3a).
func (r *Report) GlobalStableFraction() float64 {
	if r.DynLoads == 0 {
		return 0
	}
	return float64(r.GlobalStableDynLoads) / float64(r.DynLoads)
}

// Report computes the analysis over everything observed so far. A static
// load that executed only once is counted as global-stable (its single
// instance trivially repeated nothing, matching the tool's definition of
// "same value from the same address across all dynamic instances").
func (ins *Inspector) Report() *Report {
	rep := &Report{
		DynInsts:       ins.dynInsts,
		DynLoads:       ins.dynLoads,
		DynStores:      ins.dynStores,
		ByMode:         make(map[string]uint64),
		ByDistance:     make(map[string]uint64),
		ByModeDistance: make(map[string]map[string]uint64),
	}
	for _, mode := range []isa.AddrMode{isa.AddrPCRel, isa.AddrStackRel, isa.AddrRegRel} {
		rep.ByModeDistance[mode.String()] = make(map[string]uint64)
	}
	for _, r := range ins.loads {
		rep.StaticLoads++
		if !r.stable {
			continue
		}
		rep.GlobalStableStaticLoads++
		rep.GlobalStableDynLoads += r.count
		rep.ByMode[r.mode.String()] += r.count
		md := rep.ByModeDistance[r.mode.String()]
		for b, n := range r.distances {
			rep.ByDistance[DistanceBuckets[b]] += n
			if md != nil {
				md[DistanceBuckets[b]] += n
			}
		}
	}
	return rep
}

// StableLoadPCs returns the set of global-stable static load PCs, the oracle
// input for the Ideal Constable and Ideal Stable LVP configurations (§4.4).
func (ins *Inspector) StableLoadPCs() map[uint64]bool {
	out := make(map[uint64]bool)
	for pc, r := range ins.loads {
		if r.stable {
			out[pc] = true
		}
	}
	return out
}

// StableLoadModes returns the addressing mode of each global-stable load PC.
func (ins *Inspector) StableLoadModes() map[uint64]isa.AddrMode {
	out := make(map[uint64]isa.AddrMode)
	for pc, r := range ins.loads {
		if r.stable {
			out[pc] = r.mode
		}
	}
	return out
}

// String renders the report in the shape of Fig. 3.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dynamic instructions: %d (loads %d, stores %d)\n",
		r.DynInsts, r.DynLoads, r.DynStores)
	fmt.Fprintf(&b, "global-stable: %.1f%% of dynamic loads (%d/%d static loads)\n",
		100*r.GlobalStableFraction(), r.GlobalStableStaticLoads, r.StaticLoads)
	total := float64(r.GlobalStableDynLoads)
	if total > 0 {
		fmt.Fprintf(&b, "by addressing mode: pc-rel %.1f%%  stack-rel %.1f%%  reg-rel %.1f%%\n",
			100*float64(r.ByMode["pc-rel"])/total,
			100*float64(r.ByMode["stack-rel"])/total,
			100*float64(r.ByMode["reg-rel"])/total)
		fmt.Fprintf(&b, "by inter-occurrence distance:")
		var dtotal uint64
		for _, k := range DistanceBuckets {
			dtotal += r.ByDistance[k]
		}
		for _, k := range DistanceBuckets {
			fmt.Fprintf(&b, "  %s %.1f%%", k, 100*float64(r.ByDistance[k])/float64(maxU64(dtotal, 1)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

package inspector

import (
	"strings"
	"testing"

	"constable/internal/isa"
)

func load(seq, pc, addr, value uint64, mode isa.AddrMode) isa.DynInst {
	return isa.DynInst{Seq: seq, PC: pc, Op: isa.OpLoad, Addr: addr, Value: value, Mode: mode}
}

func TestStableLoadDetection(t *testing.T) {
	ins := New()
	// PC 100: always same address and value → stable.
	// PC 200: value changes → unstable.
	// PC 300: address changes → unstable.
	script := []isa.DynInst{
		load(0, 100, 0x1000, 7, isa.AddrPCRel),
		load(1, 200, 0x2000, 1, isa.AddrRegRel),
		load(2, 300, 0x3000, 5, isa.AddrStackRel),
		load(3, 100, 0x1000, 7, isa.AddrPCRel),
		load(4, 200, 0x2000, 2, isa.AddrRegRel),
		load(5, 300, 0x3008, 5, isa.AddrStackRel),
		load(6, 100, 0x1000, 7, isa.AddrPCRel),
	}
	for i := range script {
		ins.Observe(&script[i])
	}
	rep := ins.Report()
	if rep.DynLoads != 7 {
		t.Fatalf("dyn loads = %d", rep.DynLoads)
	}
	if rep.GlobalStableDynLoads != 3 {
		t.Errorf("stable dyn loads = %d, want 3", rep.GlobalStableDynLoads)
	}
	if rep.GlobalStableStaticLoads != 1 || rep.StaticLoads != 3 {
		t.Errorf("static: %d/%d, want 1/3", rep.GlobalStableStaticLoads, rep.StaticLoads)
	}
	if rep.ByMode["pc-rel"] != 3 {
		t.Errorf("pc-rel stable loads = %d", rep.ByMode["pc-rel"])
	}
	stable := ins.StableLoadPCs()
	if !stable[100] || stable[200] || stable[300] {
		t.Errorf("stable PCs = %v", stable)
	}
	modes := ins.StableLoadModes()
	if modes[100] != isa.AddrPCRel {
		t.Errorf("stable mode = %v", modes[100])
	}
}

func TestInstabilityIsSticky(t *testing.T) {
	ins := New()
	seq := uint64(0)
	add := func(v uint64) {
		d := load(seq, 100, 0x1000, v, isa.AddrRegRel)
		ins.Observe(&d)
		seq++
	}
	add(1)
	add(2) // breaks stability
	for i := 0; i < 10; i++ {
		add(2) // stable *again*, but global stability is across the whole trace
	}
	if ins.Report().GlobalStableDynLoads != 0 {
		t.Error("a load that ever changed value must not be global-stable")
	}
}

func TestDistanceBuckets(t *testing.T) {
	cases := map[uint64]int{0: 0, 49: 0, 50: 1, 99: 1, 100: 2, 249: 2, 250: 3, 10000: 3}
	for d, want := range cases {
		if got := distanceBucket(d); got != want {
			t.Errorf("distanceBucket(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestInterOccurrenceHistogram(t *testing.T) {
	ins := New()
	// Three instances at seq 0, 10, 500: distances 10 (bucket 0) and 490 (bucket 3).
	for _, seq := range []uint64{0, 10, 500} {
		d := load(seq, 100, 0x1000, 7, isa.AddrStackRel)
		ins.Observe(&d)
	}
	rep := ins.Report()
	if rep.ByDistance["[0-50)"] != 1 || rep.ByDistance["250+"] != 1 {
		t.Errorf("distance histogram = %v", rep.ByDistance)
	}
	if rep.ByModeDistance["stack-rel"]["[0-50)"] != 1 {
		t.Errorf("per-mode histogram = %v", rep.ByModeDistance)
	}
}

func TestNonLoadsCountedSeparately(t *testing.T) {
	ins := New()
	st := isa.DynInst{Seq: 0, Op: isa.OpStore, Addr: 8, Value: 1}
	alu := isa.DynInst{Seq: 1, Op: isa.OpALU}
	ins.Observe(&st)
	ins.Observe(&alu)
	rep := ins.Report()
	if rep.DynInsts != 2 || rep.DynStores != 1 || rep.DynLoads != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSingleInstanceLoadIsStable(t *testing.T) {
	ins := New()
	d := load(0, 100, 0x1000, 7, isa.AddrRegRel)
	ins.Observe(&d)
	rep := ins.Report()
	if rep.GlobalStableStaticLoads != 1 {
		t.Error("a single-instance load is trivially global-stable")
	}
}

func TestReportString(t *testing.T) {
	ins := New()
	for i := uint64(0); i < 5; i++ {
		d := load(i, 100, 0x1000, 7, isa.AddrPCRel)
		ins.Observe(&d)
	}
	s := ins.Report().String()
	for _, frag := range []string{"global-stable", "pc-rel", "dynamic instructions"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report string missing %q:\n%s", frag, s)
		}
	}
}

func TestGlobalStableFractionEmpty(t *testing.T) {
	if f := New().Report().GlobalStableFraction(); f != 0 {
		t.Errorf("empty fraction = %v", f)
	}
}

// Package isa defines the synthetic micro-ISA used by the Constable
// reproduction: opcodes, architectural registers, addressing modes, and the
// static and dynamic instruction representations shared by the functional
// simulator (internal/fsim) and the timing model (internal/pipeline).
//
// The ISA is deliberately x86-64-flavoured where the paper depends on it:
// 16 general-purpose registers by default (32 in APX mode), RSP/RBP as the
// stack registers, loads with PC-relative, stack-relative and
// register-relative addressing, and 64-bit data.
package isa

import "fmt"

// Reg identifies an architectural register.
type Reg uint8

// Architectural register conventions. R4 and R5 play the roles of RSP and
// RBP; the workload generator honours that convention so that the paper's
// stack-relative addressing-mode classification is meaningful.
const (
	R0 Reg = iota
	R1
	R2
	R3
	RSP // stack pointer
	RBP // frame pointer
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// Registers R16..R31 exist only in APX (32-register) mode.
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31

	// RegNone marks an absent register operand.
	RegNone Reg = 0xFF
)

// NumRegs is the number of architectural registers in the default (x86-64
// like) configuration; NumRegsAPX is the APX (appendix B) configuration.
const (
	NumRegs    = 16
	NumRegsAPX = 32
)

// IsStackReg reports whether r is one of the two stack registers (RSP/RBP).
// The paper's RMT gives these registers deeper load-PC lists (Table 1).
func IsStackReg(r Reg) bool { return r == RSP || r == RBP }

// String returns the conventional register name.
func (r Reg) String() string {
	switch r {
	case RSP:
		return "rsp"
	case RBP:
		return "rbp"
	case RegNone:
		return "none"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Op is an opcode class. The timing model cares about resource usage and
// latency classes rather than exact semantics, but every opcode has real
// functional semantics in internal/fsim so that values and addresses are
// architecturally meaningful.
type Op uint8

const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpALU is a single-cycle integer operation (add/sub/logic): dst = src1 op src2.
	OpALU
	// OpMul is a 3-cycle integer multiply.
	OpMul
	// OpDiv is a 12-cycle integer divide.
	OpDiv
	// OpFP is a 4-cycle floating-point operation (modelled on the ALU ports
	// used for vector instructions).
	OpFP
	// OpMovImm loads an immediate into dst.
	OpMovImm
	// OpMov copies src1 to dst (candidate for move elimination).
	OpMov
	// OpLoad reads 8 bytes from memory into dst.
	OpLoad
	// OpStore writes src2 (data) to memory addressed by src1+disp.
	OpStore
	// OpBranch is a conditional branch on src1 (taken if src1 != 0).
	OpBranch
	// OpJump is an unconditional direct jump.
	OpJump
	// OpCall is a direct call (pushes return address semantics are modelled
	// by the generator; the timing model treats it as a taken branch).
	OpCall
	// OpRet is a return (indirect taken branch).
	OpRet
)

// String returns a short mnemonic.
func (o Op) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpALU:
		return "alu"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	case OpFP:
		return "fp"
	case OpMovImm:
		return "movi"
	case OpMov:
		return "mov"
	case OpLoad:
		return "ld"
	case OpStore:
		return "st"
	case OpBranch:
		return "br"
	case OpJump:
		return "jmp"
	case OpCall:
		return "call"
	case OpRet:
		return "ret"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool {
	return o == OpBranch || o == OpJump || o == OpCall || o == OpRet
}

// IsMem reports whether the opcode accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// AddrMode classifies a memory instruction's addressing mode, following the
// paper's three-way taxonomy (§4.1.1).
type AddrMode uint8

const (
	// AddrNone is used for non-memory instructions.
	AddrNone AddrMode = iota
	// AddrPCRel is PC-relative addressing (e.g. loads of global-scope
	// variables); such loads have no source register.
	AddrPCRel
	// AddrStackRel uses RSP or RBP as the only source register.
	AddrStackRel
	// AddrRegRel uses a general-purpose register (optionally plus an index)
	// as the base.
	AddrRegRel
)

// String returns the paper's name for the addressing mode.
func (m AddrMode) String() string {
	switch m {
	case AddrNone:
		return "none"
	case AddrPCRel:
		return "pc-rel"
	case AddrStackRel:
		return "stack-rel"
	case AddrRegRel:
		return "reg-rel"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ALUFn selects the functional behaviour of an OpALU instruction.
type ALUFn uint8

const (
	ALUAdd ALUFn = iota
	ALUSub
	ALUXor
	ALUAnd
	ALUOr
	ALUShl
	ALUCmpLT // dst = 1 if src1 < src2 else 0
	ALUDec   // dst = src1 - 1 (src2 ignored)
	ALUInc   // dst = src1 + 1
)

// Inst is a static instruction: one entry in a program's code image. The
// same static instruction produces many dynamic instances at runtime.
type Inst struct {
	Op   Op
	Fn   ALUFn // for OpALU
	Dst  Reg   // destination register (RegNone if none)
	Src1 Reg   // first source (base register for memory ops; RegNone for PC-relative)
	Src2 Reg   // second source (data register for stores; RegNone if unused)
	Imm  int64 // immediate / displacement / branch target (static PC index)

	// Mode is the addressing mode for memory instructions.
	Mode AddrMode
}

// SrcRegs appends the architectural source registers of the instruction to
// dst and returns the result. PC-relative loads have no source registers.
func (in *Inst) SrcRegs(dst []Reg) []Reg {
	if in.Src1 != RegNone {
		dst = append(dst, in.Src1)
	}
	if in.Src2 != RegNone {
		dst = append(dst, in.Src2)
	}
	return dst
}

// HasDst reports whether the instruction writes an architectural register.
func (in *Inst) HasDst() bool { return in.Dst != RegNone }

// DynInst is one dynamic instruction as produced by the functional
// simulator. It carries the architecturally-correct outcome of the
// instruction (address, value, branch direction), which the timing model
// uses both to drive simulation and to verify Constable's correctness via
// the golden check at retirement.
type DynInst struct {
	Seq uint64 // dynamic sequence number (program order)
	PC  uint64 // static PC (byte-granular, 4 bytes per instruction)

	Op   Op
	Fn   ALUFn
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Mode AddrMode

	// Addr is the effective (physical) memory address for loads and stores.
	Addr uint64
	// Value is the architecturally-correct result: the loaded value for
	// loads, the stored value for stores, the ALU result for register
	// writers.
	Value uint64

	// Taken and Target describe the architectural branch outcome.
	Taken  bool
	Target uint64

	// ProducerStore is the sequence number of the dynamic store that wrote
	// the word a load reads (0 when the word still holds its initial value).
	// Memory renaming trains on and is verified against this link.
	ProducerStore uint64
	// Silent marks a store that wrote the value the word already held
	// (a silent store, §9.3.1 loss reason b).
	Silent bool

	// WrongPath marks instructions injected on the mispredicted path. They
	// never retire and carry no architectural outcome.
	WrongPath bool
}

// IsLoad reports whether the dynamic instruction is a load.
func (d *DynInst) IsLoad() bool { return d.Op == OpLoad }

// IsStore reports whether the dynamic instruction is a store.
func (d *DynInst) IsStore() bool { return d.Op == OpStore }

// SrcRegs appends the architectural source registers to dst.
func (d *DynInst) SrcRegs(dst []Reg) []Reg {
	if d.Src1 != RegNone {
		dst = append(dst, d.Src1)
	}
	if d.Src2 != RegNone {
		dst = append(dst, d.Src2)
	}
	return dst
}

// ExecLatency returns the execution latency in cycles for non-memory
// instructions (memory latency is decided by the cache hierarchy).
func (d *DynInst) ExecLatency() int {
	switch d.Op {
	case OpMul:
		return 3
	case OpDiv:
		return 12
	case OpFP:
		return 4
	default:
		return 1
	}
}

// InstBytes is the size of one instruction in the synthetic ISA; PCs advance
// by this amount. Four bytes keeps PC arithmetic realistic without modelling
// variable-length decode.
const InstBytes = 4

// CachelineBytes is the cacheline size assumed throughout (AMT granularity,
// cache models, CV-bit tracking).
const CachelineBytes = 64

// WordBytes is the data word size; all loads and stores move 8 bytes.
const WordBytes = 8

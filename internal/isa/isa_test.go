package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		R0:      "r0",
		RSP:     "rsp",
		RBP:     "rbp",
		R15:     "r15",
		RegNone: "none",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestIsStackReg(t *testing.T) {
	if !IsStackReg(RSP) || !IsStackReg(RBP) {
		t.Error("RSP/RBP must be stack registers")
	}
	for _, r := range []Reg{R0, R6, R15, R31} {
		if IsStackReg(r) {
			t.Errorf("%v must not be a stack register", r)
		}
	}
}

func TestOpClassification(t *testing.T) {
	branches := []Op{OpBranch, OpJump, OpCall, OpRet}
	for _, o := range branches {
		if !o.IsBranch() {
			t.Errorf("%v.IsBranch() = false", o)
		}
		if o.IsMem() {
			t.Errorf("%v.IsMem() = true", o)
		}
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("loads and stores must be memory ops")
	}
	for _, o := range []Op{OpALU, OpMul, OpMov, OpMovImm, OpNop, OpFP, OpDiv} {
		if o.IsBranch() || o.IsMem() {
			t.Errorf("%v misclassified", o)
		}
	}
}

func TestOpString(t *testing.T) {
	for o := OpNop; o <= OpRet; o++ {
		if s := o.String(); s == "" {
			t.Errorf("Op(%d) has empty mnemonic", o)
		}
	}
}

func TestAddrModeString(t *testing.T) {
	want := map[AddrMode]string{
		AddrNone:     "none",
		AddrPCRel:    "pc-rel",
		AddrStackRel: "stack-rel",
		AddrRegRel:   "reg-rel",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("AddrMode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestInstSrcRegs(t *testing.T) {
	in := Inst{Op: OpALU, Dst: R0, Src1: R1, Src2: R2}
	got := in.SrcRegs(nil)
	if len(got) != 2 || got[0] != R1 || got[1] != R2 {
		t.Errorf("SrcRegs = %v, want [r1 r2]", got)
	}

	pcrel := Inst{Op: OpLoad, Dst: R0, Src1: RegNone, Src2: RegNone, Mode: AddrPCRel}
	if got := pcrel.SrcRegs(nil); len(got) != 0 {
		t.Errorf("PC-relative load must have no source registers, got %v", got)
	}

	st := Inst{Op: OpStore, Dst: RegNone, Src1: RSP, Src2: R3}
	if got := st.SrcRegs(nil); len(got) != 2 || got[0] != RSP || got[1] != R3 {
		t.Errorf("store SrcRegs = %v, want [rsp r3]", got)
	}
}

func TestDynInstSrcRegsMatchesInst(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		r1, r2 := Reg(s1%17), Reg(s2%17)
		if r1 == 16 {
			r1 = RegNone
		}
		if r2 == 16 {
			r2 = RegNone
		}
		in := Inst{Op: OpALU, Dst: R0, Src1: r1, Src2: r2}
		d := DynInst{Op: OpALU, Dst: R0, Src1: r1, Src2: r2}
		a := in.SrcRegs(nil)
		b := d.SrcRegs(nil)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecLatency(t *testing.T) {
	cases := map[Op]int{
		OpALU: 1, OpMov: 1, OpMovImm: 1, OpNop: 1, OpBranch: 1,
		OpMul: 3, OpFP: 4, OpDiv: 12,
	}
	for op, want := range cases {
		d := DynInst{Op: op}
		if got := d.ExecLatency(); got != want {
			t.Errorf("%v latency = %d, want %d", op, got, want)
		}
	}
}

func TestLoadStoreHelpers(t *testing.T) {
	ld := DynInst{Op: OpLoad}
	st := DynInst{Op: OpStore}
	if !ld.IsLoad() || ld.IsStore() {
		t.Error("load helper misclassified")
	}
	if !st.IsStore() || st.IsLoad() {
		t.Error("store helper misclassified")
	}
}

// Package prog provides a small assembler-like builder for programs in the
// synthetic micro-ISA (internal/isa). The workload library (internal/workload)
// uses it to construct kernels whose dynamic load behaviour reproduces the
// structures the paper identifies as sources of global-stable loads:
// PC-relative accesses to runtime constants, stack-relative accesses to
// inlined-function arguments, and register-relative accesses in tight loops.
package prog

import (
	"fmt"

	"constable/internal/isa"
)

// Memory-layout conventions shared by the builder, the functional simulator
// and the workload generators. All regions are 8-byte aligned and far apart
// so kernels never collide accidentally.
const (
	// CodeBase is the byte address of the first instruction.
	CodeBase uint64 = 0x0040_0000
	// GlobalBase is where global variables (runtime constants, counters) live.
	GlobalBase uint64 = 0x1000_0000
	// HeapBase is where arrays and linked structures live.
	HeapBase uint64 = 0x2000_0000
	// StackBase is the initial RSP value; stacks grow down.
	StackBase uint64 = 0x7FF0_0000
)

// Program is an executable code image for the functional simulator.
type Program struct {
	Name string
	Code []isa.Inst
	// Entry is the index of the first instruction to execute.
	Entry int
	// InitRegs maps registers to their initial values (missing regs start
	// at zero; RSP defaults to StackBase).
	InitRegs map[isa.Reg]uint64
	// InitMem maps 8-byte-aligned addresses to initial memory words.
	InitMem map[uint64]uint64
}

// PCOf returns the byte PC of the instruction at index idx.
func PCOf(idx int) uint64 { return CodeBase + uint64(idx)*isa.InstBytes }

// IndexOf returns the instruction index for byte PC pc.
func IndexOf(pc uint64) int { return int((pc - CodeBase) / isa.InstBytes) }

// Builder incrementally assembles a Program. Branch targets are referenced
// by string labels and resolved at Build time, so code can branch forward.
type Builder struct {
	name   string
	code   []isa.Inst
	labels map[string]int
	fixups []fixup
	regs   map[isa.Reg]uint64
	mem    map[uint64]uint64
	errs   []error
}

type fixup struct {
	at    int // instruction index whose Imm is a label reference
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		regs:   make(map[isa.Reg]uint64),
		mem:    make(map[uint64]uint64),
	}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Label binds name to the next emitted instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("prog: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.code)
}

// SetReg sets the initial value of a register.
func (b *Builder) SetReg(r isa.Reg, v uint64) { b.regs[r] = v }

// SetMem sets the initial value of the memory word at addr, which must be
// 8-byte aligned.
func (b *Builder) SetMem(addr, v uint64) {
	if addr%isa.WordBytes != 0 {
		b.errs = append(b.errs, fmt.Errorf("prog: unaligned initial memory address %#x", addr))
		return
	}
	b.mem[addr] = v
}

func (b *Builder) emit(in isa.Inst) { b.code = append(b.code, in) }

// Nop emits a no-op.
func (b *Builder) Nop() {
	b.emit(isa.Inst{Op: isa.OpNop, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
}

// ALU emits dst = fn(src1, src2).
func (b *Builder) ALU(fn isa.ALUFn, dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpALU, Fn: fn, Dst: dst, Src1: src1, Src2: src2})
}

// ALUImm emits dst = fn(src1, imm) by encoding the immediate in Imm with
// Src2 = RegNone.
func (b *Builder) ALUImm(fn isa.ALUFn, dst, src1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpALU, Fn: fn, Dst: dst, Src1: src1, Src2: isa.RegNone, Imm: imm})
}

// Mul emits dst = src1 * src2 (3-cycle latency class).
func (b *Builder) Mul(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpMul, Dst: dst, Src1: src1, Src2: src2})
}

// Div emits dst = src1 / src2 (12-cycle latency class; divide-by-zero yields
// all-ones, as the functional simulator defines).
func (b *Builder) Div(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpDiv, Dst: dst, Src1: src1, Src2: src2})
}

// FP emits a 4-cycle floating-point-class operation on the integer registers.
func (b *Builder) FP(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFP, Dst: dst, Src1: src1, Src2: src2})
}

// MovImm emits dst = imm.
func (b *Builder) MovImm(dst isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpMovImm, Dst: dst, Src1: isa.RegNone, Src2: isa.RegNone, Imm: imm})
}

// Mov emits dst = src (a move-elimination candidate in the rename stage).
func (b *Builder) Mov(dst, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpMov, Dst: dst, Src1: src, Src2: isa.RegNone})
}

// Zero emits the zero idiom xor dst,dst, eliminated at rename in the
// baseline core.
func (b *Builder) Zero(dst isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpALU, Fn: isa.ALUXor, Dst: dst, Src1: dst, Src2: dst})
}

// Load emits dst = mem[base + disp] with register-relative or stack-relative
// addressing (decided by the base register).
func (b *Builder) Load(dst, base isa.Reg, disp int64) {
	mode := isa.AddrRegRel
	if isa.IsStackReg(base) {
		mode = isa.AddrStackRel
	}
	b.emit(isa.Inst{Op: isa.OpLoad, Dst: dst, Src1: base, Src2: isa.RegNone, Imm: disp, Mode: mode})
}

// LoadGlobal emits dst = mem[addr] with PC-relative addressing. Like an
// x86-64 RIP-relative load, the effective address is a per-static-instruction
// constant and the instruction has no source register.
func (b *Builder) LoadGlobal(dst isa.Reg, addr uint64) {
	b.emit(isa.Inst{Op: isa.OpLoad, Dst: dst, Src1: isa.RegNone, Src2: isa.RegNone,
		Imm: int64(addr), Mode: isa.AddrPCRel})
}

// Store emits mem[base + disp] = data.
func (b *Builder) Store(base isa.Reg, disp int64, data isa.Reg) {
	mode := isa.AddrRegRel
	if isa.IsStackReg(base) {
		mode = isa.AddrStackRel
	}
	b.emit(isa.Inst{Op: isa.OpStore, Dst: isa.RegNone, Src1: base, Src2: data, Imm: disp, Mode: mode})
}

// StoreGlobal emits mem[addr] = data with PC-relative addressing.
func (b *Builder) StoreGlobal(addr uint64, data isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpStore, Dst: isa.RegNone, Src1: isa.RegNone, Src2: data,
		Imm: int64(addr), Mode: isa.AddrPCRel})
}

// Branch emits a conditional branch to label, taken when cond != 0.
func (b *Builder) Branch(cond isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	b.emit(isa.Inst{Op: isa.OpBranch, Dst: isa.RegNone, Src1: cond, Src2: isa.RegNone})
}

// Jump emits an unconditional jump to label.
func (b *Builder) Jump(label string) {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	b.emit(isa.Inst{Op: isa.OpJump, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
}

// Call emits a direct call to label. The return address is kept on the
// functional simulator's shadow call stack rather than in memory, so calls
// do not perturb the data-memory image.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	b.emit(isa.Inst{Op: isa.OpCall, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
}

// Ret emits a return to the most recent unmatched Call.
func (b *Builder) Ret() {
	b.emit(isa.Inst{Op: isa.OpRet, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
}

// Build resolves labels and returns the finished Program. It fails if any
// label is unresolved or duplicated, or if initial memory is malformed.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("prog: undefined label %q", f.label)
		}
		b.code[f.at].Imm = int64(idx)
	}
	if len(b.code) == 0 {
		return nil, fmt.Errorf("prog: empty program %q", b.name)
	}
	regs := make(map[isa.Reg]uint64, len(b.regs)+1)
	if _, ok := b.regs[isa.RSP]; !ok {
		regs[isa.RSP] = StackBase
	}
	for r, v := range b.regs {
		regs[r] = v
	}
	mem := make(map[uint64]uint64, len(b.mem))
	for a, v := range b.mem {
		mem[a] = v
	}
	return &Program{
		Name:     b.name,
		Code:     append([]isa.Inst(nil), b.code...),
		InitRegs: regs,
		InitMem:  mem,
	}, nil
}

// MustBuild is Build that panics on error, for statically-known-good kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

package prog

import (
	"strings"
	"testing"

	"constable/internal/isa"
)

func TestPCIndexRoundTrip(t *testing.T) {
	for _, idx := range []int{0, 1, 7, 1000} {
		if got := IndexOf(PCOf(idx)); got != idx {
			t.Errorf("IndexOf(PCOf(%d)) = %d", idx, got)
		}
	}
}

func TestLabelsResolveForwardAndBackward(t *testing.T) {
	b := NewBuilder("t")
	b.Label("top")
	b.Jump("bottom") // forward reference
	b.Label("mid")
	b.Jump("top") // backward reference
	b.Label("bottom")
	b.Jump("mid")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 2 { // "bottom" is instruction index 2
		t.Errorf("forward jump target = %d, want 2", p.Code[0].Imm)
	}
	if p.Code[1].Imm != 0 {
		t.Errorf("backward jump target = %d, want 0", p.Code[1].Imm)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := NewBuilder("t")
	b.Jump("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined label")
	} else if !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("error %q should name the label", err)
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestEmptyProgramFails(t *testing.T) {
	if _, err := NewBuilder("t").Build(); err == nil {
		t.Fatal("expected error for empty program")
	}
}

func TestUnalignedInitialMemoryFails(t *testing.T) {
	b := NewBuilder("t")
	b.SetMem(GlobalBase+3, 1)
	b.Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for unaligned memory init")
	}
}

func TestDefaultStackPointer(t *testing.T) {
	b := NewBuilder("t")
	b.Nop()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.InitRegs[isa.RSP] != StackBase {
		t.Errorf("RSP = %#x, want StackBase", p.InitRegs[isa.RSP])
	}

	b2 := NewBuilder("t2")
	b2.SetReg(isa.RSP, 0x1000)
	b2.Nop()
	p2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p2.InitRegs[isa.RSP] != 0x1000 {
		t.Error("explicit RSP must not be overridden")
	}
}

func TestAddressingModeSelection(t *testing.T) {
	b := NewBuilder("t")
	b.Load(isa.R1, isa.RSP, -8)
	b.Load(isa.R1, isa.RBP, 16)
	b.Load(isa.R1, isa.R6, 0)
	b.LoadGlobal(isa.R1, GlobalBase)
	b.Store(isa.RSP, -8, isa.R2)
	b.Store(isa.R6, 0, isa.R2)
	p := b.MustBuild()

	wantModes := []isa.AddrMode{
		isa.AddrStackRel, isa.AddrStackRel, isa.AddrRegRel, isa.AddrPCRel,
		isa.AddrStackRel, isa.AddrRegRel,
	}
	for i, want := range wantModes {
		if p.Code[i].Mode != want {
			t.Errorf("inst %d mode = %v, want %v", i, p.Code[i].Mode, want)
		}
	}
	if p.Code[3].Src1 != isa.RegNone {
		t.Error("PC-relative load must have Src1 = RegNone")
	}
}

func TestZeroIdiom(t *testing.T) {
	b := NewBuilder("t")
	b.Zero(isa.R7)
	p := b.MustBuild()
	in := p.Code[0]
	if in.Op != isa.OpALU || in.Fn != isa.ALUXor || in.Src1 != isa.R7 || in.Src2 != isa.R7 {
		t.Errorf("zero idiom = %+v", in)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild must panic on error")
		}
	}()
	b := NewBuilder("t")
	b.Jump("missing")
	b.MustBuild()
}

func TestBuildIsolatesState(t *testing.T) {
	b := NewBuilder("t")
	b.SetMem(GlobalBase, 5)
	b.Nop()
	p := b.MustBuild()
	p.InitMem[GlobalBase] = 99
	p.Code[0].Op = isa.OpJump
	p2 := b.MustBuild()
	if p2.InitMem[GlobalBase] != 5 {
		t.Error("Build must copy initial memory")
	}
	if p2.Code[0].Op != isa.OpNop {
		t.Error("Build must copy code")
	}
}

// This file extends the workload vocabulary beyond the built-in synthetic
// suite: a Spec can be backed by a captured dynamic-instruction trace
// (internal/trace) instead of a generated kernel mix. Trace-backed specs are
// content-addressed — their name is "trace:<sha256>" of the raw trace bytes
// — so the same name always denotes the same instruction stream, and the
// service layer can fold it into a JobSpec's canonical hash. Uploaded bytes
// are fully decoded and validated here before a Spec exists, so adversarial
// uploads can never reach the timing model.

package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"constable/internal/fsim"
	"constable/internal/isa"
	"constable/internal/trace"
)

// Trace is the category assigned to trace-backed workloads. It is not one of
// the paper's five suite categories; uploaded traces report it so clients
// can tell user workloads from the built-in suite.
const Trace Category = "Trace"

// TraceNamePrefix prefixes the names of trace-backed workloads. The full
// name is the prefix followed by the lowercase hex sha256 of the raw trace
// bytes: "trace:<64 hex chars>".
const TraceNamePrefix = "trace:"

// IsTraceName reports whether name references a trace-backed workload.
func IsTraceName(name string) bool {
	return len(name) > len(TraceNamePrefix) && name[:len(TraceNamePrefix)] == TraceNamePrefix
}

// TraceHash extracts and validates the content hash from a trace workload
// name. It errors unless the suffix is exactly 64 lowercase hex characters,
// so a syntactically valid name always denotes one specific byte stream.
func TraceHash(name string) (string, error) {
	if !IsTraceName(name) {
		return "", fmt.Errorf("workload: %q is not a trace reference", name)
	}
	h := name[len(TraceNamePrefix):]
	if len(h) != 64 {
		return "", fmt.Errorf("workload: trace hash must be 64 hex characters, got %d", len(h))
	}
	for _, c := range h {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("workload: trace hash contains non-hex character %q", c)
		}
	}
	return h, nil
}

// traceBacking holds a decoded-and-validated trace behind a Spec. The bytes
// are owned by the Spec after FromTraceBytes; callers must not mutate them.
type traceBacking struct {
	hash   string
	data   []byte
	insts  uint64
	loads  uint64
	stores uint64
}

// IsTrace reports whether the spec is trace-backed.
func (s *Spec) IsTrace() bool { return s.trace != nil }

// TraceInstructions returns the number of records in a trace-backed spec's
// stream, or 0 for suite workloads (which generate unboundedly).
func (s *Spec) TraceInstructions() uint64 {
	if s.trace == nil {
		return 0
	}
	return s.trace.insts
}

// TraceCounts returns the dynamic load and store counts of a trace-backed
// spec (0, 0 for suite workloads).
func (s *Spec) TraceCounts() (loads, stores uint64) {
	if s.trace == nil {
		return 0, 0
	}
	return s.trace.loads, s.trace.stores
}

// FromTraceBytes decodes data as an internal/trace stream, validates every
// record, and returns a trace-backed Spec named "trace:<sha256(data)>". The
// whole stream is decoded up front: a Spec only exists for traces that are
// well-formed end to end, so replay can never hit a decode error or an
// out-of-range operand mid-simulation. The Spec takes ownership of data.
func FromTraceBytes(data []byte) (*Spec, error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])

	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	var insts, loads, stores, prevSeq uint64
	for {
		d, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace record %d: %w", insts, err)
		}
		if err := validateTraceRecord(&d); err != nil {
			return nil, fmt.Errorf("workload: trace record %d (pc %#x): %w", insts, d.PC, err)
		}
		if insts > 0 && d.Seq <= prevSeq {
			return nil, fmt.Errorf("workload: trace record %d: sequence number %d not increasing (previous %d)",
				insts, d.Seq, prevSeq)
		}
		prevSeq = d.Seq
		switch d.Op {
		case isa.OpLoad:
			loads++
		case isa.OpStore:
			stores++
		}
		insts++
	}
	if insts == 0 {
		return nil, errors.New("workload: trace contains no records")
	}
	return &Spec{
		Name:     TraceNamePrefix + hash,
		Category: Trace,
		trace:    &traceBacking{hash: hash, data: data, insts: insts, loads: loads, stores: stores},
	}, nil
}

// validateTraceRecord bounds-checks one decoded record against the ISA so a
// hostile trace cannot index the timing model's register-file or predictor
// arrays out of range, and rejects stream shapes the committed-path replay
// contract excludes.
func validateTraceRecord(d *isa.DynInst) error {
	if d.WrongPath {
		return errors.New("wrong-path record (traces carry the committed path only)")
	}
	if d.Op > isa.OpRet {
		return fmt.Errorf("unknown opcode %d", d.Op)
	}
	if d.Fn > isa.ALUInc {
		return fmt.Errorf("unknown ALU function %d", d.Fn)
	}
	for _, reg := range [...]isa.Reg{d.Dst, d.Src1, d.Src2} {
		if reg != isa.RegNone && reg >= isa.NumRegsAPX {
			return fmt.Errorf("register %d out of range", reg)
		}
	}
	if d.Mode > isa.AddrRegRel {
		return fmt.Errorf("unknown address mode %d", d.Mode)
	}
	return nil
}

// Stream is the instruction source a workload yields for one simulation
// thread. It is pipeline.Stream plus an error accessor: kernel streams never
// fail mid-run, but trace streams surface decode errors through Err.
type Stream interface {
	Next() (isa.DynInst, bool)
	Err() error
}

// kernelStream adapts the functional simulator's stream (which cannot fail)
// to the Stream interface.
type kernelStream struct{ *fsim.Stream }

func (kernelStream) Err() error { return nil }

// traceStream replays a decoded trace, bounded by max records (0 = all).
type traceStream struct {
	r   *trace.Reader
	max uint64
	n   uint64
}

func (s *traceStream) Next() (isa.DynInst, bool) {
	if s.max > 0 && s.n >= s.max {
		return isa.DynInst{}, false
	}
	d, ok := s.r.Next()
	if ok {
		s.n++
	}
	return d, ok
}

func (s *traceStream) Err() error { return s.r.Err() }

// NewStream returns an instruction stream for one simulation thread: the
// functional simulator for suite workloads, a trace replay for trace-backed
// ones. max bounds the stream length in records (0 = unbounded for traces;
// suite workloads require max > 0, they generate forever).
func (s *Spec) NewStream(apx bool, max uint64) (Stream, error) {
	if s.trace != nil {
		r, err := trace.NewReader(bytes.NewReader(s.trace.data))
		if err != nil {
			// The backing bytes were validated at construction; this would
			// mean the Spec's owner mutated them.
			return nil, fmt.Errorf("workload: %s: %w", s.Name, err)
		}
		return &traceStream{r: r, max: max}, nil
	}
	cpu, err := s.NewCPU(apx)
	if err != nil {
		return nil, err
	}
	return kernelStream{fsim.NewStream(cpu, max)}, nil
}

package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"constable/internal/fsim"
	"constable/internal/isa"
	"constable/internal/trace"
)

// captureTrace serializes n instructions of a small suite workload.
func captureTrace(t *testing.T, n uint64) []byte {
	t.Helper()
	spec := SmallSuite()[0]
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Capture(&buf, fsim.NewStream(cpu, n), n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFromTraceBytes(t *testing.T) {
	data := captureTrace(t, 2000)
	spec, err := FromTraceBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	wantName := TraceNamePrefix + hex.EncodeToString(sum[:])
	if spec.Name != wantName {
		t.Errorf("name = %q, want %q", spec.Name, wantName)
	}
	if spec.Category != Trace {
		t.Errorf("category = %q, want %q", spec.Category, Trace)
	}
	if !spec.IsTrace() {
		t.Error("IsTrace() = false")
	}
	if got := spec.TraceInstructions(); got != 2000 {
		t.Errorf("TraceInstructions() = %d, want 2000", got)
	}
	loads, stores := spec.TraceCounts()
	if loads == 0 || stores == 0 {
		t.Errorf("TraceCounts() = %d, %d — kernel mixes always have both", loads, stores)
	}
	if _, err := spec.Build(false); err == nil {
		t.Error("Build() must fail for trace-backed specs")
	}
}

func TestFromTraceBytesRejectsCorruption(t *testing.T) {
	data := captureTrace(t, 200)
	cases := map[string][]byte{
		"empty":            nil,
		"bad magic":        append([]byte{9, 9, 9, 9}, data[4:]...),
		"truncated":        data[:len(data)-3],
		"header only":      data[:4],
		"garbage varints":  append(append([]byte{}, data[:4]...), bytes.Repeat([]byte{0xFF}, 64)...),
		"out-of-range reg": corruptFirstRecord(data, 3, 0xFE), // Dst byte: not RegNone, ≥ NumRegsAPX
		"unknown opcode":   corruptFirstRecord(data, 1, 0xEE),
	}
	for name, bad := range cases {
		if _, err := FromTraceBytes(bad); err == nil {
			t.Errorf("%s: FromTraceBytes accepted invalid bytes", name)
		}
	}
}

// corruptFirstRecord returns a copy of data with one byte of the first
// record's fixed block (which starts right after the 4-byte header)
// overwritten.
func corruptFirstRecord(data []byte, offset int, v byte) []byte {
	out := append([]byte{}, data...)
	out[4+offset] = v
	return out
}

func TestTraceNameParsing(t *testing.T) {
	valid := TraceNamePrefix + strings.Repeat("ab", 32)
	if !IsTraceName(valid) {
		t.Errorf("IsTraceName(%q) = false", valid)
	}
	if h, err := TraceHash(valid); err != nil || h != strings.Repeat("ab", 32) {
		t.Errorf("TraceHash(%q) = %q, %v", valid, h, err)
	}
	for _, bad := range []string{
		"server-kvstore-00",
		"trace:",
		"trace:short",
		TraceNamePrefix + strings.Repeat("AB", 32), // uppercase
		TraceNamePrefix + strings.Repeat("zz", 32), // non-hex
		TraceNamePrefix + strings.Repeat("ab", 33), // too long
	} {
		if _, err := TraceHash(bad); err == nil {
			t.Errorf("TraceHash(%q) accepted an invalid reference", bad)
		}
	}
}

func TestTraceStreamReplay(t *testing.T) {
	const n = 1500
	data := captureTrace(t, n)
	spec, err := FromTraceBytes(data)
	if err != nil {
		t.Fatal(err)
	}

	// Unbounded stream yields every record, in capture order.
	st, err := spec.NewStream(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []isa.DynInst
	for {
		d, ok := st.Next()
		if !ok {
			break
		}
		got = append(got, d)
	}
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	if len(got) != n {
		t.Fatalf("unbounded stream yielded %d records, want %d", len(got), n)
	}

	// The replay must match the live functional stream record for record.
	cpu, _ := SmallSuite()[0].NewCPU(false)
	live := fsim.NewStream(cpu, n)
	for i := range got {
		want, ok := live.Next()
		if !ok {
			t.Fatalf("live stream ended at %d", i)
		}
		if got[i] != want {
			t.Fatalf("record %d: replay %+v, live %+v", i, got[i], want)
		}
	}

	// A bounded stream stops at max, and two streams from one Spec are
	// independent (fresh readers over the same bytes).
	s1, _ := spec.NewStream(false, 10)
	s2, _ := spec.NewStream(false, 10)
	for i := 0; i < 10; i++ {
		d1, ok1 := s1.Next()
		d2, ok2 := s2.Next()
		if !ok1 || !ok2 || d1 != d2 {
			t.Fatalf("record %d: streams diverged", i)
		}
	}
	if _, ok := s1.Next(); ok {
		t.Error("bounded stream exceeded max")
	}
}

func TestKernelStreamViaNewStream(t *testing.T) {
	spec := SmallSuite()[0]
	st, err := spec.NewStream(false, 25)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		count++
	}
	if count != 25 {
		t.Fatalf("kernel stream yielded %d, want 25", count)
	}
	if st.Err() != nil {
		t.Fatalf("kernel stream Err() = %v", st.Err())
	}
}

// This file defines the suite: 90 named workloads across the paper's five
// categories (Client, Enterprise, FSPEC17, ISPEC17, Server — Table 4). Each
// workload is a deterministic kernel mix; mixes are tuned per category so
// the measured global-stable fractions reproduce the Fig. 3 shape (Client/
// Enterprise/Server well above the SPEC suites, ≈34% overall average) as an
// emergent property of execution. (The package doc comment lives in
// kernels.go.)

package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"constable/internal/fsim"
	"constable/internal/prog"
)

// Category names the five workload suites, matching the paper's figures.
type Category string

// The five categories of Table 4.
const (
	Client     Category = "Client"
	Enterprise Category = "Enterprise"
	FSPEC17    Category = "FSPEC17"
	ISPEC17    Category = "ISPEC17"
	Server     Category = "Server"
)

// Categories lists all categories in the paper's plotting order.
var Categories = []Category{Client, Enterprise, FSPEC17, ISPEC17, Server}

// Spec declares one workload: a named, seeded kernel mix, or a captured
// instruction trace (see trace.go) when trace is non-nil.
type Spec struct {
	Name     string
	Category Category
	Seed     int64
	mixes    []mix
	trace    *traceBacking
}

// Build assembles the workload's program. APX selects the 32-register
// code-generation mode of appendix B. Trace-backed specs have no program to
// build — replay them through NewStream instead.
func (s *Spec) Build(apx bool) (*prog.Program, error) {
	if s.trace != nil {
		return nil, fmt.Errorf("workload: %s is trace-backed and has no buildable program", s.Name)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	return buildProgram(s.Name, s.mixes, apx, rng)
}

// NewCPU builds the workload and returns a functional CPU for it.
func (s *Spec) NewCPU(apx bool) (*fsim.CPU, error) {
	p, err := s.Build(apx)
	if err != nil {
		return nil, err
	}
	return fsim.New(p), nil
}

// archetype is a reusable kernel mix; each workload instantiates one with a
// deterministic per-workload variation of iteration counts and padding.
type archetype struct {
	label string
	mixes []mix
}

// Per-category archetypes. The stable/unstable balance per category follows
// the paper's characterization:
//   - Client/Enterprise/Server: heavy in runtime-constant, inlined-args and
//     tight-loop kernels (≈40–50% global-stable loads),
//   - ISPEC17: moderate stability plus branchy/pointer-chasing behaviour,
//   - FSPEC17: compute- and streaming-dominated (≈20% global-stable).
//
// Stable dynamic loads per inner iteration: runtimeconst 2, inlinedargs 2,
// tightloop 3, argchase 3, silentstore 1, regoverwrite 1. Unstable loads per
// iteration: streaming 4, constarray 3, stridevalue 3, randomaccess 2,
// pointerchase 1, storeinvalidate 1. The mixes below balance those rates to
// hit the Fig. 3 category fractions (Client/Enterprise/Server ≈ 0.45–0.50,
// ISPEC17 ≈ 0.30, FSPEC17 ≈ 0.20).
var categoryArchetypes = map[Category][]archetype{
	Client: {
		{"browser", []mix{
			{"runtimeconst", 25, 4}, {"inlinedargs", 40, 1}, {"argchase", 30, 0},
			{"branchy", 25, 1}, {"bigstream", 30, 0}, {"constarray", 38, 0},
			{"randomaccess", 24, 0}, {"silentstore", 15, 1},
		}},
		{"ui", []mix{
			{"inlinedargs", 50, 1}, {"tightloop", 40, 0}, {"runtimeconst", 22, 8},
			{"constarray", 48, 0}, {"branchy", 25, 0}, {"bigstream", 26, 0},
			{"storeinvalidate", 25, 1},
		}},
		{"script", []mix{
			{"argchase", 35, 1}, {"tightloop", 40, 0}, {"pointerchase", 55, 1},
			{"inlinedargs", 35, 1}, {"silentstore", 20, 1}, {"bigstream", 28, 0},
			{"randomaccess", 28, 0},
		}},
	},
	Enterprise: {
		{"appserver", []mix{
			{"inlinedargs", 55, 1}, {"argchase", 30, 0}, {"tightloop", 35, 0},
			{"storeinvalidate", 35, 1}, {"bigstream", 30, 0}, {"constarray", 34, 0},
		}},
		{"middleware", []mix{
			{"runtimeconst", 35, 6}, {"inlinedargs", 45, 1}, {"constarray", 46, 0},
			{"branchy", 25, 1}, {"argchase", 28, 0}, {"randomaccess", 34, 0},
			{"bigstream", 18, 0},
		}},
		{"analytics", []mix{
			{"tightloop", 45, 0}, {"inlinedargs", 40, 1}, {"stridevalue", 46, 0},
			{"runtimeconst", 28, 5}, {"regoverwrite", 30, 1}, {"bigstream", 24, 0},
		}},
	},
	FSPEC17: {
		{"fpdense", []mix{
			{"compute", 90, 0}, {"bigstream", 40, 0}, {"stridevalue", 40, 0},
			{"tightloop", 15, 1}, {"inlinedargs", 12, 1},
		}},
		{"fpstencil", []mix{
			{"streaming", 62, 0}, {"compute", 70, 1}, {"inlinedargs", 15, 1},
			{"constarray", 36, 0}, {"tightloop", 10, 0},
		}},
		{"fpsolver", []mix{
			{"compute", 80, 0}, {"randomaccess", 48, 1}, {"streaming", 42, 0},
			{"tightloop", 15, 0}, {"stridevalue", 24, 0},
		}},
	},
	ISPEC17: {
		{"intbranchy", []mix{
			{"branchy", 60, 1}, {"tightloop", 22, 0}, {"pointerchase", 55, 1},
			{"inlinedargs", 28, 1}, {"storeinvalidate", 35, 0}, {"bigstream", 20, 0},
		}},
		{"intcompress", []mix{
			{"inlinedargs", 35, 1}, {"streaming", 38, 0}, {"branchy", 35, 1},
			{"tightloop", 20, 0}, {"silentstore", 15, 1}, {"constarray", 28, 0},
		}},
		{"intgraph", []mix{
			{"pointerchase", 65, 1}, {"randomaccess", 42, 0}, {"tightloop", 25, 0},
			{"argchase", 16, 4}, {"branchy", 26, 0}, {"streaming", 18, 0},
		}},
	},
	Server: {
		{"kvstore", []mix{
			{"argchase", 35, 0}, {"tightloop", 45, 0}, {"inlinedargs", 45, 1},
			{"randomaccess", 56, 0}, {"silentstore", 25, 0}, {"bigstream", 28, 0},
		}},
		{"webserver", []mix{
			{"inlinedargs", 55, 1}, {"runtimeconst", 32, 6}, {"constarray", 52, 0},
			{"branchy", 22, 1}, {"argchase", 30, 0}, {"bigstream", 22, 0},
		}},
		{"dataproc", []mix{
			{"tightloop", 50, 0}, {"inlinedargs", 40, 1}, {"bigstream", 34, 0},
			{"argchase", 26, 2}, {"storeinvalidate", 25, 1}, {"stridevalue", 32, 0},
		}},
	},
}

// countsPerCategory reproduces Table 4's trace counts (22+14+29+11+14 = 90).
var countsPerCategory = map[Category]int{
	Client:     22,
	Enterprise: 14,
	FSPEC17:    29,
	ISPEC17:    11,
	Server:     14,
}

// The suite is deterministic, so it is generated once and memoized: the
// service layer resolves workload names on every JobSpec canonicalization,
// hash and sweep-cell submission, and regenerating 90 RNG-seeded specs per
// lookup dominated sweep-orchestration profiles. Specs are shared and must
// be treated as immutable by callers.
var (
	suiteOnce   sync.Once
	suiteSpecs  []*Spec
	suiteByName map[string]*Spec
)

func buildSuite() {
	for _, cat := range Categories {
		n := countsPerCategory[cat]
		arch := categoryArchetypes[cat]
		for i := 0; i < n; i++ {
			a := arch[i%len(arch)]
			seed := int64(1_000_003)*int64(len(suiteSpecs)+1) + int64(i)
			rng := rand.New(rand.NewSource(seed))
			// Vary the archetype deterministically: scale iteration counts
			// and padding so no two workloads are identical.
			mixes := make([]mix, len(a.mixes))
			for j, m := range a.mixes {
				scale := 0.6 + rng.Float64()*0.9 // 0.6..1.5
				mixes[j] = mix{
					kernel: m.kernel,
					iters:  maxInt(4, int(float64(m.iters)*scale)),
					pad:    m.pad + rng.Intn(3),
				}
			}
			// Shuffle kernel order per workload for distinct code layouts.
			rng.Shuffle(len(mixes), func(x, y int) { mixes[x], mixes[y] = mixes[y], mixes[x] })
			suiteSpecs = append(suiteSpecs, &Spec{
				Name:     fmt.Sprintf("%s-%s-%02d", lower(string(cat)), a.label, i),
				Category: cat,
				Seed:     seed,
				mixes:    mixes,
			})
		}
	}
	suiteByName = make(map[string]*Spec, len(suiteSpecs))
	for _, s := range suiteSpecs {
		suiteByName[s.Name] = s
	}
}

// Suite returns the full 90-workload suite in deterministic order. The
// returned slice is the caller's to reorder; the Specs themselves are
// shared and immutable.
func Suite() []*Spec {
	suiteOnce.Do(buildSuite)
	out := make([]*Spec, len(suiteSpecs))
	copy(out, suiteSpecs)
	return out
}

// ByName returns the workload with the given name from the suite.
func ByName(name string) (*Spec, error) {
	suiteOnce.Do(buildSuite)
	if s, ok := suiteByName[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// Names returns all workload names in suite order.
func Names() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, s := range suite {
		names[i] = s.Name
	}
	return names
}

// ByCategory groups the suite by category, preserving order.
func ByCategory() map[Category][]*Spec {
	m := make(map[Category][]*Spec)
	for _, s := range Suite() {
		m[s.Category] = append(m[s.Category], s)
	}
	return m
}

// SmallSuite returns a reduced suite (one workload per archetype per
// category, 15 total) for fast tests and benchmarks.
func SmallSuite() []*Spec {
	seen := make(map[string]bool)
	var out []*Spec
	for _, s := range Suite() {
		key := string(s.Category) + "/" + archLabel(s.Name)
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func archLabel(name string) string {
	// name is category-label-NN; extract the middle part.
	first, last := -1, -1
	for i, c := range name {
		if c == '-' {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || last == first {
		return name
	}
	return name[first+1 : last]
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

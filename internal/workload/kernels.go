// Package workload provides the synthetic workload suite that stands in for
// the paper's 90 proprietary traces. Each workload is a deterministic
// program built from kernels that reproduce the empirically-observed sources
// of global-stable loads (§4.1–4.2 of the paper):
//
//   - runtime constants accessed via PC-relative loads across long
//     inter-occurrence distances (the 541.leela_r s_rng pattern),
//   - inlined-function arguments accessed via stack-relative loads across
//     short distances (the 557.xz_r rc_shift_low pattern),
//   - tight-loop register-relative loads off a stable base pointer,
//
// mixed with non-stable behaviour: streaming array loads, pointer chasing,
// store-invalidated loads, silent stores, value-predictable-but-address-
// changing loads (where EVES wins and Constable cannot), branchy control
// flow, and compute-heavy stretches.
//
// In APX mode (Regs32) the generator keeps inlined-function arguments and
// temporaries in the extra registers R16..R31 instead of stack slots,
// modelling the appendix-B recompilation study.
package workload

import (
	"fmt"
	"math/rand"

	"constable/internal/isa"
	"constable/internal/prog"
)

// KernelParams tunes one kernel instance inside a workload program.
type KernelParams struct {
	// Iters is the inner-loop trip count for one activation of the kernel.
	Iters int
	// Spread separates this kernel's data region from others.
	Region uint64
	// APX enables 32-register code generation: stack temporaries become
	// register-resident, removing most of this kernel's stack loads.
	APX bool
	// Pad inserts this many filler ALU instructions per loop body to
	// stretch inter-occurrence distance.
	Pad int
}

// Kernel emits one activation of a loop nest into b. reg allocators keep
// kernels register-disjoint where needed; kernels are emitted sequentially
// into one big outer loop by BuildProgram.
type Kernel func(b *prog.Builder, id int, p KernelParams)

// emitPad emits n dependent single-cycle ALU instructions on a scratch reg.
func emitPad(b *prog.Builder, n int, scratch isa.Reg) {
	for i := 0; i < n; i++ {
		b.ALUImm(isa.ALUAdd, scratch, scratch, 1)
	}
}

// loopHead/loopTail emit a counted down-loop using ctr.
func loopHead(b *prog.Builder, label string) { b.Label(label) }

func loopTail(b *prog.Builder, label string, ctr isa.Reg) {
	b.ALUImm(isa.ALUDec, ctr, ctr, 0)
	b.Branch(ctr, label)
}

// KernelRuntimeConst models the leela get_Rng pattern: a function that loads
// a global object pointer via a PC-relative load and then dereferences a
// field through it (register-relative). The global is written once during
// program setup, so both loads are global-stable. Called from a loop with
// padding, giving the long inter-occurrence distances Fig. 3(d) reports for
// PC-relative loads.
func KernelRuntimeConst(b *prog.Builder, id int, p KernelParams) {
	global := prog.GlobalBase + p.Region
	object := prog.HeapBase + p.Region
	fn := fmt.Sprintf("k%d_get_rng", id)
	loop := fmt.Sprintf("k%d_rc_loop", id)
	skip := fmt.Sprintf("k%d_rc_skip", id)

	// Setup (once per outer iteration; the stored value never changes, so
	// after the first outer iteration these are silent stores that the
	// setup branch skips anyway).
	b.SetMem(global, object)
	b.SetMem(object+8, 0x1234_5678) // object field: a runtime constant

	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Call(fn)
	// Use the returned pointer (in R9): dereference a field — a stable
	// register-relative load (base register rewritten with the same value
	// each call, so Constable must re-learn unless RMT tolerates it; this
	// is exactly loss-reason (a) in Fig. 17).
	b.Load(isa.R10, isa.R9, 8)
	b.ALU(isa.ALUAdd, isa.R11, isa.R11, isa.R10)
	// Runtime-constant accesses recur across whole "function calls" worth
	// of work: stretch the inter-occurrence distance accordingly (Fig. 3d
	// gives PC-relative loads the longest distances).
	emitPad(b, p.Pad*12, isa.R12)
	loopTail(b, loop, isa.R8)
	b.Jump(skip)

	// The function body: PC-relative load of the global pointer.
	b.Label(fn)
	b.LoadGlobal(isa.R9, global)
	b.Ret()
	b.Label(skip)
}

// KernelInlinedArgs models the xz rc_shift_low pattern: a do-while loop that
// re-loads function arguments from the stack every iteration. The arguments
// never change during the loop, so the loads are global-stable with short
// inter-occurrence distance. In APX mode the arguments live in R16/R17 and
// the stack loads disappear.
func KernelInlinedArgs(b *prog.Builder, id int, p KernelParams) {
	out := prog.HeapBase + p.Region
	loop := fmt.Sprintf("k%d_ia_loop", id)

	// Spill the "arguments" to the stack frame (or keep in regs under APX).
	b.MovImm(isa.R6, int64(out))       // out pointer
	b.MovImm(isa.R7, int64(p.Iters*8)) // out_size
	// Under APX only some call sites win registers: the compiler still
	// spills when register pressure is high (appendix B sees a partial,
	// not total, reduction of stack loads).
	apx := p.APX && id%2 == 0
	if !apx {
		b.Store(isa.RSP, -16, isa.R6)
		b.Store(isa.RSP, -24, isa.R7)
	} else {
		b.Mov(isa.R16, isa.R6)
		b.Mov(isa.R17, isa.R7)
	}
	b.MovImm(isa.R8, int64(p.Iters)) // loop counter (cache_size)
	b.Zero(isa.R9)                   // *out_pos

	loopHead(b, loop)
	if !apx {
		// Stable stack-relative loads of the two arguments.
		b.Load(isa.R10, isa.RSP, -16) // out
		b.Load(isa.R11, isa.RSP, -24) // out_size (kept live for the compare)
	} else {
		b.Mov(isa.R10, isa.R16)
		b.Mov(isa.R11, isa.R17)
	}
	b.ALU(isa.ALUCmpLT, isa.R12, isa.R9, isa.R11) // out_pos < out_size (always true here)
	// out[out_pos] = f(cache); ++out_pos
	b.ALU(isa.ALUAdd, isa.R13, isa.R10, isa.R9)
	b.Store(isa.R13, 0, isa.R8)
	b.ALUImm(isa.ALUAdd, isa.R9, isa.R9, 8)
	emitPad(b, p.Pad, isa.R14)
	loopTail(b, loop, isa.R8)
}

// KernelTightLoop models register-relative global-stable loads with short
// inter-occurrence distance: a loop repeatedly reading a small set of fields
// off a stable base pointer that is set once outside the loop.
func KernelTightLoop(b *prog.Builder, id int, p KernelParams) {
	base := prog.HeapBase + p.Region
	loop := fmt.Sprintf("k%d_tl_loop", id)

	b.SetMem(base, 7)
	b.SetMem(base+8, 13)
	b.SetMem(base+16, 29)

	b.MovImm(isa.R6, int64(base)) // stable base pointer
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Load(isa.R9, isa.R6, 0)
	b.ALU(isa.ALUAdd, isa.R12, isa.R12, isa.R9)
	b.Load(isa.R10, isa.R6, 8)
	b.ALU(isa.ALUAdd, isa.R12, isa.R12, isa.R10)
	b.Load(isa.R11, isa.R6, 16)
	b.ALU(isa.ALUAdd, isa.R12, isa.R12, isa.R11)
	emitPad(b, p.Pad, isa.R13)
	loopTail(b, loop, isa.R8)
}

// KernelStreaming models a non-stable streaming read: sequential loads over
// a large array. Addresses change every instance, so the loads are neither
// global-stable nor value-predictable (array contents are the deterministic
// address hash). Exercises the prefetchers and L1-D bandwidth.
func KernelStreaming(b *prog.Builder, id int, p KernelParams) {
	base := prog.HeapBase + p.Region
	loop := fmt.Sprintf("k%d_st_loop", id)

	b.MovImm(isa.R6, int64(base))
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Load(isa.R9, isa.R6, 0)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R9)
	b.Load(isa.R10, isa.R6, 8)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R10)
	b.Load(isa.R11, isa.R6, 16)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R11)
	b.Load(isa.R12, isa.R6, 24)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R12)
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 32)
	emitPad(b, p.Pad, isa.R14)
	loopTail(b, loop, isa.R8)
}

// KernelArgChase models a stable pointer chain: a PC-relative load of a
// global object pointer, then two dependent field dereferences. All three
// loads are global-stable, and they form a serial 3-load dependence chain
// every iteration — the pattern where eliminating both the address
// computation and the data fetch collapses a long latency chain.
func KernelArgChase(b *prog.Builder, id int, p KernelParams) {
	g := prog.GlobalBase + p.Region
	p1 := prog.HeapBase + p.Region
	p2 := prog.HeapBase + p.Region + 0x1000
	loop := fmt.Sprintf("k%d_ac_loop", id)

	b.SetMem(g, p1)
	b.SetMem(p1+16, p2)
	b.SetMem(p2+24, 0xBEEF)

	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.LoadGlobal(isa.R9, g)      // stable PC-relative
	b.Load(isa.R10, isa.R9, 16)  // stable, depends on previous load
	b.Load(isa.R11, isa.R10, 24) // stable, depends on previous load
	b.ALU(isa.ALUAdd, isa.R12, isa.R12, isa.R11)
	emitPad(b, p.Pad, isa.R13)
	loopTail(b, loop, isa.R8)
}

// KernelBigStream models a large-footprint sequential scan: a cursor kept in
// memory walks a 512 KiB window (far beyond the L1-D), so the scan thrashes
// the L1, periodically evicts other kernels' stable lines, and exposes real
// memory latency. The cursor load is store-invalidated every iteration and
// its value is stride-predictable — EVES territory, not Constable's.
func KernelBigStream(b *prog.Builder, id int, p KernelParams) {
	base := prog.HeapBase + p.Region
	cursorAddr := prog.GlobalBase + p.Region + 0x800
	loop := fmt.Sprintf("k%d_bs_loop", id)

	b.SetMem(cursorAddr, base)
	b.MovImm(isa.R7, int64(cursorAddr))
	b.MovImm(isa.R14, int64(base))
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Load(isa.R6, isa.R7, 0) // cursor
	b.Load(isa.R9, isa.R6, 0)
	b.ALU(isa.ALUAdd, isa.R12, isa.R12, isa.R9)
	b.Load(isa.R10, isa.R6, 64)
	b.ALU(isa.ALUAdd, isa.R12, isa.R12, isa.R10)
	// Advance by two cachelines and wrap within a 512 KiB window, so the
	// scan touches every line of a footprint ~10x the L1-D.
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 128)
	b.ALU(isa.ALUSub, isa.R6, isa.R6, isa.R14)
	b.ALUImm(isa.ALUAnd, isa.R6, isa.R6, 0x7_FF80)
	b.ALU(isa.ALUAdd, isa.R6, isa.R6, isa.R14)
	b.Store(isa.R7, 0, isa.R6)
	emitPad(b, p.Pad, isa.R13)
	loopTail(b, loop, isa.R8)
}

// KernelConstArray models loads that EVES covers but Constable cannot:
// a streaming sweep over an array whose every element holds the same value,
// so the load has perfect value locality but zero address locality.
func KernelConstArray(b *prog.Builder, id int, p KernelParams) {
	base := prog.HeapBase + p.Region
	loop := fmt.Sprintf("k%d_ca_loop", id)
	init := fmt.Sprintf("k%d_ca_init", id)

	// Fill the array with a constant (stores; first outer iteration only
	// is non-silent).
	b.MovImm(isa.R6, int64(base))
	b.MovImm(isa.R8, int64(p.Iters))
	b.MovImm(isa.R9, 42)
	loopHead(b, init)
	b.Store(isa.R6, 0, isa.R9)
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 8)
	loopTail(b, init, isa.R8)

	// Sweep it.
	b.MovImm(isa.R6, int64(base))
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Load(isa.R10, isa.R6, 0)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R10)
	b.Load(isa.R11, isa.R6, 8)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R11)
	b.Load(isa.R12, isa.R6, 16)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R12)
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 24)
	emitPad(b, p.Pad, isa.R14)
	loopTail(b, loop, isa.R8)
}

// KernelPointerChase models a latency-bound linked-list traversal: each
// load's address depends on the previous load's value. The ring is laid out
// with a large stride so the chase misses in the L1. Not stable, not value
// predictable per-instance (but the *sequence* repeats each lap, giving
// last-value predictors partial coverage on short rings).
func KernelPointerChase(b *prog.Builder, id int, p KernelParams) {
	base := prog.HeapBase + p.Region
	const nodes = 64
	const stride = 4096
	for i := 0; i < nodes; i++ {
		next := base + uint64((i+1)%nodes)*stride
		b.SetMem(base+uint64(i)*stride, next)
	}
	loop := fmt.Sprintf("k%d_pc_loop", id)

	b.MovImm(isa.R6, int64(base))
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Load(isa.R6, isa.R6, 0) // p = p->next
	emitPad(b, p.Pad, isa.R9)
	loopTail(b, loop, isa.R8)
}

// KernelStoreInvalidate models loads whose address gets stored to: a
// "shared counter" the loop both reads and increments. Constable's AMT
// resets can_eliminate on every store-address generation, so these loads
// never stay eliminated; they also create the store→younger-eliminated-load
// window that the memory-disambiguation logic must catch (§6.5, Fig. 21).
func KernelStoreInvalidate(b *prog.Builder, id int, p KernelParams) {
	ctr := prog.GlobalBase + p.Region
	loop := fmt.Sprintf("k%d_si_loop", id)

	b.SetMem(ctr, 0)
	b.MovImm(isa.R6, int64(ctr))
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Load(isa.R9, isa.R6, 0)
	b.ALUImm(isa.ALUInc, isa.R9, isa.R9, 0)
	b.Store(isa.R6, 0, isa.R9)
	emitPad(b, p.Pad, isa.R10)
	loopTail(b, loop, isa.R8)
}

// KernelSilentStore models global-stable loads lost to silent stores
// (Fig. 17 loss reason b): a loop that re-stores an unchanged flag word and
// then loads it. The load fetches the same value from the same address
// forever (global-stable), but the intervening silent stores reset the AMT
// entry each iteration.
func KernelSilentStore(b *prog.Builder, id int, p KernelParams) {
	flag := prog.GlobalBase + p.Region
	loop := fmt.Sprintf("k%d_ss_loop", id)

	b.SetMem(flag, 1)
	b.MovImm(isa.R6, int64(flag))
	b.MovImm(isa.R7, 1) // the unchanging value
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Store(isa.R6, 0, isa.R7) // silent store
	b.Load(isa.R9, isa.R6, 0)  // global-stable load, never eliminated
	b.ALU(isa.ALUAdd, isa.R10, isa.R10, isa.R9)
	emitPad(b, p.Pad, isa.R11)
	loopTail(b, loop, isa.R8)
}

// KernelRegOverwrite models global-stable loads lost to source-register
// rewrites (Fig. 17 loss reason a): the base register is recomputed to the
// same value before every load, so Condition 1 is violated between every
// pair of instances even though address and value never change.
func KernelRegOverwrite(b *prog.Builder, id int, p KernelParams) {
	base := prog.HeapBase + p.Region
	loop := fmt.Sprintf("k%d_ro_loop", id)

	b.SetMem(base, 99)
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.MovImm(isa.R6, int64(base)) // rewrite of the load's source register
	b.Load(isa.R9, isa.R6, 0)
	b.ALU(isa.ALUAdd, isa.R10, isa.R10, isa.R9)
	emitPad(b, p.Pad, isa.R11)
	loopTail(b, loop, isa.R8)
}

// KernelBranchy models data-dependent control flow: a loop whose branch
// direction depends on a pseudo-random register mix, defeating the branch
// predictor at a tunable rate.
func KernelBranchy(b *prog.Builder, id int, p KernelParams) {
	loop := fmt.Sprintf("k%d_br_loop", id)
	skip := fmt.Sprintf("k%d_br_skip", id)

	b.MovImm(isa.R8, int64(p.Iters))
	b.MovImm(isa.R6, int64(p.Region|1)) // LCG state seed
	loopHead(b, loop)
	// LCG step: hard-to-predict low bit.
	b.MovImm(isa.R11, 6364136223846793005)
	b.Mul(isa.R6, isa.R6, isa.R11)
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 1442695040888963407)
	b.ALUImm(isa.ALUAnd, isa.R9, isa.R6, 0x1000)
	b.Branch(isa.R9, skip)
	b.ALUImm(isa.ALUAdd, isa.R10, isa.R10, 3)
	b.Label(skip)
	emitPad(b, p.Pad, isa.R12)
	loopTail(b, loop, isa.R8)
}

// KernelCompute models FP/integer compute-heavy stretches (FSPEC-like):
// long dependent chains of multiplies and FP-class operations with few
// memory accesses.
func KernelCompute(b *prog.Builder, id int, p KernelParams) {
	loop := fmt.Sprintf("k%d_cp_loop", id)

	b.MovImm(isa.R8, int64(p.Iters))
	b.MovImm(isa.R6, int64(id)*7+3)
	loopHead(b, loop)
	b.Mul(isa.R9, isa.R6, isa.R6)
	b.FP(isa.R10, isa.R9, isa.R6)
	b.FP(isa.R11, isa.R10, isa.R9)
	b.ALU(isa.ALUAdd, isa.R6, isa.R11, isa.R6)
	emitPad(b, p.Pad, isa.R12)
	loopTail(b, loop, isa.R8)
}

// KernelRandomAccess models cache-hostile random loads over a large region
// (hash-table probing): an LCG generates indices into a table far larger
// than the LLC slice we model, producing misses and no stability.
func KernelRandomAccess(b *prog.Builder, id int, p KernelParams) {
	base := prog.HeapBase + p.Region
	loop := fmt.Sprintf("k%d_ra_loop", id)

	b.MovImm(isa.R6, int64(p.Region|1))
	b.MovImm(isa.R7, int64(base))
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.MovImm(isa.R11, 2862933555777941757)
	b.Mul(isa.R6, isa.R6, isa.R11)
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 3037000493)
	b.ALUImm(isa.ALUAnd, isa.R9, isa.R6, 0x3F_FFF8) // ~4 MiB window, 8B aligned
	b.ALU(isa.ALUAdd, isa.R9, isa.R9, isa.R7)
	b.Load(isa.R10, isa.R9, 0)
	b.Load(isa.R11, isa.R9, 8)
	b.ALU(isa.ALUAdd, isa.R12, isa.R12, isa.R10)
	b.ALU(isa.ALUAdd, isa.R12, isa.R12, isa.R11)
	emitPad(b, p.Pad, isa.R13)
	loopTail(b, loop, isa.R8)
}

// KernelStrideValue models stride-value-predictable loads: a sweep over an
// array pre-filled with an arithmetic sequence. EVES's stride component
// covers these; Constable does not (addresses and values both change).
func KernelStrideValue(b *prog.Builder, id int, p KernelParams) {
	base := prog.HeapBase + p.Region
	loop := fmt.Sprintf("k%d_sv_loop", id)
	init := fmt.Sprintf("k%d_sv_init", id)

	b.MovImm(isa.R6, int64(base))
	b.MovImm(isa.R8, int64(p.Iters))
	b.Zero(isa.R9)
	loopHead(b, init)
	b.Store(isa.R6, 0, isa.R9)
	b.ALUImm(isa.ALUAdd, isa.R9, isa.R9, 5)
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 8)
	loopTail(b, init, isa.R8)

	b.MovImm(isa.R6, int64(base))
	b.MovImm(isa.R8, int64(p.Iters))
	loopHead(b, loop)
	b.Load(isa.R10, isa.R6, 0)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R10)
	b.Load(isa.R11, isa.R6, 8)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R11)
	b.Load(isa.R12, isa.R6, 16)
	b.ALU(isa.ALUAdd, isa.R13, isa.R13, isa.R12)
	b.ALUImm(isa.ALUAdd, isa.R6, isa.R6, 24)
	emitPad(b, p.Pad, isa.R14)
	loopTail(b, loop, isa.R8)
}

// kernelByName maps kernel identifiers in workload specs to constructors.
var kernelByName = map[string]Kernel{
	"argchase":        KernelArgChase,
	"bigstream":       KernelBigStream,
	"runtimeconst":    KernelRuntimeConst,
	"inlinedargs":     KernelInlinedArgs,
	"tightloop":       KernelTightLoop,
	"streaming":       KernelStreaming,
	"constarray":      KernelConstArray,
	"pointerchase":    KernelPointerChase,
	"storeinvalidate": KernelStoreInvalidate,
	"silentstore":     KernelSilentStore,
	"regoverwrite":    KernelRegOverwrite,
	"branchy":         KernelBranchy,
	"compute":         KernelCompute,
	"randomaccess":    KernelRandomAccess,
	"stridevalue":     KernelStrideValue,
}

// KernelNames returns the sorted list of kernel identifiers.
func KernelNames() []string {
	names := make([]string, 0, len(kernelByName))
	for n := range kernelByName {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// mix describes one kernel activation inside a workload.
type mix struct {
	kernel string
	iters  int
	pad    int
}

// buildProgram assembles a looping program from a kernel mix. The whole mix
// is wrapped in an infinite outer loop so the stream never runs dry; global-
// stable behaviour spans outer iterations exactly as it spans a whole trace
// in the paper.
func buildProgram(name string, mixes []mix, apx bool, rng *rand.Rand) (*prog.Program, error) {
	b := prog.NewBuilder(name)
	b.Label("outer")
	for i, m := range mixes {
		k, ok := kernelByName[m.kernel]
		if !ok {
			return nil, fmt.Errorf("workload: unknown kernel %q in %q", m.kernel, name)
		}
		k(b, i, KernelParams{
			Iters:  m.iters,
			Region: uint64(i+1) * 0x0100_0000,
			APX:    apx,
			Pad:    m.pad,
		})
	}
	// Perturb register state deterministically between outer iterations so
	// value histories are not degenerate.
	b.ALUImm(isa.ALUAdd, isa.R15, isa.R15, int64(rng.Int31()%251)+1)
	b.Jump("outer")
	return b.Build()
}

package workload

import (
	"testing"

	"constable/internal/fsim"
	"constable/internal/inspector"
	"constable/internal/isa"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 90 {
		t.Fatalf("suite has %d workloads, want 90 (Table 4)", len(suite))
	}
	counts := make(map[Category]int)
	names := make(map[string]bool)
	for _, s := range suite {
		counts[s.Category]++
		if names[s.Name] {
			t.Errorf("duplicate workload name %q", s.Name)
		}
		names[s.Name] = true
	}
	want := map[Category]int{Client: 22, Enterprise: 14, FSPEC17: 29, ISPEC17: 11, Server: 14}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("category %s has %d workloads, want %d", cat, counts[cat], n)
		}
	}
}

func TestEveryWorkloadBuildsAndRuns(t *testing.T) {
	for _, s := range Suite() {
		cpu, err := s.NewCPU(false)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		// Run a little and make sure nothing panics and loads appear.
		loads := 0
		for i := 0; i < 5000; i++ {
			d := cpu.Step()
			if d.Op == isa.OpLoad {
				loads++
			}
		}
		if loads == 0 {
			t.Errorf("%s: no loads in first 5000 instructions", s.Name)
		}
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	s := Suite()[0]
	run := func() []isa.DynInst {
		cpu, err := s.NewCPU(false)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]isa.DynInst, 2000)
		for i := range out {
			out[i] = cpu.Step()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// analyze runs a workload through the inspector for n instructions.
func analyze(t *testing.T, s *Spec, apx bool, n int) *inspector.Report {
	t.Helper()
	cpu, err := s.NewCPU(apx)
	if err != nil {
		t.Fatal(err)
	}
	ins := inspector.New()
	for i := 0; i < n; i++ {
		d := cpu.Step()
		ins.Observe(&d)
	}
	return ins.Report()
}

func TestGlobalStableFractionShape(t *testing.T) {
	// The Fig. 3 shape must emerge: Client/Enterprise/Server categories have
	// a clearly higher global-stable fraction than FSPEC17, and the overall
	// average is substantial (paper: 34.2%).
	const n = 120_000
	fracs := make(map[Category]float64)
	for _, cat := range Categories {
		var specs []*Spec
		for _, s := range SmallSuite() {
			if s.Category == cat {
				specs = append(specs, s)
			}
		}
		var sum float64
		for _, s := range specs {
			sum += analyze(t, s, false, n).GlobalStableFraction()
		}
		fracs[cat] = sum / float64(len(specs))
	}
	for _, rich := range []Category{Client, Enterprise, Server} {
		if fracs[rich] <= fracs[FSPEC17] {
			t.Errorf("%s global-stable fraction %.3f should exceed FSPEC17 %.3f",
				rich, fracs[rich], fracs[FSPEC17])
		}
	}
	var avg float64
	for _, f := range fracs {
		avg += f
	}
	avg /= float64(len(fracs))
	if avg < 0.15 || avg > 0.60 {
		t.Errorf("average global-stable fraction %.3f out of plausible range [0.15,0.60] (paper: 0.342)", avg)
	}
}

func TestAllThreeAddressingModesPresent(t *testing.T) {
	// Global-stable loads must span PC-relative, stack-relative and
	// register-relative addressing (Fig. 3b).
	total := make(map[string]uint64)
	for _, s := range SmallSuite() {
		rep := analyze(t, s, false, 60_000)
		for m, c := range rep.ByMode {
			total[m] += c
		}
	}
	for _, mode := range []string{"pc-rel", "stack-rel", "reg-rel"} {
		if total[mode] == 0 {
			t.Errorf("no global-stable loads with %s addressing", mode)
		}
	}
}

func TestAPXReducesStackLoads(t *testing.T) {
	// Appendix B: with 32 registers the inlined-args kernels keep arguments
	// in registers, so dynamic loads drop and the drop is concentrated in
	// stack-relative loads.
	var spec *Spec
	for _, s := range Suite() {
		if s.Category == Enterprise {
			spec = s
			break
		}
	}
	base := analyze(t, spec, false, 100_000)
	apx := analyze(t, spec, true, 100_000)

	baseFrac := float64(base.DynLoads) / float64(base.DynInsts)
	apxFrac := float64(apx.DynLoads) / float64(apx.DynInsts)
	if apxFrac >= baseFrac {
		t.Errorf("APX load density %.4f should be below baseline %.4f", apxFrac, baseFrac)
	}

	baseStack := float64(base.ByMode["stack-rel"]) / float64(maxU(base.GlobalStableDynLoads, 1))
	apxStack := float64(apx.ByMode["stack-rel"]) / float64(maxU(apx.GlobalStableDynLoads, 1))
	if apxStack >= baseStack {
		t.Errorf("APX stack-relative stable share %.3f should drop below %.3f", apxStack, baseStack)
	}
	// PC-relative runtime constants must survive APX.
	if apx.ByMode["pc-rel"] == 0 {
		t.Error("PC-relative global-stable loads must survive APX")
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 90 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	s, err := ByName(names[3])
	if err != nil || s.Name != names[3] {
		t.Fatalf("ByName(%q) = %v, %v", names[3], s, err)
	}
	if _, err := ByName("no-such-workload"); err == nil {
		t.Error("ByName must fail for unknown workloads")
	}
}

func TestByCategoryPartition(t *testing.T) {
	m := ByCategory()
	total := 0
	for _, specs := range m {
		total += len(specs)
	}
	if total != 90 {
		t.Errorf("ByCategory covers %d workloads, want 90", total)
	}
}

func TestSmallSuite(t *testing.T) {
	small := SmallSuite()
	if len(small) != 15 {
		t.Errorf("SmallSuite has %d workloads, want 15 (3 archetypes × 5 categories)", len(small))
	}
	cats := make(map[Category]int)
	for _, s := range small {
		cats[s.Category]++
	}
	for _, cat := range Categories {
		if cats[cat] != 3 {
			t.Errorf("SmallSuite has %d %s workloads, want 3", cats[cat], cat)
		}
	}
}

func TestKernelNames(t *testing.T) {
	names := KernelNames()
	if len(names) != len(kernelByName) {
		t.Fatalf("KernelNames() = %d entries, want %d", len(names), len(kernelByName))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("KernelNames not sorted at %d: %q <= %q", i, names[i], names[i-1])
		}
	}
}

func TestEveryKernelRunsStandalone(t *testing.T) {
	for _, name := range KernelNames() {
		spec := &Spec{
			Name:     "solo-" + name,
			Category: Client,
			Seed:     42,
			mixes:    []mix{{kernel: name, iters: 20, pad: 1}},
		}
		cpu, err := spec.NewCPU(false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 3000; i++ {
			cpu.Step()
		}
	}
}

func TestSilentStoreKernelEmitsSilentStores(t *testing.T) {
	spec := &Spec{Name: "ss", Category: Client, Seed: 1,
		mixes: []mix{{kernel: "silentstore", iters: 30, pad: 0}}}
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	silent := 0
	for i := 0; i < 2000; i++ {
		d := cpu.Step()
		if d.Op == isa.OpStore && d.Silent {
			silent++
		}
	}
	if silent == 0 {
		t.Error("silentstore kernel produced no silent stores")
	}
}

func TestPointerChaseAddressesVary(t *testing.T) {
	spec := &Spec{Name: "pc", Category: Client, Seed: 1,
		mixes: []mix{{kernel: "pointerchase", iters: 30, pad: 0}}}
	cpu, err := spec.NewCPU(false)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		d := cpu.Step()
		if d.Op == isa.OpLoad {
			addrs[d.Addr] = true
		}
	}
	if len(addrs) < 10 {
		t.Errorf("pointer chase touched only %d distinct addresses", len(addrs))
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

var _ = fsim.InitialWord // keep fsim import for documentation linkage

package vpred

import "constable/internal/stats"

// Interned counter IDs for the competing mechanisms' statistics.
var (
	cEVESPredictions = stats.Intern("eves.predictions")
	cEVESCorrect     = stats.Intern("eves.correct")
	cEVESMispredicts = stats.Intern("eves.mispredicts")
	cRFPPredictions  = stats.Intern("rfp.predictions")
	cRFPCorrect      = stats.Intern("rfp.correct")
	cELAREarly       = stats.Intern("elar.early_resolved")
)

// EmitCounters adds the value predictor's statistics into cs through the
// interned counter registry.
func (e *EVES) EmitCounters(cs *stats.CounterSet) {
	cs.Add(cEVESPredictions, e.Predictions)
	cs.Add(cEVESCorrect, e.Correct)
	cs.Add(cEVESMispredicts, e.Mispredicts)
}

// EmitCounters adds the address predictor's statistics into cs.
func (r *RFP) EmitCounters(cs *stats.CounterSet) {
	cs.Add(cRFPPredictions, r.Predictions)
	cs.Add(cRFPCorrect, r.Correct)
}

// EmitCounters adds the early-resolution statistics into cs.
func (e *ELAR) EmitCounters(cs *stats.CounterSet) {
	cs.Add(cELAREarly, e.EarlyResolved)
}

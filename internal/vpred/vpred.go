// Package vpred implements the latency-tolerance mechanisms Constable is
// evaluated against (§8.4, Table 2):
//
//   - EVES: a confidence-gated load value predictor (last-value + stride,
//     the behavioural core of Seznec's CVP-1 winner). A confident
//     prediction breaks load data dependence; the load still executes to
//     verify, and a misprediction flushes the pipeline.
//   - RFP: register-file prefetching — a stride-based load *address*
//     predictor; a correct prediction lets the memory access overlap the
//     front end, hiding latency, but the load still consumes its load port.
//   - ELAR: early load address resolution for stack loads — the stack
//     pointer is tracked in the decode stage, so stack-relative loads can
//     begin their memory access without waiting for address generation.
package vpred

// EVESConfig tunes the value predictor.
type EVESConfig struct {
	Entries       int
	ConfThreshold uint8 // predict only at full confidence
	ConfMax       uint8
}

// DefaultEVESConfig matches the 32 KB CVP-1 budget in spirit: 4K entries of
// (value, stride, confidence), with the very high confidence gating that
// characterizes EVES — it only predicts when a misprediction is nearly
// impossible, because the flush cost of a wrong value dwarfs the benefit of
// many correct ones.
func DefaultEVESConfig() EVESConfig {
	return EVESConfig{Entries: 4096, ConfThreshold: 40, ConfMax: 63}
}

type evesEntry struct {
	pc       uint64
	value    uint64
	stride   int64
	conf     uint8
	misses   uint8 // lifetime mispredict count: the utility filter
	valid    bool
	poisoned bool // PCs that mispredicted repeatedly are never predicted again
}

// EVES is the load value predictor. Create with NewEVES.
type EVES struct {
	cfg   EVESConfig
	table []evesEntry

	Predictions uint64 // confident predictions issued
	Correct     uint64
	Mispredicts uint64
}

// NewEVES builds the predictor.
func NewEVES(cfg EVESConfig) *EVES {
	return &EVES{cfg: cfg, table: make([]evesEntry, cfg.Entries)}
}

func (e *EVES) entry(pc uint64) *evesEntry {
	return &e.table[(pc>>2)%uint64(len(e.table))]
}

// Predict returns the predicted value for the load at pc and whether the
// predictor is confident enough to use it.
func (e *EVES) Predict(pc uint64) (uint64, bool) {
	en := e.entry(pc)
	if !en.valid || en.pc != pc || en.poisoned || en.conf < e.cfg.ConfThreshold {
		return 0, false
	}
	return en.value + uint64(en.stride), true
}

// Train updates the predictor with the architectural value of the load at
// pc. predicted reports whether a confident prediction was issued for this
// instance, and predVal what it was; Train returns whether that prediction
// was wrong (pipeline flush required).
func (e *EVES) Train(pc, actual uint64, predicted bool, predVal uint64) (mispredict bool) {
	en := e.entry(pc)
	if predicted {
		e.Predictions++
		if predVal == actual {
			e.Correct++
		} else {
			e.Mispredicts++
			mispredict = true
		}
	}
	if !en.valid || en.pc != pc {
		*e.entry(pc) = evesEntry{pc: pc, value: actual, valid: true}
		return mispredict
	}
	if mispredict {
		// Utility filter: a PC whose values looked predictable but broke at
		// runtime (e.g. stride streams with periodic resets) quickly stops
		// being predicted at all.
		if en.misses < 255 {
			en.misses++
		}
		if en.misses >= 2 {
			en.poisoned = true
		}
	}
	newStride := int64(actual) - int64(en.value)
	if en.value+uint64(en.stride) == actual {
		if en.conf < e.cfg.ConfMax {
			en.conf++
		}
	} else {
		// Wrong expectation: relearn the stride, decay confidence hard
		// (high-confidence gating is what keeps EVES's mispredict cost low).
		en.conf = 0
		en.stride = newStride
	}
	en.value = actual
	return mispredict
}

// Coverage returns the fraction of trained loads that were predicted.
func (e *EVES) Coverage(totalLoads uint64) float64 {
	if totalLoads == 0 {
		return 0
	}
	return float64(e.Predictions) / float64(totalLoads)
}

// RFPConfig tunes the register-file prefetcher (Table 2: 2K-entry prefetch
// table).
type RFPConfig struct {
	Entries       int
	ConfThreshold uint8
}

// DefaultRFPConfig matches Table 2.
func DefaultRFPConfig() RFPConfig { return RFPConfig{Entries: 2048, ConfThreshold: 3} }

type rfpEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     uint8
	valid    bool
}

// RFP is the stride-based load-address predictor used by register-file
// prefetching.
type RFP struct {
	cfg   RFPConfig
	table []rfpEntry

	Predictions uint64
	Correct     uint64
}

// NewRFP builds the predictor.
func NewRFP(cfg RFPConfig) *RFP {
	return &RFP{cfg: cfg, table: make([]rfpEntry, cfg.Entries)}
}

func (r *RFP) entry(pc uint64) *rfpEntry {
	return &r.table[(pc>>2)%uint64(len(r.table))]
}

// PredictAddr returns the predicted address of the next instance of the
// load at pc.
func (r *RFP) PredictAddr(pc uint64) (uint64, bool) {
	en := r.entry(pc)
	if !en.valid || en.pc != pc || en.conf < r.cfg.ConfThreshold {
		return 0, false
	}
	return uint64(int64(en.lastAddr) + en.stride), true
}

// Train updates the address predictor with the actual address; predicted /
// predAddr describe the prediction issued at rename, and the return value
// reports whether the prefetched data was useful (address matched).
func (r *RFP) Train(pc, actual uint64, predicted bool, predAddr uint64) (useful bool) {
	en := r.entry(pc)
	if predicted {
		r.Predictions++
		if predAddr == actual {
			r.Correct++
			useful = true
		}
	}
	if !en.valid || en.pc != pc {
		*en = rfpEntry{pc: pc, lastAddr: actual, valid: true}
		return useful
	}
	stride := int64(actual) - int64(en.lastAddr)
	if stride == en.stride {
		if en.conf < 7 {
			en.conf++
		}
	} else {
		en.conf = 0
		en.stride = stride
	}
	en.lastAddr = actual
	return useful
}

// ELAR tracks whether the stack pointer value is known in the decode stage
// (it is, as long as RSP is only updated by immediate adjustments, which the
// rename-stage constant folding already tracks). While tracked, stack-
// relative loads resolve their address early and skip the AGU dependency
// wait.
type ELAR struct {
	tracked bool

	EarlyResolved uint64
}

// NewELAR returns a tracker; RSP is architecturally known at reset.
func NewELAR() *ELAR { return &ELAR{tracked: true} }

// OnStackPointerWrite informs the tracker of a write to RSP/RBP.
// immediateOnly is true when the write is of the RSP←RSP±imm form that the
// decode-stage adder can follow.
func (e *ELAR) OnStackPointerWrite(immediateOnly bool) {
	e.tracked = immediateOnly
}

// CanResolveEarly reports whether a stack-relative load's address is known
// at decode, and counts it.
func (e *ELAR) CanResolveEarly() bool {
	if e.tracked {
		e.EarlyResolved++
	}
	return e.tracked
}

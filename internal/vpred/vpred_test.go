package vpred

import (
	"testing"
	"testing/quick"
)

func TestEVESLearnsConstantValue(t *testing.T) {
	e := NewEVES(DefaultEVESConfig())
	pc := uint64(0x400100)
	for i := 0; i < 100; i++ {
		if _, ok := e.Predict(pc); ok && i < int(e.cfg.ConfThreshold) {
			t.Fatalf("predicted before confidence built (i=%d)", i)
		}
		e.Train(pc, 42, false, 0)
	}
	v, ok := e.Predict(pc)
	if !ok || v != 42 {
		t.Fatalf("Predict = %d,%v after constant training", v, ok)
	}
}

func TestEVESLearnsStride(t *testing.T) {
	e := NewEVES(DefaultEVESConfig())
	pc := uint64(0x400200)
	val := uint64(100)
	for i := 0; i < 100; i++ {
		e.Train(pc, val, false, 0)
		val += 8
	}
	v, ok := e.Predict(pc)
	if !ok || v != val {
		t.Fatalf("stride predict = %d,%v, want %d", v, ok, val)
	}
}

func TestEVESPoisoningStopsRepeatOffenders(t *testing.T) {
	e := NewEVES(DefaultEVESConfig())
	pc := uint64(0x400300)
	mispredicts := 0
	val := uint64(0)
	// A value that is constant for a while then jumps, repeatedly.
	for epoch := 0; epoch < 20; epoch++ {
		for i := 0; i < 100; i++ {
			pred, ok := e.Predict(pc)
			if e.Train(pc, val, ok, pred) {
				mispredicts++
			}
		}
		val += 1000 // break the pattern at every epoch boundary
	}
	if mispredicts > 2 {
		t.Errorf("utility filter allowed %d mispredicts, want <=2", mispredicts)
	}
	if _, ok := e.Predict(pc); ok {
		t.Error("poisoned PC must never predict again")
	}
}

func TestEVESMispredictReported(t *testing.T) {
	e := NewEVES(DefaultEVESConfig())
	pc := uint64(0x400400)
	if !e.Train(pc, 5, true, 99) {
		t.Error("wrong prediction must report a mispredict")
	}
	if e.Train(pc, 5, true, 5) {
		t.Error("correct prediction must not report a mispredict")
	}
	if e.Predictions != 2 || e.Mispredicts != 1 || e.Correct != 1 {
		t.Errorf("counters: %d/%d/%d", e.Predictions, e.Correct, e.Mispredicts)
	}
}

func TestEVESCoverage(t *testing.T) {
	e := NewEVES(DefaultEVESConfig())
	if e.Coverage(0) != 0 {
		t.Error("coverage of zero loads must be 0")
	}
	e.Predictions = 25
	if c := e.Coverage(100); c != 0.25 {
		t.Errorf("coverage = %v", c)
	}
}

func TestEVESNeverPredictsUnstableValues(t *testing.T) {
	// Property: feeding uncorrelated values never produces more than a
	// handful of confident (and thus wrong-prone) predictions.
	f := func(seed uint8) bool {
		e := NewEVES(DefaultEVESConfig())
		pc := uint64(0x400500)
		x := uint64(seed) | 1
		preds := 0
		for i := 0; i < 500; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if _, ok := e.Predict(pc); ok {
				preds++
			}
			e.Train(pc, x, false, 0)
		}
		return preds == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRFPLearnsAddressStride(t *testing.T) {
	r := NewRFP(DefaultRFPConfig())
	pc := uint64(0x400600)
	addr := uint64(0x1000)
	for i := 0; i < 10; i++ {
		r.Train(pc, addr, false, 0)
		addr += 64
	}
	got, ok := r.PredictAddr(pc)
	if !ok || got != addr {
		t.Fatalf("PredictAddr = %#x,%v, want %#x", got, ok, addr)
	}
	if !r.Train(pc, addr, true, got) {
		t.Error("correct address prediction must be useful")
	}
}

func TestRFPStrideBreakResetsConfidence(t *testing.T) {
	r := NewRFP(DefaultRFPConfig())
	pc := uint64(0x400700)
	addr := uint64(0x1000)
	for i := 0; i < 10; i++ {
		r.Train(pc, addr, false, 0)
		addr += 64
	}
	r.Train(pc, 0x9999998, false, 0) // break
	if _, ok := r.PredictAddr(pc); ok {
		t.Error("stride break must clear confidence")
	}
}

func TestELARTracking(t *testing.T) {
	e := NewELAR()
	if !e.CanResolveEarly() {
		t.Fatal("RSP is architecturally known at reset")
	}
	e.OnStackPointerWrite(true) // rsp += imm: still tracked
	if !e.CanResolveEarly() {
		t.Fatal("immediate adjustment must keep tracking")
	}
	e.OnStackPointerWrite(false) // arbitrary write: lost
	if e.CanResolveEarly() {
		t.Fatal("non-immediate write must stop tracking")
	}
	e.OnStackPointerWrite(true) // next immediate write re-establishes
	if !e.CanResolveEarly() {
		t.Fatal("tracking must resume")
	}
	if e.EarlyResolved != 3 {
		t.Errorf("early-resolved count = %d, want 3", e.EarlyResolved)
	}
}

module constable

go 1.24

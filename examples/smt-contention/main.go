// SMT contention: the paper's key SMT2 result (§9.1.2) is that Constable's
// benefit grows under simultaneous multithreading because elimination
// fundamentally reduces demand on the load execution resources that SMT
// threads share, while value prediction (EVES) still executes every
// predicted load. This example compares geomean speedups over a handful of
// Client/Enterprise/Server workloads in both modes.
package main

import (
	"fmt"
	"log"

	"constable/internal/sim"
	"constable/internal/stats"
	"constable/internal/workload"
)

func main() {
	log.SetFlags(0)

	var specs []*workload.Spec
	for _, s := range workload.SmallSuite() {
		switch s.Category {
		case workload.Client, workload.Enterprise, workload.Server:
			specs = append(specs, s)
		}
	}
	const n = 50_000

	// Mechanism presets come from sim's registry — the same names the HTTP
	// API's "mechanism" field and the CLIs accept.
	configs := []struct {
		name   string
		preset string
	}{
		{"EVES", "eves"},
		{"Constable", "constable"},
		{"EVES+Constable", "eves+constable"},
	}

	for _, threads := range []int{1, 2} {
		label := "noSMT"
		if threads == 2 {
			label = "SMT2 (two contexts sharing RS, ports and caches)"
		}
		fmt.Printf("%s — geomean over %d workloads:\n", label, len(specs))
		for _, c := range configs {
			mech, err := sim.MechanismByName(c.preset)
			if err != nil {
				log.Fatal(err)
			}
			var speedups []float64
			for _, spec := range specs {
				base, err := sim.Run(sim.Options{Workload: spec, Instructions: n, Threads: threads})
				if err != nil {
					log.Fatal(err)
				}
				res, err := sim.Run(sim.Options{Workload: spec, Instructions: n, Threads: threads, Mech: mech})
				if err != nil {
					log.Fatal(err)
				}
				speedups = append(speedups, sim.Speedup(base, res))
			}
			fmt.Printf("  %-16s %+6.2f%%\n", c.name, 100*(stats.Geomean(speedups)-1))
		}
		fmt.Println()
	}
	fmt.Println("paper: under SMT2, Constable (+8.8%) clearly beats EVES (+3.6%) because")
	fmt.Println("only elimination relieves shared load-port contention. At this reduced")
	fmt.Println("scale the effect is visible on contended, load-heavy workloads; raise n")
	fmt.Println("for tighter geomeans.")
}

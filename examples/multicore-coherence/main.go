// Multi-core coherence: exercises the §6.6 machinery — the coherence
// directory with core-valid (CV) bits, CV-bit pinning for lines accessed by
// eliminated loads, and snoop delivery that resets Constable's AMT and
// flushes in-flight eliminated loads.
//
// Two cores run independent workloads over a shared LLC and directory; a
// synthetic sharing pattern maps a slice of core 0's store traffic onto
// cachelines that core 1's Constable has pinned, so core 1 receives real
// invalidating snoops. Functional state stays per-core (each core's memory
// image is private), so the only effect of snoops is lost elimination
// opportunity and the occasional disambiguation flush — never a wrong value,
// which the golden check verifies throughout.
package main

import (
	"fmt"
	"log"

	"constable/internal/cache"
	"constable/internal/constable"
	"constable/internal/fsim"
	"constable/internal/pipeline"
	"constable/internal/workload"
)

func main() {
	log.SetFlags(0)

	const n = 60_000
	specs := [2]string{"server-kvstore-00", "enterprise-appserver-00"}

	// Shared LLC slice + DRAM + directory for both cores.
	hcfg := cache.DefaultHierarchyConfig()
	sharedLLC := cache.NewCache(hcfg.LLC)
	sharedDRAM := cache.NewDRAM(hcfg.DRAM)
	dir := cache.NewDirectory(2)

	var cores [2]*pipeline.Core
	var constables [2]*constable.Constable
	for i := 0; i < 2; i++ {
		spec, err := workload.ByName(specs[i])
		if err != nil {
			log.Fatal(err)
		}
		cpu, err := spec.NewCPU(false)
		if err != nil {
			log.Fatal(err)
		}
		hier := cache.NewHierarchy(hcfg)
		hier.SetSharedLLC(sharedLLC, sharedDRAM)
		hier.Directory = dir
		hier.CoreID = i
		constables[i] = constable.New(constable.DefaultConfig())
		cores[i] = pipeline.NewCore(pipeline.DefaultConfig(),
			pipeline.Attachments{Constable: constables[i]}, hier,
			fsim.NewStream(cpu, n))
		core := cores[i]
		dir.RegisterSnoopHandler(i, func(lineAddr uint64) {
			core.InjectSnoop(lineAddr)
		})
		// Clean evictions inform the directory; pinned CV bits survive them.
		coreID := i
		prev := hier.L1D.OnEvict
		hier.L1D.OnEvict = func(lineAddr uint64) {
			dir.OnEvict(coreID, lineAddr)
			if prev != nil {
				prev(lineAddr)
			}
		}
	}

	// Drive both cores in lockstep, and periodically alias a store from
	// core 0 onto a line core 1 has pinned (synthetic true sharing).
	for cycle := 0; ; cycle++ {
		done := true
		for i := 0; i < 2; i++ {
			if cores[i].Stats.Retired < n {
				done = false
				if err := cores[i].Run(cores[i].Stats.Cycles + 1000); err != nil {
					log.Fatalf("core %d: %v", i, err)
				}
			}
		}
		if cycle%8 == 3 {
			// Core 0 "writes" a line in core 1's stable working set.
			dir.OnStore(0, 0x2001_0000/64)
		}
		if done {
			break
		}
	}

	fmt.Println("two cores, shared LLC + directory, CV-bit pinning enabled")
	for i := 0; i < 2; i++ {
		st := cores[i].Stats
		cs := constables[i].Stats
		fmt.Printf("core %d (%s):\n", i, specs[i])
		fmt.Printf("  IPC %.3f, %d loads, %d eliminated (%.1f%%)\n",
			st.IPC(), st.RetiredLoads, st.EliminatedLoads,
			100*float64(st.EliminatedLoads)/float64(st.RetiredLoads))
		fmt.Printf("  snoop-driven can_eliminate resets: %d; ordering flushes from snoops: %d\n",
			cs.CanElimResetsSn, st.OrderingViolations)
		fmt.Printf("  golden checks passed: %d\n", st.GoldenChecks)
	}
	fmt.Printf("\ndirectory: %d snoops delivered, %d CV-bit pins set\n", dir.SnoopsSent, dir.PinsSet)
	fmt.Println("CV-bit pinning keeps snoops flowing to lines whose loads are eliminated,")
	fmt.Println("even after clean L1 evictions — the safety condition of §6.6.")
}

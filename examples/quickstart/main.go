// Quickstart: run one workload on the baseline core and on a core with
// Constable, and compare performance, elimination coverage and power.
// This is the minimal end-to-end use of the public simulation API.
package main

import (
	"fmt"
	"log"

	"constable/internal/sim"
	"constable/internal/workload"
)

func main() {
	log.SetFlags(0)

	// Pick a workload from the 90-entry suite (Table 4 of the paper).
	spec, err := workload.ByName("enterprise-appserver-00")
	if err != nil {
		log.Fatal(err)
	}

	const instructions = 150_000

	// Baseline: the strong Golden Cove-like core with memory renaming,
	// move/zero elimination, constant and branch folding (Table 2).
	base, err := sim.Run(sim.Options{Workload: spec, Instructions: instructions})
	if err != nil {
		log.Fatal(err)
	}

	// Same core plus Constable (SLD + RMT + AMT + xPRF, §6), resolved from
	// the mechanism registry — the same "constable" preset the HTTP API and
	// the CLIs accept.
	mech, err := sim.MechanismByName("constable")
	if err != nil {
		log.Fatal(err)
	}
	cons, err := sim.Run(sim.Options{
		Workload:     spec,
		Instructions: instructions,
		Mech:         mech,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d instructions)\n\n", spec.Name, instructions)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "constable")
	fmt.Printf("%-22s %12d %12d\n", "cycles", base.Cycles, cons.Cycles)
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.IPC, cons.IPC)
	fmt.Printf("%-22s %12d %12d\n", "RS allocations", base.Pipeline.RSAllocs, cons.Pipeline.RSAllocs)
	fmt.Printf("%-22s %12d %12d\n", "L1-D accesses", base.L1DAccesses, cons.L1DAccesses)
	fmt.Printf("%-22s %12s %11.1f%%\n", "loads eliminated", "-",
		100*float64(cons.Pipeline.EliminatedLoads)/float64(cons.Pipeline.RetiredLoads))
	fmt.Printf("\nspeedup: %+.2f%%   dynamic energy: %.1f%% of baseline\n",
		100*(sim.Speedup(base, cons)-1),
		100*cons.Power.Total()/base.Power.Total())

	// Every run is verified by the golden check of §8.5: each retiring load
	// (including every eliminated one) must match the functional model, or
	// sim.Run returns an error. The same number is available by name in the
	// run's counter snapshot — the schema the HTTP API serves.
	fmt.Printf("golden checks passed: %d\n", cons.Counters.Get("pipeline.golden_checks"))
	fmt.Printf("result schema: mechanism %q, config %s, %d counters\n",
		cons.Identity.Mechanism, cons.ConfigDigest[:12], len(cons.Counters))
}

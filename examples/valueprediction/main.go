// Value prediction versus elimination: reproduces the §3 motivation on one
// workload. EVES breaks load *data* dependence (dependents run on the
// predicted value) but every predicted load still executes and occupies an
// AGU/load port and an L1-D slot. Constable removes the execution entirely.
// The experiment shows where each wins and that they compose.
package main

import (
	"fmt"
	"log"

	"constable/internal/sim"
	"constable/internal/workload"
)

func main() {
	log.SetFlags(0)

	// constarray-heavy client workload: plenty of loads whose values are
	// predictable but whose addresses change (EVES territory), plus stable
	// loads (Constable territory).
	spec, err := workload.ByName("client-ui-01")
	if err != nil {
		log.Fatal(err)
	}
	const n = 150_000

	base, err := sim.Run(sim.Options{Workload: spec, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}

	// The mechanism registry (sim.Mechanisms) is the single name→config
	// table; examples resolve presets by name like the CLIs and the API do.
	configs := []struct {
		name   string
		preset string
	}{
		{"EVES", "eves"},
		{"Constable", "constable"},
		{"EVES+Constable", "eves+constable"},
		{"Ideal Constable", "ideal"},
	}

	fmt.Printf("workload: %s — baseline IPC %.3f\n\n", spec.Name, base.IPC)
	fmt.Printf("%-18s %9s %12s %12s %14s\n", "config", "speedup", "covered", "loads exec", "L1-D accesses")
	for _, c := range configs {
		mech, err := sim.MechanismByName(c.preset)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Options{Workload: spec, Instructions: n, Mech: mech})
		if err != nil {
			log.Fatal(err)
		}
		st := res.Pipeline
		covered := st.EliminatedLoads + st.ValuePredicted
		fmt.Printf("%-18s %+8.2f%% %11.1f%% %12d %14d\n", c.name,
			100*(sim.Speedup(base, res)-1),
			100*float64(covered)/float64(st.RetiredLoads),
			st.LoadExecs, res.L1DAccesses)
	}
	fmt.Println("\nnote how EVES covers loads without reducing executed loads or L1-D")
	fmt.Println("accesses, while Constable reduces both — the paper's central claim.")
}

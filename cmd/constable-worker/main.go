// Command constable-worker is a remote execution node for constable-server:
// it registers with a server, receives JobSpecs over HTTP — one per request
// on /execute, or whole capacity-sized chunks on /execute/batch — simulates
// them on a local bounded pool, and returns full-fidelity result envelopes
// that the server files into its cache and content-addressed store exactly
// like locally-executed results. Attach as many workers as you have
// machines; the server's dispatcher shards sweeps across all of them
// (chunk sizes adapt to each worker's free capacity; tune the cap with the
// server's -batch flag) and requeues the jobs of any worker that dies.
//
// Usage:
//
//	constable-worker -server http://127.0.0.1:8080 -addr :8081 -capacity 8
//
// The worker advertises -advertise (default http://127.0.0.1:<port of
// -addr>, which is right for single-machine clusters and CI; set it
// explicitly to a routable URL when the server runs on another machine),
// heartbeats every -heartbeat, re-registers automatically if the server
// restarts, and deregisters on SIGINT/SIGTERM before draining.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"constable/internal/profutil"
	"constable/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("constable-worker: ")

	var (
		server    = flag.String("server", "", "base URL of the constable-server to register with (required)")
		addr      = flag.String("addr", ":8081", "listen address for the worker's /execute endpoint")
		advertise = flag.String("advertise", "", "URL the server dispatches to (default http://127.0.0.1:<port>)")
		name      = flag.String("name", "", "worker name in listings (default: hostname)")
		capacity  = flag.Int("capacity", runtime.GOMAXPROCS(0), "concurrent simulations to run and advertise")
		heartbeat = flag.Duration("heartbeat", 5*time.Second, "lease-renewal interval (keep well under the server's -worker-ttl)")
		resultsAt = flag.String("results-server", "", "base URL of the result store consulted before simulating and written back to after (default: -server; \"none\" disables sharing)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown timeout for running simulations")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty disables)")
	)
	flag.Parse()
	if *server == "" {
		log.Fatal("-server is required (e.g. -server http://127.0.0.1:8080)")
	}
	if err := profutil.ServePprof(*pprofAddr); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	adv := *advertise
	if adv == "" {
		_, port, err := net.SplitHostPort(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		adv = "http://127.0.0.1:" + port
	}
	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		} else {
			*name = adv
		}
	}

	w, err := worker.New(worker.Options{
		Server:    *server,
		Advertise: adv,
		Name:      *name,
		Capacity:  *capacity,
		Heartbeat: *heartbeat,

		ResultsServer: *resultsAt,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Handler: w.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %s (advertised %s, capacity %d), registering with %s", ln.Addr(), adv, *capacity, *server)
		errc <- srv.Serve(ln)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			log.Printf("control loop: %v", err)
		}
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("shutting down, draining (up to %v)", *drain)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := w.Deregister(dctx); err != nil {
		log.Printf("deregister: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := w.Scheduler().Shutdown(dctx); err != nil {
		log.Printf("scheduler shutdown: %v", err)
	}
}

// Command experiments regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact in the evaluation; see
// docs/DESIGN.md for the index and the paper-artifact mapping.
//
// Usage:
//
//	experiments -run fig11               # one experiment, small suite
//	experiments -run all -full -n 150000 # everything over all 90 workloads
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"constable/internal/experiments"
	"constable/internal/profutil"
	"constable/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		run     = flag.String("run", "all", `experiment id (e.g. "fig11", "tab1") or "all"`)
		n       = flag.Uint64("n", 80_000, "instructions per workload per configuration")
		full    = flag.Bool("full", false, "use all 90 workloads instead of the 15-workload small suite")
		dataDir = flag.String("data-dir", "", "persistent result-store directory: cells simulated by any earlier run against it are reused")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file before exiting")
	)
	flag.Parse()

	stopCPU, err := profutil.StartCPUProfile(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := profutil.WriteMemProfile(*memProf); err != nil {
			log.Print(err)
		}
	}()

	if *dataDir != "" {
		if err := service.SetDefaultConfig(service.Config{DataDir: *dataDir}); err != nil {
			log.Fatal(err)
		}
	}

	runner := experiments.NewRunner(experiments.Config{
		Instructions: *n,
		FullSuite:    *full,
		Out:          os.Stdout,
	})
	if *list {
		for _, id := range runner.IDs() {
			fmt.Println(id)
		}
		return
	}

	start := time.Now()
	if err := runner.Run(*run); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

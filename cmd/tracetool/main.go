// Command tracetool captures workload executions into the compact binary
// trace format (internal/trace) and replays or inspects saved traces — the
// snapshot-trace methodology of §8.3.
//
// Usage:
//
//	tracetool -capture -workload server-kvstore-00 -n 500000 -o kvstore.trace
//	tracetool -replay kvstore.trace -mech constable
//	tracetool -info kvstore.trace
//	tracetool -upload kvstore.trace -server http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"constable/internal/cache"
	"constable/internal/fsim"
	"constable/internal/inspector"
	"constable/internal/pipeline"
	"constable/internal/sim"
	"constable/internal/trace"
	"constable/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracetool: ")

	var (
		capture = flag.Bool("capture", false, "capture a workload execution to -o")
		replay  = flag.String("replay", "", "replay a trace file through the timing model")
		info    = flag.String("info", "", "print the Load Inspector analysis of a trace file")
		name    = flag.String("workload", "server-kvstore-00", "workload to capture")
		n       = flag.Uint64("n", 300_000, "instructions to capture")
		out     = flag.String("o", "workload.trace", "output trace path")
		apx     = flag.Bool("apx", false, "capture the 32-register (APX) build")
		mech    = flag.String("mech", "baseline", "replay mechanism: "+strings.Join(sim.MechanismNames(), ", "))
		upload  = flag.String("upload", "", "upload a trace file to a constable-server")
		server  = flag.String("server", "http://localhost:8080", "server base URL for -upload")
	)
	flag.Parse()

	switch {
	case *capture:
		if err := doCapture(*name, *out, *n, *apx); err != nil {
			log.Fatal(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *mech); err != nil {
			log.Fatal(err)
		}
	case *info != "":
		if err := doInfo(*info); err != nil {
			log.Fatal(err)
		}
	case *upload != "":
		if err := doUpload(*upload, *server); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("pass -capture, -replay <file>, -info <file> or -upload <file>")
	}
}

// doUpload POSTs the raw trace bytes to {server}/v1/traces and prints the
// content hash the server assigned. Re-uploading the same bytes is reported
// as a dedup hit rather than an error — the store is content-addressed.
func doUpload(path, server string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Post(strings.TrimRight(server, "/")+"/v1/traces",
		"application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("upload rejected: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var info struct {
		Hash         string `json:"hash"`
		Name         string `json:"name"`
		Instructions uint64 `json:"instructions"`
		Dedup        bool   `json:"dedup"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return fmt.Errorf("decoding upload response: %w", err)
	}
	verb := "uploaded"
	if info.Dedup {
		verb = "already stored (dedup)"
	}
	fmt.Printf("%s %s: %d instructions, %d bytes\n", verb, path, info.Instructions, len(data))
	fmt.Printf("hash: %s\n", info.Hash)
	fmt.Printf("workload name: %s\n", info.Name)
	return nil
}

func doCapture(name, out string, n uint64, apx bool) error {
	spec, err := workload.ByName(name)
	if err != nil {
		return err
	}
	cpu, err := spec.NewCPU(apx)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	count, err := trace.Capture(f, fsim.NewStream(cpu, n), n)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("captured %d instructions of %s to %s (%.1f bytes/record)\n",
		count, name, out, float64(st.Size())/float64(count))
	return nil
}

func doReplay(path, mech string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	m, err := sim.MechanismByName(mech)
	if err != nil {
		return err
	}
	if m.NeedsStableAnalysis() {
		return fmt.Errorf("mechanism %q needs the live stable-load pre-pass; trace replay supports the table-based mechanisms", mech)
	}
	att, _, _, err := m.NewAttachments()
	if err != nil {
		return err
	}
	core := pipeline.NewCore(pipeline.DefaultConfig(), att,
		cache.NewHierarchy(cache.DefaultHierarchyConfig()), r)
	if err := core.Run(1 << 40); err != nil {
		return err
	}
	if r.Err() != nil {
		return fmt.Errorf("trace decode: %w", r.Err())
	}
	st := core.Stats
	fmt.Printf("replayed %d instructions in %d cycles (IPC %.3f)\n", st.Retired, st.Cycles, st.IPC())
	if att.Constable != nil {
		fmt.Printf("eliminated %d of %d loads (%.1f%%), golden checks passed: %d\n",
			st.EliminatedLoads, st.RetiredLoads,
			100*float64(st.EliminatedLoads)/float64(st.RetiredLoads), st.GoldenChecks)
	}
	return nil
}

func doInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	ins := inspector.New()
	for {
		d, ok := r.Next()
		if !ok {
			break
		}
		ins.Observe(&d)
	}
	if r.Err() != nil {
		return fmt.Errorf("trace decode: %w", r.Err())
	}
	fmt.Print(ins.Report())
	return nil
}

// Command constable-server serves the simulation service over HTTP: clients
// submit JobSpecs, the bounded worker pool simulates them, and identical
// specs — across clients — are answered from the content-addressed result
// cache without re-simulation.
//
// Usage:
//
//	constable-server -addr :8080 -workers 8 -cache 4096
//
//	curl -s localhost:8080/v1/runs?wait=1 -d \
//	  '{"workload":"server-kvstore-00","mechanism":"constable","instructions":50000}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"constable/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("constable-server: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
		cacheSize = flag.Int("cache", 4096, "result-cache capacity in entries")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown timeout for running simulations")
	)
	flag.Parse()

	sched := service.New(service.Config{Workers: *workers, CacheSize: *cacheSize})
	srv := service.Serve(*addr, sched)

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d workers, cache %d)", *addr, *workers, *cacheSize)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v, draining (up to %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := sched.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("scheduler shutdown: %v", err)
	}
}

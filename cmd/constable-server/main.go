// Command constable-server serves the simulation service over HTTP: clients
// submit JobSpecs, the execution backend (a bounded local pool plus any
// registered remote workers) simulates them, and identical specs — across
// clients — are answered from the content-addressed result cache without
// re-simulation.
//
// With -data-dir, finished results are also written to a persistent
// content-addressed store (one JSON file per spec hash), so they survive
// restarts and are shared with any other process pointing at the same
// directory. POST /v1/sweeps runs whole workload×mechanism matrices
// server-side; GET /v1/sweeps/{id}/events streams per-cell NDJSON.
//
// The server also accepts remote constable-worker registrations
// (POST /v1/workers): registered workers add execution capacity, sweeps
// shard across local slots and every worker, and a worker that dies has its
// in-flight jobs requeued. Run with a negative -workers to make the server
// a pure dispatcher. See docs/OPERATIONS.md for cluster recipes.
//
// Usage:
//
//	constable-server -addr :8080 -workers 8 -cache 4096 -data-dir /var/lib/constable
//
//	curl -s localhost:8080/v1/runs?wait=1 -d \
//	  '{"workload":"server-kvstore-00","mechanism":"constable","instructions":50000}'
//	curl -s localhost:8080/v1/sweeps -d \
//	  '{"workloads":["server-kvstore-00"],"mechanisms":["baseline","constable"]}'
//	curl -sN localhost:8080/v1/sweeps/sweep-1/events
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"constable/internal/profutil"
	"constable/internal/service"
)

// parseClassWeights parses the -class-weights flag ("interactive=8,batch=1")
// into the scheduler's weight-override map.
func parseClassWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-class-weights: %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-class-weights: weight for %q must be a positive integer", name)
		}
		out[name] = w
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("constable-server: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent local simulation workers (negative: dispatch-only, all jobs run on remote workers)")
		cacheSize = flag.Int("cache", 4096, "result-cache capacity in entries")
		dataDir   = flag.String("data-dir", "", "persistent result-store directory (results survive restarts; empty disables)")
		workerTTL = flag.Duration("worker-ttl", 15*time.Second, "remote-worker lease: a worker missing heartbeats this long is expired and its jobs requeued")
		batch     = flag.Int("batch", 0, "max jobs dispatched to one backend as a single chunk; chunks also adapt to each worker's free capacity (0 = default 16, 1 = per-cell dispatch)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown timeout for running simulations")
		resultsAt = flag.String("results-server", "", "base URL of an upstream constable-server whose result store this server consults before simulating and writes back to after (federation; empty disables)")
		maxBody   = flag.Int64("max-body", 0, "max JSON request-body bytes on the API (0 = default 8 MiB)")
		maxTrace  = flag.Int64("max-trace-body", 0, "max raw trace-upload bytes on POST /v1/traces (0 = default 256 MiB)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
		queueMax  = flag.Int("queue-max", 0, "per-class queued-job watermark for admission control: over it, submissions get 429 + Retry-After; batch classes (sweeps) are exempt up to 64x this (0 disables)")
		weights   = flag.String("class-weights", "", "fair-share dispatch weight overrides, comma-separated name=weight (defaults interactive=8,batch=1,default=4)")
		hedge     = flag.Duration("hedge-after", 0, "duplicate a straggler cell onto a second backend after this long once the queue drains; first verified result wins (0 disables)")
	)
	flag.Parse()

	if err := profutil.ServePprof(*pprofAddr); err != nil {
		log.Fatal(err)
	}

	classWeights, err := parseClassWeights(*weights)
	if err != nil {
		log.Fatal(err)
	}
	cfg := service.Config{Workers: *workers, CacheSize: *cacheSize, DataDir: *dataDir,
		WorkerTTL: *workerTTL, MaxBatch: *batch, MaxBody: *maxBody, MaxTraceBody: *maxTrace,
		QueueMax: *queueMax, ClassWeights: classWeights, HedgeAfter: *hedge}
	if *resultsAt != "" {
		cfg.Share = service.NewRemoteResultStore(*resultsAt)
	}
	sched, err := service.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := service.Serve(*addr, sched)

	errc := make(chan error, 1)
	go func() {
		persist := "no persistence"
		if *dataDir != "" {
			persist = "data-dir " + *dataDir
		}
		local := fmt.Sprintf("%d local workers", *workers)
		if *workers < 0 {
			local = "dispatch-only (no local workers)"
		}
		log.Printf("listening on %s (%s, cache %d, %s)", *addr, local, *cacheSize, persist)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v, draining (up to %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := sched.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("scheduler shutdown: %v", err)
	}
}

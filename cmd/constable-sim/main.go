// Command constable-sim runs one workload on the simulated core under a
// chosen mechanism configuration and prints performance, coverage and power
// results.
//
// Usage:
//
//	constable-sim -workload server-kvstore-00 -mech constable -n 200000
//	constable-sim -list
//	constable-sim -workload client-browser-00 -mech eves+constable -smt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"constable/internal/profutil"
	"constable/internal/service"
	"constable/internal/sim"
	"constable/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("constable-sim: ")

	var (
		name    = flag.String("workload", "server-kvstore-00", "workload name (see -list)")
		mech    = flag.String("mech", "constable", "mechanism preset: "+strings.Join(sim.MechanismNames(), ", ")+"; axis terms may be appended, e.g. constable,bpred=bimodal")
		bpredV  = flag.String("bpred", "", "branch-predictor axis variant (tage, bimodal)")
		prefV   = flag.String("prefetch", "", "L1-D prefetcher axis variant (stride, delta, none)")
		l1dpV   = flag.String("l1dpred", "", "L1-D hit/miss predictor axis variant (off, counter, global)")
		n       = flag.Uint64("n", 200_000, "committed-path instructions to simulate")
		smt     = flag.Bool("smt", false, "run two SMT contexts of the workload")
		apx     = flag.Bool("apx", false, "use the 32-register (APX) build of the workload")
		dataDir = flag.String("data-dir", "", "persistent result-store directory (re-runs are served from it without simulating)")
		list    = flag.Bool("list", false, "list all workloads and exit")
		verbose = flag.Bool("v", false, "print the full counter dump")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file before exiting")
	)
	flag.Parse()

	stopCPU, err := profutil.StartCPUProfile(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := profutil.WriteMemProfile(*memProf); err != nil {
			log.Print(err)
		}
	}()

	if *dataDir != "" {
		if err := service.SetDefaultConfig(service.Config{DataDir: *dataDir}); err != nil {
			log.Fatal(err)
		}
	}

	if *list {
		for _, s := range workload.Suite() {
			fmt.Printf("%-30s %s\n", s.Name, s.Category)
		}
		return
	}

	spec, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	// The axis flags qualify the chosen mechanism; the registry's qualified-
	// name syntax carries them through the scheduler unchanged.
	mechName := *mech
	for _, t := range []struct{ axis, v string }{
		{sim.AxisBPred, *bpredV},
		{sim.AxisPrefetch, *prefV},
		{sim.AxisL1DPred, *l1dpV},
	} {
		if t.v != "" {
			mechName += "," + t.axis + "=" + t.v
		}
	}
	if _, err := service.ParseMechanism(mechName); err != nil {
		log.Fatal(err)
	}
	threads := 1
	if *smt {
		threads = 2
	}

	// Both runs go through the shared scheduler (the engine behind
	// cmd/constable-server and the experiment drivers), so they execute in
	// parallel and identical requests are served from the result cache.
	sched := service.Default()
	ctx := context.Background()
	baseJob, err := sched.Submit(service.JobSpec{
		Workload: *name, Mechanism: "baseline", Instructions: *n, Threads: threads, APX: *apx})
	if err != nil {
		log.Fatal(err)
	}
	mechJob, err := sched.Submit(service.JobSpec{
		Workload: *name, Mechanism: mechName, Instructions: *n, Threads: threads, APX: *apx})
	if err != nil {
		log.Fatal(err)
	}
	base, err := baseJob.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mechJob.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload   %s (%s)%s\n", spec.Name, spec.Category, map[bool]string{true: " [SMT2]", false: ""}[*smt])
	fmt.Printf("mechanism  %s\n", res.Identity.Mechanism)
	fmt.Printf("config     %s\n", res.ConfigDigest[:12])
	fmt.Printf("cycles     %d (baseline %d)\n", res.Cycles, base.Cycles)
	fmt.Printf("IPC        %.3f (baseline %.3f)\n", res.IPC, base.IPC)
	fmt.Printf("speedup    %+.2f%%\n", 100*(sim.Speedup(base, res)-1))
	st := res.Pipeline
	if st.RetiredLoads > 0 {
		fmt.Printf("loads      %d retired, %d eliminated (%.1f%%), %d value-predicted (%.1f%%)\n",
			st.RetiredLoads, st.EliminatedLoads,
			100*float64(st.EliminatedLoads)/float64(st.RetiredLoads),
			st.ValuePredicted,
			100*float64(st.ValuePredicted)/float64(st.RetiredLoads))
	}
	fmt.Printf("RS allocs  %d (baseline %d, %+.1f%%)\n", st.RSAllocs, base.Pipeline.RSAllocs,
		100*(float64(st.RSAllocs)/float64(base.Pipeline.RSAllocs)-1))
	fmt.Printf("L1-D       %d accesses (baseline %d, %+.1f%%)\n", res.L1DAccesses, base.L1DAccesses,
		100*(float64(res.L1DAccesses)/float64(base.L1DAccesses)-1))
	fmt.Printf("power      %.1f%% of baseline dynamic energy\n", 100*res.Power.Total()/base.Power.Total())
	fmt.Printf("breakdown  %s", res.Power)

	for _, m := range res.Mechanisms {
		fmt.Printf("mech[%s]   %d counters tracked\n", m.Name, len(m.Counters))
	}

	if *verbose {
		fmt.Println("\ncounters:")
		for _, n := range res.Counters.Names() {
			fmt.Printf("  %-42s %d\n", n, res.Counters[n])
		}
	}
}
